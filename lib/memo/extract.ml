open Ir

(* Plan extraction from the Memo using the optimization-request linkage
   structure (paper §4.1, Fig. 6), plus uniform plan-space enumeration and
   sampling used by TAQO (paper §6.2, based on Waas & Galindo-Legaria). *)

let group_rows memo gid =
  match Memo.stats memo gid with
  | Some s -> Stats.Relstats.rows s
  | None -> 1000.0

let context_exn memo gid req =
  match Memo.find_context memo gid req with
  | Some ctx -> ctx
  | None ->
      Gpos.Gpos_error.internal "no optimization context for group %d req %s"
        (Memo.find memo gid) (Props.req_to_string req)

(* Materialize one alternative into a plan subtree. [pick] chooses the child
   alternative for (group, request); [assumed] is what the parent's costing
   assumed that child delivered (None at the root, or when the linkage
   predates the assumption recording) — substitutes must cover it, or claims
   recorded upstream (e.g. "already co-located, no motion needed") break in
   the materialized plan. *)
let rec plan_of_alternative memo gid (alt : Memo.alternative)
    ~(pick : int -> Props.req -> assumed:Props.derived option -> Memo.alternative)
    : Expr.plan =
  let ge = alt.Memo.a_gexpr in
  let assumed_of i = List.nth_opt alt.Memo.a_child_derived i in
  let children =
    List.mapi
      (fun i (child_gid, child_req) ->
        let child_alt = pick child_gid child_req ~assumed:(assumed_of i) in
        plan_of_alternative memo child_gid child_alt ~pick)
      (List.combine ge.Memo.ge_children alt.Memo.a_child_reqs)
  in
  let op =
    match ge.Memo.ge_op with
    | Expr.Physical p -> p
    | Expr.Logical l ->
        Gpos.Gpos_error.internal "extracting logical operator %s"
          (Logical_ops.to_string l)
  in
  let est_rows = group_rows memo gid in
  (* roll costs up from the children actually materialized: sampled plans may
     pick non-best child alternatives, so the recorded total would be wrong *)
  let children_cost =
    List.fold_left (fun a (c : Expr.plan) -> a +. c.Expr.pcost) 0.0 children
  in
  let base_cost = alt.Memo.a_local_cost +. children_cost in
  let node = Plan_ops.node op children ~est_rows ~cost:base_cost in
  (* stack the enforcers bottom-up, accumulating their recorded costs *)
  let plan, _ =
    List.fold_left2
      (fun (p, cost_acc) enf enf_cost ->
        let cost_acc = cost_acc +. enf_cost in
        let pop =
          match enf with
          | Props.E_sort spec -> Expr.P_sort spec
          | Props.E_motion m -> Expr.P_motion m
        in
        let rows =
          match enf with
          | Props.E_motion Expr.Broadcast -> p.Expr.pest_rows
          | _ -> p.Expr.pest_rows
        in
        (Plan_ops.node pop [ p ] ~est_rows:rows ~cost:cost_acc, cost_acc))
      (node, base_cost) alt.Memo.a_enforcers alt.Memo.a_enf_costs
  in
  plan

(* Extract the least-cost plan satisfying [req] at group [gid]. *)
let best_plan memo gid req : Expr.plan =
  let pick gid req ~assumed:_ =
    let ctx = context_exn memo gid req in
    match ctx.Memo.cx_best with
    | Some alt -> alt
    | None ->
        Gpos.Gpos_error.internal
          "no plan found for group %d under request %s" (Memo.find memo gid)
          (Props.req_to_string req)
  in
  let alt = pick gid req ~assumed:None in
  plan_of_alternative memo gid alt ~pick

(* --- plan counting and uniform sampling (TAQO substrate) --- *)

(* Number of distinct physical plans recorded for (group, request). Counted
   over the alternatives stored in optimization contexts; floats guard
   against overflow in large spaces. *)
let count_plans memo gid req : float =
  let memo_table : (int * int, float) Hashtbl.t = Hashtbl.create 64 in
  let rec count gid req =
    let gid = Memo.find memo gid in
    let key = (gid, Props.req_fingerprint req) in
    match Hashtbl.find_opt memo_table key with
    | Some c -> c
    | None ->
        (* guard against pathological cycles *)
        Hashtbl.replace memo_table key 0.0;
        let ctx = context_exn memo gid req in
        let total =
          List.fold_left
            (fun acc (alt : Memo.alternative) ->
              let sub =
                List.fold_left2
                  (fun p cg cr -> p *. count cg cr)
                  1.0 alt.Memo.a_gexpr.Memo.ge_children alt.Memo.a_child_reqs
              in
              acc +. sub)
            0.0 ctx.Memo.cx_alts
        in
        Hashtbl.replace memo_table key total;
        total
  in
  count gid req

(* Sample a plan uniformly from the recorded plan space: alternatives are
   chosen with probability proportional to the number of complete plans in
   their subtrees. *)
let sample_plan (rng : Gpos.Prng.t) memo gid req : Expr.plan =
  let memo_table : (int * int, float) Hashtbl.t = Hashtbl.create 64 in
  let rec count gid req =
    let gid = Memo.find memo gid in
    let key = (gid, Props.req_fingerprint req) in
    match Hashtbl.find_opt memo_table key with
    | Some c -> c
    | None ->
        Hashtbl.replace memo_table key 0.0;
        let ctx = context_exn memo gid req in
        let total =
          List.fold_left
            (fun acc (alt : Memo.alternative) ->
              acc +. subtree_count alt)
            0.0 ctx.Memo.cx_alts
        in
        Hashtbl.replace memo_table key total;
        total
  and subtree_count (alt : Memo.alternative) =
    List.fold_left2
      (fun p cg cr -> p *. count cg cr)
      1.0 alt.Memo.a_gexpr.Memo.ge_children alt.Memo.a_child_reqs
  in
  let pick gid req ~assumed =
    let ctx = context_exn memo gid req in
    (* only alternatives covering what the parent's costing assumed this
       child delivered are sound substitutes *)
    let candidates =
      match assumed with
      | None -> ctx.Memo.cx_alts
      | Some d ->
          List.filter
            (fun (a : Memo.alternative) ->
              Props.derived_covers ~assumed:d ~actual:a.Memo.a_derived)
            ctx.Memo.cx_alts
    in
    let fallback () =
      match ctx.Memo.cx_best with
      | Some alt -> alt
      | None -> Gpos.Gpos_error.internal "sample_plan: empty context"
    in
    let total =
      List.fold_left (fun acc a -> acc +. subtree_count a) 0.0 candidates
    in
    if total <= 0.0 then fallback ()
    else begin
      let target = Gpos.Prng.float rng *. total in
      let rec scan acc = function
        | [] -> fallback ()
        | alt :: rest ->
            let acc = acc +. subtree_count alt in
            if acc >= target then alt else scan acc rest
      in
      scan 0.0 candidates
    end
  in
  let alt = pick gid req ~assumed:None in
  plan_of_alternative memo gid alt ~pick

(** The Memo (paper §3, §4.1): a compact encoding of the plan space.

    Groups hold logically equivalent expressions — logical and physical are
    first-class citizens of equal footing. Group expressions are operators
    whose children are groups. Duplicate detection is topology-based (an
    operator fingerprint plus canonical child-group ids); inserting an
    expression that already exists in a different group merges the two groups
    through a union-find.

    Each group owns a hash table of optimization contexts — one per
    optimization request — recording every costed alternative and the best
    one: the linkage structure used for plan extraction (Fig. 6) and for
    TAQO's uniform plan sampling. *)

open Ir

(** Where a group expression came from (lib/prov): the xform that produced
    it, the group expression it was derived from ([o_source] is a [ge_id] —
    an id, not a pointer, so the memo stays acyclic and lineage survives
    group merges), and the stage/promise at application time. *)
type origin = {
  o_rule : string;  (** xform name, e.g. "join-commute" *)
  o_rule_id : int;
  o_source : int;   (** [ge_id] of the expression the rule was applied to *)
  o_stage : string; (** optimization stage the application ran in *)
  o_promise : int;  (** the rule's promise when it was scheduled *)
}

type gexpr = {
  ge_id : int;
  ge_op : Expr.op;
  ge_op_id : int;
      (** hash-consed operator id: equal ids iff structurally equal payloads
          (within one Memo); -1 when the Memo was created without interning *)
  ge_children : int list;  (** group ids as of insertion; canonicalize via [find] *)
  mutable ge_group : int;
  ge_origin : origin option;
      (** [None] = copy-in of the original query tree *)
  mutable ge_explored : bool;
  mutable ge_implemented : bool;
  mutable ge_applied : int list; (** rule ids already applied *)
}

(** One costed way of satisfying a request: a group expression, the requests
    passed to its children (the linkage), the enforcer chain stacked on top,
    and its costs. *)
type alternative = {
  a_gexpr : gexpr;
  a_child_reqs : Props.req list;
  a_child_derived : Props.derived list;
      (** what each child best delivered when this alternative was costed:
          [a_derived] was computed from exactly these properties, so plan
          sampling may only substitute child alternatives that cover them
          (see [Props.derived_covers]) *)
  a_enforcers : Props.enforcer list; (** applied bottom-up above the gexpr *)
  a_enf_costs : float list;          (** incremental cost of each enforcer *)
  a_local_cost : float;              (** the operator's own cost, children excluded *)
  a_cost : float;                    (** total: operator + children + enforcers *)
  a_derived : Props.derived;         (** properties delivered after enforcers *)
}

type ctx_state = Ctx_new | Ctx_in_progress | Ctx_complete

type context = {
  cx_id : int;
      (** process-unique context id (stable sanitizer object names) *)
  cx_req : Props.req;
  mutable cx_state : ctx_state;
  mutable cx_best : alternative option;
  mutable cx_alts : alternative list; (** every costed alternative *)
}

type group = {
  g_id : int;
  mutable g_exprs : gexpr list;
  mutable g_output_cols : Colref.t list; (** the group's logical properties *)
  mutable g_stats : Stats.Relstats.t option;
  mutable g_explored : bool;
  mutable g_implemented : bool;
  mutable g_merged_into : int option;
  g_contexts : (int, context list) Hashtbl.t;
  g_lock : Mutex.t;
}

type t

val create : ?interning:bool -> unit -> t
(** [interning] (default true) hash-conses operator payloads so duplicate
    detection compares dense ids instead of deep structures; off preserves
    the structural path for A/B identity testing. *)

type profile = {
  p_inserts : int;         (** [insert] calls (after tree flattening) *)
  p_dedup_hits : int;      (** inserts resolved to an existing expression *)
  p_merges : int;          (** group merges from duplicate detection *)
  p_ctx_created : int;
  p_ctx_hits : int;        (** [obtain_context] found an existing context *)
  p_winner_updates : int;  (** [record_alternative] improved [cx_best] *)
  p_winner_kept : int;     (** the incumbent winner survived a challenge *)
  p_ops_interned : int;    (** distinct operator payloads (0 if interning off) *)
  p_intern_hits : int;     (** operators resolved to an existing interned id *)
}
(** Growth/duplicate-detection/winner-cache counters for the observability
    report (lib/obs). Collected unconditionally — each is one counter bump
    on an already-locked path. *)

val profile : t -> profile

val find : t -> int -> int
(** Canonical group id after merges. *)

val group : t -> int -> group
val ngroups : t -> int
val ngexprs : t -> int
val root : t -> int
val set_root : t -> int -> unit

val group_ids : t -> int list
(** Live (unmerged) group ids. *)

val output_cols : t -> int -> Colref.t list

val insert_gexpr :
  t -> ?origin:origin -> ?target:int -> Expr.op -> int list -> gexpr
(** Insert one operator with child groups into [target] (a fresh group when
    omitted). Duplicate detection may return a pre-existing expression (the
    first producer's origin is kept); a duplicate found in a different group
    merges the groups. Thread-safe. *)

val insert : t -> ?origin:origin -> ?target:int -> Mexpr.t -> gexpr
(** Copy a mixed expression tree in, bottom-up (paper: rule results are
    "copied-in to the Memo"). *)

val gexpr_by_id : t -> int -> gexpr option
(** Look up a group expression by [ge_id] (provenance lineage walks). *)

val cte_producer_group : t -> int -> int option
(** The group holding a CTE's producer (tracked at anchor insertion). *)

val logical_exprs : group -> (gexpr * Expr.logical) list
val physical_exprs : group -> (gexpr * Expr.physical) list

val find_context : t -> int -> Props.req -> context option

val obtain_context : t -> int -> Props.req -> context * bool
(** Find-or-create the context for (group, request); the boolean says whether
    this call created it (and therefore owns computing it). *)

val record_alternative : t -> int -> context -> alternative -> unit
(** Record a costed alternative, updating the context's best. Ties on cost
    break on a stable structural key rather than arrival order, so the
    chosen plan is independent of the costing schedule. *)

val contexts_of_group : t -> int -> context list

val stats : t -> int -> Stats.Relstats.t option
val set_stats : t -> int -> Stats.Relstats.t -> unit

val checksum : t -> int
(** Structural checksum of the plan space: group/expression counts, root,
    per-group expression topology, output columns, merge links and
    completion flags. Used to enforce the rule contract that [Rule.apply]
    must not mutate the Memo (lib/rulecheck, and the engine's debug-mode
    check). Optimization contexts and statistics are excluded — they are
    costing caches, mutated concurrently, and not part of the contract. *)

val gexpr_to_string : t -> gexpr -> string

val to_string : t -> string
(** The Fig. 4/6 display: every group with its expressions. *)

val to_dot : t -> string
(** Graphviz (dot) export of the Memo graph: one record node per group, one
    edge per group-expression child slot. *)

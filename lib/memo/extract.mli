(** Plan extraction from the Memo via the optimization-request linkage
    structure (paper §4.1, Fig. 6), plus plan-space enumeration and uniform
    sampling — the substrate TAQO builds on (paper §6.2, after Waas &
    Galindo-Legaria's counting method). *)

open Ir

val best_plan : Memo.t -> int -> Props.req -> Expr.plan
(** The least-cost plan satisfying [req] rooted in the given group; enforcers
    recorded in the winning alternatives are materialized as Sort/Motion
    nodes. Raises when no context or plan exists for the request. *)

val plan_of_alternative :
  Memo.t ->
  int ->
  Memo.alternative ->
  pick:(int -> Props.req -> assumed:Props.derived option -> Memo.alternative) ->
  Expr.plan
(** Materialize one alternative, choosing child alternatives through [pick].
    [assumed] passes the properties the parent's costing assumed that child
    delivered ([Memo.a_child_derived]); a sound [pick] only returns
    alternatives covering them ([Props.derived_covers]). Node costs are
    rolled up from the children actually materialized. *)

val count_plans : Memo.t -> int -> Props.req -> float
(** Number of distinct plans recorded for (group, request); float-valued to
    tolerate very large spaces. *)

val sample_plan : Gpos.Prng.t -> Memo.t -> int -> Props.req -> Expr.plan
(** Draw a plan uniformly from the recorded plan space: alternatives are
    chosen with probability proportional to their subtree plan counts. *)

open Ir

(* The Memo (paper §3, §4.1): a compact encoding of the plan space.

   Groups hold logically equivalent expressions (logical and physical
   alike). Group expressions are operators whose children are groups.
   Duplicate detection is topology-based: an operator fingerprint plus the
   canonical ids of its child groups. Inserting an expression that already
   exists in a different group merges the two groups (union-find).

   Each group owns a hash table of optimization contexts: one per
   optimization request (required properties), recording the best group
   expression, its child requests and enforcers — the linkage structure used
   for plan extraction (paper Fig. 6) and for TAQO's uniform plan sampling. *)

(* Where a group expression came from (lib/prov): the xform that produced
   it, the group expression it was derived from, and the stage/promise at
   application time. [None] marks copy-in expressions (the original query
   tree). Recording the source *expression id* rather than a pointer keeps
   the memo acyclic and lets lineage survive group merges. *)
type origin = {
  o_rule : string; (* xform name, e.g. "join-commute" *)
  o_rule_id : int;
  o_source : int; (* ge_id of the expression the rule was applied to *)
  o_stage : string; (* optimization stage the application ran in *)
  o_promise : int; (* the rule's promise when scheduled *)
}

type gexpr = {
  ge_id : int;
  ge_op : Expr.op;
  ge_op_id : int; (* interned operator id; -1 when interning is off *)
  ge_children : int list; (* group ids as of insertion; canonicalize on use *)
  mutable ge_group : int;
  ge_origin : origin option; (* None = copy-in of the original query tree *)
  mutable ge_explored : bool;
  mutable ge_implemented : bool;
  mutable ge_applied : int list; (* rule ids already applied *)
}

(* One costed way of satisfying a request with a particular group expression:
   child requests (the linkage), enforcers stacked on top, total cost. *)
type alternative = {
  a_gexpr : gexpr;
  a_child_reqs : Props.req list;
  a_child_derived : Props.derived list;
      (* what each child best delivered when this alternative was costed;
         [a_derived] was computed from exactly these, so a plan sampler may
         only substitute child alternatives covering them *)
  a_enforcers : Props.enforcer list; (* applied bottom-up above the gexpr *)
  a_enf_costs : float list; (* incremental cost of each enforcer *)
  a_local_cost : float; (* the operator's own cost, children excluded *)
  a_cost : float; (* total: operator + children + enforcers *)
  a_derived : Props.derived; (* properties delivered after enforcers *)
}

type ctx_state = Ctx_new | Ctx_in_progress | Ctx_complete

type context = {
  cx_id : int; (* process-unique, so sanitizer object names never collide *)
  cx_req : Props.req;
  mutable cx_state : ctx_state;
  mutable cx_best : alternative option;
  mutable cx_alts : alternative list; (* every costed alternative (for TAQO) *)
}

let next_cx_id = Atomic.make 0

type group = {
  g_id : int;
  mutable g_exprs : gexpr list; (* in insertion order *)
  mutable g_output_cols : Colref.t list;
  mutable g_stats : Stats.Relstats.t option;
  mutable g_explored : bool;
  mutable g_implemented : bool;
  mutable g_merged_into : int option;
  g_contexts : (int, context list) Hashtbl.t; (* req fingerprint -> contexts *)
  g_lock : Mutex.t;
}

(* Growth counters for the observability report (lib/obs). Insert-side
   counters are plain ints mutated under [t.lock]; context/winner counters
   are atomics because [obtain_context] and [record_alternative] run under
   per-group locks, concurrently across groups. *)
type obs_counters = {
  mutable oc_inserts : int;      (* insert_gexpr calls *)
  mutable oc_dedup_hits : int;   (* resolved to an existing expression *)
  mutable oc_merges : int;       (* group merges from duplicate detection *)
  oc_ctx_created : int Atomic.t;
  oc_ctx_hits : int Atomic.t;    (* obtain_context found an existing context *)
  oc_winner_updates : int Atomic.t; (* record_alternative improved cx_best *)
  oc_winner_kept : int Atomic.t;    (* incumbent survived the challenge *)
}

(* Moved above [create] so the interner can be built with them. *)
let op_fingerprint = function
  | Expr.Logical l -> Hashtbl.hash (0, Logical_ops.fingerprint l)
  | Expr.Physical p -> Hashtbl.hash (1, Physical_ops.fingerprint p)

let op_equal a b =
  match (a, b) with
  | Expr.Logical x, Expr.Logical y -> Logical_ops.equal x y
  | Expr.Physical x, Expr.Physical y -> Physical_ops.equal x y
  | _ -> false

type t = {
  mutable groups : group array;
  mutable ngroups : int;
  mutable ngexprs : int;
  dedup : (int, gexpr) Hashtbl.t;
  op_intern : Expr.op Intern.t option;
      (* hash-consing of operator payloads: identical operators share one
         dense id (and one representative value), so duplicate detection
         compares ints instead of deep structures. None = interning off. *)
  mutable root : int;
  lock : Mutex.t;
  mutable cte_producer_groups : (int * int) list; (* cte id -> producer group *)
  obs : obs_counters;
}

let create ?(interning = true) () =
  {
    groups = [||];
    ngroups = 0;
    ngexprs = 0;
    dedup = Hashtbl.create 256;
    op_intern =
      (if interning then
         Some (Intern.create ~hash:op_fingerprint ~equal:op_equal ())
       else None);
    root = -1;
    lock = Mutex.create ();
    cte_producer_groups = [];
    obs =
      {
        oc_inserts = 0;
        oc_dedup_hits = 0;
        oc_merges = 0;
        oc_ctx_created = Atomic.make 0;
        oc_ctx_hits = Atomic.make 0;
        oc_winner_updates = Atomic.make 0;
        oc_winner_kept = Atomic.make 0;
      };
  }

(* Snapshot of the growth counters, for Obs.Report. *)
type profile = {
  p_inserts : int;
  p_dedup_hits : int;
  p_merges : int;
  p_ctx_created : int;
  p_ctx_hits : int;
  p_winner_updates : int;
  p_winner_kept : int;
  p_ops_interned : int; (* distinct operator payloads (0 when interning off) *)
  p_intern_hits : int;  (* operators that resolved to an existing id *)
}

let profile t =
  {
    p_inserts = t.obs.oc_inserts;
    p_dedup_hits = t.obs.oc_dedup_hits;
    p_merges = t.obs.oc_merges;
    p_ctx_created = Atomic.get t.obs.oc_ctx_created;
    p_ctx_hits = Atomic.get t.obs.oc_ctx_hits;
    p_winner_updates = Atomic.get t.obs.oc_winner_updates;
    p_winner_kept = Atomic.get t.obs.oc_winner_kept;
    p_ops_interned =
      (match t.op_intern with None -> 0 | Some tbl -> Intern.size tbl);
    p_intern_hits =
      (match t.op_intern with None -> 0 | Some tbl -> Intern.hits tbl);
  }

(* Sanitizer hooks: when a Gpos.Trace sink is installed, every lock
   acquisition and every access to shared optimization state is published so
   the race detector can replay them. With no sink this is a branch. *)
let trace_access obj write =
  if Gpos.Trace.enabled () then
    Gpos.Trace.emit (Gpos.Trace.Access { obj = obj (); write })

let with_lock t f =
  Mutex.lock t.lock;
  if Gpos.Trace.enabled () then
    Gpos.Trace.emit (Gpos.Trace.Lock_acquired { lock = "memo" });
  Fun.protect
    ~finally:(fun () ->
      if Gpos.Trace.enabled () then
        Gpos.Trace.emit (Gpos.Trace.Lock_released { lock = "memo" });
      Mutex.unlock t.lock)
    f

let with_group_lock (g : group) f =
  Mutex.lock g.g_lock;
  if Gpos.Trace.enabled () then
    Gpos.Trace.emit
      (Gpos.Trace.Lock_acquired { lock = "group:" ^ string_of_int g.g_id });
  Fun.protect
    ~finally:(fun () ->
      if Gpos.Trace.enabled () then
        Gpos.Trace.emit
          (Gpos.Trace.Lock_released { lock = "group:" ^ string_of_int g.g_id });
      Mutex.unlock g.g_lock)
    f

let group_unsafe t id = t.groups.(id)

(* Canonical group id after merges. *)
let rec find t id =
  let g = group_unsafe t id in
  match g.g_merged_into with None -> id | Some parent -> find t parent

let group t id = group_unsafe t (find t id)

let ngroups t = t.ngroups
let ngexprs t = t.ngexprs
let root t = find t t.root
let set_root t id = t.root <- id

let group_ids t = List.init t.ngroups (fun i -> i) |> List.filter (fun i -> (group_unsafe t i).g_merged_into = None)

let output_cols t id = (group t id).g_output_cols

(* Dedup key over (operator, canonical child groups). With interning on the
   operator part is its dense id; otherwise a structural fingerprint. The
   [children] list is already canonicalized by the caller. *)
let gexpr_key op_id op children =
  if op_id >= 0 then Hashtbl.hash (op_id, children)
  else Hashtbl.hash (op_fingerprint op, children)

(* With interning, operator equality is one int comparison: both sides were
   resolved through the same intern table. *)
let gexpr_equal t (ge : gexpr) op_id op children =
  (if op_id >= 0 && ge.ge_op_id >= 0 then ge.ge_op_id = op_id
   else op_equal ge.ge_op op)
  && List.length ge.ge_children = List.length children
  && List.for_all2
       (fun a b -> find t a = find t b)
       ge.ge_children children

let add_group_slot t =
  if t.ngroups = Array.length t.groups then begin
    let cap = max 16 (2 * Array.length t.groups) in
    let fresh =
      Array.init cap (fun i ->
          if i < t.ngroups then t.groups.(i)
          else
            {
              g_id = i;
              g_exprs = [];
              g_output_cols = [];
              g_stats = None;
              g_explored = false;
              g_implemented = false;
              g_merged_into = None;
              g_contexts = Hashtbl.create 8;
              g_lock = Mutex.create ();
            })
    in
    t.groups <- fresh
  end;
  let id = t.ngroups in
  t.ngroups <- t.ngroups + 1;
  id

(* Merge group [loser] into [winner]: they were discovered to be logically
   equivalent by duplicate detection. *)
let merge_groups t winner loser =
  if winner <> loser then begin
    t.obs.oc_merges <- t.obs.oc_merges + 1;
    let w = group_unsafe t winner and l = group_unsafe t loser in
    l.g_merged_into <- Some winner;
    List.iter (fun ge -> ge.ge_group <- winner) l.g_exprs;
    w.g_exprs <- w.g_exprs @ l.g_exprs;
    l.g_exprs <- [];
    w.g_explored <- w.g_explored && l.g_explored;
    w.g_implemented <- w.g_implemented && l.g_implemented;
    if w.g_stats = None then w.g_stats <- l.g_stats;
    (* contexts of the loser are dropped; they will be recomputed on demand *)
    if t.root = loser then t.root <- winner
  end

(* Insert an operator with child groups into [target] (fresh group when
   None). Returns the resulting gexpr (possibly pre-existing). *)
let insert_gexpr t ?origin ?target op children : gexpr =
  with_lock t (fun () ->
      trace_access (fun () -> "memo.index") true;
      t.obs.oc_inserts <- t.obs.oc_inserts + 1;
      let children = List.map (fun c -> find t c) children in
      (* hash-cons the operator: structurally-equal payloads share one dense
         id and one representative value *)
      let op, op_id =
        match t.op_intern with
        | Some tbl -> Intern.intern_rep tbl op
        | None -> (op, -1)
      in
      let key = gexpr_key op_id op children in
      let existing =
        match Hashtbl.find_all t.dedup key with
        | [] -> None
        | candidates ->
            List.find_opt
              (fun ge -> gexpr_equal t ge op_id op children)
              candidates
      in
      match existing with
      | Some ge ->
          t.obs.oc_dedup_hits <- t.obs.oc_dedup_hits + 1;
          let owner = find t ge.ge_group in
          (match target with
          | Some tgt when find t tgt <> owner ->
              (* same expression found in two groups: they are equivalent *)
              merge_groups t (find t tgt) owner
          | _ -> ());
          ge
      | None ->
          let gid =
            match target with Some tgt -> find t tgt | None -> add_group_slot t
          in
          let ge =
            {
              ge_id = t.ngexprs;
              ge_op = op;
              ge_op_id = op_id;
              ge_children = children;
              ge_group = gid;
              ge_origin = origin;
              ge_explored = false;
              ge_implemented = false;
              ge_applied = [];
            }
          in
          t.ngexprs <- t.ngexprs + 1;
          Hashtbl.add t.dedup key ge;
          let g = group_unsafe t gid in
          g.g_exprs <- g.g_exprs @ [ ge ];
          (* new logical expression invalidates exploration completeness *)
          (match op with
          | Expr.Logical _ ->
              g.g_explored <- false;
              g.g_implemented <- false
          | Expr.Physical _ -> ());
          if g.g_output_cols = [] then begin
            let child_cols =
              List.map (fun c -> (group t c).g_output_cols) children
            in
            match op with
            | Expr.Logical l ->
                g.g_output_cols <- Logical_ops.output_cols l child_cols
            | Expr.Physical p ->
                g.g_output_cols <- Physical_ops.output_cols p child_cols
          end;
          (* track CTE producer groups for stats derivation *)
          (match op with
          | Expr.Logical (Expr.L_cte_anchor cte_id) -> (
              match children with
              | producer :: _ ->
                  if not (List.mem_assoc cte_id t.cte_producer_groups) then
                    t.cte_producer_groups <-
                      (cte_id, producer) :: t.cte_producer_groups
              | [] -> ())
          | _ -> ());
          ge)

(* Copy a mixed expression tree in, bottom-up. *)
let rec insert t ?origin ?target (node : Mexpr.t) : gexpr =
  let children =
    List.map
      (function
        | Mexpr.Group g -> find t g
        | Mexpr.Node n ->
            let ge = insert t ?origin n in
            find t ge.ge_group)
      node.Mexpr.children
  in
  insert_gexpr t ?origin ?target node.Mexpr.op children

let cte_producer_group t cte_id =
  List.assoc_opt cte_id t.cte_producer_groups |> Option.map (find t)

let logical_exprs g =
  List.filter_map
    (fun ge ->
      match ge.ge_op with Expr.Logical l -> Some (ge, l) | _ -> None)
    g.g_exprs

let physical_exprs g =
  List.filter_map
    (fun ge ->
      match ge.ge_op with Expr.Physical p -> Some (ge, p) | _ -> None)
    g.g_exprs

(* Lookup by expression id, for provenance lineage walks. Merged groups move
   their expressions to the winner, so scanning live groups covers every
   expression ever inserted. Only called on explicit --why requests, so a
   scan beats maintaining an index on the insert hot path. *)
let gexpr_by_id t id : gexpr option =
  let found = ref None in
  let n = t.ngroups in
  let i = ref 0 in
  while !found = None && !i < n do
    let g = t.groups.(!i) in
    (match List.find_opt (fun ge -> ge.ge_id = id) g.g_exprs with
    | Some ge -> found := Some ge
    | None -> ());
    incr i
  done;
  !found

(* --- Optimization contexts (group hash tables, paper Fig. 6) --- *)

let find_context t gid (req : Props.req) : context option =
  let g = group t gid in
  with_group_lock g (fun () ->
      trace_access (fun () -> Printf.sprintf "group:%d.ctxs" g.g_id) false;
      let fp = Props.req_fingerprint req in
      match Hashtbl.find_opt g.g_contexts fp with
      | None -> None
      | Some ctxs -> List.find_opt (fun c -> Props.req_equal c.cx_req req) ctxs)

(* Find-or-create; the boolean tells the caller whether it created it (and
   therefore owns computing it). *)
let obtain_context t gid (req : Props.req) : context * bool =
  let g = group t gid in
  with_group_lock g (fun () ->
      let fp = Props.req_fingerprint req in
      let existing =
        match Hashtbl.find_opt g.g_contexts fp with
        | None -> None
        | Some ctxs -> List.find_opt (fun c -> Props.req_equal c.cx_req req) ctxs
      in
      match existing with
      | Some c ->
          Atomic.incr t.obs.oc_ctx_hits;
          trace_access (fun () -> Printf.sprintf "group:%d.ctxs" g.g_id) false;
          (c, false)
      | None ->
          Atomic.incr t.obs.oc_ctx_created;
          trace_access (fun () -> Printf.sprintf "group:%d.ctxs" g.g_id) true;
          let c =
            {
              cx_id = Atomic.fetch_and_add next_cx_id 1;
              cx_req = req;
              cx_state = Ctx_new;
              cx_best = None;
              cx_alts = [];
            }
          in
          let prev =
            Option.value ~default:[] (Hashtbl.find_opt g.g_contexts fp)
          in
          Hashtbl.replace g.g_contexts fp (c :: prev);
          (c, true))

(* Deterministic order on equal-cost alternatives, so the winner does not
   depend on the arrival order of parallel costing jobs (which would make
   the chosen plan schedule-dependent even at identical cost). *)
let alt_key (a : alternative) =
  ( a.a_gexpr.ge_id,
    List.map Props.req_fingerprint a.a_child_reqs,
    List.length a.a_enforcers,
    Hashtbl.hash a.a_enforcers )

let record_alternative t gid (ctx : context) (alt : alternative) =
  let g = group t gid in
  with_group_lock g (fun () ->
      trace_access (fun () -> Printf.sprintf "ctx:%d.best" ctx.cx_id) true;
      ctx.cx_alts <- alt :: ctx.cx_alts;
      match ctx.cx_best with
      | Some best
        when best.a_cost < alt.a_cost
             || (best.a_cost = alt.a_cost && alt_key best <= alt_key alt) ->
          Atomic.incr t.obs.oc_winner_kept
      | _ ->
          Atomic.incr t.obs.oc_winner_updates;
          ctx.cx_best <- Some alt)

let contexts_of_group t gid =
  let g = group t gid in
  Hashtbl.fold (fun _ ctxs acc -> ctxs @ acc) g.g_contexts []

(* --- statistics --- *)

let stats t gid =
  let g = group t gid in
  trace_access (fun () -> Printf.sprintf "group:%d.stats" g.g_id) false;
  g.g_stats

let set_stats t gid s =
  let g = group t gid in
  trace_access (fun () -> Printf.sprintf "group:%d.stats" g.g_id) true;
  g.g_stats <- Some s

(* Structural checksum over everything a rule's [apply] could corrupt:
   group/expression counts, the root, per-group topology (expression ids,
   operators, child links), output columns, merge links and completion
   flags. Contexts and stats are deliberately excluded — the engine
   mutates those concurrently around rule application, and the no-mutation
   contract is about the logical plan space, not the costing caches. *)
let checksum t =
  with_lock t (fun () ->
      let acc = ref (Hashtbl.hash (t.ngroups, t.ngexprs, t.root)) in
      let mix v = acc := Hashtbl.hash (!acc, v) in
      for gid = 0 to t.ngroups - 1 do
        let g = group_unsafe t gid in
        mix
          ( g.g_id,
            g.g_merged_into,
            g.g_explored,
            g.g_implemented,
            List.map Colref.id g.g_output_cols );
        List.iter
          (fun ge ->
            mix
              ( ge.ge_id,
                op_fingerprint ge.ge_op,
                ge.ge_children,
                ge.ge_group ))
          g.g_exprs
      done;
      !acc)

(* --- debugging / the Fig. 4 and Fig. 6 displays --- *)

let gexpr_to_string t ge =
  let op_str =
    match ge.ge_op with
    | Expr.Logical l -> Logical_ops.to_string l
    | Expr.Physical p -> Physical_ops.to_string p
  in
  let children = List.map (fun c -> string_of_int (find t c)) ge.ge_children in
  Printf.sprintf "%d: %s [%s]" ge.ge_id op_str (String.concat "," children)

(* Graphviz export: one record node per group listing its expressions, one
   edge per (expression slot -> child group). *)
let to_dot t =
  let buf = Buffer.create 1024 in
  let esc s =
    String.concat ""
      (List.map
         (fun c ->
           match c with
           | '<' -> "&lt;"
           | '>' -> "&gt;"
           | '"' -> "&quot;"
           | '&' -> "&amp;"
           | '|' -> "\\|"
           | '{' -> "\\{"
           | '}' -> "\\}"
           | c -> String.make 1 c)
         (List.init (String.length s) (String.get s)))
  in
  Buffer.add_string buf "digraph memo {\n  rankdir=TB;\n  node [shape=record, fontsize=10];\n";
  List.iter
    (fun gid ->
      let g = group_unsafe t gid in
      let rows =
        match g.g_stats with
        | Some s -> Printf.sprintf " rows=%.0f" (Stats.Relstats.rows s)
        | None -> ""
      in
      let cells =
        List.mapi
          (fun i ge ->
            let op =
              match ge.ge_op with
              | Expr.Logical l -> Logical_ops.to_string l
              | Expr.Physical p -> Physical_ops.to_string p
            in
            Printf.sprintf "<e%d> %s" i (esc op))
          g.g_exprs
      in
      Buffer.add_string buf
        (Printf.sprintf "  g%d [label=\"{GROUP %d%s%s|%s}\"];\n" gid gid
           (if gid = root t then " (root)" else "")
           rows
           (String.concat "|" cells));
      List.iteri
        (fun i ge ->
          List.iter
            (fun child ->
              Buffer.add_string buf
                (Printf.sprintf "  g%d:e%d -> g%d;\n" gid i (find t child)))
            ge.ge_children)
        g.g_exprs)
    (group_ids t);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_string t =
  let buf = Buffer.create 512 in
  List.iter
    (fun gid ->
      let g = group_unsafe t gid in
      Buffer.add_string buf
        (Printf.sprintf "GROUP %d%s%s\n" gid
           (if gid = root t then " (root)" else "")
           (match g.g_stats with
           | Some s -> Printf.sprintf "  rows=%.1f" (Stats.Relstats.rows s)
           | None -> ""));
      List.iter
        (fun ge ->
          Buffer.add_string buf ("  " ^ gexpr_to_string t ge ^ "\n"))
        g.g_exprs)
    (group_ids t);
  Buffer.contents buf

(** Relation statistics: a row count plus a histogram per column. Attached to
    Memo groups and incrementally extended during optimization (paper §4.1,
    Fig. 5). *)

open Ir

type col_stats = { hist : Histogram.t }

type t = { rows : float; cols : col_stats Colref.Map.t; version : int }
(** [version] is the stats-snapshot version these statistics were derived
    from (0 when unversioned); derived stats carry the newest version of any
    input so a cached plan can be validated against the snapshot it was built
    from. *)

val empty : t
val rows : t -> float

val version : t -> int
(** Stats-snapshot version these statistics were derived from. *)

val set_version : t -> int -> t

val make : ?version:int -> rows:float -> (Colref.t * Histogram.t) list -> t
val find_col : t -> Colref.t -> col_stats option
val col_hist : t -> Colref.t -> Histogram.t option

val default_ndv : float
(** Distinct-count guess for columns with no histogram. *)

val col_ndv : t -> Colref.t -> float
val col_skew : t -> Colref.t -> float
val col_null_frac : t -> Colref.t -> float
val set_col : t -> Colref.t -> Histogram.t -> t
val set_rows : t -> float -> t

val scale : t -> float -> t
(** Scale the row count and every histogram by a selectivity factor. *)

val merge_cols : t -> t -> t
(** Combine the column maps of two join inputs (disjoint column sets); keeps
    the first argument's row count. *)

val width_of_cols : Colref.t list -> int
val row_width : Colref.t list -> float
(** Average row width in bytes for a set of output columns. *)

val to_string : t -> string

open Ir

(* Relation statistics: a row count and a histogram per column. Attached to
   Memo groups and incrementally extended (paper §4.1, Fig. 5). *)

type col_stats = { hist : Histogram.t }

type t = { rows : float; cols : col_stats Colref.Map.t; version : int }

let empty = { rows = 0.0; cols = Colref.Map.empty; version = 0 }

let rows t = t.rows

let version t = t.version

let set_version t version = { t with version }

let make ?(version = 0) ~rows cols_list =
  let cols =
    List.fold_left
      (fun m (c, h) -> Colref.Map.add c { hist = h } m)
      Colref.Map.empty cols_list
  in
  { rows; cols; version }

let find_col t c = Colref.Map.find_opt c t.cols

let col_hist t c =
  match find_col t c with Some cs -> Some cs.hist | None -> None

(* Default when no histogram is known: assume [default_ndv] distinct values. *)
let default_ndv = 100.0

let col_ndv t c =
  match col_hist t c with
  | Some h when not (Histogram.is_empty h) ->
      Float.max 1.0 (Histogram.ndv h)
  | _ -> Float.min default_ndv (Float.max 1.0 t.rows)

let col_skew t c =
  match col_hist t c with Some h -> Histogram.skew h | None -> 1.0

let col_null_frac t c =
  match col_hist t c with Some h -> Histogram.null_fraction h | None -> 0.0

let set_col t c h = { t with cols = Colref.Map.add c { hist = h } t.cols }

let set_rows t rows = { t with rows = Float.max 0.0 rows }

(* Scale every histogram and the row count by [factor] (selectivity). *)
let scale t factor =
  let factor = Float.max 0.0 factor in
  {
    t with
    rows = t.rows *. factor;
    cols = Colref.Map.map (fun cs -> { hist = Histogram.scale cs.hist factor }) t.cols;
  }

(* Combine column maps of two join inputs (disjoint column sets). Derived
   stats carry the newest snapshot version of any input. *)
let merge_cols a b =
  {
    rows = a.rows;
    cols = Colref.Map.union (fun _ x _ -> Some x) a.cols b.cols;
    version = max a.version b.version;
  }

let width_of_cols cols =
  List.fold_left (fun acc c -> acc + Dtype.width (Colref.ty c)) 0 cols

(* Average row width in bytes for a set of output columns. *)
let row_width cols = float_of_int (width_of_cols cols)

let to_string t =
  let cols =
    Colref.Map.bindings t.cols
    |> List.map (fun (c, cs) ->
           Printf.sprintf "%s: ndv=%.1f" (Colref.to_string c)
             (Histogram.ndv cs.hist))
  in
  Printf.sprintf "rows=%.1f {%s}" t.rows (String.concat "; " cols)

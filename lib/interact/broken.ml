open Ir
module Memo = Memolib.Memo
module Mexpr = Memolib.Mexpr
module Rule = Xform.Rule

(* Deliberately pathological rules: regression fixtures proving the
   interaction analyzer catches each failure mode with a distinct diagnostic
   id. Never registered in any production rule set. *)

(* --- interact/unbounded-cycle -------------------------------------------
   A two-rule ping-pong whose payload strictly grows each round, so the
   Memo's duplicate detection can never close the orbit: Select(p) becomes
   Limit(offset = |conjuncts p|), which becomes Select of offset+1 trivial
   conjuncts, which becomes Limit(offset+1), ... Every derivation is a
   structurally novel expression; the bounded fixpoint overflows. *)
let cycle_wrap_limit =
  Rule.make ~name:"CycleWrapLimit" ~kind:Rule.Exploration
    ~shapes:[ Logical_ops.S_select ]
    ~produces:[ Logical_ops.S_limit ]
    (fun _ctx _memo ge ->
      match Rule.logical_op ge with
      | Some (Expr.L_select pred) -> (
          match ge.Memo.ge_children with
          | [ g ] ->
              let off = List.length (Scalar_ops.conjuncts pred) in
              [
                Mexpr.logical_of_groups
                  (Expr.L_limit (Sortspec.empty, off, None))
                  [ g ];
              ]
          | _ -> [])
      | _ -> [])

let cycle_wrap_select =
  Rule.make ~name:"CycleWrapSelect" ~kind:Rule.Exploration
    ~shapes:[ Logical_ops.S_limit ]
    ~produces:[ Logical_ops.S_select ]
    (fun _ctx _memo ge ->
      match Rule.logical_op ge with
      | Some (Expr.L_limit (_, off, _)) -> (
          match ge.Memo.ge_children with
          | [ g ] ->
              (* [false] conjuncts, not [true]: Scalar_ops.conjuncts drops
                 trivial [true]s, which would collapse the counter *)
              let pred =
                Expr.And
                  (List.init (off + 1) (fun _ -> Expr.Const (Datum.Bool false)))
              in
              [ Mexpr.logical_of_groups (Expr.L_select pred) [ g ] ]
          | _ -> [])
      | _ -> [])

(* --- interact/produces-undeclared + interact/produces-dead --------------
   Declares it produces Project but actually commutes inner joins: the
   observed mask contains S_join (escaped the declaration, an error) while
   the declared S_project never shows up (dead, a warning). *)
let lying_produces =
  Rule.make ~name:"LyingProduces" ~kind:Rule.Exploration
    ~shapes:[ Logical_ops.S_join ]
    ~produces:[ Logical_ops.S_project ]
    (fun _ctx _memo ge ->
      match Rule.logical_op ge with
      | Some (Expr.L_join (Expr.Inner, cond)) -> (
          match ge.Memo.ge_children with
          | [ g1; g2 ] ->
              [
                Mexpr.logical_of_groups (Expr.L_join (Expr.Inner, cond))
                  [ g2; g1 ];
              ]
          | _ -> [])
      | _ -> [])

(* --- interact/unreachable-rule ------------------------------------------
   Matches only Apply — but the optimizer decorrelates before copy-in, so no
   root query ever carries Apply into the Memo, and no production rule
   produces one. The rule is shadowed by preprocessing. *)
let shadowed_apply =
  Rule.make ~name:"ShadowedApplyRule" ~kind:Rule.Exploration
    ~shapes:[ Logical_ops.S_apply ]
    ~produces:[]
    (fun _ctx _memo _ge -> [])

(* --- interact/promise-inversion -----------------------------------------
   The consumer only ever gets work from the low-promise feeder (Apply never
   reaches the Memo from a root query), yet its promise is far higher than
   its only feeder's: the scheduler keeps trying it long before the rule
   that could give it something to match. *)
let inversion_feeder =
  Rule.make ~name:"InversionFeeder" ~kind:Rule.Exploration ~promise:1
    ~shapes:[ Logical_ops.S_select ]
    ~produces:[ Logical_ops.S_apply ]
    (fun _ctx _memo ge ->
      match Rule.logical_op ge with
      | Some (Expr.L_select _) -> (
          match ge.Memo.ge_children with
          | [ g ] ->
              [
                Mexpr.logical_of_groups
                  (Expr.L_apply (Expr.Apply_exists, []))
                  [ g; g ];
              ]
          | _ -> [])
      | _ -> [])

let inversion_consumer =
  Rule.make ~name:"InversionConsumer" ~kind:Rule.Exploration ~promise:9
    ~shapes:[ Logical_ops.S_apply ]
    ~produces:[]
    (fun _ctx _memo _ge -> [])

(* --- interact/mask-defaulted --------------------------------------------
   Omits [~shapes]: silently applicable everywhere, defeating the engine's
   prefilter and making the interaction graph treat it as fed by every rule.
   (An audit found no production rule doing this; the fixture keeps the
   check honest.) *)
let defaulted_mask =
  Rule.make ~name:"DefaultedMask" ~kind:Rule.Exploration ~produces:[]
    (fun _ctx _memo _ge -> [])

let cycle_pair = [ cycle_wrap_limit; cycle_wrap_select ]
let inversion_pair = [ inversion_feeder; inversion_consumer ]

let all_rules =
  cycle_pair
  @ [ lying_produces; shadowed_apply ]
  @ inversion_pair
  @ [ defaulted_mask ]

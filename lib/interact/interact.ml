(* lib/interact: the rule-interaction, termination and search-space analyzer.

   Where lib/rulecheck audits each rule in isolation (is one application
   sound?), this library analyzes the rule set as a *system*: which rules
   feed which (the interaction graph over the abstract shape domain), which
   cycles are bounded by the Memo's duplicate detection and which keep
   minting novel expressions (termination), which rules no derivation can
   ever reach (shadowing), where the promise order fights the feed order
   (inversions), and how large a group can get as a function of its join
   count (the static growth bound, checked against real Memos). The SCC
   condensation's topological order is the stratification
   [Orca_config.with_strata] schedules by. *)

module Model = Rulecheck.Model
module Infer = Infer
module Graph = Graph
module Broken = Broken
module Diagnostic = Verify.Diagnostic
module Rule = Xform.Rule
open Ir

type rule_report = {
  rr_rule : Rule.t;
  rr_observed : int; (* inferred produced-shape mask *)
  rr_fired : bool;
  rr_max_alts : int; (* most alternatives one application returned *)
  rr_stratum : int;
  rr_scc : int; (* SCC index in topological order *)
  rr_reachable : bool;
}

type report = {
  rules : rule_report list; (* registration order *)
  nedges : int;
  sccs : string list list; (* topological order, feeders first *)
  n_cyclic : int; (* SCCs that can feed themselves (incl. self-loops) *)
  root_mask : int; (* shapes of the preprocessed corpus queries *)
  seeds : int;
  cases : int;
  c_nonjoin : int; (* largest non-join logical orbit at corpus fixpoint *)
  p_max : int; (* worst per-shape implementation fan-out *)
  fixpoint_gexprs : int; (* corpus exploration fixpoint size (sum) *)
  fixpoint_overflowed : bool;
  diags : Diagnostic.t list;
  dot : string;
}

let default_seeds = 2
let default_bound = 2000

let emit sink ~id ~severity ~path ~node fmt =
  Printf.ksprintf
    (fun msg ->
      Diagnostic.emit sink
        (Diagnostic.make ~rule:id ~severity ~path ~node "%s" msg))
    fmt

let cycle_path (rules : Rule.t array) (comp : int list) : string =
  let names = List.map (fun i -> rules.(i).Rule.name) comp in
  String.concat " -> " (names @ [ List.hd names ])

(* Analyze [rules] as a system over [seeds] deterministic rulecheck worlds. *)
let analyze ?(seeds = default_seeds) ?(bound = default_bound)
    (rules : Rule.t list) : report =
  let sink = Diagnostic.sink () in
  (* --- static: silently-defaulted prefilter masks --- *)
  List.iter
    (fun (r : Rule.t) ->
      if r.Rule.mask_defaulted then
        emit sink ~id:"interact/mask-defaulted" ~severity:Diagnostic.Warning
          ~path:"(static)" ~node:r.Rule.name
          "rule omits ~shapes: it pre-filters nothing and the interaction \
           graph must assume every rule feeds it")
    rules;
  (* --- producer inference: observe one application per rule per logical
     expression of every corpus case --- *)
  let worlds = List.init seeds (fun i -> Model.world ~seed:(i + 1)) in
  let obs_tbl : (int, Infer.obs) Hashtbl.t = Hashtbl.create 32 in
  let obs_of (r : Rule.t) =
    match Hashtbl.find_opt obs_tbl r.Rule.id with
    | Some o -> o
    | None ->
        let o = Infer.obs () in
        Hashtbl.add obs_tbl r.Rule.id o;
        o
  in
  List.iter
    (fun (w : Model.t) ->
      List.iter (Infer.observe_case rules obs_of) w.Model.cases)
    worlds;
  (* --- enrichment + growth calibration: exploration-only fixpoint over the
     first world's corpus, recording shapes of every derived alternative --- *)
  let explo = List.filter Rule.is_exploration rules in
  let corpus = (List.hd worlds).Model.cases in
  let on_result (r : Rule.t) mx =
    let o = obs_of r in
    o.Infer.ob_fired <- true;
    o.Infer.ob_produced <- o.Infer.ob_produced lor Infer.mexpr_shapes mx
  in
  let fx_total = ref 0 in
  let fx_overflowed = ref false in
  let c_nonjoin = ref 0 in
  List.iter
    (fun case ->
      let fx = Infer.explore_fixpoint ~bound ~on_result explo case in
      fx_total := !fx_total + fx.Infer.fx_gexprs;
      if fx.Infer.fx_overflowed then fx_overflowed := true
      else
        c_nonjoin := max !c_nonjoin (Infer.max_nonjoin_orbit fx.Infer.fx_memo))
    corpus;
  (* --- declared vs inferred produces --- *)
  List.iter
    (fun (r : Rule.t) ->
      let o = obs_of r in
      match r.Rule.produces with
      | None ->
          emit sink ~id:"interact/produces-undeclared"
            ~severity:Diagnostic.Warning ~path:"(corpus)" ~node:r.Rule.name
            "rule declares no ~produces; inferred output shapes: %s"
            (Logical_ops.mask_to_string o.Infer.ob_produced)
      | Some declared ->
          let escaped = Logical_ops.mask_diff o.Infer.ob_produced declared in
          if escaped <> 0 then
            emit sink ~id:"interact/produces-undeclared"
              ~severity:Diagnostic.Error ~path:"(corpus)" ~node:r.Rule.name
              "alternatives contain shapes outside the declared ~produces: %s \
               (declared %s)"
              (Logical_ops.mask_to_string escaped)
              (Logical_ops.mask_to_string declared);
          let dead = Logical_ops.mask_diff declared o.Infer.ob_produced in
          if dead <> 0 && o.Infer.ob_fired then
            emit sink ~id:"interact/produces-dead" ~severity:Diagnostic.Warning
              ~path:"(corpus)" ~node:r.Rule.name
              "declared ~produces shapes never observed in any alternative: \
               %s"
              (Logical_ops.mask_to_string dead))
    rules;
  (* --- interaction graph over effective produces (observed | declared) --- *)
  let produces (r : Rule.t) =
    let o = obs_of r in
    Logical_ops.mask_union o.Infer.ob_produced
      (Option.value ~default:0 r.Rule.produces)
  in
  let g = Graph.build rules ~produces in
  let comps = Graph.sccs g in
  let strata = Graph.stratify g comps in
  let scc_of = Array.make (Array.length g.Graph.rules) 0 in
  List.iteri
    (fun ci ns -> List.iter (fun v -> scc_of.(v) <- ci) ns)
    comps;
  (* --- termination: bounded concrete fixpoint per cyclic SCC --- *)
  List.iter
    (fun comp ->
      if Graph.is_cyclic g comp then begin
        let scc_rules = List.map (fun i -> g.Graph.rules.(i)) comp in
        let overflow =
          List.exists
            (fun case ->
              (Infer.explore_fixpoint ~bound scc_rules case)
                .Infer.fx_overflowed)
            corpus
        in
        if overflow then
          emit sink ~id:"interact/unbounded-cycle" ~severity:Diagnostic.Error
            ~path:(cycle_path g.Graph.rules comp)
            ~node:(List.hd (List.map (fun i -> g.Graph.rules.(i).Rule.name) comp))
            "rule cycle keeps producing structurally novel expressions: the \
             exploration fixpoint exceeded %d group expressions (duplicate \
             detection never closes the orbit)"
            bound
      end)
    comps;
  (* --- reachability and promise inversions --- *)
  let root_mask =
    List.fold_left
      (fun acc w -> acc lor Infer.root_shapes w)
      0 worlds
  in
  let reach = Graph.reachable g ~root_mask in
  Array.iteri
    (fun i (r : Rule.t) ->
      if not reach.(i) then
        emit sink ~id:"interact/unreachable-rule" ~severity:Diagnostic.Warning
          ~path:"(graph)" ~node:r.Rule.name
          "no preprocessed query shape (%s) matches this rule and no \
           reachable rule produces a shape it matches: it can never fire"
          (Logical_ops.mask_to_string root_mask))
    g.Graph.rules;
  Array.iteri
    (fun i (r : Rule.t) ->
      if reach.(i) && Logical_ops.mask_inter r.Rule.mask root_mask = 0 then begin
        let fs = Graph.feeders g i in
        if
          fs <> []
          && List.for_all
               (fun j -> g.Graph.rules.(j).Rule.promise < r.Rule.promise)
               fs
        then
          emit sink ~id:"interact/promise-inversion"
            ~severity:Diagnostic.Warning ~path:"(graph)" ~node:r.Rule.name
            "rule (promise %d) only gets work from lower-promise feeders \
             (%s): the scheduler tries it before anything can feed it"
            r.Rule.promise
            (String.concat ", "
               (List.map
                  (fun j ->
                    Printf.sprintf "%s p%d" g.Graph.rules.(j).Rule.name
                      g.Graph.rules.(j).Rule.promise)
                  fs))
      end)
    g.Graph.rules;
  (* --- implementation fan-out for the growth bound --- *)
  let p_max = ref 0 in
  List.iter
    (fun s ->
      let tag = Logical_ops.shape_tag s in
      let fanout =
        List.fold_left
          (fun acc (r : Rule.t) ->
            if Rule.is_implementation r && Rule.applicable_tag r tag then
              acc + (obs_of r).Infer.ob_max_alts
            else acc)
          0 rules
      in
      p_max := max !p_max fanout)
    Logical_ops.all_shapes;
  let rule_reports =
    List.mapi
      (fun i (r : Rule.t) ->
        let o = obs_of r in
        {
          rr_rule = r;
          rr_observed = o.Infer.ob_produced;
          rr_fired = o.Infer.ob_fired;
          rr_max_alts = o.Infer.ob_max_alts;
          rr_stratum = strata.(i);
          rr_scc = scc_of.(i);
          rr_reachable = reach.(i);
        })
      rules
  in
  {
    rules = rule_reports;
    nedges = Graph.nedges g;
    sccs =
      List.map (List.map (fun i -> g.Graph.rules.(i).Rule.name)) comps;
    n_cyclic = List.length (List.filter (Graph.is_cyclic g) comps);
    root_mask;
    seeds;
    cases = List.length corpus;
    c_nonjoin = !c_nonjoin;
    p_max = !p_max;
    fixpoint_gexprs = !fx_total;
    fixpoint_overflowed = !fx_overflowed;
    diags = Diagnostic.sort (Diagnostic.drain sink);
    dot = Graph.to_dot g ~strata ~reach;
  }

(* The full audit over the default rule set. *)
let run ?(seeds = default_seeds) ?(bound = default_bound) () : report =
  analyze ~seeds ~bound (Xform.Ruleset.rules Xform.Ruleset.default)

let error_count (r : report) = Diagnostic.count Diagnostic.Error r.diags
let warning_count (r : report) = Diagnostic.count Diagnostic.Warning r.diags

(* The stratification for [Orca_config.with_strata]: rule name -> stratum. *)
let strata (r : report) : (string * int) list =
  List.map (fun rr -> (rr.rr_rule.Rule.name, rr.rr_stratum)) r.rules

(* {2 Static growth bound}

   Over an n-relation join subtree, exploration can derive at most
   J(n) = 2^n - 2 distinct join expressions per group (the classic bushy
   orbit count: every proper non-empty subset of relations except that
   singletons are leaves, so pairs of complementary subsets), plus at most
   [c_nonjoin] non-join logical expressions (calibrated at the corpus
   fixpoint), each implemented by at most [p_max] physical alternatives. *)

let join_orbit (n : int) : float =
  if n < 2 then 1.0 else (2.0 ** float_of_int n) -. 2.0

let static_bound (r : report) (n : int) : float =
  (join_orbit n +. float_of_int r.c_nonjoin)
  *. float_of_int (1 + r.p_max)

(* Check a real Memo against the bound: per group, [n] is the number of base
   relations under it (via the first logical expression, recursively) and
   the actual size is its logical + physical orbit. *)
let check_memo_growth (r : report) ~(case : string) (memo : Memolib.Memo.t) :
    Diagnostic.t list =
  let module Memo = Memolib.Memo in
  let leaves : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let rec nleaves gid =
    let gid = Memo.find memo gid in
    match Hashtbl.find_opt leaves gid with
    | Some n -> n
    | None ->
        Hashtbl.add leaves gid 1 (* visited guard; leaves count 1 *)
        ;
        let n =
          match Memo.logical_exprs (Memo.group memo gid) with
          | [] -> 1
          | ((ge : Memo.gexpr), _) :: _ ->
              if ge.Memo.ge_children = [] then 1
              else
                List.fold_left
                  (fun acc c -> acc + nleaves c)
                  0 ge.Memo.ge_children
        in
        Hashtbl.replace leaves gid n;
        n
  in
  let sink = Diagnostic.sink () in
  List.iter
    (fun gid ->
      let g = Memo.group memo gid in
      let actual =
        List.length (Memo.logical_exprs g)
        + List.length (Memo.physical_exprs g)
      in
      let n = nleaves gid in
      let bound = static_bound r n in
      if float_of_int actual > bound then
        emit sink ~id:"interact/bound-violated" ~severity:Diagnostic.Error
          ~path:(Printf.sprintf "group %d" gid)
          ~node:case
          "group holds %d expressions over %d base relations; the static \
           bound is %.0f = (J(%d) + %d) * (1 + %d)"
          actual n bound n r.c_nonjoin r.p_max)
    (Memo.group_ids memo);
  Diagnostic.drain sink

(* --- rendering --- *)

let kind_string (r : Rule.t) =
  if Rule.is_exploration r then "explore" else "implement"

let to_string (r : report) : string =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf
       "interact: %d rules, %d edges, %d SCCs (%d cyclic), root shapes %s\n"
       (List.length r.rules) r.nedges (List.length r.sccs) r.n_cyclic
       (Logical_ops.mask_to_string r.root_mask));
  Buffer.add_string buf
    (Printf.sprintf
       "corpus: %d seeds x %d cases; exploration fixpoint %d gexprs%s; \
        c_nonjoin=%d p_max=%d\n"
       r.seeds r.cases r.fixpoint_gexprs
       (if r.fixpoint_overflowed then " (OVERFLOWED)" else "")
       r.c_nonjoin r.p_max);
  Buffer.add_string buf
    (Printf.sprintf "%-28s %-9s %7s %3s  %-14s %-14s %s\n" "rule" "kind"
       "promise" "str" "matches" "produces" "flags");
  let sorted =
    List.sort
      (fun a b ->
        compare
          (a.rr_stratum, -a.rr_rule.Rule.promise, a.rr_rule.Rule.name)
          (b.rr_stratum, -b.rr_rule.Rule.promise, b.rr_rule.Rule.name))
      r.rules
  in
  List.iter
    (fun rr ->
      let ru = rr.rr_rule in
      Buffer.add_string buf
        (Printf.sprintf "%-28s %-9s %7d %3d  %-14s %-14s %s\n" ru.Rule.name
           (kind_string ru) ru.Rule.promise rr.rr_stratum
           (Logical_ops.mask_to_string ru.Rule.mask)
           (Logical_ops.mask_to_string rr.rr_observed)
           (String.concat ","
              (List.filter
                 (fun s -> s <> "")
                 [
                   (if rr.rr_reachable then "" else "unreachable");
                   (if rr.rr_fired then "" else "never-fired");
                 ]))))
    sorted;
  if r.diags <> [] then begin
    Buffer.add_char buf '\n';
    Buffer.add_string buf (Diagnostic.report_to_string r.diags)
  end;
  Buffer.contents buf

let json_escape = Rulecheck.json_escape

let to_json (r : report) : string =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\n  \"rules\": %d,\n  \"edges\": %d,\n  \"sccs\": %d,\n  \
        \"root_mask\": \"%s\",\n  \"c_nonjoin\": %d,\n  \"p_max\": %d,\n  \
        \"fixpoint_gexprs\": %d,\n  \"errors\": %d,\n  \"warnings\": %d,\n  \
        \"strata\": ["
       (List.length r.rules) r.nedges (List.length r.sccs)
       (json_escape (Logical_ops.mask_to_string r.root_mask))
       r.c_nonjoin r.p_max r.fixpoint_gexprs (error_count r)
       (warning_count r));
  List.iteri
    (fun i rr ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n    {\"rule\": \"%s\", \"stratum\": %d, \"scc\": %d, \
            \"reachable\": %b, \"matches\": \"%s\", \"produces\": \"%s\"}"
           (json_escape rr.rr_rule.Rule.name)
           rr.rr_stratum rr.rr_scc rr.rr_reachable
           (json_escape (Logical_ops.mask_to_string rr.rr_rule.Rule.mask))
           (json_escape (Logical_ops.mask_to_string rr.rr_observed))))
    r.rules;
  Buffer.add_string buf "\n  ],\n  \"diagnostics\": [";
  List.iteri
    (fun i (d : Diagnostic.t) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n    {\"rule\": \"%s\", \"severity\": \"%s\", \"path\": \"%s\", \
            \"node\": \"%s\", \"message\": \"%s\"}"
           (json_escape d.Diagnostic.rule)
           (Diagnostic.severity_to_string d.Diagnostic.severity)
           (json_escape d.Diagnostic.path)
           (json_escape d.Diagnostic.node)
           (json_escape d.Diagnostic.message)))
    r.diags;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

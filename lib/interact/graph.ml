open Ir
module Rule = Xform.Rule

(* The rule-interaction graph: r1 feeds r2 when r1 can produce an operator
   shape r2's pattern matches — a result of r1 may create work for r2.
   Strongly connected components are the rule sets that can keep feeding
   each other (termination analysis); the condensation's topological order
   is the stratification the engine can schedule by. *)

type t = {
  rules : Rule.t array;
  produces : int array; (* effective produced-shape mask per node *)
  adj : int list array; (* feeds edges i -> j, ascending j *)
}

let build (rules : Rule.t list) ~(produces : Rule.t -> int) : t =
  let rules = Array.of_list rules in
  let prod = Array.map produces rules in
  let n = Array.length rules in
  let adj =
    Array.init n (fun i ->
        List.filter
          (fun j -> Logical_ops.mask_inter prod.(i) rules.(j).Rule.mask <> 0)
          (List.init n Fun.id))
  in
  { rules; produces = prod; adj }

let nedges t = Array.fold_left (fun acc js -> acc + List.length js) 0 t.adj
let self_loop t i = List.mem i t.adj.(i)

(* Tarjan. Components come out in topological order of the condensation:
   a component is popped only after every component it can reach, and the
   accumulator prepends, so feeders precede the rules they feed. *)
let sccs (t : t) : int list list =
  let n = Array.length t.rules in
  let index = Array.make n (-1) in
  let low = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let comps = ref [] in
  let rec strong v =
    index.(v) <- !counter;
    low.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) < 0 then begin
          strong w;
          low.(v) <- min low.(v) low.(w)
        end
        else if on_stack.(w) then low.(v) <- min low.(v) index.(w))
      t.adj.(v);
    if low.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      comps := pop [] :: !comps
    end
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then strong v
  done;
  !comps

let is_cyclic t (comp : int list) =
  match comp with [ v ] -> self_loop t v | _ -> List.length comp > 1

(* Stratum per node: longest-path depth of its SCC in the condensation.
   Feeders get strictly smaller strata than the rules they feed (across
   SCCs); members of one SCC share a stratum. *)
let stratify (t : t) (comps : int list list) : int array =
  let n = Array.length t.rules in
  let comp_of = Array.make n 0 in
  List.iteri (fun ci ns -> List.iter (fun v -> comp_of.(v) <- ci) ns) comps;
  let cstrat = Array.make (List.length comps) 0 in
  (* comps are in topo order, so each relaxation reads a final value *)
  List.iter
    (fun ns ->
      List.iter
        (fun u ->
          List.iter
            (fun v ->
              if comp_of.(u) <> comp_of.(v) then
                cstrat.(comp_of.(v)) <-
                  max cstrat.(comp_of.(v)) (cstrat.(comp_of.(u)) + 1))
            t.adj.(u))
        ns)
    comps;
  Array.init n (fun v -> cstrat.(comp_of.(v)))

(* A rule is reachable when its pattern matches a root query shape, or some
   reachable rule produces a shape it matches. Everything else is shadowed:
   no derivation starting from an actual (preprocessed) query can ever give
   it work. *)
let reachable (t : t) ~(root_mask : int) : bool array =
  let n = Array.length t.rules in
  let reach = Array.make n false in
  Array.iteri
    (fun i (r : Rule.t) ->
      if Logical_ops.mask_inter r.Rule.mask root_mask <> 0 then
        reach.(i) <- true)
    t.rules;
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      if reach.(i) then
        List.iter
          (fun j ->
            if not reach.(j) then begin
              reach.(j) <- true;
              changed := true
            end)
          t.adj.(i)
    done
  done;
  reach

(* Feeders of [j]: other rules with an edge into it. *)
let feeders (t : t) (j : int) : int list =
  let acc = ref [] in
  Array.iteri
    (fun i js -> if i <> j && List.mem j js then acc := i :: !acc)
    t.adj;
  List.rev !acc

(* Graphviz rendering: one cluster per stratum, exploration rules as
   ellipses, implementation rules as boxes, unreachable rules dashed. *)
let to_dot (t : t) ~(strata : int array) ~(reach : bool array) : string =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "digraph interact {\n  rankdir=LR;\n";
  Buffer.add_string buf "  node [fontsize=10];\n";
  let max_stratum = Array.fold_left max 0 strata in
  for s = 0 to max_stratum do
    Buffer.add_string buf
      (Printf.sprintf "  subgraph cluster_%d {\n    label=\"stratum %d\";\n" s
         s);
    Array.iteri
      (fun i (r : Rule.t) ->
        if strata.(i) = s then
          Buffer.add_string buf
            (Printf.sprintf
               "    r%d [label=\"%s\\n%s -> %s\", shape=%s%s];\n" i
               r.Rule.name
               (Logical_ops.mask_to_string r.Rule.mask)
               (Logical_ops.mask_to_string t.produces.(i))
               (if Rule.is_exploration r then "ellipse" else "box")
               (if reach.(i) then "" else ", style=dashed")))
      t.rules;
    Buffer.add_string buf "  }\n"
  done;
  Array.iteri
    (fun i js ->
      List.iter
        (fun j -> Buffer.add_string buf (Printf.sprintf "  r%d -> r%d;\n" i j))
        js)
    t.adj;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

open Ir
module Memo = Memolib.Memo
module Mexpr = Memolib.Mexpr
module Rule = Xform.Rule
module Model = Rulecheck.Model

(* Producer inference: what shapes does a rule's output contain?

   A rule's *input* side is declared ([~shapes], the prefilter mask); its
   *output* side is inferred here by applying the rule to lib/rulecheck's
   seeded small-model corpus on a scratch Memo and abstracting every
   alternative to the set of logical-operator shapes appearing anywhere in
   the returned tree (Group leaves reference existing content and contribute
   nothing new). The inferred mask is the rule's footprint in the abstract
   shape domain; the interaction graph is built from it. *)

(* Shapes of every logical operator in the returned tree's Node parts. *)
let rec mexpr_shapes (m : Mexpr.t) : int =
  let own =
    match m.Mexpr.op with
    | Expr.Logical l -> 1 lsl Logical_ops.tag l
    | Expr.Physical _ -> 0
  in
  List.fold_left
    (fun acc c ->
      match c with
      | Mexpr.Node n -> acc lor mexpr_shapes n
      | Mexpr.Group _ -> acc)
    own m.Mexpr.children

(* Per-rule observation, accumulated across cases and seeds. *)
type obs = {
  mutable ob_produced : int; (* union of output shapes over all alternatives *)
  mutable ob_fired : bool;
  mutable ob_max_alts : int; (* most alternatives from one application *)
}

let obs () = { ob_produced = 0; ob_fired = false; ob_max_alts = 0 }

let record (o : obs) (results : Mexpr.t list) =
  if results <> [] then begin
    o.ob_fired <- true;
    o.ob_max_alts <- max o.ob_max_alts (List.length results);
    List.iter
      (fun m -> o.ob_produced <- o.ob_produced lor mexpr_shapes m)
      results
  end

(* Scratch-Memo copy-in of a generator case (the rulecheck pattern). *)
let insert_case memo (tree : Ltree.t) : unit =
  let rec ins (t : Ltree.t) : int =
    let cids = List.map ins t.Ltree.children in
    let ge = Memo.insert_gexpr memo (Expr.Logical t.Ltree.op) cids in
    Memo.find memo ge.Memo.ge_group
  in
  let root = ins tree in
  Memo.set_root memo root

(* One application of every rule to every logical expression of the case —
   the engine's one-shot view, shape prefilter respected (rulecheck's
   shape-escape pass owns the undeclared-shape contract). *)
let observe_case (rules : Rule.t list) (obs_of : Rule.t -> obs)
    ((_name, tree) : string * Ltree.t) : unit =
  let memo = Memo.create () in
  insert_case memo tree;
  let rctx = { Rule.factory = Colref.Factory.create ~start:1000 () } in
  List.iter
    (fun gid ->
      let g = Memo.group memo gid in
      List.iter
        (fun ((ge : Memo.gexpr), op) ->
          List.iter
            (fun (r : Rule.t) ->
              if Rule.applicable r op then
                record (obs_of r) (r.Rule.apply rctx memo ge))
            rules)
        (Memo.logical_exprs g))
    (Memo.group_ids memo)

(* Bounded concrete exploration fixpoint, mirroring the engine's semantics:
   each rule applied at most once per group expression ([ge_applied]),
   results copied into the source group, the Memo's duplicate detection
   closing finite orbits (commutativity's two-cycle collapses into one pair
   of expressions). A rule set whose derivations keep minting structurally
   novel expressions never converges; the gexpr bound turns that into a
   decidable check. *)
type fix = {
  fx_gexprs : int; (* final count (where the bound stopped it on overflow) *)
  fx_overflowed : bool;
  fx_memo : Memo.t;
}

exception Overflow

let explore_fixpoint ?(bound = 2000) ?(on_result = fun _ _ -> ())
    (rules : Rule.t list) ((_name, tree) : string * Ltree.t) : fix =
  let memo = Memo.create () in
  insert_case memo tree;
  let rctx = { Rule.factory = Colref.Factory.create ~start:1000 () } in
  let overflowed = ref false in
  (try
     let changed = ref true in
     while !changed do
       changed := false;
       List.iter
         (fun gid ->
           let g = Memo.group memo (Memo.find memo gid) in
           List.iter
             (fun ((ge : Memo.gexpr), op) ->
               List.iter
                 (fun (r : Rule.t) ->
                   if
                     Rule.applicable r op
                     && not (List.mem r.Rule.id ge.Memo.ge_applied)
                   then begin
                     ge.Memo.ge_applied <- r.Rule.id :: ge.Memo.ge_applied;
                     let results = r.Rule.apply rctx memo ge in
                     List.iter
                       (fun mx ->
                         on_result r mx;
                         let before = Memo.ngexprs memo in
                         ignore
                           (Memo.insert memo
                              ~target:(Memo.find memo ge.Memo.ge_group)
                              mx);
                         if Memo.ngexprs memo <> before then changed := true;
                         if Memo.ngexprs memo > bound then raise Overflow)
                       results
                   end)
                 rules)
             (Memo.logical_exprs g))
         (Memo.group_ids memo)
     done
   with Overflow -> overflowed := true);
  { fx_gexprs = Memo.ngexprs memo; fx_overflowed = !overflowed; fx_memo = memo }

(* Largest non-join logical orbit of any group: calibrates the non-join term
   of the static growth bound. *)
let max_nonjoin_orbit (memo : Memo.t) : int =
  List.fold_left
    (fun acc gid ->
      let g = Memo.group memo gid in
      let n =
        List.length
          (List.filter
             (fun (_, op) ->
               match op with Expr.L_join _ -> false | _ -> true)
             (Memo.logical_exprs g))
      in
      max acc n)
    0 (Memo.group_ids memo)

(* Root query shapes: what actually reaches the Memo. The optimizer
   decorrelates and normalizes before copy-in, so the reachability analysis
   must look at the corpus *after* the same preprocessing — notably, Apply
   is rewritten away, making a rule that only matches S_apply genuinely
   shadowed. *)
let tree_shapes (t : Ltree.t) : int =
  Ltree.fold (fun acc n -> acc lor (1 lsl Logical_ops.tag n.Ltree.op)) 0 t

let root_shapes (world : Model.t) : int =
  List.fold_left
    (fun acc (_name, tree) ->
      let factory = Colref.Factory.create ~start:5000 () in
      let tree = (Xform.Decorrelate.run factory tree).Xform.Decorrelate.tree in
      let tree = Xform.Normalize.run tree in
      acc lor tree_shapes tree)
    0 world.Model.cases

(** Cardinality accuracy — join per-node row estimates against executed
    actuals (both keyed by {!Ir.Plan_ops.number} ids) into per-node and
    per-operator-class Q-error. *)

open Ir

type node_acc = {
  na_id : int;
  na_path : string;
  na_op : string;
  na_class : string;      (** {!Ir.Physical_ops.class_name} *)
  na_est : float;
  na_act : float option;  (** None: the node never produced output *)
  na_qerr : float option; (** None iff [na_act] is None *)
}

type t = { nodes : node_acc list }

val qerror : est:float -> act:float -> float
(** max(est/act, act/est) with both sides clamped to >= 1 row; always
    >= 1. *)

val of_plan : actual:(int -> float option) -> Expr.plan -> t
(** [actual] maps a stable node id to the measured output row count
    (typically {!Exec.Metrics.node_rows} turned into a lookup). *)

val to_acc_stats : t -> Obs.Report.acc_stat list
(** Per-class aggregates plus an ["(all)"] row, in {!Obs.Report} form so they
    merge exactly across stages and queries. *)

val observed : t -> node_acc list
(** Nodes with both an estimate and an actual. *)

val to_string : t -> string
(** Per-node est/actual/Q-error table. *)

(** Plan provenance — the "why this plan" half of lib/prov. [annotate]
    re-walks the Memo's winner linkage in extraction order and aligns it with
    the extracted plan's stable preorder numbering ({!Ir.Plan_ops.number}),
    attaching to every node its rule lineage, the losing alternatives in its
    optimization context with cost deltas, and — for enforcers — the required
    property that forced them. *)

open Ir

type lineage_step = {
  ls_rule : string;      (** xform that produced the expression *)
  ls_stage : string;
  ls_promise : int;
  ls_result_op : string; (** operator the application produced *)
}

type loser = {
  lo_op : string;
  lo_rule : string option; (** rule that produced its gexpr; None = copy-in *)
  lo_cost : float;
  lo_delta : float;        (** [lo_cost] - winner cost, >= 0 *)
  lo_enforcers : int;
}

type origin_info = {
  oi_group : int;
  oi_lineage : lineage_step list; (** newest first; [] = direct copy-in *)
  oi_losers : loser list;         (** sorted by cost, cheapest first *)
  oi_alts : int;                  (** alternatives costed in the context *)
}

type kind =
  | K_operator of origin_info
  | K_enforcer of string  (** why the enforcer was added *)
  | K_synthetic of string (** added outside the Memo (output projection) *)

type node_prov = {
  np_id : int; (** stable preorder id ({!Ir.Plan_ops.number}) *)
  np_path : string;
  np_op : string;
  np_est_rows : float;
  np_cost : float;
  np_kind : kind;
}

type t = {
  p_stage : string;         (** stage whose Memo the plan came from *)
  p_nodes : node_prov list; (** preorder, aligned with [Plan_ops.number] *)
}

val annotate :
  Memolib.Memo.t -> req:Props.req -> stage:string -> Expr.plan -> t
(** Build the annotation for a plan extracted from this Memo under [req].
    Raises [Gpos_error] if the plan cannot be aligned with the Memo's winner
    linkage (corrupted provenance). *)

val lineage_of : Memolib.Memo.t -> Memolib.Memo.gexpr -> lineage_step list
(** Follow origin records back to the copy-in expression, newest first. *)

val find_node : t -> path:string -> node_prov option

val lineage_to_string : lineage_step list -> string

val why_to_string : ?max_losers:int -> t -> string
(** The [explain --why] rendering: the plan tree with per-node lineage,
    losing alternatives (capped at [max_losers], default 4) and enforcer
    reasons. *)

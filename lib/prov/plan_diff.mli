(** Structural plan diff — compare two extracted plans node by node:
    matched/changed/moved/one-sided subtrees, cost and cardinality deltas,
    and (when provenance annotations are supplied) the rule lineage behind
    each divergent subtree. *)

open Ir

type change =
  | Op_changed of { path : string; a : string; b : string }
  | Only_a of { path : string; op : string; moved_to : string option }
  | Only_b of { path : string; op : string; moved_from : string option }
  | Cost_changed of { path : string; op : string; a : float; b : float }
  | Rows_changed of { path : string; op : string; a : float; b : float }

type t = {
  d_matched : int;
  d_changes : change list;
  d_cost_a : float;
  d_cost_b : float;
  d_identical : bool;  (** same structure, costs and cardinalities *)
  d_structural : bool; (** operators/shape identical (costs may differ) *)
}

val fingerprint : Expr.plan -> string
(** Cost-free structural rendering used for move detection. *)

val diff : Expr.plan -> Expr.plan -> t

val identical : t -> bool

val change_to_string : change -> string

val to_string : ?prov_a:Provenance.t -> ?prov_b:Provenance.t -> t -> string

open Ir
open Memolib

(* Plan provenance (the "why this plan" half of lib/prov): for every node of
   the extracted plan, the rule lineage that produced its group expression,
   the losing alternatives in its optimization context with their cost
   deltas, and — for enforcer nodes — the required property that forced
   them.

   [annotate] re-walks the Memo's winner linkage in exactly the order
   [Extract.plan_of_alternative] materializes nodes (enforcers outermost
   first, then the operator, then children left to right), and zips that
   against [Plan_ops.number] of the extracted plan. The zip is checked op by
   op, so a plan/Memo mismatch is an internal error rather than silently
   misattributed provenance. *)

type lineage_step = {
  ls_rule : string;    (* xform that produced the expression *)
  ls_stage : string;
  ls_promise : int;
  ls_result_op : string; (* the operator the application produced *)
}

(* A losing alternative in the winner's optimization context. *)
type loser = {
  lo_op : string;
  lo_rule : string option; (* rule that produced its gexpr; None = copy-in *)
  lo_cost : float;
  lo_delta : float;        (* lo_cost - winner cost, >= 0 *)
  lo_enforcers : int;      (* enforcers stacked on the alternative *)
}

type origin_info = {
  oi_group : int;               (* canonical group id *)
  oi_lineage : lineage_step list; (* newest first; [] = direct copy-in *)
  oi_losers : loser list;       (* sorted by cost, cheapest first *)
  oi_alts : int;                (* alternatives costed in the context *)
}

type kind =
  | K_operator of origin_info
  | K_enforcer of string (* why the enforcer was added *)
  | K_synthetic of string (* added outside the Memo (output projection) *)

type node_prov = {
  np_id : int;     (* stable preorder id (Plan_ops.number) *)
  np_path : string;
  np_op : string;
  np_est_rows : float;
  np_cost : float;
  np_kind : kind;
}

type t = {
  p_stage : string; (* stage whose Memo the plan was extracted from *)
  p_nodes : node_prov list; (* preorder, aligned with Plan_ops.number *)
}

let op_to_string (op : Expr.op) =
  match op with
  | Expr.Physical p -> Physical_ops.to_string p
  | Expr.Logical l -> Logical_ops.to_string l

(* Follow origin records back to the copy-in expression. Source ids always
   refer to earlier insertions, so cycles are impossible in a well-formed
   Memo; the visited set turns a corrupted one into a truncated lineage
   (lib/verify reports the corruption itself). *)
let lineage_of memo (ge : Memo.gexpr) : lineage_step list =
  let rec go acc visited (ge : Memo.gexpr) =
    match ge.Memo.ge_origin with
    | None -> List.rev acc
    | Some o ->
        let step =
          {
            ls_rule = o.Memo.o_rule;
            ls_stage = o.Memo.o_stage;
            ls_promise = o.Memo.o_promise;
            ls_result_op = op_to_string ge.Memo.ge_op;
          }
        in
        if List.mem o.Memo.o_source visited then List.rev (step :: acc)
        else begin
          match Memo.gexpr_by_id memo o.Memo.o_source with
          | None -> List.rev (step :: acc)
          | Some src -> go (step :: acc) (o.Memo.o_source :: visited) src
        end
  in
  go [] [ ge.Memo.ge_id ] ge

let losers_of (ctx : Memo.context) (best : Memo.alternative) : loser list =
  List.filter_map
    (fun (alt : Memo.alternative) ->
      if alt == best then None
      else
        let ge = alt.Memo.a_gexpr in
        Some
          {
            lo_op = op_to_string ge.Memo.ge_op;
            lo_rule =
              Option.map (fun o -> o.Memo.o_rule) ge.Memo.ge_origin;
            lo_cost = alt.Memo.a_cost;
            lo_delta = alt.Memo.a_cost -. best.Memo.a_cost;
            lo_enforcers = List.length alt.Memo.a_enforcers;
          })
    ctx.Memo.cx_alts
  |> List.sort (fun a b -> Float.compare a.lo_cost b.lo_cost)

let enforcer_reason (enf : Props.enforcer) (req : Props.req) : string =
  match enf with
  | Props.E_sort spec ->
      Printf.sprintf "enforces required order [%s] the child does not deliver"
        (Sortspec.to_string spec)
  | Props.E_motion m ->
      Printf.sprintf
        "enforces required distribution %s via %s (child delivers elsewhere)"
        (Props.dist_req_to_string req.Props.rdist)
        (Physical_ops.motion_to_string m)

(* What the Memo walk expects at each preorder position. *)
type expect =
  | E_op of int * Memo.context * Memo.alternative (* canonical gid *)
  | E_enf of Props.enforcer * Props.req

let context_exn memo gid req =
  match Memo.find_context memo gid req with
  | Some ctx -> ctx
  | None ->
      Gpos.Gpos_error.internal "prov: no optimization context for group %d"
        (Memo.find memo gid)

let annotate memo ~(req : Props.req) ~(stage : string) (plan : Expr.plan) : t
    =
  let expected = ref [] in
  let rec walk gid req =
    let gid = Memo.find memo gid in
    let ctx = context_exn memo gid req in
    let alt =
      match ctx.Memo.cx_best with
      | Some alt -> alt
      | None ->
          Gpos.Gpos_error.internal "prov: context without winner in group %d"
            gid
    in
    (* enforcers are stacked bottom-up at extraction, so the LAST one is the
       outermost plan node: preorder visits them in reverse *)
    List.iter
      (fun enf -> expected := E_enf (enf, ctx.Memo.cx_req) :: !expected)
      (List.rev alt.Memo.a_enforcers);
    expected := E_op (gid, ctx, alt) :: !expected;
    List.iter2
      (fun child_gid child_req -> walk child_gid child_req)
      alt.Memo.a_gexpr.Memo.ge_children alt.Memo.a_child_reqs
  in
  walk (Memo.root memo) req;
  let expected = List.rev !expected in
  let numbered = Plan_ops.number plan in
  (* the optimizer may wrap the extracted plan in one output projection that
     never lived in the Memo: synthesize its provenance *)
  let synthetic_root =
    List.length numbered = List.length expected + 1
    &&
    match plan.Expr.pop with Expr.P_project _ -> true | _ -> false
  in
  let expected =
    if synthetic_root then None :: List.map Option.some expected
    else if List.length numbered = List.length expected then
      List.map Option.some expected
    else
      Gpos.Gpos_error.internal
        "prov: plan has %d nodes but the Memo walk yields %d"
        (List.length numbered) (List.length expected)
  in
  let nodes =
    List.map2
      (fun (id, path, (node : Expr.plan)) exp ->
        let op_str = Physical_ops.to_string node.Expr.pop in
        let kind =
          match exp with
          | None ->
              K_synthetic
                "output projection added after extraction (query output \
                 column order)"
          | Some (E_enf (enf, req)) ->
              (match node.Expr.pop with
              | Expr.P_sort _ | Expr.P_motion _ -> ()
              | _ ->
                  Gpos.Gpos_error.internal
                    "prov: expected an enforcer at %s, plan has %s" path
                    op_str);
              K_enforcer (enforcer_reason enf req)
          | Some (E_op (gid, ctx, alt)) ->
              let ge = alt.Memo.a_gexpr in
              if op_to_string ge.Memo.ge_op <> op_str then
                Gpos.Gpos_error.internal
                  "prov: Memo walk has %s at %s, plan has %s"
                  (op_to_string ge.Memo.ge_op)
                  path op_str;
              K_operator
                {
                  oi_group = gid;
                  oi_lineage = lineage_of memo ge;
                  oi_losers = losers_of ctx alt;
                  oi_alts = List.length ctx.Memo.cx_alts;
                }
        in
        {
          np_id = id;
          np_path = path;
          np_op = op_str;
          np_est_rows = node.Expr.pest_rows;
          np_cost = node.Expr.pcost;
          np_kind = kind;
        })
      numbered expected
  in
  { p_stage = stage; p_nodes = nodes }

let find_node t ~path =
  List.find_opt (fun np -> np.np_path = path) t.p_nodes

(* --- rendering (explain --why) --- *)

let depth_of_path path =
  String.fold_left (fun n c -> if c = '.' then n + 1 else n) 0 path

let lineage_to_string (steps : lineage_step list) =
  match steps with
  | [] -> "copy-in (original query expression)"
  | steps ->
      String.concat " <- "
        (List.map
           (fun s ->
             Printf.sprintf "%s(stage %s, promise %d)" s.ls_rule s.ls_stage
               s.ls_promise)
           steps)
      ^ " <- copy-in"

let why_to_string ?(max_losers = 4) (t : t) : string =
  let buf = Buffer.create 2048 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "plan provenance (stage %s):\n" t.p_stage;
  List.iter
    (fun np ->
      let indent = String.make (2 * depth_of_path np.np_path) ' ' in
      pf "%s-> %s  (rows=%.0f cost=%.2f)\n" indent np.np_op np.np_est_rows
        np.np_cost;
      let ann = indent ^ "     " in
      match np.np_kind with
      | K_synthetic why -> pf "%s[synthetic] %s\n" ann why
      | K_enforcer why -> pf "%s[enforcer] %s\n" ann why
      | K_operator oi ->
          pf "%slineage: %s\n" ann (lineage_to_string oi.oi_lineage);
          let shown =
            List.filteri (fun i _ -> i < max_losers) oi.oi_losers
          in
          if oi.oi_losers = [] then
            pf "%sonly costed alternative in group %d\n" ann oi.oi_group
          else begin
            pf "%sbeat %d alternative%s in group %d:\n" ann
              (List.length oi.oi_losers)
              (if List.length oi.oi_losers = 1 then "" else "s")
              oi.oi_group;
            List.iter
              (fun lo ->
                pf "%s  %s cost=%.2f (+%.2f)%s%s\n" ann lo.lo_op lo.lo_cost
                  lo.lo_delta
                  (match lo.lo_rule with
                  | Some r -> " via " ^ r
                  | None -> " via copy-in")
                  (if lo.lo_enforcers > 0 then
                     Printf.sprintf " +%d enforcer%s" lo.lo_enforcers
                       (if lo.lo_enforcers = 1 then "" else "s")
                   else ""))
              shown;
            if List.length oi.oi_losers > max_losers then
              pf "%s  ... and %d more\n" ann
                (List.length oi.oi_losers - max_losers)
          end)
    t.p_nodes;
  Buffer.contents buf

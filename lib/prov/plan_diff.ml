open Ir

(* Structural plan diff (the "why did the plan change" half of lib/prov):
   compare two extracted plans node by node, reporting matched, changed,
   moved and one-sided subtrees with cost and cardinality deltas, and — when
   provenance annotations are supplied — the rule lineage behind each
   divergent subtree.

   The walk is lockstep by position: while the operators agree the diff
   descends; at the first disagreement the whole subtree pair is reported at
   subtree granularity (descending into structurally different trees
   produces noise, not signal). A divergent subtree that reappears verbatim
   elsewhere in the other plan is additionally flagged as moved. *)

type change =
  | Op_changed of { path : string; a : string; b : string }
      (* different operator at the same position *)
  | Only_a of { path : string; op : string; moved_to : string option }
      (* subtree present only in A (or moved elsewhere in B) *)
  | Only_b of { path : string; op : string; moved_from : string option }
  | Cost_changed of { path : string; op : string; a : float; b : float }
  | Rows_changed of { path : string; op : string; a : float; b : float }

type t = {
  d_matched : int;        (* nodes with identical operator at same position *)
  d_changes : change list;
  d_cost_a : float;
  d_cost_b : float;
  d_identical : bool;     (* same structure, costs and cardinalities *)
  d_structural : bool;    (* operators/shape identical (costs may differ) *)
}

(* Structural fingerprint of a subtree: the cost-free EXPLAIN rendering. *)
let fingerprint (p : Expr.plan) = Plan_ops.to_string ~show_cost:false p

let op_str (p : Expr.plan) = Physical_ops.to_string p.Expr.pop

(* All (path, node) pairs of a tree. *)
let indexed (p : Expr.plan) : (string * Expr.plan) list =
  List.map (fun (_, path, n) -> (path, n)) (Plan_ops.number p)

let diff (a : Expr.plan) (b : Expr.plan) : t =
  let changes = ref [] in
  let matched = ref 0 in
  let add c = changes := c :: !changes in
  let index_b = indexed b and index_a = indexed a in
  (* does this exact subtree occur in the other plan (anywhere)? *)
  let find_in index (sub : Expr.plan) =
    let fp = fingerprint sub in
    List.find_opt (fun (_, n) -> fingerprint n = fp) index
    |> Option.map fst
  in
  let rec go path (na : Expr.plan) (nb : Expr.plan) =
    if op_str na <> op_str nb then begin
      (* divergent subtree: report at subtree granularity, flag moves *)
      add (Op_changed { path; a = op_str na; b = op_str nb });
      add (Only_a { path; op = op_str na; moved_to = find_in index_b na });
      add (Only_b { path; op = op_str nb; moved_from = find_in index_a nb })
    end
    else begin
      incr matched;
      if na.Expr.pcost <> nb.Expr.pcost then
        add
          (Cost_changed
             { path; op = op_str na; a = na.Expr.pcost; b = nb.Expr.pcost });
      if na.Expr.pest_rows <> nb.Expr.pest_rows then
        add
          (Rows_changed
             {
               path;
               op = op_str na;
               a = na.Expr.pest_rows;
               b = nb.Expr.pest_rows;
             });
      let ca = na.Expr.pchildren and cb = nb.Expr.pchildren in
      let rec zip i xs ys =
        match (xs, ys) with
        | [], [] -> ()
        | x :: xs, y :: ys ->
            go (Printf.sprintf "%s.%d" path i) x y;
            zip (i + 1) xs ys
        | x :: xs, [] ->
            add
              (Only_a
                 {
                   path = Printf.sprintf "%s.%d" path i;
                   op = op_str x;
                   moved_to = find_in index_b x;
                 });
            zip (i + 1) xs []
        | [], y :: ys ->
            add
              (Only_b
                 {
                   path = Printf.sprintf "%s.%d" path i;
                   op = op_str y;
                   moved_from = find_in index_a y;
                 });
            zip (i + 1) [] ys
      in
      zip 0 ca cb
    end
  in
  go "root" a b;
  let changes = List.rev !changes in
  let structural =
    not
      (List.exists
         (function
           | Op_changed _ | Only_a _ | Only_b _ -> true
           | Cost_changed _ | Rows_changed _ -> false)
         changes)
  in
  {
    d_matched = !matched;
    d_changes = changes;
    d_cost_a = a.Expr.pcost;
    d_cost_b = b.Expr.pcost;
    d_identical = changes = [];
    d_structural = structural;
  }

let identical t = t.d_identical

(* --- rendering --- *)

let change_to_string = function
  | Op_changed { path; a; b } ->
      Printf.sprintf "changed  %-16s %s  ->  %s" path a b
  | Only_a { path; op; moved_to = Some dst } ->
      Printf.sprintf "moved    %-16s %s  (A; appears in B at %s)" path op dst
  | Only_a { path; op; moved_to = None } ->
      Printf.sprintf "only-A   %-16s %s" path op
  | Only_b { path; op; moved_from = Some src } ->
      Printf.sprintf "moved    %-16s %s  (B; appears in A at %s)" path op src
  | Only_b { path; op; moved_from = None } ->
      Printf.sprintf "only-B   %-16s %s" path op
  | Cost_changed { path; op; a; b } ->
      Printf.sprintf "cost     %-16s %s  %.2f -> %.2f (%+.1f%%)" path op a b
        (if a = 0.0 then 0.0 else 100.0 *. (b -. a) /. a)
  | Rows_changed { path; op; a; b } ->
      Printf.sprintf "rows     %-16s %s  %.0f -> %.0f" path op a b

(* The provenance of a divergent subtree answers "which rule chain produced
   the side that changed". *)
let divergence_provenance (t : t) (label : string) (prov : Provenance.t)
    ~(side_a : bool) : string list =
  List.filter_map
    (fun change ->
      let path =
        match (change, side_a) with
        | Op_changed { path; _ }, _ -> Some path
        | Only_a { path; _ }, true -> Some path
        | Only_b { path; _ }, false -> Some path
        | _ -> None
      in
      match path with
      | None -> None
      | Some path -> (
          match Provenance.find_node prov ~path with
          | Some np -> (
              match np.Provenance.np_kind with
              | Provenance.K_operator oi ->
                  Some
                    (Printf.sprintf "  %s %s: %s" label path
                       (Provenance.lineage_to_string
                          oi.Provenance.oi_lineage))
              | Provenance.K_enforcer why ->
                  Some (Printf.sprintf "  %s %s: enforcer (%s)" label path why)
              | Provenance.K_synthetic why ->
                  Some (Printf.sprintf "  %s %s: synthetic (%s)" label path why))
          | None -> None))
    t.d_changes

let to_string ?prov_a ?prov_b (t : t) : string =
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  if t.d_identical then
    pf "plans are identical (%d nodes, cost %.2f)\n" t.d_matched t.d_cost_a
  else begin
    pf "plans diverge: %d matched node%s, %d change%s (cost A=%.2f B=%.2f)\n"
      t.d_matched
      (if t.d_matched = 1 then "" else "s")
      (List.length t.d_changes)
      (if List.length t.d_changes = 1 then "" else "s")
      t.d_cost_a t.d_cost_b;
    List.iter (fun c -> pf "  %s\n" (change_to_string c)) t.d_changes;
    let prov_lines =
      (match prov_a with
      | Some p -> divergence_provenance t "A" p ~side_a:true
      | None -> [])
      @
      match prov_b with
      | Some p -> divergence_provenance t "B" p ~side_a:false
      | None -> []
    in
    if prov_lines <> [] then begin
      pf "provenance of divergent subtrees:\n";
      List.iter (fun l -> pf "%s\n" l) prov_lines
    end
  end;
  Buffer.contents buf

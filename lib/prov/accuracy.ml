open Ir

(* Cardinality accuracy (the "how wrong were the estimates" half of
   lib/prov): join the optimizer's per-node row estimates against the
   executor's per-node actuals — both keyed by the stable preorder ids of
   [Plan_ops.number] — into per-node and per-operator-class Q-error.

   Q-error is the standard multiplicative error max(est/act, act/est),
   always >= 1; both sides are clamped to >= 1 row so empty results and
   sub-row estimates do not blow the metric up to infinity. Per-class
   aggregates keep (Σ ln q, count) so geometric means merge exactly across
   queries (Obs.Report.acc_stat). *)

type node_acc = {
  na_id : int;
  na_path : string;
  na_op : string;
  na_class : string;        (* Physical_ops.class_name *)
  na_est : float;
  na_act : float option;    (* None: node never produced output (not run) *)
  na_qerr : float option;   (* None iff na_act is None *)
}

type t = { nodes : node_acc list }

let qerror ~est ~act =
  let e = Float.max est 1.0 and a = Float.max act 1.0 in
  Float.max (e /. a) (a /. e)

(* [actual] maps a stable node id to the measured output row count —
   typically [Exec.Metrics.node_rows] turned into a lookup. *)
let of_plan ~(actual : int -> float option) (plan : Expr.plan) : t =
  let nodes =
    List.map
      (fun (id, path, (node : Expr.plan)) ->
        let est = node.Expr.pest_rows in
        let act = actual id in
        {
          na_id = id;
          na_path = path;
          na_op = Physical_ops.to_string node.Expr.pop;
          na_class = Physical_ops.class_name node.Expr.pop;
          na_est = est;
          na_act = act;
          na_qerr = Option.map (fun act -> qerror ~est ~act) act;
        })
      (Plan_ops.number plan)
  in
  { nodes }

(* Per-operator-class aggregates, plus an "(all)" row over every observed
   node, in Obs.Report form so they merge across stages and queries. *)
let to_acc_stats (t : t) : Obs.Report.acc_stat list =
  let tbl : (string, Obs.Report.acc_stat) Hashtbl.t = Hashtbl.create 16 in
  let bump cls (na : node_acc) =
    let prev =
      match Hashtbl.find_opt tbl cls with
      | Some s -> s
      | None ->
          {
            Obs.Report.a_class = cls;
            a_nodes = 0;
            a_log_sum = 0.0;
            a_max = 1.0;
            a_unobserved = 0;
          }
    in
    let next =
      match na.na_qerr with
      | Some q ->
          {
            prev with
            Obs.Report.a_nodes = prev.Obs.Report.a_nodes + 1;
            a_log_sum = prev.Obs.Report.a_log_sum +. log q;
            a_max = Float.max prev.Obs.Report.a_max q;
          }
      | None ->
          {
            prev with
            Obs.Report.a_unobserved = prev.Obs.Report.a_unobserved + 1;
          }
    in
    Hashtbl.replace tbl cls next
  in
  List.iter
    (fun na ->
      bump na.na_class na;
      bump "(all)" na)
    t.nodes;
  Hashtbl.fold (fun _ s acc -> s :: acc) tbl []
  |> List.sort (fun a b ->
         compare a.Obs.Report.a_class b.Obs.Report.a_class)

let observed t = List.filter (fun na -> na.na_qerr <> None) t.nodes

let to_string (t : t) : string =
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "per-node cardinality accuracy:\n";
  pf "  %-4s %-38s %12s %12s %8s\n" "id" "operator" "est" "actual" "q-err";
  List.iter
    (fun na ->
      match (na.na_act, na.na_qerr) with
      | Some act, Some q ->
          pf "  %-4d %-38s %12.0f %12.0f %8.2f\n" na.na_id na.na_op na.na_est
            act q
      | _ ->
          pf "  %-4d %-38s %12.0f %12s %8s\n" na.na_id na.na_op na.na_est "-"
            "-")
    t.nodes;
  Buffer.contents buf

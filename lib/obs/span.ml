(* Hierarchical span tracing (observability subsystem, lib/obs).

   A span covers one pipeline step — parse, bind, an optimization stage, an
   engine phase, plan extraction, simulated execution — and nests: the
   ancestry is tracked in domain-local storage, so each recorded event
   carries its full path ("q1/optimize/stage:full/explore").

   Collection is session-based and globally off by default: with no session
   active, [with_] is one atomic load and a tail call — no allocation, no
   clock read — so instrumented hot paths cost nothing in production.
   [collect] (or the [begin_session]/[end_session] pair for callers that
   must salvage events across an exception) turns recording on, and every
   domain appends completed spans to a mutex-guarded buffer.

   Timestamps come from [Gpos.Clock.now], so tests can pin them with
   [Gpos.Clock.with_fake] and golden-file the exported trace. *)

type event = {
  sp_name : string;
  sp_path : string;  (* "/"-joined ancestry, outermost first, incl. name *)
  sp_depth : int;    (* number of ancestors *)
  sp_start_us : float;  (* microseconds since session start *)
  sp_dur_us : float;
  sp_domain : int;
  sp_attrs : (string * string) list;
}

let active_flag = Atomic.make false
let buf : event list ref = ref []
let buf_mutex = Mutex.create ()
let session_t0 = ref 0.0

(* Total events ever recorded: lets tests assert that a run with
   observability off recorded nothing at all. *)
let recorded_total = Atomic.make 0

let active () = Atomic.get active_flag

(* Ancestry path of the span currently open on this domain, innermost
   first. *)
let stack_key : string list Domain.DLS.key = Domain.DLS.new_key (fun () -> [])

let record ev =
  Atomic.incr recorded_total;
  Mutex.lock buf_mutex;
  buf := ev :: !buf;
  Mutex.unlock buf_mutex

let with_ ?(attrs = []) ~name f =
  if not (active ()) then f ()
  else begin
    let stack = Domain.DLS.get stack_key in
    Domain.DLS.set stack_key (name :: stack);
    let path = String.concat "/" (List.rev (name :: stack)) in
    let t0 = Gpos.Clock.now () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = Gpos.Clock.now () in
        Domain.DLS.set stack_key stack;
        record
          {
            sp_name = name;
            sp_path = path;
            sp_depth = List.length stack;
            sp_start_us = (t0 -. !session_t0) *. 1e6;
            sp_dur_us = (t1 -. t0) *. 1e6;
            sp_domain = (Domain.self () :> int);
            sp_attrs = attrs;
          })
      f
  end

(* Stable order for exporters and golden tests: by start time, then depth
   (parents before equal-start children), then path. *)
let sort_events evs =
  List.sort
    (fun a b ->
      match Float.compare a.sp_start_us b.sp_start_us with
      | 0 -> (
          match compare a.sp_depth b.sp_depth with
          | 0 -> compare a.sp_path b.sp_path
          | c -> c)
      | c -> c)
    evs

(* Start a session. Returns [false] (and records nothing new) when one is
   already active — the outer owner keeps collecting. *)
let begin_session () =
  if Atomic.get active_flag then false
  else begin
    Mutex.lock buf_mutex;
    buf := [];
    Mutex.unlock buf_mutex;
    session_t0 := Gpos.Clock.now ();
    Atomic.set active_flag true;
    true
  end

(* Stop the session and drain the buffer in stable order. *)
let end_session () =
  Atomic.set active_flag false;
  Mutex.lock buf_mutex;
  let evs = !buf in
  buf := [];
  Mutex.unlock buf_mutex;
  sort_events evs

(* Run [f] in a fresh session; returns its result and the collected spans.
   Nested inside an active session, runs [f] and returns no events (the
   outer session owns them). *)
let collect f =
  if not (begin_session ()) then (f (), [])
  else
    match f () with
    | v -> (v, end_session ())
    | exception e ->
        ignore (end_session ());
        raise e

(* The unified observability report: per-rule profiles, Memo growth,
   scheduler utilization, cost-model invocations, execution metrics and the
   collected spans, merged into one value attached to [Optimizer.report].

   Producers (the engine, the Memo, the scheduler) expose snapshots of their
   own counters; [Orca.Optimizer] assembles one [t] per optimization stage
   and [merge]s them. The CLI merges further across a whole suite. Exec
   metrics arrive as generic key/value pairs ([Exec.Metrics.to_kv]) so this
   library depends on nothing above gpos. *)

type rule_stat = {
  r_name : string;
  r_kind : string;  (* "explore" | "implement" *)
  r_fired : int;    (* applications actually run *)
  r_results : int;  (* alternatives produced *)
  r_skipped : int;  (* applications filtered out (stage deadline fired) *)
  r_prefiltered : int;
      (* applications skipped by the applicability pre-filter (the rule's
         root-shape bitmap ruled the group expression out) *)
  r_time_ms : float;
}

type memo_stat = {
  m_groups : int;
  m_gexprs : int;
  m_inserts : int;      (* insert_gexpr calls *)
  m_dedup_hits : int;   (* inserts resolved to an existing expression *)
  m_merges : int;       (* group merges triggered by duplicate detection *)
  m_ctx_created : int;
  m_ctx_cache_hits : int;  (* obtain_context found an existing context *)
  m_winner_updates : int;  (* record_alternative improved cx_best *)
  m_winner_kept : int;     (* record_alternative kept the incumbent *)
  m_ops_interned : int;    (* distinct hash-consed operator payloads *)
  m_intern_hits : int;     (* operators resolved to an existing interned id *)
}

type sched_stat = {
  s_label : string;  (* "explore/implement" | "costing" *)
  s_workers : int;
  s_jobs_created : int;
  s_jobs_run : int;
  s_jobs_suspended : int;
  s_goal_hits : int;
  s_max_queue_depth : int;
  s_per_worker_run : int list;
}

type cost_stat = {
  c_op_costings : int;       (* Cost_model.op_cost invocations *)
  c_enforcer_costings : int; (* Cost_model.enforcer_cost invocations *)
  c_alternatives : int;      (* alternatives recorded into contexts *)
  c_deadline_checks : int;
  c_base_reuses : int;       (* op+children base costs served from cache *)
  c_winner_skips : int;      (* child Opt spawns skipped: context complete *)
}

(* Cardinality accuracy per operator class (lib/prov): Q-error =
   max(est/act, act/est) per observed plan node, aggregated as a geometric
   mean. The geomean is stored as (Σ ln(qerr), node count) so merging across
   stages and queries is exact. *)
type acc_stat = {
  a_class : string;     (* Physical_ops.class_name, or "(all)" *)
  a_nodes : int;        (* observed nodes (est and actual both known) *)
  a_log_sum : float;    (* Σ ln(qerror) over observed nodes *)
  a_max : float;        (* worst node-level Q-error *)
  a_unobserved : int;   (* nodes with no actual (never executed) *)
}

type t = {
  label : string;
  queries : int;  (* merged query count (1 per optimization session) *)
  total_ms : float;
  stage_names : string list;
  rules : rule_stat list;
  memo : memo_stat;
  scheds : sched_stat list;
  cost : cost_stat;
  exec : (string * float) list;  (* Exec.Metrics key/values, when executed *)
  acc : acc_stat list;  (* cardinality accuracy by operator class (lib/prov) *)
  spans : Span.event list;
}

let empty_memo =
  {
    m_groups = 0;
    m_gexprs = 0;
    m_inserts = 0;
    m_dedup_hits = 0;
    m_merges = 0;
    m_ctx_created = 0;
    m_ctx_cache_hits = 0;
    m_winner_updates = 0;
    m_winner_kept = 0;
    m_ops_interned = 0;
    m_intern_hits = 0;
  }

let empty_cost =
  {
    c_op_costings = 0;
    c_enforcer_costings = 0;
    c_alternatives = 0;
    c_deadline_checks = 0;
    c_base_reuses = 0;
    c_winner_skips = 0;
  }

let empty =
  {
    label = "";
    queries = 0;
    total_ms = 0.0;
    stage_names = [];
    rules = [];
    memo = empty_memo;
    scheds = [];
    cost = empty_cost;
    exec = [];
    acc = [];
    spans = [];
  }

let with_exec t kv = { t with exec = kv }
let with_spans t spans = { t with spans }
let with_acc t acc = { t with acc }

let acc_geomean a = if a.a_nodes = 0 then 1.0 else exp (a.a_log_sum /. float_of_int a.a_nodes)

(* --- merging --- *)

let merge_memo a b =
  {
    m_groups = a.m_groups + b.m_groups;
    m_gexprs = a.m_gexprs + b.m_gexprs;
    m_inserts = a.m_inserts + b.m_inserts;
    m_dedup_hits = a.m_dedup_hits + b.m_dedup_hits;
    m_merges = a.m_merges + b.m_merges;
    m_ctx_created = a.m_ctx_created + b.m_ctx_created;
    m_ctx_cache_hits = a.m_ctx_cache_hits + b.m_ctx_cache_hits;
    m_winner_updates = a.m_winner_updates + b.m_winner_updates;
    m_winner_kept = a.m_winner_kept + b.m_winner_kept;
    m_ops_interned = a.m_ops_interned + b.m_ops_interned;
    m_intern_hits = a.m_intern_hits + b.m_intern_hits;
  }

let merge_cost a b =
  {
    c_op_costings = a.c_op_costings + b.c_op_costings;
    c_enforcer_costings = a.c_enforcer_costings + b.c_enforcer_costings;
    c_alternatives = a.c_alternatives + b.c_alternatives;
    c_deadline_checks = a.c_deadline_checks + b.c_deadline_checks;
    c_base_reuses = a.c_base_reuses + b.c_base_reuses;
    c_winner_skips = a.c_winner_skips + b.c_winner_skips;
  }

let merge_rules a b =
  let tbl = Hashtbl.create 32 in
  List.iter (fun r -> Hashtbl.replace tbl r.r_name r) a;
  List.iter
    (fun r ->
      match Hashtbl.find_opt tbl r.r_name with
      | None -> Hashtbl.replace tbl r.r_name r
      | Some p ->
          Hashtbl.replace tbl r.r_name
            {
              p with
              r_fired = p.r_fired + r.r_fired;
              r_results = p.r_results + r.r_results;
              r_skipped = p.r_skipped + r.r_skipped;
              r_prefiltered = p.r_prefiltered + r.r_prefiltered;
              r_time_ms = p.r_time_ms +. r.r_time_ms;
            })
    b;
  Hashtbl.fold (fun _ r acc -> r :: acc) tbl []
  |> List.sort (fun a b -> compare a.r_name b.r_name)

let merge_scheds a b =
  let tbl = Hashtbl.create 8 in
  List.iter (fun s -> Hashtbl.replace tbl s.s_label s) a;
  List.iter
    (fun s ->
      match Hashtbl.find_opt tbl s.s_label with
      | None -> Hashtbl.replace tbl s.s_label s
      | Some p ->
          Hashtbl.replace tbl s.s_label
            {
              p with
              s_workers = max p.s_workers s.s_workers;
              s_jobs_created = p.s_jobs_created + s.s_jobs_created;
              s_jobs_run = p.s_jobs_run + s.s_jobs_run;
              s_jobs_suspended = p.s_jobs_suspended + s.s_jobs_suspended;
              s_goal_hits = p.s_goal_hits + s.s_goal_hits;
              s_max_queue_depth = max p.s_max_queue_depth s.s_max_queue_depth;
              s_per_worker_run =
                (try List.map2 ( + ) p.s_per_worker_run s.s_per_worker_run
                 with Invalid_argument _ -> p.s_per_worker_run);
            })
    b;
  Hashtbl.fold (fun _ s acc -> s :: acc) tbl []
  |> List.sort (fun a b -> compare a.s_label b.s_label)

let merge_exec a b =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) a;
  List.iter
    (fun (k, v) ->
      Hashtbl.replace tbl k (v +. Option.value ~default:0.0 (Hashtbl.find_opt tbl k)))
    b;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let merge_acc a b =
  let tbl = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.replace tbl s.a_class s) a;
  List.iter
    (fun s ->
      match Hashtbl.find_opt tbl s.a_class with
      | None -> Hashtbl.replace tbl s.a_class s
      | Some p ->
          Hashtbl.replace tbl s.a_class
            {
              p with
              a_nodes = p.a_nodes + s.a_nodes;
              a_log_sum = p.a_log_sum +. s.a_log_sum;
              a_max = Float.max p.a_max s.a_max;
              a_unobserved = p.a_unobserved + s.a_unobserved;
            })
    b;
  Hashtbl.fold (fun _ s acc -> s :: acc) tbl []
  |> List.sort (fun a b -> compare a.a_class b.a_class)

let merge a b =
  {
    label = (if a.label = "" then b.label else a.label);
    queries = a.queries + b.queries;
    total_ms = a.total_ms +. b.total_ms;
    stage_names =
      a.stage_names
      @ List.filter (fun s -> not (List.mem s a.stage_names)) b.stage_names;
    rules = merge_rules a.rules b.rules;
    memo = merge_memo a.memo b.memo;
    scheds = merge_scheds a.scheds b.scheds;
    cost = merge_cost a.cost b.cost;
    exec = merge_exec a.exec b.exec;
    acc = merge_acc a.acc b.acc;
    spans = a.spans @ b.spans;
  }

let merge_all = List.fold_left merge empty

(* --- rendering --- *)

let pct num den = if den = 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den

let to_string ?(top = 10) t =
  let buf = Buffer.create 2048 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "== observability report: %s (%d quer%s, %.1f ms optimization) ==\n"
    (if t.label = "" then "?" else t.label)
    t.queries
    (if t.queries = 1 then "y" else "ies")
    t.total_ms;
  if t.stage_names <> [] then
    pf "stages: %s\n" (String.concat ", " t.stage_names);
  (* rules, top-N by cumulative time then firings *)
  let fired =
    List.filter
      (fun r -> r.r_fired > 0 || r.r_skipped > 0 || r.r_prefiltered > 0)
      t.rules
  in
  let ranked =
    List.sort
      (fun a b ->
        match Float.compare b.r_time_ms a.r_time_ms with
        | 0 -> compare b.r_fired a.r_fired
        | c -> c)
      fired
  in
  let shown = List.filteri (fun i _ -> i < top) ranked in
  pf "\nper-rule profile (top %d of %d by cumulative time):\n" top
    (List.length fired);
  pf "  %-28s %-10s %8s %8s %8s %11s %10s\n" "rule" "kind" "fired" "results"
    "skipped" "prefiltered" "time(ms)";
  List.iter
    (fun r ->
      pf "  %-28s %-10s %8d %8d %8d %11d %10.3f\n" r.r_name r.r_kind r.r_fired
        r.r_results r.r_skipped r.r_prefiltered r.r_time_ms)
    shown;
  let total_fired = List.fold_left (fun a r -> a + r.r_fired) 0 t.rules in
  let total_results = List.fold_left (fun a r -> a + r.r_results) 0 t.rules in
  let total_skipped = List.fold_left (fun a r -> a + r.r_skipped) 0 t.rules in
  let total_prefiltered =
    List.fold_left (fun a r -> a + r.r_prefiltered) 0 t.rules
  in
  pf "  %-28s %-10s %8d %8d %8d %11d\n" "(all rules)" "" total_fired
    total_results total_skipped total_prefiltered;
  (* memo *)
  let m = t.memo in
  pf "\nmemo: %d groups, %d group expressions\n" m.m_groups m.m_gexprs;
  pf "  inserts=%d dedup-hits=%d (%.1f%% duplicate rate) merges=%d\n"
    m.m_inserts m.m_dedup_hits (pct m.m_dedup_hits m.m_inserts) m.m_merges;
  pf "  contexts: created=%d cache-hits=%d  winners: updates=%d kept=%d (%.1f%% cache efficiency)\n"
    m.m_ctx_created m.m_ctx_cache_hits m.m_winner_updates m.m_winner_kept
    (pct m.m_winner_kept (m.m_winner_updates + m.m_winner_kept));
  if m.m_ops_interned > 0 || m.m_intern_hits > 0 then
    pf "  interning: %d distinct operator payloads, %d hits (%.1f%% shared)\n"
      m.m_ops_interned m.m_intern_hits
      (pct m.m_intern_hits (m.m_ops_interned + m.m_intern_hits));
  (* schedulers *)
  List.iter
    (fun s ->
      pf "scheduler[%s]: workers=%d created=%d run=%d suspended=%d goal-hits=%d max-queue=%d per-worker=[%s]\n"
        s.s_label s.s_workers s.s_jobs_created s.s_jobs_run s.s_jobs_suspended
        s.s_goal_hits s.s_max_queue_depth
        (String.concat ";" (List.map string_of_int s.s_per_worker_run)))
    t.scheds;
  (* cost model *)
  pf "cost model: op-costings=%d enforcer-costings=%d alternatives=%d deadline-checks=%d\n"
    t.cost.c_op_costings t.cost.c_enforcer_costings t.cost.c_alternatives
    t.cost.c_deadline_checks;
  if t.cost.c_base_reuses > 0 || t.cost.c_winner_skips > 0 then
    pf "cost reuse: base-costs=%d winner-skips=%d\n" t.cost.c_base_reuses
      t.cost.c_winner_skips;
  (* exec *)
  if t.exec <> [] then begin
    pf "execution: ";
    pf "%s\n"
      (String.concat " "
         (List.map (fun (k, v) -> Printf.sprintf "%s=%.4g" k v) t.exec))
  end;
  (* cardinality accuracy (lib/prov); absent entirely unless collected *)
  if t.acc <> [] then begin
    pf "\ncardinality accuracy (Q-error by operator class):\n";
    pf "  %-24s %8s %10s %10s %12s\n" "class" "nodes" "geomean" "max"
      "unobserved";
    List.iter
      (fun a ->
        pf "  %-24s %8d %10.3f %10.3f %12d\n" a.a_class a.a_nodes
          (acc_geomean a) a.a_max a.a_unobserved)
      t.acc
  end;
  if t.spans <> [] then begin
    pf "\nspan flame summary:\n";
    Buffer.add_string buf (Trace_export.flame_summary t.spans)
  end;
  Buffer.contents buf

(* Span exporters.

   [to_chrome_json] emits the Chrome trace_event format (an object with a
   "traceEvents" array of "ph":"X" complete events), loadable in Perfetto or
   chrome://tracing. Timestamps and durations are microseconds, as the
   format requires. Written by hand — the subsystem stays zero-dependency.

   [flame_summary] aggregates spans by path into a plain-text flame view:
   call count, total and self time, indented by depth.

   [check_consistency] is the self-consistency gate used by the CI
   profile-suite job: for every span that has children, the summed duration
   of its direct children must not exceed its own duration — nested
   disjoint spans measured by one clock can only undershoot their parent, so
   an overshoot means spans were misattributed or the clock misbehaved. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* %.1f keeps timestamps stable across platforms (no %g exponent noise). *)
let json_us v = Printf.sprintf "%.1f" v

let event_to_json (e : Span.event) =
  let args =
    ("path", e.Span.sp_path) :: e.Span.sp_attrs
    |> List.map (fun (k, v) ->
           Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
    |> String.concat ","
  in
  Printf.sprintf
    "{\"name\":\"%s\",\"cat\":\"orca\",\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":1,\"tid\":%d,\"args\":{%s}}"
    (json_escape e.Span.sp_name)
    (json_us e.Span.sp_start_us) (json_us e.Span.sp_dur_us) e.Span.sp_domain
    args

let to_chrome_json (events : Span.event list) : string =
  let body =
    Span.sort_events events |> List.map event_to_json |> String.concat ",\n"
  in
  "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n" ^ body ^ "\n]}\n"

(* --- aggregation by path --- *)

type agg = {
  ag_path : string;
  ag_depth : int;
  ag_count : int;
  ag_total_us : float;
  ag_child_us : float;  (* summed durations of direct children *)
}

let parent_path path =
  match String.rindex_opt path '/' with
  | None -> None
  | Some i -> Some (String.sub path 0 i)

let aggregate (events : Span.event list) : agg list =
  let tbl : (string, agg) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (e : Span.event) ->
      let cur =
        match Hashtbl.find_opt tbl e.Span.sp_path with
        | Some a -> a
        | None ->
            {
              ag_path = e.Span.sp_path;
              ag_depth = e.Span.sp_depth;
              ag_count = 0;
              ag_total_us = 0.0;
              ag_child_us = 0.0;
            }
      in
      Hashtbl.replace tbl e.Span.sp_path
        {
          cur with
          ag_count = cur.ag_count + 1;
          ag_total_us = cur.ag_total_us +. e.Span.sp_dur_us;
        })
    events;
  (* charge each path's total to its parent's child sum *)
  Hashtbl.fold (fun _ a acc -> a :: acc) tbl []
  |> List.iter (fun a ->
         match parent_path a.ag_path with
         | None -> ()
         | Some pp -> (
             match Hashtbl.find_opt tbl pp with
             | None -> ()
             | Some p ->
                 Hashtbl.replace tbl pp
                   { p with ag_child_us = p.ag_child_us +. a.ag_total_us }));
  Hashtbl.fold (fun _ a acc -> a :: acc) tbl []
  |> List.sort (fun a b -> compare a.ag_path b.ag_path)

let flame_summary (events : Span.event list) : string =
  let aggs = aggregate events in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-52s %6s %12s %12s\n" "span" "count" "total(ms)"
       "self(ms)");
  List.iter
    (fun a ->
      let name =
        match String.rindex_opt a.ag_path '/' with
        | None -> a.ag_path
        | Some i -> String.sub a.ag_path (i + 1) (String.length a.ag_path - i - 1)
      in
      let indent = String.make (2 * a.ag_depth) ' ' in
      Buffer.add_string buf
        (Printf.sprintf "%-52s %6d %12.3f %12.3f\n"
           (indent ^ name) a.ag_count (a.ag_total_us /. 1000.0)
           ((a.ag_total_us -. a.ag_child_us) /. 1000.0)))
    aggs;
  Buffer.contents buf

type violation = {
  v_path : string;  (* the parent span whose accounting is off *)
  v_total_us : float;
  v_children_us : float;
}

(* Children of a span must sum to at most the span's own duration (plus
   [slack_us] for clock granularity). Returns the violating parents. *)
let check_consistency ?(slack_us = 200.0) (events : Span.event list) :
    violation list =
  aggregate events
  |> List.filter_map (fun a ->
         if a.ag_child_us > a.ag_total_us +. slack_us then
           Some
             {
               v_path = a.ag_path;
               v_total_us = a.ag_total_us;
               v_children_us = a.ag_child_us;
             }
         else None)

let violation_to_string v =
  Printf.sprintf
    "span %s: children sum to %.3f ms but the span itself took %.3f ms"
    v.v_path (v.v_children_us /. 1000.0) (v.v_total_us /. 1000.0)

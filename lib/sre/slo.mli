(** Service-level objectives for the resident optimizer: rolling-window
    latency and availability objectives with error-budget burn rates.

    The window is a ring of per-interval accumulators (latency buckets on
    the {!Telemetry.Metrics} histogram geometry plus request/error/good
    counters); [report] merges the live intervals with
    {!Telemetry.Metrics.merge} and walks the merged histogram for
    quantiles, so a 300 s window at 10 s granularity forgets a traffic
    burst within one interval of it aging out. Interval rotation is driven
    by [Gpos.Clock], so reports are deterministic under [Clock.with_fake].

    Burn rate is the standard SRE ratio: (observed bad fraction over the
    window) / (budgeted bad fraction). 1.0 means the window consumes its
    error budget exactly as fast as allowed; above 1.0 the objective is
    being violated. *)

type objectives = {
  slo_window_s : float;       (** rolling window covered by a report *)
  slo_intervals : int;        (** ring granularity (window / intervals) *)
  slo_latency_ms : float;     (** a request this fast (or faster) is good *)
  slo_latency_target : float; (** required good fraction, e.g. 0.99 *)
  slo_availability_target : float; (** required non-error fraction *)
}

val default_objectives : objectives
(** 300 s window over 30 intervals; latency 100 ms at 99%;
    availability 99.9%. *)

type t

val create : ?objectives:objectives -> unit -> t

val objectives : t -> objectives

val observe : t -> ms:float -> ok:bool -> unit
(** Record one served request into the current interval (rotating the ring
    forward first if the clock has moved past it). Thread-safe. *)

val reset : t -> unit
(** Zero the whole window and restart it at the current clock reading —
    the operator action after a deploy or warm-up whose requests should
    not count against the objectives (bench serve resets between its
    cold pass and the measured mix). *)

type report = {
  r_objectives : objectives;
  r_requests : int;         (** requests inside the window *)
  r_errors : int;
  r_good : int;             (** requests at or under the latency objective *)
  r_availability : float;   (** 1.0 on an empty window *)
  r_attainment : float;     (** good fraction; 1.0 on an empty window *)
  r_p50_ms : float;
  r_p95_ms : float;
  r_p99_ms : float;
  r_latency_burn : float;   (** (1-attainment) / (1-latency_target) *)
  r_availability_burn : float;
  r_latency_ok : bool;      (** attainment >= target *)
  r_availability_ok : bool;
}

val report : t -> report

val healthy : report -> bool
(** Both objectives currently met. *)

val to_json : report -> string
(** Single-line JSON object: objectives, window counters, quantiles, burn
    rates and per-objective verdicts (the [!slo] endpoint body and the
    [BENCH_serve.json] [slo] block). *)

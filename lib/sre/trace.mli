(** Request tracing for the resident service (lib/server): every session
    gets a small integer id, every request inside it a monotonic request
    id, and the pair renders as the trace id ["s<sid>-r<rid>"] that is
    echoed in protocol replies, stamped on event-log entries, threaded
    into [Orca_config.trace_id] (lib/obs span attribute, flight-recorder
    dump attribution) and used as the flight-recorder entry label.

    Ids are plain counters — deterministic per generator, no randomness,
    no clock — so tests and replays are stable. *)

type gen
(** A per-server id generator. Session 0 is reserved for direct API
    callers that hold no protocol session. *)

type session = {
  sid : int;             (** 0 = the API pseudo-session *)
  next_rid : int Atomic.t;
}

val make_gen : unit -> gen

val api_session : gen -> session
(** The generator's session 0; allocated once per generator. *)

val open_session : gen -> session
(** Fresh session with the next id (1, 2, ...). Thread-safe. *)

val next : session -> string
(** Allocate the next request id in the session and render the trace id
    (["s3-r17"]). Thread-safe (the API pseudo-session is shared). *)

val render : sid:int -> rid:int -> string

(* Session/request id allocation for the service observability layer.
   Plain atomic counters: deterministic per generator, cheap enough to sit
   on the request hot path. *)

type session = { sid : int; next_rid : int Atomic.t }

type gen = { next_sid : int Atomic.t; api : session }

let make_gen () =
  { next_sid = Atomic.make 1; api = { sid = 0; next_rid = Atomic.make 1 } }

let api_session g = g.api

let open_session g =
  { sid = Atomic.fetch_and_add g.next_sid 1; next_rid = Atomic.make 1 }

let render ~sid ~rid = Printf.sprintf "s%d-r%d" sid rid

let next s = render ~sid:s.sid ~rid:(Atomic.fetch_and_add s.next_rid 1)

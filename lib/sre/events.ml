(* Bounded ring of structured service events, JSON-lines rendered.

   The ring is lock-free: writers claim a slot with one fetch-and-add and
   store an immutable entry record into it. A reader walking the ring
   concurrently with a wrap-around may miss a slot being replaced, but
   each slot holds either a whole entry or the one it replaced — never a
   torn mix. The optional sink is the only locked path (channel writes
   interleave otherwise) and is meant for files/stderr, not hot loops. *)

type level = Debug | Info | Warn | Error

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

type field = S of string | I of int | F of float | B of bool

type entry = {
  ev_seq : int;
  ev_ts : float;
  ev_level : level;
  ev_kind : string;
  ev_trace : string option;
  ev_fields : (string * field) list;
}

type t = {
  enabled : bool;
  min_level : int;
  ring : entry option array;
  seq : int Atomic.t; (* next sequence number, 1-based *)
  sink : out_channel option ref;
  sink_lock : Mutex.t;
}

let create ?(capacity = 1024) ?(level = Debug) ?(enabled = true) () =
  {
    enabled;
    min_level = level_rank level;
    ring = Array.make (max 1 capacity) None;
    seq = Atomic.make 1;
    sink = ref None;
    sink_lock = Mutex.create ();
  }

let on t level = t.enabled && level_rank level >= t.min_level

let capacity t = Array.length t.ring

let total t = Atomic.get t.seq - 1

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let field_to_json = function
  | S s -> Printf.sprintf "\"%s\"" (json_escape s)
  | I i -> string_of_int i
  | F f -> Printf.sprintf "%.6g" f
  | B b -> if b then "true" else "false"

let entry_to_json e =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "{\"seq\":%d,\"ts\":%.6f,\"level\":\"%s\",\"event\":\"%s\""
       e.ev_seq e.ev_ts (level_string e.ev_level) (json_escape e.ev_kind));
  (match e.ev_trace with
  | Some tr ->
      Buffer.add_string buf (Printf.sprintf ",\"trace\":\"%s\"" (json_escape tr))
  | None -> ());
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf
        (Printf.sprintf ",\"%s\":%s" (json_escape k) (field_to_json v)))
    e.ev_fields;
  Buffer.add_char buf '}';
  Buffer.contents buf

let emit t ?(level = Info) ?trace ~kind fields =
  if t.enabled && level_rank level >= t.min_level then begin
    let seq = Atomic.fetch_and_add t.seq 1 in
    let e =
      {
        ev_seq = seq;
        ev_ts = Gpos.Clock.now ();
        ev_level = level;
        ev_kind = kind;
        ev_trace = trace;
        ev_fields = fields;
      }
    in
    t.ring.((seq - 1) mod Array.length t.ring) <- Some e;
    Telemetry.Metrics.inc Telemetry.Std.sre_events;
    match !(t.sink) with
    | None -> ()
    | Some oc ->
        Mutex.lock t.sink_lock;
        (try
           output_string oc (entry_to_json e);
           output_char oc '\n';
           flush oc
         with Sys_error _ -> ());
        Mutex.unlock t.sink_lock
  end

let entries t =
  let collected =
    Array.fold_left
      (fun acc slot -> match slot with None -> acc | Some e -> e :: acc)
      [] t.ring
  in
  List.sort (fun a b -> compare a.ev_seq b.ev_seq) collected

let set_sink t oc =
  Mutex.lock t.sink_lock;
  t.sink := oc;
  Mutex.unlock t.sink_lock

let to_json_lines t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun e ->
      Buffer.add_string buf (entry_to_json e);
      Buffer.add_char buf '\n')
    (entries t);
  Buffer.contents buf

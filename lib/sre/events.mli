(** Structured event log for the resident service: a leveled JSON-lines
    event stream held in a lock-free bounded ring, with an optional sink
    channel (file or stderr — never the protocol stream, which must stay
    single-line JSON).

    Event kinds emitted by lib/server: [session_open]/[session_close],
    [request_start] (trace + fingerprint), [request_finish] (trace + cache
    outcome + latency), [request_error], [invalidate], [evict].

    Cost model: with the log disabled, [emit] is one load and a return —
    call sites guard field construction behind {!on} so a disabled log
    allocates nothing. Enabled, an emission is one atomic
    fetch-and-add plus one array store (the sink, when set, adds a
    mutex-guarded channel write). Timestamps come from [Gpos.Clock], so
    the stream is deterministic under [Clock.with_fake]. *)

type level = Debug | Info | Warn | Error

val level_string : level -> string
(** ["debug"], ["info"], ["warn"], ["error"]. *)

type field = S of string | I of int | F of float | B of bool

type entry = {
  ev_seq : int;    (** 1-based, monotonic across the log's lifetime *)
  ev_ts : float;   (** [Gpos.Clock.now] at emission *)
  ev_level : level;
  ev_kind : string;
  ev_trace : string option;  (** originating trace id, when any *)
  ev_fields : (string * field) list;
}

type t

val create : ?capacity:int -> ?level:level -> ?enabled:bool -> unit -> t
(** [capacity] bounds the ring (default 1024; older entries are
    overwritten). [level] is the minimum recorded severity (default
    [Debug]: record everything). [enabled:false] builds a log whose [emit]
    is a no-op — the zero-cost-when-disabled configuration. *)

val on : t -> level -> bool
(** Would an event at this level be recorded? Call sites use this to skip
    building the field list entirely when the answer is no. *)

val emit :
  t -> ?level:level -> ?trace:string -> kind:string ->
  (string * field) list -> unit
(** Record one event (default level [Info]). Lock-free on the ring path;
    drops silently when disabled or below the level threshold. *)

val total : t -> int
(** Events ever recorded (>= retained). *)

val entries : t -> entry list
(** Retained entries, oldest first. Cold path: intended for endpoints,
    tests and artifact dumps after the writers have quiesced; a read
    racing a wrap-around writer may skip in-flight slots but never
    produces a torn entry. *)

val capacity : t -> int

val set_sink : t -> out_channel option -> unit
(** Mirror every subsequent emission to the channel as one JSON line,
    flushed (mutex-guarded). The channel must not be the protocol stream.
    [None] detaches; the caller owns closing the channel. *)

val entry_to_json : entry -> string
(** One JSON object, no trailing newline:
    [{"seq":..,"ts":..,"level":..,"event":..,"trace":..,<fields>}]. *)

val to_json_lines : t -> string
(** The retained ring as newline-terminated JSON lines (the nightly soak
    artifact shape). *)

(* Readiness policy for the service endpoints. Pure: numbers in, verdict
   out, so thresholds are unit-testable without sockets or servers. *)

type input = {
  h_uptime_s : float;
  h_sessions_open : int;
  h_sessions_total : int;
  h_requests : int;
  h_errors : int;
  h_snapshot_age_s : float;
  h_catalog_version : int;
  h_stats_version : int;
  h_cache_entries : int;
  h_cache_capacity : int;
  h_slo : Slo.report option;
}

type check = { c_name : string; c_ok : bool; c_detail : string }

type verdict = { ready : bool; checks : check list }

let evaluate ?(max_error_rate = 0.10) ?(max_occupancy = 0.95) (i : input) :
    verdict =
  let error_rate =
    if i.h_requests = 0 then 0.0
    else float_of_int i.h_errors /. float_of_int i.h_requests
  in
  let occupancy =
    if i.h_cache_capacity <= 0 then 0.0
    else float_of_int i.h_cache_entries /. float_of_int i.h_cache_capacity
  in
  let checks =
    [
      {
        c_name = "error-rate";
        c_ok = error_rate <= max_error_rate;
        c_detail =
          Printf.sprintf "%.4f (max %.4f over %d requests)" error_rate
            max_error_rate i.h_requests;
      };
      {
        c_name = "cache-occupancy";
        c_ok = occupancy < max_occupancy;
        c_detail =
          Printf.sprintf "%d/%d entries (%.2f, max %.2f)" i.h_cache_entries
            i.h_cache_capacity occupancy max_occupancy;
      };
    ]
    @
    match i.h_slo with
    | None -> []
    | Some r ->
        [
          {
            c_name = "slo-latency";
            c_ok = r.Slo.r_latency_ok;
            c_detail =
              Printf.sprintf "attainment %.4f (target %.4f)" r.Slo.r_attainment
                r.Slo.r_objectives.Slo.slo_latency_target;
          };
          {
            c_name = "slo-availability";
            c_ok = r.Slo.r_availability_ok;
            c_detail =
              Printf.sprintf "availability %.4f (target %.4f)"
                r.Slo.r_availability
                r.Slo.r_objectives.Slo.slo_availability_target;
          };
        ]
  in
  { ready = List.for_all (fun c -> c.c_ok) checks; checks }

let to_json (i : input) (v : verdict) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"status\":\"%s\",\"uptime_s\":%.3f,\"sessions_open\":%d,\
        \"sessions_total\":%d,\"requests\":%d,\"errors\":%d,\
        \"snapshot_age_s\":%.3f,\"catalog_version\":%d,\"stats_version\":%d,\
        \"cache_entries\":%d,\"cache_capacity\":%d,\"checks\":["
       (if v.ready then "ready" else "degraded")
       i.h_uptime_s i.h_sessions_open i.h_sessions_total i.h_requests
       i.h_errors i.h_snapshot_age_s i.h_catalog_version i.h_stats_version
       i.h_cache_entries i.h_cache_capacity);
  List.iteri
    (fun n c ->
      if n > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"name\":\"%s\",\"ok\":%b,\"detail\":\"%s\"}" c.c_name
           c.c_ok c.c_detail))
    v.checks;
  Buffer.add_string buf "]}";
  Buffer.contents buf

(* Rolling-window SLO accounting.

   Each interval of the ring is a mutable accumulator sharing the
   lib/telemetry histogram bucket geometry; a report lifts every interval
   into a Metrics.hsnap and folds them with Metrics.merge (associative,
   commutative — the same primitive that aggregates per-worker histograms)
   before walking quantiles. One mutex guards rotation and observation:
   the per-request work under it is two array stores and a handful of
   integer bumps, far below the cost of the request itself. *)

type objectives = {
  slo_window_s : float;
  slo_intervals : int;
  slo_latency_ms : float;
  slo_latency_target : float;
  slo_availability_target : float;
}

let default_objectives =
  {
    slo_window_s = 300.0;
    slo_intervals = 30;
    slo_latency_ms = 100.0;
    slo_latency_target = 0.99;
    slo_availability_target = 0.999;
  }

type interval = {
  mutable i_count : int;
  mutable i_errors : int;
  mutable i_good : int;
  mutable i_sum_ms : float;
  i_buckets : int array; (* Telemetry.Metrics bucket geometry *)
}

let fresh_interval () =
  {
    i_count = 0;
    i_errors = 0;
    i_good = 0;
    i_sum_ms = 0.0;
    i_buckets = Array.make Telemetry.Metrics.nbuckets 0;
  }

let zero_interval i =
  i.i_count <- 0;
  i.i_errors <- 0;
  i.i_good <- 0;
  i.i_sum_ms <- 0.0;
  Array.fill i.i_buckets 0 (Array.length i.i_buckets) 0

type t = {
  obj : objectives;
  interval_s : float;
  ring : interval array;
  mutable cur : int;
  mutable cur_start : float;
  lock : Mutex.t;
}

let create ?(objectives = default_objectives) () =
  let n = max 1 objectives.slo_intervals in
  {
    obj = { objectives with slo_intervals = n };
    interval_s = objectives.slo_window_s /. float_of_int n;
    ring = Array.init n (fun _ -> fresh_interval ());
    cur = 0;
    cur_start = Gpos.Clock.now ();
    lock = Mutex.create ();
  }

let objectives t = t.obj

(* Advance the ring to cover [now], zeroing every interval the clock
   skipped. A gap longer than the whole window resets the ring in one
   step rather than spinning per interval. *)
let rotate_locked t now =
  let n = Array.length t.ring in
  if now -. t.cur_start >= t.interval_s *. float_of_int (2 * n) then begin
    Array.iter zero_interval t.ring;
    t.cur_start <- now
  end
  else
    while now -. t.cur_start >= t.interval_s do
      t.cur <- (t.cur + 1) mod n;
      zero_interval t.ring.(t.cur);
      t.cur_start <- t.cur_start +. t.interval_s
    done

let observe t ~ms ~ok =
  let now = Gpos.Clock.now () in
  Mutex.lock t.lock;
  rotate_locked t now;
  let i = t.ring.(t.cur) in
  i.i_count <- i.i_count + 1;
  if not ok then i.i_errors <- i.i_errors + 1;
  if ok && ms <= t.obj.slo_latency_ms then i.i_good <- i.i_good + 1;
  let ms = if Float.is_nan ms || ms < 0.0 then 0.0 else ms in
  i.i_sum_ms <- i.i_sum_ms +. ms;
  let b = Telemetry.Metrics.bucket_of ms in
  i.i_buckets.(b) <- i.i_buckets.(b) + 1;
  Mutex.unlock t.lock

let reset t =
  let now = Gpos.Clock.now () in
  Mutex.lock t.lock;
  Array.iter zero_interval t.ring;
  t.cur <- 0;
  t.cur_start <- now;
  Mutex.unlock t.lock

type report = {
  r_objectives : objectives;
  r_requests : int;
  r_errors : int;
  r_good : int;
  r_availability : float;
  r_attainment : float;
  r_p50_ms : float;
  r_p95_ms : float;
  r_p99_ms : float;
  r_latency_burn : float;
  r_availability_burn : float;
  r_latency_ok : bool;
  r_availability_ok : bool;
}

(* burn = bad_fraction / budget; an objective with no budget (target 1.0)
   burns infinitely the moment anything is bad, rendered as a large
   finite number so the JSON stays parseable everywhere. *)
let burn ~bad ~target =
  let budget = 1.0 -. target in
  if bad <= 0.0 then 0.0
  else if budget <= 0.0 then 1e9
  else bad /. budget

let report t =
  let now = Gpos.Clock.now () in
  Mutex.lock t.lock;
  rotate_locked t now;
  let count = ref 0 and errors = ref 0 and good = ref 0 in
  let merged =
    Array.fold_left
      (fun acc i ->
        count := !count + i.i_count;
        errors := !errors + i.i_errors;
        good := !good + i.i_good;
        Telemetry.Metrics.merge acc
          {
            Telemetry.Metrics.hs_count = i.i_count;
            hs_sum = i.i_sum_ms;
            hs_buckets = Array.copy i.i_buckets;
          })
      Telemetry.Metrics.empty_hsnap t.ring
  in
  Mutex.unlock t.lock;
  let requests = !count in
  let availability =
    if requests = 0 then 1.0
    else float_of_int (requests - !errors) /. float_of_int requests
  in
  let attainment =
    if requests = 0 then 1.0 else float_of_int !good /. float_of_int requests
  in
  {
    r_objectives = t.obj;
    r_requests = requests;
    r_errors = !errors;
    r_good = !good;
    r_availability = availability;
    r_attainment = attainment;
    r_p50_ms = Telemetry.Metrics.quantile merged 0.50;
    r_p95_ms = Telemetry.Metrics.quantile merged 0.95;
    r_p99_ms = Telemetry.Metrics.quantile merged 0.99;
    r_latency_burn = burn ~bad:(1.0 -. attainment) ~target:t.obj.slo_latency_target;
    r_availability_burn =
      burn ~bad:(1.0 -. availability) ~target:t.obj.slo_availability_target;
    r_latency_ok = attainment >= t.obj.slo_latency_target;
    r_availability_ok = availability >= t.obj.slo_availability_target;
  }

let healthy r = r.r_latency_ok && r.r_availability_ok

let to_json r =
  let o = r.r_objectives in
  Printf.sprintf
    "{\"window_s\":%g,\"intervals\":%d,\"latency_slo_ms\":%g,\
     \"latency_target\":%g,\"availability_target\":%g,\"requests\":%d,\
     \"errors\":%d,\"good\":%d,\"availability\":%.6f,\"attainment\":%.6f,\
     \"p50_ms\":%.4f,\"p95_ms\":%.4f,\"p99_ms\":%.4f,\
     \"latency_burn\":%.6f,\"availability_burn\":%.6f,\"latency_ok\":%b,\
     \"availability_ok\":%b}"
    o.slo_window_s o.slo_intervals o.slo_latency_ms o.slo_latency_target
    o.slo_availability_target r.r_requests r.r_errors r.r_good
    r.r_availability r.r_attainment r.r_p50_ms r.r_p95_ms r.r_p99_ms
    r.r_latency_burn r.r_availability_burn r.r_latency_ok r.r_availability_ok

(** Readiness evaluation for the resident service: a small set of named
    checks over the server's vital signs, rendered as the single-line JSON
    body of the [!health] endpoint.

    The inputs are plain numbers supplied by lib/server (uptime, session
    counts, error rate, metadata-snapshot age, plan-cache occupancy, the
    current {!Slo} report) so the policy is testable without a server. *)

type input = {
  h_uptime_s : float;
  h_sessions_open : int;
  h_sessions_total : int;
  h_requests : int;
  h_errors : int;
  h_snapshot_age_s : float;  (** seconds since the last catalog/stats bump
                                 (or server start, if never bumped) *)
  h_catalog_version : int;
  h_stats_version : int;
  h_cache_entries : int;
  h_cache_capacity : int;
  h_slo : Slo.report option;
}

type check = { c_name : string; c_ok : bool; c_detail : string }

type verdict = { ready : bool; checks : check list }

val evaluate : ?max_error_rate:float -> ?max_occupancy:float -> input -> verdict
(** Checks, in order: [error-rate] (errors/requests at or under
    [max_error_rate], default 0.10; an idle server passes),
    [cache-occupancy] (entries/capacity under [max_occupancy], default
    0.95 — a full cache still serves, but eviction churn is imminent),
    [slo-latency] and [slo-availability] (from the report, when given).
    [ready] is the conjunction. *)

val to_json : input -> verdict -> string
(** [{"status":"ready"|"degraded","uptime_s":..,...,"checks":[...]}] —
    one line, no embedded newlines. *)

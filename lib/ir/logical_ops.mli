(** Operations on logical operators. Output-column derivation is
    parameterized by the children's output columns (supplied by the Memo's
    group properties or recomputed from trees). *)

open Expr

val arity : logical -> int
(** Set operations report 2 but accept two-or-more children. *)

val output_cols : logical -> Colref.t list list -> Colref.t list
(** The operator's output columns, in order, given each child's outputs. *)

val used_cols : logical -> Colref.Set.t
(** Columns the operator's own payload references. *)

(** {2 Root shapes (rule applicability pre-filters)}

    One tag per logical constructor, payload ignored. Rules declare which
    shapes their root pattern can match; the engine tests a bitmap instead of
    running rule bodies that cannot possibly fire. *)

type shape =
  | S_get
  | S_select
  | S_project
  | S_join
  | S_gb_agg
  | S_window
  | S_limit
  | S_apply
  | S_cte_producer
  | S_cte_anchor
  | S_cte_consumer
  | S_set
  | S_const_table

val nshapes : int

val all_shapes : shape list
(** Every shape, in tag order (drives rulecheck's exhaustive shape sweep and
    the [orca_cli rules] mask decoding). *)

val shape_of : logical -> shape

val shape_tag : shape -> int
(** Dense tag in [0, nshapes). *)

val tag : logical -> int
(** [shape_tag (shape_of op)]. *)

val shape_mask : shape list -> int
(** Bitmap with the bit of every listed shape set. *)

val all_shapes_mask : int
(** Mask with every shape bit set. *)

(** {2 Shape-domain set operations}

    Masks form a finite lattice (the powerset of shapes); the rule-interaction
    analyzer's abstract fixpoints iterate on it. *)

val mask_union : int -> int -> int
val mask_inter : int -> int -> int

val mask_diff : int -> int -> int
(** [mask_diff a b] is the shapes of [a] not in [b], clipped to valid bits. *)

val mask_mem : shape -> int -> bool
val mask_subset : int -> int -> bool

val shapes_of_mask : int -> shape list
(** Shapes whose bit is set, in tag order. *)

val mask_to_string : int -> string
(** ["*"] for the full mask, ["-"] for the empty mask, else a comma-joined
    shape list in tag order. *)

val shape_to_string : shape -> string

val agg_to_string : agg -> string
val wfunc_to_string : wfunc -> string
val window_to_string : Colref.t list -> Sortspec.t -> wfunc list -> string
val proj_to_string : proj -> string
val apply_kind_to_string : apply_kind -> string
val to_string : logical -> string

val fingerprint : logical -> int
(** Payload hash for Memo duplicate detection (children handled by the
    Memo's topology key). *)

val equal : logical -> logical -> bool

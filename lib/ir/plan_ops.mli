(** Utilities over extracted physical plans. *)

open Expr

val make :
  physical ->
  plan list ->
  schema:Colref.t list ->
  est_rows:float ->
  cost:float ->
  plan

val node : physical -> plan list -> est_rows:float -> cost:float -> plan
(** Build a node deriving its schema from the children. *)

val iter : (plan -> unit) -> plan -> unit
val fold : ('a -> plan -> 'a) -> 'a -> plan -> 'a
val node_count : plan -> int

val number : plan -> (int * string * plan) list
(** Stable plan-node ids: [(id, path, node)] in preorder, root = 0, path =
    child-index chain ("root", "root.0", "root.0.1"). The executor keys
    per-node actual row counts on these ids and the accuracy join (lib/prov)
    re-derives the same numbering, so both sides agree without sharing
    state. *)

val contains : (plan -> bool) -> plan -> bool
val count_motions : plan -> int

val derive_props : plan -> Props.derived
(** Re-derive the properties a subtree delivers, bottom-up
    (via {!Physical_ops.derive}). *)

val to_string : ?show_cost:bool -> ?show_props:bool -> plan -> string
(** EXPLAIN-style indented rendering. [show_props] additionally prints the
    derived distribution and sort order each node delivers. *)

val validate : plan -> int
(** Structural validation: arities, schema consistency, column visibility
    (SubPlan bodies are checked with their correlation parameters in scope).
    Raises on the first violation; returns the number of nodes checked. *)

val total_cost : plan -> float
val est_rows : plan -> float

(* The property framework (paper §4.1): required plan properties (what a
   parent asks of a child: result distribution and sort order) and derived
   properties (what a physical plan actually delivers), together with
   satisfaction checks and enforcement alternatives.

   Order properties are per-segment stream orders; a Singleton-distributed
   sorted stream is globally sorted. *)

open Expr

type dist_req =
  | Any_dist
  | Req_singleton              (* gathered to the master *)
  | Req_hashed of Colref.t list
  | Req_replicated
  | Req_non_singleton          (* parallel input, any partitioning *)

type dist =
  | D_singleton
  | D_hashed of Colref.t list
  | D_replicated
  | D_random

type req = { rdist : dist_req; rorder : Sortspec.t }

type derived = { ddist : dist; dorder : Sortspec.t }

let any_req = { rdist = Any_dist; rorder = Sortspec.empty }

let req_dist d = { rdist = d; rorder = Sortspec.empty }

let dist_req_to_string = function
  | Any_dist -> "Any"
  | Req_singleton -> "Singleton"
  | Req_hashed cols ->
      "Hashed(" ^ String.concat "," (List.map Colref.to_string cols) ^ ")"
  | Req_replicated -> "Replicated"
  | Req_non_singleton -> "NonSingleton"

let dist_to_string = function
  | D_singleton -> "Singleton"
  | D_hashed cols ->
      "Hashed(" ^ String.concat "," (List.map Colref.to_string cols) ^ ")"
  | D_replicated -> "Replicated"
  | D_random -> "Random"

let req_to_string r =
  Printf.sprintf "{%s, %s}" (dist_req_to_string r.rdist)
    (if Sortspec.is_empty r.rorder then "Any" else Sortspec.to_string r.rorder)

let derived_to_string d =
  Printf.sprintf "{%s, %s}" (dist_to_string d.ddist)
    (if Sortspec.is_empty d.dorder then "-" else Sortspec.to_string d.dorder)

let req_fingerprint (r : req) : int =
  let dist_part =
    match r.rdist with
    | Any_dist -> Hashtbl.hash 0
    | Req_singleton -> Hashtbl.hash 1
    | Req_hashed cols -> Hashtbl.hash (2, List.map Colref.id cols)
    | Req_replicated -> Hashtbl.hash 3
    | Req_non_singleton -> Hashtbl.hash 4
  in
  let order_part =
    Hashtbl.hash
      (List.map
         (fun (i : Sortspec.item) -> (Colref.id i.col, i.dir))
         r.rorder)
  in
  Hashtbl.hash (dist_part, order_part)

let req_equal (a : req) (b : req) =
  (match (a.rdist, b.rdist) with
  | Any_dist, Any_dist
  | Req_singleton, Req_singleton
  | Req_replicated, Req_replicated
  | Req_non_singleton, Req_non_singleton ->
      true
  | Req_hashed x, Req_hashed y ->
      List.length x = List.length y && List.for_all2 Colref.equal x y
  | _ -> false)
  && Sortspec.equal a.rorder b.rorder

let cols_equal x y =
  List.length x = List.length y && List.for_all2 Colref.equal x y

(* Distribution satisfaction. Hashed satisfaction is exact list equality: hash
   partitioning aligns only when both sides hash the positionally-matching key
   lists. *)
let dist_satisfies ~(delivered : dist) ~(required : dist_req) =
  match (required, delivered) with
  | Any_dist, _ -> true
  | Req_singleton, D_singleton -> true
  | Req_singleton, _ -> false
  | Req_hashed rc, D_hashed dc -> cols_equal rc dc
  | Req_hashed _, _ -> false
  | Req_replicated, D_replicated -> true
  | Req_replicated, _ -> false
  | Req_non_singleton, (D_hashed _ | D_random | D_replicated) -> true
  | Req_non_singleton, D_singleton -> false

let satisfies (d : derived) (r : req) =
  dist_satisfies ~delivered:d.ddist ~required:r.rdist
  && Sortspec.satisfies ~delivered:d.dorder ~required:r.rorder

(* Substitution compatibility for plan sampling: an operator's recorded
   derived properties were computed from the properties its child bests
   delivered at costing time. A different child alternative may stand in only
   if it provides every guarantee the assumed delivery provided — otherwise
   claims recorded upstream (e.g. "co-located on the group-by keys, no motion
   needed") silently break in the materialized plan. D_random promises
   nothing, so anything covers it; the other shapes must match exactly. *)
let dist_covers ~(assumed : dist) ~(actual : dist) =
  match (assumed, actual) with
  | D_random, _ -> true
  | D_singleton, D_singleton -> true
  | D_replicated, D_replicated -> true
  | D_hashed a, D_hashed b -> cols_equal a b
  | _ -> false

let derived_covers ~(assumed : derived) ~(actual : derived) =
  dist_covers ~assumed:assumed.ddist ~actual:actual.ddist
  && Sortspec.satisfies ~delivered:actual.dorder ~required:assumed.dorder

(* Enforcers that can be plugged on top of a plan (paper Fig. 7). *)
type enforcer = E_sort of Sortspec.t | E_motion of motion

let enforcer_to_string = function
  | E_sort s -> "Sort" ^ Sortspec.to_string s
  | E_motion Gather -> "Gather"
  | E_motion (Gather_merge s) -> "GatherMerge" ^ Sortspec.to_string s
  | E_motion (Redistribute es) ->
      "Redistribute("
      ^ String.concat "," (List.map Scalar_ops.to_string es)
      ^ ")"
  | E_motion Broadcast -> "Broadcast"

(* Properties delivered after applying one enforcer. *)
let apply_enforcer (d : derived) = function
  | E_sort s -> { d with dorder = s }
  | E_motion Gather -> { ddist = D_singleton; dorder = Sortspec.empty }
  | E_motion (Gather_merge s) -> { ddist = D_singleton; dorder = s }
  | E_motion (Redistribute es) ->
      let dist =
        (* hash on plain columns yields a trackable Hashed property *)
        let cols =
          List.filter_map (function Col c -> Some c | _ -> None) es
        in
        if List.length cols = List.length es && es <> [] then D_hashed cols
        else D_random
      in
      { ddist = dist; dorder = Sortspec.empty }
  | E_motion Broadcast -> { ddist = D_replicated; dorder = Sortspec.empty }

let apply_enforcers d chain = List.fold_left apply_enforcer d chain

(* All reasonable enforcer chains (applied bottom-up) turning [delivered] into
   something satisfying [required]. Returns [[]] when nothing is needed.
   The cost model differentiates the alternatives (e.g. sort-then-gather-merge
   versus gather-then-sort, the two plans of paper Fig. 7). *)
let enforcement_alternatives ~(delivered : derived) ~(required : req) :
    enforcer list list =
  let order_ok d =
    Sortspec.satisfies ~delivered:d.dorder ~required:required.rorder
  in
  let dist_ok d = dist_satisfies ~delivered:d.ddist ~required:required.rdist in
  if dist_ok delivered && order_ok delivered then [ [] ]
  else
    let chains =
      match required.rdist with
      | Any_dist ->
          (* only the order needs fixing *)
          [ [ E_sort required.rorder ] ]
      | Req_singleton ->
          let with_order =
            if Sortspec.is_empty required.rorder then
              [ [ E_motion Gather ] ]
            else if order_ok delivered then
              (* input already sorted per segment: merge while gathering *)
              [
                [ E_motion (Gather_merge required.rorder) ];
                [ E_motion Gather; E_sort required.rorder ];
              ]
            else
              [
                (* sort per segment, then order-preserving gather *)
                [ E_sort required.rorder; E_motion (Gather_merge required.rorder) ];
                (* gather everything, then sort at the master *)
                [ E_motion Gather; E_sort required.rorder ];
              ]
          in
          if dist_ok delivered then
            (* distribution fine (already singleton), only order broken *)
            [ [ E_sort required.rorder ] ]
          else with_order
      | Req_hashed cols ->
          let motion = E_motion (Redistribute (List.map (fun c -> Col c) cols)) in
          if dist_ok delivered then [ [ E_sort required.rorder ] ]
          else if Sortspec.is_empty required.rorder then [ [ motion ] ]
          else [ [ motion; E_sort required.rorder ] ]
      | Req_replicated ->
          if dist_ok delivered then [ [ E_sort required.rorder ] ]
          else if Sortspec.is_empty required.rorder then [ [ E_motion Broadcast ] ]
          else [ [ E_motion Broadcast; E_sort required.rorder ] ]
      | Req_non_singleton ->
          (* spread a singleton back out with a round-robin redistribute *)
          let motion = E_motion (Redistribute []) in
          if dist_ok delivered then [ [ E_sort required.rorder ] ]
          else if Sortspec.is_empty required.rorder then [ [ motion ] ]
          else [ [ motion; E_sort required.rorder ] ]
    in
    (* Keep only chains that actually reach the requirement. *)
    List.filter
      (fun chain ->
        let final = apply_enforcers delivered chain in
        dist_ok final && order_ok final)
      chains

(* Utilities over extracted physical plans. *)

open Expr

let make op children ~schema ~est_rows ~cost =
  { pop = op; pchildren = children; pschema = schema; pest_rows = est_rows; pcost = cost }

(* Build a plan node deriving the schema from the children. *)
let node op children ~est_rows ~cost =
  let schema =
    Physical_ops.output_cols op (List.map (fun c -> c.pschema) children)
  in
  make op children ~schema ~est_rows ~cost

let rec iter f (p : plan) =
  f p;
  List.iter (iter f) p.pchildren

let rec fold f acc (p : plan) =
  let acc = f acc p in
  List.fold_left (fold f) acc p.pchildren

let node_count p = fold (fun n _ -> n + 1) 0 p

(* Stable plan-node ids: preorder position in the tree, root = 0. The
   executor keys its per-node actual row counts on these ids and the
   accuracy join (lib/prov) re-derives the same numbering from the plan, so
   both sides agree without sharing state. The path is the child-index chain
   ("root.0.1"), matching the node paths used by the plan diff. *)
let number (p : plan) : (int * string * plan) list =
  let acc = ref [] in
  let next = ref 0 in
  let rec go path node =
    let id = !next in
    incr next;
    acc := (id, path, node) :: !acc;
    List.iteri
      (fun i child -> go (Printf.sprintf "%s.%d" path i) child)
      node.pchildren
  in
  go "root" p;
  List.rev !acc

let contains pred p = fold (fun found n -> found || pred n) false p

let count_motions p =
  fold
    (fun n node -> match node.pop with P_motion _ -> n + 1 | _ -> n)
    0 p

(* Re-derive the properties a subtree delivers, bottom-up. *)
let rec derive_props (p : plan) : Props.derived =
  Physical_ops.derive p.pop (List.map derive_props p.pchildren)

(* EXPLAIN-style rendering. [show_props] re-derives and prints the
   distribution and sort order each node delivers, so EXPLAIN output and the
   lint diagnostics of [Verify.Plan_check] share one renderer. *)
let to_string ?(show_cost = true) ?(show_props = false) (p : plan) =
  let buf = Buffer.create 256 in
  let rec go indent node =
    Buffer.add_string buf (String.make (indent * 2) ' ');
    Buffer.add_string buf "-> ";
    Buffer.add_string buf (Physical_ops.to_string node.pop);
    if show_cost then
      Buffer.add_string buf
        (Printf.sprintf "  (rows=%.0f cost=%.2f)" node.pest_rows node.pcost);
    let derived =
      if show_props then
        try Some (derive_props node) with _ -> None
      else None
    in
    (match derived with
    | Some d -> Buffer.add_string buf ("  " ^ Props.derived_to_string d)
    | None -> ());
    Buffer.add_char buf '\n';
    List.iter (go (indent + 1)) node.pchildren
  in
  go 0 p;
  Buffer.contents buf

(* Structural validation: arities match, every column referenced by an
   operator's payload is visible in its children (or is a correlation
   parameter), and the stored schema matches the derived one. Raises on the
   first violation; returns the number of nodes checked. *)
let validate (p : plan) =
  let checked = ref 0 in
  let rec go ~params node =
    incr checked;
    let expected_arity = Physical_ops.arity node.pop in
    if List.length node.pchildren <> expected_arity then
      Gpos.Gpos_error.internal "plan node %s: arity %d, expected %d"
        (Physical_ops.to_string node.pop)
        (List.length node.pchildren)
        expected_arity;
    let child_schemas = List.map (fun c -> c.pschema) node.pchildren in
    let derived = Physical_ops.output_cols node.pop child_schemas in
    if
      not
        (List.length derived = List.length node.pschema
        && List.for_all2 Colref.equal derived node.pschema)
    then
      Gpos.Gpos_error.internal "plan node %s: schema mismatch"
        (Physical_ops.to_string node.pop);
    let visible =
      List.fold_left
        (fun acc s -> Colref.Set.union acc (Colref.Set.of_list s))
        params child_schemas
    in
    let visible =
      match node.pop with
      | P_table_scan (td, _, _) | P_index_scan (td, _, _, _, _) ->
          Colref.Set.union visible (Colref.Set.of_list td.Table_desc.cols)
      | P_cte_consumer (_, cols) | P_const_table (cols, _) | P_set (_, cols) ->
          Colref.Set.union visible (Colref.Set.of_list cols)
      | _ -> visible
    in
    let check_scalar s =
      let free = Scalar_ops.free_cols s in
      if not (Colref.Set.subset free visible) then
        Gpos.Gpos_error.internal "plan node %s: unbound columns %s"
          (Physical_ops.to_string node.pop)
          (Colref.Set.to_string (Colref.Set.diff free visible))
    in
    (match node.pop with
    | P_table_scan (_, _, Some f) -> check_scalar f
    | P_index_scan (_, _, _, e, residual) ->
        check_scalar e;
        Option.iter check_scalar residual
    | P_filter pred -> check_scalar pred
    | P_project projs -> List.iter (fun pr -> check_scalar pr.proj_expr) projs
    | P_hash_join (_, keys, residual) ->
        List.iter
          (fun (a, b) ->
            check_scalar a;
            check_scalar b)
          keys;
        Option.iter check_scalar residual
    | P_nl_join (_, cond) -> check_scalar cond
    | P_hash_agg (_, _, aggs) | P_stream_agg (_, _, aggs) ->
        List.iter (fun a -> Option.iter check_scalar a.agg_arg) aggs
    | P_window (_, _, wfuncs) ->
        List.iter (fun w -> Option.iter check_scalar w.wf_arg) wfuncs
    | P_motion (Redistribute es) -> List.iter check_scalar es
    | _ -> ());
    (* Subplans inside scalars are validated with their parameters visible. *)
    let subplans = ref [] in
    let collect s =
      let rec go_s s =
        (match s with Subplan sp -> subplans := sp :: !subplans | _ -> ());
        Scalar_ops.iter_children go_s s
      in
      go_s s
    in
    (match node.pop with
    | P_table_scan (_, _, Some f) -> collect f
    | P_filter pred -> collect pred
    | P_project projs -> List.iter (fun pr -> collect pr.proj_expr) projs
    | P_nl_join (_, cond) -> collect cond
    | P_hash_join (_, _, Some r) -> collect r
    | _ -> ());
    List.iter
      (fun sp ->
        let param_cols =
          Colref.Set.of_list (List.map snd sp.sp_params)
        in
        go ~params:(Colref.Set.union params param_cols) sp.sp_plan)
      !subplans;
    List.iter (go ~params) node.pchildren
  in
  go ~params:Colref.Set.empty p;
  !checked

(* Total plan cost as recorded by the optimizer. *)
let total_cost (p : plan) = p.pcost

let est_rows (p : plan) = p.pest_rows

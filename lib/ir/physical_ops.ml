(* Operations on physical operators: arity, output schema, derived physical
   properties given children's derived properties, and printing. *)

open Expr

let arity = function
  | P_table_scan _ | P_index_scan _ | P_cte_consumer _ | P_const_table _ -> 0
  | P_filter _ | P_project _ | P_hash_agg _ | P_stream_agg _ | P_sort _
  | P_limit _ | P_motion _ | P_cte_producer _ | P_partition_selector _
  | P_window _ ->
      1
  | P_hash_join _ | P_merge_join _ | P_nl_join _ | P_sequence _ -> 2
  | P_set _ -> 2

let output_cols (op : physical) (children : Colref.t list list) : Colref.t list
    =
  let child n =
    match List.nth_opt children n with
    | Some c -> c
    | None -> Gpos.Gpos_error.internal "physical op missing child %d" n
  in
  match op with
  | P_table_scan (td, _, _) -> td.Table_desc.cols
  | P_index_scan (td, _, _, _, _) -> td.Table_desc.cols
  | P_filter _ | P_sort _ | P_limit _ | P_motion _ | P_cte_producer _
  | P_partition_selector _ ->
      child 0
  | P_project projs -> List.map (fun p -> p.proj_out) projs
  | P_hash_join ((Inner | Left_outer | Full_outer), _, _)
  | P_merge_join ((Inner | Left_outer | Full_outer), _, _)
  | P_nl_join ((Inner | Left_outer | Full_outer), _) ->
      child 0 @ child 1
  | P_hash_join ((Semi | Anti_semi), _, _)
  | P_merge_join ((Semi | Anti_semi), _, _)
  | P_nl_join ((Semi | Anti_semi), _) ->
      child 0
  | P_hash_agg (_, keys, aggs) | P_stream_agg (_, keys, aggs) ->
      keys @ List.map (fun a -> a.agg_out) aggs
  | P_window (_, _, wfuncs) -> child 0 @ List.map (fun w -> w.wf_out) wfuncs
  | P_sequence _ -> child 1
  | P_cte_consumer (_, cols) -> cols
  | P_set (_, cols) -> cols
  | P_const_table (cols, _) -> cols

(* Distribution of a base table as a delivered property. *)
let table_dist (td : Table_desc.t) : Props.dist =
  match td.Table_desc.dist with
  | Table_desc.Dist_hash cols -> Props.D_hashed cols
  | Table_desc.Dist_random -> Props.D_random
  | Table_desc.Dist_replicated -> Props.D_replicated

(* Does a column survive a projection unchanged? (Pass-through projections
   reuse the input colref as proj_out.) *)
let passes_projection projs col =
  List.exists
    (fun p ->
      match p.proj_expr with
      | Col c -> Colref.equal c col && Colref.equal p.proj_out col
      | _ -> false)
    projs

let dist_after_projection projs (d : Props.dist) : Props.dist =
  match d with
  | Props.D_hashed cols when List.for_all (passes_projection projs) cols -> d
  | Props.D_hashed _ -> Props.D_random
  | d -> d

let order_after_projection projs (o : Sortspec.t) : Sortspec.t =
  let rec keep = function
    | [] -> []
    | (i : Sortspec.item) :: rest ->
        if passes_projection projs i.col then i :: keep rest else []
  in
  keep o

(* Derived properties of [op] given its children's derived properties
   (paper §4.1: each operator combines child properties with local behavior,
   e.g. a hash join delivers the probe side's stream order). *)
let derive (op : physical) (children : Props.derived list) : Props.derived =
  let child n =
    match List.nth_opt children n with
    | Some d -> d
    | None -> Gpos.Gpos_error.internal "derive: missing child %d" n
  in
  match op with
  | P_table_scan (td, _, _) ->
      { Props.ddist = table_dist td; dorder = Sortspec.empty }
  | P_index_scan (td, idx, _, _, _) ->
      {
        Props.ddist = table_dist td;
        dorder = [ Sortspec.asc idx.Table_desc.idx_col ];
      }
  | P_filter _ | P_cte_producer _ | P_partition_selector _ -> child 0
  | P_limit (sort, _, _) ->
      (* limit preserves its declared order (it runs after the sort) *)
      let c = child 0 in
      if Sortspec.is_empty sort then c else { c with Props.dorder = sort }
  | P_project projs ->
      let c = child 0 in
      {
        Props.ddist = dist_after_projection projs c.Props.ddist;
        dorder = order_after_projection projs c.Props.dorder;
      }
  | P_hash_join (kind, keys, _) ->
      let o = child 0 and i = child 1 in
      let ddist : Props.dist =
        match (o.Props.ddist, i.Props.ddist) with
        | Props.D_hashed _, Props.D_hashed _ ->
            (* co-located: result follows the outer keys when they are columns *)
            let outer_key_cols =
              List.filter_map
                (fun (k, _) -> match k with Col c -> Some c | _ -> None)
                keys
            in
            if List.length outer_key_cols = List.length keys && keys <> [] then
              Props.D_hashed outer_key_cols
            else Props.D_random
        | d, Props.D_replicated -> d
        | Props.D_replicated, d when kind = Inner -> d
        | Props.D_singleton, Props.D_singleton -> Props.D_singleton
        | _ -> Props.D_random
      in
      (* probe (outer) side streams through the hash table in order *)
      { Props.ddist; dorder = o.Props.dorder }
  | P_merge_join (kind, keys, _) ->
      let o = child 0 and i = child 1 in
      let ddist : Props.dist =
        match (o.Props.ddist, i.Props.ddist) with
        | Props.D_hashed _, Props.D_hashed _ ->
            Props.D_hashed (List.map fst keys)
        | d, Props.D_replicated -> d
        | Props.D_replicated, d when kind = Inner -> d
        | Props.D_singleton, Props.D_singleton -> Props.D_singleton
        | _ -> Props.D_random
      in
      let dorder = List.map (fun (ok, _) -> Sortspec.asc ok) keys in
      { Props.ddist; dorder }
  | P_nl_join (kind, _) ->
      let o = child 0 and i = child 1 in
      let ddist : Props.dist =
        match (o.Props.ddist, i.Props.ddist) with
        | d, Props.D_replicated -> d
        | Props.D_replicated, d when kind = Inner -> d
        | Props.D_singleton, Props.D_singleton -> Props.D_singleton
        | _ -> Props.D_random
      in
      { Props.ddist; dorder = o.Props.dorder }
  | P_hash_agg (_, _, _) ->
      let c = child 0 in
      { Props.ddist = c.Props.ddist; dorder = Sortspec.empty }
  | P_stream_agg (_, _, _) ->
      (* stream agg emits groups in input (group-key) order *)
      child 0
  | P_window (_, _, _) ->
      (* rows pass through in input order, with columns appended *)
      child 0
  | P_sort spec ->
      let c = child 0 in
      { Props.ddist = c.Props.ddist; dorder = spec }
  | P_motion m -> (
      let c = child 0 in
      match m with
      | Gather -> { Props.ddist = Props.D_singleton; dorder = Sortspec.empty }
      | Gather_merge s -> { Props.ddist = Props.D_singleton; dorder = s }
      | Redistribute es ->
          let cols =
            List.filter_map (function Col c -> Some c | _ -> None) es
          in
          let d : Props.dist =
            if List.length cols = List.length es && es <> [] then
              Props.D_hashed cols
            else Props.D_random
          in
          { Props.ddist = d; dorder = Sortspec.empty }
      | Broadcast ->
          ignore c;
          { Props.ddist = Props.D_replicated; dorder = Sortspec.empty })
  | P_sequence _ -> child 1
  | P_cte_consumer _ ->
      (* conservative: alignment with the producer is not tracked *)
      { Props.ddist = Props.D_random; dorder = Sortspec.empty }
  | P_set (_, cols) -> (
      (* aligned-hash set ops deliver hash on output columns when all children
         are hash-distributed; otherwise random *)
      match children with
      | c :: rest
        when List.for_all
               (fun (d : Props.derived) ->
                 match d.Props.ddist with Props.D_hashed _ -> true | _ -> false)
               (c :: rest) ->
          { Props.ddist = Props.D_hashed cols; dorder = Sortspec.empty }
      | c :: rest
        when List.for_all
               (fun (d : Props.derived) -> d.Props.ddist = Props.D_singleton)
               (c :: rest) ->
          { Props.ddist = Props.D_singleton; dorder = Sortspec.empty }
      | _ -> { Props.ddist = Props.D_random; dorder = Sortspec.empty })
  | P_const_table _ ->
      { Props.ddist = Props.D_singleton; dorder = Sortspec.empty }

let motion_to_string = function
  | Gather -> "Gather"
  | Gather_merge s -> "GatherMerge" ^ Sortspec.to_string s
  | Redistribute [] -> "Redistribute(random)"
  | Redistribute es ->
      "Redistribute("
      ^ String.concat "," (List.map Scalar_ops.to_string es)
      ^ ")"
  | Broadcast -> "Broadcast"

let to_string (op : physical) =
  match op with
  | P_table_scan (td, parts, filter) ->
      let p =
        match parts with
        | None -> ""
        | Some ids -> Printf.sprintf " parts=[%s]" (String.concat "," (List.map string_of_int ids))
      in
      let f =
        match filter with
        | None -> ""
        | Some s -> " filter=" ^ Scalar_ops.to_string s
      in
      Printf.sprintf "TableScan(%s)%s%s" td.Table_desc.name p f
  | P_index_scan (td, idx, op, e, residual) ->
      let r =
        match residual with
        | None -> ""
        | Some s -> " filter=" ^ Scalar_ops.to_string s
      in
      Printf.sprintf "IndexScan(%s.%s %s %s)%s" td.Table_desc.name
        idx.Table_desc.idx_name (cmp_to_string op) (Scalar_ops.to_string e) r
  | P_filter pred -> "Filter(" ^ Scalar_ops.to_string pred ^ ")"
  | P_project projs ->
      "Project("
      ^ String.concat ", " (List.map Logical_ops.proj_to_string projs)
      ^ ")"
  | P_hash_join (k, keys, residual) ->
      let ks =
        List.map
          (fun (a, b) ->
            Scalar_ops.to_string a ^ "=" ^ Scalar_ops.to_string b)
          keys
      in
      let r =
        match residual with
        | None -> ""
        | Some s -> " residual=" ^ Scalar_ops.to_string s
      in
      Printf.sprintf "%sHashJoin(%s)%s" (join_kind_to_string k)
        (String.concat " AND " ks) r
  | P_merge_join (k, keys, residual) ->
      let ks =
        List.map
          (fun (a, b) -> Colref.to_string a ^ "=" ^ Colref.to_string b)
          keys
      in
      let r =
        match residual with
        | None -> ""
        | Some s -> " residual=" ^ Scalar_ops.to_string s
      in
      Printf.sprintf "%sMergeJoin(%s)%s" (join_kind_to_string k)
        (String.concat " AND " ks) r
  | P_nl_join (k, cond) ->
      Printf.sprintf "%sNLJoin(%s)" (join_kind_to_string k)
        (Scalar_ops.to_string cond)
  | P_hash_agg (phase, keys, aggs) ->
      Printf.sprintf "%sHashAgg([%s], [%s])" (agg_phase_to_string phase)
        (String.concat ", " (List.map Colref.to_string keys))
        (String.concat ", " (List.map Logical_ops.agg_to_string aggs))
  | P_stream_agg (phase, keys, aggs) ->
      Printf.sprintf "%sStreamAgg([%s], [%s])" (agg_phase_to_string phase)
        (String.concat ", " (List.map Colref.to_string keys))
        (String.concat ", " (List.map Logical_ops.agg_to_string aggs))
  | P_window (partition, order, wfuncs) ->
      Logical_ops.window_to_string partition order wfuncs
  | P_sort spec -> "Sort" ^ Sortspec.to_string spec
  | P_limit (sort, offset, count) ->
      Printf.sprintf "Limit(%s, offset=%d, count=%s)" (Sortspec.to_string sort)
        offset
        (match count with None -> "all" | Some c -> string_of_int c)
  | P_motion m -> motion_to_string m
  | P_cte_producer id -> Printf.sprintf "CTEProducer(%d)" id
  | P_cte_consumer (id, _) -> Printf.sprintf "CTEConsumer(%d)" id
  | P_sequence id -> Printf.sprintf "Sequence(cte=%d)" id
  | P_set (k, _) -> set_kind_to_string k
  | P_const_table (cols, rows) ->
      Printf.sprintf "ConstTable(%d cols, %d rows)" (List.length cols)
        (List.length rows)
  | P_partition_selector parts ->
      Printf.sprintf "PartitionSelector([%s])"
        (String.concat "," (List.map string_of_int parts))

(* Coarse operator class for per-class cardinality-accuracy aggregation
   (lib/prov): every constructor maps to a stable kebab-case id, with motions
   subdivided by kind (their row behaviour differs: a broadcast multiplies
   rows by the segment count, a gather only relocates them). *)
let class_name (op : physical) =
  match op with
  | P_table_scan _ -> "table-scan"
  | P_index_scan _ -> "index-scan"
  | P_filter _ -> "filter"
  | P_project _ -> "project"
  | P_hash_join _ -> "hash-join"
  | P_merge_join _ -> "merge-join"
  | P_nl_join _ -> "nl-join"
  | P_window _ -> "window"
  | P_hash_agg _ -> "hash-agg"
  | P_stream_agg _ -> "stream-agg"
  | P_sort _ -> "sort"
  | P_limit _ -> "limit"
  | P_motion Gather -> "motion-gather"
  | P_motion (Gather_merge _) -> "motion-gather-merge"
  | P_motion (Redistribute _) -> "motion-redistribute"
  | P_motion Broadcast -> "motion-broadcast"
  | P_cte_producer _ -> "cte-producer"
  | P_cte_consumer _ -> "cte-consumer"
  | P_sequence _ -> "sequence"
  | P_set _ -> "set"
  | P_const_table _ -> "const-table"
  | P_partition_selector _ -> "partition-selector"

let fingerprint (op : physical) : int = Hashtbl.hash op

let equal (a : physical) (b : physical) = Stdlib.compare a b = 0

(** The property framework (paper §4.1): required plan properties (result
    distribution and sort order), derived properties, satisfaction checks and
    enforcement alternatives (Fig. 7).

    Order properties are per-segment stream orders; a Singleton-distributed
    sorted stream is globally sorted. Hashed-distribution satisfaction is
    exact column-list equality: hash partitioning only aligns when both sides
    hash positionally-matching key lists. *)

open Expr

type dist_req =
  | Any_dist
  | Req_singleton               (** gathered to the master *)
  | Req_hashed of Colref.t list
  | Req_replicated
  | Req_non_singleton           (** parallel input, any partitioning *)

type dist =
  | D_singleton
  | D_hashed of Colref.t list
  | D_replicated
  | D_random

type req = { rdist : dist_req; rorder : Sortspec.t }
(** An optimization request; an empty [rorder] means "any order". *)

type derived = { ddist : dist; dorder : Sortspec.t }

val any_req : req
val req_dist : dist_req -> req

val dist_req_to_string : dist_req -> string
val dist_to_string : dist -> string
val req_to_string : req -> string
val derived_to_string : derived -> string

val req_fingerprint : req -> int
(** Hash for the group context tables (paper Fig. 6). *)

val req_equal : req -> req -> bool
val dist_satisfies : delivered:dist -> required:dist_req -> bool
val satisfies : derived -> req -> bool

val derived_covers : assumed:derived -> actual:derived -> bool
(** Can [actual] stand in for [assumed] without weakening any guarantee a
    parent derivation relied on? Used when plan sampling substitutes non-best
    child alternatives: the parent's recorded [a_derived] was computed from
    its child bests' deliveries, and stays truthful only for substitutes that
    cover them. [D_random] promises nothing (anything covers it); the other
    distribution shapes must match exactly, and the actual order must satisfy
    the assumed one. *)

(** Enforcers pluggable on top of a plan (paper Fig. 7). *)
type enforcer = E_sort of Sortspec.t | E_motion of motion

val enforcer_to_string : enforcer -> string

val apply_enforcer : derived -> enforcer -> derived
(** Properties delivered after one enforcer. *)

val apply_enforcers : derived -> enforcer list -> derived

val enforcement_alternatives :
  delivered:derived -> required:req -> enforcer list list
(** All reasonable enforcer chains (applied bottom-up) turning [delivered]
    into something satisfying [required]; [[[]]] when nothing is needed.
    Includes both Fig. 7 plans (sort-then-gather-merge vs gather-then-sort)
    where applicable — the cost model differentiates them. Every returned
    chain is guaranteed to reach the requirement. *)

(* A generic hash-consing (interning) table: maps structurally-equal values
   to one dense integer id, so downstream equality checks and hash keys are
   O(1) int comparisons instead of deep structural walks.

   Callers supply the hash and equality once, at table creation; the table
   stores one canonical representative per equivalence class. Ids are dense
   (0, 1, 2, ...) in first-interning order, so they double as array indexes
   for id-keyed side tables (the Memo's dedup index, rule bitmap caches).

   Not thread-safe on its own: the Memo interns under its global insertion
   lock, which is the only writer. *)

type 'a t = {
  hash : 'a -> int;
  equal : 'a -> 'a -> bool;
  buckets : (int, ('a * int) list) Hashtbl.t; (* hash -> (value, id) bucket *)
  mutable next_id : int;
  mutable hits : int; (* interned values resolved to an existing id *)
}

let create ?(size = 256) ~hash ~equal () =
  { hash; equal; buckets = Hashtbl.create size; next_id = 0; hits = 0 }

let size t = t.next_id
let hits t = t.hits

(* Intern [v]: the id of its equivalence class, allocating a fresh dense id
   on first sight. *)
let intern t v =
  let h = t.hash v in
  let bucket = Option.value ~default:[] (Hashtbl.find_opt t.buckets h) in
  match List.find_opt (fun (v', _) -> t.equal v v') bucket with
  | Some (_, id) ->
      t.hits <- t.hits + 1;
      id
  | None ->
      let id = t.next_id in
      t.next_id <- t.next_id + 1;
      Hashtbl.replace t.buckets h ((v, id) :: bucket);
      id

(* Like [intern] but also returns the canonical representative, letting the
   caller drop its own copy so structurally-equal values share memory. *)
let intern_rep t v =
  let h = t.hash v in
  let bucket = Option.value ~default:[] (Hashtbl.find_opt t.buckets h) in
  match List.find_opt (fun (v', _) -> t.equal v v') bucket with
  | Some (rep, id) ->
      t.hits <- t.hits + 1;
      (rep, id)
  | None ->
      let id = t.next_id in
      t.next_id <- t.next_id + 1;
      Hashtbl.replace t.buckets h ((v, id) :: bucket);
      (v, id)

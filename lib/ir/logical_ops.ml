(* Operations on logical operators. Output-column derivation is parameterized
   by the children's output columns (supplied by the Memo's group properties). *)

open Expr

let arity = function
  | L_get _ | L_cte_consumer _ | L_const_table _ -> 0
  | L_select _ | L_project _ | L_gb_agg _ | L_limit _ | L_cte_producer _
  | L_window _ ->
      1
  | L_join _ | L_apply _ | L_cte_anchor _ -> 2
  | L_set (_, _) -> 2

(* Output columns, in order, given each child's output columns. *)
let output_cols (op : logical) (children : Colref.t list list) : Colref.t list =
  let child n =
    match List.nth_opt children n with
    | Some c -> c
    | None -> Gpos.Gpos_error.internal "logical op missing child %d" n
  in
  match op with
  | L_get td -> td.Table_desc.cols
  | L_select _ -> child 0
  | L_project projs -> List.map (fun p -> p.proj_out) projs
  | L_join ((Inner | Left_outer | Full_outer), _) -> child 0 @ child 1
  | L_join ((Semi | Anti_semi), _) -> child 0
  | L_gb_agg (_, keys, aggs) -> keys @ List.map (fun a -> a.agg_out) aggs
  | L_window (_, _, wfuncs) -> child 0 @ List.map (fun w -> w.wf_out) wfuncs
  | L_limit _ -> child 0
  | L_apply (Apply_scalar c, _) -> child 0 @ [ c ]
  | L_apply ((Apply_exists | Apply_not_exists), _) -> child 0
  | L_apply ((Apply_in _ | Apply_not_in _), _) -> child 0
  | L_cte_producer _ -> child 0
  | L_cte_anchor _ -> child 1
  | L_cte_consumer (_, cols) -> cols
  | L_set (_, cols) -> cols
  | L_const_table (cols, _) -> cols

(* Columns an operator's own payload references (used to validate trees and to
   drive column pruning). *)
let used_cols (op : logical) : Colref.Set.t =
  match op with
  | L_get _ | L_cte_producer _ | L_cte_anchor _ | L_cte_consumer _
  | L_const_table _ ->
      Colref.Set.empty
  | L_select pred -> Scalar_ops.free_cols pred
  | L_project projs ->
      Scalar_ops.free_cols_of_list (List.map (fun p -> p.proj_expr) projs)
  | L_join (_, cond) -> Scalar_ops.free_cols cond
  | L_gb_agg (_, keys, aggs) ->
      let arg_cols =
        Scalar_ops.free_cols_of_list
          (List.filter_map (fun a -> a.agg_arg) aggs)
      in
      Colref.Set.union (Colref.Set.of_list keys) arg_cols
  | L_window (partition, order, wfuncs) ->
      Colref.Set.union
        (Colref.Set.of_list (partition @ Sortspec.cols order))
        (Scalar_ops.free_cols_of_list (List.filter_map (fun w -> w.wf_arg) wfuncs))
  | L_limit (sort, _, _) -> Colref.Set.of_list (Sortspec.cols sort)
  | L_apply ((Apply_in (e, _) | Apply_not_in (e, _)), outer) ->
      Colref.Set.union (Scalar_ops.free_cols e) (Colref.Set.of_list outer)
  | L_apply (_, outer) -> Colref.Set.of_list outer
  | L_set _ -> Colref.Set.empty

(* Root shapes: one tag per logical constructor, payload ignored. Rules
   declare the shapes their root pattern can match; the engine pre-filters
   rule applications with a bitmap test instead of running the rule body. *)
type shape =
  | S_get
  | S_select
  | S_project
  | S_join
  | S_gb_agg
  | S_window
  | S_limit
  | S_apply
  | S_cte_producer
  | S_cte_anchor
  | S_cte_consumer
  | S_set
  | S_const_table

let nshapes = 13

let all_shapes =
  [
    S_get;
    S_select;
    S_project;
    S_join;
    S_gb_agg;
    S_window;
    S_limit;
    S_apply;
    S_cte_producer;
    S_cte_anchor;
    S_cte_consumer;
    S_set;
    S_const_table;
  ]

let shape_tag = function
  | S_get -> 0
  | S_select -> 1
  | S_project -> 2
  | S_join -> 3
  | S_gb_agg -> 4
  | S_window -> 5
  | S_limit -> 6
  | S_apply -> 7
  | S_cte_producer -> 8
  | S_cte_anchor -> 9
  | S_cte_consumer -> 10
  | S_set -> 11
  | S_const_table -> 12

let shape_of (op : logical) : shape =
  match op with
  | L_get _ -> S_get
  | L_select _ -> S_select
  | L_project _ -> S_project
  | L_join _ -> S_join
  | L_gb_agg _ -> S_gb_agg
  | L_window _ -> S_window
  | L_limit _ -> S_limit
  | L_apply _ -> S_apply
  | L_cte_producer _ -> S_cte_producer
  | L_cte_anchor _ -> S_cte_anchor
  | L_cte_consumer _ -> S_cte_consumer
  | L_set _ -> S_set
  | L_const_table _ -> S_const_table

let tag (op : logical) : int = shape_tag (shape_of op)

(* Bitmap over shape tags; [shape_mask []] is the empty mask, and a mask
   covering every shape is [lnot 0] land [all_shapes_mask]. *)
let shape_mask (shapes : shape list) : int =
  List.fold_left (fun m s -> m lor (1 lsl shape_tag s)) 0 shapes

let all_shapes_mask = (1 lsl nshapes) - 1

(* Shape-domain set operations. Masks form a finite lattice (the powerset of
   the 13 shapes); lib/interact's abstract fixpoints iterate on it, so the
   operations live here next to the representation. *)
let mask_union a b = a lor b
let mask_inter a b = a land b
let mask_diff a b = a land lnot b land all_shapes_mask
let mask_mem s m = m land (1 lsl shape_tag s) <> 0
let mask_subset a b = a land lnot b land all_shapes_mask = 0

let shape_to_string = function
  | S_get -> "Get"
  | S_select -> "Select"
  | S_project -> "Project"
  | S_join -> "Join"
  | S_gb_agg -> "GbAgg"
  | S_window -> "Window"
  | S_limit -> "Limit"
  | S_apply -> "Apply"
  | S_cte_producer -> "CTEProducer"
  | S_cte_anchor -> "CTEAnchor"
  | S_cte_consumer -> "CTEConsumer"
  | S_set -> "SetOp"
  | S_const_table -> "ConstTable"

let shapes_of_mask (m : int) : shape list =
  List.filter (fun s -> mask_mem s m) all_shapes

let mask_to_string (m : int) : string =
  if m = all_shapes_mask then "*"
  else if m = 0 then "-"
  else String.concat "," (List.map shape_to_string (shapes_of_mask m))

let agg_to_string (a : agg) =
  match a.agg_kind with
  | Count_star ->
      Printf.sprintf "count(*) AS %s" (Colref.to_string a.agg_out)
  | _ ->
      let arg =
        match a.agg_arg with
        | None -> "*"
        | Some e ->
            (if a.agg_distinct then "DISTINCT " else "") ^ Scalar_ops.to_string e
      in
      Printf.sprintf "%s(%s) AS %s" (agg_kind_to_string a.agg_kind) arg
        (Colref.to_string a.agg_out)

let wfunc_to_string (w : wfunc) =
  Printf.sprintf "%s(%s) AS %s"
    (wkind_to_string w.wf_kind)
    (match w.wf_arg with None -> "" | Some e -> Scalar_ops.to_string e)
    (Colref.to_string w.wf_out)

let window_to_string partition order wfuncs =
  Printf.sprintf "Window(partition=[%s], order=%s, [%s])"
    (String.concat ", " (List.map Colref.to_string partition))
    (Sortspec.to_string order)
    (String.concat ", " (List.map wfunc_to_string wfuncs))

let proj_to_string (p : proj) =
  Printf.sprintf "%s AS %s" (Scalar_ops.to_string p.proj_expr)
    (Colref.to_string p.proj_out)

let apply_kind_to_string = function
  | Apply_scalar c -> "Scalar->" ^ Colref.to_string c
  | Apply_exists -> "Exists"
  | Apply_not_exists -> "NotExists"
  | Apply_in (e, c) ->
      Scalar_ops.to_string e ^ " In->" ^ Colref.to_string c
  | Apply_not_in (e, c) ->
      Scalar_ops.to_string e ^ " NotIn->" ^ Colref.to_string c

let to_string (op : logical) =
  match op with
  | L_get td -> "Get(" ^ td.Table_desc.name ^ ")"
  | L_select pred -> "Select(" ^ Scalar_ops.to_string pred ^ ")"
  | L_project projs ->
      "Project(" ^ String.concat ", " (List.map proj_to_string projs) ^ ")"
  | L_join (k, cond) ->
      Printf.sprintf "%sJoin(%s)" (join_kind_to_string k)
        (Scalar_ops.to_string cond)
  | L_gb_agg (phase, keys, aggs) ->
      Printf.sprintf "%sGbAgg([%s], [%s])"
        (agg_phase_to_string phase)
        (String.concat ", " (List.map Colref.to_string keys))
        (String.concat ", " (List.map agg_to_string aggs))
  | L_window (partition, order, wfuncs) -> window_to_string partition order wfuncs
  | L_limit (sort, offset, count) ->
      Printf.sprintf "Limit(%s, offset=%d, count=%s)" (Sortspec.to_string sort)
        offset
        (match count with None -> "all" | Some c -> string_of_int c)
  | L_apply (k, outer) ->
      Printf.sprintf "Apply[%s](corr=%s)" (apply_kind_to_string k)
        (String.concat "," (List.map Colref.to_string outer))
  | L_cte_anchor id -> Printf.sprintf "CTEAnchor(%d)" id
  | L_cte_producer id -> Printf.sprintf "CTEProducer(%d)" id
  | L_cte_consumer (id, cols) ->
      Printf.sprintf "CTEConsumer(%d)[%s]" id
        (String.concat ", " (List.map Colref.to_string cols))
  | L_set (k, _) -> set_kind_to_string k
  | L_const_table (cols, rows) ->
      Printf.sprintf "ConstTable(%d cols, %d rows)" (List.length cols)
        (List.length rows)

(* Fingerprint of the operator payload (children handled by the Memo). *)
let fingerprint (op : logical) : int =
  let h xs = Hashtbl.hash xs in
  match op with
  | L_get td -> h (0, td.Table_desc.name, List.map Colref.id td.Table_desc.cols)
  | L_select pred -> h (1, Scalar_ops.fingerprint pred)
  | L_project projs ->
      h
        ( 2,
          List.map
            (fun p -> (Scalar_ops.fingerprint p.proj_expr, Colref.id p.proj_out))
            projs )
  | L_join (k, cond) -> h (3, k, Scalar_ops.fingerprint cond)
  | L_gb_agg (phase, keys, aggs) ->
      h (4, phase, List.map Colref.id keys, Hashtbl.hash aggs)
  | L_window (partition, order, wfuncs) ->
      h (12, List.map Colref.id partition, Hashtbl.hash order, Hashtbl.hash wfuncs)
  | L_limit (sort, offset, count) -> h (5, Hashtbl.hash sort, offset, count)
  | L_apply (k, outer) -> h (6, Hashtbl.hash k, List.map Colref.id outer)
  | L_cte_anchor id -> h (7, id)
  | L_cte_producer id -> h (11, id)
  | L_cte_consumer (id, cols) -> h (8, id, List.map Colref.id cols)
  | L_set (k, cols) -> h (9, k, List.map Colref.id cols)
  | L_const_table (cols, rows) -> h (10, List.map Colref.id cols, Hashtbl.hash rows)

let equal (a : logical) (b : logical) = Stdlib.compare a b = 0

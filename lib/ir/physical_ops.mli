(** Operations on physical operators: arity, output schema, derived physical
    properties, printing. *)

open Expr

val arity : physical -> int

val output_cols : physical -> Colref.t list list -> Colref.t list

val table_dist : Table_desc.t -> Props.dist
(** A base table's distribution as a delivered property. *)

val passes_projection : proj list -> Colref.t -> bool
(** Does the column survive the projection unchanged (pass-through with the
    same column reference)? *)

val dist_after_projection : proj list -> Props.dist -> Props.dist
val order_after_projection : proj list -> Sortspec.t -> Sortspec.t

val derive : physical -> Props.derived list -> Props.derived
(** Derived properties given children's derived properties (paper §4.1: each
    operator combines child properties with local behaviour — e.g. a hash
    join delivers the probe side's stream order; a broadcast-outer inner join
    delivers the inner side's distribution). *)

val motion_to_string : motion -> string
val to_string : physical -> string

val class_name : physical -> string
(** Stable kebab-case operator class ("hash-join", "motion-broadcast", …)
    used to aggregate cardinality accuracy per operator class (lib/prov). *)

val fingerprint : physical -> int
val equal : physical -> physical -> bool

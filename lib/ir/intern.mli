(** Generic hash-consing (interning): structurally-equal values map to one
    dense integer id, making downstream equality and hashing O(1). Ids are
    dense in first-interning order, so they double as array indexes. Not
    thread-safe; the Memo interns under its insertion lock. *)

type 'a t

val create : ?size:int -> hash:('a -> int) -> equal:('a -> 'a -> bool) -> unit -> 'a t

val intern : 'a t -> 'a -> int
(** The id of the value's equivalence class (fresh dense id on first sight). *)

val intern_rep : 'a t -> 'a -> 'a * int
(** [intern] plus the canonical representative, so callers can share memory. *)

val size : 'a t -> int
(** Number of distinct equivalence classes interned so far. *)

val hits : 'a t -> int
(** Interned values that resolved to an already-known id. *)

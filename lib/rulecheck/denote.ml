open Ir

(* Logical denotation of rule outputs: maps a physical alternative back to
   the logical tree it claims to implement, so the Exec.Naive oracle can
   compare result bags. Memo group leaves are resolved through a
   representative tree per group ([rep]); operators with no logical
   counterpart (motions, partition selectors) raise [Not_denotable]. *)

exception Not_denotable of string

let not_denotable fmt = Printf.ksprintf (fun s -> raise (Not_denotable s)) fmt

(* The rows a pruned scan reads: any kept partition's range contains the
   partitioning column. An empty kept list reads nothing. *)
let partition_predicate (td : Table_desc.t) (kept : int list) : Expr.scalar =
  let pc =
    match td.Table_desc.part_col with
    | Some pc -> pc
    | None -> not_denotable "partition list on unpartitioned %s" td.Table_desc.name
  in
  let ranges =
    List.filter
      (fun (p : Table_desc.part) -> List.mem p.Table_desc.part_id kept)
      td.Table_desc.parts
  in
  match ranges with
  | [] -> Expr.Const (Datum.Bool false)
  | _ ->
      Expr.Or
        (List.map
           (fun (p : Table_desc.part) ->
             Expr.And
               [
                 Expr.Cmp (Expr.Ge, Expr.Col pc, Expr.Const p.Table_desc.lo);
                 Expr.Cmp (Expr.Lt, Expr.Col pc, Expr.Const p.Table_desc.hi);
               ])
           ranges)

let denote_physical (p : Expr.physical) (children : Ltree.t list) : Ltree.t =
  let child n =
    match List.nth_opt children n with
    | Some c -> c
    | None -> not_denotable "missing child %d" n
  in
  let select_over conjs t =
    match conjs with
    | [] -> t
    | _ -> Ltree.make (Expr.L_select (Scalar_ops.conjoin conjs)) [ t ]
  in
  match p with
  | Expr.P_table_scan (td, parts, pred) ->
      let base = Ltree.leaf (Expr.L_get td) in
      let part_conj =
        match parts with
        | None -> []
        | Some kept -> [ partition_predicate td kept ]
      in
      select_over (part_conj @ Option.to_list pred) base
  | Expr.P_index_scan (td, idx, cmp, v, residual) ->
      let base = Ltree.leaf (Expr.L_get td) in
      select_over
        (Expr.Cmp (cmp, Expr.Col idx.Table_desc.idx_col, v)
         :: Option.to_list residual)
        base
  | Expr.P_filter pred -> Ltree.make (Expr.L_select pred) [ child 0 ]
  | Expr.P_project projs -> Ltree.make (Expr.L_project projs) [ child 0 ]
  | Expr.P_hash_join (kind, keys, residual) ->
      let conjs =
        List.map (fun (o, i) -> Expr.Cmp (Expr.Eq, o, i)) keys
        @ Option.to_list residual
      in
      Ltree.make (Expr.L_join (kind, Scalar_ops.conjoin conjs)) [ child 0; child 1 ]
  | Expr.P_merge_join (kind, keys, residual) ->
      let conjs =
        List.map (fun (o, i) -> Expr.Cmp (Expr.Eq, Expr.Col o, Expr.Col i)) keys
        @ Option.to_list residual
      in
      Ltree.make (Expr.L_join (kind, Scalar_ops.conjoin conjs)) [ child 0; child 1 ]
  | Expr.P_nl_join (kind, cond) ->
      Ltree.make (Expr.L_join (kind, cond)) [ child 0; child 1 ]
  | Expr.P_window (partition, order, wfuncs) ->
      Ltree.make (Expr.L_window (partition, order, wfuncs)) [ child 0 ]
  | Expr.P_hash_agg (phase, keys, aggs) | Expr.P_stream_agg (phase, keys, aggs)
    ->
      Ltree.make (Expr.L_gb_agg (phase, keys, aggs)) [ child 0 ]
  | Expr.P_sort _ -> child 0 (* bag semantics: order is a property, not content *)
  | Expr.P_limit (sort, offset, count) ->
      Ltree.make (Expr.L_limit (sort, offset, count)) [ child 0 ]
  | Expr.P_motion m -> not_denotable "motion %s" (Physical_ops.motion_to_string m)
  | Expr.P_cte_producer id -> Ltree.make (Expr.L_cte_producer id) [ child 0 ]
  | Expr.P_cte_consumer (id, cols) -> Ltree.leaf (Expr.L_cte_consumer (id, cols))
  | Expr.P_sequence id -> Ltree.make (Expr.L_cte_anchor id) [ child 0; child 1 ]
  | Expr.P_set (kind, cols) -> Ltree.make (Expr.L_set (kind, cols)) children
  | Expr.P_const_table (cols, rows) -> Ltree.leaf (Expr.L_const_table (cols, rows))
  | Expr.P_partition_selector _ -> not_denotable "partition selector"

(* Denote a rule result: group leaves resolve through [rep] (the first tree
   inserted into that group), inline nodes recurse. *)
let rec of_mexpr ~(rep : int -> Ltree.t) (m : Memolib.Mexpr.t) : Ltree.t =
  let children =
    List.map
      (function
        | Memolib.Mexpr.Group g -> rep g
        | Memolib.Mexpr.Node n -> of_mexpr ~rep n)
      m.Memolib.Mexpr.children
  in
  match m.Memolib.Mexpr.op with
  | Expr.Logical l -> Ltree.make l children
  | Expr.Physical p -> denote_physical p children

let child_output_cols ~(rep : int -> Ltree.t)
    ~(group_cols : int -> Colref.t list) (m : Memolib.Mexpr.t) :
    Colref.t list list =
  List.map
    (function
      | Memolib.Mexpr.Group g -> group_cols g
      | Memolib.Mexpr.Node n -> Ltree.output_cols (of_mexpr ~rep n))
    m.Memolib.Mexpr.children

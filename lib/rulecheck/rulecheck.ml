(* lib/rulecheck: the standalone rule-soundness analyzer.

   Audits every transformation rule without running the full optimizer: a
   small-model generator (Model) enumerates tiny catalogs, data and logical
   expressions; each rule is applied on a scratch Memo and its alternatives
   are checked (Passes) for semantic equivalence against the Exec.Naive
   oracle, shape-mask soundness, Memo purity, output-column preservation and
   property reachability; cost-model sweeps lint non-negativity and
   monotonicity. Diagnostics use lib/verify's lint format. *)

module Model = Model
module Denote = Denote
module Passes = Passes
module Broken = Broken
module Diagnostic = Verify.Diagnostic
module Rule = Xform.Rule

type report = {
  rules_checked : int;
  seeds : int;
  cases : int;      (* generator cases per seed *)
  applications : int;
  alternatives : int;
  diags : Diagnostic.t list;
}

let default_seeds = 3

(* Audit [rules] over [seeds] deterministic worlds. *)
let check_rules ?(seeds = default_seeds) (rules : Rule.t list) : report =
  let sink = Diagnostic.sink () in
  let st = Passes.stats () in
  let fired : (int, int ref) Hashtbl.t = Hashtbl.create 16 in
  let fired_of (r : Rule.t) =
    match Hashtbl.find_opt fired r.Rule.id with
    | Some m -> m
    | None ->
        let m = ref 0 in
        Hashtbl.add fired r.Rule.id m;
        m
  in
  let ncases = ref 0 in
  for seed = 1 to seeds do
    let world = Model.world ~seed in
    ncases := List.length world.Model.cases;
    List.iter
      (fun rule ->
        List.iter
          (fun case ->
            Passes.check_rule_on_case sink ~st ~world ~fired:(fired_of rule)
              rule case)
          world.Model.cases)
      rules
  done;
  List.iter
    (fun rule -> Passes.check_dead_shapes sink rule ~fired:!(fired_of rule))
    rules;
  {
    rules_checked = List.length rules;
    seeds;
    cases = !ncases;
    applications = st.Passes.applications;
    alternatives = st.Passes.alternatives;
    diags = Diagnostic.sort (Diagnostic.drain sink);
  }

let check_cost_model ?label (model : Cost.Cost_model.t) : Diagnostic.t list =
  Passes.cost_lints ?label model

(* The full audit: the default rule set (optionally one rule by name) plus
   the default cost model. *)
let run ?(seeds = default_seeds) ?rule () : report =
  let rules = Xform.Ruleset.rules Xform.Ruleset.default in
  let rules =
    match rule with
    | None -> rules
    | Some name -> List.filter (fun (r : Rule.t) -> r.Rule.name = name) rules
  in
  let report = check_rules ~seeds rules in
  let cost_diags =
    match rule with None -> check_cost_model Cost.Cost_model.default | Some _ -> []
  in
  { report with diags = Diagnostic.sort (report.diags @ cost_diags) }

let error_count (r : report) = Diagnostic.count Diagnostic.Error r.diags
let warning_count (r : report) = Diagnostic.count Diagnostic.Warning r.diags

(* --- JSON (the nightly CI artifact shape) --- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json (r : report) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\n  \"rules_checked\": %d,\n  \"seeds\": %d,\n  \"cases\": %d,\n  \
        \"applications\": %d,\n  \"alternatives\": %d,\n  \"errors\": %d,\n  \
        \"warnings\": %d,\n  \"diagnostics\": ["
       r.rules_checked r.seeds r.cases r.applications r.alternatives
       (error_count r) (warning_count r));
  List.iteri
    (fun i (d : Diagnostic.t) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n    {\"rule\": \"%s\", \"severity\": \"%s\", \"path\": \"%s\", \
            \"node\": \"%s\", \"message\": \"%s\"}"
           (json_escape d.Diagnostic.rule)
           (Diagnostic.severity_to_string d.Diagnostic.severity)
           (json_escape d.Diagnostic.path)
           (json_escape d.Diagnostic.node)
           (json_escape d.Diagnostic.message)))
    r.diags;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

open Ir
module Memo = Memolib.Memo
module Rule = Xform.Rule
module Diagnostic = Verify.Diagnostic

(* The analysis passes. Each rule is applied to every logical expression of
   every generator case on a scratch Memo, and each produced alternative is
   checked for: Memo purity (checksum around [apply]), shape-mask soundness
   (the engine-skip contract behind the prefilter bitmap), output-column
   preservation, bag equivalence against the Exec.Naive oracle, and
   reachability of required properties for physical alternatives. *)

type stats = { mutable applications : int; mutable alternatives : int }

let stats () = { applications = 0; alternatives = 0 }

(* Case aborted because the Memo is no longer trustworthy. *)
exception Abort_case

let emit sink ~id ~severity ~case ~node fmt =
  Printf.ksprintf
    (fun msg ->
      Diagnostic.emit sink
        (Diagnostic.make ~rule:id ~severity ~path:case ~node "%s" msg))
    fmt

(* --- bag equality --- *)

let row_key (row : Datum.t array) =
  String.concat "\x1f" (List.map Datum.serialize (Array.to_list row))

let bag_diff (a : string list) (b : string list) =
  let count tbl k =
    Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))
  in
  let ta = Hashtbl.create 64 in
  List.iter (count ta) a;
  List.iter
    (fun k ->
      match Hashtbl.find_opt ta k with
      | Some 1 -> Hashtbl.remove ta k
      | Some n -> Hashtbl.replace ta k (n - 1)
      | None -> count ta ("extra:" ^ k))
    b;
  Hashtbl.length ta

(* --- property reachability for physical alternatives --- *)

(* The weakest delivery consistent with a child request: what the child is
   guaranteed to provide if it merely satisfies the request. *)
let derived_of_req (r : Props.req) : Props.derived =
  let ddist =
    match r.Props.rdist with
    | Props.Any_dist | Props.Req_non_singleton -> Props.D_random
    | Props.Req_singleton -> Props.D_singleton
    | Props.Req_hashed cols -> Props.D_hashed cols
    | Props.Req_replicated -> Props.D_replicated
  in
  { Props.ddist; dorder = r.Props.rorder }

let canonical_reqs (out_cols : Colref.t list) : Props.req list =
  let base =
    [
      Props.any_req;
      Props.req_dist Props.Req_singleton;
      Props.req_dist Props.Req_non_singleton;
    ]
  in
  match out_cols with
  | [] -> base
  | c0 :: _ ->
      base
      @ [
          Props.req_dist (Props.Req_hashed [ c0 ]);
          { Props.rdist = Props.Any_dist; rorder = [ Sortspec.asc c0 ] };
        ]

(* An implementation alternative must be able to deliver every canonical
   request: some child-request vector, combined with the operator's derived
   properties and the enforcer framework, has to reach the requirement —
   otherwise the engine can never complete an optimization goal through this
   expression. *)
let check_promise sink ~case ~rule_name (pop : Expr.physical)
    ~(child_out_cols : Colref.t list list) ~(out_cols : Colref.t list) =
  List.iter
    (fun req ->
      match Search.Requests.alternatives pop ~req ~child_out_cols with
      | exception exn ->
          emit sink ~id:"rule/props-unreachable" ~severity:Diagnostic.Error
            ~case ~node:(Physical_ops.to_string pop)
            "%s: child-request derivation raised %s under %s" rule_name
            (Printexc.to_string exn) (Props.req_to_string req)
      | vectors ->
          let reachable =
            List.exists
              (fun vec ->
                match Physical_ops.derive pop (List.map derived_of_req vec) with
                | exception _ -> false
                | delivered ->
                    Props.enforcement_alternatives ~delivered ~required:req
                    <> [])
              vectors
          in
          if not reachable then
            emit sink ~id:"rule/props-unreachable" ~severity:Diagnostic.Error
              ~case ~node:(Physical_ops.to_string pop)
              "%s: no child-request vector (%d proposed) reaches %s" rule_name
              (List.length vectors) (Props.req_to_string req))
    (canonical_reqs out_cols)

(* --- per-alternative checks --- *)

let check_alternative sink ~st ~(world : Model.t) ~cte0 ~rep_of ~group_cols
    ~case ~rule_name (ge : Memo.gexpr) (op : Expr.logical)
    (result : Memolib.Mexpr.t) =
  let node = Logical_ops.to_string op in
  let case = Printf.sprintf "%s.gexpr%d" case ge.Memo.ge_id in
  match Denote.of_mexpr ~rep:rep_of result with
  | exception Denote.Not_denotable msg ->
      emit sink ~id:"rule/not-denotable" ~severity:Diagnostic.Warning ~case
        ~node "%s: alternative has no logical denotation (%s); oracle skipped"
        rule_name msg
  | exception exn ->
      emit sink ~id:"rule/malformed-alternative" ~severity:Diagnostic.Error
        ~case ~node "%s: alternative failed to build: %s" rule_name
        (Printexc.to_string exn)
  | alt -> (
      st.alternatives <- st.alternatives + 1;
      let orig = Ltree.make op (List.map rep_of ge.Memo.ge_children) in
      let orig_valid = try Ltree.validate orig; true with _ -> false in
      let alt_valid =
        match Ltree.validate alt with
        | () -> true
        | exception exn ->
            if orig_valid then
              emit sink ~id:"rule/malformed-alternative"
                ~severity:Diagnostic.Error ~case ~node
                "%s: alternative fails column-visibility validation: %s"
                rule_name (Printexc.to_string exn);
            false
      in
      ignore alt_valid;
      let ocols = Ltree.output_cols orig and acols = Ltree.output_cols alt in
      if not (Colref.Set.equal (Colref.Set.of_list ocols) (Colref.Set.of_list acols))
      then
        emit sink ~id:"rule/cols-not-preserved" ~severity:Diagnostic.Error
          ~case ~node "%s: output columns changed: [%s] -> [%s]" rule_name
          (String.concat "," (List.map Colref.to_string ocols))
          (String.concat "," (List.map Colref.to_string acols))
      else begin
        (* the differential oracle: same params, same pre-materialized CTEs *)
        let eval t =
          Exec.Naive.eval world.Model.cluster ~params:world.Model.params
            ~cte:(Hashtbl.copy cte0) t
        in
        (match eval orig with
        | exception _ -> () (* not evaluable standalone; no oracle *)
        | orows -> (
            match eval alt with
            | exception exn ->
                emit sink ~id:"rule/eval-failure" ~severity:Diagnostic.Error
                  ~case ~node
                  "%s: original evaluates but the alternative raises %s"
                  rule_name (Printexc.to_string exn)
            | arows ->
                (* project the alternative into the original column order *)
                let positions = List.map (Colref.position_exn acols) ocols in
                let arows =
                  List.map
                    (fun r ->
                      Array.of_list (List.map (fun p -> r.(p)) positions))
                    arows
                in
                let ka = List.sort compare (List.map row_key orows) in
                let kb = List.sort compare (List.map row_key arows) in
                if ka <> kb then
                  emit sink ~id:"rule/equiv-mismatch" ~severity:Diagnostic.Error
                    ~case ~node
                    "%s: alternative is not bag-equal to the original (%d vs \
                     %d rows, %d rows differ)"
                    rule_name (List.length orows) (List.length arows)
                    (bag_diff ka kb)));
        match result.Memolib.Mexpr.op with
        | Expr.Physical pop -> (
            match
              Denote.child_output_cols ~rep:rep_of ~group_cols result
            with
            | exception _ -> ()
            | child_out_cols ->
                check_promise sink ~case ~rule_name pop ~child_out_cols
                  ~out_cols:ocols)
        | Expr.Logical _ -> ()
      end)

(* --- one (rule, case) run --- *)

let check_rule_on_case sink ~st ~(world : Model.t) ~(fired : int ref)
    (rule : Rule.t) ((case_name, tree) : string * Ltree.t) =
  let memo = Memo.create () in
  let rep : (int, Ltree.t) Hashtbl.t = Hashtbl.create 32 in
  let rec ins (t : Ltree.t) : int =
    let cids = List.map ins t.Ltree.children in
    let ge = Memo.insert_gexpr memo (Expr.Logical t.Ltree.op) cids in
    let gid = Memo.find memo ge.Memo.ge_group in
    if not (Hashtbl.mem rep gid) then Hashtbl.add rep gid t;
    gid
  in
  let root = ins tree in
  Memo.set_root memo root;
  let rep_of gid =
    match Hashtbl.find_opt rep (Memo.find memo gid) with
    | Some t -> t
    | None -> (
        match Hashtbl.find_opt rep gid with
        | Some t -> t
        | None -> Denote.not_denotable "group %d has no representative" gid)
  in
  let group_cols gid = Memo.output_cols memo (Memo.find memo gid) in
  (* materialize CTEs once per case so producer-less subtrees (the consumer
     side of an anchor) evaluate standalone *)
  let cte0 : (int, Datum.t array list) Hashtbl.t = Hashtbl.create 4 in
  ignore
    (Exec.Naive.eval world.Model.cluster ~params:world.Model.params ~cte:cte0
       tree);
  let rctx = { Rule.factory = Colref.Factory.create ~start:1000 () } in
  try
    List.iter
      (fun gid ->
        let g = Memo.group memo gid in
        List.iter
          (fun ((ge : Memo.gexpr), op) ->
            let tag = Logical_ops.tag op in
            let before = Memo.checksum memo in
            let results = rule.Rule.apply rctx memo ge in
            st.applications <- st.applications + 1;
            if Memo.checksum memo <> before then begin
              emit sink ~id:"rule/memo-mutation" ~severity:Diagnostic.Error
                ~case:(Printf.sprintf "%s.gexpr%d" case_name ge.Memo.ge_id)
                ~node:(Logical_ops.to_string op)
                "%s: apply mutated the Memo (checksum changed); apply must \
                 only return alternatives"
                rule.Rule.name;
              raise Abort_case
            end;
            if results <> [] then
              if not (Rule.applicable_tag rule tag) then
                emit sink ~id:"rule/shape-escape" ~severity:Diagnostic.Error
                  ~case:(Printf.sprintf "%s.gexpr%d" case_name ge.Memo.ge_id)
                  ~node:(Logical_ops.to_string op)
                  "%s: produced %d alternative(s) on undeclared shape %s — \
                   the engine's prefilter would silently skip them"
                  rule.Rule.name (List.length results)
                  (Logical_ops.shape_to_string (Logical_ops.shape_of op))
              else begin
                fired := !fired lor (1 lsl tag);
                List.iter
                  (check_alternative sink ~st ~world ~cte0 ~rep_of ~group_cols
                     ~case:case_name ~rule_name:rule.Rule.name ge op)
                  results
              end)
          (Memo.logical_exprs g))
      (Memo.group_ids memo)
  with Abort_case -> ()

(* After every case and seed: declared shapes the rule never fired on.
   A full mask ([all_shapes_mask]) means "prefiltering disabled" and is not a
   declaration, so it is exempt. *)
let check_dead_shapes sink (rule : Rule.t) ~(fired : int) =
  if rule.Rule.mask <> Logical_ops.all_shapes_mask then
    List.iter
      (fun shape ->
        let bit = 1 lsl Logical_ops.shape_tag shape in
        if rule.Rule.mask land bit <> 0 && fired land bit = 0 then
          emit sink ~id:"rule/shape-dead" ~severity:Diagnostic.Warning
            ~case:"(all cases)" ~node:rule.Rule.name
            "%s declares shape %s but never fired on it across the generator \
             corpus — dead declaration or missing generator case"
            rule.Rule.name
            (Logical_ops.shape_to_string shape))
      Logical_ops.all_shapes

(* --- cost-model lints --- *)

let monotone_tolerance prev cur = cur >= (prev *. (1. -. 1e-9)) -. 1e-9

let cost_lints ?(label = "cost-model") (model : Cost.Cost_model.t) :
    Diagnostic.t list =
  let sink = Diagnostic.sink () in
  let a = Model.col_a in
  let width = 16.0 in
  let dist = Props.D_hashed [ a ] in
  let lt_pred = Expr.Cmp (Expr.Lt, Expr.Col a, Expr.Const (Datum.Int 5)) in
  let idx = { Table_desc.idx_name = "rc_it_k"; idx_col = Model.col_k } in
  let some_aggs =
    [
      {
        Expr.agg_kind = Expr.Sum;
        agg_arg = Some (Expr.Col Model.col_b);
        agg_distinct = false;
        agg_out = Model.col_s1;
      };
    ]
  in
  (* representative operator per cost-model branch; children scale with the
     sweep factor *)
  let ops : (string * Expr.physical * int) list =
    [
      ("table-scan", Expr.P_table_scan (Model.t1, None, Some lt_pred), 0);
      ( "index-scan",
        Expr.P_index_scan
          (Model.it, idx, Expr.Eq, Expr.Const (Datum.Int 5), None),
        0 );
      ("filter", Expr.P_filter lt_pred, 1);
      ( "project",
        Expr.P_project
          [
            {
              Expr.proj_expr = Expr.Arith (Expr.Add, Expr.Col a, Expr.Col a);
              proj_out = Model.col_pr1;
            };
          ],
        1 );
      ( "hash-join",
        Expr.P_hash_join
          (Expr.Inner, [ (Expr.Col a, Expr.Col Model.col_d) ], None),
        2 );
      ( "merge-join",
        Expr.P_merge_join (Expr.Inner, [ (a, Model.col_d) ], None),
        2 );
      ( "nl-join",
        Expr.P_nl_join (Expr.Inner, Expr.Cmp (Expr.Lt, Expr.Col a, Expr.Col Model.col_d)),
        2 );
      ("hash-agg", Expr.P_hash_agg (Expr.One_phase, [ a ], some_aggs), 1);
      ("stream-agg", Expr.P_stream_agg (Expr.One_phase, [ a ], some_aggs), 1);
      ( "window",
        Expr.P_window
          ( [ a ],
            [ Sortspec.asc a ],
            [ { Expr.wf_kind = Expr.W_row_number; wf_arg = None; wf_out = Model.col_w1 } ] ),
        1 );
      ("sort", Expr.P_sort [ Sortspec.asc a ], 1);
      ("limit", Expr.P_limit ([ Sortspec.asc a ], 0, Some 10), 1);
      ("cte-producer", Expr.P_cte_producer 7, 1);
      ("cte-consumer", Expr.P_cte_consumer (7, [ a ]), 0);
      ("set-union", Expr.P_set (Expr.Union_all, [ a ]), 2);
      ("set-distinct", Expr.P_set (Expr.Union_distinct, [ a ]), 2);
    ]
  in
  let factors = [ 0.; 1.; 10.; 1000.; 100000.; 1000000. ] in
  List.iter
    (fun (opname, op, nchildren) ->
      let cost r =
        let inputs =
          List.init nchildren (fun _ ->
              Cost.Cost_model.input ~rows:r ~width ~dist ())
        in
        Cost.Cost_model.op_cost model op ~rows_out:r ~width_out:width ~inputs
          ~scan_rows:(Float.max r 1.0) ~out_dist:dist
      in
      let prev = ref None in
      List.iter
        (fun r ->
          let c = cost r in
          if not (Float.is_finite c && c >= 0.0) then
            emit sink ~id:"cost/negative" ~severity:Diagnostic.Error
              ~case:label ~node:opname
              "op_cost(%s) = %g at %g rows: costs must be finite and \
               non-negative"
              opname c r;
          (match !prev with
          | Some (r0, c0) when not (monotone_tolerance c0 c) ->
              emit sink ~id:"cost/non-monotone" ~severity:Diagnostic.Error
                ~case:label ~node:opname
                "op_cost(%s) decreases with input size: %g rows -> %g, %g \
                 rows -> %g"
                opname r0 c0 r c
          | _ -> ());
          prev := Some (r, c))
        factors)
    ops;
  let enforcers =
    [
      ("sort", Props.E_sort [ Sortspec.asc a ]);
      ("gather", Props.E_motion Expr.Gather);
      ("gather-merge", Props.E_motion (Expr.Gather_merge [ Sortspec.asc a ]));
      ("redistribute", Props.E_motion (Expr.Redistribute [ Expr.Col a ]));
      ("broadcast", Props.E_motion Expr.Broadcast);
    ]
  in
  List.iter
    (fun (ename, enf) ->
      let prev = ref None in
      List.iter
        (fun rows ->
          let c =
            Cost.Cost_model.enforcer_cost model enf ~rows ~width
              ~dist:Props.D_random ~skew:1.0
          in
          if not (Float.is_finite c && c > 0.0) then
            emit sink ~id:"cost/enforcer-nonpositive" ~severity:Diagnostic.Error
              ~case:label ~node:ename
              "enforcer_cost(%s) = %g at %g rows: enforcers must cost more \
               than nothing or the search stacks them freely"
              ename c rows;
          (match !prev with
          | Some (r0, c0) when not (monotone_tolerance c0 c) ->
              emit sink ~id:"cost/non-monotone" ~severity:Diagnostic.Error
                ~case:label ~node:ename
                "enforcer_cost(%s) decreases with input size: %g rows -> %g, \
                 %g rows -> %g"
                ename r0 c0 rows c
          | _ -> ());
          prev := Some (rows, c))
        [ 1.; 10.; 1000.; 100000. ])
    enforcers;
  Diagnostic.drain sink

open Ir
module Memo = Memolib.Memo
module Mexpr = Memolib.Mexpr
module Rule = Xform.Rule

(* Deliberately broken rules: regression fixtures proving the analyzer
   catches each contract violation with a distinct diagnostic id. These are
   never registered in any production rule set. *)

(* Swaps the children of LEFT OUTER joins too — valid only for inner joins.
   Caught by rule/equiv-mismatch: the outer spine row's NULL padding lands on
   the wrong side. *)
let bad_join_commute =
  Rule.make ~name:"BadJoinCommutativity" ~kind:Rule.Exploration
    ~shapes:[ Logical_ops.S_join ]
    (fun _ctx _memo ge ->
      match Rule.logical_op ge with
      | Some (Expr.L_join (((Expr.Inner | Expr.Left_outer) as k), cond)) -> (
          match ge.Memo.ge_children with
          | [ g1; g2 ] ->
              [ Mexpr.logical_of_groups (Expr.L_join (k, cond)) [ g2; g1 ] ]
          | _ -> [])
      | _ -> [])

(* Declares Select and Limit but actually fires on inner joins: the engine's
   prefilter would silently drop every result. Caught by rule/shape-escape
   (and rule/shape-dead for the two declared-but-unused shapes). *)
let lying_shape_mask =
  Rule.make ~name:"LyingShapeMask" ~kind:Rule.Exploration
    ~shapes:[ Logical_ops.S_select; Logical_ops.S_limit ]
    (fun _ctx _memo ge ->
      match Rule.logical_op ge with
      | Some (Expr.L_join (Expr.Inner, cond)) -> (
          match ge.Memo.ge_children with
          | [ g1; g2 ] ->
              [
                Mexpr.logical_of_groups (Expr.L_join (Expr.Inner, cond))
                  [ g2; g1 ];
              ]
          | _ -> [])
      | _ -> [])

(* Inserts into the Memo from inside [apply] instead of returning the
   alternative. Caught by rule/memo-mutation (and, with
   [Orca_config.with_rule_checks], by the engine's central checksum). *)
let memo_mutator =
  Rule.make ~name:"MemoMutator" ~kind:Rule.Exploration
    ~shapes:[ Logical_ops.S_get ]
    (fun _ctx memo ge ->
      (match Rule.logical_op ge with
      | Some (Expr.L_get _) ->
          let gid = Memo.find memo ge.Memo.ge_group in
          ignore
            (Memo.insert_gexpr memo ~target:gid
               (Expr.Logical (Expr.L_select (Expr.Const (Datum.Bool true))))
               [ gid ])
      | _ -> ());
      [])

(* A negative per-pair NL-join charge: cheaper the bigger the inputs. Caught
   by cost/non-monotone (and cost/negative once the discount dominates). *)
let bad_cost_model =
  {
    Cost.Cost_model.default with
    Cost.Cost_model.nl_tuple_cost =
      -.Cost.Cost_model.default.Cost.Cost_model.nl_tuple_cost;
  }

let all_rules = [ bad_join_commute; lying_shape_mask; memo_mutator ]

open Ir

(* The small-model world the analyzer drives every rule over: a handful of
   tiny tables with fixed column ids, seed-driven data designed to expose
   asymmetries (outer-join spine rows, NULLs, partition boundary values,
   duplicate keys), and one generator case per interesting logical root
   shape. Everything is deterministic in the seed. *)

(* --- columns (fixed ids; the rule-application factory starts at 1000 so
   freshly minted columns can never collide) --- *)

let icol id name = Colref.make ~id ~name ~ty:Dtype.Int
let scol id name = Colref.make ~id ~name ~ty:Dtype.String

let col_a = icol 1 "a"
let col_b = icol 2 "b"
let col_c = scol 3 "c"
let col_d = icol 4 "d"
let col_e = icol 5 "e"
let col_f = icol 6 "f"
let col_g = icol 7 "g"
let col_p = icol 8 "p"
let col_q = icol 9 "q"
let col_k = icol 10 "k"
let col_v = icol 11 "v"

(* synthesized outputs used by the cases *)
let col_w1 = icol 20 "w1"
let col_u1 = icol 21 "u1"
let col_u2 = icol 22 "u2"
let col_x1 = icol 23 "x1"
let col_x2 = icol 24 "x2"
let col_pr1 = icol 25 "pr1"
let col_s1 = icol 30 "s1"
let col_cnt = icol 31 "cnt"
let col_m1 = icol 32 "m1"
let col_cd = icol 33 "cd"

(* --- table descriptors --- *)

let t1 =
  Table_desc.make
    ~dist:(Table_desc.Dist_hash [ col_a ])
    ~mdid:"0.9001.1.0" ~name:"rc_t1"
    [ col_a; col_b; col_c ]

let t2 =
  Table_desc.make
    ~dist:(Table_desc.Dist_hash [ col_d ])
    ~mdid:"0.9002.1.0" ~name:"rc_t2" [ col_d; col_e ]

let t3 =
  Table_desc.make ~dist:Table_desc.Dist_random ~mdid:"0.9003.1.0"
    ~name:"rc_t3" [ col_f; col_g ]

let pt =
  Table_desc.make
    ~dist:(Table_desc.Dist_hash [ col_p ])
    ~part_col:col_p
    ~parts:
      [
        { Table_desc.part_id = 0; lo = Datum.Int 0; hi = Datum.Int 10 };
        { Table_desc.part_id = 1; lo = Datum.Int 10; hi = Datum.Int 20 };
        { Table_desc.part_id = 2; lo = Datum.Int 20; hi = Datum.Int 30 };
      ]
    ~mdid:"0.9004.1.0" ~name:"rc_pt" [ col_p; col_q ]

let it =
  Table_desc.make ~dist:Table_desc.Dist_replicated
    ~indexes:[ { Table_desc.idx_name = "rc_it_k"; idx_col = col_k } ]
    ~mdid:"0.9005.1.0" ~name:"rc_it" [ col_k; col_v ]

let tables = [ t1; t2; t3; pt; it ]

(* --- scalar shorthands --- *)

let col c = Expr.Col c
let cint n = Expr.Const (Datum.Int n)
let eq a b = Expr.Cmp (Expr.Eq, a, b)
let lt a b = Expr.Cmp (Expr.Lt, a, b)
let le a b = Expr.Cmp (Expr.Le, a, b)
let gt a b = Expr.Cmp (Expr.Gt, a, b)
let ge a b = Expr.Cmp (Expr.Ge, a, b)

let agg ?(distinct = false) kind arg out =
  { Expr.agg_kind = kind; agg_arg = arg; agg_distinct = distinct; agg_out = out }

let passthrough c = { Expr.proj_expr = Expr.Col c; proj_out = c }

(* --- seed-driven data --- *)

let maybe_null rng frac v = if Gpos.Prng.float rng < frac then Datum.Null else v

let gen_rows rng n mk = List.init n (fun _ -> mk rng)

let t1_rows rng =
  gen_rows rng 12 (fun rng ->
      [|
        Datum.Int (Gpos.Prng.int rng 10);
        maybe_null rng 0.2 (Datum.Int (Gpos.Prng.int rng 5));
        Datum.String (Gpos.Prng.pick rng [| "red"; "green"; "blue" |]);
      |])
  (* the spine row: matches nothing in t2/t3, so outer-join asymmetries and
     broken commutations show up in the result bag *)
  @ [ [| Datum.Int 100; Datum.Null; Datum.String "spine" |] ]

let t2_rows rng =
  gen_rows rng 10 (fun rng ->
      [|
        maybe_null rng 0.1 (Datum.Int (Gpos.Prng.int rng 8));
        maybe_null rng 0.15 (Datum.Int (Gpos.Prng.int rng 100));
      |])
  @ [ [| Datum.Int 200; Datum.Int 7 |] ]

let t3_rows rng =
  gen_rows rng 8 (fun rng ->
      [|
        Datum.Int (Gpos.Prng.int rng 6);
        maybe_null rng 0.2 (Datum.Int (Gpos.Prng.int rng 21));
      |])

(* every declared partition boundary, plus random in-range filler *)
let pt_rows rng =
  List.map
    (fun p -> [| Datum.Int p; Datum.Int (Gpos.Prng.int rng 100) |])
    [ 0; 9; 10; 15; 19; 20; 29 ]
  @ gen_rows rng 5 (fun rng ->
        [| Datum.Int (Gpos.Prng.int rng 30); Datum.Int (Gpos.Prng.int rng 100) |])

let it_rows rng =
  [ [| Datum.Int 5; Datum.Int 55 |] ]
  @ gen_rows rng 9 (fun rng ->
        [| Datum.Int (Gpos.Prng.int rng 10); Datum.Int (Gpos.Prng.int rng 100) |])

(* --- the generator cases --- *)

let cte_id = 7

let cases rng : (string * Ltree.t) list =
  let get td = Ltree.leaf (Expr.L_get td) in
  let select p t = Ltree.make (Expr.L_select p) [ t ] in
  let join k cond l r = Ltree.make (Expr.L_join (k, cond)) [ l; r ] in
  let gb_agg ?(phase = Expr.One_phase) keys aggs t =
    Ltree.make (Expr.L_gb_agg (phase, keys, aggs)) [ t ]
  in
  (* per-seed constants: selection thresholds sweep value ranges, including
     every partition boundary of [pt] *)
  let c_a = Gpos.Prng.int_range rng 0 9 in
  let c_e = Gpos.Prng.int_range rng 0 99 in
  let c_q = Gpos.Prng.int_range rng 0 99 in
  let c_k = Gpos.Prng.int_range rng 0 9 in
  let c_v = Gpos.Prng.int_range rng 0 99 in
  let c_pt = Gpos.Prng.pick rng [| 0; 5; 9; 10; 15; 19; 20; 25; 30 |] in
  let c_pt2 = Gpos.Prng.pick rng [| 0; 5; 9; 10; 15; 19; 20; 25; 30 |] in
  let proj_t1 = Ltree.make (Expr.L_project [ passthrough col_a; passthrough col_b ]) [ get t1 ] in
  let proj_t3 = Ltree.make (Expr.L_project [ passthrough col_f; passthrough col_g ]) [ get t3 ] in
  let cases =
    [
      ("get-t1", get t1);
      ("select-pt-range", select (lt (col col_p) (cint c_pt)) (get pt));
      ( "select-pt-range-and-q",
        select
          (Expr.And [ ge (col col_p) (cint c_pt2); le (col col_q) (cint c_q) ])
          (get pt) );
      ( "select-it-eq",
        select
          (Expr.And [ eq (col col_k) (cint 5); gt (col col_v) (cint c_v) ])
          (get it) );
      ("select-it-range", select (le (col col_k) (cint c_k)) (get it));
      ("join-inner", join Expr.Inner (eq (col col_a) (col col_d)) (get t1) (get t2));
      ( "join-inner-resid",
        join Expr.Inner
          (Expr.And [ eq (col col_a) (col col_d); gt (col col_e) (cint c_e) ])
          (get t1) (get t2) );
      ("join-left", join Expr.Left_outer (eq (col col_a) (col col_d)) (get t1) (get t2));
      ("join-full", join Expr.Full_outer (eq (col col_a) (col col_d)) (get t1) (get t2));
      ("join-semi", join Expr.Semi (eq (col col_a) (col col_d)) (get t1) (get t2));
      ( "join3",
        join Expr.Inner
          (eq (col col_d) (col col_f))
          (join Expr.Inner (eq (col col_a) (col col_d)) (get t1) (get t2))
          (get t3) );
      ( "select-join",
        select
          (lt (col col_a) (cint c_a))
          (join Expr.Inner (eq (col col_a) (col col_d)) (get t1) (get t2)) );
      ( "select-left-join",
        select
          (Expr.And [ le (col col_a) (cint c_a); lt (col col_e) (cint c_e) ])
          (join Expr.Left_outer (eq (col col_a) (col col_d)) (get t1) (get t2))
      );
      ( "select-agg",
        select
          (lt (col col_a) (cint c_a))
          (gb_agg [ col_a ] [ agg Expr.Sum (Some (col col_b)) col_s1 ] (get t1))
      );
      ( "agg-keys",
        gb_agg [ col_a ]
          [ agg Expr.Sum (Some (col col_b)) col_s1; agg Expr.Count_star None col_cnt ]
          (get t1) );
      ( "agg-global",
        gb_agg [] [ agg Expr.Min (Some (col col_g)) col_m1 ] (get t3) );
      ( "agg-distinct",
        gb_agg [ col_f ]
          [ agg ~distinct:true Expr.Count (Some (col col_g)) col_cd ]
          (get t3) );
      ( "project",
        Ltree.make
          (Expr.L_project
             [
               { Expr.proj_expr = Expr.Arith (Expr.Add, col col_a, col col_b);
                 proj_out = col_pr1 };
               passthrough col_c;
             ])
          [ get t1 ] );
      ( "window",
        Ltree.make
          (Expr.L_window
             ( [ col_b ],
               [ Sortspec.asc col_a ],
               [ { Expr.wf_kind = Expr.W_row_number; wf_arg = None; wf_out = col_w1 } ] ))
          [ get t1 ] );
      ( "limit",
        Ltree.make (Expr.L_limit ([ Sortspec.asc col_a ], 1, Some 4)) [ get t1 ] );
      ( "set-union",
        Ltree.make (Expr.L_set (Expr.Union_all, [ col_u1; col_u2 ]))
          [ proj_t1; proj_t3 ] );
      ( "set-distinct",
        Ltree.make (Expr.L_set (Expr.Union_distinct, [ col_u1; col_u2 ]))
          [ proj_t1; proj_t3 ] );
      ( "set-except",
        Ltree.make (Expr.L_set (Expr.Except, [ col_u1; col_u2 ]))
          [ proj_t1; proj_t3 ] );
      ( "const",
        Ltree.leaf
          (Expr.L_const_table
             ( [ col_u1; col_u2 ],
               [
                 [ Datum.Int 1; Datum.Int 2 ];
                 [ Datum.Int 1; Datum.Int 2 ];
                 [ Datum.Null; Datum.Int 3 ];
               ] )) );
      ( "cte",
        Ltree.make (Expr.L_cte_anchor cte_id)
          [
            Ltree.make (Expr.L_cte_producer cte_id) [ proj_t1 ];
            select
              (ge (col col_x1) (cint c_a))
              (Ltree.leaf (Expr.L_cte_consumer (cte_id, [ col_x1; col_x2 ])));
          ] );
      ( "apply-exists",
        Ltree.make
          (Expr.L_apply (Expr.Apply_exists, [ col_a ]))
          [ get t1; select (eq (col col_d) (col col_a)) (get t2) ] );
    ]
  in
  List.iter (fun (_, t) -> Ltree.validate t) cases;
  cases

(* --- the world --- *)

type t = {
  cluster : Exec.Cluster.t;
  cases : (string * Ltree.t) list;
  params : Datum.t Colref.Map.t;
      (** default bindings for columns free in a subtree (Apply inners
          checked standalone) — both sides of every differential comparison
          evaluate under the same bindings *)
}

(* Bindings for every model column, so any subtree with correlated free
   columns still evaluates standalone. *)
let default_params =
  List.fold_left
    (fun m c ->
      let v =
        match Colref.ty c with
        | Dtype.String -> Datum.String "red"
        | _ -> Datum.Int (3 + (Colref.id c mod 5))
      in
      Colref.Map.add c v m)
    Colref.Map.empty
    [ col_a; col_b; col_c; col_d; col_e; col_f; col_g; col_p; col_q; col_k;
      col_v; col_x1; col_x2; col_u1; col_u2 ]

let world ~seed : t =
  let rng = Gpos.Prng.split (Gpos.Prng.create seed) "rulecheck" in
  let data_rng = Gpos.Prng.split rng "data" in
  let cluster = Exec.Cluster.create ~nsegs:3 () in
  let load td dist rows =
    Exec.Cluster.load_table cluster ~name:td.Table_desc.name ~dist rows
  in
  load t1 (Exec.Cluster.By_hash [ 0 ]) (t1_rows data_rng);
  load t2 (Exec.Cluster.By_hash [ 0 ]) (t2_rows data_rng);
  load t3 Exec.Cluster.By_random (t3_rows data_rng);
  load pt (Exec.Cluster.By_hash [ 0 ]) (pt_rows data_rng);
  load it Exec.Cluster.By_replication (it_rows data_rng);
  let case_rng = Gpos.Prng.split rng "cases" in
  { cluster; cases = cases case_rng; params = default_params }

(* Static analysis of the Memo after optimization (paper §4.1, Fig. 6): the
   winner linkage structure that plan extraction follows must be internally
   consistent — no dangling group references, every winner's child requests
   resolved to child winners, winner costs minimal among the recorded
   alternatives, and the best-plan linkage acyclic. Accumulates diagnostics
   lint-style. *)

open Ir
module Memo = Memolib.Memo

let rule_dangling = "memo/dangling-group"
let rule_ownership = "memo/gexpr-ownership"
let rule_missing_winner = "memo/missing-winner"
let rule_linkage_arity = "memo/linkage-arity"
let rule_non_minimal = "memo/non-minimal-winner"
let rule_unsatisfied = "memo/winner-violates-request"
let rule_cycle = "memo/cyclic-linkage"

let group_path gid = Printf.sprintf "group %d" gid

let ctx_path gid (req : Props.req) =
  Printf.sprintf "group %d %s" gid (Props.req_to_string req)

let op_name (op : Expr.op) =
  match op with
  | Expr.Logical l -> Logical_ops.to_string l
  | Expr.Physical p -> Physical_ops.to_string p

(* Winner costs are sums of floats accumulated in different orders by the
   search; allow for rounding noise when comparing them. *)
let cost_epsilon best = 1e-6 +. (1e-9 *. Float.abs best)

let check (memo : Memo.t) : Diagnostic.t list =
  let sink = Diagnostic.sink () in
  let emit ~rule ~severity ~path ~node fmt =
    Printf.ksprintf
      (fun message ->
        Diagnostic.emit sink
          (Diagnostic.make ~rule ~severity ~path ~node "%s" message))
      fmt
  in
  let ngroups = Memo.ngroups memo in
  let live = Memo.group_ids memo in
  (* --- structural integrity of groups and expressions --- *)
  List.iter
    (fun gid ->
      let g = Memo.group memo gid in
      List.iter
        (fun (ge : Memo.gexpr) ->
          let node = Memo.gexpr_to_string memo ge in
          List.iter
            (fun child ->
              if child < 0 || child >= ngroups then
                emit ~rule:rule_dangling ~severity:Diagnostic.Error
                  ~path:(group_path gid) ~node
                  "child group %d does not exist (memo has %d groups)" child
                  ngroups)
            ge.Memo.ge_children;
          let owner = Memo.find memo ge.Memo.ge_group in
          if owner <> gid then
            emit ~rule:rule_ownership ~severity:Diagnostic.Error
              ~path:(group_path gid) ~node
              "expression claims group %d but lives in group %d" owner gid)
        g.Memo.g_exprs)
    live;
  (* --- winner linkage: child requests resolve to child winners, winner
     cost is minimal, derived properties satisfy the request --- *)
  List.iter
    (fun gid ->
      List.iter
        (fun (cx : Memo.context) ->
          match cx.Memo.cx_best with
          | None -> ()
          | Some best ->
              let path = ctx_path gid cx.Memo.cx_req in
              let node = op_name best.Memo.a_gexpr.Memo.ge_op in
              let children = best.Memo.a_gexpr.Memo.ge_children in
              if List.length children <> List.length best.Memo.a_child_reqs
              then
                emit ~rule:rule_linkage_arity ~severity:Diagnostic.Error ~path
                  ~node "winner records %d child requests for %d children"
                  (List.length best.Memo.a_child_reqs)
                  (List.length children)
              else
                List.iter2
                  (fun child creq ->
                    if child >= 0 && child < ngroups then
                      let cgid = Memo.find memo child in
                      match Memo.find_context memo cgid creq with
                      | Some { Memo.cx_best = Some _; _ } -> ()
                      | Some { Memo.cx_best = None; _ } ->
                          emit ~rule:rule_missing_winner
                            ~severity:Diagnostic.Error ~path ~node
                            "child group %d has a context for %s but no \
                             winner — extraction would fail"
                            cgid
                            (Props.req_to_string creq)
                      | None ->
                          emit ~rule:rule_missing_winner
                            ~severity:Diagnostic.Error ~path ~node
                            "child group %d has no context for request %s — \
                             extraction would fail"
                            cgid
                            (Props.req_to_string creq))
                  children best.Memo.a_child_reqs;
              (* cost monotonicity: the winner is the cheapest recorded
                 alternative *)
              List.iter
                (fun (alt : Memo.alternative) ->
                  if
                    alt.Memo.a_cost
                    < best.Memo.a_cost -. cost_epsilon best.Memo.a_cost
                  then
                    emit ~rule:rule_non_minimal ~severity:Diagnostic.Error
                      ~path ~node
                      "winner costs %.4f but alternative %s costs %.4f"
                      best.Memo.a_cost
                      (op_name alt.Memo.a_gexpr.Memo.ge_op)
                      alt.Memo.a_cost)
                cx.Memo.cx_alts;
              if not (Props.satisfies best.Memo.a_derived cx.Memo.cx_req) then
                emit ~rule:rule_unsatisfied ~severity:Diagnostic.Error ~path
                  ~node "winner delivers %s, which does not satisfy %s"
                  (Props.derived_to_string best.Memo.a_derived)
                  (Props.req_to_string cx.Memo.cx_req))
        (Memo.contexts_of_group memo gid))
    live;
  (* --- the best-plan linkage is acyclic (plan extraction terminates) ---
     keyed by (canonical group id, request fingerprint) *)
  let state : (int * int, [ `On_stack | `Done ]) Hashtbl.t =
    Hashtbl.create 64
  in
  let rec visit gid (req : Props.req) (trail : string list) =
    let gid = Memo.find memo gid in
    let key = (gid, Props.req_fingerprint req) in
    match Hashtbl.find_opt state key with
    | Some `Done -> ()
    | Some `On_stack ->
        emit ~rule:rule_cycle ~severity:Diagnostic.Error
          ~path:(ctx_path gid req) ~node:"winner linkage"
          "best-plan linkage is cyclic: %s"
          (String.concat " -> " (List.rev (ctx_path gid req :: trail)))
    | None -> (
        Hashtbl.replace state key `On_stack;
        (match Memo.find_context memo gid req with
        | Some { Memo.cx_best = Some best; _ } ->
            let children = best.Memo.a_gexpr.Memo.ge_children in
            if List.length children = List.length best.Memo.a_child_reqs then
              List.iter2
                (fun child creq ->
                  if child >= 0 && child < ngroups then
                    visit child creq (ctx_path gid req :: trail))
                children best.Memo.a_child_reqs
        | _ -> ());
        Hashtbl.replace state key `Done)
  in
  List.iter
    (fun gid ->
      List.iter
        (fun (cx : Memo.context) ->
          if cx.Memo.cx_best <> None then visit gid cx.Memo.cx_req [])
        (Memo.contexts_of_group memo gid))
    live;
  Diagnostic.drain sink

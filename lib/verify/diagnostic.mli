(** Lint-style diagnostics shared by the static-analysis passes
    ({!Plan_check}, {!Memo_check}, {!Dxl_check}): rule id + severity + node
    path, accumulated rather than raised. *)

type severity = Error | Warning | Info

type t = {
  rule : string;     (** stable rule id, e.g. ["plan/missing-enforcer"] *)
  severity : severity;
  path : string;     (** offending node, e.g. ["root.0.1"] or ["group 12"] *)
  node : string;     (** operator / object rendering at the path *)
  message : string;
}

val severity_to_string : severity -> string

val make :
  rule:string ->
  severity:severity ->
  path:string ->
  node:string ->
  ('a, unit, string, t) format4 ->
  'a

val plan_path : int list -> string
(** Render a reversed child-index chain as a node path ("root.0.1"). *)

val to_string : t -> string

val errors : t list -> t list
val warnings : t list -> t list
val count : severity -> t list -> int

val sort : t list -> t list
(** Errors first, then warnings, then info; stable within a severity. *)

val report_to_string : t list -> string

(** Accumulator threaded through the passes. *)
type sink

val sink : unit -> sink
val emit : sink -> t -> unit

val drain : sink -> t list
(** Findings in severity-then-path order. *)

(** Facade over the three static-analysis passes: {!Plan_check} (semantic
    plan analysis), {!Memo_check} (winner-linkage consistency) and
    {!Dxl_check} (DXL round trip). *)

open Ir

val lint_plan : ?req:Props.req -> Expr.plan -> Diagnostic.t list
val lint_memo : Memolib.Memo.t -> Diagnostic.t list
val lint_roundtrip : Expr.plan -> Diagnostic.t list
val lint_prov : Memolib.Memo.t -> Diagnostic.t list

val lint_all :
  ?req:Props.req ->
  ?memo:Memolib.Memo.t ->
  ?prov:bool ->
  Expr.plan ->
  Diagnostic.t list
(** All passes over one optimization result, severity-sorted. [prov]
    (default false) additionally runs {!Prov_check} over the Memo — only
    sound when the optimization collected provenance
    ([Orca_config.prov]). *)

val error_count : Diagnostic.t list -> int

val clean : Diagnostic.t list -> bool
(** No error-severity findings. *)

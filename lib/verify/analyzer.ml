(* The analyzer facade: run the three static-analysis passes — plan semantics
   (Plan_check), Memo winner-linkage consistency (Memo_check) and the DXL
   round trip (Dxl_check) — over an optimization result and return the
   combined, severity-sorted findings. *)

open Ir

let lint_plan = Plan_check.check
let lint_memo = Memo_check.check
let lint_roundtrip = Dxl_check.check
let lint_prov = Prov_check.check

let lint_all ?req ?memo ?(prov = false) (plan : Expr.plan) :
    Diagnostic.t list =
  let plan_diags = Plan_check.check ?req plan in
  let memo_diags = match memo with None -> [] | Some m -> Memo_check.check m in
  (* the provenance invariants only hold when collection was on *)
  let prov_diags =
    match memo with
    | Some m when prov -> Prov_check.check m
    | _ -> []
  in
  let dxl_diags = Dxl_check.check plan in
  Diagnostic.sort (plan_diags @ memo_diags @ prov_diags @ dxl_diags)

let error_count ds = Diagnostic.count Diagnostic.Error ds

let clean ds = error_count ds = 0

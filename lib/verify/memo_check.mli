(** Memo analyzer (paper §4.1, Fig. 6): after optimization, checks that the
    winner linkage plan extraction follows is internally consistent — no
    dangling group references, every optimized context's winner has winners
    for all its child requests, winner cost is minimal among the recorded
    alternatives, delivered properties satisfy each request, and the
    best-plan linkage is acyclic. Lint-style; nothing raises.

    Rule ids: [memo/dangling-group], [memo/gexpr-ownership],
    [memo/missing-winner], [memo/linkage-arity], [memo/non-minimal-winner],
    [memo/winner-violates-request], [memo/cyclic-linkage]. *)

val check : Memolib.Memo.t -> Diagnostic.t list

(**/**)

val rule_dangling : string
val rule_ownership : string
val rule_missing_winner : string
val rule_linkage_arity : string
val rule_non_minimal : string
val rule_unsatisfied : string
val rule_cycle : string

(* DXL round-trip check: serialize the plan to a DXL plan message, re-parse
   it, and diff the result against the original tree. The serializer prints
   estimates with fixed precision, so cardinality and cost compare within the
   printed tolerance; everything else must match exactly. *)

open Ir

let rule_failed = "dxl/round-trip-failed"
let rule_diff = "dxl/round-trip-diff"
let rule_skipped = "dxl/subplan-not-serializable"

(* Printed as %.2f / %.4f by the serializer. *)
let rows_close a b = Float.abs (a -. b) <= 0.011 +. (1e-9 *. Float.abs a)
let cost_close a b = Float.abs (a -. b) <= 0.0011 +. (1e-9 *. Float.abs a)

let plan_has_subplan (p : Expr.plan) =
  Plan_ops.contains
    (fun n ->
      let scalars =
        match n.Expr.pop with
        | Expr.P_table_scan (_, _, Some f) -> [ f ]
        | Expr.P_index_scan (_, _, _, e, r) -> e :: Option.to_list r
        | Expr.P_filter pred -> [ pred ]
        | Expr.P_project projs ->
            List.map (fun pr -> pr.Expr.proj_expr) projs
        | Expr.P_hash_join (_, keys, r) ->
            List.concat_map (fun (a, b) -> [ a; b ]) keys @ Option.to_list r
        | Expr.P_merge_join (_, _, r) -> Option.to_list r
        | Expr.P_nl_join (_, cond) -> [ cond ]
        | Expr.P_window (_, _, wfuncs) ->
            List.filter_map (fun w -> w.Expr.wf_arg) wfuncs
        | Expr.P_hash_agg (_, _, aggs) | Expr.P_stream_agg (_, _, aggs) ->
            List.filter_map (fun a -> a.Expr.agg_arg) aggs
        | Expr.P_motion (Expr.Redistribute es) -> es
        | _ -> []
      in
      List.exists Scalar_ops.contains_subplan scalars)
    p

let rec diff sink ~ridx (a : Expr.plan) (b : Expr.plan) =
  let path = Diagnostic.plan_path ridx in
  let node = Physical_ops.to_string a.Expr.pop in
  let emit fmt =
    Printf.ksprintf
      (fun message ->
        Diagnostic.emit sink
          (Diagnostic.make ~rule:rule_diff ~severity:Diagnostic.Error ~path
             ~node "%s" message))
      fmt
  in
  if not (Physical_ops.equal a.Expr.pop b.Expr.pop) then
    emit "operator changed across the round trip: %s became %s"
      (Physical_ops.to_string a.Expr.pop)
      (Physical_ops.to_string b.Expr.pop)
  else begin
    if
      not
        (List.length a.Expr.pschema = List.length b.Expr.pschema
        && List.for_all2 Colref.equal a.Expr.pschema b.Expr.pschema)
    then
      emit "schema changed across the round trip: [%s] became [%s]"
        (String.concat "," (List.map Colref.to_string a.Expr.pschema))
        (String.concat "," (List.map Colref.to_string b.Expr.pschema));
    if not (rows_close a.Expr.pest_rows b.Expr.pest_rows) then
      emit "row estimate changed across the round trip: %g became %g"
        a.Expr.pest_rows b.Expr.pest_rows;
    if not (cost_close a.Expr.pcost b.Expr.pcost) then
      emit "cost changed across the round trip: %g became %g" a.Expr.pcost
        b.Expr.pcost;
    if List.length a.Expr.pchildren <> List.length b.Expr.pchildren then
      emit "child count changed across the round trip: %d became %d"
        (List.length a.Expr.pchildren)
        (List.length b.Expr.pchildren)
    else
      List.iteri
        (fun i (ca, cb) -> diff sink ~ridx:(i :: ridx) ca cb)
        (List.combine a.Expr.pchildren b.Expr.pchildren)
  end

let check (p : Expr.plan) : Diagnostic.t list =
  let sink = Diagnostic.sink () in
  if plan_has_subplan p then
    Diagnostic.emit sink
      (Diagnostic.make ~rule:rule_skipped ~severity:Diagnostic.Info
         ~path:"root" ~node:(Physical_ops.to_string p.Expr.pop)
         "plan carries SubPlan scalars, which cannot cross DXL; round-trip \
          check skipped")
  else begin
    match Dxl.Dxl_plan.of_string (Dxl.Dxl_plan.to_string p) with
    | reparsed -> diff sink ~ridx:[] p reparsed
    | exception exn ->
        Diagnostic.emit sink
          (Diagnostic.make ~rule:rule_failed ~severity:Diagnostic.Error
             ~path:"root" ~node:(Physical_ops.to_string p.Expr.pop)
             "serialize/parse failed: %s" (Gpos.Gpos_error.to_string exn))
  end;
  Diagnostic.drain sink

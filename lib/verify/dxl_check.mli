(** DXL round-trip analyzer: serializes a plan to its DXL message, re-parses
    it, and diffs the result against the original (operators, schemas, child
    topology exactly; estimates within the printed precision). Plans carrying
    SubPlan scalars cannot cross DXL and are reported as skipped (info).

    Rule ids: [dxl/round-trip-failed], [dxl/round-trip-diff],
    [dxl/subplan-not-serializable]. *)

open Ir

val check : Expr.plan -> Diagnostic.t list

(**/**)

val rule_failed : string
val rule_diff : string
val rule_skipped : string

(** Provenance lint: under provenance collection every physical group
    expression must carry an origin (copy-in inserts only logical
    expressions), origins must point at existing source expressions, and
    lineage chains must terminate at a copy-in rather than cycle.

    Rules: [prov/missing-origin], [prov/dangling-source],
    [prov/cyclic-lineage] — all error severity. Only meaningful when the
    Memo was built with [Orca_config.prov] on. *)

val rule_missing : string
val rule_dangling : string
val rule_cycle : string

val check : Memolib.Memo.t -> Diagnostic.t list

(* Provenance lint: every physical group expression in the Memo must carry an
   origin record, and the records must be well-formed.

   The invariant is sound because copy-in only inserts the original query
   tree, which is purely logical: every physical expression is necessarily a
   rule result, so under provenance collection it must have been stamped
   with an origin. Origins in turn must point at existing source expressions
   (o_source is a ge_id) and lineage chains must terminate at a copy-in
   expression rather than cycle.

   Run only when provenance collection was on (Orca_config.prov) — with it
   off no origins exist and the invariant is vacuously violated. *)

open Memolib

let rule_missing = "prov/missing-origin"
let rule_dangling = "prov/dangling-source"
let rule_cycle = "prov/cyclic-lineage"

let check (memo : Memo.t) : Diagnostic.t list =
  let sink = Diagnostic.sink () in
  let emit ~rule ~path ~node fmt =
    Printf.ksprintf
      (fun message ->
        Diagnostic.emit sink
          (Diagnostic.make ~rule ~severity:Diagnostic.Error ~path ~node "%s"
             message))
      fmt
  in
  let gexprs =
    List.concat_map
      (fun gid -> (Memo.group memo gid).Memo.g_exprs)
      (Memo.group_ids memo)
  in
  let by_id = Hashtbl.create 256 in
  List.iter (fun ge -> Hashtbl.replace by_id ge.Memo.ge_id ge) gexprs;
  List.iter
    (fun ge ->
      let path = Printf.sprintf "group %d" (Memo.find memo ge.Memo.ge_group) in
      let node = Memo.gexpr_to_string memo ge in
      (match (ge.Memo.ge_op, ge.Memo.ge_origin) with
      | Ir.Expr.Physical _, None ->
          emit ~rule:rule_missing ~path ~node
            "physical expression %d has no origin: only logical expressions \
             are copied in, so every physical expression must be a stamped \
             rule result"
            ge.Memo.ge_id
      | _ -> ());
      match ge.Memo.ge_origin with
      | None -> ()
      | Some o ->
          if not (Hashtbl.mem by_id o.Memo.o_source) then
            emit ~rule:rule_dangling ~path ~node
              "origin of expression %d (rule %s) points at nonexistent \
               source expression %d"
              ge.Memo.ge_id o.Memo.o_rule o.Memo.o_source
          else begin
            (* follow the chain; a repeat visit is a cycle *)
            let rec follow visited id =
              if List.mem id visited then
                emit ~rule:rule_cycle ~path ~node
                  "lineage of expression %d revisits expression %d instead \
                   of terminating at a copy-in"
                  ge.Memo.ge_id id
              else
                match Hashtbl.find_opt by_id id with
                | None -> () (* dangling source reported above *)
                | Some src -> (
                    match src.Memo.ge_origin with
                    | None -> ()
                    | Some o -> follow (id :: visited) o.Memo.o_source)
            in
            follow [ ge.Memo.ge_id ] o.Memo.o_source
          end)
    gexprs;
  Diagnostic.drain sink

(* Lint-style diagnostics for the static analyzers: every finding carries a
   stable rule id, a severity, and the path of the offending node, and the
   passes accumulate findings instead of raising on the first one. *)

type severity = Error | Warning | Info

type t = {
  rule : string;     (* stable rule id, e.g. "plan/missing-enforcer" *)
  severity : severity;
  path : string;     (* offending node, e.g. "root.0.1" or "group 12" *)
  node : string;     (* operator / object rendering at the path *)
  message : string;
}

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let make ~rule ~severity ~path ~node fmt =
  Printf.ksprintf
    (fun message -> { rule; severity; path; node; message })
    fmt

(* Plan node paths are child-index chains from the root. *)
let plan_path (rev_idx : int list) : string =
  String.concat "." ("root" :: List.rev_map string_of_int rev_idx)

let to_string d =
  Printf.sprintf "%s[%s] at %s (%s): %s"
    (severity_to_string d.severity)
    d.rule d.path d.node d.message

let errors ds = List.filter (fun d -> d.severity = Error) ds
let warnings ds = List.filter (fun d -> d.severity = Warning) ds

let count sev ds = List.length (List.filter (fun d -> d.severity = sev) ds)

let sort ds =
  List.stable_sort
    (fun a b ->
      match compare (severity_rank a.severity) (severity_rank b.severity) with
      | 0 -> compare (a.path, a.rule) (b.path, b.rule)
      | c -> c)
    ds

let report_to_string ds =
  match ds with
  | [] -> "clean: no diagnostics\n"
  | ds ->
      let buf = Buffer.create 256 in
      List.iter
        (fun d ->
          Buffer.add_string buf (to_string d);
          Buffer.add_char buf '\n')
        (sort ds);
      Buffer.add_string buf
        (Printf.sprintf "%d error(s), %d warning(s), %d info\n"
           (count Error ds) (count Warning ds) (count Info ds));
      Buffer.contents buf

(* Accumulator threaded through the analysis passes. *)
type sink = t list ref

let sink () : sink = ref []
let emit (s : sink) d = s := d :: !s
let drain (s : sink) = sort (List.rev !s)

(* Semantic static analysis of extracted physical plans (paper §4.1, Fig. 7):
   re-derive the properties every subtree delivers, bottom-up, and check at
   each node that the distribution and sort order its operator needs from its
   inputs actually hold — a missing Motion or Sort enforcer surfaces here as a
   diagnostic naming the offending node, and a Motion that moves already-
   aligned data surfaces as a redundancy warning. Scalar payloads are
   type-checked against [Dtype] and column references are resolved against
   the visible schemas. Everything is accumulated lint-style; nothing
   raises. *)

open Ir

let rule_missing = "plan/missing-enforcer"
let rule_redundant = "plan/redundant-motion"
let rule_motion_on_motion = "plan/motion-on-motion"
let rule_root = "plan/root-requirement"
let rule_arity = "plan/arity"
let rule_schema = "plan/schema-mismatch"
let rule_unbound = "plan/unbound-column"
let rule_type = "plan/type-mismatch"
let rule_estimate = "plan/suspicious-estimate"

let cols_subset xs ys =
  List.for_all (fun x -> List.exists (Colref.equal x) ys) xs

let cols_cover xs ys =
  (* same column set, directions/order ignored *)
  List.length xs = List.length ys && cols_subset xs ys && cols_subset ys xs

type ctx = { sink : Diagnostic.sink }

let emit ctx ~rule ~severity ~ridx ~(node : Expr.plan) fmt =
  Printf.ksprintf
    (fun message ->
      Diagnostic.emit ctx.sink
        (Diagnostic.make ~rule ~severity
           ~path:(Diagnostic.plan_path ridx)
           ~node:(Physical_ops.to_string node.Expr.pop)
           "%s" message))
    fmt

(* --- scalar type checking --- *)

let numeric = function Some (Dtype.Int | Dtype.Float) -> true | _ -> false

(* Types a comparison may relate: identical, or both numeric. [None] (an
   untyped Null literal, or a subexpression that already failed) compares
   with anything. *)
let comparable a b =
  match (a, b) with
  | None, _ | _, None -> true
  | Some x, Some y -> Dtype.equal x y || (numeric a && numeric b)

let rec typecheck ctx ~ridx ~node (s : Expr.scalar) : Dtype.t option =
  let err fmt = emit ctx ~rule:rule_type ~severity:Diagnostic.Error ~ridx ~node fmt in
  let recur e = typecheck ctx ~ridx ~node e in
  let expect_bool what e =
    match recur e with
    | Some t when not (Dtype.equal t Dtype.Bool) ->
        err "%s operand %s has type %s, expected Bool" what
          (Scalar_ops.to_string e) (Dtype.to_string t)
    | _ -> ()
  in
  match s with
  | Expr.Col c -> Some (Colref.ty c)
  | Expr.Const d -> Datum.type_of d
  | Expr.Cmp (op, a, b) ->
      let ta = recur a and tb = recur b in
      if not (comparable ta tb) then
        err "comparison %s relates %s and %s"
          (Scalar_ops.to_string (Expr.Cmp (op, a, b)))
          (Dtype.to_string (Option.get ta))
          (Dtype.to_string (Option.get tb));
      Some Dtype.Bool
  | Expr.And cs | Expr.Or cs ->
      List.iter (expect_bool "boolean connective") cs;
      Some Dtype.Bool
  | Expr.Not c ->
      expect_bool "NOT" c;
      Some Dtype.Bool
  | Expr.Arith (op, a, b) ->
      let ta = recur a and tb = recur b in
      List.iter
        (fun (t, e) ->
          match t with
          | Some ty when not (numeric t) ->
              err "arithmetic operand %s has non-numeric type %s"
                (Scalar_ops.to_string e) (Dtype.to_string ty)
          | _ -> ())
        [ (ta, a); (tb, b) ];
      if op = Expr.Div then Some Dtype.Float
      else if ta = Some Dtype.Float || tb = Some Dtype.Float then
        Some Dtype.Float
      else ta
  | Expr.Is_null c ->
      ignore (recur c);
      Some Dtype.Bool
  | Expr.Case (whens, els) ->
      List.iter (fun (c, _) -> expect_bool "CASE condition" c) whens;
      let branch_types =
        List.map (fun (_, v) -> recur v) whens @ Option.to_list (Option.map recur els)
      in
      let result =
        List.fold_left
          (fun acc t ->
            (match (acc, t) with
            | Some _, Some _ when not (comparable acc t) ->
                err "CASE branches mix %s and %s"
                  (Dtype.to_string (Option.get acc))
                  (Dtype.to_string (Option.get t))
            | _ -> ());
            if acc = None then t else acc)
          None branch_types
      in
      result
  | Expr.In_list (e, ds) ->
      let te = recur e in
      List.iter
        (fun d ->
          if not (comparable te (Datum.type_of d)) then
            err "IN list value %s does not match %s" (Datum.to_string d)
              (Scalar_ops.to_string e))
        ds;
      Some Dtype.Bool
  | Expr.Like (e, _) ->
      (match recur e with
      | Some t when not (Dtype.equal t Dtype.String) ->
          err "LIKE over non-string %s (%s)" (Scalar_ops.to_string e)
            (Dtype.to_string t)
      | _ -> ());
      Some Dtype.Bool
  | Expr.Coalesce cs ->
      let ts = List.map recur cs in
      let result =
        List.fold_left
          (fun acc t ->
            (match (acc, t) with
            | Some _, Some _ when not (comparable acc t) ->
                err "COALESCE mixes %s and %s"
                  (Dtype.to_string (Option.get acc))
                  (Dtype.to_string (Option.get t))
            | _ -> ());
            if acc = None then t else acc)
          None ts
      in
      result
  | Expr.Cast (e, ty) ->
      ignore (recur e);
      Some ty
  | Expr.Subplan sp -> (
      (match sp.Expr.sp_kind with
      | Expr.Sp_in e | Expr.Sp_not_in e -> (
          let te = recur e in
          match sp.Expr.sp_plan.Expr.pschema with
          | [ c ] ->
              if not (comparable te (Some (Colref.ty c))) then
                err "IN-subplan column %s does not match %s"
                  (Colref.to_string c) (Scalar_ops.to_string e)
          | _ -> ())
      | _ -> ());
      match sp.Expr.sp_kind with
      | Expr.Sp_scalar -> (
          match sp.Expr.sp_plan.Expr.pschema with
          | [ c ] -> Some (Colref.ty c)
          | _ -> None)
      | _ -> Some Dtype.Bool)

let check_agg_arg ctx ~ridx ~node (a : Expr.agg) =
  match (a.Expr.agg_kind, a.Expr.agg_arg) with
  | Expr.Count_star, _ | Expr.Count, _ -> ()
  | Expr.Sum, Some arg -> (
      match typecheck ctx ~ridx ~node arg with
      | Some t when not (Dtype.is_numeric t) ->
          emit ctx ~rule:rule_type ~severity:Diagnostic.Error ~ridx ~node
            "sum over non-numeric argument %s (%s)"
            (Scalar_ops.to_string arg) (Dtype.to_string t)
      | _ -> ())
  | _, Some arg -> ignore (typecheck ctx ~ridx ~node arg)
  | _, None -> ()

(* --- column visibility --- *)

let visible_cols ~params (node : Expr.plan) =
  let from_children =
    List.fold_left
      (fun acc (c : Expr.plan) ->
        Colref.Set.union acc (Colref.Set.of_list c.Expr.pschema))
      params node.Expr.pchildren
  in
  match node.Expr.pop with
  | Expr.P_table_scan (td, _, _) | Expr.P_index_scan (td, _, _, _, _) ->
      Colref.Set.union from_children (Colref.Set.of_list td.Table_desc.cols)
  | Expr.P_cte_consumer (_, cols)
  | Expr.P_const_table (cols, _)
  | Expr.P_set (_, cols) ->
      Colref.Set.union from_children (Colref.Set.of_list cols)
  | _ -> from_children

let check_bound ctx ~ridx ~node ~visible (s : Expr.scalar) =
  let free = Scalar_ops.free_cols s in
  if not (Colref.Set.subset free visible) then
    emit ctx ~rule:rule_unbound ~severity:Diagnostic.Error ~ridx ~node
      "unbound columns %s in %s"
      (Colref.Set.to_string (Colref.Set.diff free visible))
      (Scalar_ops.to_string s)

(* Scalar payloads of an operator, for binding and typing checks. *)
let payload_scalars (op : Expr.physical) : Expr.scalar list =
  match op with
  | Expr.P_table_scan (_, _, f) -> Option.to_list f
  | Expr.P_index_scan (_, _, _, e, residual) -> e :: Option.to_list residual
  | Expr.P_filter pred -> [ pred ]
  | Expr.P_project projs -> List.map (fun pr -> pr.Expr.proj_expr) projs
  | Expr.P_hash_join (_, keys, residual) ->
      List.concat_map (fun (a, b) -> [ a; b ]) keys @ Option.to_list residual
  | Expr.P_merge_join (_, _, residual) -> Option.to_list residual
  | Expr.P_nl_join (_, cond) -> [ cond ]
  | Expr.P_window (_, _, wfuncs) ->
      List.filter_map (fun w -> w.Expr.wf_arg) wfuncs
  | Expr.P_motion (Expr.Redistribute es) -> es
  | _ -> []

(* Predicates whose type must be boolean. *)
let boolean_payloads (op : Expr.physical) : Expr.scalar list =
  match op with
  | Expr.P_table_scan (_, _, Some f) -> [ f ]
  | Expr.P_index_scan (_, _, _, _, Some f) -> [ f ]
  | Expr.P_filter pred -> [ pred ]
  | Expr.P_hash_join (_, _, Some r) -> [ r ]
  | Expr.P_merge_join (_, _, Some r) -> [ r ]
  | Expr.P_nl_join (_, cond) -> [ cond ]
  | _ -> []

let collect_subplans (op : Expr.physical) : Expr.subplan list =
  let acc = ref [] in
  let rec go s =
    (match s with Expr.Subplan sp -> acc := sp :: !acc | _ -> ());
    Scalar_ops.iter_children go s
  in
  List.iter go (payload_scalars op);
  !acc

(* --- distribution pairing of binary joins (paper Fig. 7) --- *)

(* Column-level join keys: Col=Col pairs usable for co-location. *)
let col_key_pairs (keys : (Expr.scalar * Expr.scalar) list) :
    (Colref.t * Colref.t) list =
  List.filter_map
    (fun (a, b) ->
      match (a, b) with Expr.Col x, Expr.Col y -> Some (x, y) | _ -> None)
    keys

(* Are hashed sides co-located: both sides hashed on positionally-paired
   join-key columns (a subset of the key pairs, in the same order)? *)
let colocated ~(key_pairs : (Colref.t * Colref.t) list) (oh : Colref.t list)
    (ih : Colref.t list) =
  oh <> []
  && List.length oh = List.length ih
  && List.for_all2
       (fun o i ->
         List.exists
           (fun (ko, ki) -> Colref.equal ko o && Colref.equal ki i)
           key_pairs)
       oh ih

let join_inputs_ok (kind : Expr.join_kind)
    ~(key_pairs : (Colref.t * Colref.t) list) (o : Props.dist)
    (i : Props.dist) =
  let broadcast_inner_ok =
    match kind with
    | Expr.Inner | Expr.Left_outer | Expr.Semi | Expr.Anti_semi -> true
    | Expr.Full_outer -> false
  in
  match (o, i) with
  | _, Props.D_replicated when broadcast_inner_ok -> true
  | Props.D_replicated, _ when kind = Expr.Inner -> true
  | Props.D_singleton, Props.D_singleton -> true
  | Props.D_hashed oh, Props.D_hashed ih -> colocated ~key_pairs oh ih
  | _ -> false

(* --- per-operator input requirements --- *)

let dist_name (d : Props.dist) = Props.dist_to_string d

let check_join_dist ctx ~ridx ~node kind ~key_pairs (o : Props.derived)
    (i : Props.derived) =
  if not (join_inputs_ok kind ~key_pairs o.Props.ddist i.Props.ddist) then
    emit ctx ~rule:rule_missing ~severity:Diagnostic.Error ~ridx ~node
      "%s join inputs are not co-located: outer %s, inner %s — a Motion \
       enforcer is missing or misplaced"
      (Expr.join_kind_to_string kind)
      (dist_name o.Props.ddist) (dist_name i.Props.ddist)

(* Grouped execution needs rows of one group on one segment: singleton, or
   hashed on a (nonempty) subset of the grouping keys. Replicated input is
   correct but each segment redoes the whole aggregate — flag it. *)
let check_grouping_dist ctx ~ridx ~node ~what (keys : Colref.t list)
    (child : Props.derived) =
  match (keys, child.Props.ddist) with
  | _, Props.D_singleton -> ()
  | _, Props.D_replicated ->
      emit ctx ~rule:rule_missing ~severity:Diagnostic.Warning ~ridx ~node
        "%s over replicated input: every segment redoes the whole computation"
        what
  | [], d ->
      emit ctx ~rule:rule_missing ~severity:Diagnostic.Error ~ridx ~node
        "global %s over %s input needs a Gather enforcer below it" what
        (dist_name d)
  | keys, Props.D_hashed hs when hs <> [] && cols_subset hs keys -> ()
  | keys, d ->
      emit ctx ~rule:rule_missing ~severity:Diagnostic.Error ~ridx ~node
        "%s on keys [%s] over %s input: groups span segments — a Redistribute \
         enforcer is missing"
        what
        (String.concat "," (List.map Colref.to_string keys))
        (dist_name d)

(* Delivered order must start with the grouping keys (any directions), with
   [tail_req] satisfied by what follows. *)
let check_key_prefix_order ctx ~ridx ~node ~what (keys : Colref.t list)
    ?(tail_req = Sortspec.empty) (child : Props.derived) =
  let n = List.length keys in
  let order = child.Props.dorder in
  if List.length order < n then
    emit ctx ~rule:rule_missing ~severity:Diagnostic.Error ~ridx ~node
      "%s needs input sorted on [%s] but it delivers %s — a Sort enforcer is \
       missing"
      what
      (String.concat "," (List.map Colref.to_string keys))
      (if Sortspec.is_empty order then "no order" else Sortspec.to_string order)
  else
    let prefix = List.filteri (fun idx _ -> idx < n) order in
    let rest = List.filteri (fun idx _ -> idx >= n) order in
    if not (cols_cover (Sortspec.cols prefix) keys) then
      emit ctx ~rule:rule_missing ~severity:Diagnostic.Error ~ridx ~node
        "%s needs input grouped on [%s] but the delivered order is %s" what
        (String.concat "," (List.map Colref.to_string keys))
        (Sortspec.to_string order)
    else if
      not
        (Sortspec.satisfies ~delivered:rest ~required:tail_req
        || Sortspec.satisfies ~delivered:order ~required:tail_req)
    then
      emit ctx ~rule:rule_missing ~severity:Diagnostic.Error ~ridx ~node
        "%s needs order %s after the keys but the input delivers %s" what
        (Sortspec.to_string tail_req)
        (Sortspec.to_string order)

let check_motion ctx ~ridx ~node (m : Expr.motion) (child : Expr.plan)
    (cd : Props.derived) =
  (match child.Expr.pop with
  | Expr.P_motion _ ->
      emit ctx ~rule:rule_motion_on_motion ~severity:Diagnostic.Warning ~ridx
        ~node
        "motion stacked directly on another motion: the lower one's work is \
         thrown away"
  | _ -> ());
  match m with
  | Expr.Gather ->
      if cd.Props.ddist = Props.D_singleton then
        emit ctx ~rule:rule_redundant ~severity:Diagnostic.Warning ~ridx ~node
          "Gather of an already-singleton input"
  | Expr.Gather_merge s ->
      if cd.Props.ddist = Props.D_singleton then
        emit ctx ~rule:rule_redundant ~severity:Diagnostic.Warning ~ridx ~node
          "GatherMerge of an already-singleton input";
      if not (Sortspec.satisfies ~delivered:cd.Props.dorder ~required:s) then
        emit ctx ~rule:rule_missing ~severity:Diagnostic.Error ~ridx ~node
          "GatherMerge%s over streams that are not sorted that way (input \
           delivers %s) — the merge cannot preserve order"
          (Sortspec.to_string s)
          (if Sortspec.is_empty cd.Props.dorder then "no order"
           else Sortspec.to_string cd.Props.dorder)
  | Expr.Broadcast ->
      if cd.Props.ddist = Props.D_replicated then
        emit ctx ~rule:rule_redundant ~severity:Diagnostic.Warning ~ridx ~node
          "Broadcast of an already-replicated input"
  | Expr.Redistribute [] ->
      (match cd.Props.ddist with
      | Props.D_singleton -> ()
      | d ->
          emit ctx ~rule:rule_redundant ~severity:Diagnostic.Warning ~ridx
            ~node "round-robin Redistribute of already-parallel (%s) input"
            (dist_name d))
  | Expr.Redistribute es -> (
      let cols =
        List.filter_map (function Expr.Col c -> Some c | _ -> None) es
      in
      match cd.Props.ddist with
      | Props.D_hashed hs
        when List.length cols = List.length es
             && List.length hs = List.length cols
             && List.for_all2 Colref.equal hs cols ->
          emit ctx ~rule:rule_redundant ~severity:Diagnostic.Warning ~ridx
            ~node "Redistribute on already-aligned hashed input (%s)"
            (dist_name cd.Props.ddist)
      | _ -> ())

let check_setop ctx ~ridx ~node (kind : Expr.set_kind)
    (children : Expr.plan list) (cds : Props.derived list) =
  match kind with
  | Expr.Union_all -> ()
  | Expr.Union_distinct | Expr.Intersect | Expr.Except ->
      let dists = List.map (fun (d : Props.derived) -> d.Props.ddist) cds in
      let all_singleton =
        List.for_all (fun d -> d = Props.D_singleton) dists
      in
      let all_replicated =
        List.for_all (fun d -> d = Props.D_replicated) dists
      in
      (* hashed children must hash positionally-matching columns *)
      let hashed_positions =
        List.map2
          (fun (c : Expr.plan) d ->
            match d with
            | Props.D_hashed hs ->
                let positions =
                  List.map (Colref.position_in c.Expr.pschema) hs
                in
                if List.for_all Option.is_some positions then
                  Some (List.map Option.get positions)
                else None
            | _ -> None)
          children dists
      in
      let all_aligned =
        match hashed_positions with
        | Some first :: rest ->
            List.for_all (function Some p -> p = first | None -> false) rest
        | _ -> false
      in
      if not (all_singleton || all_replicated || all_aligned) then
        emit ctx ~rule:rule_missing ~severity:Diagnostic.Error ~ridx ~node
          "distinct %s over misaligned inputs (%s): duplicates can span \
           segments — Motion enforcers are missing"
          (Expr.set_kind_to_string kind)
          (String.concat ", " (List.map dist_name dists))

(* --- the walk --- *)

let fallback_derived = { Props.ddist = Props.D_random; dorder = Sortspec.empty }

let rec check_node ctx ~params ~ridx (p : Expr.plan) : Props.derived =
  let node = p in
  (* children first: bottom-up property derivation *)
  let child_derived =
    List.mapi
      (fun i c -> check_node ctx ~params ~ridx:(i :: ridx) c)
      p.Expr.pchildren
  in
  let arity_ok = List.length p.Expr.pchildren = Physical_ops.arity p.Expr.pop in
  if not arity_ok then
    emit ctx ~rule:rule_arity ~severity:Diagnostic.Error ~ridx ~node
      "%d children, operator wants %d"
      (List.length p.Expr.pchildren)
      (Physical_ops.arity p.Expr.pop);
  (* schema consistency (structural, but cheap and load-bearing for the
     column checks below) *)
  if arity_ok then begin
    let derived_schema =
      try
        Some
          (Physical_ops.output_cols p.Expr.pop
             (List.map (fun (c : Expr.plan) -> c.Expr.pschema) p.Expr.pchildren))
      with _ -> None
    in
    match derived_schema with
    | Some cols
      when not
             (List.length cols = List.length p.Expr.pschema
             && List.for_all2 Colref.equal cols p.Expr.pschema) ->
        emit ctx ~rule:rule_schema ~severity:Diagnostic.Error ~ridx ~node
          "stored schema [%s] differs from the derived one [%s]"
          (String.concat "," (List.map Colref.to_string p.Expr.pschema))
          (String.concat "," (List.map Colref.to_string cols))
    | _ -> ()
  end;
  (* cardinality / cost sanity *)
  if
    Float.is_nan p.Expr.pest_rows
    || p.Expr.pest_rows < 0.0
    || Float.is_nan p.Expr.pcost
    || p.Expr.pcost < 0.0
  then
    emit ctx ~rule:rule_estimate ~severity:Diagnostic.Warning ~ridx ~node
      "suspicious estimates: rows=%g cost=%g" p.Expr.pest_rows p.Expr.pcost;
  (* scalar payloads: column binding and types *)
  let visible = visible_cols ~params p in
  List.iter (check_bound ctx ~ridx ~node ~visible) (payload_scalars p.Expr.pop);
  List.iter
    (fun s -> ignore (typecheck ctx ~ridx ~node s))
    (payload_scalars p.Expr.pop);
  List.iter
    (fun s ->
      match typecheck ctx ~ridx ~node s with
      | Some t when not (Dtype.equal t Dtype.Bool) ->
          emit ctx ~rule:rule_type ~severity:Diagnostic.Error ~ridx ~node
            "predicate %s has type %s, expected Bool" (Scalar_ops.to_string s)
            (Dtype.to_string t)
      | _ -> ())
    (boolean_payloads p.Expr.pop);
  (match p.Expr.pop with
  | Expr.P_hash_agg (_, _, aggs) | Expr.P_stream_agg (_, _, aggs) ->
      List.iter (check_agg_arg ctx ~ridx ~node) aggs
  | _ -> ());
  (* subplans are whole plans hiding inside scalars: analyze them too, with
     their correlation parameters visible *)
  List.iter
    (fun (sp : Expr.subplan) ->
      let param_cols = Colref.Set.of_list (List.map snd sp.Expr.sp_params) in
      ignore
        (check_node ctx
           ~params:(Colref.Set.union params param_cols)
           ~ridx:(0 :: ridx) sp.Expr.sp_plan))
    (collect_subplans p.Expr.pop);
  (* the semantic core: does each input deliver what the operator needs? *)
  let child n = List.nth_opt child_derived n in
  if arity_ok then begin
    match (p.Expr.pop, child_derived) with
    | Expr.P_hash_join (kind, keys, _), [ o; i ] ->
        check_join_dist ctx ~ridx ~node kind
          ~key_pairs:(col_key_pairs keys) o i
    | Expr.P_merge_join (kind, keys, _), [ o; i ] ->
        check_join_dist ctx ~ridx ~node kind ~key_pairs:keys o i;
        let outer_req = List.map (fun (a, _) -> Sortspec.asc a) keys in
        let inner_req = List.map (fun (_, b) -> Sortspec.asc b) keys in
        List.iter
          (fun (side, d, req) ->
            if not (Sortspec.satisfies ~delivered:d.Props.dorder ~required:req)
            then
              emit ctx ~rule:rule_missing ~severity:Diagnostic.Error ~ridx
                ~node
                "merge join %s input must be sorted %s but delivers %s — a \
                 Sort enforcer is missing"
                side
                (Sortspec.to_string req)
                (if Sortspec.is_empty d.Props.dorder then "no order"
                 else Sortspec.to_string d.Props.dorder))
          [ ("outer", o, outer_req); ("inner", i, inner_req) ]
    | Expr.P_nl_join (kind, _), [ o; i ] ->
        check_join_dist ctx ~ridx ~node kind ~key_pairs:[] o i
    | Expr.P_hash_agg (phase, keys, _), [ c ] ->
        if phase <> Expr.Partial then
          check_grouping_dist ctx ~ridx ~node ~what:"hash aggregate" keys c
    | Expr.P_stream_agg (phase, keys, _), [ c ] ->
        if phase <> Expr.Partial then
          check_grouping_dist ctx ~ridx ~node ~what:"stream aggregate" keys c;
        if keys <> [] then
          check_key_prefix_order ctx ~ridx ~node ~what:"stream aggregate" keys c
    | Expr.P_window (partition, worder, _), [ c ] ->
        check_grouping_dist ctx ~ridx ~node ~what:"window" partition c;
        check_key_prefix_order ctx ~ridx ~node ~what:"window" partition
          ~tail_req:worder c
    | Expr.P_limit (sort, _, _), [ c ] ->
        (match c.Props.ddist with
        | Props.D_singleton -> ()
        | Props.D_replicated ->
            emit ctx ~rule:rule_missing ~severity:Diagnostic.Warning ~ridx
              ~node "limit over replicated input: correct but repeated per \
                     segment"
        | d ->
            emit ctx ~rule:rule_missing ~severity:Diagnostic.Error ~ridx ~node
              "global limit over %s input truncates per segment — a Gather \
               enforcer is missing"
              (dist_name d));
        if
          (not (Sortspec.is_empty sort))
          && not (Sortspec.satisfies ~delivered:c.Props.dorder ~required:sort)
        then
          emit ctx ~rule:rule_missing ~severity:Diagnostic.Error ~ridx ~node
            "limit requires order %s but its input delivers %s — a Sort \
             enforcer is missing"
            (Sortspec.to_string sort)
            (if Sortspec.is_empty c.Props.dorder then "no order"
             else Sortspec.to_string c.Props.dorder)
    | Expr.P_motion m, [ _ ] -> (
        match (child 0, p.Expr.pchildren) with
        | Some cd, [ c ] -> check_motion ctx ~ridx ~node m c cd
        | _ -> ())
    | Expr.P_set (kind, _), cds when List.length cds >= 2 ->
        check_setop ctx ~ridx ~node kind p.Expr.pchildren cds
    | _ -> ()
  end;
  if arity_ok then
    try Physical_ops.derive p.Expr.pop child_derived
    with _ -> fallback_derived
  else fallback_derived

(* Analyze a plan; [req] is the root requirement the plan must deliver (the
   query's requested distribution and order). *)
let check ?(req = Props.any_req) (p : Expr.plan) : Diagnostic.t list =
  let ctx = { sink = Diagnostic.sink () } in
  let derived = check_node ctx ~params:Colref.Set.empty ~ridx:[] p in
  if not (Props.satisfies derived req) then
    emit ctx ~rule:rule_root ~severity:Diagnostic.Error ~ridx:[] ~node:p
      "the root delivers %s but the query requires %s%s"
      (Props.derived_to_string derived)
      (Props.req_to_string req)
      (match (req.Props.rdist, derived.Props.ddist) with
      | Props.Req_singleton, d when d <> Props.D_singleton ->
          " — the result is not gathered to the master"
      | _ -> "");
  Diagnostic.drain ctx.sink

(* Derived properties of a plan tree, for callers that want the root's
   delivered properties without diagnostics (EXPLAIN-style displays). *)
let derive_plan (p : Expr.plan) : Props.derived =
  let ctx = { sink = Diagnostic.sink () } in
  check_node ctx ~params:Colref.Set.empty ~ridx:[] p

(** Semantic plan analyzer (paper §4.1, Fig. 7): re-derives the properties
    every subtree delivers bottom-up and checks, at each node, that required
    distribution/order are satisfied, that Motions are neither missing nor
    redundant, that a singleton-requiring root is actually gathered, and that
    scalar payloads type-check with all columns resolved. Lint-style: every
    violation becomes a {!Diagnostic.t}; nothing raises.

    Rule ids: [plan/missing-enforcer], [plan/redundant-motion],
    [plan/motion-on-motion], [plan/root-requirement], [plan/arity],
    [plan/schema-mismatch], [plan/unbound-column], [plan/type-mismatch],
    [plan/suspicious-estimate]. *)

open Ir

val check : ?req:Props.req -> Expr.plan -> Diagnostic.t list
(** Analyze an extracted physical plan. [req] is the root requirement the
    plan must deliver (the query's requested distribution and order;
    defaults to no requirement). *)

val derive_plan : Expr.plan -> Props.derived
(** The properties the whole plan delivers (diagnostics discarded). *)

(**/**)

val rule_missing : string
val rule_redundant : string
val rule_motion_on_motion : string
val rule_root : string
val rule_arity : string
val rule_schema : string
val rule_unbound : string
val rule_type : string
val rule_estimate : string

(** The optimization engine (paper §4.1 workflow, §4.2 parallel search).

    Drives the four optimization steps — exploration, statistics derivation,
    implementation, optimization — as graphs of small re-entrant jobs on the
    GPOS scheduler. The paper's seven job kinds map to Exp(g)/Exp(gexpr),
    Imp(g)/Imp(gexpr), Opt(g,req)/Opt(gexpr,req) and Xform(gexpr,rule), with
    per-goal queues deduplicating concurrent work on the same (group,
    purpose) or (group, request). *)

open Ir

type counters = {
  xform_applied : int;
  xform_results : int;
  alternatives_costed : int;
  contexts_created : int;
  prefilter_skips : int;  (** rule applications pruned by the shape bitmap *)
  winner_skips : int;     (** child Opt spawns pruned: context complete *)
  base_reuses : int;      (** base costs served from the reuse cache *)
  stats_hits : int;       (** rows/width/skew served from the stats memo *)
}

type t

exception
  Rule_contract_violation of { rule : string; rule_id : int; gexpr : int }
(** Raised (only with [rule_checks]) when a rule's [apply] mutated the Memo,
    violating the contract documented in lib/xform/rule.mli. *)

val create :
  ?workers:int ->
  ?fuzz_seed:int ->
  ?obs:bool ->
  ?rule_checks:bool ->
  ?prefilter:bool ->
  ?stats_memo:bool ->
  ?winner_reuse:bool ->
  ?stage_name:string ->
  ?prov:bool ->
  ?strata:(string * int) list ->
  ruleset:Xform.Ruleset.t ->
  model:Cost.Cost_model.t ->
  factory:Colref.Factory.t ->
  base:(Table_desc.t -> Stats.Relstats.t) ->
  Memolib.Memo.t ->
  t
(** [workers = 1] (default) is deterministic; more workers run optimization
    jobs on that many domains. [base] supplies base-table statistics.
    [fuzz_seed] makes the optimization scheduler dequeue PRNG-chosen jobs
    (the sanitizer's schedule fuzzer): a different but deterministic
    interleaving of the same costing work per seed. [obs] (default false)
    additionally collects per-rule firing counts and timings for the
    observability report. [prov] (default false) stamps every rule result
    with its origin — rule, source expression, [stage_name], promise — for
    the provenance layer (lib/prov). [rule_checks] (default false) is a
    debug mode that checksums the Memo around every rule application and
    raises {!Rule_contract_violation} if [apply] mutated it — the central
    enforcement of the rule.mli contract (lib/rulecheck audits the same
    contract statically). [strata] (default none) is a rule-name -> stratum
    map (lib/interact's stratification of the rule-interaction graph): when
    set, pending rules on a group expression sort by stratum ascending,
    promise descending within a stratum. Plan-identical to the default
    promise order — exploration is a fixpoint with order-independent
    duplicate detection.

    The speedup switches (all default true) never change the chosen plan or
    its cost: [prefilter] skips rule applications whose root-shape bitmap
    rules the expression out (the body would return []); [stats_memo]
    memoizes per-group row counts, row widths and redistribute skew;
    [winner_reuse] skips spawning child Opt jobs whose context already
    completed (single-worker schedules only) and reuses the operator's base
    cost across optimization contexts that differ only in required
    properties. *)

val set_deadline : t -> float option -> unit
(** Stage timeout in milliseconds from now; bounds exploration (a plan is
    still always produced from what was explored). *)

val explore : t -> unit
(** Step 1: fire exploration rules to a fixpoint from the root group. *)

val derive_statistics : t -> unit
(** Step 2: statistics derivation on the Memo (promise-based, memoized). *)

val implement : t -> unit
(** Step 3: fire implementation rules on every group. *)

val optimize : t -> Props.req -> unit
(** Step 4: submit the root optimization request; property enforcement and
    costing fill the optimization contexts. *)

val run : t -> Props.req -> Expr.plan
(** All four steps, then extract the best plan for the request. *)

val scheduler_stats : t -> int * int * int
(** (jobs created, job executions, goal-queue hits). *)

val counters : t -> counters
(** A consistent-enough snapshot of the atomic search counters. *)

(** {2 Observability snapshots (lib/obs)} *)

val rule_profile : t -> Obs.Report.rule_stat list
(** Per-rule firing/result/skip counts and cumulative time over the engine's
    rule set. Timings are populated only when the engine was created with
    [~obs:true]; counters of rules that never fired are zero. *)

val sched_profiles : t -> Obs.Report.sched_stat list
(** Utilization of the two schedulers, labelled "explore/implement" and
    "costing". *)

val cost_profile : t -> Obs.Report.cost_stat
(** Cost-model invocation counts and deadline checks. *)

val memo_profile : t -> Obs.Report.memo_stat
(** Growth counters of the engine's Memo. *)

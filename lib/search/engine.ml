open Ir
module Memo = Memolib.Memo
module Mexpr = Memolib.Mexpr

(* The optimization engine (paper §4.1 workflow, §4.2 parallel optimization).

   The engine drives the four optimization steps — exploration, statistics
   derivation, implementation, optimization — as graphs of small re-entrant
   jobs executed by the GPOS scheduler. The seven job kinds of the paper map
   to: Exp(g)/Exp(gexpr), Imp(g)/Imp(gexpr), Opt(g,req)/Opt(gexpr,req) and
   Xform(gexpr,t), with per-goal queues deduplicating concurrent work. *)

type counters = {
  xform_applied : int;
  xform_results : int;
  alternatives_costed : int;
  contexts_created : int;
}

(* Internal counters are atomics so parallel Opt jobs can bump them without
   a lock; the public [counters] type is a plain snapshot. *)
type acounters = {
  a_xform_applied : int Atomic.t;
  a_xform_results : int Atomic.t;
  a_alternatives_costed : int Atomic.t;
  a_contexts_created : int Atomic.t;
  a_op_costings : int Atomic.t;       (* Cost_model.op_cost invocations *)
  a_enf_costings : int Atomic.t;      (* Cost_model.enforcer_cost invocations *)
  a_deadline_checks : int Atomic.t;
}

(* Per-rule profile, collected only when the engine runs with [obs] — rule
   application is funnelled through the single-worker exploration scheduler,
   so plain mutable fields suffice. *)
type rule_stat = {
  mutable rs_fired : int;
  mutable rs_results : int;
  mutable rs_skipped : int; (* applications dropped by a stage deadline *)
  mutable rs_time_ms : float;
}

type t = {
  memo : Memo.t;
  ruleset : Xform.Ruleset.t;
  rctx : Xform.Rule.ctx;
  model : Cost.Cost_model.t;
  base : Table_desc.t -> Stats.Relstats.t;
  sched : Gpos.Scheduler.t;
      (* exploration/implementation: rule application funnels through the
         Memo's global insertion lock, so those phases run sequentially *)
  sched_opt : Gpos.Scheduler.t;
      (* optimization: costing is group-local, so Opt jobs parallelize *)
  mutable deadline : float option; (* absolute time; bounds exploration *)
  counters : acounters;
  obs : bool; (* collect per-rule timings for the observability report *)
  rule_stats : (int, rule_stat) Hashtbl.t; (* rule id -> profile *)
}

let create ?(workers = 1) ?fuzz_seed ?(obs = false) ~ruleset ~model ~factory
    ~base memo =
  {
    memo;
    ruleset;
    rctx = { Xform.Rule.factory };
    model;
    base;
    sched = Gpos.Scheduler.create ();
    sched_opt =
      (* Schedule fuzzing permutes only the optimization scheduler: the
         exploration/implementation phases assign gexpr and group ids, so
         permuting them would change the Memo itself rather than exercise a
         different interleaving of the same costing work. *)
      Gpos.Scheduler.create ~workers
        ?fuzz:(Option.map Gpos.Prng.create fuzz_seed) ();
    deadline = None;
    counters =
      {
        a_xform_applied = Atomic.make 0;
        a_xform_results = Atomic.make 0;
        a_alternatives_costed = Atomic.make 0;
        a_contexts_created = Atomic.make 0;
        a_op_costings = Atomic.make 0;
        a_enf_costings = Atomic.make 0;
        a_deadline_checks = Atomic.make 0;
      };
    obs;
    rule_stats = Hashtbl.create 64;
  }

let rule_stat t (rule : Xform.Rule.t) =
  match Hashtbl.find_opt t.rule_stats rule.Xform.Rule.id with
  | Some rs -> rs
  | None ->
      let rs = { rs_fired = 0; rs_results = 0; rs_skipped = 0; rs_time_ms = 0.0 } in
      Hashtbl.replace t.rule_stats rule.Xform.Rule.id rs;
      rs

let set_deadline t ms_from_now =
  t.deadline <-
    (match ms_from_now with
    | None -> None
    | Some ms -> Some (Gpos.Clock.now () +. (ms /. 1000.0)))

let timed_out t =
  match t.deadline with
  | None -> false
  | Some d ->
      Atomic.incr t.counters.a_deadline_checks;
      Gpos.Clock.now () > d

let bump_by counter n = ignore (Atomic.fetch_and_add counter n)

(* Sanitizer hook: publish context state/best accesses made outside the
   Memo's locks, so the race detector can check they are ordered by the
   scheduler's goal queues alone. *)
let trace_access obj write =
  if Gpos.Trace.enabled () then
    Gpos.Trace.emit (Gpos.Trace.Access { obj = obj (); write })

(* --- Xform(gexpr, rule) --- *)

let xform_job t (ge : Memo.gexpr) (rule : Xform.Rule.t) () =
  let t0 = if t.obs then Gpos.Clock.now () else 0.0 in
  let results = rule.Xform.Rule.apply t.rctx t.memo ge in
  bump_by t.counters.a_xform_applied 1;
  bump_by t.counters.a_xform_results (List.length results);
  if t.obs then begin
    let rs = rule_stat t rule in
    rs.rs_fired <- rs.rs_fired + 1;
    rs.rs_results <- rs.rs_results + List.length results;
    rs.rs_time_ms <- rs.rs_time_ms +. Gpos.Clock.ms_since t0
  end;
  let target = Memo.find t.memo ge.Memo.ge_group in
  List.iter
    (fun mexpr ->
      ignore (Memo.insert t.memo ~rule:rule.Xform.Rule.name ~target mexpr))
    results;
  Gpos.Scheduler.Finished

(* Apply all not-yet-applied rules of [kind] to a group expression, after
   recursively processing child groups with [child_group_job]. *)
let gexpr_job t (ge : Memo.gexpr) ~(rules : Xform.Rule.t list)
    ~(respect_deadline : bool) ~(mark : Memo.gexpr -> unit)
    ~(child_goal : int -> string)
    ~(child_group_job : int -> unit -> Gpos.Scheduler.outcome) :
    unit -> Gpos.Scheduler.outcome =
  (* stage A: make sure children are processed; stage B: fire rules.
     The stage ref lives outside the closure: the job is re-entrant.
     Deadlines bound exploration only; when one fires the expression is still
     marked processed (skipping only the rule applications) so the group
     fixpoints terminate. *)
  let stage = ref `Children in
  let rec step () =
    match !stage with
    | `Children ->
        stage := `Rules;
        let children =
          List.map
            (fun gid ->
              let gid = Memo.find t.memo gid in
              {
                Gpos.Scheduler.run = child_group_job gid;
                goal = Some (child_goal gid);
              })
            ge.Memo.ge_children
        in
        if children = [] then step ()
        else Gpos.Scheduler.Wait_for children
    | `Rules ->
        stage := `Done;
        if respect_deadline && timed_out t then begin
          (* applications this deadline filtered out, for the rule profile *)
          if t.obs then
            List.iter
              (fun (r : Xform.Rule.t) ->
                if not (List.mem r.Xform.Rule.id ge.Memo.ge_applied) then begin
                  let rs = rule_stat t r in
                  rs.rs_skipped <- rs.rs_skipped + 1
                end)
              rules;
          mark ge;
          Gpos.Scheduler.Finished
        end
        else begin
          let pending =
            List.filter
              (fun (r : Xform.Rule.t) ->
                not (List.mem r.Xform.Rule.id ge.Memo.ge_applied))
              rules
            |> List.sort (fun (a : Xform.Rule.t) b ->
                   compare b.Xform.Rule.promise a.Xform.Rule.promise)
          in
          List.iter
            (fun (r : Xform.Rule.t) ->
              ge.Memo.ge_applied <- r.Xform.Rule.id :: ge.Memo.ge_applied)
            pending;
          mark ge;
          let jobs =
            List.map
              (fun r -> { Gpos.Scheduler.run = xform_job t ge r; goal = None })
              pending
          in
          if jobs = [] then Gpos.Scheduler.Finished
          else Gpos.Scheduler.Wait_for jobs
        end
    | `Done -> Gpos.Scheduler.Finished
  in
  step

(* --- Exp(g) / Exp(gexpr): fixpoint over a group's logical expressions --- *)

let rec exp_group_job t gid () =
  let gid = Memo.find t.memo gid in
  let g = Memo.group t.memo gid in
  if g.Memo.g_explored || timed_out t then begin
    g.Memo.g_explored <- true;
    Gpos.Scheduler.Finished
  end
  else begin
    let pending =
      Memo.logical_exprs g
      |> List.filter (fun (ge, _) -> not ge.Memo.ge_explored)
      |> List.map fst
    in
    if pending = [] then begin
      g.Memo.g_explored <- true;
      Gpos.Scheduler.Finished
    end
    else
      (* explore each pending gexpr, then re-run this job to catch any new
         expressions the transformations copied in *)
      Gpos.Scheduler.Wait_for
        (List.map
           (fun ge ->
             {
               Gpos.Scheduler.run =
                 gexpr_job t ge
                   ~rules:(Xform.Ruleset.exploration t.ruleset)
                   ~respect_deadline:true
                   ~mark:(fun ge -> ge.Memo.ge_explored <- true)
                   ~child_goal:(fun gid -> Printf.sprintf "exp:%d" gid)
                   ~child_group_job:(exp_group_job t);
               goal = None;
             })
           pending)
  end

(* --- Imp(g) / Imp(gexpr) --- *)

let rec imp_group_job t gid () =
  let gid = Memo.find t.memo gid in
  let g = Memo.group t.memo gid in
  if g.Memo.g_implemented then Gpos.Scheduler.Finished
  else begin
    let pending =
      Memo.logical_exprs g
      |> List.filter (fun (ge, _) -> not ge.Memo.ge_implemented)
      |> List.map fst
    in
    if pending = [] then begin
      g.Memo.g_implemented <- true;
      Gpos.Scheduler.Finished
    end
    else
      Gpos.Scheduler.Wait_for
        (List.map
           (fun ge ->
             {
               Gpos.Scheduler.run =
                 gexpr_job t ge
                   ~rules:(Xform.Ruleset.implementation t.ruleset)
                   ~respect_deadline:false
                   ~mark:(fun ge -> ge.Memo.ge_implemented <- true)
                   ~child_goal:(fun gid -> Printf.sprintf "imp:%d" gid)
                   ~child_group_job:(imp_group_job t);
               goal = None;
             })
           pending)
  end

(* --- costing helpers --- *)

let group_rows t gid =
  match Memo.stats t.memo gid with
  | Some s -> Float.max 1.0 (Stats.Relstats.rows s)
  | None -> 1000.0

let group_width t gid =
  Stats.Relstats.row_width (Memo.output_cols t.memo gid)

(* Skew of the columns a redistribute enforcer hashes on. *)
let redistribute_skew t gid (enf : Props.enforcer) =
  match enf with
  | Props.E_motion (Expr.Redistribute es) -> (
      match Memo.stats t.memo gid with
      | None -> 1.0
      | Some s ->
          let col_skews =
            List.filter_map
              (function
                | Expr.Col c -> Some (Stats.Relstats.col_skew s c)
                | _ -> None)
              es
          in
          let skew = List.fold_left Float.max 1.0 col_skews in
          Float.min skew 4.0)
  | _ -> 1.0

(* Cost one (gexpr, child-request vector) and record every enforcement
   alternative into the context. *)
let cost_alternative t (ctx : Memo.context) (gid : int) (ge : Memo.gexpr)
    (op : Expr.physical) (child_reqs : Props.req list) : unit =
  let children = List.map (Memo.find t.memo) ge.Memo.ge_children in
  let child_bests =
    List.map2
      (fun cg cr ->
        match Memo.find_context t.memo cg cr with
        | Some cctx ->
            (* unlocked read: must be ordered after the child Opt goal's
               release by the goal queue — the sanitizer checks exactly this *)
            trace_access
              (fun () -> Printf.sprintf "ctx:%d.best" cctx.Memo.cx_id)
              false;
            cctx.Memo.cx_best
        | None -> None)
      children child_reqs
  in
  if List.for_all Option.is_some child_bests then begin
    let child_bests = List.map Option.get child_bests in
    let child_derived = List.map (fun b -> b.Memo.a_derived) child_bests in
    let delivered = Physical_ops.derive op child_derived in
    let inputs =
      List.map2
        (fun cg (b : Memo.alternative) ->
          Cost.Cost_model.input ~rows:(group_rows t cg)
            ~width:(group_width t cg) ~dist:b.Memo.a_derived.Props.ddist ())
        children child_bests
    in
    let rows_out = group_rows t gid in
    let width_out = group_width t gid in
    let scan_rows =
      match op with
      | Expr.P_table_scan (td, _, _) | Expr.P_index_scan (td, _, _, _, _) ->
          Stats.Relstats.rows (t.base td)
      | _ -> 0.0
    in
    bump_by t.counters.a_op_costings 1;
    let local =
      Cost.Cost_model.op_cost t.model op ~rows_out ~width_out ~inputs
        ~scan_rows ~out_dist:delivered.Props.ddist
    in
    let children_cost =
      List.fold_left (fun acc b -> acc +. b.Memo.a_cost) 0.0 child_bests
    in
    let base_cost = local +. children_cost in
    let chains =
      Props.enforcement_alternatives ~delivered ~required:ctx.Memo.cx_req
    in
    List.iter
      (fun chain ->
        (* walk the chain, tracking properties and incremental costs *)
        let _, enf_costs_rev, final_derived =
          List.fold_left
            (fun (d, costs, _) enf ->
              let skew = redistribute_skew t gid enf in
              bump_by t.counters.a_enf_costings 1;
              let c =
                Cost.Cost_model.enforcer_cost t.model enf ~rows:rows_out
                  ~width:width_out ~dist:d.Props.ddist ~skew
              in
              let d' = Props.apply_enforcer d enf in
              (d', c :: costs, d'))
            (delivered, [], delivered)
            chain
        in
        let enf_costs = List.rev enf_costs_rev in
        let total = base_cost +. List.fold_left ( +. ) 0.0 enf_costs in
        bump_by t.counters.a_alternatives_costed 1;
        Memo.record_alternative t.memo gid ctx
          {
            Memo.a_gexpr = ge;
            a_child_reqs = child_reqs;
            a_enforcers = chain;
            a_enf_costs = enf_costs;
            a_local_cost = local;
            a_cost = total;
            a_derived = final_derived;
          })
      chains
  end

(* --- Opt(g, req) / Opt(gexpr, req) --- *)

let opt_goal gid req = Printf.sprintf "opt:%d:%d" gid (Props.req_fingerprint req)

let rec opt_group_job t gid req () =
  let gid = Memo.find t.memo gid in
  let ctx, created = Memo.obtain_context t.memo gid req in
  if created then bump_by t.counters.a_contexts_created 1;
  let state_obj () = Printf.sprintf "ctx:%d.state" ctx.Memo.cx_id in
  trace_access state_obj false;
  match ctx.Memo.cx_state with
  | Memo.Ctx_complete -> Gpos.Scheduler.Finished
  | Memo.Ctx_in_progress ->
      (* our own re-run after the Opt(gexpr) children drained (concurrent
         requests for this goal are parked on the goal queue instead) *)
      trace_access state_obj true;
      ctx.Memo.cx_state <- Memo.Ctx_complete;
      Gpos.Scheduler.Finished
  | Memo.Ctx_new ->
      trace_access state_obj true;
      ctx.Memo.cx_state <- Memo.Ctx_in_progress;
      let g = Memo.group t.memo gid in
      let jobs =
        Memo.physical_exprs g
        |> List.map (fun (ge, op) ->
               {
                 Gpos.Scheduler.run = opt_gexpr_job t ctx gid ge op req;
                 goal = None;
               })
      in
      if jobs = [] then begin
        trace_access state_obj true;
        ctx.Memo.cx_state <- Memo.Ctx_complete;
        Gpos.Scheduler.Finished
      end
      else Gpos.Scheduler.Wait_for jobs

and opt_gexpr_job t ctx gid ge op req =
  let alternatives =
    lazy
      (Requests.alternatives op ~req
         ~child_out_cols:
           (List.map (Memo.output_cols t.memo) ge.Memo.ge_children))
  in
  let stage = ref `Spawn in
  fun () ->
    match !stage with
    | `Spawn ->
        stage := `Cost;
        let children = List.map (Memo.find t.memo) ge.Memo.ge_children in
        (* spawn Opt(child group, child request) for every request appearing
           in any alternative; goal queues deduplicate *)
        let child_jobs =
          Lazy.force alternatives
          |> List.concat_map (fun child_reqs ->
                 List.map2
                   (fun cg cr ->
                     {
                       Gpos.Scheduler.run = opt_group_job t cg cr;
                       goal = Some (opt_goal cg cr);
                     })
                   children child_reqs)
        in
        if child_jobs = [] then (
          stage := `Cost;
          List.iter (fun creqs -> cost_alternative t ctx gid ge op creqs)
            (Lazy.force alternatives);
          Gpos.Scheduler.Finished)
        else Gpos.Scheduler.Wait_for child_jobs
    | `Cost ->
        stage := `Done;
        List.iter
          (fun creqs -> cost_alternative t ctx gid ge op creqs)
          (Lazy.force alternatives);
        Gpos.Scheduler.Finished
    | `Done -> Gpos.Scheduler.Finished

(* --- wait for a context to be complete, then finalize --- *)

let mark_contexts_complete t =
  (* optimization jobs have drained: every touched context is final *)
  List.iter
    (fun gid ->
      List.iter
        (fun ctx -> ctx.Memo.cx_state <- Memo.Ctx_complete)
        (Memo.contexts_of_group t.memo gid))
    (Memo.group_ids t.memo)

(* --- the four optimization steps (paper §4.1) --- *)

(* A root job that spawns [children] exactly once and finishes when they
   drain. *)
let once children =
  let spawned = ref false in
  fun () ->
    if !spawned then Gpos.Scheduler.Finished
    else begin
      spawned := true;
      Gpos.Scheduler.Wait_for children
    end

let explore t =
  let root = Memo.root t.memo in
  Gpos.Scheduler.run t.sched
    (once
       [
         {
           Gpos.Scheduler.run = exp_group_job t root;
           goal = Some (Printf.sprintf "exp:%d" root);
         };
       ])

let derive_statistics t = Memolib.Memo_stats.derive_all t.memo ~base:t.base

let implement t =
  (* implementation runs on every group so that plan alternatives exist even
     in corners exploration pruned *)
  Gpos.Scheduler.run t.sched
    (once
       (List.map
          (fun gid ->
            {
              Gpos.Scheduler.run = imp_group_job t gid;
              goal = Some (Printf.sprintf "imp:%d" gid);
            })
          (Memo.group_ids t.memo)))

let optimize t (req : Props.req) =
  let root = Memo.root t.memo in
  Gpos.Scheduler.run t.sched_opt
    (once
       [
         {
           Gpos.Scheduler.run = opt_group_job t root req;
           goal = Some (opt_goal root req);
         };
       ]);
  mark_contexts_complete t

(* Full workflow. Returns the best plan for the root request. Each of the
   paper's §4.1 steps is wrapped in an Obs span — free unless a span session
   is active. *)
let run t (req : Props.req) : Expr.plan =
  Obs.Span.with_ ~name:"explore" (fun () -> explore t);
  Obs.Span.with_ ~name:"stats-derive" (fun () -> derive_statistics t);
  Obs.Span.with_ ~name:"implement" (fun () -> implement t);
  Obs.Span.with_ ~name:"costing" (fun () -> optimize t req);
  Obs.Span.with_ ~name:"extract" (fun () ->
      Memolib.Extract.best_plan t.memo (Memo.root t.memo) req)

let scheduler_stats t =
  let c1, r1, g1 = Gpos.Scheduler.stats t.sched in
  let c2, r2, g2 = Gpos.Scheduler.stats t.sched_opt in
  (c1 + c2, r1 + r2, g1 + g2)

let counters t =
  {
    xform_applied = Atomic.get t.counters.a_xform_applied;
    xform_results = Atomic.get t.counters.a_xform_results;
    alternatives_costed = Atomic.get t.counters.a_alternatives_costed;
    contexts_created = Atomic.get t.counters.a_contexts_created;
  }

(* --- observability snapshots (lib/obs) --- *)

(* Per-rule profile over the engine's rule set; rules that never fired and
   were never skipped are included with zeroes so totals line up. *)
let rule_profile t : Obs.Report.rule_stat list =
  List.map
    (fun (r : Xform.Rule.t) ->
      let rs =
        Option.value
          (Hashtbl.find_opt t.rule_stats r.Xform.Rule.id)
          ~default:{ rs_fired = 0; rs_results = 0; rs_skipped = 0; rs_time_ms = 0.0 }
      in
      {
        Obs.Report.r_name = r.Xform.Rule.name;
        r_kind =
          (if Xform.Rule.is_exploration r then "explore" else "implement");
        r_fired = rs.rs_fired;
        r_results = rs.rs_results;
        r_skipped = rs.rs_skipped;
        r_time_ms = rs.rs_time_ms;
      })
    (Xform.Ruleset.rules t.ruleset)

let sched_stat_of label (p : Gpos.Scheduler.profile) : Obs.Report.sched_stat =
  {
    Obs.Report.s_label = label;
    s_workers = p.Gpos.Scheduler.p_workers;
    s_jobs_created = p.Gpos.Scheduler.p_jobs_created;
    s_jobs_run = p.Gpos.Scheduler.p_jobs_run;
    s_jobs_suspended = p.Gpos.Scheduler.p_jobs_suspended;
    s_goal_hits = p.Gpos.Scheduler.p_goal_hits;
    s_max_queue_depth = p.Gpos.Scheduler.p_max_queue_depth;
    s_per_worker_run = p.Gpos.Scheduler.p_per_worker_run;
  }

let sched_profiles t : Obs.Report.sched_stat list =
  [
    sched_stat_of "explore/implement" (Gpos.Scheduler.profile t.sched);
    sched_stat_of "costing" (Gpos.Scheduler.profile t.sched_opt);
  ]

let cost_profile t : Obs.Report.cost_stat =
  {
    Obs.Report.c_op_costings = Atomic.get t.counters.a_op_costings;
    c_enforcer_costings = Atomic.get t.counters.a_enf_costings;
    c_alternatives = Atomic.get t.counters.a_alternatives_costed;
    c_deadline_checks = Atomic.get t.counters.a_deadline_checks;
  }

(* Growth counters of the engine's Memo, for Obs.Report. *)
let memo_profile t : Obs.Report.memo_stat =
  let p = Memo.profile t.memo in
  {
    Obs.Report.m_groups = Memo.ngroups t.memo;
    m_gexprs = Memo.ngexprs t.memo;
    m_inserts = p.Memo.p_inserts;
    m_dedup_hits = p.Memo.p_dedup_hits;
    m_merges = p.Memo.p_merges;
    m_ctx_created = p.Memo.p_ctx_created;
    m_ctx_cache_hits = p.Memo.p_ctx_hits;
    m_winner_updates = p.Memo.p_winner_updates;
    m_winner_kept = p.Memo.p_winner_kept;
  }

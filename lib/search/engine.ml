open Ir
module Memo = Memolib.Memo
module Mexpr = Memolib.Mexpr

(* The optimization engine (paper §4.1 workflow, §4.2 parallel optimization).

   The engine drives the four optimization steps — exploration, statistics
   derivation, implementation, optimization — as graphs of small re-entrant
   jobs executed by the GPOS scheduler. The seven job kinds of the paper map
   to: Exp(g)/Exp(gexpr), Imp(g)/Imp(gexpr), Opt(g,req)/Opt(gexpr,req) and
   Xform(gexpr,t), with per-goal queues deduplicating concurrent work. *)

type counters = {
  xform_applied : int;
  xform_results : int;
  alternatives_costed : int;
  contexts_created : int;
  prefilter_skips : int;
  winner_skips : int;
  base_reuses : int;
  stats_hits : int;
}

(* Internal counters are atomics so parallel Opt jobs can bump them without
   a lock; the public [counters] type is a plain snapshot. *)
type acounters = {
  a_xform_applied : int Atomic.t;
  a_xform_results : int Atomic.t;
  a_alternatives_costed : int Atomic.t;
  a_contexts_created : int Atomic.t;
  a_op_costings : int Atomic.t;       (* Cost_model.op_cost invocations *)
  a_enf_costings : int Atomic.t;      (* Cost_model.enforcer_cost invocations *)
  a_deadline_checks : int Atomic.t;
  a_prefilter_skips : int Atomic.t;   (* rule applications pruned by shape *)
  a_winner_skips : int Atomic.t;      (* child Opt spawns pruned: ctx complete *)
  a_base_reuses : int Atomic.t;       (* base costs served from the reuse cache *)
  a_stats_hits : int Atomic.t;        (* rows/width/skew served from the stats memo *)
}

(* Per-rule profile, collected only when the engine runs with [obs] — rule
   application is funnelled through the single-worker exploration scheduler,
   so plain mutable fields suffice. *)
type rule_stat = {
  mutable rs_fired : int;
  mutable rs_results : int;
  mutable rs_skipped : int; (* applications dropped by a stage deadline *)
  mutable rs_prefiltered : int; (* applications pruned by the shape bitmap *)
  mutable rs_time_ms : float;
}

type t = {
  memo : Memo.t;
  ruleset : Xform.Ruleset.t;
  stage_name : string; (* stamped on provenance origins (lib/prov) *)
  prov : bool; (* record per-gexpr origins on rule results *)
  rctx : Xform.Rule.ctx;
  model : Cost.Cost_model.t;
  base : Table_desc.t -> Stats.Relstats.t;
  sched : Gpos.Scheduler.t;
      (* exploration/implementation: rule application funnels through the
         Memo's global insertion lock, so those phases run sequentially *)
  sched_opt : Gpos.Scheduler.t;
      (* optimization: costing is group-local, so Opt jobs parallelize *)
  mutable deadline : float option; (* absolute time; bounds exploration *)
  counters : acounters;
  obs : bool; (* collect per-rule timings for the observability report *)
  rule_stats : (int, rule_stat) Hashtbl.t; (* rule id -> profile *)
  (* hot-path speedups; every one preserves the chosen plan and its cost
     exactly (test/test_perf_identity.ml proves it per query) *)
  rule_checks : bool;
      (* debug mode: checksum the Memo around every [Rule.apply] to enforce
         the no-mutation contract of rule.mli at the engine's single
         application site (rule application is funnelled through the
         sequential exploration/implementation scheduler, so the window
         contains nothing but the apply) *)
  strata : (string, int) Hashtbl.t option;
      (* stage-ordered rule scheduling (lib/interact stratification): rule
         name -> stratum. When set, pending rules sort by (stratum
         ascending, promise descending) instead of promise alone. Plans are
         byte-identical either way — exploration is a fixpoint and the
         Memo's duplicate detection is order-independent — but stratified
         order applies feeder rules before the rules they feed, the
         substrate for budget-aware scheduling on big join queries. *)
  prefilter : bool;    (* skip rules whose shape bitmap rules the root out *)
  stats_memo : bool;   (* memoize per-group rows/width and redistribute skew *)
  winner_reuse : bool; (* skip child Opt spawns on complete contexts; reuse
                          base costs across contexts differing only in the
                          required properties *)
  opt_workers : int;
  (* rows/width per canonical group id: frozen before costing starts (the
     optimization phase inserts nothing), so parallel Opt jobs read them
     without a lock *)
  rows_cache : (int, float) Hashtbl.t;
  width_cache : (int, float) Hashtbl.t;
  (* redistribute-skew per (canonical group id, hash exprs): filled during
     costing, hence mutex-guarded *)
  skew_cache : (int * Expr.scalar list, float) Hashtbl.t;
  skew_lock : Mutex.t;
  (* (gexpr id, child request vector) -> (local cost, children cost,
     delivered properties). Valid across optimization contexts: child bests
     are final before any parent costs against them (the goal-queue barrier),
     and the operator's cost inputs are fixed per (gexpr, child requests). *)
  cost_cache :
    ( int * Props.req list,
      float * float * Props.derived * Props.derived list )
    Hashtbl.t;
  cost_lock : Mutex.t;
  (* (group id, request fingerprint) -> goal string, so repeat spawns skip
     the sprintf *)
  goal_cache : (int * int, string) Hashtbl.t;
  goal_lock : Mutex.t;
}

let create ?(workers = 1) ?fuzz_seed ?(obs = false) ?(rule_checks = false)
    ?(prefilter = true) ?(stats_memo = true) ?(winner_reuse = true)
    ?(stage_name = "stage") ?(prov = false) ?strata ~ruleset ~model ~factory
    ~base memo =
  let strata =
    Option.map
      (fun assoc ->
        let tbl = Hashtbl.create 32 in
        List.iter (fun (name, s) -> Hashtbl.replace tbl name s) assoc;
        tbl)
      strata
  in
  {
    memo;
    strata;
    ruleset;
    stage_name;
    prov;
    rctx = { Xform.Rule.factory };
    model;
    base;
    sched = Gpos.Scheduler.create ();
    sched_opt =
      (* Schedule fuzzing permutes only the optimization scheduler: the
         exploration/implementation phases assign gexpr and group ids, so
         permuting them would change the Memo itself rather than exercise a
         different interleaving of the same costing work. Costing dequeues
         depth-first so child Opt goals complete before sibling contexts
         spawn — that is what makes the winner-reuse caches hit; the
         caches-off baseline keeps the breadth-first order. *)
      Gpos.Scheduler.create ~workers
        ?fuzz:(Option.map Gpos.Prng.create fuzz_seed)
        ~policy:
          (if winner_reuse then Gpos.Scheduler.Lifo else Gpos.Scheduler.Fifo)
        ();
    deadline = None;
    counters =
      {
        a_xform_applied = Atomic.make 0;
        a_xform_results = Atomic.make 0;
        a_alternatives_costed = Atomic.make 0;
        a_contexts_created = Atomic.make 0;
        a_op_costings = Atomic.make 0;
        a_enf_costings = Atomic.make 0;
        a_deadline_checks = Atomic.make 0;
        a_prefilter_skips = Atomic.make 0;
        a_winner_skips = Atomic.make 0;
        a_base_reuses = Atomic.make 0;
        a_stats_hits = Atomic.make 0;
      };
    obs;
    rule_stats = Hashtbl.create 64;
    rule_checks;
    prefilter;
    stats_memo;
    winner_reuse;
    opt_workers = workers;
    rows_cache = Hashtbl.create 256;
    width_cache = Hashtbl.create 256;
    skew_cache = Hashtbl.create 256;
    skew_lock = Mutex.create ();
    cost_cache = Hashtbl.create 1024;
    cost_lock = Mutex.create ();
    goal_cache = Hashtbl.create 256;
    goal_lock = Mutex.create ();
  }

let rule_stat t (rule : Xform.Rule.t) =
  match Hashtbl.find_opt t.rule_stats rule.Xform.Rule.id with
  | Some rs -> rs
  | None ->
      let rs =
        {
          rs_fired = 0;
          rs_results = 0;
          rs_skipped = 0;
          rs_prefiltered = 0;
          rs_time_ms = 0.0;
        }
      in
      Hashtbl.replace t.rule_stats rule.Xform.Rule.id rs;
      rs

let set_deadline t ms_from_now =
  t.deadline <-
    (match ms_from_now with
    | None -> None
    | Some ms -> Some (Gpos.Clock.now () +. (ms /. 1000.0)))

let timed_out t =
  match t.deadline with
  | None -> false
  | Some d ->
      Atomic.incr t.counters.a_deadline_checks;
      Gpos.Clock.now () > d

let bump_by counter n = ignore (Atomic.fetch_and_add counter n)

(* Sanitizer hook: publish context state/best accesses made outside the
   Memo's locks, so the race detector can check they are ordered by the
   scheduler's goal queues alone. *)
let trace_access obj write =
  if Gpos.Trace.enabled () then
    Gpos.Trace.emit (Gpos.Trace.Access { obj = obj (); write })

(* --- Xform(gexpr, rule) --- *)

exception
  Rule_contract_violation of { rule : string; rule_id : int; gexpr : int }

let () =
  Printexc.register_printer (function
    | Rule_contract_violation { rule; rule_id; gexpr } ->
        Some
          (Printf.sprintf
             "Rule_contract_violation: rule %s (id %d) mutated the Memo \
              while applied to gexpr %d (apply must only return \
              alternatives; see lib/xform/rule.mli)"
             rule rule_id gexpr)
    | _ -> None)

let xform_job t (ge : Memo.gexpr) (rule : Xform.Rule.t) () =
  let t0 = if t.obs then Gpos.Clock.now () else 0.0 in
  let before = if t.rule_checks then Memo.checksum t.memo else 0 in
  let results = rule.Xform.Rule.apply t.rctx t.memo ge in
  if t.rule_checks && Memo.checksum t.memo <> before then
    raise
      (Rule_contract_violation
         {
           rule = rule.Xform.Rule.name;
           rule_id = rule.Xform.Rule.id;
           gexpr = ge.Memo.ge_id;
         });
  bump_by t.counters.a_xform_applied 1;
  bump_by t.counters.a_xform_results (List.length results);
  if t.obs then begin
    let rs = rule_stat t rule in
    rs.rs_fired <- rs.rs_fired + 1;
    rs.rs_results <- rs.rs_results + List.length results;
    rs.rs_time_ms <- rs.rs_time_ms +. Gpos.Clock.ms_since t0
  end;
  let target = Memo.find t.memo ge.Memo.ge_group in
  (* Origin records are built only under the provenance flag: the record
     allocation is cheap, but "free when off" is a gated guarantee, not a
     hope. *)
  let origin =
    if t.prov then
      Some (Xform.Rule.origin_for rule ~stage:t.stage_name ~source:ge)
    else None
  in
  List.iter
    (fun mexpr -> ignore (Memo.insert t.memo ?origin ~target mexpr))
    results;
  Gpos.Scheduler.Finished

(* Apply all not-yet-applied rules of [kind] to a group expression, after
   recursively processing child groups with [child_group_job]. *)
let gexpr_job t (ge : Memo.gexpr) ~(rules : Xform.Rule.t list)
    ~(respect_deadline : bool) ~(mark : Memo.gexpr -> unit)
    ~(child_goal : int -> string)
    ~(child_group_job : int -> unit -> Gpos.Scheduler.outcome) :
    unit -> Gpos.Scheduler.outcome =
  (* stage A: make sure children are processed; stage B: fire rules.
     The stage ref lives outside the closure: the job is re-entrant.
     Deadlines bound exploration only; when one fires the expression is still
     marked processed (skipping only the rule applications) so the group
     fixpoints terminate. *)
  let stage = ref `Children in
  let rec step () =
    match !stage with
    | `Children ->
        stage := `Rules;
        let children =
          List.map
            (fun gid ->
              let gid = Memo.find t.memo gid in
              {
                Gpos.Scheduler.run = child_group_job gid;
                goal = Some (child_goal gid);
              })
            ge.Memo.ge_children
        in
        if children = [] then step ()
        else Gpos.Scheduler.Wait_for children
    | `Rules ->
        stage := `Done;
        if respect_deadline && timed_out t then begin
          (* applications this deadline filtered out, for the rule profile *)
          if t.obs then
            List.iter
              (fun (r : Xform.Rule.t) ->
                if not (List.mem r.Xform.Rule.id ge.Memo.ge_applied) then begin
                  let rs = rule_stat t r in
                  rs.rs_skipped <- rs.rs_skipped + 1
                end)
              rules;
          mark ge;
          Gpos.Scheduler.Finished
        end
        else begin
          let fresh =
            List.filter
              (fun (r : Xform.Rule.t) ->
                not (List.mem r.Xform.Rule.id ge.Memo.ge_applied))
              rules
          in
          (* applicability pre-filter: a rule whose root-shape bit is clear
             for this expression would provably return [], so skip the
             application (and the job) while still marking it applied *)
          let pending, prefiltered =
            if not t.prefilter then (fresh, [])
            else
              match ge.Memo.ge_op with
              | Expr.Physical _ -> (fresh, [])
              | Expr.Logical l ->
                  let tag = Ir.Logical_ops.tag l in
                  List.partition
                    (fun (r : Xform.Rule.t) -> Xform.Rule.applicable_tag r tag)
                    fresh
          in
          if prefiltered <> [] then begin
            bump_by t.counters.a_prefilter_skips (List.length prefiltered);
            if t.obs then
              List.iter
                (fun (r : Xform.Rule.t) ->
                  let rs = rule_stat t r in
                  rs.rs_prefiltered <- rs.rs_prefiltered + 1)
                prefiltered
          end;
          let pending =
            match t.strata with
            | None ->
                List.sort
                  (fun (a : Xform.Rule.t) b ->
                    compare b.Xform.Rule.promise a.Xform.Rule.promise)
                  pending
            | Some tbl ->
                (* stratified scheduling: interaction-graph stratum first
                   (feeders before the rules they feed), promise breaking
                   ties within a stratum; unknown rules sort last *)
                let stratum (r : Xform.Rule.t) =
                  Option.value ~default:max_int
                    (Hashtbl.find_opt tbl r.Xform.Rule.name)
                in
                List.sort
                  (fun (a : Xform.Rule.t) b ->
                    compare
                      (stratum a, -a.Xform.Rule.promise)
                      (stratum b, -b.Xform.Rule.promise))
                  pending
          in
          List.iter
            (fun (r : Xform.Rule.t) ->
              ge.Memo.ge_applied <- r.Xform.Rule.id :: ge.Memo.ge_applied)
            (pending @ prefiltered);
          mark ge;
          let jobs =
            List.map
              (fun r -> { Gpos.Scheduler.run = xform_job t ge r; goal = None })
              pending
          in
          if jobs = [] then Gpos.Scheduler.Finished
          else Gpos.Scheduler.Wait_for jobs
        end
    | `Done -> Gpos.Scheduler.Finished
  in
  step

(* --- Exp(g) / Exp(gexpr): fixpoint over a group's logical expressions --- *)

let rec exp_group_job t gid () =
  let gid = Memo.find t.memo gid in
  let g = Memo.group t.memo gid in
  if g.Memo.g_explored || timed_out t then begin
    g.Memo.g_explored <- true;
    Gpos.Scheduler.Finished
  end
  else begin
    let pending =
      Memo.logical_exprs g
      |> List.filter (fun (ge, _) -> not ge.Memo.ge_explored)
      |> List.map fst
    in
    if pending = [] then begin
      g.Memo.g_explored <- true;
      Gpos.Scheduler.Finished
    end
    else
      (* explore each pending gexpr, then re-run this job to catch any new
         expressions the transformations copied in *)
      Gpos.Scheduler.Wait_for
        (List.map
           (fun ge ->
             {
               Gpos.Scheduler.run =
                 gexpr_job t ge
                   ~rules:(Xform.Ruleset.exploration t.ruleset)
                   ~respect_deadline:true
                   ~mark:(fun ge -> ge.Memo.ge_explored <- true)
                   ~child_goal:(fun gid -> Printf.sprintf "exp:%d" gid)
                   ~child_group_job:(exp_group_job t);
               goal = None;
             })
           pending)
  end

(* --- Imp(g) / Imp(gexpr) --- *)

let rec imp_group_job t gid () =
  let gid = Memo.find t.memo gid in
  let g = Memo.group t.memo gid in
  if g.Memo.g_implemented then Gpos.Scheduler.Finished
  else begin
    let pending =
      Memo.logical_exprs g
      |> List.filter (fun (ge, _) -> not ge.Memo.ge_implemented)
      |> List.map fst
    in
    if pending = [] then begin
      g.Memo.g_implemented <- true;
      Gpos.Scheduler.Finished
    end
    else
      Gpos.Scheduler.Wait_for
        (List.map
           (fun ge ->
             {
               Gpos.Scheduler.run =
                 gexpr_job t ge
                   ~rules:(Xform.Ruleset.implementation t.ruleset)
                   ~respect_deadline:false
                   ~mark:(fun ge -> ge.Memo.ge_implemented <- true)
                   ~child_goal:(fun gid -> Printf.sprintf "imp:%d" gid)
                   ~child_group_job:(imp_group_job t);
               goal = None;
             })
           pending)
  end

(* --- costing helpers --- *)

let compute_group_rows t gid =
  match Memo.stats t.memo gid with
  | Some s -> Float.max 1.0 (Stats.Relstats.rows s)
  | None -> 1000.0

let compute_group_width t gid =
  Stats.Relstats.row_width (Memo.output_cols t.memo gid)

let group_rows t gid =
  match Hashtbl.find_opt t.rows_cache gid with
  | Some r ->
      Atomic.incr t.counters.a_stats_hits;
      r
  | None -> compute_group_rows t gid

let group_width t gid =
  match Hashtbl.find_opt t.width_cache gid with
  | Some w ->
      Atomic.incr t.counters.a_stats_hits;
      w
  | None -> compute_group_width t gid

(* Freeze rows/width per live group before costing: the optimization phase
   inserts nothing into the Memo, so the cached values stay canonical and
   parallel Opt jobs can read the tables lock-free. *)
let freeze_group_caches t =
  if t.stats_memo then
    List.iter
      (fun gid ->
        Hashtbl.replace t.rows_cache gid (compute_group_rows t gid);
        Hashtbl.replace t.width_cache gid (compute_group_width t gid))
      (Memo.group_ids t.memo)

(* Skew of the columns a redistribute enforcer hashes on. *)
let compute_redistribute_skew t gid es =
  match Memo.stats t.memo gid with
  | None -> 1.0
  | Some s ->
      let col_skews =
        List.filter_map
          (function
            | Expr.Col c -> Some (Stats.Relstats.col_skew s c) | _ -> None)
          es
      in
      let skew = List.fold_left Float.max 1.0 col_skews in
      Float.min skew 4.0

let redistribute_skew t gid (enf : Props.enforcer) =
  match enf with
  | Props.E_motion (Expr.Redistribute es) ->
      if not t.stats_memo then compute_redistribute_skew t gid es
      else begin
        (* col_skew folds over histogram buckets on every enforcer costing;
           memoize per (group, hash exprs). A concurrent duplicate compute
           stores the same deterministic value, so the lock only guards the
           table. *)
        let key = (gid, es) in
        Mutex.lock t.skew_lock;
        let hit = Hashtbl.find_opt t.skew_cache key in
        Mutex.unlock t.skew_lock;
        match hit with
        | Some v ->
            Atomic.incr t.counters.a_stats_hits;
            v
        | None ->
            let v = compute_redistribute_skew t gid es in
            Mutex.lock t.skew_lock;
            Hashtbl.replace t.skew_cache key v;
            Mutex.unlock t.skew_lock;
            v
      end
  | _ -> 1.0

(* Cost one (gexpr, child-request vector) and record every enforcement
   alternative into the context. *)
let cost_alternative t (ctx : Memo.context) (gid : int) (ge : Memo.gexpr)
    (op : Expr.physical) (child_reqs : Props.req list) : unit =
  (* (local cost, children cost, delivered properties) depends only on the
     gexpr and the child request vector, never on this context's required
     properties — so it can be reused across the enforcer recursion's
     contexts. Sound because every child best is final before any parent
     costs against it (the goal-queue barrier). *)
  let cache_key = (ge.Memo.ge_id, child_reqs) in
  let cached =
    if not t.winner_reuse then None
    else begin
      Mutex.lock t.cost_lock;
      let hit = Hashtbl.find_opt t.cost_cache cache_key in
      Mutex.unlock t.cost_lock;
      hit
    end
  in
  let base =
    match cached with
    | Some hit ->
        bump_by t.counters.a_base_reuses 1;
        Some hit
    | None ->
        let children = List.map (Memo.find t.memo) ge.Memo.ge_children in
        let child_bests =
          List.map2
            (fun cg cr ->
              match Memo.find_context t.memo cg cr with
              | Some cctx ->
                  (* unlocked read: must be ordered after the child Opt goal's
                     release by the goal queue — the sanitizer checks exactly
                     this *)
                  trace_access
                    (fun () -> Printf.sprintf "ctx:%d.best" cctx.Memo.cx_id)
                    false;
                  cctx.Memo.cx_best
              | None -> None)
            children child_reqs
        in
        if not (List.for_all Option.is_some child_bests) then None
        else begin
          let child_bests = List.map Option.get child_bests in
          let child_derived =
            List.map (fun b -> b.Memo.a_derived) child_bests
          in
          let delivered = Physical_ops.derive op child_derived in
          let inputs =
            List.map2
              (fun cg (b : Memo.alternative) ->
                Cost.Cost_model.input ~rows:(group_rows t cg)
                  ~width:(group_width t cg) ~dist:b.Memo.a_derived.Props.ddist
                  ())
              children child_bests
          in
          let rows_out = group_rows t gid in
          let width_out = group_width t gid in
          let scan_rows =
            match op with
            | Expr.P_table_scan (td, _, _) | Expr.P_index_scan (td, _, _, _, _)
              ->
                Stats.Relstats.rows (t.base td)
            | _ -> 0.0
          in
          bump_by t.counters.a_op_costings 1;
          let local =
            Cost.Cost_model.op_cost t.model op ~rows_out ~width_out ~inputs
              ~scan_rows ~out_dist:delivered.Props.ddist
          in
          let children_cost =
            List.fold_left (fun acc b -> acc +. b.Memo.a_cost) 0.0 child_bests
          in
          let entry = (local, children_cost, delivered, child_derived) in
          if t.winner_reuse then begin
            Mutex.lock t.cost_lock;
            Hashtbl.replace t.cost_cache cache_key entry;
            Mutex.unlock t.cost_lock
          end;
          Some entry
        end
  in
  match base with
  | None -> ()
  | Some (local, children_cost, delivered, child_derived) ->
    let rows_out = group_rows t gid in
    let width_out = group_width t gid in
    let base_cost = local +. children_cost in
    let chains =
      Props.enforcement_alternatives ~delivered ~required:ctx.Memo.cx_req
    in
    List.iter
      (fun chain ->
        (* walk the chain, tracking properties and incremental costs *)
        let _, enf_costs_rev, final_derived =
          List.fold_left
            (fun (d, costs, _) enf ->
              let skew = redistribute_skew t gid enf in
              bump_by t.counters.a_enf_costings 1;
              let c =
                Cost.Cost_model.enforcer_cost t.model enf ~rows:rows_out
                  ~width:width_out ~dist:d.Props.ddist ~skew
              in
              let d' = Props.apply_enforcer d enf in
              (d', c :: costs, d'))
            (delivered, [], delivered)
            chain
        in
        let enf_costs = List.rev enf_costs_rev in
        let total = base_cost +. List.fold_left ( +. ) 0.0 enf_costs in
        bump_by t.counters.a_alternatives_costed 1;
        Memo.record_alternative t.memo gid ctx
          {
            Memo.a_gexpr = ge;
            a_child_reqs = child_reqs;
            a_child_derived = child_derived;
            a_enforcers = chain;
            a_enf_costs = enf_costs;
            a_local_cost = local;
            a_cost = total;
            a_derived = final_derived;
          })
      chains

(* --- Opt(g, req) / Opt(gexpr, req) --- *)

let opt_goal gid req = Printf.sprintf "opt:%d:%d" gid (Props.req_fingerprint req)

(* The same goal string is formatted on every spawn of the same (group,
   request) — hundreds of thousands of times per optimization. Memoize it;
   the key uses the same fingerprint the string itself embeds, so two
   requests share a memo slot exactly when they share a goal string. *)
let opt_goal_memo t gid req =
  if not t.winner_reuse then opt_goal gid req
  else begin
    let key = (gid, Props.req_fingerprint req) in
    Mutex.lock t.goal_lock;
    let hit = Hashtbl.find_opt t.goal_cache key in
    (match hit with
    | Some _ -> ()
    | None -> Hashtbl.replace t.goal_cache key (opt_goal gid req));
    let v =
      match hit with Some v -> v | None -> Hashtbl.find t.goal_cache key
    in
    Mutex.unlock t.goal_lock;
    v
  end

(* Can every child spawn for this (gexpr, child-request vector) be elided?
   True when the base-cost cache already holds the vector: the entry was
   published under [cost_lock] after every child best became final, so the
   mutex acquire on the lookup gives the happens-before ordering the goal
   queue would otherwise provide — safe at any worker count. *)
let children_already_costed t (ge : Memo.gexpr) child_reqs =
  t.winner_reuse
  (* the sanitizer's race detector models ordering through goal-queue edges
     only; the mutex ordering this elision relies on is invisible to it, so
     keep the full spawn set whenever a trace is being collected *)
  && (not (Gpos.Trace.enabled ()))
  && (ge.Memo.ge_children = []
     ||
     let key = (ge.Memo.ge_id, child_reqs) in
     Mutex.lock t.cost_lock;
     let hit = Hashtbl.mem t.cost_cache key in
     Mutex.unlock t.cost_lock;
     hit)

let rec opt_group_job t gid req () =
  let gid = Memo.find t.memo gid in
  let ctx, created = Memo.obtain_context t.memo gid req in
  if created then bump_by t.counters.a_contexts_created 1;
  let state_obj () = Printf.sprintf "ctx:%d.state" ctx.Memo.cx_id in
  trace_access state_obj false;
  match ctx.Memo.cx_state with
  | Memo.Ctx_complete -> Gpos.Scheduler.Finished
  | Memo.Ctx_in_progress ->
      (* our own re-run after the Opt(gexpr) children drained (concurrent
         requests for this goal are parked on the goal queue instead) *)
      trace_access state_obj true;
      ctx.Memo.cx_state <- Memo.Ctx_complete;
      Gpos.Scheduler.Finished
  | Memo.Ctx_new ->
      trace_access state_obj true;
      ctx.Memo.cx_state <- Memo.Ctx_in_progress;
      let g = Memo.group t.memo gid in
      let jobs =
        Memo.physical_exprs g
        |> List.map (fun (ge, op) ->
               {
                 Gpos.Scheduler.run = opt_gexpr_job t ctx gid ge op req;
                 goal = None;
               })
      in
      if jobs = [] then begin
        trace_access state_obj true;
        ctx.Memo.cx_state <- Memo.Ctx_complete;
        Gpos.Scheduler.Finished
      end
      else Gpos.Scheduler.Wait_for jobs

and opt_gexpr_job t ctx gid ge op req =
  let alternatives =
    lazy
      (Requests.alternatives op ~req
         ~child_out_cols:
           (List.map (Memo.output_cols t.memo) ge.Memo.ge_children))
  in
  let stage = ref `Spawn in
  fun () ->
    match !stage with
    | `Spawn ->
        stage := `Cost;
        let children = List.map (Memo.find t.memo) ge.Memo.ge_children in
        (* spawn Opt(child group, child request) for every request appearing
           in any alternative; goal queues deduplicate *)
        let pairs =
          Lazy.force alternatives
          |> List.concat_map (fun child_reqs ->
                 (* an alternative whose base cost is already cached needs no
                    child spawns at all: its child winners are final *)
                 if children_already_costed t ge child_reqs then begin
                   bump_by t.counters.a_winner_skips
                     (List.length child_reqs);
                   []
                 end
                 else List.combine children child_reqs)
        in
        let pairs =
          if not t.winner_reuse then pairs
          else begin
            (* the goal queue would deduplicate these anyway, but each spawn
               pays a job allocation, a goal-string format and a queue
               transaction; drop local duplicates up front, and — on the
               deterministic single-worker schedule, where no other domain
               can be mid-write — drop goals whose context already completed *)
            let seen = Hashtbl.create 8 in
            List.filter
              (fun ((cg, cr) as key) ->
                if Hashtbl.mem seen key then false
                else begin
                  Hashtbl.replace seen key ();
                  if t.opt_workers > 1 || Gpos.Trace.enabled () then true
                  else
                    match Memo.find_context t.memo cg cr with
                    | Some cctx when cctx.Memo.cx_state = Memo.Ctx_complete ->
                        bump_by t.counters.a_winner_skips 1;
                        false
                    | _ -> true
                end)
              pairs
          end
        in
        let child_jobs =
          List.map
            (fun (cg, cr) ->
              {
                Gpos.Scheduler.run = opt_group_job t cg cr;
                goal = Some (opt_goal_memo t cg cr);
              })
            pairs
        in
        if child_jobs = [] then (
          stage := `Cost;
          List.iter (fun creqs -> cost_alternative t ctx gid ge op creqs)
            (Lazy.force alternatives);
          Gpos.Scheduler.Finished)
        else Gpos.Scheduler.Wait_for child_jobs
    | `Cost ->
        stage := `Done;
        List.iter
          (fun creqs -> cost_alternative t ctx gid ge op creqs)
          (Lazy.force alternatives);
        Gpos.Scheduler.Finished
    | `Done -> Gpos.Scheduler.Finished

(* --- direct single-worker optimization ---

   On the deterministic single-worker schedule with no trace collection, the
   depth-first (Lifo) job order degenerates to plain recursion: every child
   Opt goal completes before its parent costs against it. Driving the walk
   directly skips the per-goal job allocations, goal-string bookkeeping and
   queue transactions, which dominate small-query costing time. The parallel,
   fuzzed and traced paths keep the scheduler. *)
let rec opt_group_direct t gid req =
  let gid = Memo.find t.memo gid in
  let ctx, created = Memo.obtain_context t.memo gid req in
  if created then bump_by t.counters.a_contexts_created 1;
  match ctx.Memo.cx_state with
  | Memo.Ctx_complete | Memo.Ctx_in_progress ->
      (* in-progress = a cycle back into an ancestor's context: proceed
         without it, exactly as the scheduler absorbs the deadlocked goal *)
      ()
  | Memo.Ctx_new ->
      ctx.Memo.cx_state <- Memo.Ctx_in_progress;
      let g = Memo.group t.memo gid in
      List.iter
        (fun (ge, op) -> opt_gexpr_direct t ctx gid ge op req)
        (Memo.physical_exprs g);
      ctx.Memo.cx_state <- Memo.Ctx_complete

and opt_gexpr_direct t ctx gid ge op req =
  let children = List.map (Memo.find t.memo) ge.Memo.ge_children in
  List.iter
    (fun child_reqs ->
      if children_already_costed t ge child_reqs then
        bump_by t.counters.a_winner_skips (List.length child_reqs)
      else
        List.iter2
          (fun cg cr -> opt_group_direct t cg cr)
          children child_reqs;
      cost_alternative t ctx gid ge op child_reqs)
    (Requests.alternatives op ~req
       ~child_out_cols:
         (List.map (Memo.output_cols t.memo) ge.Memo.ge_children))

(* --- wait for a context to be complete, then finalize --- *)

let mark_contexts_complete t =
  (* optimization jobs have drained: every touched context is final *)
  List.iter
    (fun gid ->
      List.iter
        (fun ctx -> ctx.Memo.cx_state <- Memo.Ctx_complete)
        (Memo.contexts_of_group t.memo gid))
    (Memo.group_ids t.memo)

(* --- the four optimization steps (paper §4.1) --- *)

(* A root job that spawns [children] exactly once and finishes when they
   drain. *)
let once children =
  let spawned = ref false in
  fun () ->
    if !spawned then Gpos.Scheduler.Finished
    else begin
      spawned := true;
      Gpos.Scheduler.Wait_for children
    end

let explore t =
  let root = Memo.root t.memo in
  Gpos.Scheduler.run t.sched
    (once
       [
         {
           Gpos.Scheduler.run = exp_group_job t root;
           goal = Some (Printf.sprintf "exp:%d" root);
         };
       ])

let derive_statistics t = Memolib.Memo_stats.derive_all t.memo ~base:t.base

let implement t =
  (* implementation runs on every group so that plan alternatives exist even
     in corners exploration pruned *)
  Gpos.Scheduler.run t.sched
    (once
       (List.map
          (fun gid ->
            {
              Gpos.Scheduler.run = imp_group_job t gid;
              goal = Some (Printf.sprintf "imp:%d" gid);
            })
          (Memo.group_ids t.memo)))

let optimize t (req : Props.req) =
  freeze_group_caches t;
  let root = Memo.root t.memo in
  if t.opt_workers = 1 && t.winner_reuse && not (Gpos.Trace.enabled ()) then
    opt_group_direct t root req
  else
    Gpos.Scheduler.run t.sched_opt
      (once
         [
           {
             Gpos.Scheduler.run = opt_group_job t root req;
             goal = Some (opt_goal root req);
           };
         ]);
  mark_contexts_complete t

(* Full workflow. Returns the best plan for the root request. Each of the
   paper's §4.1 steps is wrapped in an Obs span — free unless a span session
   is active. *)
let run t (req : Props.req) : Expr.plan =
  Obs.Span.with_ ~name:"explore" (fun () -> explore t);
  Obs.Span.with_ ~name:"stats-derive" (fun () -> derive_statistics t);
  Obs.Span.with_ ~name:"implement" (fun () -> implement t);
  Obs.Span.with_ ~name:"costing" (fun () -> optimize t req);
  Obs.Span.with_ ~name:"extract" (fun () ->
      Memolib.Extract.best_plan t.memo (Memo.root t.memo) req)

let scheduler_stats t =
  let c1, r1, g1 = Gpos.Scheduler.stats t.sched in
  let c2, r2, g2 = Gpos.Scheduler.stats t.sched_opt in
  (c1 + c2, r1 + r2, g1 + g2)

let counters t =
  {
    xform_applied = Atomic.get t.counters.a_xform_applied;
    xform_results = Atomic.get t.counters.a_xform_results;
    alternatives_costed = Atomic.get t.counters.a_alternatives_costed;
    contexts_created = Atomic.get t.counters.a_contexts_created;
    prefilter_skips = Atomic.get t.counters.a_prefilter_skips;
    winner_skips = Atomic.get t.counters.a_winner_skips;
    base_reuses = Atomic.get t.counters.a_base_reuses;
    stats_hits = Atomic.get t.counters.a_stats_hits;
  }

(* --- observability snapshots (lib/obs) --- *)

(* Per-rule profile over the engine's rule set; rules that never fired and
   were never skipped are included with zeroes so totals line up. *)
let rule_profile t : Obs.Report.rule_stat list =
  List.map
    (fun (r : Xform.Rule.t) ->
      let rs =
        Option.value
          (Hashtbl.find_opt t.rule_stats r.Xform.Rule.id)
          ~default:
            {
              rs_fired = 0;
              rs_results = 0;
              rs_skipped = 0;
              rs_prefiltered = 0;
              rs_time_ms = 0.0;
            }
      in
      {
        Obs.Report.r_name = r.Xform.Rule.name;
        r_kind =
          (if Xform.Rule.is_exploration r then "explore" else "implement");
        r_fired = rs.rs_fired;
        r_results = rs.rs_results;
        r_skipped = rs.rs_skipped;
        r_prefiltered = rs.rs_prefiltered;
        r_time_ms = rs.rs_time_ms;
      })
    (Xform.Ruleset.rules t.ruleset)

let sched_stat_of label (p : Gpos.Scheduler.profile) : Obs.Report.sched_stat =
  {
    Obs.Report.s_label = label;
    s_workers = p.Gpos.Scheduler.p_workers;
    s_jobs_created = p.Gpos.Scheduler.p_jobs_created;
    s_jobs_run = p.Gpos.Scheduler.p_jobs_run;
    s_jobs_suspended = p.Gpos.Scheduler.p_jobs_suspended;
    s_goal_hits = p.Gpos.Scheduler.p_goal_hits;
    s_max_queue_depth = p.Gpos.Scheduler.p_max_queue_depth;
    s_per_worker_run = p.Gpos.Scheduler.p_per_worker_run;
  }

let sched_profiles t : Obs.Report.sched_stat list =
  [
    sched_stat_of "explore/implement" (Gpos.Scheduler.profile t.sched);
    sched_stat_of "costing" (Gpos.Scheduler.profile t.sched_opt);
  ]

let cost_profile t : Obs.Report.cost_stat =
  {
    Obs.Report.c_op_costings = Atomic.get t.counters.a_op_costings;
    c_enforcer_costings = Atomic.get t.counters.a_enf_costings;
    c_alternatives = Atomic.get t.counters.a_alternatives_costed;
    c_deadline_checks = Atomic.get t.counters.a_deadline_checks;
    c_base_reuses = Atomic.get t.counters.a_base_reuses;
    c_winner_skips = Atomic.get t.counters.a_winner_skips;
  }

(* Growth counters of the engine's Memo, for Obs.Report. *)
let memo_profile t : Obs.Report.memo_stat =
  let p = Memo.profile t.memo in
  {
    Obs.Report.m_groups = Memo.ngroups t.memo;
    m_gexprs = Memo.ngexprs t.memo;
    m_inserts = p.Memo.p_inserts;
    m_dedup_hits = p.Memo.p_dedup_hits;
    m_merges = p.Memo.p_merges;
    m_ctx_created = p.Memo.p_ctx_created;
    m_ctx_cache_hits = p.Memo.p_ctx_hits;
    m_winner_updates = p.Memo.p_winner_updates;
    m_winner_kept = p.Memo.p_winner_kept;
    m_ops_interned = p.Memo.p_ops_interned;
    m_intern_hits = p.Memo.p_intern_hits;
  }

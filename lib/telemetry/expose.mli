(* Exposition: Prometheus text and JSON snapshots, a Prometheus linter,
   a JSON snapshot parser, and the snapshot diff regression sentinel. *)

val to_prometheus : Metrics.snapshot -> string
(** Prometheus text format: # HELP/# TYPE per family, cumulative sparse
    buckets plus le="+Inf", _sum and _count for histograms. *)

val to_json : ?flight:Recorder.entry list -> Metrics.snapshot -> string
(** JSON snapshot: ts, one object per series (histograms carry count,
    sum, p50/p95/p99 and non-cumulative sparse buckets), plus the flight
    recorder entries. Deterministic under [Gpos.Clock.with_fake]. *)

val lint_prometheus : string -> string list
(** Structural validation of a Prometheus text exposition. Checks metric
    name syntax, TYPE declarations preceding samples, non-negative
    counter/histogram values, duplicate series, bucket cumulativeness,
    the +Inf bucket and its agreement with _count. [] means clean. *)

(* -- parsed snapshots and the diff sentinel ------------------------- *)

type flat = {
  f_key : string;  (** name{k="v",...}, labels sorted *)
  f_kind : string;
  f_fields : (string * float) list;
}

type parsed = { p_ts : float; p_metrics : flat list }

val parse_snapshot : string -> (parsed, string) result
(** Parse the output of [to_json] (flight entries are ignored). *)

type check = {
  d_key : string;
  d_field : string;
  d_base : float;
  d_fresh : float;
  d_ok : bool;
  d_note : string;
}

val diff :
  ?tolerance:float ->
  ?overrides:(string * float) list ->
  baseline:parsed ->
  fresh:parsed ->
  unit ->
  check list
(** Compare two snapshots. Counter/gauge values and histogram counts are
    gated both ways within a relative tolerance (default 0.25, absolute
    floor 10); histogram sums and quantiles gate from above only.
    [overrides] maps a metric-key prefix to a different tolerance; a
    metric present in baseline but missing from fresh fails. *)

val diff_ok : check list -> bool
val render_diff : check list -> string

(* The standard Orca metric set, registered once against
   [Metrics.default]. Everything recorded here comes from counters the
   engine/Memo/scheduler already maintain unconditionally (PR 3/4), so
   keeping telemetry always-on costs one [record_query] call per
   optimization — a few dozen atomic adds on the cold path.

   Add-a-metric checklist (see DESIGN.md):
     1. register the handle here with a help string,
     2. bump it from the owning layer (or add a field to [record_query]),
     3. if it should be regression-gated, add it to the suite snapshot
        tolerance table in bin/orca_cli (metrics --diff). *)

let r = Metrics.default

let c name help = Metrics.counter r ~help name
let g name help = Metrics.gauge r ~help name
let h name help = Metrics.histogram r ~help name

(* -- per-query outcomes -------------------------------------------- *)

let queries = c "orca_queries_total" "Queries optimized successfully."
let failures = c "orca_failures_total" "Optimizations that raised an error."

let unsupported =
  c "orca_unsupported_total" "Queries rejected as unsupported (clean reject)."

let opt_ms = h "orca_opt_ms" "Optimization wall time per query (ms)."

(* Per-phase wall time, labeled by phase (parse-bind, preprocess,
   stage:<name>, prov-annotate, ...). Handles memoized per label so the
   recording path does not re-enter the registry lock. *)
let phase_tbl : (string, Metrics.histogram) Hashtbl.t = Hashtbl.create 16
let phase_lock = Mutex.create ()

let phase name =
  Mutex.lock phase_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock phase_lock)
    (fun () ->
      match Hashtbl.find_opt phase_tbl name with
      | Some h -> h
      | None ->
          let h =
            Metrics.histogram r
              ~labels:[ ("phase", name) ]
              ~help:"Wall time per optimization phase (ms)." "orca_phase_ms"
          in
          Hashtbl.replace phase_tbl name h;
          h)

let observe_phase name ms = Metrics.observe (phase name) ms

let time_phase name f =
  let t0 = Gpos.Clock.now () in
  Fun.protect
    ~finally:(fun () -> observe_phase name (Gpos.Clock.ms_since t0))
    f

(* -- Memo growth (winning stage, per query) ------------------------ *)

let memo_groups = c "orca_memo_groups_total" "Memo groups created (winning stage)."
let memo_gexprs = c "orca_memo_gexprs_total" "Group expressions created (winning stage)."
let memo_inserts = c "orca_memo_inserts_total" "Memo insert attempts."
let memo_dedup_hits = c "orca_memo_dedup_hits_total" "Inserts deduplicated against an existing gexpr."
let memo_merges = c "orca_memo_merges_total" "Group merges (duplicate detection)."
let memo_ops_interned = c "orca_memo_ops_interned_total" "Operator payloads hash-consed."
let memo_intern_hits = c "orca_memo_intern_hits_total" "Hash-cons hits (payload already interned)."

(* -- search / rules ------------------------------------------------ *)

let rule_fired = c "orca_rule_fired_total" "Transformation rules applied."
let rule_results = c "orca_rule_results_total" "Alternatives produced by rule applications."
let rule_prefiltered = c "orca_rule_prefiltered_total" "Rule applications skipped by the shape prefilter."
let contexts = c "orca_contexts_total" "Optimization contexts created."
let op_costings = c "orca_op_costings_total" "Operator cost computations."
let enforcer_costings = c "orca_enforcer_costings_total" "Enforcer cost computations."
let alternatives = c "orca_alternatives_total" "Plan alternatives costed."
let deadline_checks = c "orca_deadline_checks_total" "Stage-deadline checks."

(* -- caches (PR 4 speedups) ---------------------------------------- *)

let stats_memo_hits = c "orca_stats_memo_hits_total" "Group stats served from the stats memo."
let base_reuses = c "orca_base_reuses_total" "Base costs reused across contexts."
let winner_skips = c "orca_winner_skips_total" "Costings skipped via winner reuse."
let goal_hits = c "orca_goal_hits_total" "Optimization goals satisfied from the winner cache."

(* -- scheduler ----------------------------------------------------- *)

let jobs_created = c "orca_jobs_created_total" "Scheduler jobs created."
let jobs_run = c "orca_jobs_run_total" "Scheduler jobs run."
let queue_depth_max = g "orca_queue_depth_max" "Deepest scheduler queue observed (max over queries)."
let peak_heap_mb = g "orca_peak_heap_mb" "Largest major-heap footprint observed (MB)."

(* -- flight recorder ----------------------------------------------- *)

let flight_slow = c "orca_flight_slow_total" "Queries over the slow threshold."
let flight_failed = c "orca_flight_failed_total" "Failed optimizations seen by the flight recorder."
let flight_dumps = c "orca_flight_dumps_total" "AMPERe dumps emitted by the flight recorder."

(* -- plan cache / serve loop (lib/server) -------------------------- *)

let plan_cache_hits =
  c "orca_plan_cache_hits_total" "Serve requests answered from the plan cache."

let plan_cache_misses =
  c "orca_plan_cache_misses_total" "Serve requests that required a fresh optimization."

let plan_cache_evictions =
  c "orca_plan_cache_evictions_total" "Plan-cache entries evicted by the LRU bound."

let plan_cache_invalidations =
  c "orca_plan_cache_invalidations_total"
    "Plan-cache entries dropped by explicit catalog/stats invalidation."

let plan_cache_collisions =
  c "orca_plan_cache_collisions_total"
    "Fingerprint collisions detected (same hash, different normalized query)."

let serve_requests = c "orca_serve_requests_total" "Requests fielded by the serve loop."
let serve_errors = c "orca_serve_errors_total" "Serve requests that failed or were rejected."
let serve_ms = h "orca_serve_ms" "End-to-end serve latency per request (ms)."

let serve_sessions =
  c "orca_serve_sessions_total" "Protocol sessions opened against the server."

let sre_events =
  c "orca_sre_events_total" "Structured service events recorded (lib/sre)."

(* -- executor ------------------------------------------------------ *)

let exec_queries = c "orca_exec_queries_total" "Plans executed (simulated cluster)."
let exec_rows_scanned = c "orca_exec_rows_scanned_total" "Rows scanned by executed plans."
let exec_rows_moved = c "orca_exec_rows_moved_total" "Rows moved through motions."
let exec_net_bytes = c "orca_exec_net_bytes_total" "Bytes shipped over the interconnect."
let exec_spill_bytes = c "orca_exec_spill_bytes_total" "Bytes spilled to disk."
let exec_operators = c "orca_exec_operators_total" "Operator instances run."
let exec_subplan_hits = c "orca_exec_subplan_hits_total" "Subplan executions served from cache."
let exec_sim_ms = h "orca_exec_sim_ms" "Simulated execution time per query (ms)."

(* One call per optimized query, tapping the always-on engine counters. *)
let record_query ~opt_time_ms ~groups ~gexprs ~inserts ~dedup_hits ~merges
    ~ops_interned ~intern_hits ~fired ~results ~prefiltered ~ncontexts
    ~nop_costings ~nenforcer_costings ~nalternatives ~ndeadline_checks
    ~nstats_hits ~nbase_reuses ~nwinner_skips ~ngoal_hits ~njobs_created
    ~njobs_run ~max_queue_depth ~heap_mb ~phases =
  Metrics.inc queries;
  Metrics.observe opt_ms opt_time_ms;
  Metrics.add memo_groups groups;
  Metrics.add memo_gexprs gexprs;
  Metrics.add memo_inserts inserts;
  Metrics.add memo_dedup_hits dedup_hits;
  Metrics.add memo_merges merges;
  Metrics.add memo_ops_interned ops_interned;
  Metrics.add memo_intern_hits intern_hits;
  Metrics.add rule_fired fired;
  Metrics.add rule_results results;
  Metrics.add rule_prefiltered prefiltered;
  Metrics.add contexts ncontexts;
  Metrics.add op_costings nop_costings;
  Metrics.add enforcer_costings nenforcer_costings;
  Metrics.add alternatives nalternatives;
  Metrics.add deadline_checks ndeadline_checks;
  Metrics.add stats_memo_hits nstats_hits;
  Metrics.add base_reuses nbase_reuses;
  Metrics.add winner_skips nwinner_skips;
  Metrics.add goal_hits ngoal_hits;
  Metrics.add jobs_created njobs_created;
  Metrics.add jobs_run njobs_run;
  Metrics.gauge_max queue_depth_max (float_of_int max_queue_depth);
  Metrics.gauge_max peak_heap_mb heap_mb;
  List.iter (fun (name, ms) -> observe_phase name ms) phases

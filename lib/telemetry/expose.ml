(* Exposition of metric snapshots: Prometheus text format and JSON, plus
   a Prometheus linter (used by CI), a JSON snapshot parser and the
   [diff] regression sentinel comparing two snapshots with per-metric
   tolerances. *)

(* -- number / string formatting ------------------------------------ *)

(* One deterministic float format shared by both expositions, so a
   snapshot diffed against itself is always clean. NaN/inf never appear
   in valid metric values; map them to 0 to keep the output parseable. *)
let fnum v =
  if Float.is_nan v || Float.abs v = Float.infinity then "0"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let prom_label_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let label_str labels =
  match labels with
  | [] -> ""
  | _ ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (prom_label_escape v))
             labels)
      ^ "}"

(* -- Prometheus text format ---------------------------------------- *)

let kind_str = function
  | Metrics.S_counter _ -> "counter"
  | Metrics.S_gauge _ -> "gauge"
  | Metrics.S_histogram _ -> "histogram"

let to_prometheus (snap : Metrics.snapshot) =
  let buf = Buffer.create 4096 in
  let last_name = ref "" in
  List.iter
    (fun (s : Metrics.sample) ->
      if s.s_name <> !last_name then begin
        last_name := s.s_name;
        Buffer.add_string buf
          (Printf.sprintf "# HELP %s %s\n" s.s_name s.s_help);
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s %s\n" s.s_name (kind_str s.s_value))
      end;
      match s.s_value with
      | Metrics.S_counter v ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %d\n" s.s_name (label_str s.s_labels) v)
      | Metrics.S_gauge v ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" s.s_name (label_str s.s_labels)
               (fnum v))
      | Metrics.S_histogram hs ->
          (* Cumulative counts; only buckets that gained observations are
             emitted (a sparse le set is valid), plus the +Inf bucket. *)
          let cum = ref 0 in
          Array.iteri
            (fun i n ->
              if n > 0 then begin
                cum := !cum + n;
                let labels =
                  s.s_labels @ [ ("le", fnum (Metrics.bucket_upper i)) ]
                in
                Buffer.add_string buf
                  (Printf.sprintf "%s_bucket%s %d\n" s.s_name
                     (label_str labels) !cum)
              end)
            hs.Metrics.hs_buckets;
          let inf_labels = s.s_labels @ [ ("le", "+Inf") ] in
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket%s %d\n" s.s_name (label_str inf_labels)
               hs.Metrics.hs_count);
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" s.s_name (label_str s.s_labels)
               (fnum hs.Metrics.hs_sum));
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" s.s_name (label_str s.s_labels)
               hs.Metrics.hs_count))
    snap.Metrics.samples;
  Buffer.contents buf

(* -- JSON ----------------------------------------------------------- *)

let labels_json labels =
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) ->
           Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
         labels)
  ^ "}"

let sample_json (s : Metrics.sample) =
  let base =
    Printf.sprintf "\"name\":\"%s\",\"labels\":%s" (json_escape s.s_name)
      (labels_json s.s_labels)
  in
  match s.s_value with
  | Metrics.S_counter v ->
      Printf.sprintf "{%s,\"type\":\"counter\",\"value\":%d}" base v
  | Metrics.S_gauge v ->
      Printf.sprintf "{%s,\"type\":\"gauge\",\"value\":%s}" base (fnum v)
  | Metrics.S_histogram hs ->
      let buckets = ref [] in
      Array.iteri
        (fun i n ->
          if n > 0 then
            buckets :=
              Printf.sprintf "[%s,%d]" (fnum (Metrics.bucket_upper i)) n
              :: !buckets)
        hs.Metrics.hs_buckets;
      Printf.sprintf
        "{%s,\"type\":\"histogram\",\"count\":%d,\"sum\":%s,\"p50\":%s,\"p95\":%s,\"p99\":%s,\"buckets\":[%s]}"
        base hs.Metrics.hs_count (fnum hs.Metrics.hs_sum)
        (fnum (Metrics.quantile hs 0.50))
        (fnum (Metrics.quantile hs 0.95))
        (fnum (Metrics.quantile hs 0.99))
        (String.concat "," (List.rev !buckets))

let flight_json (e : Recorder.entry) =
  let phases =
    String.concat ","
      (List.map
         (fun (n, ms) -> Printf.sprintf "[\"%s\",%s]" (json_escape n) (fnum ms))
         e.Recorder.e_phases)
  in
  let error =
    match e.Recorder.e_status with
    | Recorder.Failed msg -> Printf.sprintf ",\"error\":\"%s\"" (json_escape msg)
    | _ -> ""
  in
  let dump =
    match e.Recorder.e_dump with
    | Some p -> Printf.sprintf "\"%s\"" (json_escape p)
    | None -> "null"
  in
  Printf.sprintf
    "{\"seq\":%d,\"ts\":%s,\"label\":\"%s\",\"fingerprint\":\"%s\",\"ms\":%s,\"groups\":%d,\"gexprs\":%d,\"cost\":%s,\"status\":\"%s\"%s,\"phases\":[%s],\"dump\":%s}"
    e.Recorder.e_seq (fnum e.Recorder.e_ts)
    (json_escape e.Recorder.e_label)
    (json_escape e.Recorder.e_fingerprint)
    (fnum e.Recorder.e_ms) e.Recorder.e_groups e.Recorder.e_gexprs
    (fnum e.Recorder.e_cost)
    (Recorder.status_string e.Recorder.e_status)
    error phases dump

let to_json ?(flight = []) (snap : Metrics.snapshot) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "{\"telemetry\":\"orca\",\"ts\":%s,\n \"metrics\":[\n"
       (fnum snap.Metrics.snap_ts));
  Buffer.add_string buf
    (String.concat ",\n"
       (List.map (fun s -> "  " ^ sample_json s) snap.Metrics.samples));
  Buffer.add_string buf "\n ],\n \"flight\":[\n";
  Buffer.add_string buf
    (String.concat ",\n" (List.map (fun e -> "  " ^ flight_json e) flight));
  Buffer.add_string buf "\n ]}\n";
  Buffer.contents buf

(* -- Prometheus linter ---------------------------------------------- *)

(* Structural validation of the text exposition format, run by CI over
   [metrics --suite --prom]. Returns problems; [] means clean. *)

let valid_metric_name n =
  n <> ""
  && (match n.[0] with
     | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
     | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
         | _ -> false)
       n

(* Parse [name{l="v",...} value] -> (name, labels, value). *)
let parse_sample_line line =
  let fail msg = Error msg in
  let n = String.length line in
  let rec name_end i =
    if i < n
       && (match line.[i] with
          | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
          | _ -> false)
    then name_end (i + 1)
    else i
  in
  let ne = name_end 0 in
  if ne = 0 then fail "sample line does not start with a metric name"
  else
    let name = String.sub line 0 ne in
    let labels = ref [] in
    let i = ref ne in
    let ok = ref true in
    let err = ref "" in
    (if !i < n && line.[!i] = '{' then begin
       incr i;
       let fin = ref false in
       while (not !fin) && !ok do
         (* label name *)
         let ls = !i in
         while
           !i < n
           && match line.[!i] with
              | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
              | _ -> false
         do
           incr i
         done;
         if !i = ls then begin
           ok := false;
           err := "empty label name"
         end
         else begin
           let lname = String.sub line ls (!i - ls) in
           if !i + 1 < n && line.[!i] = '=' && line.[!i + 1] = '"' then begin
             i := !i + 2;
             let vbuf = Buffer.create 16 in
             let closed = ref false in
             while (not !closed) && !i < n do
               if line.[!i] = '\\' && !i + 1 < n then begin
                 (match line.[!i + 1] with
                 | 'n' -> Buffer.add_char vbuf '\n'
                 | c -> Buffer.add_char vbuf c);
                 i := !i + 2
               end
               else if line.[!i] = '"' then begin
                 closed := true;
                 incr i
               end
               else begin
                 Buffer.add_char vbuf line.[!i];
                 incr i
               end
             done;
             if not !closed then begin
               ok := false;
               err := "unterminated label value"
             end
             else begin
               labels := (lname, Buffer.contents vbuf) :: !labels;
               if !i < n && line.[!i] = ',' then incr i
               else if !i < n && line.[!i] = '}' then begin
                 incr i;
                 fin := true
               end
               else begin
                 ok := false;
                 err := "expected ',' or '}' after label"
               end
             end
           end
           else begin
             ok := false;
             err := "expected =\"...\" after label name"
           end
         end
       done
     end);
    if not !ok then fail !err
    else if !i >= n || line.[!i] <> ' ' then
      fail "expected a space before the sample value"
    else
      let vstr = String.sub line (!i + 1) (n - !i - 1) in
      let value =
        match String.trim vstr with
        | "+Inf" -> Some Float.infinity
        | "-Inf" -> Some Float.neg_infinity
        | "NaN" -> Some Float.nan
        | v -> float_of_string_opt v
      in
      match value with
      | None -> fail (Printf.sprintf "unparseable sample value %S" vstr)
      | Some v -> Ok (name, List.rev !labels, v)

let lint_prometheus text =
  let problems = ref [] in
  let problem fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  if text = "" then problem "empty exposition"
  else if text.[String.length text - 1] <> '\n' then
    problem "exposition does not end with a newline";
  let lines = String.split_on_char '\n' text in
  let types : (string, string) Hashtbl.t = Hashtbl.create 32 in
  let seen_series : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  (* per (histogram name + labelset sans le): bucket floats in order of
     appearance, plus the _count value, to cross-check cumulativeness *)
  let buckets : (string, (float * float) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let counts : (string, float) Hashtbl.t = Hashtbl.create 16 in
  List.iteri
    (fun lineno line ->
      let lno = lineno + 1 in
      if line = "" then ()
      else if String.length line >= 1 && line.[0] = '#' then begin
        match String.split_on_char ' ' line with
        | "#" :: "TYPE" :: name :: kind :: [] ->
            if not (valid_metric_name name) then
              problem "line %d: invalid metric name %S in TYPE" lno name;
            if
              not
                (List.mem kind
                   [ "counter"; "gauge"; "histogram"; "summary"; "untyped" ])
            then problem "line %d: unknown TYPE %S" lno kind;
            if Hashtbl.mem types name then
              problem "line %d: duplicate TYPE for %s" lno name;
            Hashtbl.replace types name kind
        | "#" :: "TYPE" :: _ -> problem "line %d: malformed TYPE line" lno
        | "#" :: "HELP" :: name :: _ ->
            if not (valid_metric_name name) then
              problem "line %d: invalid metric name %S in HELP" lno name
        | _ -> ()  (* other comments are fine *)
      end
      else
        match parse_sample_line line with
        | Error msg -> problem "line %d: %s" lno msg
        | Ok (name, labels, value) ->
            if not (valid_metric_name name) then
              problem "line %d: invalid metric name %S" lno name;
            (* resolve the declared family: exact, or histogram series *)
            let family =
              if Hashtbl.mem types name then Some name
              else
                let strip suffix =
                  if
                    String.length name > String.length suffix
                    && String.sub name
                         (String.length name - String.length suffix)
                         (String.length suffix)
                       = suffix
                  then
                    let base =
                      String.sub name 0
                        (String.length name - String.length suffix)
                    in
                    if Hashtbl.find_opt types base = Some "histogram" then
                      Some base
                    else None
                  else None
                in
                match strip "_bucket" with
                | Some b -> Some b
                | None -> (
                    match strip "_sum" with
                    | Some b -> Some b
                    | None -> strip "_count")
            in
            (match family with
            | None -> problem "line %d: %s has no preceding # TYPE" lno name
            | Some fam -> (
                let kind = Hashtbl.find types fam in
                if (kind = "counter" || kind = "histogram") && value < 0.0 then
                  problem "line %d: %s kind %s has negative value" lno name
                    kind;
                (* histogram bookkeeping *)
                if kind = "histogram" then
                  let sans_le = List.filter (fun (k, _) -> k <> "le") labels in
                  let skey =
                    fam
                    ^ String.concat ""
                        (List.map
                           (fun (k, v) -> ";" ^ k ^ "=" ^ v)
                           (List.sort compare sans_le))
                  in
                  if name = fam ^ "_bucket" then begin
                    match List.assoc_opt "le" labels with
                    | None ->
                        problem "line %d: %s bucket without le label" lno fam
                    | Some le ->
                        let lef =
                          if le = "+Inf" then Float.infinity
                          else Option.value ~default:Float.nan
                                 (float_of_string_opt le)
                        in
                        if Float.is_nan lef then
                          problem "line %d: unparseable le %S" lno le;
                        let l =
                          match Hashtbl.find_opt buckets skey with
                          | Some l -> l
                          | None ->
                              let l = ref [] in
                              Hashtbl.replace buckets skey l;
                              l
                        in
                        l := (lef, value) :: !l
                  end
                  else if name = fam ^ "_count" then
                    Hashtbl.replace counts skey value));
            (* duplicate series detection *)
            let series =
              name
              ^ String.concat ""
                  (List.map
                     (fun (k, v) -> ";" ^ k ^ "=" ^ v)
                     (List.sort compare labels))
            in
            if Hashtbl.mem seen_series series then
              problem "line %d: duplicate series %s" lno series
            else Hashtbl.replace seen_series series ())
    lines;
  (* cumulative bucket checks *)
  Hashtbl.iter
    (fun skey l ->
      let bs = List.rev !l in
      let rec check prev_le prev_v = function
        | [] -> ()
        | (le, v) :: rest ->
            if le < prev_le then
              problem "%s: bucket le values not increasing" skey;
            if v < prev_v then
              problem "%s: bucket counts not cumulative (le=%s)" skey
                (fnum le);
            check le v rest
      in
      check Float.neg_infinity 0.0 bs;
      match List.rev bs with
      | (le, last) :: _ ->
          if le <> Float.infinity then
            problem "%s: missing le=\"+Inf\" bucket" skey
          else (
            match Hashtbl.find_opt counts skey with
            | Some c when c <> last ->
                problem "%s: +Inf bucket (%s) != _count (%s)" skey (fnum last)
                  (fnum c)
            | _ -> ())
      | [] -> ())
    buckets;
  List.rev !problems

(* -- JSON snapshot parsing ------------------------------------------ *)

(* Minimal JSON reader, just enough for our own [to_json] output (and
   hand-edited baselines). *)

type jv =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_arr of jv list
  | J_obj of (string * jv) list

exception Parse_error of string

let parse_json (s : string) : jv =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %c" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "bad escape"
             else
               match s.[!pos] with
               | 'n' -> Buffer.add_char buf '\n'
               | 't' -> Buffer.add_char buf '\t'
               | 'r' -> Buffer.add_char buf '\r'
               | 'u' ->
                   if !pos + 4 >= n then fail "bad \\u escape"
                   else begin
                     let code =
                       int_of_string ("0x" ^ String.sub s (!pos + 1) 4)
                     in
                     pos := !pos + 4;
                     if code < 128 then Buffer.add_char buf (Char.chr code)
                     else Buffer.add_char buf '?'
                   end
               | c -> Buffer.add_char buf c);
            advance ();
            go ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end"
    | Some '"' -> J_str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          J_obj []
        end
        else begin
          let fields = ref [] in
          let rec go () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                go ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          go ();
          J_obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          J_arr []
        end
        else begin
          let items = ref [] in
          let rec go () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                go ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          go ();
          J_arr (List.rev !items)
        end
    | Some 't' ->
        pos := !pos + 4;
        J_bool true
    | Some 'f' ->
        pos := !pos + 5;
        J_bool false
    | Some 'n' ->
        pos := !pos + 4;
        J_null
    | Some _ ->
        let start = !pos in
        while
          !pos < n
          && match s.[!pos] with
             | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
             | _ -> false
        do
          advance ()
        done;
        if !pos = start then fail "unexpected character"
        else
          J_num
            (Option.value ~default:Float.nan
               (float_of_string_opt (String.sub s start (!pos - start))))
  in
  let v = parse_value () in
  skip_ws ();
  v

(* A parsed snapshot flattened for diffing: one record per series, with
   the numeric fields that can be compared. *)

type flat = {
  f_key : string;  (* name{k="v",...}, labels sorted *)
  f_kind : string;
  f_fields : (string * float) list;
}

type parsed = { p_ts : float; p_metrics : flat list }

let obj_field o k = match o with J_obj fs -> List.assoc_opt k fs | _ -> None

let num_field o k =
  match obj_field o k with Some (J_num v) -> Some v | _ -> None

let str_field o k =
  match obj_field o k with Some (J_str v) -> Some v | _ -> None

let flat_key name labels =
  match labels with
  | [] -> name
  | _ ->
      name ^ "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k v)
             (List.sort compare labels))
      ^ "}"

let parse_snapshot text : (parsed, string) result =
  match parse_json text with
  | exception Parse_error msg -> Error msg
  | j -> (
      match obj_field j "metrics" with
      | Some (J_arr ms) ->
          let ts = Option.value ~default:0.0 (num_field j "ts") in
          let flats =
            List.filter_map
              (fun m ->
                match (str_field m "name", str_field m "type") with
                | Some name, Some kind ->
                    let labels =
                      match obj_field m "labels" with
                      | Some (J_obj fs) ->
                          List.filter_map
                            (fun (k, v) ->
                              match v with
                              | J_str s -> Some (k, s)
                              | _ -> None)
                            fs
                      | _ -> []
                    in
                    let fields =
                      match kind with
                      | "histogram" ->
                          List.filter_map
                            (fun f ->
                              Option.map (fun v -> (f, v)) (num_field m f))
                            [ "count"; "sum"; "p50"; "p95"; "p99" ]
                      | _ ->
                          List.filter_map
                            (fun f ->
                              Option.map (fun v -> (f, v)) (num_field m f))
                            [ "value" ]
                    in
                    Some { f_key = flat_key name labels; f_kind = kind; f_fields = fields }
                | _ -> None)
              ms
          in
          Ok { p_ts = ts; p_metrics = flats }
      | _ -> Error "no \"metrics\" array")

(* -- regression sentinel -------------------------------------------- *)

type check = {
  d_key : string;
  d_field : string;
  d_base : float;
  d_fresh : float;
  d_ok : bool;
  d_note : string;
}

(* Relative slack with an absolute floor of 10, so near-zero baselines do
   not turn into zero-tolerance gates. *)
let slack tolerance base = tolerance *. Float.max (Float.abs base) 10.0

(* [overrides] maps a key prefix to a tolerance; the first match wins.
   Counter/gauge values and histogram counts are gated both ways (they
   are shape metrics); histogram sums and quantiles are latencies and
   gate from above only — faster is never a regression. *)
let diff ?(tolerance = 0.25) ?(overrides = []) ~(baseline : parsed)
    ~(fresh : parsed) () =
  let tol_for key =
    match
      List.find_opt (fun (prefix, _) ->
          String.length key >= String.length prefix
          && String.sub key 0 (String.length prefix) = prefix)
        overrides
    with
    | Some (_, t) -> t
    | None -> tolerance
  in
  let checks = ref [] in
  let push c = checks := c :: !checks in
  List.iter
    (fun b ->
      match
        List.find_opt (fun f -> f.f_key = b.f_key) fresh.p_metrics
      with
      | None ->
          push
            {
              d_key = b.f_key;
              d_field = "presence";
              d_base = 1.0;
              d_fresh = 0.0;
              d_ok = false;
              d_note = "metric missing from fresh snapshot";
            }
      | Some f ->
          let tol = tol_for b.f_key in
          List.iter
            (fun (field, bv) ->
              match List.assoc_opt field f.f_fields with
              | None ->
                  push
                    {
                      d_key = b.f_key;
                      d_field = field;
                      d_base = bv;
                      d_fresh = 0.0;
                      d_ok = false;
                      d_note = "field missing from fresh snapshot";
                    }
              | Some fv ->
                  let upper_only =
                    field = "sum" || field = "p50" || field = "p95"
                    || field = "p99"
                  in
                  let s = slack tol bv in
                  let ok =
                    if upper_only then fv <= bv +. s
                    else Float.abs (fv -. bv) <= s
                  in
                  push
                    {
                      d_key = b.f_key;
                      d_field = field;
                      d_base = bv;
                      d_fresh = fv;
                      d_ok = ok;
                      d_note =
                        (if ok then "ok"
                         else if upper_only then
                           Printf.sprintf "above ceiling %s" (fnum (bv +. s))
                         else
                           Printf.sprintf "outside +/-%s" (fnum s));
                    })
            b.f_fields)
    baseline.p_metrics;
  List.rev !checks

let diff_ok checks = List.for_all (fun c -> c.d_ok) checks

let render_diff checks =
  let buf = Buffer.create 1024 in
  List.iter
    (fun c ->
      if not c.d_ok then
        Buffer.add_string buf
          (Printf.sprintf "FAIL %-48s %-8s base=%s fresh=%s (%s)\n" c.d_key
             c.d_field (fnum c.d_base) (fnum c.d_fresh) c.d_note))
    checks;
  let failed = List.length (List.filter (fun c -> not c.d_ok) checks) in
  Buffer.add_string buf
    (Printf.sprintf "%d checks, %d failed\n" (List.length checks) failed);
  Buffer.contents buf

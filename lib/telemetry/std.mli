(* The standard Orca metric set on [Metrics.default]: handles for every
   always-on pipeline counter, plus [record_query] — the single cold-path
   call lib/core makes per optimized query. *)

val queries : Metrics.counter
val failures : Metrics.counter
val unsupported : Metrics.counter
val opt_ms : Metrics.histogram

val phase : string -> Metrics.histogram
(** Memoized per-label handle for [orca_phase_ms{phase=...}]. *)

val observe_phase : string -> float -> unit

val time_phase : string -> (unit -> 'a) -> 'a
(** Run [f], observing its wall time into the phase histogram (also on
    exceptions). Deterministic under [Gpos.Clock.with_fake]. *)

val memo_groups : Metrics.counter
val memo_gexprs : Metrics.counter
val memo_inserts : Metrics.counter
val memo_dedup_hits : Metrics.counter
val memo_merges : Metrics.counter
val memo_ops_interned : Metrics.counter
val memo_intern_hits : Metrics.counter

val rule_fired : Metrics.counter
val rule_results : Metrics.counter
val rule_prefiltered : Metrics.counter
val contexts : Metrics.counter
val op_costings : Metrics.counter
val enforcer_costings : Metrics.counter
val alternatives : Metrics.counter
val deadline_checks : Metrics.counter

val stats_memo_hits : Metrics.counter
val base_reuses : Metrics.counter
val winner_skips : Metrics.counter
val goal_hits : Metrics.counter

val jobs_created : Metrics.counter
val jobs_run : Metrics.counter
val queue_depth_max : Metrics.gauge
val peak_heap_mb : Metrics.gauge

val flight_slow : Metrics.counter
val flight_failed : Metrics.counter
val flight_dumps : Metrics.counter

(** Plan cache and serve loop (lib/server). *)

val plan_cache_hits : Metrics.counter
val plan_cache_misses : Metrics.counter
val plan_cache_evictions : Metrics.counter
val plan_cache_invalidations : Metrics.counter
val plan_cache_collisions : Metrics.counter
val serve_requests : Metrics.counter
val serve_errors : Metrics.counter
val serve_ms : Metrics.histogram
val serve_sessions : Metrics.counter
val sre_events : Metrics.counter

val exec_queries : Metrics.counter
val exec_rows_scanned : Metrics.counter
val exec_rows_moved : Metrics.counter
val exec_net_bytes : Metrics.counter
val exec_spill_bytes : Metrics.counter
val exec_operators : Metrics.counter
val exec_subplan_hits : Metrics.counter
val exec_sim_ms : Metrics.histogram

val record_query :
  opt_time_ms:float ->
  groups:int ->
  gexprs:int ->
  inserts:int ->
  dedup_hits:int ->
  merges:int ->
  ops_interned:int ->
  intern_hits:int ->
  fired:int ->
  results:int ->
  prefiltered:int ->
  ncontexts:int ->
  nop_costings:int ->
  nenforcer_costings:int ->
  nalternatives:int ->
  ndeadline_checks:int ->
  nstats_hits:int ->
  nbase_reuses:int ->
  nwinner_skips:int ->
  ngoal_hits:int ->
  njobs_created:int ->
  njobs_run:int ->
  max_queue_depth:int ->
  heap_mb:float ->
  phases:(string * float) list ->
  unit

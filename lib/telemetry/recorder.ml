(* Flight recorder: a fixed-size ring buffer of per-query summaries, the
   "black box" for the optimizer-as-a-service north star. Recording one
   entry per optimized query is cold-path (a handful of allocations under
   a mutex); the ring keeps the last [capacity] entries and the total
   count ever recorded.

   The slow-query trigger itself lives in lib/core (Flight) because it
   re-runs the optimizer; this module only holds its configuration — the
   threshold and the AMPERe dump directory — so that lib/exec and bin can
   read the same knobs without depending on lib/core. *)

type status = Ok | Slow | Failed of string

let status_string = function
  | Ok -> "ok"
  | Slow -> "slow"
  | Failed _ -> "failed"

type entry = {
  e_seq : int;                     (* 1-based, monotonically increasing *)
  e_ts : float;                    (* Gpos.Clock.now at record time *)
  e_label : string;
  e_fingerprint : string;
  e_ms : float;
  e_groups : int;
  e_gexprs : int;
  e_cost : float;
  e_phases : (string * float) list;  (* top phase times, largest first *)
  e_status : status;
  e_dump : string option;          (* path of the AMPERe dump, if emitted *)
}

type t = {
  buf : entry option array;
  mutable total : int;
  lock : Mutex.t;
}

let create ?(capacity = 128) () =
  let capacity = max 1 capacity in
  { buf = Array.make capacity None; total = 0; lock = Mutex.create () }

let global = create ()

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let capacity t = Array.length t.buf

let total ?(recorder = global) () = with_lock recorder (fun () -> recorder.total)

let record ?(recorder = global) ~label ~fingerprint ~ms ~groups ~gexprs ~cost
    ~phases ~status ?dump () =
  let ts = Gpos.Clock.now () in
  with_lock recorder (fun () ->
      let seq = recorder.total + 1 in
      let e =
        {
          e_seq = seq;
          e_ts = ts;
          e_label = label;
          e_fingerprint = fingerprint;
          e_ms = ms;
          e_groups = groups;
          e_gexprs = gexprs;
          e_cost = cost;
          e_phases = phases;
          e_status = status;
          e_dump = dump;
        }
      in
      recorder.buf.(recorder.total mod capacity recorder) <- Some e;
      recorder.total <- seq;
      e)

(* Oldest first. *)
let entries ?(recorder = global) () =
  with_lock recorder (fun () ->
      let cap = capacity recorder in
      let n = min recorder.total cap in
      let first = recorder.total - n in
      List.init n (fun i ->
          match recorder.buf.((first + i) mod cap) with
          | Some e -> e
          | None -> assert false))

let clear ?(recorder = global) () =
  with_lock recorder (fun () ->
      Array.fill recorder.buf 0 (Array.length recorder.buf) None;
      recorder.total <- 0)

(* Keep the [n] largest phase timings, largest first — the ring stores
   top-3 so an entry stays small no matter how many stages ran. *)
let top_phases ?(n = 3) phases =
  let sorted =
    List.sort (fun (_, a) (_, b) -> compare (b : float) a) phases
  in
  List.filteri (fun i _ -> i < n) sorted

(* -- slow-query trigger configuration ------------------------------ *)

let slow_threshold : float option ref = ref None
let ampere_dir : string option ref = ref None

let configure ?slow_ms ?dump_dir () =
  (match slow_ms with Some v -> slow_threshold := v | None -> ());
  (match dump_dir with Some v -> ampere_dir := v | None -> ())

let slow_ms () = !slow_threshold
let dump_dir () = !ampere_dir

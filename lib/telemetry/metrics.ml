(* Always-on metrics registry: counters, gauges, log-bucketed histograms.

   Everything here is built to be safe to leave enabled in production
   (ROADMAP item 1, optimizer-as-a-service): the hot-path operations are a
   single saturating [Atomic] add with no allocation — histogram sums are
   kept as fixed-point integers precisely so that [observe] never boxes a
   float. Snapshots, quantiles and merging are cold-path and allocate
   freely.

   Histograms are log-bucketed: bucket [i] covers values in
   (lo * 2^((i-1)/8), lo * 2^(i/8)] with lo = 1e-3. Eight buckets per
   doubling gives a worst-case relative quantile error of 2^(1/16) (~4.4%)
   when quantile estimates use the geometric bucket midpoint, and 256
   buckets span 1e-3 .. ~4.3e6 — microseconds to over an hour when the
   unit is milliseconds. Bucket counts are plain arrays of atomics, so two
   histogram snapshots merge by bucket-wise addition (associative and
   commutative; see test/test_telemetry.ml). *)

(* ------------------------------------------------------------------ *)
(* Bucket geometry                                                     *)

let nbuckets = 256
let buckets_per_doubling = 8
let lo = 1e-3

(* Upper bound of bucket [i]; bucket [nbuckets-1] additionally absorbs
   every larger value. *)
let upper =
  Array.init nbuckets (fun i ->
      lo *. Float.pow 2.0 (float_of_int (i + 1) /. float_of_int buckets_per_doubling))

let bucket_upper i = upper.(i)

(* Smallest [i] with [v <= upper.(i)]. The log2 estimate can be off by one
   either way at bucket boundaries (floating point), so fix up by direct
   comparison — the loops run at most one step in practice. *)
let bucket_of v =
  if Float.is_nan v || v <= upper.(0) then 0
  else if v > upper.(nbuckets - 1) then nbuckets - 1
  else begin
    let i =
      int_of_float
        (Float.log2 (v /. lo) *. float_of_int buckets_per_doubling)
    in
    let i = if i < 0 then 0 else if i > nbuckets - 1 then nbuckets - 1 else i in
    let rec up i = if i < nbuckets - 1 && upper.(i) < v then up (i + 1) else i in
    let rec down i = if i > 0 && upper.(i - 1) >= v then down (i - 1) else i in
    down (up i)
  end

(* ------------------------------------------------------------------ *)
(* Primitive values                                                    *)

type counter = int Atomic.t

(* Saturating add: a counter never wraps to negative, it pins at
   [max_int] (tested in test_telemetry). *)
let rec sat_add (c : counter) d =
  if d > 0 then begin
    let cur = Atomic.get c in
    let next = if cur > max_int - d then max_int else cur + d in
    if not (Atomic.compare_and_set c cur next) then sat_add c d
  end

let inc c = sat_add c 1
let add c d = sat_add c d
let counter_value c = Atomic.get c

(* Gauges hold a float and are set/maxed off the hot path (once per query
   at most), so the boxed [Atomic.set] is acceptable. *)
type gauge = float Atomic.t

let set (g : gauge) v = Atomic.set g v

let rec gauge_max (g : gauge) v =
  let cur = Atomic.get g in
  if v > cur && not (Atomic.compare_and_set g cur v) then gauge_max g v

let gauge_value (g : gauge) = Atomic.get g

(* Histogram sums are fixed-point (1e-6 resolution) so [observe] is two
   saturating int adds and one array increment — no allocation. *)
let fp_scale = 1e6

type histogram = {
  h_counts : int Atomic.t array;  (* length nbuckets, per-bucket counts *)
  h_count : counter;
  h_sum_fp : counter;             (* sum in fixed-point units *)
}

let observe h v =
  if not (Float.is_nan v) then begin
    let v = if v < 0.0 then 0.0 else v in
    sat_add h.h_counts.(bucket_of v) 1;
    sat_add h.h_count 1;
    sat_add h.h_sum_fp (int_of_float (v *. fp_scale))
  end

(* ------------------------------------------------------------------ *)
(* Histogram snapshots: merge and quantiles                            *)

type hsnap = {
  hs_count : int;
  hs_sum : float;
  hs_buckets : int array;  (* length nbuckets, non-cumulative *)
}

let hsnap h =
  {
    hs_count = Atomic.get h.h_count;
    hs_sum = float_of_int (Atomic.get h.h_sum_fp) /. fp_scale;
    hs_buckets = Array.map Atomic.get h.h_counts;
  }

let empty_hsnap =
  { hs_count = 0; hs_sum = 0.0; hs_buckets = Array.make nbuckets 0 }

let sat_int a b = if a > max_int - b then max_int else a + b

let merge a b =
  {
    hs_count = sat_int a.hs_count b.hs_count;
    hs_sum = a.hs_sum +. b.hs_sum;
    hs_buckets = Array.init nbuckets (fun i -> sat_int a.hs_buckets.(i) b.hs_buckets.(i));
  }

(* Representative value of bucket [i]: the geometric midpoint, which
   bounds the relative error against any point in the bucket by
   2^(1/(2*buckets_per_doubling)). The first and last buckets are open,
   so their bound is the honest representative. *)
let bucket_value i =
  if i = 0 then upper.(0)
  else if i = nbuckets - 1 then upper.(nbuckets - 1)
  else sqrt (upper.(i - 1) *. upper.(i))

(* Quantile by rank walk: value of the bucket holding the ceil(q*n)-th
   smallest observation. Monotone in [q] by construction. *)
let quantile s q =
  if s.hs_count = 0 then 0.0
  else begin
    let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
    let rank =
      let r = int_of_float (Float.ceil (q *. float_of_int s.hs_count)) in
      if r < 1 then 1 else r
    in
    let rec walk i cum =
      if i >= nbuckets then bucket_value (nbuckets - 1)
      else
        let cum = cum + s.hs_buckets.(i) in
        if cum >= rank then bucket_value i else walk (i + 1) cum
    in
    walk 0 0
  end

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)

type vsnap = S_counter of int | S_gauge of float | S_histogram of hsnap

type sample = {
  s_name : string;
  s_help : string;
  s_labels : (string * string) list;
  s_value : vsnap;
}

type snapshot = { snap_ts : float; samples : sample list }

type value = V_counter of counter | V_gauge of gauge | V_histogram of histogram

type entry = {
  m_name : string;
  m_help : string;
  m_labels : (string * string) list;
  m_value : value;
}

type t = { tbl : (string, entry) Hashtbl.t; lock : Mutex.t }

let create () = { tbl = Hashtbl.create 64; lock = Mutex.create () }

let default = create ()

let key name labels =
  let labels = List.sort compare labels in
  name
  ^ String.concat "" (List.map (fun (k, v) -> "\x00" ^ k ^ "\x01" ^ v) labels)

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Registration is idempotent: the same (name, labels) returns the
   existing handle; re-registering under a different kind is a bug. *)
let register t ~labels ~help name mk classify =
  with_lock t (fun () ->
      let k = key name labels in
      match Hashtbl.find_opt t.tbl k with
      | Some e -> (
          match classify e.m_value with
          | Some v -> v
          | None ->
              Gpos.Gpos_error.internal
                "telemetry: %s re-registered with a different kind" name)
      | None ->
          let v = mk () in
          Hashtbl.replace t.tbl k
            {
              m_name = name;
              m_help = help;
              m_labels = List.sort compare labels;
              m_value = v;
            };
          match classify v with
          | Some v -> v
          | None -> assert false)

let counter t ?(labels = []) ~help name =
  register t ~labels ~help name
    (fun () -> V_counter (Atomic.make 0))
    (function V_counter c -> Some c | _ -> None)

let gauge t ?(labels = []) ~help name =
  register t ~labels ~help name
    (fun () -> V_gauge (Atomic.make 0.0))
    (function V_gauge g -> Some g | _ -> None)

let histogram t ?(labels = []) ~help name =
  register t ~labels ~help name
    (fun () ->
      V_histogram
        {
          h_counts = Array.init nbuckets (fun _ -> Atomic.make 0);
          h_count = Atomic.make 0;
          h_sum_fp = Atomic.make 0;
        })
    (function V_histogram h -> Some h | _ -> None)

(* Zero every value in place. Handles held by callers (lib/core's Std
   bindings) stay valid — essential for deterministic tests. *)
let reset t =
  with_lock t (fun () ->
      Hashtbl.iter
        (fun _ e ->
          match e.m_value with
          | V_counter c -> Atomic.set c 0
          | V_gauge g -> Atomic.set g 0.0
          | V_histogram h ->
              Array.iter (fun a -> Atomic.set a 0) h.h_counts;
              Atomic.set h.h_count 0;
              Atomic.set h.h_sum_fp 0)
        t.tbl)

(* Samples sorted by (name, labels) so exposition is deterministic no
   matter the registration order. *)
let snapshot t =
  let samples =
    with_lock t (fun () ->
        Hashtbl.fold
          (fun _ e acc ->
            let v =
              match e.m_value with
              | V_counter c -> S_counter (Atomic.get c)
              | V_gauge g -> S_gauge (Atomic.get g)
              | V_histogram h -> S_histogram (hsnap h)
            in
            {
              s_name = e.m_name;
              s_help = e.m_help;
              s_labels = e.m_labels;
              s_value = v;
            }
            :: acc)
          t.tbl [])
  in
  let samples =
    List.sort
      (fun a b ->
        match compare a.s_name b.s_name with
        | 0 -> compare a.s_labels b.s_labels
        | c -> c)
      samples
  in
  { snap_ts = Gpos.Clock.now (); samples }

(* ------------------------------------------------------------------ *)
(* Query fingerprinting                                                *)

(* Normalize a query text (literals -> '?', case-folded, whitespace
   collapsed) and hash it with 64-bit FNV-1a. Two invocations of the same
   query shape share a fingerprint, which is what the flight recorder
   keys its summaries on. *)
let fingerprint text =
  let buf = Buffer.create (String.length text) in
  let n = String.length text in
  let is_ident c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_'
  in
  let rec go i prev_ident prev_space =
    if i >= n then ()
    else
      let c = text.[i] in
      if c = '\'' || c = '"' then begin
        (* string literal: skip to the closing quote (or end) *)
        let rec skip j =
          if j >= n then n else if text.[j] = c then j + 1 else skip (j + 1)
        in
        Buffer.add_char buf '?';
        go (skip (i + 1)) false false
      end
      else if c >= '0' && c <= '9' && not prev_ident then begin
        let rec skip j =
          if j < n && ((text.[j] >= '0' && text.[j] <= '9') || text.[j] = '.')
          then skip (j + 1)
          else j
        in
        Buffer.add_char buf '?';
        go (skip i) false false
      end
      else if c = ' ' || c = '\t' || c = '\n' || c = '\r' then begin
        if not prev_space then Buffer.add_char buf ' ';
        go (i + 1) false true
      end
      else begin
        Buffer.add_char buf (Char.lowercase_ascii c);
        go (i + 1) (is_ident c) false
      end
  in
  go 0 false true;
  let s = Buffer.contents buf in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  Printf.sprintf "%016Lx" !h

(* Flight recorder: fixed-size ring buffer of per-query summaries plus
   the slow-query trigger configuration (threshold + AMPERe dump dir).
   The trigger logic itself lives in lib/core (Flight). *)

type status = Ok | Slow | Failed of string

val status_string : status -> string

type entry = {
  e_seq : int;                     (** 1-based, monotonically increasing *)
  e_ts : float;                    (** [Gpos.Clock.now] at record time *)
  e_label : string;
  e_fingerprint : string;
  e_ms : float;
  e_groups : int;
  e_gexprs : int;
  e_cost : float;
  e_phases : (string * float) list;  (** top phase times, largest first *)
  e_status : status;
  e_dump : string option;          (** path of the AMPERe dump, if any *)
}

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 128. *)

val global : t
(** The process-wide recorder the optimizer records into. *)

val capacity : t -> int

val total : ?recorder:t -> unit -> int
(** Entries ever recorded (>= length of [entries]). *)

val record :
  ?recorder:t ->
  label:string ->
  fingerprint:string ->
  ms:float ->
  groups:int ->
  gexprs:int ->
  cost:float ->
  phases:(string * float) list ->
  status:status ->
  ?dump:string ->
  unit ->
  entry

val entries : ?recorder:t -> unit -> entry list
(** Retained entries, oldest first. *)

val clear : ?recorder:t -> unit -> unit

val top_phases : ?n:int -> (string * float) list -> (string * float) list
(** The [n] (default 3) largest phase timings, largest first. *)

val configure : ?slow_ms:float option -> ?dump_dir:string option -> unit -> unit
(** Set the slow-query threshold (ms; [None] disables, the default) and
    the directory AMPERe dumps of slow/failed queries are written to
    ([None] disables dump emission, the default). *)

val slow_ms : unit -> float option
val dump_dir : unit -> string option

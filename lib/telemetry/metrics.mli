(* Always-on metrics registry: counters, gauges, log-bucketed histograms.

   Hot-path operations ([inc]/[add]/[observe]) are lock-free saturating
   atomic adds with no allocation; snapshots, quantiles and merging are
   cold-path. See DESIGN.md "Telemetry & metrics". *)

(* -- histogram bucket geometry ------------------------------------- *)

val nbuckets : int
(** Number of log buckets (256: eight per doubling from 1e-3). *)

val bucket_upper : int -> float
(** Upper bound of bucket [i]; the last bucket absorbs larger values. *)

val bucket_of : float -> int
(** Index of the bucket a value lands in (clamped; NaN -> bucket 0). *)

(* -- primitive values ---------------------------------------------- *)

type counter
type gauge
type histogram

val inc : counter -> unit
val add : counter -> int -> unit
(** Saturating: counters pin at [max_int], never wrap. Negative deltas
    are ignored. *)

val counter_value : counter -> int

val set : gauge -> float -> unit
val gauge_max : gauge -> float -> unit
val gauge_value : gauge -> float

val observe : histogram -> float -> unit
(** One bucket increment plus two fixed-point adds; no allocation.
    Negative values clamp to 0, NaN is dropped. *)

(* -- histogram snapshots ------------------------------------------- *)

type hsnap = {
  hs_count : int;
  hs_sum : float;
  hs_buckets : int array;  (** length [nbuckets], non-cumulative *)
}

val hsnap : histogram -> hsnap
val empty_hsnap : hsnap

val merge : hsnap -> hsnap -> hsnap
(** Bucket-wise saturating addition: associative and commutative, so
    per-worker or per-segment histograms aggregate in any order. *)

val quantile : hsnap -> float -> float
(** [quantile s q] estimates the q-quantile (q in [0,1]) as the
    representative value of the bucket holding the ceil(q*n)-th smallest
    observation. Monotone in [q]; relative rank error bounded by
    2^(1/16) (~4.4%) for values inside the bucket range. Returns 0 on an
    empty histogram. *)

val bucket_value : int -> float
(** Representative (geometric midpoint) value of bucket [i]. *)

(* -- registry ------------------------------------------------------- *)

type t

val create : unit -> t

val default : t
(** The process-wide registry all of Orca's standard metrics live in. *)

val counter : t -> ?labels:(string * string) list -> help:string -> string -> counter
val gauge : t -> ?labels:(string * string) list -> help:string -> string -> gauge
val histogram : t -> ?labels:(string * string) list -> help:string -> string -> histogram
(** Registration is idempotent: the same (name, labels) returns the
    existing handle. Re-registering under a different kind raises. *)

val reset : t -> unit
(** Zero every value in place; existing handles stay valid. *)

(* -- snapshots ------------------------------------------------------ *)

type vsnap = S_counter of int | S_gauge of float | S_histogram of hsnap

type sample = {
  s_name : string;
  s_help : string;
  s_labels : (string * string) list;
  s_value : vsnap;
}

type snapshot = { snap_ts : float; samples : sample list }

val snapshot : t -> snapshot
(** Samples sorted by (name, labels); [snap_ts] comes from [Gpos.Clock]
    so snapshots are deterministic under [Clock.with_fake]. *)

(* -- query fingerprinting ------------------------------------------ *)

val fingerprint : string -> string
(** 64-bit FNV-1a hex digest of the normalized query text (literals
    replaced by '?', case-folded, whitespace collapsed): the flight
    recorder's key for "same query shape". *)

(** Execution metrics: measured work and the simulated elapsed time derived
    from it. Operators act as loose barriers — each contributes the maximum
    of its per-segment work to elapsed time, so skew and serial bottlenecks
    (work funneled through the master) show up exactly as on a real
    cluster. *)

type t = {
  nsegs : int;
  mutable sim_seconds : float;           (** simulated elapsed time *)
  mutable rows_scanned : float;
  mutable rows_moved : float;            (** rows crossing the interconnect *)
  mutable net_bytes : float;
  mutable spill_bytes : float;
  mutable subplan_executions : int;      (** distinct SubPlan evaluations *)
  mutable subplan_cache_hits : int;      (** repeated (memoized) evaluations *)
  mutable peak_state_bytes : float;      (** largest operator state seen *)
  mutable operators_run : int;
  mutable partitions_pruned_dynamically : int;
}

val create : int -> t

val charge_max : t -> float array -> unit
(** Charge one operator's elapsed time: the slowest segment's work. *)

val charge : t -> float -> unit
val note_state : t -> float -> unit

val to_string : t -> string
(** One-line rendering of every counter, including spill, peak operator
    state and dynamically pruned partitions. *)

val to_kv : t -> (string * float) list
(** Key/value view for the observability report ({!Obs.Report} [exec]
    field); peak_state_bytes is a high-water mark, the rest are sums. *)

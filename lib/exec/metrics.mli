(** Execution metrics: measured work and the simulated elapsed time derived
    from it. Operators act as loose barriers — each contributes the maximum
    of its per-segment work to elapsed time, so skew and serial bottlenecks
    (work funneled through the master) show up exactly as on a real
    cluster. *)

type t = {
  nsegs : int;
  mutable sim_seconds : float;           (** simulated elapsed time *)
  mutable rows_scanned : float;
  mutable rows_moved : float;            (** rows crossing the interconnect *)
  mutable net_bytes : float;
  mutable spill_bytes : float;
  mutable subplan_executions : int;      (** distinct SubPlan evaluations *)
  mutable subplan_cache_hits : int;      (** repeated (memoized) evaluations *)
  mutable peak_state_bytes : float;      (** largest operator state seen *)
  mutable operators_run : int;
  mutable partitions_pruned_dynamically : int;
  per_node_rows : (int, float) Hashtbl.t;
      (** actual rows produced per plan node, keyed by the node's stable
          preorder id ({!Ir.Plan_ops.number}); accumulates across rescans *)
}

val create : int -> t

val charge_max : t -> float array -> unit
(** Charge one operator's elapsed time: the slowest segment's work. *)

val charge : t -> float -> unit
val note_state : t -> float -> unit

val note_node_rows : t -> int -> float -> unit
(** Add to a plan node's actual row count (accumulates across rescans). *)

val node_rows : t -> (int * float) list
(** Per-node actual rows, sorted by node id. *)

val to_string : t -> string
(** One-line rendering of every counter, including spill, peak operator
    state and dynamically pruned partitions. *)

val to_kv : t -> (string * float) list
(** Key/value view for the observability report ({!Obs.Report} [exec]
    field); peak_state_bytes is a high-water mark, the rest are sums.
    Includes one ["node_rows.<id>"] entry per executed plan node (stable
    preorder ids), so the accuracy join (lib/prov) needs no access to
    executor internals. *)

(** Row-level interpreter for physical plans over the simulated cluster.

    Motions move rows between segments for real, so co-location mistakes
    surface as wrong results (caught by differential tests), and measured
    work is converted into simulated elapsed time (see {!Machine} and
    {!Metrics}). Correlated SubPlan scalars (legacy Planner plans) are
    re-executed per distinct parameter binding, with each logical
    re-execution charged its full simulated cost. *)

open Ir

type mode =
  | Spill_to_disk  (** GPDB-style: over-budget operators spill (cost only) *)
  | Fail_on_oom    (** Impala/Presto-style: over-budget operators abort *)

type ctx = {
  cluster : Cluster.t;
  metrics : Metrics.t;
  mode : mode;
  dpe : bool;
      (** dynamic partition elimination: a hash join over a range-partitioned
          probe-side scan skips partitions that cannot contain the build
          side's observed key values (paper §7.2.2, simplified from its
          reference [2]). Inner and semi joins only. *)
  cte : (int, Datum.t array list array) Hashtbl.t;
  subplan_cache : (string, Datum.t array list * float) Hashtbl.t;
  observe : (Expr.plan -> rows:float -> sim_s:float -> unit) option;
      (** per-operator hook, called after each operator evaluates with its
          actual output row count (summed over segments) and its inclusive
          simulated time — the data behind [explain --analyze]. Called with
          the ORIGINAL plan node even when dynamic partition elimination
          evaluated a restricted copy of the subtree, so callers may join on
          node identity. *)
  mutable node_ids : (Expr.plan * int) list;
      (** plan node (by physical identity) -> stable preorder id
          ({!Ir.Plan_ops.number}); set by [run], drives the per-node actual
          row counts in {!Metrics.node_rows} *)
  mutable dpe_aliases : (Expr.plan * Expr.plan) list;
      (** DPE-restricted copies of scan subtrees, mapped back to the node
          each was copied from *)
}

val create_ctx :
  ?mode:mode ->
  ?dpe:bool ->
  ?observe:(Expr.plan -> rows:float -> sim_s:float -> unit) ->
  Cluster.t ->
  ctx

val eval : ctx -> params:Datum.t Colref.Map.t -> Expr.plan -> Datum.t array list array
(** Evaluate a plan, returning each segment's output rows. [params] supplies
    correlation-parameter bindings for SubPlan evaluation (usually empty). *)

val run :
  ?mode:mode ->
  ?dpe:bool ->
  ?observe:(Expr.plan -> rows:float -> sim_s:float -> unit) ->
  Cluster.t ->
  Expr.plan ->
  Datum.t array list * Metrics.t
(** Evaluate a complete plan (expected to deliver a Singleton result) and
    return the result rows with the collected execution metrics.
    Raises [Gpos_error.Error Out_of_memory] in [Fail_on_oom] mode when any
    operator's state exceeds the cluster's per-segment budget. *)

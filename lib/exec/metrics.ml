(* Execution metrics: measured work and the simulated elapsed time derived
   from it. Operators act as loose barriers: each contributes the maximum of
   its per-segment work to elapsed time, so skew and serial bottlenecks (work
   funneled through the master) show up exactly as they would on a real
   cluster. *)

type t = {
  nsegs : int;
  mutable sim_seconds : float;
  mutable rows_scanned : float;
  mutable rows_moved : float;
  mutable net_bytes : float;
  mutable spill_bytes : float;
  mutable subplan_executions : int;
  mutable subplan_cache_hits : int;
  mutable peak_state_bytes : float;
  mutable operators_run : int;
  mutable partitions_pruned_dynamically : int;
  per_node_rows : (int, float) Hashtbl.t;
      (* actual rows produced per plan node, keyed by the node's stable
         preorder id (Ir.Plan_ops.number); accumulates across rescans *)
}

let create nsegs =
  {
    nsegs;
    sim_seconds = 0.0;
    rows_scanned = 0.0;
    rows_moved = 0.0;
    net_bytes = 0.0;
    spill_bytes = 0.0;
    subplan_executions = 0;
    subplan_cache_hits = 0;
    peak_state_bytes = 0.0;
    operators_run = 0;
    partitions_pruned_dynamically = 0;
    per_node_rows = Hashtbl.create 64;
  }

(* Charge the elapsed time of one operator: the slowest segment's work. *)
let charge_max t (per_seg : float array) =
  let m = Array.fold_left Float.max 0.0 per_seg in
  t.sim_seconds <- t.sim_seconds +. m

let charge t seconds = t.sim_seconds <- t.sim_seconds +. seconds

let note_state t bytes =
  if bytes > t.peak_state_bytes then t.peak_state_bytes <- bytes

let note_node_rows t node_id rows =
  let prev =
    Option.value ~default:0.0 (Hashtbl.find_opt t.per_node_rows node_id)
  in
  Hashtbl.replace t.per_node_rows node_id (prev +. rows)

let node_rows t =
  Hashtbl.fold (fun id rows acc -> (id, rows) :: acc) t.per_node_rows []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let to_string t =
  Printf.sprintf
    "sim=%.4fs ops=%d scanned=%.0f moved=%.0f net=%.0fB spill=%.0fB \
     subplans=%d(+%d cached) peak_state=%.0fB parts_pruned=%d"
    t.sim_seconds t.operators_run t.rows_scanned t.rows_moved t.net_bytes
    t.spill_bytes t.subplan_executions t.subplan_cache_hits t.peak_state_bytes
    t.partitions_pruned_dynamically

(* Key/value view for the observability report ([Obs.Report.exec]): lib/obs
   depends on nothing above gpos, so metrics cross as generic pairs. *)
let to_kv t =
  [
    ("sim_seconds", t.sim_seconds);
    ("rows_scanned", t.rows_scanned);
    ("rows_moved", t.rows_moved);
    ("net_bytes", t.net_bytes);
    ("spill_bytes", t.spill_bytes);
    ("subplan_executions", float_of_int t.subplan_executions);
    ("subplan_cache_hits", float_of_int t.subplan_cache_hits);
    ("peak_state_bytes", t.peak_state_bytes);
    ("operators_run", float_of_int t.operators_run);
    ( "partitions_pruned_dynamically",
      float_of_int t.partitions_pruned_dynamically );
  ]
  (* per-node actual row counts, keyed by stable plan-node ids, so the
     accuracy join (lib/prov) reads them here instead of re-walking executor
     internals *)
  @ List.map
      (fun (id, rows) -> (Printf.sprintf "node_rows.%d" id, rows))
      (node_rows t)

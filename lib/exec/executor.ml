open Ir

(* Row-level interpreter for physical plans over the simulated cluster.

   Every operator transforms per-segment row sets; motions move rows between
   segments for real, so row counts, duplicates, skew and co-location
   mistakes surface as actual wrong work (and wrong results, caught by
   tests). Each operator charges measured work to the metrics, from which
   simulated elapsed time is derived (see Machine).

   Memory behaviour is configurable: [Spill_to_disk] (GPDB-like) charges
   spill I/O when an operator's state exceeds the per-segment budget;
   [Fail_on_oom] (Impala/Presto-like, paper §7.3.2) raises Out_of_memory. *)

type mode = Spill_to_disk | Fail_on_oom

type ctx = {
  cluster : Cluster.t;
  metrics : Metrics.t;
  mode : mode;
  dpe : bool; (* dynamic partition elimination in hash joins *)
  cte : (int, Datum.t array list array) Hashtbl.t;
  subplan_cache : (string, Datum.t array list * float) Hashtbl.t;
  observe : (Expr.plan -> rows:float -> sim_s:float -> unit) option;
      (* per-operator hook: actual output rows and inclusive simulated time
         (EXPLAIN ANALYZE); None costs nothing on the eval path *)
  mutable node_ids : (Expr.plan * int) list;
      (* plan node (by physical identity) -> stable preorder id
         (Plan_ops.number); set by [run], drives per-node actuals *)
  mutable dpe_aliases : (Expr.plan * Expr.plan) list;
      (* DPE builds restricted copies of scan subtrees; aliases map each
         copy back to the original node so actuals and observe calls
         attribute to the plan the optimizer produced *)
}

let create_ctx ?(mode = Spill_to_disk) ?(dpe = true) ?observe
    (cluster : Cluster.t) : ctx =
  {
    cluster;
    metrics = Metrics.create cluster.Cluster.nsegs;
    mode;
    dpe;
    cte = Hashtbl.create 8;
    subplan_cache = Hashtbl.create 64;
    observe;
    node_ids = [];
    dpe_aliases = [];
  }

let mach ctx = ctx.cluster.Cluster.machine

(* Environment resolving columns positionally in [schema], falling back to
   correlation [params]. *)
let env_of ~(params : Datum.t Colref.Map.t) (schema : Colref.t list)
    (row : Datum.t array) : Scalar_eval.env =
  let positions = Array.of_list schema in
  fun col ->
    let rec find i =
      if i >= Array.length positions then
        match Colref.Map.find_opt col params with
        | Some d -> d
        | None ->
            Gpos.Gpos_error.raise_error Gpos.Gpos_error.Exec_error
              "unbound column %s at execution" (Colref.to_string col)
      else if Colref.equal positions.(i) col then row.(i)
      else find (i + 1)
    in
    find 0

let key_string (ds : Datum.t list) =
  String.concat "\x00" (List.map Datum.serialize ds)

(* The distribution a plan subtree delivers, recomputed from operator
   semantics. Used to recognize replicated inputs (which contribute a single
   copy to motions) and singleton streams. *)
let delivered_dist (p : Expr.plan) : Props.dist =
  let rec go p = Physical_ops.derive p.Expr.pop (List.map go p.Expr.pchildren) in
  (go p).Props.ddist

let rows_bytes rows =
  List.fold_left (fun acc r -> acc +. float_of_int (Cluster.row_bytes r)) 0.0 rows

let check_memory ctx bytes ~stream_bytes =
  Metrics.note_state ctx.metrics bytes;
  if bytes > ctx.cluster.Cluster.mem_per_seg then begin
    match ctx.mode with
    | Fail_on_oom ->
        raise
          (Gpos.Gpos_error.Error
             ( Gpos.Gpos_error.Out_of_memory,
               Printf.sprintf "operator state %.0f bytes exceeds budget %.0f"
                 bytes ctx.cluster.Cluster.mem_per_seg ))
    | Spill_to_disk ->
        let spilled = bytes +. stream_bytes in
        ctx.metrics.Metrics.spill_bytes <-
          ctx.metrics.Metrics.spill_bytes +. spilled;
        Metrics.charge ctx.metrics (spilled *. (mach ctx).Machine.spill_byte)
  end

(* --- aggregation --- *)

type agg_state = {
  mutable a_rows : int; (* rows seen, for COUNT-star *)
  mutable a_count : int; (* non-null args *)
  mutable a_sum : Datum.t;
  mutable a_min : Datum.t;
  mutable a_max : Datum.t;
  mutable a_distinct : (string, unit) Hashtbl.t option;
}

let new_agg_state (a : Expr.agg) =
  {
    a_rows = 0;
    a_count = 0;
    a_sum = Datum.Null;
    a_min = Datum.Null;
    a_max = Datum.Null;
    a_distinct = (if a.Expr.agg_distinct then Some (Hashtbl.create 8) else None);
  }

let agg_accumulate (a : Expr.agg) (st : agg_state) (arg : Datum.t) =
  st.a_rows <- st.a_rows + 1;
  if not (Datum.is_null arg) then begin
    let fresh =
      match st.a_distinct with
      | None -> true
      | Some tbl ->
          let k = Datum.serialize arg in
          if Hashtbl.mem tbl k then false
          else begin
            Hashtbl.replace tbl k ();
            true
          end
    in
    if fresh then begin
      st.a_count <- st.a_count + 1;
      (match a.Expr.agg_kind with
      | Expr.Sum ->
          st.a_sum <-
            (if Datum.is_null st.a_sum then arg
             else Datum.arith `Add st.a_sum arg)
      | _ -> ());
      if Datum.is_null st.a_min || Datum.compare arg st.a_min < 0 then
        st.a_min <- arg;
      if Datum.is_null st.a_max || Datum.compare arg st.a_max > 0 then
        st.a_max <- arg
    end
  end

let agg_finish (a : Expr.agg) (st : agg_state) : Datum.t =
  match a.Expr.agg_kind with
  | Expr.Count_star -> Datum.Int st.a_rows
  | Expr.Count -> Datum.Int st.a_count
  | Expr.Sum -> st.a_sum
  | Expr.Min -> st.a_min
  | Expr.Max -> st.a_max

(* --- the interpreter --- *)

(* DPE-rewritten records resolve back to the node they were copied from. *)
let rec resolve_original (ctx : ctx) (p : Expr.plan) : Expr.plan =
  match List.find_opt (fun (copy, _) -> copy == p) ctx.dpe_aliases with
  | Some (_, orig) -> resolve_original ctx orig
  | None -> p

let node_id (ctx : ctx) (p : Expr.plan) : int option =
  List.find_opt (fun (n, _) -> n == p) ctx.node_ids |> Option.map snd

let rec eval (ctx : ctx) ~(params : Datum.t Colref.Map.t) (p : Expr.plan) :
    Datum.t array list array =
  ctx.metrics.Metrics.operators_run <- ctx.metrics.Metrics.operators_run + 1;
  match (ctx.observe, ctx.node_ids) with
  | None, [] -> eval_node ctx ~params p
  | observe, _ ->
      let t0 = ctx.metrics.Metrics.sim_seconds in
      let segs = eval_node ctx ~params p in
      let rows =
        Array.fold_left (fun acc l -> acc + List.length l) 0 segs
      in
      let orig = resolve_original ctx p in
      (match node_id ctx orig with
      | Some id -> Metrics.note_node_rows ctx.metrics id (float_of_int rows)
      | None -> ());
      (match observe with
      | Some f ->
          f orig ~rows:(float_of_int rows)
            ~sim_s:(ctx.metrics.Metrics.sim_seconds -. t0)
      | None -> ());
      segs

and eval_node (ctx : ctx) ~(params : Datum.t Colref.Map.t) (p : Expr.plan) :
    Datum.t array list array =
  let nsegs = ctx.cluster.Cluster.nsegs in
  let m = mach ctx in
  let child n = List.nth p.Expr.pchildren n in
  let child_schema n = (child n).Expr.pschema in
  let eval_scalar schema row s =
    Scalar_eval.eval ~subplan:(subplan_exec ctx params) (env_of ~params schema row) s
  in
  let eval_pred schema row s =
    match eval_scalar schema row s with Datum.Bool true -> true | _ -> false
  in
  let charge_rows segs per_row =
    Metrics.charge_max ctx.metrics
      (Array.map (fun rows -> float_of_int (List.length rows) *. per_row) segs)
  in
  match p.Expr.pop with
  | Expr.P_table_scan (td, parts, filter) ->
      let data = Cluster.table ctx.cluster td.Table_desc.name in
      let part_keep =
        match (parts, td.Table_desc.part_col) with
        | Some kept, Some pc ->
            let pos = Colref.position_exn td.Table_desc.cols pc in
            let ranges =
              List.filter
                (fun (prt : Table_desc.part) ->
                  List.mem prt.Table_desc.part_id kept)
                td.Table_desc.parts
            in
            Some
              (fun (row : Datum.t array) ->
                let v = row.(pos) in
                List.exists
                  (fun (prt : Table_desc.part) ->
                    Datum.compare prt.Table_desc.lo v <= 0
                    && Datum.compare v prt.Table_desc.hi < 0)
                  ranges)
        | _ -> None
      in
      let out =
        Array.map
          (fun rows ->
            (* partition pruning skips reading pruned partitions *)
            let scanned =
              match part_keep with
              | None -> rows
              | Some keep -> List.filter keep rows
            in
            ctx.metrics.Metrics.rows_scanned <-
              ctx.metrics.Metrics.rows_scanned
              +. float_of_int (List.length scanned);
            match filter with
            | None -> scanned
            | Some f ->
                List.filter (fun r -> eval_pred td.Table_desc.cols r f) scanned)
          data.Cluster.segments
      in
      Metrics.charge_max ctx.metrics
        (Array.map
           (fun rows ->
             let n = float_of_int (List.length rows) in
             n *. (m.Machine.cpu_tuple +. (64.0 *. m.Machine.scan_byte)))
           data.Cluster.segments);
      out
  | Expr.P_index_scan (td, idx, cmp, key, residual) ->
      let data = Cluster.table ctx.cluster td.Table_desc.name in
      let pos = Colref.position_exn td.Table_desc.cols idx.Table_desc.idx_col in
      let key_val = eval_scalar [] [||] key in
      let matches row =
        match Datum.sql_compare row.(pos) key_val with
        | None -> false
        | Some c -> (
            match cmp with
            | Expr.Eq -> c = 0
            | Expr.Neq -> c <> 0
            | Expr.Lt -> c < 0
            | Expr.Le -> c <= 0
            | Expr.Gt -> c > 0
            | Expr.Ge -> c >= 0)
      in
      let out =
        Array.map
          (fun rows ->
            let selected = List.filter matches rows in
            let selected =
              match residual with
              | None -> selected
              | Some f ->
                  List.filter (fun r -> eval_pred td.Table_desc.cols r f) selected
            in
            ctx.metrics.Metrics.rows_scanned <-
              ctx.metrics.Metrics.rows_scanned
              +. float_of_int (List.length selected);
            selected)
          data.Cluster.segments
      in
      (* index access: log descent + per-match fetch *)
      Metrics.charge_max ctx.metrics
        (Array.map
           (fun rows ->
             let n = float_of_int (List.length rows) in
             (Float.log (Float.max 2.0
                  (float_of_int (List.length rows) +. 2.0))
             *. m.Machine.cpu_tuple)
             +. (n *. m.Machine.cpu_tuple *. 0.1))
           out);
      out
  | Expr.P_filter pred ->
      let segs = eval ctx ~params (child 0) in
      let schema = child_schema 0 in
      let nconj = List.length (Scalar_ops.conjuncts pred) in
      charge_rows segs (float_of_int nconj *. m.Machine.cpu_op);
      Array.map (List.filter (fun r -> eval_pred schema r pred)) segs
  | Expr.P_project projs ->
      let segs = eval ctx ~params (child 0) in
      let schema = child_schema 0 in
      (* pass-through columns are slot copies; computed expressions pay *)
      let computed =
        List.length
          (List.filter
             (fun p -> match p.Expr.proj_expr with Expr.Col _ -> false | _ -> true)
             projs)
      in
      charge_rows segs
        ((float_of_int computed *. m.Machine.cpu_op)
        +. (0.05 *. m.Machine.cpu_tuple));
      let compiled =
        List.map
          (fun pr ->
            match pr.Expr.proj_expr with
            | Expr.Col c ->
                let pos = Colref.position_exn schema c in
                `Slot pos
            | e -> `Expr e)
          projs
      in
      Array.map
        (List.map (fun r ->
             Array.of_list
               (List.map
                  (function
                    | `Slot pos -> r.(pos)
                    | `Expr e -> eval_scalar schema r e)
                  compiled)))
        segs
  | Expr.P_hash_join (kind, keys, residual) ->
      (* Dynamic partition elimination (paper §7.2.2, simplified from its
         reference [2]): when one side is a scan of a range-partitioned table
         whose partition column is a join key, evaluate the other side first
         and skip the partitions that cannot contain its observed key values.
         Pruning the probe (outer) side is sound for inner/semi joins;
         pruning the build (inner) side is additionally sound for left outer
         joins (unmatched build rows never reach the output). *)
      let probe_prunable =
        match kind with
        | Expr.Inner | Expr.Semi -> true
        | Expr.Left_outer | Expr.Full_outer | Expr.Anti_semi -> false
      in
      let build_prunable =
        match kind with
        | Expr.Inner | Expr.Semi | Expr.Left_outer -> true
        | Expr.Full_outer | Expr.Anti_semi -> false
      in
      let outer, inner =
        if
          probe_prunable
          && dpe_candidate ctx (child 0)
               (List.map (fun (o, _) -> o) keys)
        then begin
          let inner = eval ctx ~params (child 1) in
          let outer =
            match
              dpe_restriction ctx (child 0)
                (List.map (fun (o, i) -> (o, i)) keys)
                inner (child_schema 1)
            with
            | Some restricted -> eval ctx ~params restricted
            | None -> eval ctx ~params (child 0)
          in
          (outer, inner)
        end
        else if
          build_prunable
          && dpe_candidate ctx (child 1)
               (List.map (fun (_, i) -> i) keys)
        then begin
          let outer = eval ctx ~params (child 0) in
          let inner =
            match
              dpe_restriction ctx (child 1)
                (List.map (fun (o, i) -> (i, o)) keys)
                outer (child_schema 0)
            with
            | Some restricted -> eval ctx ~params restricted
            | None -> eval ctx ~params (child 1)
          in
          (outer, inner)
        end
        else
          let outer = eval ctx ~params (child 0) in
          let inner = eval ctx ~params (child 1) in
          (outer, inner)
      in
      let oschema = child_schema 0 and ischema = child_schema 1 in
      let combined = oschema @ ischema in
      Array.init nsegs (fun seg ->
          hash_join_segment ctx ~params ~kind ~keys ~residual ~oschema ~ischema
            ~combined outer.(seg) inner.(seg))
  | Expr.P_merge_join (kind, keys, residual) ->
      let outer = eval ctx ~params (child 0) in
      let inner = eval ctx ~params (child 1) in
      let oschema = child_schema 0 and ischema = child_schema 1 in
      Array.init nsegs (fun seg ->
          merge_join_segment ctx ~params ~kind ~keys ~residual ~oschema ~ischema
            outer.(seg) inner.(seg))
  | Expr.P_nl_join (kind, cond) ->
      let outer = eval ctx ~params (child 0) in
      let inner = eval ctx ~params (child 1) in
      let oschema = child_schema 0 and ischema = child_schema 1 in
      let combined = oschema @ ischema in
      let inner_width = List.length ischema in
      Metrics.charge_max ctx.metrics
        (Array.init nsegs (fun seg ->
             float_of_int (List.length outer.(seg))
             *. float_of_int (List.length inner.(seg))
             *. m.Machine.nl_pair));
      Array.init nsegs (fun seg ->
          let inner_rows = inner.(seg) in
          List.concat_map
            (fun orow ->
              let matches =
                List.filter
                  (fun irow ->
                    let full = Array.append orow irow in
                    eval_pred combined full cond)
                  inner_rows
              in
              match kind with
              | Expr.Inner ->
                  List.map (fun irow -> Array.append orow irow) matches
              | Expr.Left_outer ->
                  if matches = [] then
                    [ Array.append orow (Array.make inner_width Datum.Null) ]
                  else List.map (fun irow -> Array.append orow irow) matches
              | Expr.Semi -> if matches = [] then [] else [ orow ]
              | Expr.Anti_semi -> if matches = [] then [ orow ] else []
              | Expr.Full_outer ->
                  Gpos.Gpos_error.raise_error Gpos.Gpos_error.Exec_error
                    "full outer NL join not supported")
            outer.(seg))
  | Expr.P_hash_agg (phase, gkeys, aggs) ->
      let segs = eval ctx ~params (child 0) in
      let schema = child_schema 0 in
      charge_rows segs m.Machine.hash_build;
      Array.mapi
        (fun seg rows ->
          hash_agg_segment ctx ~params ~schema ~phase ~seg gkeys aggs rows)
        segs
  | Expr.P_stream_agg (phase, gkeys, aggs) ->
      let segs = eval ctx ~params (child 0) in
      let schema = child_schema 0 in
      charge_rows segs m.Machine.cpu_tuple;
      Array.mapi
        (fun seg rows ->
          stream_agg_segment ctx ~params ~schema ~phase ~seg gkeys aggs rows)
        segs
  | Expr.P_window (partition, worder, wfuncs) ->
      let segs = eval ctx ~params (child 0) in
      let schema = child_schema 0 in
      charge_rows segs (m.Machine.cpu_tuple +. m.Machine.cpu_op);
      Array.map
        (fun rows -> window_segment ctx ~params ~schema partition worder wfuncs rows)
        segs
  | Expr.P_sort spec ->
      let segs = eval ctx ~params (child 0) in
      let schema = child_schema 0 in
      let cmp = Sortspec.row_compare spec ~schema in
      Metrics.charge_max ctx.metrics
        (Array.map
           (fun rows ->
             let n = Float.max 1.0 (float_of_int (List.length rows)) in
             n *. Float.log n *. m.Machine.sort_cmp)
           segs);
      Array.iter
        (fun rows -> check_memory ctx (rows_bytes rows) ~stream_bytes:(rows_bytes rows))
        segs;
      Array.map (fun rows -> List.stable_sort cmp rows) segs
  | Expr.P_limit (_, offset, count) ->
      let segs = eval ctx ~params (child 0) in
      let take rows =
        let rec drop n = function
          | rows when n <= 0 -> rows
          | [] -> []
          | _ :: rest -> drop (n - 1) rest
        in
        let rec keep n = function
          | [] -> []
          | _ when n = 0 -> []
          | r :: rest -> r :: keep (n - 1) rest
        in
        let rows = drop offset rows in
        match count with None -> rows | Some c -> keep c rows
      in
      Array.map take segs
  | Expr.P_motion motion -> run_motion ctx ~params p motion
  | Expr.P_cte_producer id ->
      let segs = eval ctx ~params (child 0) in
      (* normalize replicated inputs to one copy: consumers are treated as
         unaligned (D_random) by the optimizer, so motions above them would
         otherwise multiply the rows *)
      let segs =
        if delivered_dist (child 0) = Props.D_replicated then
          Array.init nsegs (fun i -> if i = 0 then segs.(0) else [])
        else segs
      in
      Hashtbl.replace ctx.cte id segs;
      let bytes = Array.fold_left (fun a rows -> a +. rows_bytes rows) 0.0 segs in
      Metrics.charge ctx.metrics (bytes *. m.Machine.scan_byte);
      segs
  | Expr.P_cte_consumer (id, _) -> (
      match Hashtbl.find_opt ctx.cte id with
      | Some segs ->
          charge_rows segs (m.Machine.cpu_tuple *. 0.5);
          segs
      | None ->
          Gpos.Gpos_error.raise_error Gpos.Gpos_error.Exec_error
            "CTE %d consumed before production" id)
  | Expr.P_sequence _ ->
      let _producer = eval ctx ~params (child 0) in
      eval ctx ~params (child 1)
  | Expr.P_set (kind, _) ->
      let children = List.map (eval ctx ~params) p.Expr.pchildren in
      run_set ctx kind children
  | Expr.P_const_table (_, rows) ->
      let segs = Array.make nsegs [] in
      segs.(0) <- List.map Array.of_list rows;
      segs
  | Expr.P_partition_selector _ -> eval ctx ~params (child 0)

(* Is [side] (possibly behind projections/filters) a scan of a
   range-partitioned table whose partition column is one of [side_keys]? *)
and dpe_candidate (ctx : ctx) (side : Expr.plan) (side_keys : Expr.scalar list)
    : bool =
  ctx.dpe
  &&
  match side.Expr.pop with
  | Expr.P_table_scan (td, _, _) when td.Table_desc.parts <> [] -> (
      match td.Table_desc.part_col with
      | Some pc ->
          List.exists
            (function Expr.Col c -> Colref.equal c pc | _ -> false)
            side_keys
      | None -> false)
  | Expr.P_project _ | Expr.P_filter _ | Expr.P_partition_selector _ -> (
      (* projections/filters between the join and the scan do not affect
         which partitions can match *)
      match side.Expr.pchildren with
      | [ child ] -> dpe_candidate ctx child side_keys
      | _ -> false)
  | _ -> false

(* Restrict the partitioned scan [side] to the partitions that can contain
   the key values observed on the already-evaluated other side. [keys] pairs
   (this side's key expr, other side's key expr). *)
and dpe_restriction (ctx : ctx) (side : Expr.plan)
    (keys : (Expr.scalar * Expr.scalar) list)
    (other_segs : Datum.t array list array) (other_schema : Colref.t list) :
    Expr.plan option =
  match side.Expr.pop with
  | Expr.P_project _ | Expr.P_filter _ | Expr.P_partition_selector _ -> (
      (* rebuild the wrapper around the restricted scan *)
      match side.Expr.pchildren with
      | [ child ] -> (
          match dpe_restriction ctx child keys other_segs other_schema with
          | Some child' ->
              let side' = { side with Expr.pchildren = [ child' ] } in
              ctx.dpe_aliases <- (side', side) :: ctx.dpe_aliases;
              Some side'
          | None -> None)
      | _ -> None)
  | Expr.P_table_scan (td, kept, filter) when td.Table_desc.parts <> [] -> (
      match td.Table_desc.part_col with
      | None -> None
      | Some pc -> (
          let pair =
            List.find_opt
              (fun (this_k, other_k) ->
                match (this_k, other_k) with
                | Expr.Col c, Expr.Col _ -> Colref.equal c pc
                | _ -> false)
              keys
          in
          match pair with
          | Some (_, Expr.Col other_col) ->
              let pos = Colref.position_exn other_schema other_col in
              let interesting = Hashtbl.create 64 in
              Array.iter
                (List.iter (fun row ->
                     let v = row.(pos) in
                     if not (Datum.is_null v) then
                       List.iter
                         (fun (p : Table_desc.part) ->
                           if
                             Datum.compare p.Table_desc.lo v <= 0
                             && Datum.compare v p.Table_desc.hi < 0
                           then
                             Hashtbl.replace interesting p.Table_desc.part_id ())
                         td.Table_desc.parts))
                other_segs;
              let candidate =
                match kept with
                | None ->
                    List.map (fun p -> p.Table_desc.part_id) td.Table_desc.parts
                | Some ids -> ids
              in
              let selected =
                List.filter (fun id -> Hashtbl.mem interesting id) candidate
              in
              if List.length selected < List.length candidate then begin
                ctx.metrics.Metrics.partitions_pruned_dynamically <-
                  ctx.metrics.Metrics.partitions_pruned_dynamically
                  + (List.length candidate - List.length selected);
                let side' =
                  {
                    side with
                    Expr.pop = Expr.P_table_scan (td, Some selected, filter);
                  }
                in
                ctx.dpe_aliases <- (side', side) :: ctx.dpe_aliases;
                Some side'
              end
              else None
          | _ -> None))
  | _ -> None

and hash_join_segment ctx ~params ~kind ~keys ~residual ~oschema ~ischema
    ~combined outer_rows inner_rows =
  let m = mach ctx in
  let eval_scalar schema row s =
    Scalar_eval.eval ~subplan:(subplan_exec ctx params) (env_of ~params schema row) s
  in
  let inner_width = List.length ischema in
  (* build side: inner *)
  let table : (string, (Datum.t array * int) list ref) Hashtbl.t =
    Hashtbl.create (List.length inner_rows)
  in
  let inner_key row = List.map (fun (_, ik) -> eval_scalar ischema row ik) keys in
  let outer_key row = List.map (fun (ok, _) -> eval_scalar oschema row ok) keys in
  check_memory ctx (rows_bytes inner_rows) ~stream_bytes:(rows_bytes outer_rows);
  List.iteri
    (fun i row ->
      let kvs = inner_key row in
      if not (List.exists Datum.is_null kvs) then begin
        let k = key_string kvs in
        match Hashtbl.find_opt table k with
        | Some l -> l := (row, i) :: !l
        | None -> Hashtbl.replace table k (ref [ (row, i) ])
      end)
    inner_rows;
  Metrics.charge ctx.metrics
    (float_of_int (List.length inner_rows) *. m.Machine.hash_build
    +. float_of_int (List.length outer_rows) *. m.Machine.hash_probe);
  let matched_inner = Hashtbl.create 16 in
  let residual_ok full =
    match residual with
    | None -> true
    | Some f -> (
        match eval_scalar combined full f with
        | Datum.Bool true -> true
        | _ -> false)
  in
  let null_inner = Array.make inner_width Datum.Null in
  let out = ref [] in
  List.iter
    (fun orow ->
      let kvs = outer_key orow in
      let matches =
        if List.exists Datum.is_null kvs then []
        else
          match Hashtbl.find_opt table (key_string kvs) with
          | Some l ->
              List.filter
                (fun (irow, _) -> residual_ok (Array.append orow irow))
                !l
          | None -> []
      in
      (match kind with
      | Expr.Inner ->
          List.iter
            (fun (irow, _) -> out := Array.append orow irow :: !out)
            matches
      | Expr.Full_outer ->
          if matches = [] then out := Array.append orow null_inner :: !out
          else
            List.iter
              (fun (irow, idx) ->
                Hashtbl.replace matched_inner idx ();
                out := Array.append orow irow :: !out)
              matches
      | Expr.Left_outer ->
          if matches = [] then out := Array.append orow null_inner :: !out
          else
            List.iter
              (fun (irow, _) -> out := Array.append orow irow :: !out)
              matches
      | Expr.Semi -> if matches <> [] then out := orow :: !out
      | Expr.Anti_semi -> if matches = [] then out := orow :: !out))
    outer_rows;
  (* full outer: emit unmatched inner rows null-extended on the outer side *)
  (if kind = Expr.Full_outer then
     let outer_width = List.length oschema in
     let null_outer = Array.make outer_width Datum.Null in
     List.iteri
       (fun i irow ->
         if not (Hashtbl.mem matched_inner i) then
           out := Array.append null_outer irow :: !out)
       inner_rows);
  List.rev !out

and merge_join_segment ctx ~params ~kind ~keys ~residual ~oschema ~ischema
    outer_rows inner_rows =
  ignore params;
  (match kind with
  | Expr.Inner -> ()
  | _ ->
      Gpos.Gpos_error.raise_error Gpos.Gpos_error.Exec_error
        "merge join supports inner joins only");
  let m = mach ctx in
  Metrics.charge ctx.metrics
    (float_of_int (List.length outer_rows + List.length inner_rows)
    *. m.Machine.cpu_tuple);
  let opos =
    List.map (fun (ok, _) -> Colref.position_exn oschema ok) keys
  in
  let ipos =
    List.map (fun (_, ik) -> Colref.position_exn ischema ik) keys
  in
  let key_of positions (row : Datum.t array) =
    List.map (fun p -> row.(p)) positions
  in
  let cmp_keys a b =
    let rec go = function
      | [] -> 0
      | (x, y) :: rest ->
          let c = Datum.compare x y in
          if c <> 0 then c else go rest
    in
    go (List.combine a b)
  in
  let oarr = Array.of_list outer_rows and iarr = Array.of_list inner_rows in
  let residual_ok full =
    match residual with
    | None -> true
    | Some f ->
        Scalar_eval.eval_pred
          ~subplan:(subplan_exec ctx Colref.Map.empty)
          (env_of ~params:Colref.Map.empty (oschema @ ischema) full)
          f
  in
  let out = ref [] in
  let i = ref 0 and j = ref 0 in
  let no = Array.length oarr and ni = Array.length iarr in
  while !i < no && !j < ni do
    let ok = key_of opos oarr.(!i) and ik = key_of ipos iarr.(!j) in
    if List.exists Datum.is_null ok then incr i
    else if List.exists Datum.is_null ik then incr j
    else
      let c = cmp_keys ok ik in
      if c < 0 then incr i
      else if c > 0 then incr j
      else begin
        (* equal-key blocks *)
        let i_end = ref !i in
        while
          !i_end < no && cmp_keys (key_of opos oarr.(!i_end)) ok = 0
        do
          incr i_end
        done;
        let j_end = ref !j in
        while
          !j_end < ni && cmp_keys (key_of ipos iarr.(!j_end)) ik = 0
        do
          incr j_end
        done;
        for a = !i to !i_end - 1 do
          for b = !j to !j_end - 1 do
            let full = Array.append oarr.(a) iarr.(b) in
            if residual_ok full then out := full :: !out
          done
        done;
        i := !i_end;
        j := !j_end
      end
  done;
  List.rev !out

and hash_agg_segment ctx ~params ~schema ~phase ~seg gkeys aggs rows =
  let eval_scalar row s =
    Scalar_eval.eval ~subplan:(subplan_exec ctx params) (env_of ~params schema row) s
  in
  let kpos = List.map (Colref.position_exn schema) gkeys in
  let groups : (string, Datum.t list * agg_state list) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun row ->
      let kvs = List.map (fun p -> row.(p)) kpos in
      let k = key_string kvs in
      let _, states =
        match Hashtbl.find_opt groups k with
        | Some entry -> entry
        | None ->
            let entry = (kvs, List.map new_agg_state aggs) in
            Hashtbl.replace groups k entry;
            entry
      in
      List.iter2
        (fun (a : Expr.agg) st ->
          let arg =
            match a.Expr.agg_arg with
            | None -> Datum.Bool true (* COUNT-star marker: any non-null value *)
            | Some e -> eval_scalar row e
          in
          agg_accumulate a st arg)
        aggs states)
    rows;
  let state_bytes = float_of_int (Hashtbl.length groups) *. 64.0 in
  check_memory ctx state_bytes ~stream_bytes:(rows_bytes rows);
  if gkeys = [] && Hashtbl.length groups = 0 then
    (* global aggregate over empty input: one identity row — on every segment
       for Partial (local) aggregation, on the master otherwise (the input is
       Singleton-distributed by construction) *)
    (if phase = Expr.Partial || seg = 0 then
       [ Array.of_list (List.map (fun a -> agg_finish a (new_agg_state a)) aggs) ]
     else [])
  else
    Hashtbl.fold
      (fun _ (kvs, states) acc ->
        Array.of_list (kvs @ List.map2 agg_finish aggs states) :: acc)
      groups []

and stream_agg_segment ctx ~params ~schema ~phase ~seg gkeys aggs rows =
  let eval_scalar row s =
    Scalar_eval.eval ~subplan:(subplan_exec ctx params) (env_of ~params schema row) s
  in
  let kpos = List.map (Colref.position_exn schema) gkeys in
  let out = ref [] in
  let current_key = ref None in
  let states = ref [] in
  let flush () =
    match !current_key with
    | None -> ()
    | Some kvs ->
        out := Array.of_list (kvs @ List.map2 agg_finish aggs !states) :: !out
  in
  List.iter
    (fun row ->
      let kvs = List.map (fun p -> row.(p)) kpos in
      (match !current_key with
      | Some prev when List.for_all2 Datum.equal prev kvs -> ()
      | _ ->
          flush ();
          current_key := Some kvs;
          states := List.map new_agg_state aggs);
      List.iter2
        (fun (a : Expr.agg) st ->
          let arg =
            match a.Expr.agg_arg with
            | None -> Datum.Bool true
            | Some e -> eval_scalar row e
          in
          agg_accumulate a st arg)
        aggs !states)
    rows;
  flush ();
  (if gkeys = [] && !out = [] then
     (if phase = Expr.Partial || seg = 0 then
        [ Array.of_list (List.map (fun a -> agg_finish a (new_agg_state a)) aggs) ]
      else [])
   else List.rev !out)

(* Window computation over one segment: rows are sorted by (partition keys,
   window order); each partition is processed as a block. With an ORDER BY,
   aggregate windows use the SQL default frame (peers included up to the
   current row) and rank/row_number follow the order; without one, aggregates
   cover the whole partition and row_number follows input order. *)
and window_segment ctx ~params ~schema partition worder
    (wfuncs : Expr.wfunc list) rows =
  let eval_scalar row s =
    Scalar_eval.eval ~subplan:(subplan_exec ctx params) (env_of ~params schema row) s
  in
  let ppos = List.map (Colref.position_exn schema) partition in
  let sort_spec = List.map Sortspec.asc partition @ worder in
  let sorted =
    if sort_spec = [] then rows
    else List.stable_sort (Sortspec.row_compare sort_spec ~schema) rows
  in
  let order_cmp =
    if Sortspec.is_empty worder then fun _ _ -> 0
    else Sortspec.row_compare worder ~schema
  in
  let part_key row = List.map (fun p -> row.(p)) ppos in
  (* split into partitions (consecutive after the sort) *)
  let partitions =
    let rec split acc current current_key = function
      | [] -> List.rev (List.rev current :: acc)
      | row :: rest ->
          let k = part_key row in
          if current = [] || k = current_key then
            split acc (row :: current) k rest
          else split (List.rev current :: acc) [ row ] k rest
    in
    match sorted with [] -> [] | _ -> split [] [] [] sorted
  in
  let process_partition (prows : Datum.t array list) : Datum.t array list =
    let arr = Array.of_list prows in
    let n = Array.length arr in
    (* for each function, the output value per row index *)
    let outputs =
      List.map
        (fun (w : Expr.wfunc) ->
          match w.Expr.wf_kind with
          | Expr.W_row_number ->
              Array.init n (fun i -> Datum.Int (i + 1))
          | Expr.W_rank ->
              let ranks = Array.make n (Datum.Int 1) in
              let current_rank = ref 1 in
              for i = 0 to n - 1 do
                if i > 0 && order_cmp arr.(i - 1) arr.(i) <> 0 then
                  current_rank := i + 1;
                ranks.(i) <- Datum.Int !current_rank
              done;
              ranks
          | Expr.W_dense_rank ->
              let ranks = Array.make n (Datum.Int 1) in
              let current_rank = ref 1 in
              for i = 0 to n - 1 do
                if i > 0 && order_cmp arr.(i - 1) arr.(i) <> 0 then
                  incr current_rank;
                ranks.(i) <- Datum.Int !current_rank
              done;
              ranks
          | Expr.W_agg kind ->
              let arg_of i =
                match w.Expr.wf_arg with
                | None -> Datum.Bool true
                | Some e -> eval_scalar arr.(i) e
              in
              let framed = not (Sortspec.is_empty worder) in
              let out = Array.make n Datum.Null in
              if not framed then begin
                (* whole partition *)
                let a =
                  {
                    Expr.agg_kind =
                      (match kind with k -> k);
                    agg_arg = w.Expr.wf_arg;
                    agg_distinct = false;
                    agg_out = w.Expr.wf_out;
                  }
                in
                let st = new_agg_state a in
                for i = 0 to n - 1 do
                  agg_accumulate a st (arg_of i)
                done;
                let v = agg_finish a st in
                Array.fill out 0 n v
              end
              else begin
                (* running frame, peers included: accumulate row by row, and
                   assign the value at the last peer of each group *)
                let a =
                  {
                    Expr.agg_kind = kind;
                    agg_arg = w.Expr.wf_arg;
                    agg_distinct = false;
                    agg_out = w.Expr.wf_out;
                  }
                in
                let st = new_agg_state a in
                let i = ref 0 in
                while !i < n do
                  (* find the peer block [i, j) *)
                  let j = ref (!i + 1) in
                  while !j < n && order_cmp arr.(!i) arr.(!j) = 0 do incr j done;
                  for k = !i to !j - 1 do
                    agg_accumulate a st (arg_of k)
                  done;
                  let v = agg_finish a st in
                  for k = !i to !j - 1 do
                    out.(k) <- v
                  done;
                  i := !j
                done
              end;
              out)
        wfuncs
    in
    List.init n (fun i ->
        Array.append arr.(i)
          (Array.of_list (List.map (fun o -> o.(i)) outputs)))
  in
  List.concat_map process_partition partitions

and run_motion ctx ~params (p : Expr.plan) (motion : Expr.motion) :
    Datum.t array list array =
  let nsegs = ctx.cluster.Cluster.nsegs in
  let m = mach ctx in
  let child = List.hd p.Expr.pchildren in
  let segs = eval ctx ~params child in
  let schema = child.Expr.pschema in
  (* replicated inputs contribute a single copy (segment 0's) *)
  let is_replicated = delivered_dist child = Props.D_replicated in
  let sources =
    if is_replicated then
      Array.init nsegs (fun i -> if i = 0 then segs.(0) else [])
    else segs
  in
  let charge_net rows =
    let n = float_of_int (List.length rows) in
    let bytes = rows_bytes rows in
    ctx.metrics.Metrics.rows_moved <- ctx.metrics.Metrics.rows_moved +. n;
    ctx.metrics.Metrics.net_bytes <- ctx.metrics.Metrics.net_bytes +. bytes;
    (n *. m.Machine.net_tuple) +. (bytes *. m.Machine.net_byte)
  in
  match motion with
  | Expr.Gather ->
      let all = List.concat (Array.to_list sources) in
      (* receive at the master is serial *)
      Metrics.charge ctx.metrics (charge_net all);
      let out = Array.make nsegs [] in
      out.(0) <- all;
      out
  | Expr.Gather_merge spec ->
      let all = List.concat (Array.to_list sources) in
      Metrics.charge ctx.metrics (charge_net all);
      Metrics.charge ctx.metrics
        (float_of_int (List.length all) *. m.Machine.cpu_tuple *. 0.3);
      let out = Array.make nsegs [] in
      out.(0) <- List.stable_sort (Sortspec.row_compare spec ~schema) all;
      out
  | Expr.Redistribute es ->
      let out = Array.make nsegs [] in
      let counter = ref 0 in
      let dest row =
        match es with
        | [] ->
            (* round-robin *)
            incr counter;
            !counter mod nsegs
        | es ->
            let vals =
              List.map
                (fun e ->
                  Scalar_eval.eval
                    ~subplan:(subplan_exec ctx params)
                    (env_of ~params schema row) e)
                es
            in
            Cluster.hash_datums vals mod nsegs
      in
      let per_seg_recv = Array.make nsegs 0.0 in
      Array.iter
        (List.iter (fun row ->
             let d = dest row in
             out.(d) <- row :: out.(d);
             per_seg_recv.(d) <-
               per_seg_recv.(d)
               +. m.Machine.net_tuple
               +. (float_of_int (Cluster.row_bytes row) *. m.Machine.net_byte);
             ctx.metrics.Metrics.rows_moved <-
               ctx.metrics.Metrics.rows_moved +. 1.0;
             ctx.metrics.Metrics.net_bytes <-
               ctx.metrics.Metrics.net_bytes
               +. float_of_int (Cluster.row_bytes row)))
        sources;
      (* elapsed: the busiest receiving segment *)
      Metrics.charge_max ctx.metrics per_seg_recv;
      Array.map List.rev out
  | Expr.Broadcast ->
      let all = List.concat (Array.to_list sources) in
      (* every segment receives the full input *)
      Metrics.charge ctx.metrics (charge_net all *. float_of_int 1);
      Metrics.charge ctx.metrics
        (float_of_int (List.length all)
        *. float_of_int (nsegs - 1)
        *. m.Machine.net_tuple /. float_of_int nsegs);
      Array.make nsegs all

and run_set ctx kind (children : Datum.t array list array list) :
    Datum.t array list array =
  let nsegs = ctx.cluster.Cluster.nsegs in
  match (kind, children) with
  | Expr.Union_all, _ ->
      Array.init nsegs (fun seg ->
          List.concat_map (fun c -> c.(seg)) children)
  | Expr.Union_distinct, _ ->
      Array.init nsegs (fun seg ->
          let seen = Hashtbl.create 64 in
          List.concat_map (fun c -> c.(seg)) children
          |> List.filter (fun row ->
                 let k = key_string (Array.to_list row) in
                 if Hashtbl.mem seen k then false
                 else begin
                   Hashtbl.replace seen k ();
                   true
                 end))
  | Expr.Intersect, [ a; b ] ->
      Array.init nsegs (fun seg ->
          let right = Hashtbl.create 64 in
          List.iter
            (fun row -> Hashtbl.replace right (key_string (Array.to_list row)) ())
            b.(seg);
          let seen = Hashtbl.create 64 in
          List.filter
            (fun row ->
              let k = key_string (Array.to_list row) in
              Hashtbl.mem right k && not (Hashtbl.mem seen k)
              && begin
                   Hashtbl.replace seen k ();
                   true
                 end)
            a.(seg))
  | Expr.Except, [ a; b ] ->
      Array.init nsegs (fun seg ->
          let right = Hashtbl.create 64 in
          List.iter
            (fun row -> Hashtbl.replace right (key_string (Array.to_list row)) ())
            b.(seg);
          let seen = Hashtbl.create 64 in
          List.filter
            (fun row ->
              let k = key_string (Array.to_list row) in
              (not (Hashtbl.mem right k))
              && (not (Hashtbl.mem seen k))
              && begin
                   Hashtbl.replace seen k ();
                   true
                 end)
            a.(seg))
  | (Expr.Intersect | Expr.Except), _ ->
      Gpos.Gpos_error.raise_error Gpos.Gpos_error.Exec_error
        "set operation requires exactly two inputs"

(* Correlated SubPlan execution (legacy Planner). Results are memoized per
   parameter binding for wall-clock speed, but every logical re-execution is
   charged its full simulated cost — precisely the repeated-execution penalty
   the paper's Figure 12 attributes to the Planner. *)
and subplan_exec (ctx : ctx) (outer_params : Datum.t Colref.Map.t)
    (sp : Expr.subplan) (env : Scalar_eval.env) : Datum.t array list =
  let m = mach ctx in
  let inner_params =
    List.fold_left
      (fun acc (outer_col, param_col) ->
        Colref.Map.add param_col (env outer_col) acc)
      outer_params sp.Expr.sp_params
  in
  let cache_key =
    Printf.sprintf "%d/%s"
      (Hashtbl.hash sp.Expr.sp_plan)
      (key_string
         (List.map (fun (_, pc) -> Colref.Map.find pc inner_params) sp.Expr.sp_params))
  in
  match Hashtbl.find_opt ctx.subplan_cache cache_key with
  | Some (rows, dt) ->
      ctx.metrics.Metrics.subplan_cache_hits <-
        ctx.metrics.Metrics.subplan_cache_hits + 1;
      (* the Planner would re-execute: charge the full cost again *)
      Metrics.charge ctx.metrics dt;
      rows
  | None ->
      ctx.metrics.Metrics.subplan_executions <-
        ctx.metrics.Metrics.subplan_executions + 1;
      let t0 = ctx.metrics.Metrics.sim_seconds in
      Metrics.charge ctx.metrics m.Machine.subplan_start;
      let segs = eval ctx ~params:inner_params sp.Expr.sp_plan in
      let rows = List.concat (Array.to_list segs) in
      let dt = ctx.metrics.Metrics.sim_seconds -. t0 in
      Hashtbl.replace ctx.subplan_cache cache_key (rows, dt);
      rows

(* Run a plan and return the result rows (the plan is expected to deliver a
   Singleton result at the master, segment 0). *)
let run ?(mode = Spill_to_disk) ?(dpe = true) ?observe (cluster : Cluster.t)
    (plan : Expr.plan) : Datum.t array list * Metrics.t =
  let ctx = create_ctx ~mode ~dpe ?observe cluster in
  ctx.node_ids <-
    List.map (fun (id, _, node) -> (node, id)) (Plan_ops.number plan);
  let segs = eval ctx ~params:Colref.Map.empty plan in
  let rows = List.concat (Array.to_list segs) in
  (* always-on telemetry: fold this run into the global registry *)
  let m = ctx.metrics in
  Telemetry.Metrics.inc Telemetry.Std.exec_queries;
  Telemetry.Metrics.add Telemetry.Std.exec_rows_scanned
    (int_of_float m.Metrics.rows_scanned);
  Telemetry.Metrics.add Telemetry.Std.exec_rows_moved
    (int_of_float m.Metrics.rows_moved);
  Telemetry.Metrics.add Telemetry.Std.exec_net_bytes
    (int_of_float m.Metrics.net_bytes);
  Telemetry.Metrics.add Telemetry.Std.exec_spill_bytes
    (int_of_float m.Metrics.spill_bytes);
  Telemetry.Metrics.add Telemetry.Std.exec_operators m.Metrics.operators_run;
  Telemetry.Metrics.add Telemetry.Std.exec_subplan_hits
    m.Metrics.subplan_cache_hits;
  Telemetry.Metrics.observe Telemetry.Std.exec_sim_ms
    (m.Metrics.sim_seconds *. 1000.0);
  (rows, ctx.metrics)

(** Query normalization for the parameterized plan cache: lifts literals out
    of the token stream, renders the remaining shape canonically and
    fingerprints it (telemetry FNV-1a). Queries differing only in constants,
    case, whitespace or comments share a fingerprint; the lifted constants
    form the parameter vector. *)

open Ir

type t = {
  raw : string;          (** the request text, verbatim *)
  text : string;         (** canonical shape: literals replaced by [$1], [$2], ... *)
  params : Datum.t list; (** lifted constants, in occurrence order *)
  fingerprint : string;  (** FNV-1a digest of [text] *)
}

val normalize : string -> t
(** Raises [Gpos.Gpos_error.Error (Parse_error, _)] on unlexable input. *)

val params_key : Datum.t list -> string
(** Canonical, collision-free rendering of a parameter vector — the
    binding-variant key inside a cache entry. *)

val param_to_string : Datum.t -> string

(* The parameterized plan cache: final physical plans keyed on
   (fingerprint, catalog version, stats version), LRU-bounded, explicitly
   invalidated on catalog/stats change.

   Each entry holds the normalized query text (for fingerprint-collision
   detection) plus a small MRU list of *binding variants* — one genuinely
   optimized plan per parameter vector seen. An exact-variant hit returns
   the cached plan unchanged, which is byte-identical to a fresh
   optimization because the optimizer is deterministic for a fixed snapshot
   (audited end to end by `bench serve`). A request whose parameters differ
   from every cached variant takes the generic-plan route: the most recent
   variant is parameter-rebound — its constants substituted in place — when
   that is provably unambiguous, and otherwise counts as a miss and gets its
   own variant. Rebound plans are returned but never cached, so stored
   variants always come from the optimizer. *)

open Ir

(* ---------------- parameter rebinding ----------------------------- *)

(* Substitute parameter values into a cached plan. The map sends each old
   datum to its replacement; [applied] counts substitutions per old datum so
   the caller can verify every changed parameter was accounted for. *)

let subst_datum map applied d =
  match Hashtbl.find_opt map d with
  | Some d' ->
      Hashtbl.replace applied d (1 + Option.value ~default:0 (Hashtbl.find_opt applied d));
      d'
  | None -> d

let rec subst_scalar map applied (s : Expr.scalar) : Expr.scalar =
  let r = subst_scalar map applied in
  let rd = subst_datum map applied in
  match s with
  | Expr.Col _ -> s
  | Expr.Const d -> Expr.Const (rd d)
  | Expr.Cmp (op, a, b) -> Expr.Cmp (op, r a, r b)
  | Expr.Arith (op, a, b) -> Expr.Arith (op, r a, r b)
  | Expr.And cs -> Expr.And (List.map r cs)
  | Expr.Or cs -> Expr.Or (List.map r cs)
  | Expr.Coalesce cs -> Expr.Coalesce (List.map r cs)
  | Expr.Not c -> Expr.Not (r c)
  | Expr.Is_null c -> Expr.Is_null (r c)
  | Expr.Cast (c, ty) -> Expr.Cast (r c, ty)
  | Expr.Like (c, pat) -> (
      let c = r c in
      match Hashtbl.find_opt map (Datum.String pat) with
      | Some (Datum.String pat') ->
          Hashtbl.replace applied (Datum.String pat)
            (1
            + Option.value ~default:0
                (Hashtbl.find_opt applied (Datum.String pat)));
          Expr.Like (c, pat')
      | _ -> Expr.Like (c, pat))
  | Expr.In_list (c, ds) -> Expr.In_list (r c, List.map rd ds)
  | Expr.Case (whens, els) ->
      Expr.Case
        (List.map (fun (c, v) -> (r c, r v)) whens, Option.map r els)
  | Expr.Subplan sp ->
      Expr.Subplan { sp with Expr.sp_plan = subst_plan map applied sp.Expr.sp_plan }

and subst_proj map applied (p : Expr.proj) =
  { p with Expr.proj_expr = subst_scalar map applied p.Expr.proj_expr }

and subst_pop map applied (pop : Expr.physical) : Expr.physical =
  let r = subst_scalar map applied in
  let ro = Option.map r in
  match pop with
  | Expr.P_table_scan (td, parts, filter) ->
      Expr.P_table_scan (td, parts, ro filter)
  | Expr.P_index_scan (td, idx, cmp, key, residual) ->
      Expr.P_index_scan (td, idx, cmp, r key, ro residual)
  | Expr.P_filter f -> Expr.P_filter (r f)
  | Expr.P_project projs -> Expr.P_project (List.map (subst_proj map applied) projs)
  | Expr.P_hash_join (k, keys, residual) ->
      Expr.P_hash_join (k, List.map (fun (a, b) -> (r a, r b)) keys, ro residual)
  | Expr.P_merge_join (k, keys, residual) ->
      Expr.P_merge_join (k, keys, ro residual)
  | Expr.P_nl_join (k, pred) -> Expr.P_nl_join (k, r pred)
  | Expr.P_window (parts, order, wfs) ->
      Expr.P_window
        ( parts,
          order,
          List.map (fun w -> { w with Expr.wf_arg = ro w.Expr.wf_arg }) wfs )
  | Expr.P_hash_agg (ph, keys, aggs) ->
      Expr.P_hash_agg
        (ph, keys, List.map (fun a -> { a with Expr.agg_arg = ro a.Expr.agg_arg }) aggs)
  | Expr.P_stream_agg (ph, keys, aggs) ->
      Expr.P_stream_agg
        (ph, keys, List.map (fun a -> { a with Expr.agg_arg = ro a.Expr.agg_arg }) aggs)
  | Expr.P_limit (order, offset, count) ->
      (* LIMIT/OFFSET literals are parameters too, but the extracted plan
         bakes them as ints: rebind through the Int datum mapping. *)
      let ri n =
        match Hashtbl.find_opt map (Datum.Int n) with
        | Some (Datum.Int n') ->
            Hashtbl.replace applied (Datum.Int n)
              (1
              + Option.value ~default:0 (Hashtbl.find_opt applied (Datum.Int n)));
            n'
        | _ -> n
      in
      Expr.P_limit (order, ri offset, Option.map ri count)
  | Expr.P_motion (Expr.Redistribute es) ->
      Expr.P_motion (Expr.Redistribute (List.map r es))
  | Expr.P_motion _ | Expr.P_sort _ | Expr.P_cte_producer _
  | Expr.P_cte_consumer _ | Expr.P_sequence _ | Expr.P_set _
  | Expr.P_const_table _ | Expr.P_partition_selector _ ->
      pop

and subst_plan map applied (p : Expr.plan) : Expr.plan =
  {
    p with
    Expr.pop = subst_pop map applied p.Expr.pop;
    pchildren = List.map (subst_plan map applied) p.Expr.pchildren;
  }

(* Rebinding is refused when any static partition decision is baked into the
   plan: pruned scans and partition selectors were chosen for the *old*
   constants. *)
let rec has_partition_decisions (p : Expr.plan) =
  (match p.Expr.pop with
  | Expr.P_table_scan (_, Some _, _) | Expr.P_partition_selector _ -> true
  | _ -> false)
  || List.exists has_partition_decisions p.Expr.pchildren

(* [rebind ~old_params ~new_params plan] substitutes the new parameter
   vector into a cached plan, or returns [None] when the substitution would
   be ambiguous or incomplete:
   - vectors must agree in arity and per-position datum constructor;
   - the old→new mapping must be a function (equal old values cannot map to
     different new values) and changed old values must be pairwise distinct;
   - every changed old value must actually be found (and replaced) in the
     plan — a constant folded away or translated at bind time (e.g. a date
     literal) fails the rebind rather than silently serving a stale value;
   - plans with baked partition decisions are never rebound.
   Cost and cardinality annotations are kept from the cached plan: a rebound
   plan is a generic plan, its estimates are the shape's, not the values'. *)
let rebind ~old_params ~new_params (plan : Expr.plan) : Expr.plan option =
  if List.length old_params <> List.length new_params then None
  else begin
    let same_ctor a b =
      match (a, b) with
      | Datum.Int _, Datum.Int _
      | Datum.Float _, Datum.Float _
      | Datum.String _, Datum.String _
      | Datum.Bool _, Datum.Bool _
      | Datum.Date _, Datum.Date _
      | Datum.Null, Datum.Null ->
          true
      | _ -> false
    in
    let map = Hashtbl.create 16 in
    let consistent = ref true in
    List.iter2
      (fun o n ->
        if not (same_ctor o n) then consistent := false
        else if not (Datum.equal o n) then
          match Hashtbl.find_opt map o with
          | Some n' when not (Datum.equal n n') -> consistent := false
          | _ -> Hashtbl.replace map o n)
      old_params new_params;
    (* a changed parameter whose old value equals an *unchanged* parameter's
       value is ambiguous: the substitution could touch the wrong literal *)
    List.iter
      (fun o ->
        if Hashtbl.mem map o then
          let changed = Hashtbl.find map o in
          List.iter2
            (fun o' n' ->
              if Datum.equal o o' && Datum.equal o' n'
                 && not (Datum.equal changed n') then consistent := false)
            old_params new_params)
      old_params;
    (* date literals are lifted as strings but bound as Date datums: extend
       the mapping through the date translation *)
    Hashtbl.iter
      (fun o n ->
        match (o, n) with
        | Datum.String so, Datum.String sn -> (
            match (Datum.date_of_string so, Datum.date_of_string sn) with
            | Datum.Date _ as od, (Datum.Date _ as nd) ->
                if not (Hashtbl.mem map od) then Hashtbl.replace map od nd
            | _ -> ())
        | _ -> ())
      (Hashtbl.copy map);
    if (not !consistent) || Hashtbl.length map = 0 then
      if !consistent then Some plan (* identical vectors: nothing to do *)
      else None
    else if has_partition_decisions plan then None
    else begin
      let applied = Hashtbl.create 16 in
      let plan' = subst_plan map applied plan in
      (* every changed String param must be applied as String or as its Date
         translation; other datums directly *)
      let accounted o =
        let hits d = Option.value ~default:0 (Hashtbl.find_opt applied d) in
        match o with
        | Datum.String s -> (
            hits o > 0
            || match Datum.date_of_string s with
               | Datum.Date _ as od -> hits od > 0
               | _ -> false)
        | _ -> hits o > 0
      in
      let ok = Hashtbl.fold (fun o _ acc -> acc && accounted o) map true in
      if ok then Some plan' else None
    end
  end

(* ---------------- the cache proper --------------------------------- *)

type key = { k_fp : string; k_catalog : int; k_stats : int }

type variant = { v_params_key : string; v_params : Datum.t list; v_plan : Expr.plan }

type entry = {
  e_norm_text : string;
  mutable e_variants : variant list; (* MRU first, length <= max_variants *)
  mutable e_lru : int;               (* global LRU stamp *)
}

type stats = {
  hits : int;
  misses : int;
  rebinds : int;
  evictions : int;
  invalidations : int;
  collisions : int;
  entries : int;
  variants : int;
}

type t = {
  capacity : int;     (* max entries *)
  max_variants : int; (* max binding variants per entry *)
  table : (key, entry) Hashtbl.t;
  lock : Mutex.t;
  mutable seq : int;
  mutable hits : int;
  mutable misses : int;
  mutable rebinds : int;
  mutable evictions : int;
  mutable invalidations : int;
  mutable collisions : int;
  mutable on_evict : (string -> unit) option;
      (* notified with the victim's fingerprint after each LRU eviction,
         while the cache lock is held — the service event log's hook.
         Must not reenter the cache. *)
}

let create ?(capacity = 256) ?(max_variants = 8) () =
  {
    capacity = max 1 capacity;
    max_variants = max 1 max_variants;
    table = Hashtbl.create 64;
    lock = Mutex.create ();
    seq = 0;
    hits = 0;
    misses = 0;
    rebinds = 0;
    evictions = 0;
    invalidations = 0;
    collisions = 0;
    on_evict = None;
  }

let set_on_evict t f = t.on_evict <- f
let capacity t = t.capacity

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let touch t entry =
  t.seq <- t.seq + 1;
  entry.e_lru <- t.seq

type outcome = Hit of Expr.plan | Rebound of Expr.plan | Miss

let find t ~fp ~norm_text ~params ~catalog_version ~stats_version =
  let key = { k_fp = fp; k_catalog = catalog_version; k_stats = stats_version } in
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | None ->
          t.misses <- t.misses + 1;
          Telemetry.Metrics.inc Telemetry.Std.plan_cache_misses;
          Miss
      | Some entry when entry.e_norm_text <> norm_text ->
          (* 64-bit fingerprint collision: two distinct shapes share a hash.
             Never serve across it. *)
          t.collisions <- t.collisions + 1;
          t.misses <- t.misses + 1;
          Telemetry.Metrics.inc Telemetry.Std.plan_cache_collisions;
          Telemetry.Metrics.inc Telemetry.Std.plan_cache_misses;
          Miss
      | Some entry -> (
          touch t entry;
          let pkey = Normalize.params_key params in
          match
            List.find_opt (fun v -> v.v_params_key = pkey) entry.e_variants
          with
          | Some v ->
              (* exact binding variant: MRU it and return the plan as-is *)
              entry.e_variants <-
                v :: List.filter (fun w -> w != v) entry.e_variants;
              t.hits <- t.hits + 1;
              Telemetry.Metrics.inc Telemetry.Std.plan_cache_hits;
              Hit v.v_plan
          | None -> (
              match entry.e_variants with
              | [] ->
                  t.misses <- t.misses + 1;
                  Telemetry.Metrics.inc Telemetry.Std.plan_cache_misses;
                  Miss
              | recent :: _ -> (
                  match
                    rebind ~old_params:recent.v_params ~new_params:params
                      recent.v_plan
                  with
                  | Some plan ->
                      t.rebinds <- t.rebinds + 1;
                      Telemetry.Metrics.inc Telemetry.Std.plan_cache_hits;
                      Rebound plan
                  | None ->
                      t.misses <- t.misses + 1;
                      Telemetry.Metrics.inc Telemetry.Std.plan_cache_misses;
                      Miss))))

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key entry acc ->
        match acc with
        | Some (_, best) when best.e_lru <= entry.e_lru -> acc
        | _ -> Some (key, entry))
      t.table None
  in
  match victim with
  | None -> ()
  | Some (key, _) ->
      Hashtbl.remove t.table key;
      t.evictions <- t.evictions + 1;
      Telemetry.Metrics.inc Telemetry.Std.plan_cache_evictions;
      (match t.on_evict with None -> () | Some f -> f key.k_fp)

let add t ~fp ~norm_text ~params ~catalog_version ~stats_version plan =
  let key = { k_fp = fp; k_catalog = catalog_version; k_stats = stats_version } in
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some entry when entry.e_norm_text <> norm_text ->
          (* collision on insert: keep the resident shape *)
          t.collisions <- t.collisions + 1;
          Telemetry.Metrics.inc Telemetry.Std.plan_cache_collisions
      | Some entry ->
          let pkey = Normalize.params_key params in
          let kept =
            List.filter (fun v -> v.v_params_key <> pkey) entry.e_variants
          in
          let kept =
            if List.length kept >= t.max_variants then
              List.filteri (fun i _ -> i < t.max_variants - 1) kept
            else kept
          in
          entry.e_variants <-
            { v_params_key = pkey; v_params = params; v_plan = plan } :: kept;
          touch t entry
      | None ->
          if Hashtbl.length t.table >= t.capacity then evict_lru t;
          let entry =
            {
              e_norm_text = norm_text;
              e_variants =
                [
                  {
                    v_params_key = Normalize.params_key params;
                    v_params = params;
                    v_plan = plan;
                  };
                ];
              e_lru = 0;
            }
          in
          touch t entry;
          Hashtbl.replace t.table key entry)

(* Drop every entry not built against [keep = (catalog, stats)] versions —
   the explicit-invalidation path after a Source bump. *)
let invalidate t ~keep:(catalog_version, stats_version) =
  locked t (fun () ->
      let stale =
        Hashtbl.fold
          (fun key _ acc ->
            if key.k_catalog <> catalog_version || key.k_stats <> stats_version
            then key :: acc
            else acc)
          t.table []
      in
      List.iter (Hashtbl.remove t.table) stale;
      let n = List.length stale in
      t.invalidations <- t.invalidations + n;
      Telemetry.Metrics.add Telemetry.Std.plan_cache_invalidations n;
      n)

let clear t =
  locked t (fun () ->
      let n = Hashtbl.length t.table in
      Hashtbl.reset t.table;
      t.invalidations <- t.invalidations + n;
      Telemetry.Metrics.add Telemetry.Std.plan_cache_invalidations n;
      n)

let stats t =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        rebinds = t.rebinds;
        evictions = t.evictions;
        invalidations = t.invalidations;
        collisions = t.collisions;
        entries = Hashtbl.length t.table;
        variants =
          Hashtbl.fold
            (fun _ e acc -> acc + List.length e.e_variants)
            t.table 0;
      })

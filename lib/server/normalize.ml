(* Query normalization for the parameterized plan cache: lift every literal
   out of the token stream, render the remaining shape as canonical text and
   fingerprint it with the telemetry FNV-1a digest. Two queries that differ
   only in constants (or case, or whitespace, or comments) share a
   fingerprint; their constants become the parameter vector that selects a
   binding variant inside the cache entry. *)

open Ir

type t = {
  raw : string;  (* the request text, verbatim *)
  text : string; (* canonical shape: literals replaced by $1, $2, ... *)
  params : Datum.t list; (* lifted constants, in occurrence order *)
  fingerprint : string;  (* FNV-1a digest of [text] *)
}

let datum_of_token (tok : Sqlfront.Token.t) : Datum.t option =
  match tok with
  | Sqlfront.Token.INT n -> Some (Datum.Int n)
  | Sqlfront.Token.FLOAT f -> Some (Datum.Float f)
  | Sqlfront.Token.STRING s -> Some (Datum.String s)
  | _ -> None

let normalize raw =
  let toks = Sqlfront.Lexer.tokenize raw in
  let buf = Buffer.create (String.length raw) in
  let params = ref [] in
  let nparams = ref 0 in
  List.iter
    (fun tok ->
      let piece =
        match datum_of_token tok with
        | Some d ->
            incr nparams;
            params := d :: !params;
            Printf.sprintf "$%d" !nparams
        | None -> (
            match tok with
            | Sqlfront.Token.IDENT s -> s (* already lowercased by the lexer *)
            | Sqlfront.Token.KEYWORD k -> k
            | Sqlfront.Token.SYMBOL s -> s
            | Sqlfront.Token.EOF -> ""
            | Sqlfront.Token.INT _ | Sqlfront.Token.FLOAT _
            | Sqlfront.Token.STRING _ ->
                assert false)
      in
      if piece <> "" then begin
        if Buffer.length buf > 0 then Buffer.add_char buf ' ';
        Buffer.add_string buf piece
      end)
    toks;
  let text = Buffer.contents buf in
  {
    raw;
    text;
    params = List.rev !params;
    fingerprint = Telemetry.Metrics.fingerprint text;
  }

(* Canonical rendering of a parameter vector: the binding-variant key inside
   a cache entry. [Datum.serialize] is tagged and exactly round-trippable,
   so distinct vectors cannot collide. *)
let params_key params =
  String.concat "\x00" (List.map Datum.serialize params)

let param_to_string = Datum.to_string

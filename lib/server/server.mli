(** Orca as a resident service: a long-lived optimizer process fielding
    newline-delimited requests over stdin/stdout or a Unix-domain socket,
    with a parameterized {!Plan_cache} in front of optimization.

    Each request takes an immutable {!Catalog.Snapshot} of the server's
    {!Catalog.Source}; the cache is consulted under the snapshot's
    (catalog, stats) versions, so version bumps and concurrent sessions
    interleave safely without locks around optimization. All responses are
    single JSON lines on the protocol stream; progress goes to [log].

    Observability (lib/sre): sessions carry ids, every request gets a trace
    id ["s<sid>-r<rid>"] echoed in its reply and threaded into
    [Orca_config.trace_id] on cache misses (which run through
    {!Orca.Flight}, so an armed flight recorder captures slow/failed
    server requests); a structured {!Sre.Events} log and a rolling-window
    {!Sre.Slo} monitor back the [!metrics]/[!health]/[!slo] endpoints. *)

module Normalize = Normalize
module Plan_cache = Plan_cache

type t

val create :
  ?config:Orca.Orca_config.t ->
  ?capacity:int ->
  ?max_variants:int ->
  ?events:Sre.Events.t ->
  ?slo_objectives:Sre.Slo.objectives ->
  Catalog.Source.t ->
  t
(** [config] defaults to {!Orca.Orca_config.default}; [capacity] and
    [max_variants] bound the plan cache (see {!Plan_cache.create});
    [events] defaults to a fresh enabled 1024-entry log (pass
    [Sre.Events.create ~enabled:false ()] to run dark); [slo_objectives]
    defaults to {!Sre.Slo.default_objectives}. *)

val of_provider :
  ?config:Orca.Orca_config.t ->
  ?capacity:int ->
  ?max_variants:int ->
  ?events:Sre.Events.t ->
  ?slo_objectives:Sre.Slo.objectives ->
  Catalog.Provider.t ->
  t
(** [create] over a fresh source wrapping the provider. *)

val source : t -> Catalog.Source.t
val plan_cache : t -> Plan_cache.t

val events : t -> Sre.Events.t
(** The server's structured event log (ring + optional sink). *)

val slo : t -> Sre.Slo.t
(** The server's rolling-window SLO monitor. *)

val uptime_s : t -> float

(** {1 Sessions and tracing} *)

type session
(** One protocol session's identity and accounting. [serve_channels] opens
    and closes its own; API callers may open one explicitly to attribute
    their requests, or pass none and share the sid-0 pseudo-session. *)

val session_id : session -> int

val open_session : t -> session
(** Register a fresh session (sid 1, 2, ...); emits [session_open]. *)

val close_session : t -> session -> unit
(** Mark the session closed and emit [session_close] with its counts.
    Idempotent. *)

type cache_result = Hit | Rebound | Missed

val cache_result_to_string : cache_result -> string
(** ["hit"], ["rebind"], ["miss"] — the protocol's [cache] field. *)

type reply = {
  r_plan : Ir.Expr.plan;
  r_dxl : string Lazy.t;     (** DXL serialization, forced on demand *)
  r_trace : string;          (** this request's trace id, e.g. ["s2-r7"] *)
  r_fingerprint : string;
  r_result : cache_result;
  r_ms : float;              (** end-to-end serve latency *)
  r_catalog_version : int;
  r_stats_version : int;
}

val json_of_reply : include_plan:bool -> reply -> string
(** The protocol's single-line rendering of a reply (exposed for tests). *)

val optimize_sql : ?session:session -> t -> string -> (reply, string) result
(** Field one SQL request through the plan cache; misses bind and optimize
    against the snapshot taken before the cache probe and insert the result.
    Errors (parse/bind/unsupported) are returned, counted and never cached.
    The request is attributed to [session] (default: the sid-0 API
    pseudo-session): trace id, event-log entries, SLO observation. *)

val invalidate : t -> [ `Catalog | `Stats ] -> int * (int * int)
(** Bump the source version and drop every stale cache entry. Returns
    [(dropped, (catalog_version, stats_version))]. *)

type stats = {
  s_requests : int;
  s_errors : int;
  s_cache : Plan_cache.stats;
  s_uptime_s : float;
  s_sessions_open : int;
  s_sessions_total : int;  (** including the sid-0 API pseudo-session *)
  s_per_session : (int * int * int) list;
      (** (sid, requests, errors), sorted by sid *)
  s_p50_ms : float;  (** lifetime request latency quantiles, this server *)
  s_p95_ms : float;
  s_p99_ms : float;
}

val stats : t -> stats

val health : t -> Sre.Health.input * Sre.Health.verdict
(** Gather the server's vital signs (including the current SLO report) and
    evaluate readiness — the [!health] endpoint's body. *)

val serve_channels :
  ?log:(string -> unit) ->
  ?include_plan:bool ->
  t ->
  in_channel ->
  out_channel ->
  unit
(** One protocol session: a plain line is SQL to optimize; control lines
    are [!ping], [!plan on|off], [!invalidate catalog|stats], [!stats],
    [!metrics], [!health], [!slo] and [!quit]. One JSON response line per
    request, flushed immediately; the session ends on [!quit] or EOF.
    [include_plan] sets the session's initial [!plan] state. *)

val serve_unix :
  ?log:(string -> unit) ->
  ?include_plan:bool ->
  ?backlog:int ->
  ?max_sessions:int ->
  t ->
  path:string ->
  unit ->
  unit
(** Listen on a Unix-domain socket, one thread per connection, each running
    {!serve_channels}. [max_sessions] bounds accepted connections (after
    which the listener drains its sessions and returns — used by tests);
    without it the listener runs forever. Removes [path] on exit. *)

(** Orca as a resident service: a long-lived optimizer process fielding
    newline-delimited requests over stdin/stdout or a Unix-domain socket,
    with a parameterized {!Plan_cache} in front of optimization.

    Each request takes an immutable {!Catalog.Snapshot} of the server's
    {!Catalog.Source}; the cache is consulted under the snapshot's
    (catalog, stats) versions, so version bumps and concurrent sessions
    interleave safely without locks around optimization. All responses are
    single JSON lines on the protocol stream; progress goes to [log]. *)

module Normalize = Normalize
module Plan_cache = Plan_cache

type t

val create :
  ?config:Orca.Orca_config.t ->
  ?capacity:int ->
  ?max_variants:int ->
  Catalog.Source.t ->
  t
(** [config] defaults to {!Orca.Orca_config.default}; [capacity] and
    [max_variants] bound the plan cache (see {!Plan_cache.create}). *)

val of_provider :
  ?config:Orca.Orca_config.t ->
  ?capacity:int ->
  ?max_variants:int ->
  Catalog.Provider.t ->
  t
(** [create] over a fresh source wrapping the provider. *)

val source : t -> Catalog.Source.t
val plan_cache : t -> Plan_cache.t

type cache_result = Hit | Rebound | Missed

val cache_result_to_string : cache_result -> string
(** ["hit"], ["rebind"], ["miss"] — the protocol's [cache] field. *)

type reply = {
  r_plan : Ir.Expr.plan;
  r_dxl : string Lazy.t;     (** DXL serialization, forced on demand *)
  r_fingerprint : string;
  r_result : cache_result;
  r_ms : float;              (** end-to-end serve latency *)
  r_catalog_version : int;
  r_stats_version : int;
}

val optimize_sql : t -> string -> (reply, string) result
(** Field one SQL request through the plan cache; misses bind and optimize
    against the snapshot taken before the cache probe and insert the result.
    Errors (parse/bind/unsupported) are returned, counted and never cached. *)

val invalidate : t -> [ `Catalog | `Stats ] -> int * (int * int)
(** Bump the source version and drop every stale cache entry. Returns
    [(dropped, (catalog_version, stats_version))]. *)

type stats = { s_requests : int; s_errors : int; s_cache : Plan_cache.stats }

val stats : t -> stats

val serve_channels :
  ?log:(string -> unit) ->
  ?include_plan:bool ->
  t ->
  in_channel ->
  out_channel ->
  unit
(** One protocol session: a plain line is SQL to optimize; control lines are
    [!ping], [!plan on|off], [!invalidate catalog|stats], [!stats] and
    [!quit]. One JSON response line per request, flushed immediately; the
    session ends on [!quit] or EOF. [include_plan] sets the session's
    initial [!plan] state. *)

val serve_unix :
  ?log:(string -> unit) ->
  ?include_plan:bool ->
  ?backlog:int ->
  ?max_sessions:int ->
  t ->
  path:string ->
  unit ->
  unit
(** Listen on a Unix-domain socket, one thread per connection, each running
    {!serve_channels}. [max_sessions] bounds accepted connections (after
    which the listener drains its sessions and returns — used by tests);
    without it the listener runs forever. Removes [path] on exit. *)

(** The parameterized plan cache: final physical plans keyed on
    (fingerprint, catalog version, stats version), LRU-bounded, explicitly
    invalidated on catalog/stats change.

    Each entry stores the normalized query text (fingerprint-collision
    detection) and a small MRU list of binding variants — one optimized plan
    per parameter vector. Exact-variant hits return the cached plan
    unchanged (byte-identical to fresh optimization for a fixed snapshot);
    other parameter vectors are served by {!rebind} when unambiguous and
    count as misses otherwise. Rebound plans are never stored. All
    operations are thread-safe; counters feed both local {!stats} and the
    [orca_plan_cache_*] telemetry series. *)

open Ir

type t

val create : ?capacity:int -> ?max_variants:int -> unit -> t
(** [capacity] bounds cached entries (default 256, LRU eviction);
    [max_variants] bounds binding variants per entry (default 8, MRU kept). *)

val capacity : t -> int
(** The entry bound — the [!health] endpoint's occupancy denominator. *)

val set_on_evict : t -> (string -> unit) option -> unit
(** Observe LRU evictions: called with the victim entry's fingerprint,
    while the cache lock is held (keep it cheap; must not reenter the
    cache). The service event log's [evict] hook. *)

type outcome =
  | Hit of Expr.plan      (** exact binding variant, returned unchanged *)
  | Rebound of Expr.plan  (** generic plan with parameters substituted *)
  | Miss

val find :
  t ->
  fp:string ->
  norm_text:string ->
  params:Datum.t list ->
  catalog_version:int ->
  stats_version:int ->
  outcome

val add :
  t ->
  fp:string ->
  norm_text:string ->
  params:Datum.t list ->
  catalog_version:int ->
  stats_version:int ->
  Expr.plan ->
  unit
(** Insert a freshly optimized plan as the MRU binding variant of its entry,
    evicting (entry-level LRU, then variant-level MRU bound) as needed. An
    insert whose [norm_text] disagrees with the resident entry is a
    fingerprint collision: counted and dropped, the resident shape wins. *)

val invalidate : t -> keep:(int * int) -> int
(** Drop every entry not built against [keep = (catalog_version,
    stats_version)]; returns the number dropped. The explicit-invalidation
    path after a {!Catalog.Source} version bump. *)

val clear : t -> int
(** Drop everything (counted as invalidations); returns the number dropped. *)

type stats = {
  hits : int;           (** exact-variant hits *)
  misses : int;         (** fresh optimizations required *)
  rebinds : int;        (** generic-plan hits via parameter substitution *)
  evictions : int;      (** entries evicted by the LRU bound *)
  invalidations : int;  (** entries dropped by explicit invalidation *)
  collisions : int;     (** fingerprint collisions detected *)
  entries : int;        (** resident entries *)
  variants : int;       (** resident binding variants *)
}

val stats : t -> stats

val rebind :
  old_params:Datum.t list ->
  new_params:Datum.t list ->
  Expr.plan ->
  Expr.plan option
(** Substitute a new parameter vector into a cached plan (constants in
    scalars, IN-lists, LIKE patterns, LIMIT/OFFSET, and date-literal
    translations). Returns [None] when the substitution would be ambiguous
    or incomplete: arity/type mismatch, a changed value colliding with an
    unchanged one, a changed value not found in the plan, or baked partition
    decisions. Cost/cardinality annotations stay those of the cached shape
    (generic-plan semantics). Exposed for tests. *)

(* Orca as a resident service (paper §3: the optimizer runs outside the
   database system, fielding requests over a stream). A server owns a
   mutable catalog {!Catalog.Source}, an MD cache shared across sessions and
   a {!Plan_cache}. Each request takes an immutable snapshot of the source,
   consults the cache under the snapshot's (catalog, stats) versions and
   only optimizes on a miss — so concurrent sessions, catalog bumps and
   cache invalidation interleave without locks around optimization itself.

   Front end: a newline-delimited request/response protocol, served either
   over stdin/stdout ([serve_channels]) or a Unix-domain socket with one
   thread per connection ([serve_unix]). A plain line is SQL to optimize;
   [!]-prefixed lines are control commands (see [handle_line]). Every
   response is a single JSON line on the protocol stream; progress and
   diagnostics go through the [log] callback (stderr in the CLI), keeping
   stdout protocol-clean. *)

(* server.ml doubles as the library's entry module: re-export the pieces. *)
module Normalize = Normalize
module Plan_cache = Plan_cache

type t = {
  source : Catalog.Source.t;
  md_cache : Catalog.Md_cache.t;
  cache : Plan_cache.t;
  config : Orca.Orca_config.t;
  lock : Mutex.t; (* requests/errors counters *)
  mutable requests : int;
  mutable errors : int;
}

let create ?(config = Orca.Orca_config.default) ?capacity ?max_variants source
    =
  {
    source;
    md_cache = Catalog.Md_cache.create ();
    cache = Plan_cache.create ?capacity ?max_variants ();
    config;
    lock = Mutex.create ();
    requests = 0;
    errors = 0;
  }

let of_provider ?config ?capacity ?max_variants provider =
  create ?config ?capacity ?max_variants (Catalog.Source.create provider)

let source t = t.source
let plan_cache t = t.cache

type cache_result = Hit | Rebound | Missed

let cache_result_to_string = function
  | Hit -> "hit"
  | Rebound -> "rebind"
  | Missed -> "miss"

type reply = {
  r_plan : Ir.Expr.plan;
  r_dxl : string Lazy.t;
  r_fingerprint : string;
  r_result : cache_result;
  r_ms : float;
  r_catalog_version : int;
  r_stats_version : int;
}

let count_request t =
  Mutex.lock t.lock;
  t.requests <- t.requests + 1;
  Mutex.unlock t.lock

let count_error t =
  Mutex.lock t.lock;
  t.errors <- t.errors + 1;
  Mutex.unlock t.lock

(* Optimize one SQL request through the plan cache. On a miss the query is
   bound and optimized against the snapshot taken before the cache probe, so
   the inserted plan is keyed exactly on the versions it was built from. *)
let optimize_sql t sql : (reply, string) result =
  let t0 = Gpos.Clock.now () in
  count_request t;
  Telemetry.Metrics.inc Telemetry.Std.serve_requests;
  match
    let n = Normalize.normalize sql in
    let snapshot = Catalog.Source.snapshot t.source in
    let catalog_version = Catalog.Snapshot.catalog_version snapshot in
    let stats_version = Catalog.Snapshot.stats_version snapshot in
    let plan, result =
      match
        Plan_cache.find t.cache ~fp:n.Normalize.fingerprint
          ~norm_text:n.Normalize.text ~params:n.Normalize.params
          ~catalog_version ~stats_version
      with
      | Plan_cache.Hit plan -> (plan, Hit)
      | Plan_cache.Rebound plan -> (plan, Rebound)
      | Plan_cache.Miss ->
          let accessor =
            Catalog.Accessor.of_snapshot ~snapshot ~cache:t.md_cache ()
          in
          let query = Sqlfront.Binder.bind_sql accessor sql in
          let report = Orca.Optimizer.optimize ~config:t.config accessor query in
          Plan_cache.add t.cache ~fp:n.Normalize.fingerprint
            ~norm_text:n.Normalize.text ~params:n.Normalize.params
            ~catalog_version ~stats_version report.Orca.Optimizer.plan;
          (report.Orca.Optimizer.plan, Missed)
    in
    let ms = Gpos.Clock.ms_since t0 in
    Telemetry.Metrics.observe Telemetry.Std.serve_ms ms;
    {
      r_plan = plan;
      r_dxl = lazy (Dxl.Dxl_plan.to_string plan);
      r_fingerprint = n.Normalize.fingerprint;
      r_result = result;
      r_ms = ms;
      r_catalog_version = catalog_version;
      r_stats_version = stats_version;
    }
  with
  | reply -> Ok reply
  | exception Orca.Optimizer.Unsupported_query msg ->
      count_error t;
      Telemetry.Metrics.inc Telemetry.Std.serve_errors;
      Error ("unsupported query: " ^ msg)
  | exception (Gpos.Gpos_error.Error _ as e) ->
      count_error t;
      Telemetry.Metrics.inc Telemetry.Std.serve_errors;
      Error (Gpos.Gpos_error.to_string e)

(* Bump the source version and drop every cache entry keyed on an older
   snapshot; returns the number dropped and the new versions. *)
let invalidate t what =
  (match what with
  | `Catalog -> Catalog.Source.bump_catalog t.source
  | `Stats -> Catalog.Source.bump_stats t.source);
  let versions = Catalog.Source.versions t.source in
  let dropped = Plan_cache.invalidate t.cache ~keep:versions in
  (dropped, versions)

type stats = { s_requests : int; s_errors : int; s_cache : Plan_cache.stats }

let stats t =
  Mutex.lock t.lock;
  let requests = t.requests and errors = t.errors in
  Mutex.unlock t.lock;
  { s_requests = requests; s_errors = errors; s_cache = Plan_cache.stats t.cache }

(* ---------------- the line protocol -------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_error msg = Printf.sprintf {|{"ok":false,"error":"%s"}|} (json_escape msg)

let json_of_reply ~include_plan (r : reply) =
  let plan_field =
    if include_plan then
      Printf.sprintf {|,"plan":"%s"|} (json_escape (Lazy.force r.r_dxl))
    else ""
  in
  Printf.sprintf
    {|{"ok":true,"cache":"%s","fingerprint":"%s","ms":%.3f,"cost":%.6g,"rows":%.6g,"catalog_version":%d,"stats_version":%d%s}|}
    (cache_result_to_string r.r_result)
    r.r_fingerprint r.r_ms r.r_plan.Ir.Expr.pcost r.r_plan.Ir.Expr.pest_rows
    r.r_catalog_version r.r_stats_version plan_field

let json_of_stats t =
  let s = stats t in
  let c = s.s_cache in
  let answered = c.Plan_cache.hits + c.Plan_cache.rebinds in
  let probes = answered + c.Plan_cache.misses in
  let hit_rate =
    if probes = 0 then 0.0 else float_of_int answered /. float_of_int probes
  in
  Printf.sprintf
    {|{"ok":true,"requests":%d,"errors":%d,"hits":%d,"rebinds":%d,"misses":%d,"evictions":%d,"invalidations":%d,"collisions":%d,"entries":%d,"variants":%d,"hit_rate":%.4f}|}
    s.s_requests s.s_errors c.Plan_cache.hits c.Plan_cache.rebinds
    c.Plan_cache.misses c.Plan_cache.evictions c.Plan_cache.invalidations
    c.Plan_cache.collisions c.Plan_cache.entries c.Plan_cache.variants hit_rate

(* One request line: a plain line is SQL; [!]-prefixed lines are control
   commands:
     !ping                      liveness probe
     !plan on|off               include the DXL plan in responses
     !invalidate catalog|stats  bump the source version, drop stale entries
     !stats                     cache/serve counters
     !quit                      end the session *)
let handle_line t ~session_plan line =
  let line = String.trim line in
  if line = "" then `Silent
  else if String.length line > 0 && line.[0] = '!' then
    match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
    | [ "!ping" ] -> `Reply {|{"ok":true,"pong":true}|}
    | [ "!quit" ] -> `Quit {|{"ok":true,"bye":true}|}
    | [ "!plan"; "on" ] ->
        session_plan := true;
        `Reply {|{"ok":true,"plan":true}|}
    | [ "!plan"; "off" ] ->
        session_plan := false;
        `Reply {|{"ok":true,"plan":false}|}
    | [ "!stats" ] -> `Reply (json_of_stats t)
    | [ "!invalidate"; what ] when what = "catalog" || what = "stats" ->
        let target = if what = "catalog" then `Catalog else `Stats in
        let dropped, (cat, st) = invalidate t target in
        `Reply
          (Printf.sprintf
             {|{"ok":true,"invalidated":"%s","dropped":%d,"catalog_version":%d,"stats_version":%d}|}
             what dropped cat st)
    | _ -> `Reply (json_error ("unknown control command: " ^ line))
  else
    match optimize_sql t line with
    | Ok reply -> `Reply (json_of_reply ~include_plan:!session_plan reply)
    | Error msg -> `Reply (json_error msg)

(* One session over arbitrary channels. Responses are flushed per line so a
   pipelined client never deadlocks; [log] receives session progress. *)
let serve_channels ?(log = ignore) ?(include_plan = false) t ic oc =
  let session_plan = ref include_plan in
  log "session open";
  let quit = ref false in
  (try
     while not !quit do
       match input_line ic with
       | exception End_of_file -> quit := true
       | line -> (
           match handle_line t ~session_plan line with
           | `Silent -> ()
           | `Reply json ->
               output_string oc json;
               output_char oc '\n';
               flush oc
           | `Quit json ->
               output_string oc json;
               output_char oc '\n';
               flush oc;
               quit := true)
     done
   with Sys_error _ -> ());
  log "session closed"

(* Unix-domain socket listener: one thread per accepted connection, each
   running the same session loop. [max_sessions] bounds accepted connections
   (tests); without it the listener runs until the process dies. *)
let serve_unix ?(log = ignore) ?(include_plan = false) ?(backlog = 16)
    ?max_sessions t ~path () =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock backlog;
      log (Printf.sprintf "listening on %s" path);
      let threads = ref [] in
      let accepted = ref 0 in
      let continue () =
        match max_sessions with None -> true | Some n -> !accepted < n
      in
      while continue () do
        let fd, _ = Unix.accept sock in
        incr accepted;
        let n = !accepted in
        let th =
          Thread.create
            (fun fd ->
              let ic = Unix.in_channel_of_descr fd in
              let oc = Unix.out_channel_of_descr fd in
              let log msg = log (Printf.sprintf "[conn %d] %s" n msg) in
              serve_channels ~log ~include_plan t ic oc;
              (try close_out oc with Sys_error _ -> ());
              try Unix.close fd with Unix.Unix_error _ -> ())
            fd
        in
        threads := th :: !threads
      done;
      List.iter Thread.join !threads)

(* Orca as a resident service (paper §3: the optimizer runs outside the
   database system, fielding requests over a stream). A server owns a
   mutable catalog {!Catalog.Source}, an MD cache shared across sessions and
   a {!Plan_cache}. Each request takes an immutable snapshot of the source,
   consults the cache under the snapshot's (catalog, stats) versions and
   only optimizes on a miss — so concurrent sessions, catalog bumps and
   cache invalidation interleave without locks around optimization itself.

   Observability (lib/sre): every session gets an id, every request a
   trace id ("s<sid>-r<rid>") echoed in its reply, stamped on the
   structured event log, threaded into [Orca_config.trace_id] on misses
   (lib/obs span attribution, flight-recorder dump traceflags) and used as
   the flight-recorder entry label. Misses run through {!Orca.Flight}, so
   arming [Telemetry.Recorder.configure ~slow_ms ~dump_dir] turns slow or
   failing server requests into replayable AMPERe dumps. A rolling-window
   {!Sre.Slo} monitor accumulates latency/availability objectives behind
   the [!slo] endpoint.

   Front end: a newline-delimited request/response protocol, served either
   over stdin/stdout ([serve_channels]) or a Unix-domain socket with one
   thread per connection ([serve_unix]). A plain line is SQL to optimize;
   [!]-prefixed lines are control commands (see [handle_line]). Every
   response is a single JSON line on the protocol stream; progress and
   diagnostics go through the [log] callback (stderr in the CLI) and the
   event log sinks to a file or stderr only, keeping stdout
   protocol-clean. *)

(* server.ml doubles as the library's entry module: re-export the pieces. *)
module Normalize = Normalize
module Plan_cache = Plan_cache

(* One protocol session (or the shared sid-0 pseudo-session of direct API
   callers). The counters are guarded by the server lock; the request-id
   allocator is its own atomic (the API session is hit concurrently). *)
type session = {
  s_sid : int;
  s_trace : Sre.Trace.session;
  mutable s_count : int;  (* requests fielded, server lock *)
  mutable s_errs : int;
  mutable s_live : bool;  (* open protocol connection *)
}

type t = {
  source : Catalog.Source.t;
  md_cache : Catalog.Md_cache.t;
  cache : Plan_cache.t;
  config : Orca.Orca_config.t;
  lock : Mutex.t; (* requests/errors counters, session registry *)
  mutable requests : int;
  mutable errors : int;
  started : float;
  mutable last_md_change : float; (* !health snapshot age; server lock *)
  tgen : Sre.Trace.gen;
  api : session;
  mutable sessions : session list; (* registration order, newest first *)
  events : Sre.Events.t;
  slo : Sre.Slo.t;
  lat_ms : Telemetry.Metrics.histogram;
      (* this server's lifetime request latency (private registry: the
         process-global orca_serve_ms would mix servers in tests) *)
}

let create ?(config = Orca.Orca_config.default) ?capacity ?max_variants
    ?(events = Sre.Events.create ()) ?slo_objectives source =
  let tgen = Sre.Trace.make_gen () in
  let api =
    {
      s_sid = 0;
      s_trace = Sre.Trace.api_session tgen;
      s_count = 0;
      s_errs = 0;
      s_live = false;
    }
  in
  let cache = Plan_cache.create ?capacity ?max_variants () in
  let now = Gpos.Clock.now () in
  let t =
    {
      source;
      md_cache = Catalog.Md_cache.create ();
      cache;
      config;
      lock = Mutex.create ();
      requests = 0;
      errors = 0;
      started = now;
      last_md_change = now;
      tgen;
      api;
      sessions = [ api ];
      events;
      slo = Sre.Slo.create ?objectives:slo_objectives ();
      lat_ms =
        Telemetry.Metrics.histogram
          (Telemetry.Metrics.create ())
          ~help:"per-server request latency (ms)" "orca_server_request_ms";
    }
  in
  Plan_cache.set_on_evict cache
    (Some
       (fun fp ->
         if Sre.Events.on events Sre.Events.Info then
           Sre.Events.emit events ~kind:"evict"
             [ ("fingerprint", Sre.Events.S fp) ]));
  t

let of_provider ?config ?capacity ?max_variants ?events ?slo_objectives
    provider =
  create ?config ?capacity ?max_variants ?events ?slo_objectives
    (Catalog.Source.create provider)

let source t = t.source
let plan_cache t = t.cache
let events t = t.events
let slo t = t.slo
let uptime_s t = Gpos.Clock.now () -. t.started

(* ---------------- sessions and tracing ----------------------------- *)

let session_id s = s.s_sid

let open_session t =
  let trace = Sre.Trace.open_session t.tgen in
  let s =
    {
      s_sid = trace.Sre.Trace.sid;
      s_trace = trace;
      s_count = 0;
      s_errs = 0;
      s_live = true;
    }
  in
  Mutex.lock t.lock;
  t.sessions <- s :: t.sessions;
  Mutex.unlock t.lock;
  Telemetry.Metrics.inc Telemetry.Std.serve_sessions;
  if Sre.Events.on t.events Sre.Events.Info then
    Sre.Events.emit t.events ~kind:"session_open"
      [ ("session", Sre.Events.I s.s_sid) ];
  s

let close_session t s =
  if s.s_live then begin
    s.s_live <- false;
    if Sre.Events.on t.events Sre.Events.Info then
      Sre.Events.emit t.events ~kind:"session_close"
        [
          ("session", Sre.Events.I s.s_sid);
          ("requests", Sre.Events.I s.s_count);
          ("errors", Sre.Events.I s.s_errs);
        ]
  end

type cache_result = Hit | Rebound | Missed

let cache_result_to_string = function
  | Hit -> "hit"
  | Rebound -> "rebind"
  | Missed -> "miss"

type reply = {
  r_plan : Ir.Expr.plan;
  r_dxl : string Lazy.t;
  r_trace : string;
  r_fingerprint : string;
  r_result : cache_result;
  r_ms : float;
  r_catalog_version : int;
  r_stats_version : int;
}

let count_request t s =
  Mutex.lock t.lock;
  t.requests <- t.requests + 1;
  s.s_count <- s.s_count + 1;
  Mutex.unlock t.lock

let count_error t s =
  Mutex.lock t.lock;
  t.errors <- t.errors + 1;
  s.s_errs <- s.s_errs + 1;
  Mutex.unlock t.lock

(* The terminal accounting every request reaches exactly once: latency into
   the SLO window and the lifetime histogram, plus the request_finish /
   request_error event. The event-log invariant the concurrency test leans
   on — terminal events sum to s_requests — hangs on this being the single
   exit path. *)
let finish_request t ~trace ~ms outcome =
  Telemetry.Metrics.observe Telemetry.Std.serve_ms ms;
  Telemetry.Metrics.observe t.lat_ms ms;
  Sre.Slo.observe t.slo ~ms
    ~ok:(match outcome with `Ok _ -> true | `Error _ -> false);
  if Sre.Events.on t.events Sre.Events.Info then
    match outcome with
    | `Ok (result, cost) ->
        Sre.Events.emit t.events ~trace ~kind:"request_finish"
          [
            ("cache", Sre.Events.S (cache_result_to_string result));
            ("ms", Sre.Events.F ms);
            ("cost", Sre.Events.F cost);
          ]
    | `Error msg ->
        Sre.Events.emit t.events ~level:Sre.Events.Error ~trace
          ~kind:"request_error"
          [ ("ms", Sre.Events.F ms); ("error", Sre.Events.S msg) ]

(* Optimize one SQL request through the plan cache. On a miss the query is
   bound and optimized against the snapshot taken before the cache probe, so
   the inserted plan is keyed exactly on the versions it was built from.
   Misses run through the flight recorder under this request's trace id. *)
let optimize_sql ?session t sql : (reply, string) result =
  let s = match session with Some s -> s | None -> t.api in
  let t0 = Gpos.Clock.now () in
  count_request t s;
  Telemetry.Metrics.inc Telemetry.Std.serve_requests;
  let trace = Sre.Trace.next s.s_trace in
  match
    let n = Normalize.normalize sql in
    if Sre.Events.on t.events Sre.Events.Debug then
      Sre.Events.emit t.events ~level:Sre.Events.Debug ~trace
        ~kind:"request_start"
        [
          ("session", Sre.Events.I s.s_sid);
          ("fingerprint", Sre.Events.S n.Normalize.fingerprint);
        ];
    let snapshot = Catalog.Source.snapshot t.source in
    let catalog_version = Catalog.Snapshot.catalog_version snapshot in
    let stats_version = Catalog.Snapshot.stats_version snapshot in
    let plan, result =
      match
        Plan_cache.find t.cache ~fp:n.Normalize.fingerprint
          ~norm_text:n.Normalize.text ~params:n.Normalize.params
          ~catalog_version ~stats_version
      with
      | Plan_cache.Hit plan -> (plan, Hit)
      | Plan_cache.Rebound plan -> (plan, Rebound)
      | Plan_cache.Miss ->
          let make_accessor () =
            Catalog.Accessor.of_snapshot ~snapshot ~cache:t.md_cache ()
          in
          let bind_accessor = make_accessor () in
          let query = Sqlfront.Binder.bind_sql bind_accessor sql in
          Catalog.Accessor.release bind_accessor;
          let config = Orca.Orca_config.with_trace_id t.config trace in
          let report =
            Orca.Flight.optimize ~config ~label:trace
              ~fingerprint:n.Normalize.fingerprint ~make_accessor query
          in
          Plan_cache.add t.cache ~fp:n.Normalize.fingerprint
            ~norm_text:n.Normalize.text ~params:n.Normalize.params
            ~catalog_version ~stats_version report.Orca.Optimizer.plan;
          (report.Orca.Optimizer.plan, Missed)
    in
    let ms = Gpos.Clock.ms_since t0 in
    finish_request t ~trace ~ms (`Ok (result, plan.Ir.Expr.pcost));
    {
      r_plan = plan;
      r_dxl = lazy (Dxl.Dxl_plan.to_string plan);
      r_trace = trace;
      r_fingerprint = n.Normalize.fingerprint;
      r_result = result;
      r_ms = ms;
      r_catalog_version = catalog_version;
      r_stats_version = stats_version;
    }
  with
  | reply -> Ok reply
  | exception Orca.Optimizer.Unsupported_query msg ->
      let msg = "unsupported query: " ^ msg in
      count_error t s;
      Telemetry.Metrics.inc Telemetry.Std.serve_errors;
      finish_request t ~trace ~ms:(Gpos.Clock.ms_since t0) (`Error msg);
      Error msg
  | exception (Gpos.Gpos_error.Error _ as e) ->
      let msg = Gpos.Gpos_error.to_string e in
      count_error t s;
      Telemetry.Metrics.inc Telemetry.Std.serve_errors;
      finish_request t ~trace ~ms:(Gpos.Clock.ms_since t0) (`Error msg);
      Error msg

(* Bump the source version and drop every cache entry keyed on an older
   snapshot; returns the number dropped and the new versions. *)
let invalidate t what =
  (match what with
  | `Catalog -> Catalog.Source.bump_catalog t.source
  | `Stats -> Catalog.Source.bump_stats t.source);
  let versions = Catalog.Source.versions t.source in
  let dropped = Plan_cache.invalidate t.cache ~keep:versions in
  Mutex.lock t.lock;
  t.last_md_change <- Gpos.Clock.now ();
  Mutex.unlock t.lock;
  (if Sre.Events.on t.events Sre.Events.Warn then
     let cat, st = versions in
     Sre.Events.emit t.events ~level:Sre.Events.Warn ~kind:"invalidate"
       [
         ( "what",
           Sre.Events.S (match what with `Catalog -> "catalog" | `Stats -> "stats")
         );
         ("dropped", Sre.Events.I dropped);
         ("catalog_version", Sre.Events.I cat);
         ("stats_version", Sre.Events.I st);
       ]);
  (dropped, versions)

type stats = {
  s_requests : int;
  s_errors : int;
  s_cache : Plan_cache.stats;
  s_uptime_s : float;
  s_sessions_open : int;
  s_sessions_total : int; (* incl. the sid-0 API pseudo-session *)
  s_per_session : (int * int * int) list; (* (sid, requests, errors), by sid *)
  s_p50_ms : float;
  s_p95_ms : float;
  s_p99_ms : float;
}

let stats t =
  Mutex.lock t.lock;
  let requests = t.requests and errors = t.errors in
  let per_session =
    List.rev_map (fun s -> (s.s_sid, s.s_count, s.s_errs)) t.sessions
  in
  let live = List.length (List.filter (fun s -> s.s_live) t.sessions) in
  let total = List.length t.sessions in
  Mutex.unlock t.lock;
  let lat = Telemetry.Metrics.hsnap t.lat_ms in
  {
    s_requests = requests;
    s_errors = errors;
    s_cache = Plan_cache.stats t.cache;
    s_uptime_s = uptime_s t;
    s_sessions_open = live;
    s_sessions_total = total;
    s_per_session =
      List.sort (fun (a, _, _) (b, _, _) -> compare a b) per_session;
    s_p50_ms = Telemetry.Metrics.quantile lat 0.50;
    s_p95_ms = Telemetry.Metrics.quantile lat 0.95;
    s_p99_ms = Telemetry.Metrics.quantile lat 0.99;
  }

let health t =
  let s = stats t in
  let snapshot_age =
    Mutex.lock t.lock;
    let a = Gpos.Clock.now () -. t.last_md_change in
    Mutex.unlock t.lock;
    a
  in
  let cat, st = Catalog.Source.versions t.source in
  let input =
    {
      Sre.Health.h_uptime_s = s.s_uptime_s;
      h_sessions_open = s.s_sessions_open;
      h_sessions_total = s.s_sessions_total;
      h_requests = s.s_requests;
      h_errors = s.s_errors;
      h_snapshot_age_s = snapshot_age;
      h_catalog_version = cat;
      h_stats_version = st;
      h_cache_entries = s.s_cache.Plan_cache.entries;
      h_cache_capacity = Plan_cache.capacity t.cache;
      h_slo = Some (Sre.Slo.report t.slo);
    }
  in
  (input, Sre.Health.evaluate input)

(* ---------------- the line protocol -------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_error msg = Printf.sprintf {|{"ok":false,"error":"%s"}|} (json_escape msg)

let json_of_reply ~include_plan (r : reply) =
  let plan_field =
    if include_plan then
      Printf.sprintf {|,"plan":"%s"|} (json_escape (Lazy.force r.r_dxl))
    else ""
  in
  Printf.sprintf
    {|{"ok":true,"trace":"%s","cache":"%s","fingerprint":"%s","ms":%.3f,"cost":%.6g,"rows":%.6g,"catalog_version":%d,"stats_version":%d%s}|}
    (json_escape r.r_trace)
    (cache_result_to_string r.r_result)
    r.r_fingerprint r.r_ms r.r_plan.Ir.Expr.pcost r.r_plan.Ir.Expr.pest_rows
    r.r_catalog_version r.r_stats_version plan_field

let json_of_stats t =
  let s = stats t in
  let c = s.s_cache in
  let answered = c.Plan_cache.hits + c.Plan_cache.rebinds in
  let probes = answered + c.Plan_cache.misses in
  let hit_rate =
    if probes = 0 then 0.0 else float_of_int answered /. float_of_int probes
  in
  let per_session =
    String.concat ","
      (List.map
         (fun (sid, reqs, errs) ->
           Printf.sprintf {|{"session":%d,"requests":%d,"errors":%d}|} sid reqs
             errs)
         s.s_per_session)
  in
  Printf.sprintf
    {|{"ok":true,"requests":%d,"errors":%d,"uptime_s":%.3f,"hits":%d,"rebinds":%d,"misses":%d,"evictions":%d,"invalidations":%d,"collisions":%d,"entries":%d,"variants":%d,"hit_rate":%.4f,"p50_ms":%.4f,"p95_ms":%.4f,"p99_ms":%.4f,"sessions_open":%d,"sessions_total":%d,"per_session":[%s]}|}
    s.s_requests s.s_errors s.s_uptime_s c.Plan_cache.hits c.Plan_cache.rebinds
    c.Plan_cache.misses c.Plan_cache.evictions c.Plan_cache.invalidations
    c.Plan_cache.collisions c.Plan_cache.entries c.Plan_cache.variants hit_rate
    s.s_p50_ms s.s_p95_ms s.s_p99_ms s.s_sessions_open s.s_sessions_total
    per_session

(* The !metrics endpoint: the Prometheus exposition of the process-wide
   registry, self-linted and shipped as one escaped JSON string so the
   protocol stream stays line-parseable (the raw multi-line text never
   touches stdout). *)
let json_of_metrics () =
  let snap = Telemetry.Metrics.snapshot Telemetry.Metrics.default in
  let prom = Telemetry.Expose.to_prometheus snap in
  let problems = Telemetry.Expose.lint_prometheus prom in
  Printf.sprintf {|{"ok":true,"lint_errors":%d,"metrics":"%s"}|}
    (List.length problems) (json_escape prom)

let json_of_health t =
  let input, verdict = health t in
  let body = Sre.Health.to_json input verdict in
  (* splice "ok":true into the health object so every reply shares the
     envelope *)
  Printf.sprintf {|{"ok":true,%s|} (String.sub body 1 (String.length body - 1))

let json_of_slo t =
  Printf.sprintf {|{"ok":true,"slo":%s}|} (Sre.Slo.to_json (Sre.Slo.report t.slo))

(* One request line: a plain line is SQL; [!]-prefixed lines are control
   commands:
     !ping                      liveness probe
     !plan on|off               include the DXL plan in responses
     !invalidate catalog|stats  bump the source version, drop stale entries
     !stats                     cache/serve/session counters + latency
     !metrics                   linted Prometheus exposition (escaped)
     !health                    readiness checks
     !slo                       rolling-window SLO report
     !quit                      end the session *)
let handle_line t ~session ~session_plan line =
  let line = String.trim line in
  if line = "" then `Silent
  else if String.length line > 0 && line.[0] = '!' then
    match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
    | [ "!ping" ] -> `Reply {|{"ok":true,"pong":true}|}
    | [ "!quit" ] -> `Quit {|{"ok":true,"bye":true}|}
    | [ "!plan"; "on" ] ->
        session_plan := true;
        `Reply {|{"ok":true,"plan":true}|}
    | [ "!plan"; "off" ] ->
        session_plan := false;
        `Reply {|{"ok":true,"plan":false}|}
    | [ "!stats" ] -> `Reply (json_of_stats t)
    | [ "!metrics" ] -> `Reply (json_of_metrics ())
    | [ "!health" ] -> `Reply (json_of_health t)
    | [ "!slo" ] -> `Reply (json_of_slo t)
    | [ "!invalidate"; what ] when what = "catalog" || what = "stats" ->
        let target = if what = "catalog" then `Catalog else `Stats in
        let dropped, (cat, st) = invalidate t target in
        `Reply
          (Printf.sprintf
             {|{"ok":true,"invalidated":"%s","dropped":%d,"catalog_version":%d,"stats_version":%d}|}
             what dropped cat st)
    | _ -> `Reply (json_error ("unknown control command: " ^ line))
  else
    match optimize_sql ~session t line with
    | Ok reply -> `Reply (json_of_reply ~include_plan:!session_plan reply)
    | Error msg -> `Reply (json_error msg)

(* One session over arbitrary channels. Responses are flushed per line so a
   pipelined client never deadlocks; [log] receives session progress. *)
let serve_channels ?(log = ignore) ?(include_plan = false) t ic oc =
  let session = open_session t in
  let session_plan = ref include_plan in
  log (Printf.sprintf "session %d open" session.s_sid);
  let quit = ref false in
  (try
     Fun.protect
       ~finally:(fun () -> close_session t session)
       (fun () ->
         while not !quit do
           match input_line ic with
           | exception End_of_file -> quit := true
           | line -> (
               match handle_line t ~session ~session_plan line with
               | `Silent -> ()
               | `Reply json ->
                   output_string oc json;
                   output_char oc '\n';
                   flush oc
               | `Quit json ->
                   output_string oc json;
                   output_char oc '\n';
                   flush oc;
                   quit := true)
         done)
   with Sys_error _ -> ());
  log (Printf.sprintf "session %d closed" session.s_sid)

(* Unix-domain socket listener: one thread per accepted connection, each
   running the same session loop. [max_sessions] bounds accepted connections
   (tests); without it the listener runs until the process dies. *)
let serve_unix ?(log = ignore) ?(include_plan = false) ?(backlog = 16)
    ?max_sessions t ~path () =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock backlog;
      log (Printf.sprintf "listening on %s" path);
      let threads = ref [] in
      let accepted = ref 0 in
      let continue () =
        match max_sessions with None -> true | Some n -> !accepted < n
      in
      while continue () do
        let fd, _ = Unix.accept sock in
        incr accepted;
        let n = !accepted in
        let th =
          Thread.create
            (fun fd ->
              let ic = Unix.in_channel_of_descr fd in
              let oc = Unix.out_channel_of_descr fd in
              let log msg = log (Printf.sprintf "[conn %d] %s" n msg) in
              serve_channels ~log ~include_plan t ic oc;
              (try close_out oc with Sys_error _ -> ());
              try Unix.close fd with Unix.Unix_error _ -> ())
            fd
        in
        threads := th :: !threads
      done;
      List.iter Thread.join !threads)

open Ir

(* The binder: resolves names against the catalog, assigns fresh column
   references, lowers the AST to a logical operator tree and packages it as a
   DXL query (the Query2DXL translator of paper Fig. 2).

   Subqueries become Apply operators; columns resolved through an enclosing
   scope are recorded as the Apply's correlation set. EXISTS/IN subqueries
   are accepted only in conjunct positions (where a semi-join rewrite is
   sound); scalar subqueries are allowed anywhere in an expression. *)

let error fmt =
  Printf.ksprintf
    (fun msg -> raise (Gpos.Gpos_error.Error (Gpos.Gpos_error.Bind_error, msg)))
    fmt

type cte_info = {
  cte_id : int;
  cte_cols : Colref.t list;
  cte_producer : Ltree.t;
  mutable cte_used : bool;
}

type t = {
  accessor : Catalog.Accessor.t;
  factory : Colref.Factory.t;
  mutable cte_counter : int;
  mutable ctes : (string * cte_info) list; (* innermost first *)
}

let create (accessor : Catalog.Accessor.t) : t =
  {
    accessor;
    factory = Catalog.Accessor.factory accessor;
    cte_counter = 0;
    ctes = [];
  }

(* root ordering of the most recently bound query (set by
   [bind_query_internal]; consumed by [bind]) *)
let last_sort : Sortspec.t ref = ref []

(* Scopes: ordered relations (alias, columns); resolution walks to the
   parent, recording outer references in [corr]. *)
type scope = {
  entries : (string * Colref.t list) list;
  parent : scope option;
  corr : Colref.Set.t ref; (* correlation columns collected at this level *)
}

let empty_scope () = { entries = []; parent = None; corr = ref Colref.Set.empty }

let child_scope parent = { entries = []; parent = Some parent; corr = ref Colref.Set.empty }

let add_relation scope alias cols =
  { scope with entries = scope.entries @ [ (alias, cols) ] }

let resolve_local scope qualifier name : Colref.t option =
  let matches (alias, cols) =
    match qualifier with
    | Some q when q <> alias -> None
    | _ -> List.find_opt (fun c -> Colref.name c = name) cols
  in
  List.find_map matches scope.entries

let rec resolve scope qualifier name : (Colref.t * bool) option =
  match resolve_local scope qualifier name with
  | Some c -> Some (c, false)
  | None -> (
      match scope.parent with
      | None -> None
      | Some parent -> (
          match resolve parent qualifier name with
          | Some (c, _) ->
              scope.corr := Colref.Set.add c !(scope.corr);
              Some (c, true)
          | None -> None))

let all_columns scope = List.concat_map snd scope.entries

(* scope of the most recently completed SELECT core (lets ORDER BY resolve
   relation-qualified names like "ss.cnt" against the select's FROM) *)
let last_scope : scope option ref = ref None

(* pending subquery attachments collected while binding an expression *)
type pending = { pa_kind : Expr.apply_kind; pa_inner : Ltree.t; pa_corr : Colref.t list }

type bind_env = {
  scope : scope;
  aggs : (Ast.agg_call * Expr.scalar) list; (* post-aggregation substitution *)
  windows : (Ast.window_call * Expr.scalar) list; (* post-window substitution *)
  pending : pending list ref;
  conjunct_ok : bool; (* semi-join subqueries allowed here *)
}

let fresh t ~name ~ty = Colref.Factory.fresh t.factory ~name ~ty

let datum_of_literal = function
  | Ast.E_int n -> Some (Datum.Int n)
  | Ast.E_float f -> Some (Datum.Float f)
  | Ast.E_string s -> Some (Datum.String s)
  | Ast.E_bool b -> Some (Datum.Bool b)
  | Ast.E_null -> Some Datum.Null
  | Ast.E_date s -> Some (Datum.date_of_string s)
  | Ast.E_neg (Ast.E_int n) -> Some (Datum.Int (-n))
  | Ast.E_neg (Ast.E_float f) -> Some (Datum.Float (-.f))
  | _ -> None

let ast_agg_equal (a : Ast.agg_call) (b : Ast.agg_call) = a = b

let dtype_of_name = function
  | "int" | "integer" | "bigint" -> Dtype.Int
  | "float" | "double" | "decimal" | "numeric" -> Dtype.Float
  | "bool" | "boolean" -> Dtype.Bool
  | "string" | "text" | "varchar" | "char" -> Dtype.String
  | "date" -> Dtype.Date
  | ty -> error "unknown type %S in CAST" ty

let rec bind_expr (t : t) (env : bind_env) (e : Ast.expr) : Expr.scalar =
  match e with
  | Ast.E_col (q, name) -> (
      match resolve env.scope q name with
      | Some (c, _) -> Expr.Col c
      | None ->
          error "column %s%s not found"
            (match q with Some q -> q ^ "." | None -> "")
            name)
  | Ast.E_star -> error "* is only valid in SELECT lists and COUNT(*)"
  | Ast.E_int n -> Expr.Const (Datum.Int n)
  | Ast.E_float f -> Expr.Const (Datum.Float f)
  | Ast.E_string s -> Expr.Const (Datum.String s)
  | Ast.E_bool b -> Expr.Const (Datum.Bool b)
  | Ast.E_null -> Expr.Const Datum.Null
  | Ast.E_date s -> Expr.Const (Datum.date_of_string s)
  | Ast.E_cmp (op, a, b) ->
      let env' = { env with conjunct_ok = false } in
      Expr.Cmp (op, bind_expr t env' a, bind_expr t env' b)
  | Ast.E_and (a, b) ->
      Expr.And [ bind_expr t env a; bind_expr t env b ]
  | Ast.E_or (a, b) ->
      let env' = { env with conjunct_ok = false } in
      Expr.Or [ bind_expr t env' a; bind_expr t env' b ]
  | Ast.E_not (Ast.E_exists (q, false)) ->
      bind_expr t env (Ast.E_exists (q, true))
  | Ast.E_not (Ast.E_in_query (x, q, false)) ->
      bind_expr t env (Ast.E_in_query (x, q, true))
  | Ast.E_not a ->
      Expr.Not (bind_expr t { env with conjunct_ok = false } a)
  | Ast.E_arith (op, a, b) ->
      let env' = { env with conjunct_ok = false } in
      Expr.Arith (op, bind_expr t env' a, bind_expr t env' b)
  | Ast.E_neg a ->
      Expr.Arith
        (Expr.Sub, Expr.Const (Datum.Int 0), bind_expr t { env with conjunct_ok = false } a)
  | Ast.E_is_null (a, negated) ->
      let inner = Expr.Is_null (bind_expr t { env with conjunct_ok = false } a) in
      if negated then Expr.Not inner else inner
  | Ast.E_between (x, lo, hi) ->
      let env' = { env with conjunct_ok = false } in
      let x' = bind_expr t env' x in
      Expr.And
        [
          Expr.Cmp (Expr.Ge, x', bind_expr t env' lo);
          Expr.Cmp (Expr.Le, x', bind_expr t env' hi);
        ]
  | Ast.E_in_list (x, vs) ->
      let x' = bind_expr t { env with conjunct_ok = false } x in
      let datums =
        List.map
          (fun v ->
            match datum_of_literal v with
            | Some d -> d
            | None -> error "IN list elements must be literals")
          vs
      in
      Expr.In_list (x', datums)
  | Ast.E_like (x, pat) ->
      Expr.Like (bind_expr t { env with conjunct_ok = false } x, pat)
  | Ast.E_case (whens, els) ->
      let env' = { env with conjunct_ok = false } in
      Expr.Case
        ( List.map (fun (c, v) -> (bind_expr t env' c, bind_expr t env' v)) whens,
          Option.map (bind_expr t env') els )
  | Ast.E_func ("COALESCE", args) ->
      Expr.Coalesce (List.map (bind_expr t { env with conjunct_ok = false }) args)
  | Ast.E_func (name, _) -> error "unsupported function %s" name
  | Ast.E_cast (a, ty) ->
      Expr.Cast (bind_expr t { env with conjunct_ok = false } a, dtype_of_name ty)
  | Ast.E_agg call -> (
      match List.find_opt (fun (c, _) -> ast_agg_equal c call) env.aggs with
      | Some (_, scalar) -> scalar
      | None -> error "aggregate %s used outside an aggregation context" call.Ast.agg_name)
  | Ast.E_window call -> (
      match List.find_opt (fun (c, _) -> c = call) env.windows with
      | Some (_, scalar) -> scalar
      | None ->
          error "window function %s is only supported in the SELECT list"
            call.Ast.win_name)
  | Ast.E_exists (q, negated) ->
      if not env.conjunct_ok then
        error "EXISTS subqueries are supported only as top-level conjuncts";
      let sub = child_scope env.scope in
      let inner, _ = bind_query_internal t sub q in
      let corr = Colref.Set.elements !(sub.corr) in
      let kind = if negated then Expr.Apply_not_exists else Expr.Apply_exists in
      env.pending := { pa_kind = kind; pa_inner = inner; pa_corr = corr } :: !(env.pending);
      Expr.Const (Datum.Bool true)
  | Ast.E_in_query (x, q, negated) ->
      if not env.conjunct_ok then
        error "IN subqueries are supported only as top-level conjuncts";
      let x' = bind_expr t { env with conjunct_ok = false } x in
      let sub = child_scope env.scope in
      let inner, out = bind_query_internal t sub q in
      let inner_col =
        match out with
        | [ c ] -> c
        | _ -> error "IN subquery must return exactly one column"
      in
      let corr = Colref.Set.elements !(sub.corr) in
      let kind =
        if negated then Expr.Apply_not_in (x', inner_col)
        else Expr.Apply_in (x', inner_col)
      in
      env.pending := { pa_kind = kind; pa_inner = inner; pa_corr = corr } :: !(env.pending);
      Expr.Const (Datum.Bool true)
  | Ast.E_scalar_subquery q ->
      let sub = child_scope env.scope in
      let inner, out = bind_query_internal t sub q in
      let inner_col =
        match out with
        | [ c ] -> c
        | _ -> error "scalar subquery must return exactly one column"
      in
      let corr = Colref.Set.elements !(sub.corr) in
      env.pending :=
        { pa_kind = Expr.Apply_scalar inner_col; pa_inner = inner; pa_corr = corr }
        :: !(env.pending);
      Expr.Col inner_col

(* Wrap [tree] with the pending Apply operators (innermost first). *)
and attach_pending (tree : Ltree.t) (pending : pending list) : Ltree.t =
  List.fold_left
    (fun acc p ->
      Ltree.make (Expr.L_apply (p.pa_kind, p.pa_corr)) [ acc; p.pa_inner ])
    tree (List.rev pending)

(* --- FROM binding --- *)

and bind_from_item (t : t) (scope : scope) (item : Ast.from_item) :
    Ltree.t * scope =
  match item with
  | Ast.F_table (name, alias) -> (
      let alias_name = Option.value alias ~default:name in
      match List.assoc_opt name t.ctes with
      | Some cte ->
          cte.cte_used <- true;
          let cols =
            List.map
              (fun c -> fresh t ~name:(Colref.name c) ~ty:(Colref.ty c))
              cte.cte_cols
          in
          ( Ltree.leaf (Expr.L_cte_consumer (cte.cte_id, cols)),
            add_relation scope alias_name cols )
      | None -> (
          match Catalog.Accessor.bind_table t.accessor name with
          | Some td ->
              ( Ltree.leaf (Expr.L_get td),
                add_relation scope alias_name td.Table_desc.cols )
          | None -> error "table %S not found" name))
  | Ast.F_subquery (q, alias) ->
      let sub = child_scope scope in
      let tree, out = bind_query_internal t sub q in
      if not (Colref.Set.is_empty !(sub.corr)) then
        error "correlated FROM subqueries (LATERAL) are not supported";
      (tree, add_relation scope alias out)
  | Ast.F_join (l, jt, r, cond) -> (
      match jt with
      | Ast.J_right ->
          (* normalize RIGHT to LEFT by swapping inputs *)
          bind_from_item t scope (Ast.F_join (r, Ast.J_left, l, cond))
      | _ ->
          let ltree, scope = bind_from_item t scope l in
          let rtree, scope = bind_from_item t scope r in
          let kind =
            match jt with
            | Ast.J_inner | Ast.J_cross -> Expr.Inner
            | Ast.J_left -> Expr.Left_outer
            | Ast.J_full -> Expr.Full_outer
            | Ast.J_right -> assert false
          in
          let pending = ref [] in
          let cond' =
            match cond with
            | None -> Expr.Const (Datum.Bool true)
            | Some c ->
                bind_expr t
                  { scope; aggs = []; windows = []; pending; conjunct_ok = false }
                  c
          in
          if !pending <> [] then error "subqueries in ON conditions are not supported";
          (Ltree.make (Expr.L_join (kind, cond')) [ ltree; rtree ], scope))

(* --- SELECT core binding --- *)

and bind_select_core (t : t) (outer : scope) (core : Ast.select_core) :
    Ltree.t * Colref.t list * (Expr.scalar * Colref.t) list =
  (* FROM *)
  let tree, scope =
    match core.Ast.from with
    | [] ->
        (* SELECT without FROM: single-row const table *)
        ( Ltree.leaf (Expr.L_const_table ([], [ [] ])),
          { entries = []; parent = outer.parent; corr = outer.corr } )
    | first :: rest ->
        let scope0 =
          { entries = []; parent = outer.parent; corr = outer.corr }
        in
        let tree0, scope0 = bind_from_item t scope0 first in
        List.fold_left
          (fun (tree, scope) item ->
            let rtree, scope = bind_from_item t scope item in
            ( Ltree.make
                (Expr.L_join (Expr.Inner, Expr.Const (Datum.Bool true)))
                [ tree; rtree ],
              scope ))
          (tree0, scope0) rest
  in
  (* WHERE *)
  let tree =
    match core.Ast.where with
    | None -> tree
    | Some w ->
        let pending = ref [] in
        let pred =
          bind_expr t { scope; aggs = []; windows = []; pending; conjunct_ok = true } w
        in
        let tree = attach_pending tree !pending in
        let conjuncts =
          List.filter
            (fun c -> c <> Expr.Const (Datum.Bool true))
            (Scalar_ops.conjuncts pred)
        in
        if conjuncts = [] then tree
        else Ltree.make (Expr.L_select (Scalar_ops.conjoin conjuncts)) [ tree ]
  in
  (* aggregate collection from SELECT items, HAVING *)
  let agg_calls = ref [] in
  let rec collect (e : Ast.expr) =
    match e with
    | Ast.E_agg call ->
        if not (List.exists (fun c -> ast_agg_equal c call) !agg_calls) then
          agg_calls := !agg_calls @ [ call ]
    | Ast.E_cmp (_, a, b) | Ast.E_and (a, b) | Ast.E_or (a, b)
    | Ast.E_arith (_, a, b) ->
        collect a;
        collect b
    | Ast.E_not a | Ast.E_neg a | Ast.E_is_null (a, _) | Ast.E_cast (a, _)
    | Ast.E_like (a, _) ->
        collect a
    | Ast.E_between (a, b, c) ->
        collect a;
        collect b;
        collect c
    | Ast.E_in_list (a, _) -> collect a
    | Ast.E_case (whens, els) ->
        List.iter
          (fun (c, v) ->
            collect c;
            collect v)
          whens;
        Option.iter collect els
    | Ast.E_func (_, args) -> List.iter collect args
    | _ -> ()
  in
  List.iter (fun item -> collect item.Ast.item_expr) core.Ast.items;
  Option.iter collect core.Ast.having;
  let has_aggregation = !agg_calls <> [] || core.Ast.group_by <> [] in
  (* grouping expressions that are not plain columns (CASE buckets, aliases
     of computed items, positional references) are computed in a projection
     below the aggregate; SELECT items matching them are rewritten to the
     grouping column *)
  let group_substitutions : (Ast.expr * Colref.t) list ref = ref [] in
  let tree, agg_env =
    if not has_aggregation then (tree, [])
    else begin
      let resolve_group_item (e : Ast.expr) : [ `Col of Colref.t | `Expr of Ast.expr ] =
        match e with
        | Ast.E_col (q, name) -> (
            match resolve scope q name with
            | Some (c, false) -> `Col c
            | Some (_, true) -> error "GROUP BY cannot reference outer columns"
            | None -> (
                (* maybe an alias of a SELECT item *)
                match
                  List.find_opt
                    (fun it -> it.Ast.item_alias = Some name)
                    core.Ast.items
                with
                | Some it -> `Expr it.Ast.item_expr
                | None -> error "GROUP BY column %s not found" name))
        | Ast.E_int n when n >= 1 && n <= List.length core.Ast.items ->
            `Expr (List.nth core.Ast.items (n - 1)).Ast.item_expr
        | e -> `Expr e
      in
      let computed = ref [] in
      let group_cols =
        List.map
          (fun e ->
            match resolve_group_item e with
            | `Col c -> c
            | `Expr ast -> (
                match ast with
                | Ast.E_col (q, name) -> (
                    match resolve scope q name with
                    | Some (c, false) -> c
                    | _ -> error "GROUP BY column %s not found" name)
                | ast ->
                    let scalar =
                      bind_expr t
                        { scope; aggs = []; windows = []; pending = ref []; conjunct_ok = false }
                        ast
                    in
                    let g =
                      fresh t ~name:"group_key" ~ty:(Scalar_ops.type_of scalar)
                    in
                    computed := (g, scalar) :: !computed;
                    group_substitutions := (ast, g) :: !group_substitutions;
                    g))
          core.Ast.group_by
      in
      (* pre-projection computing the grouping expressions *)
      let tree =
        if !computed = [] then tree
        else
          let pass =
            List.map
              (fun c -> { Expr.proj_expr = Expr.Col c; proj_out = c })
              (all_columns scope)
          in
          let extra =
            List.rev_map
              (fun (g, scalar) -> { Expr.proj_expr = scalar; proj_out = g })
              !computed
          in
          Ltree.make (Expr.L_project (pass @ extra)) [ tree ]
      in
      (* lower each aggregate call; AVG(x) => SUM(x)/COUNT(x) *)
      let aggs = ref [] in
      let env_for_args = { scope; aggs = []; windows = []; pending = ref []; conjunct_ok = false } in
      let add_agg kind arg distinct ~name ~ty =
        let out = fresh t ~name ~ty in
        aggs :=
          !aggs
          @ [ { Expr.agg_kind = kind; agg_arg = arg; agg_distinct = distinct; agg_out = out } ];
        out
      in
      let agg_env =
        List.map
          (fun (call : Ast.agg_call) ->
            let arg = Option.map (bind_expr t env_for_args) call.Ast.agg_expr in
            let arg_ty =
              match arg with
              | Some a -> Scalar_ops.type_of a
              | None -> Dtype.Int
            in
            let scalar =
              match (call.Ast.agg_name, arg) with
              | "COUNT", None ->
                  Expr.Col (add_agg Expr.Count_star None false ~name:"count" ~ty:Dtype.Int)
              | "COUNT", Some a ->
                  Expr.Col
                    (add_agg Expr.Count (Some a) call.Ast.agg_dist ~name:"count"
                       ~ty:Dtype.Int)
              | "SUM", Some a ->
                  Expr.Col
                    (add_agg Expr.Sum (Some a) call.Ast.agg_dist ~name:"sum" ~ty:arg_ty)
              | "MIN", Some a ->
                  Expr.Col (add_agg Expr.Min (Some a) false ~name:"min" ~ty:arg_ty)
              | "MAX", Some a ->
                  Expr.Col (add_agg Expr.Max (Some a) false ~name:"max" ~ty:arg_ty)
              | "AVG", Some a ->
                  let s =
                    add_agg Expr.Sum (Some a) call.Ast.agg_dist ~name:"avg_sum"
                      ~ty:arg_ty
                  in
                  let c =
                    add_agg Expr.Count (Some a) call.Ast.agg_dist ~name:"avg_count"
                      ~ty:Dtype.Int
                  in
                  Expr.Arith (Expr.Div, Expr.Col s, Expr.Col c)
              | name, None -> error "%s requires an argument" name
              | name, _ -> error "unknown aggregate %s" name
            in
            (call, scalar))
          !agg_calls
      in
      ( Ltree.make (Expr.L_gb_agg (Expr.One_phase, group_cols, !aggs)) [ tree ],
        agg_env )
    end
  in
  (* HAVING *)
  let tree =
    match core.Ast.having with
    | None -> tree
    | Some h ->
        let pending = ref [] in
        let pred = bind_expr t { scope; aggs = agg_env; windows = []; pending; conjunct_ok = true } h in
        let tree = attach_pending tree !pending in
        Ltree.make (Expr.L_select pred) [ tree ]
  in
  (* window functions: collect calls from the SELECT items, group them by
     (partition, order) spec, and stack one L_window per spec *)
  let window_calls = ref [] in
  let rec collect_windows (e : Ast.expr) =
    match e with
    | Ast.E_window call ->
        if not (List.mem call !window_calls) then
          window_calls := !window_calls @ [ call ]
    | Ast.E_cmp (_, a, b) | Ast.E_and (a, b) | Ast.E_or (a, b)
    | Ast.E_arith (_, a, b) ->
        collect_windows a;
        collect_windows b
    | Ast.E_not a | Ast.E_neg a | Ast.E_is_null (a, _) | Ast.E_cast (a, _)
    | Ast.E_like (a, _) ->
        collect_windows a
    | Ast.E_between (a, b, c) ->
        collect_windows a;
        collect_windows b;
        collect_windows c
    | Ast.E_in_list (a, _) -> collect_windows a
    | Ast.E_case (whens, els) ->
        List.iter
          (fun (c, v) ->
            collect_windows c;
            collect_windows v)
          whens;
        Option.iter collect_windows els
    | Ast.E_func (_, args) -> List.iter collect_windows args
    | _ -> ()
  in
  List.iter (fun (it : Ast.select_item) -> collect_windows it.Ast.item_expr) core.Ast.items;
  let tree, window_env =
    if !window_calls = [] then (tree, [])
    else begin
      let env0 =
        { scope; aggs = agg_env; windows = []; pending = ref []; conjunct_ok = false }
      in
      let bind_col_expr what e =
        match bind_expr t env0 e with
        | Expr.Col c -> c
        | _ -> error "window %s supports plain columns only" what
      in
      let specs : ((Colref.t list * Sortspec.t) * Expr.wfunc list ref) list ref =
        ref []
      in
      let spec_funcs partition order =
        match
          List.find_opt
            (fun ((p, o), _) ->
              List.length p = List.length partition
              && List.for_all2 Colref.equal p partition
              && Sortspec.equal o order)
            !specs
        with
        | Some (_, funcs) -> funcs
        | None ->
            let funcs = ref [] in
            specs := !specs @ [ ((partition, order), funcs) ];
            funcs
      in
      let window_env =
        List.map
          (fun (call : Ast.window_call) ->
            let partition =
              List.map (bind_col_expr "PARTITION BY") call.Ast.win_partition
            in
            let order =
              List.map
                (fun (e, dir) ->
                  let c = bind_col_expr "ORDER BY" e in
                  match dir with
                  | `Asc -> Sortspec.asc c
                  | `Desc -> Sortspec.desc c)
                call.Ast.win_order
            in
            let funcs = spec_funcs partition order in
            let arg = Option.map (bind_expr t env0) call.Ast.win_expr in
            let arg_ty =
              match arg with Some a -> Scalar_ops.type_of a | None -> Dtype.Int
            in
            let add kind name ty =
              let out = fresh t ~name ~ty in
              funcs :=
                !funcs @ [ { Expr.wf_kind = kind; wf_arg = arg; wf_out = out } ];
              out
            in
            let scalar =
              match call.Ast.win_name with
              | "ROW_NUMBER" ->
                  Expr.Col (add Expr.W_row_number "row_number" Dtype.Int)
              | "RANK" ->
                  if Sortspec.is_empty order then
                    error "RANK() requires an ORDER BY in its window";
                  Expr.Col (add Expr.W_rank "rank" Dtype.Int)
              | "DENSE_RANK" ->
                  if Sortspec.is_empty order then
                    error "DENSE_RANK() requires an ORDER BY in its window";
                  Expr.Col (add Expr.W_dense_rank "dense_rank" Dtype.Int)
              | "COUNT" ->
                  Expr.Col
                    (add
                       (Expr.W_agg
                          (match arg with
                          | None -> Expr.Count_star
                          | Some _ -> Expr.Count))
                       "w_count" Dtype.Int)
              | "SUM" -> Expr.Col (add (Expr.W_agg Expr.Sum) "w_sum" arg_ty)
              | "MIN" -> Expr.Col (add (Expr.W_agg Expr.Min) "w_min" arg_ty)
              | "MAX" -> Expr.Col (add (Expr.W_agg Expr.Max) "w_max" arg_ty)
              | "AVG" ->
                  (* running average = running sum / running count *)
                  let s_out = add (Expr.W_agg Expr.Sum) "w_avg_sum" arg_ty in
                  let c_out = add (Expr.W_agg Expr.Count) "w_avg_count" Dtype.Int in
                  Expr.Arith (Expr.Div, Expr.Col s_out, Expr.Col c_out)
              | name -> error "unknown window function %s" name
            in
            (call, scalar))
          !window_calls
      in
      let tree =
        List.fold_left
          (fun acc ((partition, order), funcs) ->
            Ltree.make (Expr.L_window (partition, order, !funcs)) [ acc ])
          tree !specs
      in
      (tree, window_env)
    end
  in
  (* SELECT items *)
  let items =
    List.concat_map
      (fun (item : Ast.select_item) ->
        match item.Ast.item_expr with
        | Ast.E_star ->
            List.map
              (fun c -> { Ast.item_expr = Ast.E_col (None, Colref.name c); item_alias = None })
              (all_columns scope)
            |> fun star_items ->
            if star_items = [] then error "SELECT * with empty FROM" else star_items
        | _ -> [ item ])
      core.Ast.items
  in
  let pending = ref [] in
  let bound_items =
    List.map
      (fun (item : Ast.select_item) ->
        let scalar =
          match
            List.find_opt
              (fun (ast, _) -> ast = item.Ast.item_expr)
              !group_substitutions
          with
          | Some (_, g) -> Expr.Col g
          | None ->
              bind_expr t
                { scope; aggs = agg_env; windows = window_env; pending;
                  conjunct_ok = false }
                item.Ast.item_expr
        in
        (scalar, item.Ast.item_alias))
      items
  in
  let tree = attach_pending tree !pending in
  let projs =
    List.map
      (fun (scalar, alias) ->
        match (scalar, alias) with
        | Expr.Col c, None -> { Expr.proj_expr = scalar; proj_out = c }
        | Expr.Col c, Some a when a = Colref.name c ->
            { Expr.proj_expr = scalar; proj_out = c }
        | _, alias ->
            let name = Option.value alias ~default:"column" in
            let out = fresh t ~name ~ty:(Scalar_ops.type_of scalar) in
            { Expr.proj_expr = scalar; proj_out = out })
      bound_items
  in
  let tree = Ltree.make (Expr.L_project projs) [ tree ] in
  let out_cols = List.map (fun p -> p.Expr.proj_out) projs in
  (* DISTINCT *)
  let tree =
    if core.Ast.distinct then
      Ltree.make (Expr.L_gb_agg (Expr.One_phase, out_cols, [])) [ tree ]
    else tree
  in
  let bindings =
    List.map2 (fun (scalar, _) p -> (scalar, p.Expr.proj_out)) bound_items projs
  in
  last_scope := Some scope;
  (tree, out_cols, bindings)

(* --- bodies and queries --- *)

and bind_body (t : t) (scope : scope) (body : Ast.body) :
    Ltree.t * Colref.t list * (Expr.scalar * Colref.t) list =
  match body with
  | Ast.Select core -> bind_select_core t scope core
  | Ast.Setop (kind, l, r) ->
      let ltree, lout, _ = bind_body t scope l in
      let rtree, rout, _ = bind_body t scope r in
      if List.length lout <> List.length rout then
        error "set operation inputs have different column counts";
      let out =
        List.map (fun c -> fresh t ~name:(Colref.name c) ~ty:(Colref.ty c)) lout
      in
      last_scope := None;
      (Ltree.make (Expr.L_set (kind, out)) [ ltree; rtree ], out, [])

and bind_query_internal (t : t) (scope : scope) (q : Ast.query) :
    Ltree.t * Colref.t list =
  (* CTE definitions are visible to the body and to later CTEs *)
  let saved_ctes = t.ctes in
  let local_ctes =
    List.map
      (fun (name, cq) ->
        let cte_scope = child_scope scope in
        let producer, out = bind_query_internal t cte_scope cq in
        if not (Colref.Set.is_empty !(cte_scope.corr)) then
          error "correlated CTEs are not supported";
        t.cte_counter <- t.cte_counter + 1;
        let info =
          {
            cte_id = t.cte_counter;
            cte_cols = out;
            cte_producer = producer;
            cte_used = false;
          }
        in
        t.ctes <- (name, info) :: t.ctes;
        info)
      q.Ast.ctes
  in
  let tree, out, bindings = bind_body t scope q.Ast.body in
  let order_scope = Option.value !last_scope ~default:scope in
  (* sorting / limit: resolve against output names, positions, or the bound
     expressions of the SELECT items (aliases included) *)
  let resolve_order_col (e : Ast.expr) : Colref.t =
    match e with
    | Ast.E_int n when n >= 1 && n <= List.length out -> List.nth out (n - 1)
    | _ -> (
        let by_name =
          match e with
          | Ast.E_col (_, name) ->
              List.find_opt (fun c -> Colref.name c = name) out
          | _ -> None
        in
        match by_name with
        | Some c -> c
        | None -> (
            (* bind the expression and match it against an output item *)
            let bound =
              try
                Some
                  (bind_expr t
                     {
                       scope = order_scope;
                       aggs = [];
                       windows = [];
                       pending = ref [];
                       conjunct_ok = false;
                     }
                     e)
              with _ -> None
            in
            match bound with
            | Some scalar -> (
                match
                  List.find_opt
                    (fun (s, _) -> Scalar_ops.equal s scalar)
                    bindings
                with
                | Some (_, c) -> c
                | None -> (
                    match scalar with
                    | Expr.Col c when List.exists (Colref.equal c) out -> c
                    | _ ->
                        error "ORDER BY expression must appear in the output"))
            | None -> error "ORDER BY expression must appear in the output"))
  in
  let sort =
    List.map
      (fun (e, dir) ->
        let col = resolve_order_col e in
        match dir with `Asc -> Sortspec.asc col | `Desc -> Sortspec.desc col)
      q.Ast.order_by
  in
  let tree =
    match (q.Ast.limit, q.Ast.offset) with
    | None, None -> tree
    | limit, offset ->
        Ltree.make
          (Expr.L_limit (sort, Option.value offset ~default:0, limit))
          [ tree ]
  in
  (* wrap used CTEs in anchors, innermost = first defined *)
  let tree =
    List.fold_left
      (fun acc info ->
        if info.cte_used then
          Ltree.make
            (Expr.L_cte_anchor info.cte_id)
            [
              Ltree.make (Expr.L_cte_producer info.cte_id) [ info.cte_producer ];
              acc;
            ]
        else acc)
      tree (List.rev local_ctes)
  in
  t.ctes <- saved_ctes;
  last_sort := sort;
  (tree, out)

(* Bind a parsed query into a DXL query message. *)
let bind (t : t) (q : Ast.query) : Dxl.Dxl_query.t =
  let q = Rollup.expand_query q in
  let scope = empty_scope () in
  let tree, out = bind_query_internal t scope q in
  {
    Dxl.Dxl_query.output = out;
    order = !last_sort;
    dist = Props.Req_singleton;
    tree;
  }

(* SQL text -> DXL query (parser + binder, i.e. the full front-end). *)
let bind_sql (accessor : Catalog.Accessor.t) (sql : string) : Dxl.Dxl_query.t =
  let ast = Obs.Span.with_ ~name:"parse" (fun () -> Parser.parse sql) in
  Obs.Span.with_ ~name:"bind" (fun () -> bind (create accessor) ast)

(* Lockset / happens-before data-race detection over a recorded trace.

   The trace is replayed into a segment graph. A segment is a maximal
   interval of one thread of control between synchronization points: each
   (re-)execution of a job is a segment (split again at every child spawn),
   and each domain's non-job timeline is a chain of "ambient" segments.
   Happens-before edges are purely structural:

     - program order: consecutive segments of the same job (and of the same
       domain's ambient timeline) are chained;
     - spawn: the creating segment (up to the spawn point) precedes the
       child's first segment;
     - join: a finished child's last segment precedes its parent's next
       segment (the scheduler re-enqueues the parent when its last child
       completes);
     - goal queues: the goal holder's last segment precedes each parked
       waiter's next segment, and a child absorbed by an already-finished
       goal inherits an edge from the segment that completed the goal;
     - run end: [Scheduler.run] joins every worker domain, so the root
       job's last segment precedes the calling domain's subsequent ambient
       segments.

   Deliberately NOT edges: the scheduler's own mutex, and the incidental
   serialization of two jobs running back-to-back on the same domain. This
   makes the analysis schedule-insensitive — two accesses are ordered only
   if every schedule orders them — so a race is detected even when the
   recorded run (say, at [workers = 1]) happened to execute the racy
   accesses serially.

   Two accesses to the same object race when at least one is a write, no
   common lock was held around both, and neither segment reaches the other
   in the graph. Reachability is computed with one forward pass: every
   segment carries a bitset of the access-bearing segments that precede
   it. *)

module SSet = Set.Make (String)

type access = {
  a_seg : int;
  a_write : bool;
  a_locks : string list; (* sorted *)
  a_job : int option;
  a_seq : int;
}

(* --- small growable int-list array, indexed by segment id --- *)

type segtab = { mutable preds : int list array; mutable nseg : int }

let seg_new tab pl =
  if tab.nseg = Array.length tab.preds then begin
    let fresh = Array.make (max 256 (2 * tab.nseg)) [] in
    Array.blit tab.preds 0 fresh 0 tab.nseg;
    tab.preds <- fresh
  end;
  let id = tab.nseg in
  tab.preds.(id) <- pl;
  tab.nseg <- tab.nseg + 1;
  id

(* --- replay state --- *)

type dstate = {
  mutable d_ambient : int;
  mutable d_job : int option; (* job whose segment is current, if any *)
  mutable d_seg : int;
  mutable d_locks : SSet.t;
}

type jstate = {
  j_parent : int option;
  mutable j_preds : int list; (* edges into the job's next segment *)
  mutable j_final : int option;
}

(* Budget guards: traces and segment graphs beyond these sizes degrade to a
   truncated analysis with an informational diagnostic rather than an
   unbounded memory bill. *)
let max_events = 500_000
let max_reach_bits = 400_000_000
let max_accesses_per_obj = 4_000

let diag = Verify.Diagnostic.make

let describe (a : access) =
  Printf.sprintf "%s by %s (locks: %s)"
    (if a.a_write then "write" else "read")
    (match a.a_job with
    | Some j -> Printf.sprintf "job %d" j
    | None -> "the main thread")
    (match a.a_locks with [] -> "none" | ls -> String.concat "," ls)

let check (trace : Trace_log.t) : Verify.Diagnostic.t list =
  let sink = Verify.Diagnostic.sink () in
  let tab = { preds = Array.make 1024 []; nseg = 0 } in
  let domains : (int, dstate) Hashtbl.t = Hashtbl.create 8 in
  let jobs : (int, jstate) Hashtbl.t = Hashtbl.create 256 in
  let goal_seg : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let accesses : (string, access list ref) Hashtbl.t = Hashtbl.create 256 in
  let lock_pairs : (string * string, unit) Hashtbl.t = Hashtbl.create 16 in
  let domain d =
    match Hashtbl.find_opt domains d with
    | Some ds -> ds
    | None ->
        let s = seg_new tab [] in
        let ds = { d_ambient = s; d_job = None; d_seg = s; d_locks = SSet.empty } in
        Hashtbl.add domains d ds;
        ds
  in
  let job ?parent jid =
    match Hashtbl.find_opt jobs jid with
    | Some js -> js
    | None ->
        let js = { j_parent = parent; j_preds = []; j_final = None } in
        Hashtbl.add jobs jid js;
        js
  in
  let job_ended ds jid =
    let js = job jid in
    js.j_final <- Some ds.d_seg;
    (match js.j_parent with
    | Some p -> (job p).j_preds <- ds.d_seg :: (job p).j_preds
    | None -> ());
    ds.d_job <- None;
    ds.d_seg <- ds.d_ambient
  in
  let truncated = ref false in
  let replay (e : Trace_log.entry) =
    let ds = domain e.Trace_log.domain in
    match e.Trace_log.ev with
    | Gpos.Trace.Job_created { jid; parent; goal = _ } ->
        (job ?parent jid).j_preds <- ds.d_seg :: (job ?parent jid).j_preds;
        (* split the creating segment so that work after the spawn point is
           not spuriously ordered before the child *)
        let s = seg_new tab [ ds.d_seg ] in
        ds.d_seg <- s;
        if ds.d_job = None then ds.d_ambient <- s
    | Job_start { jid } ->
        let js = job jid in
        let s = seg_new tab js.j_preds in
        js.j_preds <- [];
        ds.d_job <- Some jid;
        ds.d_seg <- s
    | Job_suspended { jid; children = _ } ->
        (* append, not replace: goal-absorption edges recorded while the
           children were being spawned must survive *)
        (job jid).j_preds <- ds.d_seg :: (job jid).j_preds;
        ds.d_job <- None;
        ds.d_seg <- ds.d_ambient
    | Job_finished { jid } | Job_failed { jid } -> job_ended ds jid
    | Goal_acquired _ -> ()
    | Goal_absorbed { goal; parent; child = _; finished } ->
        if finished then (
          match Hashtbl.find_opt goal_seg goal with
          | Some s -> (job parent).j_preds <- s :: (job parent).j_preds
          | None -> ())
    | Goal_released { goal; jid; waiters } -> (
        match (job jid).j_final with
        | None -> ()
        | Some s ->
            Hashtbl.replace goal_seg goal s;
            List.iter
              (fun w -> (job w).j_preds <- s :: (job w).j_preds)
              waiters)
    | Run_end { root } ->
        let preds =
          match (job root).j_final with
          | Some s -> [ ds.d_ambient; s ]
          | None -> [ ds.d_ambient ]
        in
        ds.d_ambient <- seg_new tab preds;
        if ds.d_job = None then ds.d_seg <- ds.d_ambient
    | Lock_acquired { lock } ->
        SSet.iter
          (fun held ->
            if held <> lock then Hashtbl.replace lock_pairs (held, lock) ())
          ds.d_locks;
        ds.d_locks <- SSet.add lock ds.d_locks
    | Lock_released { lock } -> ds.d_locks <- SSet.remove lock ds.d_locks
    | Access { obj; write } ->
        let cell =
          match Hashtbl.find_opt accesses obj with
          | Some c -> c
          | None ->
              let c = ref [] in
              Hashtbl.add accesses obj c;
              c
        in
        let locks = SSet.elements ds.d_locks in
        (* dedup: one stored access per (segment, kind, lockset) *)
        let dup =
          List.exists
            (fun a ->
              a.a_seg = ds.d_seg && a.a_write = write && a.a_locks = locks)
            !cell
        in
        if (not dup) && List.length !cell < max_accesses_per_obj then
          cell :=
            {
              a_seg = ds.d_seg;
              a_write = write;
              a_locks = locks;
              a_job = e.Trace_log.running;
              a_seq = e.Trace_log.seq;
            }
            :: !cell
  in
  let rec consume n = function
    | [] -> ()
    | _ when n >= max_events -> truncated := true
    | e :: rest ->
        replay e;
        consume (n + 1) rest
  in
  consume 0 trace;
  (* --- reachability: which access-bearing segments precede each segment --- *)
  let dim = Array.make tab.nseg (-1) in
  let ndim = ref 0 in
  Hashtbl.iter
    (fun _ cell ->
      List.iter
        (fun a ->
          if dim.(a.a_seg) < 0 then begin
            dim.(a.a_seg) <- !ndim;
            incr ndim
          end)
        !cell)
    accesses;
  let skip_reach = tab.nseg * !ndim > max_reach_bits in
  if !truncated || skip_reach then
    Verify.Diagnostic.emit sink
      (diag ~rule:"sanitize/trace-truncated" ~severity:Verify.Diagnostic.Info
         ~path:"trace" ~node:"recorder"
         "trace too large (%d events, %d segments); race analysis %s"
         (Trace_log.length trace) tab.nseg
         (if skip_reach then "skipped" else "truncated"));
  if not skip_reach then begin
    let words = (!ndim + 62) / 63 in
    let anc = Array.make tab.nseg [||] in
    let empty = Array.make words 0 in
    for s = 0 to tab.nseg - 1 do
      let set =
        match tab.preds.(s) with [] -> empty | _ -> Array.make words 0
      in
      List.iter
        (fun p ->
          let pa = anc.(p) in
          if pa != empty && Array.length pa > 0 then
            for w = 0 to words - 1 do
              set.(w) <- set.(w) lor pa.(w)
            done;
          if dim.(p) >= 0 then
            set.(dim.(p) / 63) <- set.(dim.(p) / 63) lor (1 lsl (dim.(p) mod 63)))
        tab.preds.(s);
      anc.(s) <- set
    done;
    let reaches a b =
      (* does access segment [a] happen before segment [b]? *)
      let d = dim.(a) in
      Array.length anc.(b) > 0 && anc.(b).(d / 63) land (1 lsl (d mod 63)) <> 0
    in
    let ordered a b = a.a_seg = b.a_seg || reaches a.a_seg b.a_seg || reaches b.a_seg a.a_seg in
    let disjoint_locks a b =
      not (List.exists (fun l -> List.mem l b.a_locks) a.a_locks)
    in
    let report_race obj a b =
      let a, b = if a.a_seq <= b.a_seq then (a, b) else (b, a) in
      Verify.Diagnostic.emit sink
        (diag ~rule:"sanitize/data-race" ~severity:Verify.Diagnostic.Error
           ~path:obj ~node:obj
           "conflicting unsynchronized accesses: %s vs %s — no common lock \
            and no happens-before ordering through the job graph"
           (describe a) (describe b))
    in
    Hashtbl.iter
      (fun obj cell ->
        let accs = List.rev !cell in
        let writes = List.filter (fun a -> a.a_write) accs in
        if writes <> [] then begin
          let found = ref false in
          List.iter
            (fun w ->
              List.iter
                (fun b ->
                  if
                    (not !found)
                    && (b.a_write = false || w.a_seq < b.a_seq)
                    && w.a_seg <> b.a_seg
                    && disjoint_locks w b
                    && not (ordered w b)
                  then begin
                    found := true;
                    report_race obj w b
                  end)
                accs)
            writes
        end)
      accesses
  end;
  (* --- lock-order inversion: (a then b) and (b then a) both observed --- *)
  Hashtbl.iter
    (fun (a, b) () ->
      if a < b && Hashtbl.mem lock_pairs (b, a) then
        Verify.Diagnostic.emit sink
          (diag ~rule:"sanitize/lock-inversion"
             ~severity:Verify.Diagnostic.Warning
             ~path:(Printf.sprintf "%s,%s" a b)
             ~node:a
             "locks %s and %s are acquired in both orders — potential \
              deadlock under contention"
             a b))
    lock_pairs;
  Verify.Diagnostic.drain sink

(** Concurrency sanitizer for the optimizer's job scheduler and Memo
    (tentpole of the sanitize layer).

    Record a trace around an optimizer run, then analyze it for data races
    ({!Race}) and goal-queue deadlocks / lost wakeups ({!Deadlock}).
    Findings reuse {!Verify.Diagnostic} so they slot into the same reports
    as the static plan linter. *)

val record : (unit -> 'a) -> 'a * Trace_log.t
(** Run a computation with {!Gpos.Trace} recording enabled. *)

val analyze : Trace_log.t -> Verify.Diagnostic.t list
(** All concurrency analyses over one trace, sorted errors-first. *)

val check : (unit -> 'a) -> 'a * Verify.Diagnostic.t list
(** [record] + [analyze] in one step. *)

val compare_runs :
  label:string ->
  baseline:string * float ->
  candidate:string * float ->
  Verify.Diagnostic.t list
(** Plan/cost divergence check for the schedule fuzzer: compares a candidate
    run's (plan rendering, cost) against the sequential baseline and emits
    [sanitize/schedule-divergence] errors on mismatch. *)

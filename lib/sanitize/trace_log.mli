(** Event recorder for the concurrency sanitizer: installs a {!Gpos.Trace}
    sink around a computation and returns the collected trace in global
    arrival order. *)

type entry = {
  seq : int;
  domain : int;
  running : int option; (** job whose body emitted the event, if any *)
  ev : Gpos.Trace.event;
}

type t = entry list

val record : (unit -> 'a) -> 'a * t
(** [record f] runs [f] with tracing enabled and returns its result together
    with every event emitted while it ran. The sink is removed afterwards
    even if [f] raises. Recording is process-global: do not nest. *)

val length : t -> int
val event_to_string : entry -> string
val to_string : t -> string

(** Wait-for-graph analysis of the scheduler's goal queues: replays a trace
    into per-job / per-goal end states and reports lost wakeups and deadlock
    cycles.

    Rules: [sanitize/goal-cycle], [sanitize/stuck-pending],
    [sanitize/lost-waiter] (errors), [sanitize/job-leak] (warning). *)

val check : Trace_log.t -> Verify.Diagnostic.t list

(* Facade over the concurrency analyses: record a trace around an optimizer
   run, then feed it to the race detector and the wait-for-graph analyzer.
   Also hosts the plan/cost divergence check used by the schedule fuzzer. *)

let record = Trace_log.record

let analyze (trace : Trace_log.t) : Verify.Diagnostic.t list =
  Verify.Diagnostic.sort (Deadlock.check trace @ Race.check trace)

let check f =
  let v, trace = record f in
  (v, analyze trace)

let compare_runs ~label ~baseline:(bplan, bcost) ~candidate:(cplan, ccost) :
    Verify.Diagnostic.t list =
  let diags = ref [] in
  let diag = Verify.Diagnostic.make in
  if bplan <> cplan then
    diags :=
      diag ~rule:"sanitize/schedule-divergence"
        ~severity:Verify.Diagnostic.Error ~path:label ~node:"plan"
        "%s produced a different plan than the sequential baseline" label
      :: !diags;
  if bcost <> ccost then
    diags :=
      diag ~rule:"sanitize/schedule-divergence"
        ~severity:Verify.Diagnostic.Error ~path:label ~node:"cost"
        "%s produced cost %.6f but the sequential baseline produced %.6f"
        label ccost bcost
      :: !diags;
  !diags

(** Lockset / happens-before data-race detection over a recorded trace.

    Replays the trace into a structural happens-before graph (program order,
    spawn, join, goal-queue release, run end — but deliberately not the
    scheduler mutex or same-domain coincidence, so the result is
    schedule-insensitive) and flags conflicting accesses to the same object
    that are unordered and share no lock.

    Rules: [sanitize/data-race] (error), [sanitize/lock-inversion]
    (warning), [sanitize/trace-truncated] (info). *)

val check : Trace_log.t -> Verify.Diagnostic.t list

(* Event recorder: installs a Gpos.Trace sink, collects the stamped events in
   global arrival order, and hands the finished trace to the analyses.

   The recorder mutex makes arrival order a total order; scheduler
   bookkeeping events are emitted with the scheduler mutex held, so the
   recorded order is consistent with the synchronization the scheduler
   actually performed (a child's [Job_start] can never precede its parent's
   [Job_created] in the log, and so on). Body-side [Access] events from
   different domains interleave arbitrarily, which is fine: the analyses
   derive ordering from the job structure, not from log positions. *)

type entry = {
  seq : int;
  domain : int;
  running : int option; (* job whose body emitted the event, if any *)
  ev : Gpos.Trace.event;
}

type t = entry list (* in global arrival order *)

let record f =
  let buf = ref [] in
  let n = ref 0 in
  let m = Mutex.create () in
  let sink (s : Gpos.Trace.stamped) =
    Mutex.lock m;
    buf :=
      { seq = !n; domain = s.Gpos.Trace.domain; running = s.Gpos.Trace.running;
        ev = s.Gpos.Trace.ev }
      :: !buf;
    incr n;
    Mutex.unlock m
  in
  Gpos.Trace.set_sink (Some sink);
  Fun.protect
    ~finally:(fun () -> Gpos.Trace.set_sink None)
    (fun () ->
      let v = f () in
      (v, List.rev !buf))

let length = List.length

let event_to_string (e : entry) =
  let open Gpos.Trace in
  let body =
    match e.ev with
    | Job_created { jid; parent; goal } ->
        Printf.sprintf "job-created %d parent=%s goal=%s" jid
          (match parent with None -> "-" | Some p -> string_of_int p)
          (Option.value ~default:"-" goal)
    | Job_start { jid } -> Printf.sprintf "job-start %d" jid
    | Job_suspended { jid; children } ->
        Printf.sprintf "job-suspended %d children=[%s]" jid
          (String.concat "," (List.map string_of_int children))
    | Job_finished { jid } -> Printf.sprintf "job-finished %d" jid
    | Job_failed { jid } -> Printf.sprintf "job-failed %d" jid
    | Goal_acquired { goal; jid } ->
        Printf.sprintf "goal-acquired %s by %d" goal jid
    | Goal_absorbed { goal; parent; child; finished } ->
        Printf.sprintf "goal-absorbed %s parent=%d child=%d finished=%b" goal
          parent child finished
    | Goal_released { goal; jid; waiters } ->
        Printf.sprintf "goal-released %s by %d waiters=[%s]" goal jid
          (String.concat "," (List.map string_of_int waiters))
    | Run_end { root } -> Printf.sprintf "run-end root=%d" root
    | Lock_acquired { lock } -> Printf.sprintf "lock-acquired %s" lock
    | Lock_released { lock } -> Printf.sprintf "lock-released %s" lock
    | Access { obj; write } ->
        Printf.sprintf "%s %s" (if write then "write" else "read") obj
  in
  Printf.sprintf "#%d d%d%s %s" e.seq e.domain
    (match e.running with None -> "" | Some j -> Printf.sprintf " j%d" j)
    body

let to_string (t : t) =
  String.concat "\n" (List.map event_to_string t) ^ "\n"

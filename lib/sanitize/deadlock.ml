(* Wait-for-graph analysis of the scheduler's goal queues.

   The trace is replayed into per-job and per-goal end states; a healthy
   drained run leaves every job finished (or absorbed into a goal that was
   eventually released) and every goal finished. Anything else is a
   lost-wakeup or a cycle:

     - goal-cycle: jobs waiting on each other through goal queues form a
       cycle in the wait-for graph (A holds goal a and is parked on goal b
       whose holder is parked on a, ...);
     - stuck-pending: a job is suspended, every child it waited for has
       completed and every goal it parked on has been released, yet it was
       never re-enqueued — its pending count can never reach 0 again;
     - lost-waiter: a job is parked on a goal whose holder has already
       finished or failed, i.e. the goal entry will never be released;
     - job-leak (warning): a job was created or absorbed but its fate was
       never resolved when the trace ended (normal only when the run was
       aborted by a failure). *)

type status = Created | Running | Suspended | Finished | Failed | Absorbed

type jstate = {
  j_id : int;
  j_parent : int option;
  mutable j_status : status;
  mutable j_children : int list; (* outstanding children of last suspend *)
  mutable j_parked : string list; (* unreleased goals this job waits on *)
}

type gstate = {
  mutable g_holder : int option;
  mutable g_finished : bool;
  mutable g_waiters : int list;
}

let diag = Verify.Diagnostic.make

let status_to_string = function
  | Created -> "created"
  | Running -> "running"
  | Suspended -> "suspended"
  | Finished -> "finished"
  | Failed -> "failed"
  | Absorbed -> "absorbed"

let check (trace : Trace_log.t) : Verify.Diagnostic.t list =
  let sink = Verify.Diagnostic.sink () in
  let jobs : (int, jstate) Hashtbl.t = Hashtbl.create 256 in
  let goals : (string, gstate) Hashtbl.t = Hashtbl.create 64 in
  let failed_run = ref false in
  let job ?parent jid =
    match Hashtbl.find_opt jobs jid with
    | Some js -> js
    | None ->
        let js =
          { j_id = jid; j_parent = parent; j_status = Created;
            j_children = []; j_parked = [] }
        in
        Hashtbl.add jobs jid js;
        js
  in
  let replay (e : Trace_log.entry) =
    match e.Trace_log.ev with
    | Gpos.Trace.Job_created { jid; parent; goal = _ } ->
        ignore (job ?parent jid)
    | Job_start { jid } -> (job jid).j_status <- Running
    | Job_suspended { jid; children } ->
        let js = job jid in
        js.j_status <- Suspended;
        js.j_children <- children
    | Job_finished { jid } | Job_failed { jid } ->
        let js = job jid in
        js.j_status <-
          (match e.Trace_log.ev with Job_failed _ -> failed_run := true; Failed | _ -> Finished);
        (match js.j_parent with
        | Some p ->
            let ps = job p in
            ps.j_children <- List.filter (fun c -> c <> jid) ps.j_children
        | None -> ())
    | Goal_acquired { goal; jid } ->
        Hashtbl.replace goals goal
          { g_holder = Some jid; g_finished = false; g_waiters = [] }
    | Goal_absorbed { goal; parent; child; finished } ->
        (job child).j_status <- Absorbed;
        if not finished then (
          (match Hashtbl.find_opt goals goal with
          | Some g -> g.g_waiters <- parent :: g.g_waiters
          | None ->
              Hashtbl.replace goals goal
                { g_holder = None; g_finished = false; g_waiters = [ parent ] });
          let ps = job parent in
          if not (List.mem goal ps.j_parked) then
            ps.j_parked <- goal :: ps.j_parked)
    | Goal_released { goal; jid = _; waiters = _ } -> (
        match Hashtbl.find_opt goals goal with
        | Some g ->
            g.g_finished <- true;
            List.iter
              (fun w ->
                let ws = job w in
                ws.j_parked <- List.filter (fun x -> x <> goal) ws.j_parked)
              g.g_waiters;
            g.g_waiters <- []
        | None ->
            Hashtbl.replace goals goal
              { g_holder = None; g_finished = true; g_waiters = [] })
    | Run_end _ | Lock_acquired _ | Lock_released _ | Access _ -> ()
  in
  List.iter replay trace;
  let unresolved js =
    match js.j_status with
    | Created | Running | Suspended -> true
    | Finished | Failed | Absorbed -> false
  in
  let goal_unfinished g =
    match Hashtbl.find_opt goals g with
    | Some gs -> not gs.g_finished
    | None -> false
  in
  let goal_holder g =
    match Hashtbl.find_opt goals g with Some gs -> gs.g_holder | None -> None
  in
  let edges js =
    let via_children =
      List.filter
        (fun c ->
          match Hashtbl.find_opt jobs c with
          | Some cs -> unresolved cs
          | None -> false)
        js.j_children
    in
    let via_goals =
      List.filter_map
        (fun g -> if goal_unfinished g then goal_holder g else None)
        js.j_parked
    in
    via_children @ via_goals
  in
  (* --- per-job end-state checks --- *)
  let stuck = ref [] in
  Hashtbl.iter
    (fun _ js ->
      match js.j_status with
      | Suspended ->
          let live_children =
            List.exists
              (fun c ->
                match Hashtbl.find_opt jobs c with
                | Some cs -> unresolved cs
                | None -> true)
              js.j_children
          in
          let parked_goals = List.filter goal_unfinished js.j_parked in
          (* lost-waiter: parked on a goal whose holder can no longer
             release it *)
          List.iter
            (fun g ->
              match goal_holder g with
              | Some h
                when (match Hashtbl.find_opt jobs h with
                     | Some hs -> not (unresolved hs)
                     | None -> true) ->
                  Verify.Diagnostic.emit sink
                    (diag ~rule:"sanitize/lost-waiter"
                       ~severity:Verify.Diagnostic.Error
                       ~path:(Printf.sprintf "job %d" js.j_id)
                       ~node:g
                       "job %d is parked on goal %s whose holder (job %d) \
                        already %s without releasing it"
                       js.j_id g h
                       (match Hashtbl.find_opt jobs h with
                       | Some hs -> status_to_string hs.j_status
                       | None -> "vanished"))
              | Some _ | None -> ())
            parked_goals;
          if (not live_children) && parked_goals = [] && not !failed_run then
            stuck := js :: !stuck
      | Created | Running ->
          if not !failed_run then
            Verify.Diagnostic.emit sink
              (diag ~rule:"sanitize/job-leak"
                 ~severity:Verify.Diagnostic.Warning
                 ~path:(Printf.sprintf "job %d" js.j_id)
                 ~node:(status_to_string js.j_status)
                 "job %d was still %s when the trace ended"
                 js.j_id (status_to_string js.j_status))
      | Finished | Failed | Absorbed -> ())
    jobs;
  List.iter
    (fun js ->
      Verify.Diagnostic.emit sink
        (diag ~rule:"sanitize/stuck-pending" ~severity:Verify.Diagnostic.Error
           ~path:(Printf.sprintf "job %d" js.j_id)
           ~node:"suspended"
           "job %d is suspended with no outstanding children and no parked \
            goals: its pending count can never reach 0 again (lost wakeup)"
           js.j_id))
    !stuck;
  (* --- cycle detection over the wait-for graph --- *)
  let color : (int, int) Hashtbl.t = Hashtbl.create 64 in
  (* 0 = unvisited (absent), 1 = on stack, 2 = done *)
  let reported_cycle = ref false in
  let rec dfs path jid =
    match Hashtbl.find_opt color jid with
    | Some 2 -> ()
    | Some 1 ->
        if not !reported_cycle then begin
          reported_cycle := true;
          let cycle =
            let rec cut acc = function
              | [] -> List.rev acc
              | x :: _ when x = jid -> List.rev (x :: acc)
              | x :: rest -> cut (x :: acc) rest
            in
            cut [] path
          in
          Verify.Diagnostic.emit sink
            (diag ~rule:"sanitize/goal-cycle"
               ~severity:Verify.Diagnostic.Error
               ~path:
                 (String.concat " -> "
                    (List.map (Printf.sprintf "job %d") (List.rev cycle)))
               ~node:"wait-for graph"
               "goal-queue deadlock: jobs wait on each other in a cycle (%s)"
               (String.concat " -> "
                  (List.map string_of_int (List.rev (jid :: cycle)))))
        end
    | Some _ -> ()
    | None -> (
        match Hashtbl.find_opt jobs jid with
        | None -> ()
        | Some js ->
            Hashtbl.replace color jid 1;
            if unresolved js then List.iter (dfs (jid :: path)) (edges js);
            Hashtbl.replace color jid 2)
  in
  Hashtbl.iter (fun jid js -> if unresolved js then dfs [] jid) jobs;
  Verify.Diagnostic.drain sink

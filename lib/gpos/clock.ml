(* Wall-clock helpers (GPOS timer abstraction).

   Production uses the real clock. Tests that need reproducible durations
   (the span-trace golden tests in test/test_obs.ml) install a deterministic
   counter with [with_fake]: every [now] call advances it by a fixed step, so
   span start/duration arithmetic is exact under `dune runtest`. The fake
   clock is for single-domain tests only; multi-worker runs keep Real. *)

type mode =
  | Real
  | Fake of { mutable fnow : float; step : float }

let mode = ref Real

let now () =
  match !mode with
  | Real -> Unix.gettimeofday ()
  | Fake f ->
      let v = f.fnow in
      f.fnow <- v +. f.step;
      v

let ms_since t0 = (now () -. t0) *. 1000.0

(* Time a thunk; returns (result, elapsed milliseconds). *)
let time f =
  let t0 = now () in
  let r = f () in
  (r, ms_since t0)

(* Run [f] under a deterministic clock starting at [start] seconds and
   advancing [step] seconds per [now] call; restores the previous clock. *)
let with_fake ?(start = 0.0) ?(step = 0.001) f =
  let prev = !mode in
  mode := Fake { fnow = start; step };
  Fun.protect ~finally:(fun () -> mode := prev) f

(* Concurrency-event tracing for the sanitizer (lib/sanitize).

   The scheduler, the Memo and the search engine emit structured events —
   job lifecycle transitions, goal-queue operations, lock acquisitions and
   shared-state accesses — through a single global sink. With no sink
   installed (the default) [emit] is a single atomic load and a branch, so
   the instrumentation is effectively free on the hot paths.

   Events are stamped with the emitting domain and the job currently running
   on that domain (tracked in domain-local storage by the scheduler), which
   is what the offline race/deadlock analyses key on. *)

type event =
  | Job_created of { jid : int; parent : int option; goal : string option }
  | Job_start of { jid : int }
  | Job_suspended of { jid : int; children : int list }
      (* [children]: jids of the spawned children actually enqueued (goal
         absorptions excluded; those show up as [Goal_absorbed]) *)
  | Job_finished of { jid : int }
  | Job_failed of { jid : int }
  | Goal_acquired of { goal : string; jid : int }
  | Goal_absorbed of { goal : string; parent : int; child : int; finished : bool }
      (* a spawned child was deduplicated against an in-flight goal
         ([finished = false]: the parent parked on the goal queue) or an
         already-finished one ([finished = true]: resolved immediately) *)
  | Goal_released of { goal : string; jid : int; waiters : int list }
  | Run_end of { root : int }
      (* [Scheduler.run] returned: every spawned domain has been joined, so
         everything that ran happens-before the emitting domain's future *)
  | Lock_acquired of { lock : string }
  | Lock_released of { lock : string }
  | Access of { obj : string; write : bool }

type stamped = { domain : int; running : int option; ev : event }

let sink : (stamped -> unit) option Atomic.t = Atomic.make None

let set_sink s = Atomic.set sink s

let enabled () = Atomic.get sink <> None

(* The job whose body is currently executing on this domain. *)
let running_key : int option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let set_running jid = Domain.DLS.set running_key jid
let running () = Domain.DLS.get running_key

let emit ev =
  match Atomic.get sink with
  | None -> ()
  | Some f ->
      f
        {
          domain = (Domain.self () :> int);
          running = Domain.DLS.get running_key;
          ev;
        }

(* Job scheduler (paper §4.2).

   Optimization is broken into small re-entrant jobs. A job is a closure over
   its own mutable state; running it either finishes or spawns child jobs and
   suspends. When every child has completed, the suspended job is re-run and —
   because its captured state advanced — proceeds to its next phase.

   Jobs may carry a goal key (e.g. "exp:g3"): while a job with some goal is
   running, other incoming jobs with the same goal are parked on the goal's
   queue instead of duplicating work, and are released when it completes
   (paper: group job queues).

   The scheduler runs jobs on [workers] domains. With [workers = 1] execution
   is sequential and deterministic, which is the default used by tests. The
   optional [fuzz] PRNG dequeues a random queued job instead of the oldest
   one; with [workers = 1] that deterministically permutes the schedule per
   seed, which is what the sanitizer's schedule fuzzer drives.

   Lock discipline: every field of [t] below the mutex is read and written
   with [t.mutex] held, except the statistics counters, which are [Atomic.t]
   so that [stats] can be read from any domain without synchronizing with the
   workers. Job bodies run with the mutex released.

   When [Trace] has a sink installed, every lifecycle transition is published
   for the offline race/deadlock analyses in [lib/sanitize]. *)

type outcome =
  | Finished
  | Wait_for of child list

and child = { run : unit -> outcome; goal : string option }

type job = {
  jid : int;
  body : unit -> outcome;
  jgoal : string option;
  mutable pending : int; (* children not yet completed *)
  mutable parent : job option;
}

type goal_state =
  | Goal_running of { holder : job; waiters : job list ref }
      (* [holder] runs the goal; [waiters] are parents parked on it *)
  | Goal_finished

type policy = Fifo | Lifo

type t = {
  mutex : Mutex.t;
  cond : Condition.t;
  queue : job Queue.t; (* Fifo runnable jobs (also the fuzzer's pool) *)
  mutable stack : job list; (* Lifo runnable jobs *)
  mutable depth : int; (* length of [stack] *)
  policy : policy;
  goals : (string, goal_state) Hashtbl.t;
  live : int Atomic.t; (* jobs created and not yet completed *)
  mutable failure : (exn * Printexc.raw_backtrace) option;
  jobs_run : int Atomic.t; (* statistics: number of job (re-)executions *)
  jobs_created : int Atomic.t;
  goal_hits : int Atomic.t; (* children absorbed by an in-flight/finished goal *)
  jobs_suspended : int Atomic.t; (* executions that returned Wait_for *)
  max_queue_depth : int Atomic.t; (* high-water mark of the run queue *)
  per_worker_run : int Atomic.t array; (* job executions per worker domain *)
  fuzz : Prng.t option; (* schedule fuzzer: randomized dequeue order *)
  workers : int;
}

(* Job ids are globally unique (not per scheduler) so that traces covering
   several schedulers — the engine runs exploration and optimization on
   separate ones — never alias two jobs. *)
let next_jid = Atomic.make 0

let create ?(workers = 1) ?fuzz ?(policy = Fifo) () =
  if workers < 1 then invalid_arg "Scheduler.create: workers must be >= 1";
  (* the fuzzer picks uniformly over the whole pool, subsuming any policy *)
  let policy = if fuzz <> None then Fifo else policy in
  {
    mutex = Mutex.create ();
    cond = Condition.create ();
    queue = Queue.create ();
    stack = [];
    depth = 0;
    policy;
    goals = Hashtbl.create 64;
    live = Atomic.make 0;
    failure = None;
    jobs_run = Atomic.make 0;
    jobs_created = Atomic.make 0;
    goal_hits = Atomic.make 0;
    jobs_suspended = Atomic.make 0;
    max_queue_depth = Atomic.make 0;
    per_worker_run = Array.init workers (fun _ -> Atomic.make 0);
    fuzz;
    workers;
  }

let stats t =
  (Atomic.get t.jobs_created, Atomic.get t.jobs_run, Atomic.get t.goal_hits)

(* Utilization snapshot for the observability report (lib/obs). *)
type profile = {
  p_workers : int;
  p_jobs_created : int;
  p_jobs_run : int;
  p_jobs_suspended : int;
  p_goal_hits : int;
  p_max_queue_depth : int;
  p_per_worker_run : int list;
}

let profile t =
  {
    p_workers = t.workers;
    p_jobs_created = Atomic.get t.jobs_created;
    p_jobs_run = Atomic.get t.jobs_run;
    p_jobs_suspended = Atomic.get t.jobs_suspended;
    p_goal_hits = Atomic.get t.goal_hits;
    p_max_queue_depth = Atomic.get t.max_queue_depth;
    p_per_worker_run =
      Array.to_list (Array.map Atomic.get t.per_worker_run);
  }

(* All bookkeeping below runs with [t.mutex] held. *)

let new_job t ?parent ?goal body =
  let jid = Atomic.fetch_and_add next_jid 1 in
  let j = { jid; body; jgoal = goal; pending = 0; parent } in
  Atomic.incr t.jobs_created;
  Atomic.incr t.live;
  if Trace.enabled () then
    Trace.emit
      (Trace.Job_created
         { jid; parent = Option.map (fun p -> p.jid) parent; goal });
  j

let enqueue t j =
  let d =
    match t.policy with
    | Fifo ->
        Queue.add j t.queue;
        Queue.length t.queue
    | Lifo ->
        (* depth-first: a spawned subtree completes before its siblings run,
           so goal results exist by the time later spawns ask for them *)
        t.stack <- j :: t.stack;
        t.depth <- t.depth + 1;
        t.depth
  in
  (* queue-depth high-water mark; runs with the mutex held *)
  if d > Atomic.get t.max_queue_depth then Atomic.set t.max_queue_depth d;
  Condition.signal t.cond

(* A child of [parent] became (or was already) complete. *)
let rec child_completed t parent =
  parent.pending <- parent.pending - 1;
  if parent.pending = 0 then enqueue t parent

(* Job [j] finished for good: release its goal and resume its parent. *)
and complete t j =
  Atomic.decr t.live;
  (match j.jgoal with
  | None -> ()
  | Some g -> (
      match Hashtbl.find_opt t.goals g with
      | Some (Goal_running { waiters; _ }) ->
          Hashtbl.replace t.goals g Goal_finished;
          if Trace.enabled () then
            Trace.emit
              (Trace.Goal_released
                 {
                   goal = g;
                   jid = j.jid;
                   waiters = List.map (fun p -> p.jid) !waiters;
                 });
          List.iter (fun p -> child_completed t p) !waiters
      | Some Goal_finished | None -> ()));
  (match j.parent with None -> () | Some p -> child_completed t p);
  if Atomic.get t.live = 0 then Condition.broadcast t.cond

(* Is [holder] equal to [j] or one of its ancestors? If a job spawns a child
   whose goal is held by itself or an ancestor, parking the job on the goal
   queue would deadlock: the goal cannot finish until the parked job's own
   subtree completes. *)
let rec held_by_ancestor holder j =
  holder == j
  || match j.parent with None -> false | Some p -> held_by_ancestor holder p

(* Register a spawned child under its goal queue. Returns [true] when the
   child must actually run, [false] when an equivalent job is in flight or
   done (the parent will be resumed through the goal queue instead). *)
let admit_child t parent (j : job) =
  match j.jgoal with
  | None -> true
  | Some g -> (
      match Hashtbl.find_opt t.goals g with
      | None ->
          Hashtbl.replace t.goals g
            (Goal_running { holder = j; waiters = ref [] });
          if Trace.enabled () then
            Trace.emit (Trace.Goal_acquired { goal = g; jid = j.jid });
          true
      | Some (Goal_running { holder; waiters }) ->
          Atomic.incr t.goal_hits;
          Atomic.decr t.live;
          if held_by_ancestor holder parent then begin
            (* The goal is held by the requesting job itself or an ancestor:
               parking would form a wait cycle (the goal finishes only after
               the parker's subtree does). The ancestor's own fixpoint covers
               the work, so resolve the child immediately. *)
            if Trace.enabled () then
              Trace.emit
                (Trace.Goal_absorbed
                   { goal = g; parent = parent.jid; child = j.jid;
                     finished = true });
            child_completed t parent
          end
          else begin
            if Trace.enabled () then
              Trace.emit
                (Trace.Goal_absorbed
                   { goal = g; parent = parent.jid; child = j.jid;
                     finished = false });
            waiters := parent :: !waiters
          end;
          false
      | Some Goal_finished ->
          Atomic.incr t.goal_hits;
          Atomic.decr t.live;
          if Trace.enabled () then
            Trace.emit
              (Trace.Goal_absorbed
                 { goal = g; parent = parent.jid; child = j.jid;
                   finished = true });
          child_completed t parent;
          false)

let spawn_children t parent children =
  parent.pending <- List.length children;
  let to_run =
    List.filter_map
      (fun { run; goal } ->
        let j = new_job t ~parent ?goal run in
        if admit_child t parent j then Some j else None)
      children
  in
  if Trace.enabled () then
    Trace.emit
      (Trace.Job_suspended
         { jid = parent.jid; children = List.map (fun j -> j.jid) to_run });
  (* Children absorbed by goal queues already decremented [pending]; if all
     were absorbed and resolved, the parent is re-enqueued by
     [child_completed]. Otherwise enqueue the remaining real jobs. *)
  List.iter (fun j -> enqueue t j) to_run

let run_one t ~widx j =
  Atomic.incr t.jobs_run;
  if widx < Array.length t.per_worker_run then
    Atomic.incr t.per_worker_run.(widx);
  if Trace.enabled () then Trace.emit (Trace.Job_start { jid = j.jid });
  Mutex.unlock t.mutex;
  Trace.set_running (Some j.jid);
  let result =
    try Ok (j.body ())
    with e -> Error (e, Printexc.get_raw_backtrace ())
  in
  Trace.set_running None;
  Mutex.lock t.mutex;
  match result with
  | Ok Finished ->
      if Trace.enabled () then Trace.emit (Trace.Job_finished { jid = j.jid });
      complete t j
  | Ok (Wait_for []) ->
      (* nothing to wait for: re-run *)
      Atomic.incr t.jobs_suspended;
      if Trace.enabled () then
        Trace.emit (Trace.Job_suspended { jid = j.jid; children = [] });
      enqueue t j
  | Ok (Wait_for children) ->
      Atomic.incr t.jobs_suspended;
      spawn_children t j children
  | Error (e, bt) ->
      if Trace.enabled () then Trace.emit (Trace.Job_failed { jid = j.jid });
      if t.failure = None then t.failure <- Some (e, bt);
      complete t j

let worker_loop t ~widx =
  Mutex.lock t.mutex;
  let take () =
    match t.fuzz with
    | None -> (
        match t.policy with
        | Fifo -> Queue.take_opt t.queue
        | Lifo -> (
            match t.stack with
            | [] -> None
            | j :: rest ->
                t.stack <- rest;
                t.depth <- t.depth - 1;
                Some j))
    | Some rng ->
        (* randomized dequeue: rotate a PRNG-chosen prefix to the back, then
           take the front — a uniform pick over the queued jobs. Runs with
           the mutex held, so the PRNG needs no extra synchronization. *)
        let n = Queue.length t.queue in
        if n = 0 then None
        else begin
          for _ = 1 to Prng.int rng n do
            Queue.add (Queue.take t.queue) t.queue
          done;
          Queue.take_opt t.queue
        end
  in
  let rec loop () =
    if Atomic.get t.live = 0 || t.failure <> None then ()
    else
      match take () with
      | Some j ->
          run_one t ~widx j;
          loop ()
      | None ->
          Condition.wait t.cond t.mutex;
          loop ()
  in
  loop ();
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex

(* Run [root] (and everything it spawns) to completion. Raises the first
   failure encountered by any job, preserving its backtrace. *)
let run t root =
  Mutex.lock t.mutex;
  t.failure <- None;
  (* Goal state never outlives a run: a later run reusing a goal key must not
     be absorbed by a stale entry (in particular one left by a failed run,
     whose waiters were abandoned — parking on it would wedge forever). *)
  Hashtbl.reset t.goals;
  let j = new_job t root in
  enqueue t j;
  Mutex.unlock t.mutex;
  if t.workers = 1 then worker_loop t ~widx:0
  else begin
    let domains =
      List.init (t.workers - 1) (fun i ->
          Domain.spawn (fun () -> worker_loop t ~widx:(i + 1)))
    in
    worker_loop t ~widx:0;
    List.iter Domain.join domains
  end;
  if Trace.enabled () then Trace.emit (Trace.Run_end { root = j.jid });
  match t.failure with
  | Some (e, bt) ->
      t.failure <- None;
      (* Residual suspended jobs are abandoned on failure; drop every trace
         of them so the scheduler is reusable. *)
      Mutex.lock t.mutex;
      Queue.clear t.queue;
      t.stack <- [];
      t.depth <- 0;
      Hashtbl.reset t.goals;
      Atomic.set t.live 0;
      Mutex.unlock t.mutex;
      Printexc.raise_with_backtrace e bt
  | None -> ()

(* Convenience: run a one-shot computation structured as jobs and return its
   result through a ref cell. *)
let run_root t f =
  let result = ref None in
  run t (fun () ->
      f (fun v -> result := Some v);
      Finished);
  !result

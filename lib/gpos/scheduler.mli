(** Job scheduler for parallel query optimization (paper §4.2).

    Work is expressed as re-entrant jobs: a job either finishes, or spawns
    child jobs and suspends until all of them complete, at which point it is
    re-run (its captured mutable state makes it resume where it left off).
    Jobs may carry a goal key; concurrent jobs with the same goal are
    deduplicated through per-goal queues exactly as in the paper. *)

type outcome =
  | Finished
  | Wait_for of child list
      (** Spawn the children and re-run this job once they all complete. *)

and child = { run : unit -> outcome; goal : string option }

type t

type policy = Fifo | Lifo
(** Dequeue order. [Fifo] (the default) runs jobs oldest-first —
    breadth-first over the job graph. [Lifo] runs the most recently spawned
    job first — depth-first — so a goal's subtree completes before sibling
    jobs spawn, which lets result caches keyed on finished goals hit. Any
    policy must produce the same results: the schedule fuzzer exists to
    check exactly that. *)

val create : ?workers:int -> ?fuzz:Prng.t -> ?policy:policy -> unit -> t
(** [workers = 1] (default) gives deterministic sequential execution;
    [workers > 1] runs jobs on that many domains. When [fuzz] is given, the
    scheduler dequeues a PRNG-chosen queued job instead of following
    [policy]: with [workers = 1] this deterministically permutes the
    schedule per seed (the sanitizer's schedule fuzzer). *)

val run : t -> (unit -> outcome) -> unit
(** Run the root job and everything it transitively spawns to completion.
    Re-raises the first exception raised by any job, preserving its
    backtrace. Goal state never survives across runs (in particular a failed
    run cannot wedge a later one), and when {!Trace} has a sink installed,
    every lifecycle transition is published to it. *)

val run_root : t -> (('a -> unit) -> unit) -> 'a option
(** [run_root t f] runs [f store] as the root job; [store] saves the result
    returned once the job graph drains. *)

val stats : t -> int * int * int
(** (jobs created, job executions, goal-queue hits). *)

type profile = {
  p_workers : int;
  p_jobs_created : int;
  p_jobs_run : int;
  p_jobs_suspended : int;  (** executions that returned [Wait_for] *)
  p_goal_hits : int;
  p_max_queue_depth : int; (** high-water mark of the run queue *)
  p_per_worker_run : int list;  (** job executions per worker domain *)
}
(** Utilization snapshot for the observability report (lib/obs). *)

val profile : t -> profile

(** Wall-clock helpers (GPOS timer abstraction, paper §3). *)

val now : unit -> float
(** Seconds since the epoch, as a float. *)

val ms_since : float -> float
(** Milliseconds elapsed since a [now ()] reading. *)

val time : (unit -> 'a) -> 'a * float
(** Run a thunk; return its result and the elapsed milliseconds. *)

val with_fake : ?start:float -> ?step:float -> (unit -> 'a) -> 'a
(** Run a thunk under a deterministic clock: [now] starts at [start]
    (default 0) and advances [step] seconds (default 0.001) per call, so
    durations are reproducible in tests. Restores the real clock on exit.
    Single-domain use only. *)

(** Concurrency-event tracing for the sanitizer ({!module:Sanitize}).

    The scheduler, the Memo and the search engine publish structured events
    through one global sink; with no sink installed (the default) {!emit} is
    an atomic load and a branch. Callers computing an expensive event payload
    (e.g. a [Printf.sprintf]ed object name) should guard on {!enabled}. *)

type event =
  | Job_created of { jid : int; parent : int option; goal : string option }
  | Job_start of { jid : int }
  | Job_suspended of { jid : int; children : int list }
      (** [children] lists only the spawned children actually enqueued;
          goal-queue absorptions are reported as {!Goal_absorbed}. *)
  | Job_finished of { jid : int }
  | Job_failed of { jid : int }
  | Goal_acquired of { goal : string; jid : int }
  | Goal_absorbed of { goal : string; parent : int; child : int; finished : bool }
  | Goal_released of { goal : string; jid : int; waiters : int list }
  | Run_end of { root : int }
      (** [Scheduler.run] returned: all spawned domains joined. *)
  | Lock_acquired of { lock : string }
  | Lock_released of { lock : string }
  | Access of { obj : string; write : bool }
      (** A shared-state read or write; [obj] is a stable object name such as
          ["ctx:12.best"] or ["memo.index"]. *)

type stamped = { domain : int; running : int option; ev : event }

val set_sink : (stamped -> unit) option -> unit
(** Install (or remove) the global event sink. The sink is called from every
    domain and must be thread-safe. *)

val enabled : unit -> bool

val emit : event -> unit
(** Stamp with the emitting domain and the job running on it, then forward to
    the sink; a no-op when none is installed. *)

val set_running : int option -> unit
(** Used by the scheduler: mark the job whose body runs on this domain. *)

val running : unit -> int option

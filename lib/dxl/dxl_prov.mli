(** DXL serialization of provenance and cardinality-accuracy sections for
    AMPERe dumps. The types are standalone, serialization-friendly mirrors
    of lib/prov's records (lib/dxl sits below lib/prov, so the conversion
    happens in lib/core). *)

type node_prov = {
  np_id : int;           (** stable preorder plan-node id *)
  np_path : string;
  np_op : string;
  np_kind : string;      (** "operator" | "enforcer" | "synthetic" *)
  np_lineage : string;   (** rendered rule chain, or the enforcer/synthetic
                             reason *)
  np_cost : float;
  np_est_rows : float;
  np_losers : int;       (** losing alternatives in the node's context *)
  np_best_delta : float; (** cost delta to the cheapest loser; 0 if none *)
}

type plan_prov = { pp_stage : string; pp_nodes : node_prov list }

type class_acc = {
  ca_class : string;
  ca_nodes : int;
  ca_geomean : float;
  ca_max : float;
  ca_unobserved : int;
}

type accuracy = { acc_classes : class_acc list }

val to_xml : plan_prov -> Xml.element
val of_xml : Xml.element -> plan_prov

val accuracy_to_xml : accuracy -> Xml.element
val accuracy_of_xml : Xml.element -> accuracy

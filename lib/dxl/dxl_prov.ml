(* DXL serialization of provenance and cardinality-accuracy sections for
   AMPERe dumps (paper §5: the dump captures everything needed to replay and
   debug an optimization, which now includes "why this plan" and "how wrong
   were the estimates").

   The types here are standalone, serialization-friendly mirrors of
   lib/prov's records: lib/dxl sits below lib/prov in the dependency order,
   so the conversion happens in lib/core (Ampere). *)

type node_prov = {
  np_id : int;          (* stable preorder plan-node id *)
  np_path : string;
  np_op : string;
  np_kind : string;     (* "operator" | "enforcer" | "synthetic" *)
  np_lineage : string;  (* rendered rule chain, or the enforcer/synthetic reason *)
  np_cost : float;
  np_est_rows : float;
  np_losers : int;      (* losing alternatives in the node's context *)
  np_best_delta : float; (* cost delta to the cheapest loser; 0 if none *)
}

type plan_prov = { pp_stage : string; pp_nodes : node_prov list }

type class_acc = {
  ca_class : string;
  ca_nodes : int;
  ca_geomean : float;
  ca_max : float;
  ca_unobserved : int;
}

type accuracy = { acc_classes : class_acc list }

(* --- provenance --- *)

let node_to_xml (np : node_prov) : Xml.element =
  Xml.element "dxl:NodeProv"
    ~attrs:
      [
        ("Id", string_of_int np.np_id);
        ("Path", np.np_path);
        ("Op", np.np_op);
        ("Kind", np.np_kind);
        ("Lineage", np.np_lineage);
        ("Cost", Printf.sprintf "%.6f" np.np_cost);
        ("EstRows", Printf.sprintf "%.6f" np.np_est_rows);
        ("Losers", string_of_int np.np_losers);
        ("BestDelta", Printf.sprintf "%.6f" np.np_best_delta);
      ]

let to_xml (pp : plan_prov) : Xml.element =
  Xml.element "dxl:Provenance"
    ~attrs:[ ("Stage", pp.pp_stage) ]
    ~children:(List.map (fun np -> Xml.Element (node_to_xml np)) pp.pp_nodes)

let node_of_xml (e : Xml.element) : node_prov =
  {
    np_id = int_of_string (Xml.attr_exn e "Id");
    np_path = Xml.attr_exn e "Path";
    np_op = Xml.attr_exn e "Op";
    np_kind = Xml.attr_exn e "Kind";
    np_lineage = Xml.attr_exn e "Lineage";
    np_cost = float_of_string (Xml.attr_exn e "Cost");
    np_est_rows = float_of_string (Xml.attr_exn e "EstRows");
    np_losers = int_of_string (Xml.attr_exn e "Losers");
    np_best_delta = float_of_string (Xml.attr_exn e "BestDelta");
  }

let of_xml (e : Xml.element) : plan_prov =
  {
    pp_stage = Xml.attr_exn e "Stage";
    pp_nodes = List.map node_of_xml (Xml.children_named e "dxl:NodeProv");
  }

(* --- accuracy --- *)

let class_to_xml (ca : class_acc) : Xml.element =
  Xml.element "dxl:ClassAcc"
    ~attrs:
      [
        ("Class", ca.ca_class);
        ("Nodes", string_of_int ca.ca_nodes);
        ("Geomean", Printf.sprintf "%.6f" ca.ca_geomean);
        ("Max", Printf.sprintf "%.6f" ca.ca_max);
        ("Unobserved", string_of_int ca.ca_unobserved);
      ]

let accuracy_to_xml (acc : accuracy) : Xml.element =
  Xml.element "dxl:Accuracy"
    ~children:
      (List.map (fun ca -> Xml.Element (class_to_xml ca)) acc.acc_classes)

let class_of_xml (e : Xml.element) : class_acc =
  {
    ca_class = Xml.attr_exn e "Class";
    ca_nodes = int_of_string (Xml.attr_exn e "Nodes");
    ca_geomean = float_of_string (Xml.attr_exn e "Geomean");
    ca_max = float_of_string (Xml.attr_exn e "Max");
    ca_unobserved = int_of_string (Xml.attr_exn e "Unobserved");
  }

let accuracy_of_xml (e : Xml.element) : accuracy =
  { acc_classes = List.map class_of_xml (Xml.children_named e "dxl:ClassAcc") }

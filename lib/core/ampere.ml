(* AMPERe (paper §6.1): Automatic capture of Minimal Portable Executable
   Repros. A dump packages everything needed to reproduce an optimization
   session away from the system that produced it: the input query, the
   optimizer configuration, the metadata acquired during optimization (the
   MD Cache working set) and, for failures, the exception stack trace.

   Replaying a dump builds a file-based MD Provider from the embedded
   metadata and invokes an identical optimization session (Fig. 10). Dumps
   double as regression test cases: replay compares the produced plan
   against the expected plan serialized in the dump. *)

type dump = {
  stacktrace : string option;
  traceflags : (string * string) list;
  metadata : Catalog.Metadata.obj list;
  query : Dxl.Dxl_query.t;
  expected_plan : Ir.Expr.plan option;
  profile : string option;     (* rendered Obs.Report summary *)
  trace_json : string option;  (* Chrome trace_event JSON of the session *)
  prov : Dxl.Dxl_prov.plan_prov option;  (* per-node plan provenance *)
  accuracy : Dxl.Dxl_prov.accuracy option; (* per-class Q-error, if executed *)
}

(* --- capture --- *)

let capture ?(stacktrace = None) ?(traceflags = []) ?expected_plan
    ?(profile = None) ?(trace_json = None) ?(prov = None) ?(accuracy = None)
    (accessor : Catalog.Accessor.t) (query : Dxl.Dxl_query.t) : dump =
  {
    stacktrace;
    traceflags;
    metadata = Catalog.Accessor.accessed_objects accessor;
    query;
    expected_plan;
    profile;
    trace_json;
    prov;
    accuracy;
  }

(* lib/dxl sits below lib/prov, so the serializable mirror is built here. *)
let prov_to_dxl (p : Prov.Provenance.t) : Dxl.Dxl_prov.plan_prov =
  {
    Dxl.Dxl_prov.pp_stage = p.Prov.Provenance.p_stage;
    pp_nodes =
      List.map
        (fun (np : Prov.Provenance.node_prov) ->
          let kind, lineage, losers, best_delta =
            match np.Prov.Provenance.np_kind with
            | Prov.Provenance.K_operator oi ->
                ( "operator",
                  Prov.Provenance.lineage_to_string
                    oi.Prov.Provenance.oi_lineage,
                  List.length oi.Prov.Provenance.oi_losers,
                  match oi.Prov.Provenance.oi_losers with
                  | lo :: _ -> lo.Prov.Provenance.lo_delta
                  | [] -> 0.0 )
            | Prov.Provenance.K_enforcer why -> ("enforcer", why, 0, 0.0)
            | Prov.Provenance.K_synthetic why -> ("synthetic", why, 0, 0.0)
          in
          {
            Dxl.Dxl_prov.np_id = np.Prov.Provenance.np_id;
            np_path = np.Prov.Provenance.np_path;
            np_op = np.Prov.Provenance.np_op;
            np_kind = kind;
            np_lineage = lineage;
            np_cost = np.Prov.Provenance.np_cost;
            np_est_rows = np.Prov.Provenance.np_est_rows;
            np_losers = losers;
            np_best_delta = best_delta;
          })
        p.Prov.Provenance.p_nodes;
  }

let acc_to_dxl (acc : Obs.Report.acc_stat list) : Dxl.Dxl_prov.accuracy =
  {
    Dxl.Dxl_prov.acc_classes =
      List.map
        (fun (a : Obs.Report.acc_stat) ->
          {
            Dxl.Dxl_prov.ca_class = a.Obs.Report.a_class;
            ca_nodes = a.Obs.Report.a_nodes;
            ca_geomean = Obs.Report.acc_geomean a;
            ca_max = a.Obs.Report.a_max;
            ca_unobserved = a.Obs.Report.a_unobserved;
          })
        acc;
  }

(* Embed the observability report of a completed optimization: the rendered
   summary plus the Perfetto-loadable trace, so a dump carries the profile of
   the session it reproduces. No-op when the report has none. *)
let embed_report (d : dump) (report : Optimizer.report) : dump =
  let d =
    (* provenance travels with the dump whenever it was collected *)
    match report.Optimizer.prov with
    | None -> d
    | Some p -> { d with prov = Some (prov_to_dxl p) }
  in
  match report.Optimizer.obs with
  | None -> d
  | Some r ->
      (* trimmed so the strings survive the DXL round trip byte-for-byte
         (the XML parser strips leading/trailing whitespace in text nodes) *)
      {
        d with
        profile = Some (String.trim (Obs.Report.to_string r));
        trace_json =
          (match r.Obs.Report.spans with
          | [] -> d.trace_json
          | spans ->
              Some (String.trim (Obs.Trace_export.to_chrome_json spans)));
        accuracy =
          (match r.Obs.Report.acc with
          | [] -> d.accuracy
          | acc -> Some (acc_to_dxl acc));
      }

(* Embed per-class cardinality accuracy measured by an execution of the
   dumped plan. *)
let embed_accuracy (d : dump) (acc : Obs.Report.acc_stat list) : dump =
  if acc = [] then d else { d with accuracy = Some (acc_to_dxl acc) }

(* Capture a dump for a failed optimization. *)
let capture_exn (accessor : Catalog.Accessor.t) (query : Dxl.Dxl_query.t)
    (exn : exn) (backtrace : string) : dump =
  capture
    ~stacktrace:(Some (Gpos.Gpos_error.to_string exn ^ "\n" ^ backtrace))
    accessor query

(* The paper's automatic failure capture: any exception escaping the
   optimizer is converted into a dump embedding the query, the metadata
   working set acquired so far and the stack trace, so the failure can be
   replayed away from the system that produced it. *)
let optimize_with_capture ?config (accessor : Catalog.Accessor.t)
    (query : Dxl.Dxl_query.t) :
    (Optimizer.report, dump) Stdlib.result =
  let cfg = Option.value ~default:Orca_config.default config in
  (* Own the span session so a failure dump can still embed the partial
     trace of the spans completed before the exception. *)
  let owned = cfg.Orca_config.obs && Obs.Span.begin_session () in
  try
    let report = Optimizer.optimize ?config accessor query in
    let report =
      if owned then
        let spans = Obs.Span.end_session () in
        {
          report with
          Optimizer.obs =
            Option.map
              (fun r -> Obs.Report.with_spans r spans)
              report.Optimizer.obs;
        }
      else report
    in
    Ok report
  with exn ->
    let bt = Printexc.get_backtrace () in
    let trace_json =
      if owned then
        match Obs.Span.end_session () with
        | [] -> None
        | spans -> Some (String.trim (Obs.Trace_export.to_chrome_json spans))
      else None
    in
    Error { (capture_exn accessor query exn bt) with trace_json }

(* --- serialization --- *)

let to_xml (d : dump) : Dxl.Xml.element =
  let children =
    (match d.stacktrace with
    | None -> []
    | Some st ->
        [
          Dxl.Xml.Element
            (Dxl.Xml.element "dxl:Stacktrace"
               ~children:[ Dxl.Xml.Text st ]);
        ])
    @ List.map
        (fun (k, v) ->
          Dxl.Xml.Element
            (Dxl.Xml.element "dxl:TraceFlags" ~attrs:[ ("Name", k); ("Value", v) ]))
        d.traceflags
    @ [ Dxl.Xml.Element (Dxl.Dxl_metadata.objects_to_xml d.metadata) ]
    @ [
        Dxl.Xml.Element
          (Dxl.Dxl_query.query_element (Dxl.Dxl_query.to_xml d.query));
      ]
    @ (match d.expected_plan with
      | None -> []
      | Some p ->
          [
            Dxl.Xml.Element
              (Dxl.Xml.element "dxl:Plan"
                 ~children:[ Dxl.Xml.Element (Dxl.Dxl_plan.to_xml p) ]);
          ])
    @ (match d.profile with
      | None -> []
      | Some p ->
          [
            Dxl.Xml.Element
              (Dxl.Xml.element "dxl:ObsProfile" ~children:[ Dxl.Xml.Text p ]);
          ])
    @ (match d.trace_json with
      | None -> []
      | Some t ->
          [
            Dxl.Xml.Element
              (Dxl.Xml.element "dxl:ObsTrace" ~children:[ Dxl.Xml.Text t ]);
          ])
    @ (match d.prov with
      | None -> []
      | Some p -> [ Dxl.Xml.Element (Dxl.Dxl_prov.to_xml p) ])
    @
    match d.accuracy with
    | None -> []
    | Some a -> [ Dxl.Xml.Element (Dxl.Dxl_prov.accuracy_to_xml a) ]
  in
  Dxl.Xml.element "dxl:DXLMessage"
    ~attrs:[ ("xmlns:dxl", "http://greenplum.com/dxl/v1") ]
    ~children:
      [ Dxl.Xml.Element (Dxl.Xml.element "dxl:Thread" ~attrs:[ ("Id", "0") ] ~children) ]

let to_string (d : dump) = Dxl.Xml.to_string (to_xml d)

let of_xml (root : Dxl.Xml.element) : dump =
  let thread = Dxl.Xml.find_child_exn root "dxl:Thread" in
  let stacktrace =
    Option.map Dxl.Xml.text_content (Dxl.Xml.find_child thread "dxl:Stacktrace")
  in
  let traceflags =
    Dxl.Xml.children_named thread "dxl:TraceFlags"
    |> List.map (fun e ->
           (Dxl.Xml.attr_exn e "Name", Dxl.Xml.attr_exn e "Value"))
  in
  let metadata =
    Dxl.Dxl_metadata.objects_of_xml (Dxl.Xml.find_child_exn thread "dxl:Metadata")
  in
  let query = Dxl.Dxl_query.of_xml thread in
  let expected_plan =
    Option.map Dxl.Dxl_plan.of_message (Dxl.Xml.find_child thread "dxl:Plan")
  in
  let profile =
    Option.map Dxl.Xml.text_content (Dxl.Xml.find_child thread "dxl:ObsProfile")
  in
  let trace_json =
    Option.map Dxl.Xml.text_content (Dxl.Xml.find_child thread "dxl:ObsTrace")
  in
  let prov =
    Option.map Dxl.Dxl_prov.of_xml (Dxl.Xml.find_child thread "dxl:Provenance")
  in
  let accuracy =
    Option.map Dxl.Dxl_prov.accuracy_of_xml
      (Dxl.Xml.find_child thread "dxl:Accuracy")
  in
  {
    stacktrace;
    traceflags;
    metadata;
    query;
    expected_plan;
    profile;
    trace_json;
    prov;
    accuracy;
  }

let of_string (s : string) : dump = of_xml (Dxl.Xml.of_string s)

let save (d : dump) (path : string) =
  let oc = open_out path in
  output_string oc (to_string d);
  close_out oc

let load (path : string) : dump =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_string s

(* --- replay (Fig. 10) --- *)

(* Replay a dump in-process: a file-based provider serves the embedded
   metadata, a fresh cache and accessor are spun up, and the optimizer is
   invoked on the embedded query — no backend database needed. *)
let replay ?(config = Orca_config.default) (d : dump) : Optimizer.report =
  let provider = Catalog.Provider.of_objects ~name:"ampere" d.metadata in
  let cache = Catalog.Md_cache.create () in
  let accessor = Catalog.Accessor.create ~provider ~cache () in
  Optimizer.optimize ~config accessor d.query

type verdict = Replay_match | Replay_plan_diff of string | Replay_failed of string

(* Use a dump as a regression test: replay and compare against the expected
   plan (paper: "any bug with an accompanying AMPERe dump can be
   automatically turned into a self-contained test case"). *)
let verify ?(config = Orca_config.default) (d : dump) : verdict =
  match replay ~config d with
  | exception e -> Replay_failed (Gpos.Gpos_error.to_string e)
  | report -> (
      match d.expected_plan with
      | None -> Replay_match
      | Some expected ->
          let got = Dxl.Dxl_plan.to_string report.Optimizer.plan in
          let want = Dxl.Dxl_plan.to_string expected in
          if got = want then Replay_match
          else
            Replay_plan_diff
              (Printf.sprintf "expected %d plan nodes, produced %d"
                 (Ir.Plan_ops.node_count expected)
                 (Ir.Plan_ops.node_count report.Optimizer.plan)))

(* The flight recorder's trigger: a monitored [Optimizer.optimize] that
   records a per-query summary into the global ring buffer
   (Telemetry.Recorder) and, when a query exceeds the configured slow
   threshold or fails, re-runs it once with full observability and
   provenance enabled and emits an AMPERe dump — the paper's §6.1
   "automatic capture" extended from failures to latency outliers, the
   black box for the optimizer-as-a-service north star.

   The re-run needs a fresh metadata accessor (the first one's pins were
   released by the optimization), so callers pass a [make_accessor]
   factory rather than an accessor. Dump emission is off unless
   [Telemetry.Recorder.configure ~dump_dir] pointed it at a directory. *)

let dump_path ~dir ~fingerprint ~seq =
  Filename.concat dir (Printf.sprintf "ampere-flight-%s-%d.xml" fingerprint seq)

(* Re-run once with obs+prov and capture a dump. For a slow query the
   re-run normally succeeds and the dump carries the expected plan plus
   the full trace; for a failing query the deterministic re-run fails
   again and [optimize_with_capture] hands back the failure dump with the
   partial trace. Never lets the capture itself take the caller down. *)
let recapture ~(config : Orca_config.t) ~make_accessor ~reason query =
  match Telemetry.Recorder.dump_dir () with
  | None -> None
  | Some dir -> (
      try
        let cfg = Orca_config.with_prov (Orca_config.with_obs config) in
        let accessor : Catalog.Accessor.t = make_accessor () in
        let flags =
          [
            ("flight-reason", reason);
            ( "flight-slow-ms",
              match Telemetry.Recorder.slow_ms () with
              | Some s -> Printf.sprintf "%g" s
              | None -> "off" );
          ]
          @
          (* attribute the dump to the originating service request *)
          match config.Orca_config.trace_id with
          | Some id -> [ ("flight-trace-id", id) ]
          | None -> []
        in
        let dump =
          match Ampere.optimize_with_capture ~config:cfg accessor query with
          | Ok report ->
              let d =
                Ampere.capture ~traceflags:flags
                  ~expected_plan:report.Optimizer.plan accessor query
              in
              Ampere.embed_report d report
          | Error d -> { d with Ampere.traceflags = flags @ d.Ampere.traceflags }
        in
        let path =
          dump_path ~dir
            ~fingerprint:(Telemetry.Metrics.fingerprint (Dxl.Dxl_query.to_string query))
            ~seq:(Telemetry.Recorder.total () + 1)
        in
        Ampere.save dump path;
        Telemetry.Metrics.inc Telemetry.Std.flight_dumps;
        Some path
      with _ -> None)

let record_entry ~label ~fingerprint ~ms ~groups ~gexprs ~cost ~phases ~status
    ~dump =
  ignore
    (Telemetry.Recorder.record ~label ~fingerprint ~ms ~groups ~gexprs ~cost
       ~phases:(Telemetry.Recorder.top_phases phases)
       ~status ?dump ())

(* Monitored optimize: behaves exactly like [Optimizer.optimize] (same
   result, same exceptions) with the flight recorder around it. *)
let optimize ?(config = Orca_config.default) ?(label = "query") ?fingerprint
    ~(make_accessor : unit -> Catalog.Accessor.t) (query : Dxl.Dxl_query.t) :
    Optimizer.report =
  let fingerprint =
    match fingerprint with
    | Some f -> f
    | None -> Telemetry.Metrics.fingerprint (Dxl.Dxl_query.to_string query)
  in
  match Optimizer.optimize ~config (make_accessor ()) query with
  | report ->
      let ms = report.Optimizer.opt_time_ms in
      let slow =
        match Telemetry.Recorder.slow_ms () with
        | Some threshold -> ms >= threshold
        | None -> false
      in
      let dump =
        if slow then begin
          Telemetry.Metrics.inc Telemetry.Std.flight_slow;
          recapture ~config ~make_accessor ~reason:"slow" query
        end
        else None
      in
      record_entry ~label ~fingerprint ~ms
        ~groups:report.Optimizer.groups ~gexprs:report.Optimizer.gexprs
        ~cost:report.Optimizer.plan.Ir.Expr.pcost
        ~phases:report.Optimizer.phase_ms
        ~status:(if slow then Telemetry.Recorder.Slow else Telemetry.Recorder.Ok)
        ~dump;
      report
  | exception Optimizer.Unsupported_query msg ->
      (* a clean reject, not an anomaly: count it, no dump *)
      Telemetry.Metrics.inc Telemetry.Std.unsupported;
      raise (Optimizer.Unsupported_query msg)
  | exception e ->
      Telemetry.Metrics.inc Telemetry.Std.failures;
      Telemetry.Metrics.inc Telemetry.Std.flight_failed;
      let dump =
        recapture ~config ~make_accessor ~reason:"failed" query
      in
      record_entry ~label ~fingerprint ~ms:0.0 ~groups:0 ~gexprs:0 ~cost:0.0
        ~phases:[]
        ~status:(Telemetry.Recorder.Failed (Printexc.to_string e))
        ~dump;
      raise e

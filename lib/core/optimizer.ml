open Ir

(* The Orca optimizer facade (paper §3, Fig. 2): DXL query in, DXL plan out.

   Workflow (paper §4.1): parse/copy-in -> exploration -> statistics
   derivation -> implementation -> optimization (property enforcement and
   costing) -> plan extraction. Optimization can run in multiple stages, each
   a complete workflow over a rule subset with optional timeout and cost
   threshold. *)

type report = {
  plan : Expr.plan;
  opt_time_ms : float;
  groups : int;
  gexprs : int;
  contexts : int;
  jobs_created : int;
  jobs_run : int;
  goal_hits : int;
  xforms : int;
  stage_name : string;
  peak_heap_mb : float;
  memo : Memolib.Memo.t;  (* retained for TAQO sampling and inspection *)
  root_req : Props.req;
  decorrelated : int;
  diagnostics : Verify.Diagnostic.t list;
      (* static-analyzer findings ([] unless config.verify) *)
}

let root_req (q : Dxl.Dxl_query.t) : Props.req =
  { Props.rdist = q.Dxl.Dxl_query.dist; rorder = q.Dxl.Dxl_query.order }

(* Wrap the extracted plan with a projection delivering exactly the query's
   requested output columns, in order, when they differ from the root
   schema. *)
let project_output (plan : Expr.plan) (output : Colref.t list) : Expr.plan =
  let same =
    List.length plan.Expr.pschema = List.length output
    && List.for_all2 Colref.equal plan.Expr.pschema output
  in
  if same || output = [] then plan
  else
    let projs =
      List.map (fun c -> { Expr.proj_expr = Expr.Col c; proj_out = c }) output
    in
    Plan_ops.node (Expr.P_project projs) [ plan ] ~est_rows:plan.Expr.pest_rows
      ~cost:plan.Expr.pcost

let rec tree_to_mexpr (t : Ltree.t) : Memolib.Mexpr.t =
  {
    Memolib.Mexpr.op = Expr.Logical t.Ltree.op;
    children =
      List.map (fun c -> Memolib.Mexpr.Node (tree_to_mexpr c)) t.Ltree.children;
  }

(* One optimization stage over a fresh Memo. *)
let run_stage (config : Orca_config.t) ~(factory : Colref.Factory.t)
    ~(base : Table_desc.t -> Stats.Relstats.t) (tree : Ltree.t)
    (req : Props.req) (stage : Xform.Ruleset.stage) =
  let memo = Memolib.Memo.create () in
  let root_ge =
    Memolib.Memo.insert memo (tree_to_mexpr tree)
  in
  Memolib.Memo.set_root memo (Memolib.Memo.find memo root_ge.Memolib.Memo.ge_group);
  let engine =
    Search.Engine.create ~workers:config.Orca_config.workers
      ?fuzz_seed:config.Orca_config.fuzz_seed
      ~ruleset:stage.Xform.Ruleset.stage_rules ~model:config.Orca_config.model
      ~factory ~base memo
  in
  Search.Engine.set_deadline engine stage.Xform.Ruleset.timeout_ms;
  let plan = Search.Engine.run engine req in
  (memo, engine, plan)

exception Unsupported_query of string

(* Optimize a DXL query against the metadata reachable through [accessor]. *)
let optimize ?(config = Orca_config.default) (accessor : Catalog.Accessor.t)
    (query : Dxl.Dxl_query.t) : report =
  let t0 = Gpos.Clock.now () in
  let factory = Catalog.Accessor.factory accessor in
  Colref.Factory.bump factory (Dxl.Dxl_query.max_col_id query);
  let base td = Catalog.Accessor.base_stats accessor td in
  (* preprocessing: decorrelate subqueries, normalize *)
  let tree = query.Dxl.Dxl_query.tree in
  let tree, decorrelated =
    if config.Orca_config.decorrelate then begin
      let r = Xform.Decorrelate.run factory tree in
      if r.Xform.Decorrelate.remaining > 0 then
        raise
          (Unsupported_query
             (Printf.sprintf "%d correlated subqueries could not be unnested"
                r.Xform.Decorrelate.remaining));
      (r.Xform.Decorrelate.tree, r.Xform.Decorrelate.rewritten)
    end
    else begin
      let has_apply =
        Ltree.fold
          (fun acc n ->
            acc || match n.Ltree.op with Expr.L_apply _ -> true | _ -> false)
          false tree
      in
      if has_apply then
        raise (Unsupported_query "correlated subquery (decorrelation disabled)");
      (tree, 0)
    end
  in
  let tree = if config.Orca_config.normalize then Xform.Normalize.run tree else tree in
  let tree =
    if config.Orca_config.prune_columns then
      Xform.Prune_columns.run tree ~output:query.Dxl.Dxl_query.output
    else tree
  in
  Ltree.validate tree;
  let req = root_req query in
  (* stage loop: stop at the first stage whose best plan beats its cost
     threshold; otherwise keep the cheapest plan across stages *)
  let rec stages_loop best = function
    | [] -> (
        match best with
        | Some r -> r
        | None -> Gpos.Gpos_error.internal "no optimization stages configured")
    | stage :: rest -> (
        let memo, engine, plan =
          run_stage config ~factory ~base tree req stage
        in
        let result = (memo, engine, plan, stage.Xform.Ruleset.stage_name) in
        let better =
          match best with
          | Some (_, _, p, _) when p.Expr.pcost <= plan.Expr.pcost -> best
          | _ -> Some result
        in
        match stage.Xform.Ruleset.cost_threshold with
        | Some threshold when plan.Expr.pcost <= threshold ->
            (match better with Some r -> r | None -> result)
        | _ -> stages_loop better rest)
  in
  let (memo, engine, plan, stage_name), sanitize_diags =
    if config.Orca_config.sanitize then
      (* record every scheduler/Memo/engine event during the stage runs and
         feed the trace to the concurrency analyses *)
      let result, trace =
        Sanitize.Sanitizer.record (fun () ->
            stages_loop None config.Orca_config.stages)
      in
      (result, Sanitize.Sanitizer.analyze trace)
    else (stages_loop None config.Orca_config.stages, [])
  in
  let plan = project_output plan query.Dxl.Dxl_query.output in
  let diagnostics =
    (if config.Orca_config.verify then
       Verify.Analyzer.lint_all ~req ~memo plan
     else [])
    @ sanitize_diags
  in
  let jobs_created, jobs_run, goal_hits = Search.Engine.scheduler_stats engine in
  let counters = Search.Engine.counters engine in
  let heap_mb =
    float_of_int (Gc.quick_stat ()).Gc.heap_words *. 8.0 /. 1048576.0
  in
  Catalog.Accessor.release accessor;
  {
    plan;
    opt_time_ms = Gpos.Clock.ms_since t0;
    groups = Memolib.Memo.ngroups memo;
    gexprs = Memolib.Memo.ngexprs memo;
    contexts = (Search.Engine.counters engine).Search.Engine.contexts_created;
    jobs_created;
    jobs_run;
    goal_hits;
    xforms = counters.Search.Engine.xform_applied;
    stage_name;
    peak_heap_mb = heap_mb;
    memo;
    root_req = req;
    decorrelated;
    diagnostics;
  }

(* Convenience: optimize and serialize the result back to DXL, the full
   Fig. 2 round trip. *)
let optimize_to_dxl ?config accessor (query : Dxl.Dxl_query.t) : string * report
    =
  let report = optimize ?config accessor query in
  (Dxl.Dxl_plan.to_string report.plan, report)

open Ir

(* The Orca optimizer facade (paper §3, Fig. 2): DXL query in, DXL plan out.

   Workflow (paper §4.1): parse/copy-in -> exploration -> statistics
   derivation -> implementation -> optimization (property enforcement and
   costing) -> plan extraction. Optimization can run in multiple stages, each
   a complete workflow over a rule subset with optional timeout and cost
   threshold. *)

type report = {
  plan : Expr.plan;
  opt_time_ms : float;
  groups : int;
  gexprs : int;
  contexts : int;
  jobs_created : int;
  jobs_run : int;
  goal_hits : int;
  xforms : int;
  stage_name : string;
  peak_heap_mb : float;
  memo : Memolib.Memo.t;  (* retained for TAQO sampling and inspection *)
  root_req : Props.req;
  decorrelated : int;
  diagnostics : Verify.Diagnostic.t list;
      (* static-analyzer findings ([] unless config.verify) *)
  obs : Obs.Report.t option;
      (* unified observability report (None unless config.obs) *)
  prov : Prov.Provenance.t option;
      (* per-node provenance of the chosen plan (None unless config.prov) *)
  phase_ms : (string * float) list;
      (* coarse per-phase wall times (preprocess, stage:<name>,
         prov-annotate), in execution order. Always collected — each
         phase costs two Gpos.Clock reads — so the flight recorder and
         lib/telemetry see phase breakdowns without lib/obs. *)
  md_versions : int * int;
      (* the (catalog, stats) snapshot versions the session's accessor
         bound against — the plan-cache key components of lib/server *)
}

let root_req (q : Dxl.Dxl_query.t) : Props.req =
  { Props.rdist = q.Dxl.Dxl_query.dist; rorder = q.Dxl.Dxl_query.order }

(* Wrap the extracted plan with a projection delivering exactly the query's
   requested output columns, in order, when they differ from the root
   schema. *)
let project_output (plan : Expr.plan) (output : Colref.t list) : Expr.plan =
  let same =
    List.length plan.Expr.pschema = List.length output
    && List.for_all2 Colref.equal plan.Expr.pschema output
  in
  if same || output = [] then plan
  else
    let projs =
      List.map (fun c -> { Expr.proj_expr = Expr.Col c; proj_out = c }) output
    in
    Plan_ops.node (Expr.P_project projs) [ plan ] ~est_rows:plan.Expr.pest_rows
      ~cost:plan.Expr.pcost

let rec tree_to_mexpr (t : Ltree.t) : Memolib.Mexpr.t =
  {
    Memolib.Mexpr.op = Expr.Logical t.Ltree.op;
    children =
      List.map (fun c -> Memolib.Mexpr.Node (tree_to_mexpr c)) t.Ltree.children;
  }

(* One optimization stage over a fresh Memo. *)
let run_stage (config : Orca_config.t) ~(factory : Colref.Factory.t)
    ~(base : Table_desc.t -> Stats.Relstats.t) (tree : Ltree.t)
    (req : Props.req) (stage : Xform.Ruleset.stage) =
  Obs.Span.with_ ~name:("stage:" ^ stage.Xform.Ruleset.stage_name) (fun () ->
      let memo =
        Memolib.Memo.create ~interning:config.Orca_config.interning ()
      in
      let root_ge =
        Obs.Span.with_ ~name:"copy-in" (fun () ->
            Memolib.Memo.insert memo (tree_to_mexpr tree))
      in
      Memolib.Memo.set_root memo
        (Memolib.Memo.find memo root_ge.Memolib.Memo.ge_group);
      let engine =
        Search.Engine.create ~workers:config.Orca_config.workers
          ?fuzz_seed:config.Orca_config.fuzz_seed ~obs:config.Orca_config.obs
          ~rule_checks:config.Orca_config.rule_checks
          ~prefilter:config.Orca_config.rule_prefilter
          ~stats_memo:config.Orca_config.stats_memo
          ~winner_reuse:config.Orca_config.winner_reuse
          ~stage_name:stage.Xform.Ruleset.stage_name
          ~prov:config.Orca_config.prov
          ?strata:config.Orca_config.strata
          ~ruleset:stage.Xform.Ruleset.stage_rules
          ~model:config.Orca_config.model ~factory ~base memo
      in
      Search.Engine.set_deadline engine stage.Xform.Ruleset.timeout_ms;
      let plan = Search.Engine.run engine req in
      (memo, engine, plan))

exception Unsupported_query of string

(* Optimize a DXL query against the metadata reachable through [accessor]. *)
let optimize_inner ~(config : Orca_config.t) (accessor : Catalog.Accessor.t)
    (query : Dxl.Dxl_query.t) : report =
  let t0 = Gpos.Clock.now () in
  (* coarse always-on phase timers (report.phase_ms), reverse order *)
  let phases = ref [] in
  let timed name f =
    let p0 = Gpos.Clock.now () in
    let r = f () in
    phases := (name, Gpos.Clock.ms_since p0) :: !phases;
    r
  in
  let factory = Catalog.Accessor.factory accessor in
  Colref.Factory.bump factory (Dxl.Dxl_query.max_col_id query);
  let base td = Catalog.Accessor.base_stats accessor td in
  (* preprocessing: decorrelate subqueries, normalize *)
  let tree = query.Dxl.Dxl_query.tree in
  let tree, decorrelated =
    timed "preprocess" @@ fun () ->
    Obs.Span.with_ ~name:"preprocess" (fun () ->
        let tree, decorrelated =
          if config.Orca_config.decorrelate then
            Obs.Span.with_ ~name:"decorrelate" (fun () ->
                let r = Xform.Decorrelate.run factory tree in
                if r.Xform.Decorrelate.remaining > 0 then
                  raise
                    (Unsupported_query
                       (Printf.sprintf
                          "%d correlated subqueries could not be unnested"
                          r.Xform.Decorrelate.remaining));
                (r.Xform.Decorrelate.tree, r.Xform.Decorrelate.rewritten))
          else begin
            let has_apply =
              Ltree.fold
                (fun acc n ->
                  acc
                  || match n.Ltree.op with Expr.L_apply _ -> true | _ -> false)
                false tree
            in
            if has_apply then
              raise
                (Unsupported_query
                   "correlated subquery (decorrelation disabled)");
            (tree, 0)
          end
        in
        let tree =
          if config.Orca_config.normalize then
            Obs.Span.with_ ~name:"normalize" (fun () ->
                Xform.Normalize.run tree)
          else tree
        in
        let tree =
          if config.Orca_config.prune_columns then
            Obs.Span.with_ ~name:"prune-columns" (fun () ->
                Xform.Prune_columns.run tree
                  ~output:query.Dxl.Dxl_query.output)
          else tree
        in
        (tree, decorrelated))
  in
  Ltree.validate tree;
  let req = root_req query in
  (* every stage actually run, for the per-stage observability snapshots *)
  let stage_runs : (string * Search.Engine.t) list ref = ref [] in
  (* stage loop: stop at the first stage whose best plan beats its cost
     threshold; otherwise keep the cheapest plan across stages *)
  let rec stages_loop best = function
    | [] -> (
        match best with
        | Some r -> r
        | None -> Gpos.Gpos_error.internal "no optimization stages configured")
    | stage :: rest -> (
        let memo, engine, plan =
          timed ("stage:" ^ stage.Xform.Ruleset.stage_name) (fun () ->
              run_stage config ~factory ~base tree req stage)
        in
        if config.Orca_config.obs then
          stage_runs := (stage.Xform.Ruleset.stage_name, engine) :: !stage_runs;
        let result = (memo, engine, plan, stage.Xform.Ruleset.stage_name) in
        let better =
          match best with
          | Some (_, _, p, _) when p.Expr.pcost <= plan.Expr.pcost -> best
          | _ -> Some result
        in
        match stage.Xform.Ruleset.cost_threshold with
        | Some threshold when plan.Expr.pcost <= threshold ->
            (match better with Some r -> r | None -> result)
        | _ -> stages_loop better rest)
  in
  let (memo, engine, plan, stage_name), sanitize_diags =
    if config.Orca_config.sanitize then
      (* record every scheduler/Memo/engine event during the stage runs and
         feed the trace to the concurrency analyses *)
      let result, trace =
        Sanitize.Sanitizer.record (fun () ->
            stages_loop None config.Orca_config.stages)
      in
      (result, Sanitize.Sanitizer.analyze trace)
    else (stages_loop None config.Orca_config.stages, [])
  in
  let plan = project_output plan query.Dxl.Dxl_query.output in
  (* the annotation re-walks the winner linkage of the winning stage's Memo,
     so it must be built from exactly that (memo, req, plan) triple *)
  let prov =
    if config.Orca_config.prov then
      Some
        (timed "prov-annotate" (fun () ->
             Obs.Span.with_ ~name:"prov-annotate" (fun () ->
                 Prov.Provenance.annotate memo ~req ~stage:stage_name plan)))
    else None
  in
  let diagnostics =
    (if config.Orca_config.verify then
       Verify.Analyzer.lint_all ~req ~memo ~prov:config.Orca_config.prov plan
     else [])
    @ sanitize_diags
  in
  let jobs_created, jobs_run, goal_hits = Search.Engine.scheduler_stats engine in
  let counters = Search.Engine.counters engine in
  let heap_mb =
    float_of_int (Gc.quick_stat ()).Gc.heap_words *. 8.0 /. 1048576.0
  in
  Catalog.Accessor.release accessor;
  let opt_ms = Gpos.Clock.ms_since t0 in
  let phase_ms = List.rev !phases in
  (* One cold-path update of the always-on registry (lib/telemetry),
     tapping counters the winning stage's engine/Memo/scheduler maintain
     unconditionally. *)
  if config.Orca_config.telemetry then begin
    let mp = Memolib.Memo.profile memo in
    let cost = Search.Engine.cost_profile engine in
    let max_q =
      List.fold_left
        (fun acc (s : Obs.Report.sched_stat) ->
          max acc s.Obs.Report.s_max_queue_depth)
        0
        (Search.Engine.sched_profiles engine)
    in
    Telemetry.Std.record_query ~opt_time_ms:opt_ms
      ~groups:(Memolib.Memo.ngroups memo)
      ~gexprs:(Memolib.Memo.ngexprs memo)
      ~inserts:mp.Memolib.Memo.p_inserts
      ~dedup_hits:mp.Memolib.Memo.p_dedup_hits
      ~merges:mp.Memolib.Memo.p_merges
      ~ops_interned:mp.Memolib.Memo.p_ops_interned
      ~intern_hits:mp.Memolib.Memo.p_intern_hits
      ~fired:counters.Search.Engine.xform_applied
      ~results:counters.Search.Engine.xform_results
      ~prefiltered:counters.Search.Engine.prefilter_skips
      ~ncontexts:counters.Search.Engine.contexts_created
      ~nop_costings:cost.Obs.Report.c_op_costings
      ~nenforcer_costings:cost.Obs.Report.c_enforcer_costings
      ~nalternatives:counters.Search.Engine.alternatives_costed
      ~ndeadline_checks:cost.Obs.Report.c_deadline_checks
      ~nstats_hits:counters.Search.Engine.stats_hits
      ~nbase_reuses:counters.Search.Engine.base_reuses
      ~nwinner_skips:counters.Search.Engine.winner_skips
      ~ngoal_hits:goal_hits ~njobs_created:jobs_created ~njobs_run:jobs_run
      ~max_queue_depth:max_q ~heap_mb ~phases:phase_ms
  end;
  let obs =
    if not config.Orca_config.obs then None
    else
      (* one snapshot per stage run, merged: rule counters sum by name,
         scheduler counters by label, Memo growth across the stages' Memos *)
      let per_stage =
        List.rev_map
          (fun (sname, eng) ->
            {
              Obs.Report.empty with
              Obs.Report.stage_names = [ sname ];
              rules = Search.Engine.rule_profile eng;
              memo = Search.Engine.memo_profile eng;
              scheds = Search.Engine.sched_profiles eng;
              cost = Search.Engine.cost_profile eng;
            })
          !stage_runs
      in
      Some
        {
          (Obs.Report.merge_all per_stage) with
          Obs.Report.label = "query";
          queries = 1;
          total_ms = opt_ms;
        }
  in
  {
    plan;
    opt_time_ms = opt_ms;
    groups = Memolib.Memo.ngroups memo;
    gexprs = Memolib.Memo.ngexprs memo;
    contexts = (Search.Engine.counters engine).Search.Engine.contexts_created;
    jobs_created;
    jobs_run;
    goal_hits;
    xforms = counters.Search.Engine.xform_applied;
    stage_name;
    peak_heap_mb = heap_mb;
    memo;
    root_req = req;
    decorrelated;
    diagnostics;
    obs;
    prov;
    phase_ms;
    md_versions = Catalog.Accessor.md_versions accessor;
  }

(* With observability on, own a span session for the whole optimization when
   no outer owner (the CLI's suite loop, AMPERe capture) holds one; the
   drained spans land on the report. Nested under an active session,
   [Obs.Span.collect] returns no events and the outer owner keeps them. *)
let optimize ?(config = Orca_config.default) accessor query : report =
  if not config.Orca_config.obs then optimize_inner ~config accessor query
  else
    (* the root span carries the originating service request, when any, so
       exported traces are attributable to it (lib/sre request tracing) *)
    let attrs =
      match config.Orca_config.trace_id with
      | Some id -> [ ("trace_id", id) ]
      | None -> []
    in
    let report, spans =
      Obs.Span.collect (fun () ->
          Obs.Span.with_ ~attrs ~name:"optimize" (fun () ->
              optimize_inner ~config accessor query))
    in
    if spans = [] then report
    else
      { report with obs = Option.map (fun r -> Obs.Report.with_spans r spans) report.obs }

(* Convenience: optimize and serialize the result back to DXL, the full
   Fig. 2 round trip. *)
let optimize_to_dxl ?config accessor (query : Dxl.Dxl_query.t) : string * report
    =
  let report = optimize ?config accessor query in
  (Dxl.Dxl_plan.to_string report.plan, report)

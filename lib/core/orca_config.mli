(** Optimizer configuration (paper §3: "all components can be replaced
    individually and configured separately"): rule activation, optimization
    stages, parallelism, cost-model parameters, preprocessing toggles. *)

type t = {
  stages : Xform.Ruleset.stage list;
      (** run in order; a stage's cost threshold stops the staging early *)
  workers : int;       (** optimization worker domains (§4.2) *)
  segments : int;      (** target cluster size *)
  model : Cost.Cost_model.t;
  decorrelate : bool;  (** pull correlated subqueries into joins *)
  normalize : bool;
  prune_columns : bool; (** narrow join inputs to the needed columns *)
  trace : bool;
  verify : bool;
      (** run the {!Verify} static analyzers (plan, Memo, DXL round trip)
          on every optimization result *)
  sanitize : bool;
      (** record a scheduler/Memo trace during optimization and run the
          {!Sanitize} concurrency analyses on it *)
  fuzz_seed : int option;
      (** permute the costing schedule deterministically (schedule fuzzer);
          meaningful together with [sanitize] or divergence checking *)
  obs : bool;
      (** collect the {!Obs} observability report (per-rule profiles, Memo
          growth, scheduler utilization, cost-model invocations, spans);
          lands in {!Optimizer.report.obs} *)
  prov : bool;
      (** record plan provenance: per-gexpr rule origins in the Memo and the
          per-node lineage/losing-alternative annotation on the chosen plan
          (lib/prov); lands in {!Optimizer.report.prov} *)
  rule_checks : bool;
      (** debug mode: checksum the Memo around every rule application and
          raise {!Search.Engine.Rule_contract_violation} if a rule's [apply]
          mutated it (the lib/xform/rule.mli contract) *)
  strata : (string * int) list option;
      (** stage-ordered rule scheduling: rule name -> stratum (the
          topological order of the rule-interaction graph's SCCs, computed
          by lib/interact and carried here as plain data). [None] schedules
          by promise alone. Plan-identical either way. *)
  interning : bool;
      (** hash-cons Memo operator payloads so duplicate detection compares
          dense ids instead of deep structures *)
  stats_memo : bool;
      (** memoize per-group row counts, row widths and redistribute skew on
          the costing path *)
  rule_prefilter : bool;
      (** skip rule applications whose root-shape bitmap rules the group
          expression out *)
  winner_reuse : bool;
      (** skip child Opt spawns on completed contexts and reuse operator
          base costs across contexts differing only in required properties *)
  telemetry : bool;
      (** record the always-on metrics (lib/telemetry) after each query —
          one cold-path registry update per optimization, tapping counters
          the engine maintains unconditionally. On by default; the switch
          exists for A/B identity tests, not for production. *)
  trace_id : string option;
      (** the originating service request's trace id (lib/sre,
          ["s<sid>-r<rid>"]) when the optimization runs inside
          [Orca_server]: stamped on the root lib/obs span and on
          flight-recorder dump traceflags, so observability artifacts are
          attributable to the request that caused them. Inert for the
          search itself — plans are byte-identical with or without it. *)
}

val default : t

val with_segments : t -> int -> t
(** Set the cluster size on both the config and its cost model. *)

val with_workers : t -> int -> t
val with_stages : t -> Xform.Ruleset.stage list -> t

val without_rules : t -> string list -> t
(** Deactivate rules by name in every stage (the ablation benches). *)

val with_verify : t -> t
(** Enable the post-optimization static analyzers; their findings land in
    {!Optimizer.report.diagnostics}. *)

val with_sanitize : t -> t
(** Enable the concurrency sanitizer; its findings land in
    {!Optimizer.report.diagnostics} alongside the static analyzers'. *)

val with_obs : t -> t
(** Enable the observability subsystem: per-rule/per-stage profiling and span
    tracing. Off by default — with it off, the instrumentation on the hot
    paths is a branch, so production timings are unaffected. *)

val with_prov : t -> t
(** Enable provenance collection and plan annotation. Off by default: with it
    off, no origin records are allocated and no annotation is built, so the
    optimization hot path is unaffected (gated by the opt-speed benchmark). *)

val with_rule_checks : t -> t
(** Enable the engine's debug-mode enforcement of the "apply must not mutate
    the Memo" rule contract. Off by default — with it off the check is one
    branch per rule application. *)

val with_strata : t -> (string * int) list -> t
(** Schedule rules by interaction-graph stratum (ascending), promise
    breaking ties — the stratification computed by lib/interact. Byte-
    identical plans to the default promise order (the `interact --suite`
    check); the substrate for budget-aware scheduling on big join queries. *)

val with_fuzz_seed : t -> int -> t
(** Drive the optimization scheduler's dequeue order from a seeded PRNG. *)

val without_decorrelation : t -> t
(** Correlated subqueries become unsupported, as in optimizers lacking the
    feature. *)

val without_column_pruning : t -> t

(** {2 Hot-path speedups}

    All four are identity-preserving — the chosen plan and its cost are
    byte-identical with them on or off (test/test_perf_identity.ml) — and on
    by default. The switches exist for A/B identity testing and the
    opt-speed benchmark's caches-off baseline. *)

val with_telemetry : t -> bool -> t
(** Toggle the per-query lib/telemetry recording (plan-identical either
    way; the identity test A/Bs it). *)

val with_trace_id : t -> string -> t
(** Attribute this optimization to a service request (plan-identical
    either way; `orca_cli diff --off-b sre` A/Bs it). *)

val without_trace_id : t -> t

val with_interning : t -> bool -> t
val with_stats_memo : t -> bool -> t
val with_rule_prefilter : t -> bool -> t
val with_winner_reuse : t -> bool -> t

val without_speedups : t -> t
(** All four speedups off: the structural, uncached optimization path. *)

(** Optimizer configuration (paper §3: "all components can be replaced
    individually and configured separately"): rule activation, optimization
    stages, parallelism, cost-model parameters, preprocessing toggles. *)

type t = {
  stages : Xform.Ruleset.stage list;
      (** run in order; a stage's cost threshold stops the staging early *)
  workers : int;       (** optimization worker domains (§4.2) *)
  segments : int;      (** target cluster size *)
  model : Cost.Cost_model.t;
  decorrelate : bool;  (** pull correlated subqueries into joins *)
  normalize : bool;
  prune_columns : bool; (** narrow join inputs to the needed columns *)
  trace : bool;
  verify : bool;
      (** run the {!Verify} static analyzers (plan, Memo, DXL round trip)
          on every optimization result *)
}

val default : t

val with_segments : t -> int -> t
(** Set the cluster size on both the config and its cost model. *)

val with_workers : t -> int -> t
val with_stages : t -> Xform.Ruleset.stage list -> t

val without_rules : t -> string list -> t
(** Deactivate rules by name in every stage (the ablation benches). *)

val with_verify : t -> t
(** Enable the post-optimization static analyzers; their findings land in
    {!Optimizer.report.diagnostics}. *)

val without_decorrelation : t -> t
(** Correlated subqueries become unsupported, as in optimizers lacking the
    feature. *)

val without_column_pruning : t -> t

(** The flight recorder's slow/failed-query trigger (paper §6.1 extended
    to latency outliers): a monitored {!Optimizer.optimize} that records
    a summary of every query into [Telemetry.Recorder.global] and, when a
    query exceeds the threshold set by [Telemetry.Recorder.configure] or
    raises, re-runs it once with [with_obs]+[with_prov] and emits an
    AMPERe dump (into the configured dump directory) embedding the full
    observability trace. *)

val optimize :
  ?config:Orca_config.t ->
  ?label:string ->
  ?fingerprint:string ->
  make_accessor:(unit -> Catalog.Accessor.t) ->
  Dxl.Dxl_query.t ->
  Optimizer.report
(** Same result and exceptions as {!Optimizer.optimize}; the re-run for a
    slow or failed query needs fresh metadata pins, hence the accessor
    factory. [Unsupported_query] counts as a clean reject (no dump). *)

val dump_path : dir:string -> fingerprint:string -> seq:int -> string
(** Where a dump for the given query fingerprint lands. *)

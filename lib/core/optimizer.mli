(** The Orca optimizer facade (paper §3 Fig. 2): DXL query in, plan out.

    Workflow (§4.1): preprocessing (decorrelation, normalization) → Memo
    copy-in → exploration → statistics derivation → implementation →
    optimization (property enforcement + costing) → plan extraction.
    Optimization runs in one or more stages, each a complete workflow over a
    rule subset with an optional timeout and cost threshold. *)

open Ir

type report = {
  plan : Expr.plan;        (** the chosen physical plan *)
  opt_time_ms : float;
  groups : int;            (** Memo groups created *)
  gexprs : int;            (** group expressions created *)
  contexts : int;          (** optimization contexts created *)
  jobs_created : int;      (** scheduler jobs created (§4.2) *)
  jobs_run : int;          (** job executions, including resumptions *)
  goal_hits : int;         (** jobs absorbed by goal queues *)
  xforms : int;            (** transformation-rule applications *)
  stage_name : string;     (** the optimization stage that produced the plan *)
  peak_heap_mb : float;
  memo : Memolib.Memo.t;   (** retained for TAQO sampling and inspection *)
  root_req : Props.req;    (** the root optimization request *)
  decorrelated : int;      (** Apply operators unnested during preprocessing *)
  diagnostics : Verify.Diagnostic.t list;
      (** static-analyzer findings over the result (empty unless
          {!Orca_config.t.verify} is set) *)
  obs : Obs.Report.t option;
      (** unified observability report — per-rule profiles, Memo growth,
          scheduler utilization, cost-model invocations, spans ([None]
          unless {!Orca_config.t.obs} is set). Spans are attached only when
          this call owned the span session; a caller holding an outer
          session (the CLI suite loop, AMPERe capture) drains them itself. *)
  prov : Prov.Provenance.t option;
      (** per-node provenance of the chosen plan — rule lineage, losing
          alternatives, enforcer reasons ([None] unless
          {!Orca_config.t.prov} is set) *)
  phase_ms : (string * float) list;
      (** coarse per-phase wall times (preprocess, stage:<name>,
          prov-annotate) in execution order; always collected, feeding the
          flight recorder and lib/telemetry without lib/obs *)
  md_versions : int * int;
      (** the (catalog_version, stats_version) snapshot the session's
          accessor bound against (see {!Catalog.Snapshot}) — the plan-cache
          key components of [Orca_server] *)
}

exception Unsupported_query of string
(** Raised for queries outside the optimizer's reach (e.g. a correlated
    subquery whose correlation cannot be pulled up, or any correlated
    subquery when decorrelation is disabled). *)

val optimize :
  ?config:Orca_config.t -> Catalog.Accessor.t -> Dxl.Dxl_query.t -> report
(** Optimize a DXL query against the metadata reachable through the
    accessor. Releases the accessor's metadata pins on completion. *)

val optimize_to_dxl :
  ?config:Orca_config.t ->
  Catalog.Accessor.t ->
  Dxl.Dxl_query.t ->
  string * report
(** [optimize] plus DXL plan serialization: the full Fig. 2 round trip. *)

val project_output : Expr.plan -> Colref.t list -> Expr.plan
(** Wrap a plan with a projection delivering exactly the given output columns
    in order (no-op when they already match). *)

val root_req : Dxl.Dxl_query.t -> Props.req
(** The query's root optimization request: required distribution and order. *)

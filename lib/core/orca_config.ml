(* Optimizer configuration: rule activation, staging, parallelism, cost model
   parameters (paper §3: "all components can be replaced individually and
   configured separately"). *)

type t = {
  stages : Xform.Ruleset.stage list;
  workers : int;             (* optimization worker threads (§4.2) *)
  segments : int;            (* target cluster size *)
  model : Cost.Cost_model.t;
  decorrelate : bool;        (* pull correlated subqueries into joins *)
  normalize : bool;
  prune_columns : bool;      (* narrow join inputs to needed columns *)
  trace : bool;
  verify : bool;             (* run the static analyzers on the result *)
  sanitize : bool;           (* record a trace, run the concurrency sanitizer *)
  fuzz_seed : int option;    (* permute the costing schedule (with sanitize) *)
  obs : bool;                (* collect the observability report (lib/obs) *)
  prov : bool;               (* record plan provenance (lib/prov) *)
  rule_checks : bool;        (* checksum the Memo around every rule apply *)
  strata : (string * int) list option;
      (* stage-ordered rule scheduling: rule name -> stratum, the topological
         order of the rule-interaction graph's SCCs (computed by
         lib/interact, carried here as plain data so lib/core does not
         depend on the analyzer). None = promise order only. *)
  (* hot-path speedups; identity-preserving (the chosen plan and its cost
     are byte-identical with them on or off), so on by default. Individually
     switchable for A/B identity tests and the opt-speed benchmark. *)
  interning : bool;          (* hash-cons Memo operator payloads *)
  stats_memo : bool;         (* memoize group rows/width and motion skew *)
  rule_prefilter : bool;     (* skip rules by root-shape bitmap *)
  winner_reuse : bool;       (* reuse winners/base costs across contexts *)
  telemetry : bool;
      (* record the always-on metrics (lib/telemetry) after each query:
         one cold-path registry update tapping counters the engine keeps
         anyway, so the default is on. Off only for A/B identity tests. *)
  trace_id : string option;
      (* the originating service request ("s<sid>-r<rid>", lib/sre), when
         this optimization runs inside Orca_server: stamped as an
         attribute on the root lib/obs span and on flight-recorder dump
         traceflags so spans and AMPERe dumps are attributable to the
         request. Never read by the search — plans are byte-identical
         with or without it. *)
}

let default =
  {
    stages = Xform.Ruleset.single_stage;
    workers = 1;
    segments = Cost.Cost_model.default.Cost.Cost_model.segments;
    model = Cost.Cost_model.default;
    decorrelate = true;
    normalize = true;
    prune_columns = true;
    trace = false;
    verify = false;
    sanitize = false;
    fuzz_seed = None;
    obs = false;
    prov = false;
    rule_checks = false;
    strata = None;
    interning = true;
    stats_memo = true;
    rule_prefilter = true;
    winner_reuse = true;
    telemetry = true;
    trace_id = None;
  }

let with_segments t segments =
  { t with segments; model = Cost.Cost_model.with_segments t.model segments }

let with_workers t workers = { t with workers }

let with_stages t stages = { t with stages }

(* Deactivate rules by name in every stage (used by the ablation benches). *)
let without_rules t names =
  {
    t with
    stages =
      List.map
        (fun (s : Xform.Ruleset.stage) ->
          {
            s with
            Xform.Ruleset.stage_rules =
              Xform.Ruleset.without s.Xform.Ruleset.stage_rules names;
          })
        t.stages;
  }

let with_verify t = { t with verify = true }

let with_sanitize t = { t with sanitize = true }

let with_obs t = { t with obs = true }

let with_prov t = { t with prov = true }

let with_rule_checks t = { t with rule_checks = true }

let with_strata t strata = { t with strata = Some strata }

let with_fuzz_seed t seed = { t with fuzz_seed = Some seed }

let without_decorrelation t = { t with decorrelate = false }

let without_column_pruning t = { t with prune_columns = false }

let with_telemetry t on = { t with telemetry = on }

let with_trace_id t id = { t with trace_id = Some id }
let without_trace_id t = { t with trace_id = None }

let with_interning t on = { t with interning = on }
let with_stats_memo t on = { t with stats_memo = on }
let with_rule_prefilter t on = { t with rule_prefilter = on }
let with_winner_reuse t on = { t with winner_reuse = on }

(* The caches-off configuration the identity tests and the opt-speed bench
   compare against. *)
let without_speedups t =
  {
    t with
    interning = false;
    stats_memo = false;
    rule_prefilter = false;
    winner_reuse = false;
  }

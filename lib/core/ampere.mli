(** AMPERe — Automatic capture of Minimal Portable Executable Repros
    (paper §6.1).

    A dump packages everything needed to reproduce an optimization session
    away from the system that produced it: the input query, trace flags, the
    metadata working set acquired during optimization and, for failures, a
    stack trace. Replaying builds a file-based MD provider from the embedded
    metadata and runs an identical session (Fig. 10); dumps with an embedded
    expected plan double as regression test cases. *)

type dump = {
  stacktrace : string option;
  traceflags : (string * string) list;
  metadata : Catalog.Metadata.obj list;
  query : Dxl.Dxl_query.t;
  expected_plan : Ir.Expr.plan option;
  profile : string option;
      (** rendered {!Obs.Report} summary of the captured session *)
  trace_json : string option;
      (** Chrome trace_event JSON of the session's spans (partial trace up
          to the exception on failure captures) *)
  prov : Dxl.Dxl_prov.plan_prov option;
      (** per-node provenance of the captured plan (rule lineage, losing
          alternative counts) *)
  accuracy : Dxl.Dxl_prov.accuracy option;
      (** per-operator-class Q-error, when the plan was also executed *)
}

val capture :
  ?stacktrace:string option ->
  ?traceflags:(string * string) list ->
  ?expected_plan:Ir.Expr.plan ->
  ?profile:string option ->
  ?trace_json:string option ->
  ?prov:Dxl.Dxl_prov.plan_prov option ->
  ?accuracy:Dxl.Dxl_prov.accuracy option ->
  Catalog.Accessor.t ->
  Dxl.Dxl_query.t ->
  dump
(** Capture a dump from a completed (or attempted) optimization session; the
    metadata is exactly the set of objects the accessor touched. *)

val prov_to_dxl : Prov.Provenance.t -> Dxl.Dxl_prov.plan_prov
(** Serializable mirror of a provenance annotation (lib/dxl sits below
    lib/prov, so the conversion lives here). *)

val acc_to_dxl : Obs.Report.acc_stat list -> Dxl.Dxl_prov.accuracy

val embed_report : dump -> Optimizer.report -> dump
(** Attach the report's observability summary, trace, provenance annotation
    and accuracy table (whichever the report has) so the dump carries the
    full introspection record of the session it reproduces. *)

val embed_accuracy : dump -> Obs.Report.acc_stat list -> dump
(** Attach per-class cardinality accuracy measured by executing the dumped
    plan. *)

val capture_exn :
  Catalog.Accessor.t -> Dxl.Dxl_query.t -> exn -> string -> dump
(** Capture for a failed optimization, embedding the exception and trace. *)

val optimize_with_capture :
  ?config:Orca_config.t ->
  Catalog.Accessor.t ->
  Dxl.Dxl_query.t ->
  (Optimizer.report, dump) Stdlib.result
(** The paper's automatic failure capture (§6.1 "a dump is automatically
    generated when an unexpected error takes place"): run the optimizer; an
    escaping exception becomes an [Error dump] carrying the query, the
    metadata working set and the stack trace instead of a crash. With
    {!Orca_config.t.obs} set, this call owns the span session: a success
    report carries the session's spans, and a failure dump embeds the
    partial trace of the spans completed before the exception. *)

val to_string : dump -> string
(** Serialize to a DXL document (the Listing 2 shape). *)

val of_string : string -> dump
val save : dump -> string -> unit
val load : string -> dump

val replay : ?config:Orca_config.t -> dump -> Optimizer.report
(** Replay the dump with no backend attached: the embedded metadata serves as
    the MD provider (paper Fig. 10). *)

type verdict = Replay_match | Replay_plan_diff of string | Replay_failed of string

val verify : ?config:Orca_config.t -> dump -> verdict
(** Use a dump as a regression test: replay and compare the produced plan
    against the embedded expected plan. *)

open Ir

(* Implementation rules (paper §4.1 step 3): create physical implementations
   of logical expressions — Get2Scan, InnerJoin2HashJoin, InnerJoin2NLJoin,
   GbAgg2HashAgg and friends. *)

module Memo = Memolib.Memo
module Mexpr = Memolib.Mexpr

let get2scan =
  Rule.make ~name:"Get2Scan" ~kind:Rule.Implementation
    ~shapes:[ Logical_ops.S_get ] ~produces:[] (fun _ctx _memo ge ->
      match Rule.logical_op ge with
      | Some (Expr.L_get td) ->
          [ Mexpr.physical_of_groups (Expr.P_table_scan (td, None, None)) [] ]
      | _ -> [])

let select2filter =
  Rule.make ~name:"Select2Filter" ~kind:Rule.Implementation
    ~shapes:[ Logical_ops.S_select ] ~produces:[]
    (fun _ctx _memo ge ->
      match (Rule.logical_op ge, ge.Memo.ge_children) with
      | Some (Expr.L_select pred), [ g ] ->
          [ Mexpr.physical_of_groups (Expr.P_filter pred) [ g ] ]
      | _ -> [])

(* Select(pred, Get(T)) => TableScan(T) with the predicate pushed into the
   scan and, for partitioned tables, statically eliminated partitions. *)
let select2scan =
  Rule.make ~name:"Select2Scan" ~kind:Rule.Implementation ~promise:5
    ~shapes:[ Logical_ops.S_select ] ~produces:[]
    (fun _ctx memo ge ->
      match (Rule.logical_op ge, ge.Memo.ge_children) with
      | Some (Expr.L_select pred), [ g ] ->
          Rule.child_logicals memo g
          |> List.filter_map (fun (_, op) ->
                 match op with
                 | Expr.L_get td ->
                     let parts = Partition.prune td pred in
                     Some
                       (Mexpr.physical_of_groups
                          (Expr.P_table_scan (td, parts, Some pred))
                          [])
                 | _ -> None)
      | _ -> [])

(* Select(pred, Get(T)) => IndexScan when a conjunct constrains an indexed
   column with a constant; delivers the index order. *)
let select2index_scan =
  Rule.make ~name:"Select2IndexScan" ~kind:Rule.Implementation ~promise:5
    ~shapes:[ Logical_ops.S_select ] ~produces:[]
    (fun _ctx memo ge ->
      match (Rule.logical_op ge, ge.Memo.ge_children) with
      | Some (Expr.L_select pred), [ g ] ->
          Rule.child_logicals memo g
          |> List.concat_map (fun (_, op) ->
                 match op with
                 | Expr.L_get td ->
                     let conjuncts = Scalar_ops.conjuncts pred in
                     List.concat_map
                       (fun (idx : Table_desc.index) ->
                         List.filter_map
                           (fun c ->
                             match c with
                             | Expr.Cmp (cmp, Expr.Col col, (Expr.Const _ as v))
                               when Colref.equal col idx.Table_desc.idx_col
                                    && cmp <> Expr.Neq ->
                                 let residual =
                                   List.filter (fun c' -> c' <> c) conjuncts
                                 in
                                 let res =
                                   if residual = [] then None
                                   else Some (Scalar_ops.conjoin residual)
                                 in
                                 Some
                                   (Mexpr.physical_of_groups
                                      (Expr.P_index_scan (td, idx, cmp, v, res))
                                      [])
                             | _ -> None)
                           conjuncts)
                       td.Table_desc.indexes
                 | _ -> [])
      | _ -> [])

let project_impl =
  Rule.make ~name:"Project2ComputeScalar" ~kind:Rule.Implementation
    ~shapes:[ Logical_ops.S_project ] ~produces:[]
    (fun _ctx _memo ge ->
      match (Rule.logical_op ge, ge.Memo.ge_children) with
      | Some (Expr.L_project projs), [ g ] ->
          [ Mexpr.physical_of_groups (Expr.P_project projs) [ g ] ]
      | _ -> [])

let join2hashjoin =
  Rule.make ~name:"Join2HashJoin" ~kind:Rule.Implementation ~promise:8
    ~shapes:[ Logical_ops.S_join ] ~produces:[]
    (fun _ctx memo ge ->
      match (Rule.logical_op ge, ge.Memo.ge_children) with
      | Some (Expr.L_join (kind, cond)), [ g1; g2 ] ->
          let keys, residual =
            Scalar_ops.extract_equi_keys
              ~outer_cols:(Rule.group_out_cols memo g1)
              ~inner_cols:(Rule.group_out_cols memo g2)
              cond
          in
          if keys = [] then []
          else
            let res =
              if residual = [] then None else Some (Scalar_ops.conjoin residual)
            in
            [
              Mexpr.physical_of_groups
                (Expr.P_hash_join (kind, keys, res))
                [ g1; g2 ];
            ]
      | _ -> [])

let join2nljoin =
  Rule.make ~name:"Join2NLJoin" ~kind:Rule.Implementation
    ~shapes:[ Logical_ops.S_join ] ~produces:[] (fun _ctx _memo ge ->
      match (Rule.logical_op ge, ge.Memo.ge_children) with
      | Some (Expr.L_join (kind, cond)), [ g1; g2 ] when kind <> Expr.Full_outer
        ->
          [ Mexpr.physical_of_groups (Expr.P_nl_join (kind, cond)) [ g1; g2 ] ]
      | _ -> [])

let join2mergejoin =
  Rule.make ~name:"Join2MergeJoin" ~kind:Rule.Implementation
    ~shapes:[ Logical_ops.S_join ] ~produces:[]
    (fun _ctx memo ge ->
      match (Rule.logical_op ge, ge.Memo.ge_children) with
      | Some (Expr.L_join (Expr.Inner, cond)), [ g1; g2 ] ->
          let keys, residual =
            Scalar_ops.extract_equi_keys
              ~outer_cols:(Rule.group_out_cols memo g1)
              ~inner_cols:(Rule.group_out_cols memo g2)
              cond
          in
          let col_keys =
            List.filter_map
              (fun (a, b) ->
                match (a, b) with
                | Expr.Col x, Expr.Col y -> Some (x, y)
                | _ -> None)
              keys
          in
          if col_keys = [] || List.length col_keys <> List.length keys then []
          else
            let res =
              if residual = [] then None else Some (Scalar_ops.conjoin residual)
            in
            [
              Mexpr.physical_of_groups
                (Expr.P_merge_join (Expr.Inner, col_keys, res))
                [ g1; g2 ];
            ]
      | _ -> [])

let gbagg2hashagg =
  Rule.make ~name:"GbAgg2HashAgg" ~kind:Rule.Implementation ~promise:5
    ~shapes:[ Logical_ops.S_gb_agg ] ~produces:[]
    (fun _ctx _memo ge ->
      match (Rule.logical_op ge, ge.Memo.ge_children) with
      | Some (Expr.L_gb_agg (phase, keys, aggs)), [ g ] ->
          [
            Mexpr.physical_of_groups (Expr.P_hash_agg (phase, keys, aggs)) [ g ];
          ]
      | _ -> [])

let gbagg2streamagg =
  Rule.make ~name:"GbAgg2StreamAgg" ~kind:Rule.Implementation
    ~shapes:[ Logical_ops.S_gb_agg ] ~produces:[]
    (fun _ctx _memo ge ->
      match (Rule.logical_op ge, ge.Memo.ge_children) with
      | Some (Expr.L_gb_agg (phase, keys, aggs)), [ g ] when keys <> [] ->
          [
            Mexpr.physical_of_groups
              (Expr.P_stream_agg (phase, keys, aggs))
              [ g ];
          ]
      | _ -> [])

let window_impl =
  Rule.make ~name:"ImplementWindow" ~kind:Rule.Implementation
    ~shapes:[ Logical_ops.S_window ] ~produces:[]
    (fun _ctx _memo ge ->
      match (Rule.logical_op ge, ge.Memo.ge_children) with
      | Some (Expr.L_window (partition, order, wfuncs)), [ g ] ->
          [
            Mexpr.physical_of_groups
              (Expr.P_window (partition, order, wfuncs))
              [ g ];
          ]
      | _ -> [])

let limit_impl =
  Rule.make ~name:"Limit2Limit" ~kind:Rule.Implementation
    ~shapes:[ Logical_ops.S_limit ] ~produces:[] (fun _ctx _memo ge ->
      match (Rule.logical_op ge, ge.Memo.ge_children) with
      | Some (Expr.L_limit (sort, offset, count)), [ g ] ->
          [ Mexpr.physical_of_groups (Expr.P_limit (sort, offset, count)) [ g ] ]
      | _ -> [])

let cte_anchor2sequence =
  Rule.make ~name:"CTEAnchor2Sequence" ~kind:Rule.Implementation
    ~shapes:[ Logical_ops.S_cte_anchor ] ~produces:[]
    (fun _ctx _memo ge ->
      match (Rule.logical_op ge, ge.Memo.ge_children) with
      | Some (Expr.L_cte_anchor id), [ gp; gm ] ->
          [ Mexpr.physical_of_groups (Expr.P_sequence id) [ gp; gm ] ]
      | _ -> [])

let cte_producer_impl =
  Rule.make ~name:"ImplementCTEProducer" ~kind:Rule.Implementation
    ~shapes:[ Logical_ops.S_cte_producer ] ~produces:[]
    (fun _ctx _memo ge ->
      match (Rule.logical_op ge, ge.Memo.ge_children) with
      | Some (Expr.L_cte_producer id), [ g ] ->
          [ Mexpr.physical_of_groups (Expr.P_cte_producer id) [ g ] ]
      | _ -> [])

let cte_consumer_impl =
  Rule.make ~name:"ImplementCTEConsumer" ~kind:Rule.Implementation
    ~shapes:[ Logical_ops.S_cte_consumer ] ~produces:[]
    (fun _ctx _memo ge ->
      match Rule.logical_op ge with
      | Some (Expr.L_cte_consumer (id, cols)) ->
          [ Mexpr.physical_of_groups (Expr.P_cte_consumer (id, cols)) [] ]
      | _ -> [])

let set_impl =
  Rule.make ~name:"ImplementSetOp" ~kind:Rule.Implementation
    ~shapes:[ Logical_ops.S_set ] ~produces:[]
    (fun _ctx _memo ge ->
      match Rule.logical_op ge with
      | Some (Expr.L_set (kind, cols)) ->
          [
            Mexpr.of_groups
              (Expr.Physical (Expr.P_set (kind, cols)))
              ge.Memo.ge_children;
          ]
      | _ -> [])

let const_table_impl =
  Rule.make ~name:"ImplementConstTable" ~kind:Rule.Implementation
    ~shapes:[ Logical_ops.S_const_table ] ~produces:[]
    (fun _ctx _memo ge ->
      match Rule.logical_op ge with
      | Some (Expr.L_const_table (cols, rows)) ->
          [ Mexpr.physical_of_groups (Expr.P_const_table (cols, rows)) [] ]
      | _ -> [])

let all : Rule.t list =
  [
    get2scan;
    select2filter;
    select2scan;
    select2index_scan;
    project_impl;
    join2hashjoin;
    join2nljoin;
    join2mergejoin;
    gbagg2hashagg;
    gbagg2streamagg;
    window_impl;
    limit_impl;
    cte_anchor2sequence;
    cte_producer_impl;
    cte_consumer_impl;
    set_impl;
    const_table_impl;
  ]

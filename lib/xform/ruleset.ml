(* Rule sets and optimization stages (paper §3: "each transformation rule is
   a self-contained component that can be explicitly activated/deactivated in
   Orca configurations"; §4.1 "Multi-Stage Optimization"). *)

type t = { rules : Rule.t list }

let default = { rules = Rules_explore.all @ Rules_implement.all }

let of_rules rules = { rules }

let rules t = t.rules

let exploration t = List.filter Rule.is_exploration t.rules
let implementation t = List.filter Rule.is_implementation t.rules

(* Deactivate rules by name. *)
let without t names =
  { rules = List.filter (fun r -> not (List.mem r.Rule.name names)) t.rules }

let only t names =
  { rules = List.filter (fun r -> List.mem r.Rule.name names) t.rules }

let find_by_name t name =
  List.find_opt (fun r -> r.Rule.name = name) t.rules

let names t = List.map (fun r -> r.Rule.name) t.rules

(* An optimization stage: a complete optimization workflow over a rule
   subset, with optional timeout and cost threshold. A stage terminates when
   a plan under the threshold is found, the timeout fires, or its rules are
   exhausted. *)
type stage = {
  stage_name : string;
  stage_rules : t;
  timeout_ms : float option;
  cost_threshold : float option;
}

let stage ?(timeout_ms = None) ?(cost_threshold = None) ~name rules =
  { stage_name = name; stage_rules = rules; timeout_ms; cost_threshold }

let single_stage = [ stage ~name:"full" default ]

(* A cheap first stage without the most expensive exploration rule (join
   associativity), then the full rule set: the paper's example of running the
   most expensive transformations in later stages. *)
let two_stage ?(timeout_ms = 500.0) ?(cost_threshold = 1000.0) () =
  [
    stage ~name:"greedy"
      ~cost_threshold:(Some cost_threshold)
      (without default [ "JoinAssociativity" ]);
    stage ~name:"full" ~timeout_ms:(Some timeout_ms) default;
  ]

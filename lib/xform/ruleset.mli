(** Rule sets and optimization stages.

    Paper §3: "each transformation rule is a self-contained component that
    can be explicitly activated/deactivated in Orca configurations"; §4.1: an
    optimization stage is a complete workflow using a subset of rules with an
    optional timeout and cost threshold. *)

type t

val default : t
(** All exploration and implementation rules. *)

val of_rules : Rule.t list -> t
(** An ad-hoc rule set (rulecheck fixtures, tests). *)

val rules : t -> Rule.t list
val exploration : t -> Rule.t list
val implementation : t -> Rule.t list

val without : t -> string list -> t
(** Deactivate rules by name. *)

val only : t -> string list -> t
val find_by_name : t -> string -> Rule.t option
val names : t -> string list

type stage = {
  stage_name : string;
  stage_rules : t;
  timeout_ms : float option;      (** bounds exploration *)
  cost_threshold : float option;  (** stop staging once a plan beats this *)
}

val stage :
  ?timeout_ms:float option ->
  ?cost_threshold:float option ->
  name:string ->
  t ->
  stage

val single_stage : stage list
(** One full-rule-set stage — the default configuration. *)

val two_stage : ?timeout_ms:float -> ?cost_threshold:float -> unit -> stage list
(** The paper's example: a cheap first stage without the most expensive
    exploration rule, then the full set under a timeout. *)

open Ir

(* Exploration rules (paper §4.1 step 1): generate logically equivalent
   expressions. Combined with the Memo's duplicate detection, commutativity
   and associativity enumerate the join-order space; the push-down rules give
   the search the chance to filter early. *)

module Memo = Memolib.Memo
module Mexpr = Memolib.Mexpr

let join_commutativity =
  Rule.make ~name:"JoinCommutativity" ~kind:Rule.Exploration ~promise:10
    ~shapes:[ Logical_ops.S_join ] ~produces:[ Logical_ops.S_join ]
    (fun _ctx _memo ge ->
      match Rule.logical_op ge with
      | Some (Expr.L_join (Expr.Inner, cond)) -> (
          match ge.Memo.ge_children with
          | [ g1; g2 ] ->
              [
                Mexpr.logical_of_groups (Expr.L_join (Expr.Inner, cond))
                  [ g2; g1 ];
              ]
          | _ -> [])
      | _ -> [])

(* Inner(Inner(g1,g2),g3) => Inner(g1, Inner(g2,g3)).
   Conjuncts of both conditions are re-partitioned: those referencing only
   {g2,g3} sink into the new inner join; the rest stay on top. Pure cross
   products are not generated unless the query itself is a cross product. *)
let join_associativity =
  Rule.make ~name:"JoinAssociativity" ~kind:Rule.Exploration ~promise:9
    ~shapes:[ Logical_ops.S_join ] ~produces:[ Logical_ops.S_join ]
    (fun _ctx memo ge ->
      match (Rule.logical_op ge, ge.Memo.ge_children) with
      | Some (Expr.L_join (Expr.Inner, cond_top)), [ g_left; g_right ] ->
          let left_joins =
            Rule.child_logicals memo g_left
            |> List.filter_map (fun (ge_l, op) ->
                   match op with
                   | Expr.L_join (Expr.Inner, cond_l) -> (
                       match ge_l.Memo.ge_children with
                       | [ g1; g2 ] -> Some (g1, g2, cond_l)
                       | _ -> None)
                   | _ -> None)
          in
          List.filter_map
            (fun (g1, g2, cond_l) ->
              let cols_23 =
                Colref.Set.union
                  (Rule.group_out_cols memo g2)
                  (Rule.group_out_cols memo g_right)
              in
              let all_conj =
                Scalar_ops.conjuncts cond_top @ Scalar_ops.conjuncts cond_l
              in
              let inner_conj, top_conj =
                List.partition
                  (fun c -> Colref.Set.subset (Scalar_ops.free_cols c) cols_23)
                  all_conj
              in
              if inner_conj = [] && all_conj <> [] then None
              else
                Some
                  {
                    Mexpr.op =
                      Expr.Logical
                        (Expr.L_join (Expr.Inner, Scalar_ops.conjoin top_conj));
                    children =
                      [
                        Mexpr.Group g1;
                        Mexpr.Node
                          (Mexpr.logical_of_groups
                             (Expr.L_join
                                (Expr.Inner, Scalar_ops.conjoin inner_conj))
                             [ g2; g_right ]);
                      ];
                  })
            left_joins
      | _ -> [])

(* Select(pred, Join(g1,g2)) => Join(g1,g2) with the predicate merged into
   the join condition (inner joins), giving the join implementations more
   equi-keys to work with. *)
let select_merge_join =
  Rule.make ~name:"SelectMergeJoin" ~kind:Rule.Exploration ~promise:8
    ~shapes:[ Logical_ops.S_select ] ~produces:[ Logical_ops.S_join ]
    (fun _ctx memo ge ->
      match (Rule.logical_op ge, ge.Memo.ge_children) with
      | Some (Expr.L_select pred), [ g ] ->
          Rule.child_logicals memo g
          |> List.filter_map (fun (ge_j, op) ->
                 match (op, ge_j.Memo.ge_children) with
                 | Expr.L_join (Expr.Inner, cond), [ g1; g2 ] ->
                     Some
                       (Mexpr.logical_of_groups
                          (Expr.L_join
                             ( Expr.Inner,
                               Scalar_ops.conjoin
                                 (Scalar_ops.conjuncts cond
                                 @ Scalar_ops.conjuncts pred) ))
                          [ g1; g2 ])
                 | _ -> None)
      | _ -> [])

(* Select(pred, OuterJoin(g1,g2)) => OuterJoin(Select(pred_outer, g1), g2):
   conjuncts that reference only the outer side commute with a left outer
   join. *)
let select_pushdown_outer_join =
  Rule.make ~name:"SelectPushdownOuterJoin" ~kind:Rule.Exploration ~promise:7
    ~shapes:[ Logical_ops.S_select ]
    ~produces:[ Logical_ops.S_select; Logical_ops.S_join ]
    (fun _ctx memo ge ->
      match (Rule.logical_op ge, ge.Memo.ge_children) with
      | Some (Expr.L_select pred), [ g ] ->
          Rule.child_logicals memo g
          |> List.filter_map (fun (ge_j, op) ->
                 match (op, ge_j.Memo.ge_children) with
                 | Expr.L_join (Expr.Left_outer, cond), [ g1; g2 ] ->
                     let outer_cols = Rule.group_out_cols memo g1 in
                     let push, keep =
                       List.partition
                         (fun c ->
                           Colref.Set.subset (Scalar_ops.free_cols c)
                             outer_cols)
                         (Scalar_ops.conjuncts pred)
                     in
                     if push = [] then None
                     else
                       let pushed_child =
                         Mexpr.Node
                           {
                             Mexpr.op =
                               Expr.Logical
                                 (Expr.L_select (Scalar_ops.conjoin push));
                             children = [ Mexpr.Group g1 ];
                           }
                       in
                       let join =
                         {
                           Mexpr.op =
                             Expr.Logical (Expr.L_join (Expr.Left_outer, cond));
                           children = [ pushed_child; Mexpr.Group g2 ];
                         }
                       in
                       if keep = [] then Some join
                       else
                         Some
                           {
                             Mexpr.op =
                               Expr.Logical
                                 (Expr.L_select (Scalar_ops.conjoin keep));
                             children = [ Mexpr.Node join ];
                           }
                 | _ -> None)
      | _ -> [])

(* Select(pred, GbAgg(keys, aggs, child)) => GbAgg(keys, aggs, Select(...)):
   conjuncts over grouping columns filter before aggregation. *)
let select_pushdown_gb_agg =
  Rule.make ~name:"SelectPushdownGbAgg" ~kind:Rule.Exploration ~promise:7
    ~shapes:[ Logical_ops.S_select ]
    ~produces:[ Logical_ops.S_select; Logical_ops.S_gb_agg ]
    (fun _ctx memo ge ->
      match (Rule.logical_op ge, ge.Memo.ge_children) with
      | Some (Expr.L_select pred), [ g ] ->
          Rule.child_logicals memo g
          |> List.filter_map (fun (ge_a, op) ->
                 match (op, ge_a.Memo.ge_children) with
                 | Expr.L_gb_agg (Expr.One_phase, keys, aggs), [ gc ] ->
                     let key_set = Colref.Set.of_list keys in
                     let push, keep =
                       List.partition
                         (fun c ->
                           Colref.Set.subset (Scalar_ops.free_cols c) key_set)
                         (Scalar_ops.conjuncts pred)
                     in
                     if push = [] then None
                     else
                       let agg =
                         {
                           Mexpr.op =
                             Expr.Logical
                               (Expr.L_gb_agg (Expr.One_phase, keys, aggs));
                           children =
                             [
                               Mexpr.Node
                                 {
                                   Mexpr.op =
                                     Expr.Logical
                                       (Expr.L_select (Scalar_ops.conjoin push));
                                   children = [ Mexpr.Group gc ];
                                 };
                             ];
                         }
                       in
                       if keep = [] then Some agg
                       else
                         Some
                           {
                             Mexpr.op =
                               Expr.Logical
                                 (Expr.L_select (Scalar_ops.conjoin keep));
                             children = [ Mexpr.Node agg ];
                           }
                 | _ -> None)
      | _ -> [])

(* GbAgg => Final-GbAgg over Partial-GbAgg: multi-stage MPP aggregation.
   The partial stage aggregates whatever is local to each segment; the final
   stage combines partial states after a motion. AVG was decomposed into
   SUM/COUNT at bind time, so every aggregate here splits cleanly. *)
let split_gb_agg =
  Rule.make ~name:"SplitGbAgg" ~kind:Rule.Exploration ~promise:6
    ~shapes:[ Logical_ops.S_gb_agg ] ~produces:[ Logical_ops.S_gb_agg ]
    (fun ctx _memo ge ->
      match (Rule.logical_op ge, ge.Memo.ge_children) with
      | Some (Expr.L_gb_agg (Expr.One_phase, keys, aggs)), [ gc ]
        when aggs <> [] && not (List.exists (fun a -> a.Expr.agg_distinct) aggs)
        ->
          let split =
            List.map
              (fun (a : Expr.agg) ->
                let partial_ty =
                  match a.Expr.agg_kind with
                  | Expr.Count_star | Expr.Count -> Dtype.Int
                  | Expr.Sum | Expr.Min | Expr.Max ->
                      Colref.ty a.Expr.agg_out
                in
                let partial_out =
                  Colref.Factory.fresh ctx.Rule.factory
                    ~name:(Colref.name a.Expr.agg_out ^ "_partial")
                    ~ty:partial_ty
                in
                let partial = { a with Expr.agg_out = partial_out } in
                let final_kind =
                  match a.Expr.agg_kind with
                  | Expr.Count_star | Expr.Count | Expr.Sum -> Expr.Sum
                  | Expr.Min -> Expr.Min
                  | Expr.Max -> Expr.Max
                in
                let final =
                  {
                    Expr.agg_kind = final_kind;
                    agg_arg = Some (Expr.Col partial_out);
                    agg_distinct = false;
                    agg_out = a.Expr.agg_out;
                  }
                in
                (partial, final))
              aggs
          in
          let partials = List.map fst split and finals = List.map snd split in
          [
            {
              Mexpr.op = Expr.Logical (Expr.L_gb_agg (Expr.Final, keys, finals));
              children =
                [
                  Mexpr.Node
                    {
                      Mexpr.op =
                        Expr.Logical
                          (Expr.L_gb_agg (Expr.Partial, keys, partials));
                      children = [ Mexpr.Group gc ];
                    };
                ];
            };
          ]
      | _ -> [])

let all : Rule.t list =
  [
    join_commutativity;
    join_associativity;
    select_merge_join;
    select_pushdown_outer_join;
    select_pushdown_gb_agg;
    split_gb_agg;
  ]

open Ir

(* Transformation rules (paper §3 "Transformations"): self-contained
   components producing either equivalent logical expressions (exploration)
   or physical implementations (implementation). Each rule can be activated
   or deactivated through the optimizer configuration; rule subsets define
   optimization stages (§4.1 "Multi-Stage Optimization"). *)

type kind = Exploration | Implementation

type ctx = { factory : Colref.Factory.t }

type t = {
  id : int;
  name : string;
  kind : kind;
  (* Given a group expression, produce alternative expressions to copy into
     the same group. Never mutates the Memo. *)
  apply : ctx -> Memolib.Memo.t -> Memolib.Memo.gexpr -> Memolib.Mexpr.t list;
  (* Rule ordering hint: higher-promise rules apply first (paper §8.1:
     Cascades "permits ordering the application of rules"). *)
  promise : int;
  (* Applicability pre-filter: bitmap over Logical_ops shape tags of root
     operators this rule's pattern can match. The engine skips the rule on
     any group expression whose root shape bit is clear — the rule body
     would provably return []. [Logical_ops.all_shapes_mask] (the default)
     disables pre-filtering for the rule. *)
  mask : int;
  (* Declared output-shape set: bitmap over the shapes of logical operators
     this rule's alternatives can contain (anywhere in the returned trees,
     not just the root). [None] means undeclared; lib/interact infers the
     set and reports disagreements. Implementation rules produce no logical
     operators, so their declaration is the empty mask. *)
  produces : int option;
  (* True when [make] was called without [~shapes] and fell back to
     [all_shapes_mask] — lib/interact warns on such rules
     (interact/mask-defaulted) because the default silently disables the
     engine's pre-filter. *)
  mask_defaulted : bool;
}

let next_id = ref 0

let make ?(promise = 0) ?shapes ?produces ~name ~kind apply =
  incr next_id;
  let mask =
    match shapes with
    | None -> Ir.Logical_ops.all_shapes_mask
    | Some ss -> Ir.Logical_ops.shape_mask ss
  in
  let produces = Option.map Ir.Logical_ops.shape_mask produces in
  {
    id = !next_id;
    name;
    kind;
    apply;
    promise;
    mask;
    produces;
    mask_defaulted = shapes = None;
  }

(* Can [rule] possibly fire on a root with this shape tag? *)
let applicable_tag t (tag : int) = t.mask land (1 lsl tag) <> 0

let applicable t (op : Ir.Expr.logical) =
  applicable_tag t (Ir.Logical_ops.tag op)

let is_exploration r = r.kind = Exploration
let is_implementation r = r.kind = Implementation

(* Provenance record for results this rule produced from [source] during
   [stage] (lib/prov). The source is recorded by ge_id — an id, not a
   pointer — so lineage stays acyclic and survives group merges. *)
let origin_for r ~stage ~(source : Memolib.Memo.gexpr) : Memolib.Memo.origin =
  {
    Memolib.Memo.o_rule = r.name;
    o_rule_id = r.id;
    o_source = source.Memolib.Memo.ge_id;
    o_stage = stage;
    o_promise = r.promise;
  }

(* Helpers shared by rule implementations. *)

let logical_op (ge : Memolib.Memo.gexpr) =
  match ge.Memolib.Memo.ge_op with
  | Expr.Logical l -> Some l
  | Expr.Physical _ -> None

let group_out_cols memo gid = Colref.Set.of_list (Memolib.Memo.output_cols memo gid)

(* Logical expressions of a child group, canonicalized. *)
let child_logicals memo gid =
  let g = Memolib.Memo.group memo gid in
  Memolib.Memo.logical_exprs g

(** Transformation rules (paper §3): self-contained components producing
    either equivalent logical expressions (exploration) or physical
    implementations. Rules can be activated/deactivated through the
    configuration; subsets define optimization stages (§4.1). *)

open Ir

type kind = Exploration | Implementation

type ctx = { factory : Colref.Factory.t }
(** What a rule may use besides the Memo: fresh column references (e.g. the
    multi-stage aggregation split mints partial-output columns). *)

type t = {
  id : int;           (** unique; tracked per group expression *)
  name : string;
  kind : kind;
  apply : ctx -> Memolib.Memo.t -> Memolib.Memo.gexpr -> Memolib.Mexpr.t list;
      (** produce alternatives to copy into the expression's group; must not
          mutate the Memo *)
  promise : int;      (** ordering hint: higher-promise rules apply first *)
  mask : int;
      (** applicability pre-filter: bitmap over [Logical_ops] shape tags the
          rule's root pattern can match; [Logical_ops.all_shapes_mask] means
          no pre-filtering *)
  produces : int option;
      (** declared output-shape set: bitmap over the shapes of logical
          operators the rule's alternatives can contain (anywhere in the
          returned trees); [None] = undeclared. Implementation rules produce
          only physical operators, so they declare the empty mask. The
          rule-interaction analyzer (lib/interact) checks declarations
          against inference. *)
  mask_defaulted : bool;
      (** true when [make] was called without [~shapes] — the rule silently
          pre-filters nothing; lib/interact warns on such rules *)
}

val make :
  ?promise:int ->
  ?shapes:Logical_ops.shape list ->
  ?produces:Logical_ops.shape list ->
  name:string ->
  kind:kind ->
  (ctx -> Memolib.Memo.t -> Memolib.Memo.gexpr -> Memolib.Mexpr.t list) ->
  t
(** [shapes] declares the root shapes the rule can fire on; omitting it makes
    the rule applicable everywhere (no pre-filtering). On any root shape not
    listed, [apply] MUST return [] — the engine will skip the call.
    [produces] declares the shapes of logical operators the rule's
    alternatives may contain; [lib/interact] verifies it against producer
    inference over the rulecheck model corpus. *)

val applicable_tag : t -> int -> bool
(** Pre-filter test against a [Logical_ops.tag]. *)

val applicable : t -> Expr.logical -> bool
(** [applicable_tag] on the operator's shape tag. *)

val is_exploration : t -> bool
val is_implementation : t -> bool

val origin_for :
  t -> stage:string -> source:Memolib.Memo.gexpr -> Memolib.Memo.origin
(** Provenance record for results this rule produced from [source] during
    [stage] (lib/prov). *)

(** Helpers shared by rule implementations. *)

val logical_op : Memolib.Memo.gexpr -> Expr.logical option
val group_out_cols : Memolib.Memo.t -> int -> Colref.Set.t
val child_logicals :
  Memolib.Memo.t -> int -> (Memolib.Memo.gexpr * Expr.logical) list

(* The mutable side of snapshot versioning: a catalog source owns the live
   provider plus the (catalog, stats) version counters, and hands out
   immutable snapshots. DDL bumps the catalog version (schema changes
   invalidate statistics too, so the stats version moves with it); an
   ANALYZE-style refresh bumps only the stats version. A resident optimizer
   service holds one source and takes a fresh snapshot per request, so
   version bumps are naturally race-free with in-flight optimizations. *)

type t = {
  mutable provider : Provider.t;
  mutable catalog_version : int;
  mutable stats_version : int;
  mutex : Mutex.t;
}

let create ?(catalog_version = 0) ?(stats_version = 0) provider =
  { provider; catalog_version; stats_version; mutex = Mutex.create () }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let snapshot t =
  locked t (fun () ->
      Snapshot.make ~catalog_version:t.catalog_version
        ~stats_version:t.stats_version t.provider)

let versions t =
  locked t (fun () -> (t.catalog_version, t.stats_version))

(* A catalog change may alter table shapes, so any statistics gathered under
   the old schema are stale as well: both counters advance. *)
let bump_catalog ?provider t =
  locked t (fun () ->
      Option.iter (fun p -> t.provider <- p) provider;
      t.catalog_version <- t.catalog_version + 1;
      t.stats_version <- t.stats_version + 1)

let bump_stats ?provider t =
  locked t (fun () ->
      Option.iter (fun p -> t.provider <- p) provider;
      t.stats_version <- t.stats_version + 1)

let set_provider t provider = bump_catalog ~provider t

(** MD Accessor (paper §5): the per-optimization-session view of metadata.

    Tracks every object touched during the session (the AMPERe harvest set),
    pins objects in the MD cache, transparently fetches from the external
    provider on a miss, and releases all pins when the session completes. *)

open Ir

type t

val create :
  ?factory:Colref.Factory.t ->
  ?snapshot:Snapshot.t ->
  provider:Provider.t ->
  cache:Md_cache.t ->
  unit ->
  t
(** [?snapshot] records the (catalog, stats) versions this session binds
    against; without it the session is unversioned ([(0, 0)]). *)

val of_snapshot :
  ?factory:Colref.Factory.t ->
  snapshot:Snapshot.t ->
  cache:Md_cache.t ->
  unit ->
  t
(** Bind against an immutable {!Snapshot.t}: provider and versions both come
    from the snapshot, so the session cannot observe a half-applied change. *)

val factory : t -> Colref.Factory.t
(** The column-reference factory shared by everything in this session. *)

val md_versions : t -> int * int
(** The [(catalog_version, stats_version)] snapshot this session binds
    against. *)

val lookup_rel : t -> Md_id.t -> Metadata.rel_md option
val lookup_rel_by_name : t -> string -> Metadata.rel_md option
val lookup_stats : t -> Md_id.t -> Metadata.rel_stats_md option

val bind_table : t -> string -> Table_desc.t option
(** Bind a table into a query: mints fresh column references for this table
    instance (self-joins bind twice with distinct columns) and maps the
    catalog's positional distribution/partitioning/index metadata onto them. *)

val base_stats : t -> Table_desc.t -> Stats.Relstats.t
(** Base-table statistics rekeyed onto the descriptor's column references;
    histograms are fetched on demand (paper Fig. 5). Returns a default guess
    when the catalog has no statistics. *)

val accessed_objects : t -> Metadata.obj list
(** Every metadata object served during this session, in access order —
    exactly what an AMPERe dump embeds. *)

val release : t -> unit
(** End of session: unpin everything this accessor pinned in the cache. *)

(** Versioned, immutable view of the catalog and its statistics.

    A snapshot pairs a metadata provider with the (catalog, stats) version
    counters current when it was taken. Optimization sessions bind against a
    snapshot; its versions travel through the accessor, derived statistics
    and the optimizer report, so a cached plan can be keyed on — and
    validated against — the exact snapshot it was built from. Obtain
    snapshots from {!Source.snapshot}; [make] is for tests and replay. *)

type t

val make : ?catalog_version:int -> ?stats_version:int -> Provider.t -> t
(** Both versions default to 0 (the unversioned, pre-snapshot world). *)

val provider : t -> Provider.t
val catalog_version : t -> int
val stats_version : t -> int

val versions : t -> int * int
(** [(catalog_version, stats_version)]. *)

val to_string : t -> string

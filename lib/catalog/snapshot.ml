(* Versioned, immutable view of the catalog and its statistics.

   A snapshot pairs a metadata provider with the (catalog, stats) version
   counters that were current when it was taken. Optimization sessions bind
   against a snapshot; the versions travel with the session's accessor, the
   derived statistics and the final report, so a cached plan can be keyed on
   — and later validated against — the exact snapshot it was built from. *)

type t = {
  provider : Provider.t;
  catalog_version : int;
  stats_version : int;
}

let make ?(catalog_version = 0) ?(stats_version = 0) provider =
  { provider; catalog_version; stats_version }

let provider t = t.provider
let catalog_version t = t.catalog_version
let stats_version t = t.stats_version
let versions t = (t.catalog_version, t.stats_version)

let to_string t =
  Printf.sprintf "%s@cat%d/stats%d"
    (Provider.name t.provider)
    t.catalog_version t.stats_version

(** The mutable side of snapshot versioning: owns the live provider and the
    (catalog, stats) version counters, and hands out immutable
    {!Snapshot.t}s. Thread-safe — a resident optimizer service holds one
    source and takes a fresh snapshot per request. *)

type t

val create : ?catalog_version:int -> ?stats_version:int -> Provider.t -> t

val snapshot : t -> Snapshot.t
(** An immutable view of the provider at the current versions. *)

val versions : t -> int * int
(** Current [(catalog_version, stats_version)]. *)

val bump_catalog : ?provider:Provider.t -> t -> unit
(** Record a catalog change (DDL), optionally swapping the provider. Schema
    changes stale the statistics too, so both counters advance. *)

val bump_stats : ?provider:Provider.t -> t -> unit
(** Record a statistics refresh (ANALYZE): only the stats counter advances. *)

val set_provider : t -> Provider.t -> unit
(** Replace the provider wholesale; equivalent to [bump_catalog ~provider]. *)

open Ir

(* MD Accessor (paper §5): the per-optimization-session view of metadata.
   Keeps track of every object touched during the session, pins objects in
   the MD cache, transparently fetches from the external provider on a miss,
   and releases everything when the session completes. *)

type t = {
  provider : Provider.t;
  cache : Md_cache.t;
  factory : Colref.Factory.t;
  md_versions : int * int; (* (catalog, stats) snapshot versions *)
  mutable pinned : (Metadata.kind * Md_id.t) list;
  mutable accessed : Metadata.obj list; (* for AMPERe harvesting *)
}

let create ?(factory = Colref.Factory.create ()) ?snapshot ~provider ~cache ()
    =
  let md_versions =
    match snapshot with None -> (0, 0) | Some s -> Snapshot.versions s
  in
  { provider; cache; factory; md_versions; pinned = []; accessed = [] }

(* Bind against a snapshot: the provider and versions both come from the
   immutable view, so the session cannot observe a half-applied change. *)
let of_snapshot ?factory ~snapshot ~cache () =
  create ?factory ~snapshot ~provider:(Snapshot.provider snapshot) ~cache ()

let factory t = t.factory
let md_versions t = t.md_versions
let stats_version t = snd t.md_versions

let remember t kind mdid obj =
  t.pinned <- (kind, mdid) :: t.pinned;
  if
    not
      (List.exists
         (fun o ->
           Metadata.kind_of o = Metadata.kind_of obj
           && Md_id.same_object (Metadata.mdid_of o) (Metadata.mdid_of obj))
         t.accessed)
  then t.accessed <- obj :: t.accessed

let lookup_rel t mdid : Metadata.rel_md option =
  let fetch () =
    Option.map (fun r -> Metadata.Rel r) (t.provider.Provider.lookup_rel mdid)
  in
  match Md_cache.lookup_pin t.cache ~provider:t.provider Metadata.K_rel mdid ~fetch with
  | Some (Metadata.Rel r as obj) ->
      remember t Metadata.K_rel mdid obj;
      Some r
  | Some (Metadata.Rel_stats _) | None -> None

let lookup_rel_by_name t name : Metadata.rel_md option =
  match t.provider.Provider.lookup_rel_by_name name with
  | None -> None
  | Some r ->
      (* route through the cache so pinning/versioning applies *)
      lookup_rel t r.Metadata.rel_mdid

let lookup_stats t mdid : Metadata.rel_stats_md option =
  let fetch () =
    Option.map
      (fun s -> Metadata.Rel_stats s)
      (t.provider.Provider.lookup_stats mdid)
  in
  match
    Md_cache.lookup_pin t.cache ~provider:t.provider Metadata.K_rel_stats mdid
      ~fetch
  with
  | Some (Metadata.Rel_stats s as obj) ->
      remember t Metadata.K_rel_stats mdid obj;
      Some s
  | Some (Metadata.Rel _) | None -> None

(* Bind a table into a query: mint fresh column references for this table
   instance (self-joins bind the same relation twice with distinct columns)
   and build the optimizer-side table descriptor. *)
let bind_table t name : Table_desc.t option =
  match lookup_rel_by_name t name with
  | None -> None
  | Some rel ->
      let cols =
        List.map
          (fun (c : Metadata.col_md) ->
            Colref.Factory.fresh t.factory ~name:c.Metadata.col_name
              ~ty:c.Metadata.col_type)
          rel.Metadata.rel_cols
      in
      let nth_col i = List.nth cols i in
      let dist =
        match rel.Metadata.rel_dist with
        | Metadata.Hash_cols ps -> Table_desc.Dist_hash (List.map nth_col ps)
        | Metadata.Random_dist -> Table_desc.Dist_random
        | Metadata.Replicated_dist -> Table_desc.Dist_replicated
      in
      let parts =
        List.map
          (fun (p : Metadata.part_md) ->
            {
              Table_desc.part_id = p.Metadata.pm_id;
              lo = p.Metadata.pm_lo;
              hi = p.Metadata.pm_hi;
            })
          rel.Metadata.rel_parts
      in
      let indexes =
        List.map
          (fun (i : Metadata.index_md) ->
            {
              Table_desc.idx_name = i.Metadata.im_name;
              idx_col = nth_col i.Metadata.im_col;
            })
          rel.Metadata.rel_indexes
      in
      Some
        (Table_desc.make
           ~dist
           ?part_col:(Option.map nth_col rel.Metadata.rel_part_col)
           ~parts ~indexes
           ~mdid:(Md_id.to_string rel.Metadata.rel_mdid)
           ~name cols)

(* Base-table statistics for a bound table descriptor: positional histograms
   from the catalog are rekeyed onto the descriptor's column references.
   Loaded on demand, exactly like the histogram requests of paper Fig. 5. *)
let base_stats t (td : Table_desc.t) : Stats.Relstats.t =
  let mdid = Md_id.of_string td.Table_desc.mdid in
  (* Stamp every base relation with the session's stats-snapshot version;
     derivation propagates it so the final plan records its provenance. *)
  let stamp s = Stats.Relstats.set_version s (stats_version t) in
  match lookup_stats t mdid with
  | None ->
      (* no statistics: default guess *)
      stamp (Stats.Relstats.set_rows Stats.Relstats.empty 1000.0)
  | Some st ->
      let cols = Array.of_list td.Table_desc.cols in
      let with_hists =
        List.fold_left
          (fun acc (pos, hist) ->
            if pos >= 0 && pos < Array.length cols then
              Stats.Relstats.set_col acc cols.(pos) hist
            else acc)
          Stats.Relstats.empty st.Metadata.st_col_hists
      in
      stamp (Stats.Relstats.set_rows with_hists st.Metadata.st_rows)

let accessed_objects t = List.rev t.accessed

(* End of optimization session: unpin everything (paper: "metadata objects
   are pinned in the cache and unpinned when optimization completes"). *)
let release t =
  List.iter (fun (kind, mdid) -> Md_cache.unpin t.cache kind mdid) t.pinned;
  t.pinned <- []

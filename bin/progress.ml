(* Shared progress reporting for subcommands whose stdout must stay a valid
   machine stream (the Prometheus exposition of `metrics`, the line protocol
   of `serve`): every notice goes to stderr, flushed immediately so it
   interleaves usefully with the protocol stream. The per-subcommand copies
   this replaces had drifted (bare prerr_string here, Printf.eprintf there,
   not always flushed). *)

let log s =
  output_string stderr s;
  flush stderr

(* [say] appends the newline; use it for whole messages. *)
let say fmt =
  Printf.ksprintf
    (fun s ->
      output_string stderr s;
      output_char stderr '\n';
      flush stderr)
    fmt

(* The end-of-suite summary every --suite loop prints. *)
let suite_done ~what ~total ~skipped =
  say "%s: optimized the %d-query suite (%d unsupported)" what total skipped

let wrote path = say "wrote %s" path

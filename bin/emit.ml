(* Shared JSON emitter for orca_cli's machine-readable outputs (accuracy
   baselines, metrics snapshots, flight summaries). One value type and one
   renderer, so every subcommand agrees on escaping, float formatting and
   field naming — the bench/CI parsers (bench/gate.ml, Telemetry.Expose)
   read what this writes.

   Field-naming conventions (keep new emitters consistent):
     "sf"         scale factor         (float, %g)
     "segments"   cluster size         (int — never "segs")
     "workers"    worker domains       (int)
     "summary"    the gated object     (bench/gate.ml reads this)
     "queries" / "unsupported"         suite coverage counts *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float   (* fixed %.6f: measurements, gated values *)
  | Gfloat of float  (* shortest %g: parameters like the scale factor *)
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let num fmt v = if Float.is_nan v || Float.abs v = Float.infinity then "0" else Printf.sprintf fmt v

(* Pretty-printed with two-space indentation; scalars-only containers stay
   on one line when short. *)
let render (v : t) : string =
  let buf = Buffer.create 1024 in
  let pad n = String.make n ' ' in
  let scalar = function
    | Null | Bool _ | Int _ | Float _ | Gfloat _ | Str _ -> true
    | List l -> l = []
    | Obj o -> o = []
  in
  let rec go indent v =
    match v with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (num "%.6f" f)
    | Gfloat f -> Buffer.add_string buf (num "%g" f)
    | Str s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items when List.for_all scalar items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_string buf ", ";
            go indent item)
          items;
        Buffer.add_char buf ']'
    | List items ->
        Buffer.add_string buf "[\n";
        let last = List.length items - 1 in
        List.iteri
          (fun i item ->
            Buffer.add_string buf (pad (indent + 2));
            go (indent + 2) item;
            Buffer.add_string buf (if i = last then "\n" else ",\n"))
          items;
        Buffer.add_string buf (pad indent);
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_string buf "{\n";
        let last = List.length fields - 1 in
        List.iteri
          (fun i (k, fv) ->
            Buffer.add_string buf (pad (indent + 2));
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_string buf "\": ";
            go (indent + 2) fv;
            Buffer.add_string buf (if i = last then "\n" else ",\n"))
          fields;
        Buffer.add_string buf (pad indent);
        Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let write path v = write_file path (render v)

(* orca_cli: an interactive front door to the whole system.

     dune exec bin/orca_cli.exe -- run "SELECT ..." [--sf 0.2] [--segs 8]
     dune exec bin/orca_cli.exe -- explain "SELECT ..."
     dune exec bin/orca_cli.exe -- compare "SELECT ..."     (Orca vs Planner)
     dune exec bin/orca_cli.exe -- memo "SELECT ..."        (dump the Memo)
     dune exec bin/orca_cli.exe -- dxl "SELECT ..."         (query+plan DXL)
     dune exec bin/orca_cli.exe -- queries                  (list the workload)

   Queries run against the mini-TPC-DS warehouse (generated in-process). *)

open Ir
open Cmdliner

type env = {
  cluster : Exec.Cluster.t;
  provider : Catalog.Provider.t;
  cache : Catalog.Md_cache.t;
  nsegs : int;
  workers : int;
}

let make_env sf nsegs workers =
  let db = Tpcds.Datagen.generate ~sf () in
  let e = Engines.Engine.create_env ~nsegs db in
  {
    cluster =
      Engines.Engine.cluster_for e ~mem_per_seg:(64.0 *. 1024.0 *. 1024.0);
    provider = e.Engines.Engine.provider;
    cache = e.Engines.Engine.cache;
    nsegs;
    workers;
  }

let base_config env =
  Orca.Orca_config.with_workers
    (Orca.Orca_config.with_segments Orca.Orca_config.default env.nsegs)
    env.workers

let optimize env sql =
  let accessor =
    Catalog.Accessor.create ~provider:env.provider ~cache:env.cache ()
  in
  let query = Sqlfront.Binder.bind_sql accessor sql in
  (query, Orca.Optimizer.optimize ~config:(base_config env) accessor query)

let print_rows rows =
  List.iter
    (fun row ->
      print_endline
        (String.concat " | " (List.map Datum.to_string (Array.to_list row))))
    rows;
  Printf.printf "(%d rows)\n" (List.length rows)

(* --- subcommands --- *)

let run_cmd env sql =
  let _, report = optimize env sql in
  let rows, metrics = Exec.Executor.run env.cluster report.Orca.Optimizer.plan in
  print_rows rows;
  Printf.printf "\n%s\noptimization: %.1f ms, %d groups, %d group expressions\n"
    (Exec.Metrics.to_string metrics)
    report.Orca.Optimizer.opt_time_ms report.Orca.Optimizer.groups
    report.Orca.Optimizer.gexprs

(* EXPLAIN ANALYZE: execute the plan with the per-operator observe hook and
   print estimated vs actual rows (the cardinality error) and the inclusive
   simulated time next to each node. *)
let explain_analyze env (report : Orca.Optimizer.report) =
  let plan = report.Orca.Optimizer.plan in
  let observed : (Expr.plan * float * float) list ref = ref [] in
  let observe p ~rows ~sim_s = observed := (p, rows, sim_s) :: !observed in
  let _rows, metrics = Exec.Executor.run ~observe env.cluster plan in
  let buf = Buffer.create 1024 in
  let rec walk depth (p : Expr.plan) =
    let name = Physical_ops.to_string p.Expr.pop in
    let name =
      if String.length name > 44 then String.sub name 0 44 else name
    in
    let line =
      (* DPE rewrites scan nodes before evaluating them, so a node can be
         missing from the observations: report its actuals as unknown *)
      match List.find_opt (fun (p', _, _) -> p' == p) !observed with
      | Some (_, rows, sim_s) ->
          let err =
            if rows > 0.0 && p.Expr.pest_rows > 0.0 then
              let e = Float.max (p.Expr.pest_rows /. rows) (rows /. p.Expr.pest_rows) in
              Printf.sprintf "%8.2fx" e
            else "       -"
          in
          Printf.sprintf "est=%10.0f  act=%10.0f  err=%s  time=%9.5fs"
            p.Expr.pest_rows rows err sim_s
      | None ->
          Printf.sprintf "est=%10.0f  act=%10s  err=%8s  time=%9s"
            p.Expr.pest_rows "-" "-" "-"
    in
    Buffer.add_string buf
      (Printf.sprintf "%-48s %s\n"
         (String.make (2 * depth) ' ' ^ "-> " ^ name)
         line);
    List.iter (walk (depth + 1)) p.Expr.pchildren
  in
  walk 0 plan;
  print_string (Buffer.contents buf);
  Printf.printf "\n%s\n" (Exec.Metrics.to_string metrics)

let explain_cmd analyze env sql =
  let _, report = optimize env sql in
  if analyze then explain_analyze env report
  else print_string (Plan_ops.to_string report.Orca.Optimizer.plan);
  Printf.printf
    "\nstage=%s  groups=%d  gexprs=%d  contexts=%d  xforms=%d  jobs=%d  \
     opt=%.1fms\n"
    report.Orca.Optimizer.stage_name report.Orca.Optimizer.groups
    report.Orca.Optimizer.gexprs report.Orca.Optimizer.contexts
    report.Orca.Optimizer.xforms report.Orca.Optimizer.jobs_created
    report.Orca.Optimizer.opt_time_ms

let compare_cmd env sql =
  let _, report = optimize env sql in
  let orows, om = Exec.Executor.run env.cluster report.Orca.Optimizer.plan in
  print_endline "=== Orca ===";
  print_string (Plan_ops.to_string report.Orca.Optimizer.plan);
  let accessor =
    Catalog.Accessor.create ~provider:env.provider ~cache:env.cache ()
  in
  let query = Sqlfront.Binder.bind_sql accessor sql in
  let pplan =
    Planner.Legacy_planner.plan_sql
      ~config:
        { Planner.Legacy_planner.segments = env.nsegs; dp_limit = 5;
          broadcast_inner = false }
      accessor query
  in
  let prows, pm = Exec.Executor.run env.cluster pplan in
  print_endline "\n=== legacy Planner ===";
  print_string (Plan_ops.to_string pplan);
  let agree = List.length orows = List.length prows in
  Printf.printf
    "\nOrca %.5fs vs Planner %.5fs  =>  %.1fx speed-up  (row counts agree: %b)\n"
    om.Exec.Metrics.sim_seconds pm.Exec.Metrics.sim_seconds
    (pm.Exec.Metrics.sim_seconds /. Float.max 1e-9 om.Exec.Metrics.sim_seconds)
    agree

let memo_cmd dot env sql =
  let _, report = optimize env sql in
  if dot then print_string (Memolib.Memo.to_dot report.Orca.Optimizer.memo)
  else begin
    print_string (Memolib.Memo.to_string report.Orca.Optimizer.memo);
    Printf.printf "\nplans encoded for the root request: %.0f\n"
      (Memolib.Extract.count_plans report.Orca.Optimizer.memo
         (Memolib.Memo.root report.Orca.Optimizer.memo)
         report.Orca.Optimizer.root_req)
  end

let dxl_cmd env sql =
  let query, report = optimize env sql in
  print_endline "<!-- DXL query message -->";
  print_string (Dxl.Dxl_query.to_string query);
  print_endline "\n<!-- DXL plan message -->";
  print_string (Dxl.Dxl_plan.to_string report.Orca.Optimizer.plan)

(* Optimize with the static analyzers enabled and report their findings. *)
let lint_optimize env sql =
  let accessor =
    Catalog.Accessor.create ~provider:env.provider ~cache:env.cache ()
  in
  let query = Sqlfront.Binder.bind_sql accessor sql in
  Orca.Optimizer.optimize
    ~config:(Orca.Orca_config.with_verify (base_config env))
    accessor query

let lint_report label (report : Orca.Optimizer.report) =
  let diags = report.Orca.Optimizer.diagnostics in
  if diags = [] then
    Printf.printf "%-6s clean  (%d plan nodes, cost %.2f)\n" label
      (Plan_ops.node_count report.Orca.Optimizer.plan)
      report.Orca.Optimizer.plan.Expr.pcost
  else begin
    Printf.printf "%-6s %d error(s), %d warning(s)\n" label
      (Verify.Analyzer.error_count diags)
      (Verify.Diagnostic.count Verify.Diagnostic.Warning diags);
    print_string (Verify.Diagnostic.report_to_string diags)
  end;
  Verify.Analyzer.error_count diags

let lint_cmd suite verbose env sql =
  match (suite, sql) with
  | false, None ->
      prerr_endline "lint: provide a SQL query, or pass --suite";
      exit 2
  | false, Some sql ->
      let report = lint_optimize env sql in
      let nerr = lint_report "query" report in
      if verbose then
        print_string
          (Plan_ops.to_string ~show_props:true report.Orca.Optimizer.plan);
      if nerr > 0 then exit 1
  | true, _ ->
      let errors = ref 0 and warnings = ref 0 and skipped = ref 0 in
      List.iter
        (fun (q : Tpcds.Queries.def) ->
          let label = Printf.sprintf "q%d" q.Tpcds.Queries.qid in
          match lint_optimize env q.Tpcds.Queries.sql with
          | report ->
              errors := !errors + lint_report label report;
              warnings :=
                !warnings
                + Verify.Diagnostic.count Verify.Diagnostic.Warning
                    report.Orca.Optimizer.diagnostics
          | exception Orca.Optimizer.Unsupported_query msg ->
              incr skipped;
              Printf.printf "%-6s skipped (unsupported: %s)\n" label msg)
        (Lazy.force Tpcds.Queries.all);
      Printf.printf
        "\nlint: %d error(s), %d warning(s), %d unsupported across %d queries\n"
        !errors !warnings !skipped
        (List.length (Lazy.force Tpcds.Queries.all));
      if !errors > 0 then exit 1

(* --- the concurrency sanitizer (lib/sanitize) --- *)

let sanitize_optimize env ?fuzz_seed ?(workers = 1) ~record sql =
  let accessor =
    Catalog.Accessor.create ~provider:env.provider ~cache:env.cache ()
  in
  let query = Sqlfront.Binder.bind_sql accessor sql in
  let config =
    Orca.Orca_config.with_workers
      (Orca.Orca_config.with_segments Orca.Orca_config.default env.nsegs)
      workers
  in
  let config = if record then Orca.Orca_config.with_sanitize config else config in
  let config =
    match fuzz_seed with
    | None -> config
    | Some s -> Orca.Orca_config.with_fuzz_seed config s
  in
  Orca.Optimizer.optimize ~config accessor query

let plan_signature (report : Orca.Optimizer.report) =
  (Plan_ops.to_string report.Orca.Optimizer.plan,
   report.Orca.Optimizer.plan.Expr.pcost)

(* One query through the sanitizer: a traced sequential run, a traced
   [workers]-domain run checked for divergence against it, and [seeds]
   deterministic schedule permutations that must reproduce the sequential
   plan and cost exactly. *)
let sanitize_query env ~workers ~seeds label sql =
  let baseline = sanitize_optimize env ~record:true sql in
  let bsig = plan_signature baseline in
  let diags = ref baseline.Orca.Optimizer.diagnostics in
  if workers > 1 then begin
    let par = sanitize_optimize env ~workers ~record:true sql in
    diags :=
      !diags
      @ par.Orca.Optimizer.diagnostics
      @ Sanitize.Sanitizer.compare_runs
          ~label:(Printf.sprintf "%s (workers=%d)" label workers)
          ~baseline:bsig ~candidate:(plan_signature par)
  end;
  let seeds_ok = ref 0 in
  for seed = 1 to seeds do
    let fuzzed = sanitize_optimize env ~fuzz_seed:seed ~record:false sql in
    let d =
      Sanitize.Sanitizer.compare_runs
        ~label:(Printf.sprintf "%s (fuzz seed %d)" label seed)
        ~baseline:bsig ~candidate:(plan_signature fuzzed)
    in
    if d = [] then incr seeds_ok;
    diags := !diags @ d
  done;
  let diags = Verify.Diagnostic.sort !diags in
  let nerr = Verify.Analyzer.error_count diags in
  if nerr = 0 then
    Printf.printf "%-6s clean  (cost %.2f%s)\n" label (snd bsig)
      (if seeds > 0 then Printf.sprintf ", %d/%d seeds match" !seeds_ok seeds
       else "")
  else begin
    Printf.printf "%-6s %d error(s), %d warning(s)\n" label nerr
      (Verify.Diagnostic.count Verify.Diagnostic.Warning diags);
    print_string (Verify.Diagnostic.report_to_string diags)
  end;
  (nerr, Verify.Diagnostic.count Verify.Diagnostic.Warning diags)

let sanitize_cmd suite seeds env sql =
  let workers = env.workers in
  match (suite, sql) with
  | false, None ->
      prerr_endline "sanitize: provide a SQL query, or pass --suite";
      exit 2
  | false, Some sql ->
      let nerr, _ = sanitize_query env ~workers ~seeds "query" sql in
      if nerr > 0 then exit 1
  | true, _ ->
      let errors = ref 0 and warnings = ref 0 and skipped = ref 0 in
      List.iter
        (fun (q : Tpcds.Queries.def) ->
          let label = Printf.sprintf "q%d" q.Tpcds.Queries.qid in
          match
            sanitize_query env ~workers ~seeds label q.Tpcds.Queries.sql
          with
          | e, w ->
              errors := !errors + e;
              warnings := !warnings + w
          | exception Orca.Optimizer.Unsupported_query msg ->
              incr skipped;
              Printf.printf "%-6s skipped (unsupported: %s)\n" label msg)
        (Lazy.force Tpcds.Queries.all);
      Printf.printf
        "\nsanitize: %d error(s), %d warning(s), %d unsupported across %d \
         queries (workers=%d, seeds=%d)\n"
        !errors !warnings !skipped
        (List.length (Lazy.force Tpcds.Queries.all))
        workers seeds;
      if !errors > 0 then exit 1

(* --- the observability profiler (lib/obs) --- *)

(* Optimize one query with observability on and execute the plan; returns the
   per-query Obs report (spans stay with the session owner, the caller). *)
let profile_one env sql : Obs.Report.t =
  let accessor =
    Catalog.Accessor.create ~provider:env.provider ~cache:env.cache ()
  in
  let query = Sqlfront.Binder.bind_sql accessor sql in
  let config = Orca.Orca_config.with_obs (base_config env) in
  let report = Orca.Optimizer.optimize ~config accessor query in
  let obs =
    match report.Orca.Optimizer.obs with
    | Some r -> r
    | None -> Obs.Report.empty
  in
  let _rows, metrics =
    Obs.Span.with_ ~name:"execute" (fun () ->
        Exec.Executor.run env.cluster report.Orca.Optimizer.plan)
  in
  Obs.Report.with_exec obs (Exec.Metrics.to_kv metrics)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

(* Span self-consistency: children must not sum past their parent. *)
let profile_check spans =
  match Obs.Trace_export.check_consistency spans with
  | [] ->
      Printf.printf "span accounting: consistent (%d spans)\n"
        (List.length spans)
  | violations ->
      List.iter
        (fun v ->
          prerr_endline
            ("span accounting: " ^ Obs.Trace_export.violation_to_string v))
        violations;
      exit 1

let profile_finish ~trace ~top ~check ~flame (obs : Obs.Report.t) =
  (* the flame summary is per-path: useful for one query, a wall of text for
     a 111-query suite (the suite's spans still reach the trace file) *)
  let printed = if flame then obs else Obs.Report.with_spans obs [] in
  print_string (Obs.Report.to_string ~top printed);
  (match trace with
  | None -> ()
  | Some path ->
      write_file path (Obs.Trace_export.to_chrome_json obs.Obs.Report.spans);
      Printf.printf "\ntrace: %s (load in Perfetto or chrome://tracing)\n" path);
  if check then profile_check obs.Obs.Report.spans

let profile_cmd suite trace top check env sql =
  match (suite, sql) with
  | false, None ->
      prerr_endline "profile: provide a SQL query, or pass --suite";
      exit 2
  | false, Some sql ->
      (* the CLI owns the span session so parse/bind/execute are captured
         alongside the optimizer's own spans *)
      let obs, spans = Obs.Span.collect (fun () -> profile_one env sql) in
      profile_finish ~trace ~top ~check ~flame:true
        { (Obs.Report.with_spans obs spans) with Obs.Report.label = "query" }
  | true, _ ->
      let reports = ref [] and skipped = ref 0 in
      let (), spans =
        Obs.Span.collect (fun () ->
            List.iter
              (fun (q : Tpcds.Queries.def) ->
                let label = Printf.sprintf "q%d" q.Tpcds.Queries.qid in
                match
                  Obs.Span.with_ ~name:label (fun () ->
                      profile_one env q.Tpcds.Queries.sql)
                with
                | obs ->
                    reports := { obs with Obs.Report.label } :: !reports
                | exception Orca.Optimizer.Unsupported_query msg ->
                    incr skipped;
                    Printf.printf "%-6s skipped (unsupported: %s)\n" label msg)
              (Lazy.force Tpcds.Queries.all))
      in
      let merged =
        {
          (Obs.Report.merge_all (List.rev !reports)) with
          Obs.Report.label = "tpcds-suite";
        }
      in
      Printf.printf "profiled %d queries (%d unsupported)\n\n"
        merged.Obs.Report.queries !skipped;
      profile_finish ~trace ~top ~check ~flame:false
        (Obs.Report.with_spans merged spans)

let queries_cmd () =
  List.iter
    (fun (q : Tpcds.Queries.def) ->
      Printf.printf "q%-4d %-18s %s\n" q.Tpcds.Queries.qid
        q.Tpcds.Queries.family
        (String.concat ","
           (List.map Tpcds.Features.to_string q.Tpcds.Queries.features)))
    (Lazy.force Tpcds.Queries.all)

(* --- cmdliner wiring --- *)

let sf_arg =
  Arg.(value & opt float 0.1 & info [ "sf" ] ~docv:"SF" ~doc:"Scale factor.")

let segs_arg =
  Arg.(value & opt int 8 & info [ "segs" ] ~docv:"N" ~doc:"Cluster segments.")

let workers_arg =
  Arg.(
    value & opt int 1
    & info [ "workers" ] ~docv:"N"
        ~doc:"Optimization worker domains (paper \\u{00a7}4.2).")

let sql_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SQL")

let with_env f =
  Term.(
    const (fun sf segs workers sql -> f (make_env sf segs workers) sql)
    $ sf_arg $ segs_arg $ workers_arg $ sql_arg)

let cmd name doc f = Cmd.v (Cmd.info name ~doc) (with_env f)

let () =
  let info =
    Cmd.info "orca_cli" ~version:"1.0"
      ~doc:"Query the simulated MPP warehouse through the Orca optimizer"
  in
  let cmds =
    [
      cmd "run" "Optimize and execute a query; print results." run_cmd;
      (let analyze_arg =
         Arg.(
           value & flag
           & info [ "analyze" ]
               ~doc:
                 "Execute the plan and print actual vs estimated rows (the \
                  cardinality error) and per-operator simulated time.")
       in
       Cmd.v
         (Cmd.info "explain"
            ~doc:"Print the optimized plan and search statistics.")
         Term.(
           const (fun analyze sf segs workers sql ->
               explain_cmd analyze (make_env sf segs workers) sql)
           $ analyze_arg $ sf_arg $ segs_arg $ workers_arg $ sql_arg));
      cmd "compare" "Orca vs the legacy Planner: plans and simulated times."
        compare_cmd;
      (let dot_arg =
         Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz instead of text.")
       in
       Cmd.v
         (Cmd.info "memo" ~doc:"Dump the Memo after optimization.")
         Term.(
           const (fun dot sf segs sql -> memo_cmd dot (make_env sf segs 1) sql)
           $ dot_arg $ sf_arg $ segs_arg $ sql_arg));
      cmd "dxl" "Print the DXL query and plan messages." dxl_cmd;
      (let suite_arg =
         Arg.(
           value & flag
           & info [ "suite" ]
               ~doc:"Lint every bundled TPC-DS query instead of one SQL string.")
       in
       let verbose_arg =
         Arg.(
           value & flag
           & info [ "verbose"; "v" ]
               ~doc:"Also print the plan with derived properties per node.")
       in
       let sql_opt_arg =
         Arg.(value & pos 0 (some string) None & info [] ~docv:"SQL")
       in
       Cmd.v
         (Cmd.info "lint"
            ~doc:
              "Run the static plan/Memo/DXL analyzers; exit nonzero on \
               error-severity diagnostics.")
         Term.(
           const (fun suite verbose sf segs sql ->
               lint_cmd suite verbose (make_env sf segs 1) sql)
           $ suite_arg $ verbose_arg $ sf_arg $ segs_arg $ sql_opt_arg));
      (let suite_arg =
         Arg.(
           value & flag
           & info [ "suite" ]
               ~doc:
                 "Sanitize every bundled TPC-DS query instead of one SQL \
                  string.")
       in
       let seeds_arg =
         Arg.(
           value & opt int 0
           & info [ "seeds" ] ~docv:"K"
               ~doc:
                 "Also run K deterministic schedule permutations and require \
                  the sequential plan and cost to be reproduced exactly.")
       in
       let sql_opt_arg =
         Arg.(value & pos 0 (some string) None & info [] ~docv:"SQL")
       in
       Cmd.v
         (Cmd.info "sanitize"
            ~doc:
              "Run the concurrency sanitizer: record a scheduler/Memo trace, \
               detect data races and goal-queue deadlocks, and check that \
               parallel and fuzzed schedules reproduce the sequential plan. \
               Exits nonzero on error-severity diagnostics.")
         Term.(
           const (fun suite seeds sf segs workers sql ->
               sanitize_cmd suite seeds (make_env sf segs workers) sql)
           $ suite_arg $ seeds_arg $ sf_arg $ segs_arg $ workers_arg
           $ sql_opt_arg));
      (let suite_arg =
         Arg.(
           value & flag
           & info [ "suite" ]
               ~doc:
                 "Profile every bundled TPC-DS query instead of one SQL \
                  string.")
       in
       let trace_arg =
         Arg.(
           value
           & opt (some string) None
           & info [ "trace" ] ~docv:"PATH"
               ~doc:
                 "Write the span trace as Chrome trace_event JSON (load in \
                  Perfetto or chrome://tracing).")
       in
       let top_arg =
         Arg.(
           value & opt int 10
           & info [ "top" ] ~docv:"N"
               ~doc:"Show the N most expensive rules in the profile.")
       in
       let check_arg =
         Arg.(
           value & flag
           & info [ "check" ]
               ~doc:
                 "Verify span accounting (children must not sum past their \
                  parent); exit nonzero on violations.")
       in
       let sql_opt_arg =
         Arg.(value & pos 0 (some string) None & info [] ~docv:"SQL")
       in
       Cmd.v
         (Cmd.info "profile"
            ~doc:
              "Optimize and execute with full observability: per-rule and \
               per-stage profiles, Memo growth, scheduler utilization, \
               execution metrics, and an exportable span trace.")
         Term.(
           const (fun suite trace top check sf segs workers sql ->
               profile_cmd suite trace top check (make_env sf segs workers) sql)
           $ suite_arg $ trace_arg $ top_arg $ check_arg $ sf_arg $ segs_arg
           $ workers_arg $ sql_opt_arg));
      Cmd.v
        (Cmd.info "queries" ~doc:"List the 111-query workload with features.")
        Term.(const queries_cmd $ const ());
    ]
  in
  try exit (Cmd.eval ~catch:false (Cmd.group info cmds)) with
  | Gpos.Gpos_error.Error (_, msg) ->
      prerr_endline ("error: " ^ msg);
      exit 1
  | Orca.Optimizer.Unsupported_query msg ->
      prerr_endline ("unsupported query: " ^ msg);
      exit 1

(* orca_cli: an interactive front door to the whole system.

     dune exec bin/orca_cli.exe -- run "SELECT ..." [--sf 0.2] [--segs 8]
     dune exec bin/orca_cli.exe -- explain "SELECT ..."
     dune exec bin/orca_cli.exe -- compare "SELECT ..."     (Orca vs Planner)
     dune exec bin/orca_cli.exe -- memo "SELECT ..."        (dump the Memo)
     dune exec bin/orca_cli.exe -- dxl "SELECT ..."         (query+plan DXL)
     dune exec bin/orca_cli.exe -- queries                  (list the workload)

   Queries run against the mini-TPC-DS warehouse (generated in-process). *)

open Ir
open Cmdliner

type env = {
  cluster : Exec.Cluster.t;
  provider : Catalog.Provider.t;
  cache : Catalog.Md_cache.t;
  nsegs : int;
  workers : int;
}

let make_env sf nsegs workers =
  let db = Tpcds.Datagen.generate ~sf () in
  let e = Engines.Engine.create_env ~nsegs db in
  {
    cluster =
      Engines.Engine.cluster_for e ~mem_per_seg:(64.0 *. 1024.0 *. 1024.0);
    provider = e.Engines.Engine.provider;
    cache = e.Engines.Engine.cache;
    nsegs;
    workers;
  }

let base_config env =
  Orca.Orca_config.with_workers
    (Orca.Orca_config.with_segments Orca.Orca_config.default env.nsegs)
    env.workers

let optimize_with env config sql =
  let accessor =
    Catalog.Accessor.create ~provider:env.provider ~cache:env.cache ()
  in
  let query = Sqlfront.Binder.bind_sql accessor sql in
  (query, Orca.Optimizer.optimize ~config accessor query)

let optimize env sql = optimize_with env (base_config env) sql

(* Optimize through the flight recorder: parse/bind timed into the phase
   histogram, the query summary recorded into the ring buffer, and slow or
   failing queries recaptured as AMPERe dumps when
   [Telemetry.Recorder.configure] armed the trigger. *)
let flight_optimize env ?config ~label sql =
  let config = match config with Some c -> c | None -> base_config env in
  let make_accessor () =
    Catalog.Accessor.create ~provider:env.provider ~cache:env.cache ()
  in
  let bind_accessor = make_accessor () in
  let query =
    Telemetry.Std.time_phase "parse-bind" (fun () ->
        Sqlfront.Binder.bind_sql bind_accessor sql)
  in
  Catalog.Accessor.release bind_accessor;
  (query, Orca.Flight.optimize ~config ~label ~make_accessor query)

(* The suite-iteration pattern shared by every --suite subcommand: run [f]
   once per bundled TPC-DS query, count clean [Unsupported_query] rejects,
   and return how many were skipped. *)
let for_each_query ?(log = print_string) f =
  let skipped = ref 0 in
  List.iter
    (fun (q : Tpcds.Queries.def) ->
      let label = Printf.sprintf "q%d" q.Tpcds.Queries.qid in
      match f label q.Tpcds.Queries.sql with
      | () -> ()
      | exception Orca.Optimizer.Unsupported_query msg ->
          incr skipped;
          log (Printf.sprintf "%-6s skipped (unsupported: %s)\n" label msg))
    (Lazy.force Tpcds.Queries.all);
  !skipped

(* Join per-node actual row counts (stable preorder ids, Metrics.node_rows)
   against the plan's estimates. *)
let accuracy_of ~(metrics : Exec.Metrics.t) (plan : Expr.plan) :
    Prov.Accuracy.t =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (id, rows) -> Hashtbl.replace tbl id rows)
    (Exec.Metrics.node_rows metrics);
  Prov.Accuracy.of_plan ~actual:(Hashtbl.find_opt tbl) plan

(* Deterministic rendering order: the "(all)" summary row first, then the
   operator classes alphabetically. *)
let sort_acc_stats (stats : Obs.Report.acc_stat list) =
  List.sort
    (fun (a : Obs.Report.acc_stat) (b : Obs.Report.acc_stat) ->
      match (a.Obs.Report.a_class, b.Obs.Report.a_class) with
      | "(all)", "(all)" -> 0
      | "(all)", _ -> -1
      | _, "(all)" -> 1
      | x, y -> compare x y)
    stats

let print_acc_stats (stats : Obs.Report.acc_stat list) =
  Printf.printf "\ncardinality accuracy (Q-error by operator class):\n";
  Printf.printf "  %-24s %8s %10s %10s %12s\n" "class" "nodes" "geomean" "max"
    "unobserved";
  List.iter
    (fun (a : Obs.Report.acc_stat) ->
      Printf.printf "  %-24s %8d %10.3f %10.3f %12d\n" a.Obs.Report.a_class
        a.Obs.Report.a_nodes (Obs.Report.acc_geomean a) a.Obs.Report.a_max
        a.Obs.Report.a_unobserved)
    stats

let print_rows rows =
  List.iter
    (fun row ->
      print_endline
        (String.concat " | " (List.map Datum.to_string (Array.to_list row))))
    rows;
  Printf.printf "(%d rows)\n" (List.length rows)

(* --- subcommands --- *)

let run_cmd env sql =
  let _, report = flight_optimize env ~label:"query" sql in
  let rows, metrics = Exec.Executor.run env.cluster report.Orca.Optimizer.plan in
  print_rows rows;
  Printf.printf "\n%s\noptimization: %.1f ms, %d groups, %d group expressions\n"
    (Exec.Metrics.to_string metrics)
    report.Orca.Optimizer.opt_time_ms report.Orca.Optimizer.groups
    report.Orca.Optimizer.gexprs

(* EXPLAIN ANALYZE: execute the plan with the per-operator observe hook and
   print estimated vs actual rows (the cardinality error) and the inclusive
   simulated time next to each node. *)
let explain_analyze env (report : Orca.Optimizer.report) =
  let plan = report.Orca.Optimizer.plan in
  let observed : (Expr.plan * float * float) list ref = ref [] in
  let observe p ~rows ~sim_s = observed := (p, rows, sim_s) :: !observed in
  let _rows, metrics = Exec.Executor.run ~observe env.cluster plan in
  let buf = Buffer.create 1024 in
  let rec walk depth (p : Expr.plan) =
    let name = Physical_ops.to_string p.Expr.pop in
    let name =
      if String.length name > 44 then String.sub name 0 44 else name
    in
    let line =
      (* the executor reports DPE-rewritten scan copies under the original
         node, so every node that ran (Motion and enforcers included) has an
         observation; a genuinely never-evaluated node shows as unknown *)
      match List.find_opt (fun (p', _, _) -> p' == p) !observed with
      | Some (_, rows, sim_s) ->
          let q = Prov.Accuracy.qerror ~est:p.Expr.pest_rows ~act:rows in
          let err =
            if q < 1.005 then "ok"
            else
              Printf.sprintf "%.2fx %s" q
                (if p.Expr.pest_rows > rows then "over" else "under")
          in
          Printf.sprintf "est=%10.0f  act=%10.0f  err=%-14s time=%9.5fs"
            p.Expr.pest_rows rows err sim_s
      | None ->
          Printf.sprintf "est=%10.0f  act=%10s  err=%-14s time=%9s"
            p.Expr.pest_rows "-" "-" "-"
    in
    Buffer.add_string buf
      (Printf.sprintf "%-48s %s\n"
         (String.make (2 * depth) ' ' ^ "-> " ^ name)
         line);
    List.iter (walk (depth + 1)) p.Expr.pchildren
  in
  walk 0 plan;
  print_string (Buffer.contents buf);
  print_acc_stats (sort_acc_stats (Prov.Accuracy.to_acc_stats (accuracy_of ~metrics plan)));
  Printf.printf "\n%s\n" (Exec.Metrics.to_string metrics)

let explain_cmd ~analyze ~why env sql =
  let config =
    if why then Orca.Orca_config.with_prov (base_config env)
    else base_config env
  in
  let _, report = optimize_with env config sql in
  if analyze then explain_analyze env report
  else if not why then
    (* the --why rendering below includes the plan tree *)
    print_string (Plan_ops.to_string report.Orca.Optimizer.plan);
  (match report.Orca.Optimizer.prov with
  | Some prov when why ->
      if analyze then print_newline ();
      print_string (Prov.Provenance.why_to_string prov)
  | _ -> ());
  Printf.printf
    "\nstage=%s  groups=%d  gexprs=%d  contexts=%d  xforms=%d  jobs=%d  \
     opt=%.1fms\n"
    report.Orca.Optimizer.stage_name report.Orca.Optimizer.groups
    report.Orca.Optimizer.gexprs report.Orca.Optimizer.contexts
    report.Orca.Optimizer.xforms report.Orca.Optimizer.jobs_created
    report.Orca.Optimizer.opt_time_ms

let compare_cmd env sql =
  let _, report = optimize env sql in
  let orows, om = Exec.Executor.run env.cluster report.Orca.Optimizer.plan in
  print_endline "=== Orca ===";
  print_string (Plan_ops.to_string report.Orca.Optimizer.plan);
  let accessor =
    Catalog.Accessor.create ~provider:env.provider ~cache:env.cache ()
  in
  let query = Sqlfront.Binder.bind_sql accessor sql in
  let pplan =
    Planner.Legacy_planner.plan_sql
      ~config:
        { Planner.Legacy_planner.segments = env.nsegs; dp_limit = 5;
          broadcast_inner = false }
      accessor query
  in
  let prows, pm = Exec.Executor.run env.cluster pplan in
  print_endline "\n=== legacy Planner ===";
  print_string (Plan_ops.to_string pplan);
  let agree = List.length orows = List.length prows in
  Printf.printf
    "\nOrca %.5fs vs Planner %.5fs  =>  %.1fx speed-up  (row counts agree: %b)\n"
    om.Exec.Metrics.sim_seconds pm.Exec.Metrics.sim_seconds
    (pm.Exec.Metrics.sim_seconds /. Float.max 1e-9 om.Exec.Metrics.sim_seconds)
    agree

let memo_cmd dot env sql =
  let _, report = optimize env sql in
  if dot then print_string (Memolib.Memo.to_dot report.Orca.Optimizer.memo)
  else begin
    print_string (Memolib.Memo.to_string report.Orca.Optimizer.memo);
    Printf.printf "\nplans encoded for the root request: %.0f\n"
      (Memolib.Extract.count_plans report.Orca.Optimizer.memo
         (Memolib.Memo.root report.Orca.Optimizer.memo)
         report.Orca.Optimizer.root_req)
  end

let dxl_cmd env sql =
  let query, report = optimize env sql in
  print_endline "<!-- DXL query message -->";
  print_string (Dxl.Dxl_query.to_string query);
  print_endline "\n<!-- DXL plan message -->";
  print_string (Dxl.Dxl_plan.to_string report.Orca.Optimizer.plan)

(* --- cardinality accuracy (lib/prov) --- *)

(* Optimize with provenance on, execute, and join estimates against actuals.
   [annotate] already fails hard on any plan/Memo misalignment; the node
   counts are re-checked here so the suite doubles as a coverage test. *)
let accuracy_one env label sql : Prov.Accuracy.t =
  let _, report =
    optimize_with env (Orca.Orca_config.with_prov (base_config env)) sql
  in
  let plan = report.Orca.Optimizer.plan in
  (match report.Orca.Optimizer.prov with
  | Some p ->
      let covered = List.length p.Prov.Provenance.p_nodes in
      let nodes = Plan_ops.node_count plan in
      if covered <> nodes then
        Gpos.Gpos_error.internal "%s: provenance covers %d of %d plan nodes"
          label covered nodes
  | None ->
      Gpos.Gpos_error.internal "%s: optimizer returned no provenance" label);
  let _rows, metrics = Exec.Executor.run env.cluster plan in
  accuracy_of ~metrics plan

let write_file = Emit.write_file

(* The committed-baseline shape (BENCH_accuracy.json): bench/gate.ml reads
   the "summary" object, same as the opt-speed baseline. *)
let acc_stats_json ~sf ~segs ~queries ~unsupported
    (stats : Obs.Report.acc_stat list) =
  Emit.render
    (Emit.Obj
       [
         ("bench", Emit.Str "accuracy");
         ("sf", Emit.Gfloat sf);
         ("segments", Emit.Int segs);
         ( "summary",
           Emit.Obj
             [
               ("queries", Emit.Int queries);
               ("unsupported", Emit.Int unsupported);
               ( "classes",
                 Emit.List
                   (List.map
                      (fun (a : Obs.Report.acc_stat) ->
                        Emit.Obj
                          [
                            ("class", Emit.Str a.Obs.Report.a_class);
                            ("nodes", Emit.Int a.Obs.Report.a_nodes);
                            ("geomean", Emit.Float (Obs.Report.acc_geomean a));
                            ("max", Emit.Float a.Obs.Report.a_max);
                            ("unobserved", Emit.Int a.Obs.Report.a_unobserved);
                          ])
                      stats) );
             ] );
       ])

let acc_write_json ~sf ~segs ~queries ~unsupported stats = function
  | None -> ()
  | Some path ->
      write_file path (acc_stats_json ~sf ~segs ~queries ~unsupported stats);
      Printf.printf "\nwrote %s\n" path

let accuracy_cmd suite json ~sf env sql =
  match (suite, sql) with
  | false, None ->
      prerr_endline "accuracy: provide a SQL query, or pass --suite";
      exit 2
  | false, Some sql ->
      let acc = accuracy_one env "query" sql in
      print_string (Prov.Accuracy.to_string acc);
      let stats = sort_acc_stats (Prov.Accuracy.to_acc_stats acc) in
      print_acc_stats stats;
      acc_write_json ~sf ~segs:env.nsegs ~queries:1 ~unsupported:0 stats json
  | true, _ ->
      let reports = ref [] and measured = ref 0 in
      let skipped =
        for_each_query (fun label sql ->
            let acc = accuracy_one env label sql in
            incr measured;
            let stats = Prov.Accuracy.to_acc_stats acc in
            (match
               List.find_opt
                 (fun (a : Obs.Report.acc_stat) ->
                   a.Obs.Report.a_class = "(all)")
                 stats
             with
            | Some a ->
                Printf.printf "%-6s observed=%-3d geomean=%8.3f max=%10.3f\n"
                  label a.Obs.Report.a_nodes (Obs.Report.acc_geomean a)
                  a.Obs.Report.a_max
            | None -> Printf.printf "%-6s (no observed nodes)\n" label);
            reports := Obs.Report.with_acc Obs.Report.empty stats :: !reports)
      in
      let merged = Obs.Report.merge_all (List.rev !reports) in
      let stats = sort_acc_stats merged.Obs.Report.acc in
      print_acc_stats stats;
      Printf.printf "\naccuracy: %d queries measured, %d unsupported\n"
        !measured skipped;
      acc_write_json ~sf ~segs:env.nsegs ~queries:!measured ~unsupported:skipped
        stats json

(* --- structural plan diff (lib/prov) --- *)

let speedup_off config = function
  | "interning" -> Orca.Orca_config.with_interning config false
  | "stats_memo" -> Orca.Orca_config.with_stats_memo config false
  | "rule_prefilter" -> Orca.Orca_config.with_rule_prefilter config false
  | "winner_reuse" -> Orca.Orca_config.with_winner_reuse config false
  (* not a speedup: strips the trace id the diff run carries by default,
     A/B-ing the sre observability plumbing against a dark run (plans must
     come out identical) *)
  | "sre" -> Orca.Orca_config.without_trace_id config
  | "all" -> Orca.Orca_config.without_speedups config
  | other ->
      prerr_endline
        ("diff: unknown speedup flag '" ^ other
       ^ "' (expected interning, stats_memo, rule_prefilter, winner_reuse, \
          sre or all)");
      exit 2

let split_flags s =
  if s = "" then []
  else
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.filter (fun x -> x <> "")

(* Compare two runs of the same query under different optimizer
   configurations, or two AMPERe dumps. Exits 1 on divergence, mirroring
   lint's convention. *)
let diff_cmd off_a off_b strata_a strata_b dump_a dump_b (env : env Lazy.t)
    sql =
  let plan_a, plan_b, prov_a, prov_b, label_a, label_b =
    match (dump_a, dump_b, sql) with
    | Some da, Some db, _ ->
        let plan_of path =
          let d = Orca.Ampere.load path in
          match d.Orca.Ampere.expected_plan with
          | Some p -> p
          | None -> (Orca.Ampere.replay d).Orca.Optimizer.plan
        in
        (plan_of da, plan_of db, None, None, da, db)
    | None, None, Some sql ->
        let env = Lazy.force env in
        (* stratification computed once, only if a side asks for it *)
        let strata = lazy (Interact.strata (Interact.run ())) in
        let run offs use_strata =
          (* the diff run carries a trace id so `--off-b sre` can A/B the
             observability plumbing; it must never affect the plan *)
          let config =
            List.fold_left speedup_off
              (Orca.Orca_config.with_trace_id
                 (Orca.Orca_config.with_prov (base_config env))
                 "diff")
              (split_flags offs)
          in
          let config =
            if use_strata then
              Orca.Orca_config.with_strata config (Lazy.force strata)
            else config
          in
          let _, report = optimize_with env config sql in
          (report.Orca.Optimizer.plan, report.Orca.Optimizer.prov)
        in
        let describe offs use_strata =
          (if offs = "" then "all speedups on" else "off: " ^ offs)
          ^ if use_strata then ", strata order" else ""
        in
        let pa, va = run off_a strata_a and pb, vb = run off_b strata_b in
        (pa, pb, va, vb, describe off_a strata_a, describe off_b strata_b)
    | _ ->
        prerr_endline
          "diff: provide SQL (with --off-a/--off-b), or both --dump-a and \
           --dump-b";
        exit 2
  in
  Printf.printf "A: %s\nB: %s\n\n" label_a label_b;
  let d = Prov.Plan_diff.diff plan_a plan_b in
  print_string (Prov.Plan_diff.to_string ?prov_a ?prov_b d);
  if not d.Prov.Plan_diff.d_identical then exit 1

(* Optimize with the static analyzers enabled and report their findings. *)
let lint_optimize env sql =
  let accessor =
    Catalog.Accessor.create ~provider:env.provider ~cache:env.cache ()
  in
  let query = Sqlfront.Binder.bind_sql accessor sql in
  Orca.Optimizer.optimize
    ~config:(Orca.Orca_config.with_verify (base_config env))
    accessor query

let lint_report label (report : Orca.Optimizer.report) =
  let diags = report.Orca.Optimizer.diagnostics in
  if diags = [] then
    Printf.printf "%-6s clean  (%d plan nodes, cost %.2f)\n" label
      (Plan_ops.node_count report.Orca.Optimizer.plan)
      report.Orca.Optimizer.plan.Expr.pcost
  else begin
    Printf.printf "%-6s %d error(s), %d warning(s)\n" label
      (Verify.Analyzer.error_count diags)
      (Verify.Diagnostic.count Verify.Diagnostic.Warning diags);
    print_string (Verify.Diagnostic.report_to_string diags)
  end;
  Verify.Analyzer.error_count diags

let lint_cmd suite verbose env sql =
  match (suite, sql) with
  | false, None ->
      prerr_endline "lint: provide a SQL query, or pass --suite";
      exit 2
  | false, Some sql ->
      let report = lint_optimize env sql in
      let nerr = lint_report "query" report in
      if verbose then
        print_string
          (Plan_ops.to_string ~show_props:true report.Orca.Optimizer.plan);
      if nerr > 0 then exit 1
  | true, _ ->
      let errors = ref 0 and warnings = ref 0 in
      let skipped =
        for_each_query (fun label sql ->
            let report = lint_optimize env sql in
            errors := !errors + lint_report label report;
            warnings :=
              !warnings
              + Verify.Diagnostic.count Verify.Diagnostic.Warning
                  report.Orca.Optimizer.diagnostics)
      in
      Printf.printf
        "\nlint: %d error(s), %d warning(s), %d unsupported across %d queries\n"
        !errors !warnings skipped
        (List.length (Lazy.force Tpcds.Queries.all));
      if !errors > 0 then exit 1

(* --- the concurrency sanitizer (lib/sanitize) --- *)

let sanitize_optimize env ?fuzz_seed ?(workers = 1) ~record sql =
  let accessor =
    Catalog.Accessor.create ~provider:env.provider ~cache:env.cache ()
  in
  let query = Sqlfront.Binder.bind_sql accessor sql in
  let config =
    Orca.Orca_config.with_workers
      (Orca.Orca_config.with_segments Orca.Orca_config.default env.nsegs)
      workers
  in
  let config = if record then Orca.Orca_config.with_sanitize config else config in
  let config =
    match fuzz_seed with
    | None -> config
    | Some s -> Orca.Orca_config.with_fuzz_seed config s
  in
  Orca.Optimizer.optimize ~config accessor query

let plan_signature (report : Orca.Optimizer.report) =
  (Plan_ops.to_string report.Orca.Optimizer.plan,
   report.Orca.Optimizer.plan.Expr.pcost)

(* One query through the sanitizer: a traced sequential run, a traced
   [workers]-domain run checked for divergence against it, and [seeds]
   deterministic schedule permutations that must reproduce the sequential
   plan and cost exactly. *)
let sanitize_query env ~workers ~seeds label sql =
  let baseline = sanitize_optimize env ~record:true sql in
  let bsig = plan_signature baseline in
  let diags = ref baseline.Orca.Optimizer.diagnostics in
  if workers > 1 then begin
    let par = sanitize_optimize env ~workers ~record:true sql in
    diags :=
      !diags
      @ par.Orca.Optimizer.diagnostics
      @ Sanitize.Sanitizer.compare_runs
          ~label:(Printf.sprintf "%s (workers=%d)" label workers)
          ~baseline:bsig ~candidate:(plan_signature par)
  end;
  let seeds_ok = ref 0 in
  for seed = 1 to seeds do
    let fuzzed = sanitize_optimize env ~fuzz_seed:seed ~record:false sql in
    let d =
      Sanitize.Sanitizer.compare_runs
        ~label:(Printf.sprintf "%s (fuzz seed %d)" label seed)
        ~baseline:bsig ~candidate:(plan_signature fuzzed)
    in
    if d = [] then incr seeds_ok;
    diags := !diags @ d
  done;
  let diags = Verify.Diagnostic.sort !diags in
  let nerr = Verify.Analyzer.error_count diags in
  if nerr = 0 then
    Printf.printf "%-6s clean  (cost %.2f%s)\n" label (snd bsig)
      (if seeds > 0 then Printf.sprintf ", %d/%d seeds match" !seeds_ok seeds
       else "")
  else begin
    Printf.printf "%-6s %d error(s), %d warning(s)\n" label nerr
      (Verify.Diagnostic.count Verify.Diagnostic.Warning diags);
    print_string (Verify.Diagnostic.report_to_string diags)
  end;
  (nerr, Verify.Diagnostic.count Verify.Diagnostic.Warning diags)

let sanitize_cmd suite seeds env sql =
  let workers = env.workers in
  match (suite, sql) with
  | false, None ->
      prerr_endline "sanitize: provide a SQL query, or pass --suite";
      exit 2
  | false, Some sql ->
      let nerr, _ = sanitize_query env ~workers ~seeds "query" sql in
      if nerr > 0 then exit 1
  | true, _ ->
      let errors = ref 0 and warnings = ref 0 in
      let skipped =
        for_each_query (fun label sql ->
            let e, w = sanitize_query env ~workers ~seeds label sql in
            errors := !errors + e;
            warnings := !warnings + w)
      in
      Printf.printf
        "\nsanitize: %d error(s), %d warning(s), %d unsupported across %d \
         queries (workers=%d, seeds=%d)\n"
        !errors !warnings skipped
        (List.length (Lazy.force Tpcds.Queries.all))
        workers seeds;
      if !errors > 0 then exit 1

(* --- the observability profiler (lib/obs) --- *)

(* Optimize one query with observability on and execute the plan; returns the
   per-query Obs report (spans stay with the session owner, the caller). *)
let profile_one env sql : Obs.Report.t =
  let accessor =
    Catalog.Accessor.create ~provider:env.provider ~cache:env.cache ()
  in
  let query = Sqlfront.Binder.bind_sql accessor sql in
  let config = Orca.Orca_config.with_obs (base_config env) in
  let report = Orca.Optimizer.optimize ~config accessor query in
  let obs =
    match report.Orca.Optimizer.obs with
    | Some r -> r
    | None -> Obs.Report.empty
  in
  let _rows, metrics =
    Obs.Span.with_ ~name:"execute" (fun () ->
        Exec.Executor.run env.cluster report.Orca.Optimizer.plan)
  in
  let acc =
    Prov.Accuracy.to_acc_stats
      (accuracy_of ~metrics report.Orca.Optimizer.plan)
  in
  (* the per-node actuals feed the accuracy join above; keep them out of the
     exec key/values, which merge by summing across a suite *)
  let kv =
    List.filter
      (fun (k, _) -> not (String.starts_with ~prefix:"node_rows." k))
      (Exec.Metrics.to_kv metrics)
  in
  Obs.Report.with_acc (Obs.Report.with_exec obs kv) acc

(* Span self-consistency: children must not sum past their parent. *)
let profile_check spans =
  match Obs.Trace_export.check_consistency spans with
  | [] ->
      Printf.printf "span accounting: consistent (%d spans)\n"
        (List.length spans)
  | violations ->
      List.iter
        (fun v ->
          prerr_endline
            ("span accounting: " ^ Obs.Trace_export.violation_to_string v))
        violations;
      exit 1

let profile_finish ~trace ~top ~check ~flame (obs : Obs.Report.t) =
  (* the flame summary is per-path: useful for one query, a wall of text for
     a 111-query suite (the suite's spans still reach the trace file) *)
  let printed = if flame then obs else Obs.Report.with_spans obs [] in
  print_string (Obs.Report.to_string ~top printed);
  (match trace with
  | None -> ()
  | Some path ->
      write_file path (Obs.Trace_export.to_chrome_json obs.Obs.Report.spans);
      Printf.printf "\ntrace: %s (load in Perfetto or chrome://tracing)\n" path);
  if check then profile_check obs.Obs.Report.spans

let profile_cmd suite trace top check env sql =
  match (suite, sql) with
  | false, None ->
      prerr_endline "profile: provide a SQL query, or pass --suite";
      exit 2
  | false, Some sql ->
      (* the CLI owns the span session so parse/bind/execute are captured
         alongside the optimizer's own spans *)
      let obs, spans = Obs.Span.collect (fun () -> profile_one env sql) in
      profile_finish ~trace ~top ~check ~flame:true
        { (Obs.Report.with_spans obs spans) with Obs.Report.label = "query" }
  | true, _ ->
      let reports = ref [] in
      let skipped, spans =
        Obs.Span.collect (fun () ->
            for_each_query (fun label sql ->
                let obs =
                  Obs.Span.with_ ~name:label (fun () -> profile_one env sql)
                in
                reports := { obs with Obs.Report.label } :: !reports))
      in
      let merged =
        {
          (Obs.Report.merge_all (List.rev !reports)) with
          Obs.Report.label = "tpcds-suite";
        }
      in
      Printf.printf "profiled %d queries (%d unsupported)\n\n"
        merged.Obs.Report.queries skipped;
      profile_finish ~trace ~top ~check ~flame:false
        (Obs.Report.with_spans merged spans)

(* --- always-on telemetry (lib/telemetry) --- *)

(* Wall-time metrics measure the machine as much as the optimizer: when
   diffing snapshots, give them a generous ceiling unless the caller's
   tolerance is already larger. *)
let time_overrides tolerance =
  let t = Float.max tolerance 4.0 in
  [
    ("orca_opt_ms", t);
    ("orca_phase_ms", t);
    ("orca_exec_sim_ms", t);
    ("orca_peak_heap_mb", t);
    ("orca_queue_depth_max", t);
  ]

(* Expose the always-on registry: optionally drive one query or the whole
   suite through the flight recorder first, then emit Prometheus text or a
   JSON snapshot, lint the exposition, and/or diff against a baseline
   snapshot. Progress/skip notices go to stderr so stdout stays a valid
   exposition. *)
let metrics_cmd suite as_json lint out baseline tolerance slow_ms flight_dir
    (env : env Lazy.t) sql =
  (match slow_ms with
  | Some v -> Telemetry.Recorder.configure ~slow_ms:(Some v) ()
  | None -> ());
  (match flight_dir with
  | Some d ->
      if not (Sys.file_exists d) then Sys.mkdir d 0o755;
      Telemetry.Recorder.configure ~dump_dir:(Some d) ()
  | None -> ());
  (match (suite, sql) with
  | true, _ ->
      let env = Lazy.force env in
      let skipped =
        for_each_query ~log:Progress.log (fun label sql ->
            ignore (flight_optimize env ~label sql))
      in
      Progress.suite_done ~what:"metrics"
        ~total:(List.length (Lazy.force Tpcds.Queries.all))
        ~skipped
  | false, Some sql ->
      let env = Lazy.force env in
      ignore (flight_optimize env ~label:"query" sql)
  | false, None -> ());
  let snap = Telemetry.Metrics.snapshot Telemetry.Metrics.default in
  let flight = Telemetry.Recorder.entries () in
  let prom = Telemetry.Expose.to_prometheus snap in
  let json = Telemetry.Expose.to_json ~flight snap in
  let body = if as_json then json else prom in
  (match out with
  | Some path ->
      write_file path body;
      Progress.wrote path
  | None -> if baseline = None then print_string body);
  if lint then begin
    match Telemetry.Expose.lint_prometheus prom with
    | [] -> prerr_endline "prometheus lint: clean"
    | problems ->
        List.iter (fun p -> prerr_endline ("prometheus lint: " ^ p)) problems;
        exit 1
  end;
  match baseline with
  | None -> ()
  | Some path -> (
      let base_text = In_channel.with_open_bin path In_channel.input_all in
      match
        ( Telemetry.Expose.parse_snapshot base_text,
          Telemetry.Expose.parse_snapshot json )
      with
      | Ok b, Ok f ->
          let checks =
            Telemetry.Expose.diff ~tolerance
              ~overrides:(time_overrides tolerance) ~baseline:b ~fresh:f ()
          in
          print_string (Telemetry.Expose.render_diff checks);
          if not (Telemetry.Expose.diff_ok checks) then exit 1
      | Error msg, _ ->
          prerr_endline ("metrics: cannot parse baseline: " ^ msg);
          exit 2
      | _, Error msg ->
          prerr_endline ("metrics: cannot parse fresh snapshot: " ^ msg);
          exit 2)

(* One client session against a running --socket listener: forward stdin
   lines, print each reply line to stdout. Lets scripts (CI's serve-gate)
   drive a live socket without needing netcat in the image. *)
let serve_client ~path =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect sock (Unix.ADDR_UNIX path);
  let ic = Unix.in_channel_of_descr sock in
  let oc = Unix.out_channel_of_descr sock in
  (try
     let quit = ref false in
     while not !quit do
       match input_line stdin with
       | exception End_of_file -> quit := true
       | line when String.trim line = "" -> () (* server replies nothing *)
       | line -> (
           output_string oc line;
           output_char oc '\n';
           flush oc;
           (match input_line ic with
           | reply -> print_endline reply
           | exception End_of_file -> quit := true);
           if String.trim line = "!quit" then quit := true)
     done
   with Sys_error _ -> ());
  (try close_out oc with Sys_error _ -> ());
  try Unix.close sock with Unix.Unix_error _ -> ()

(* Run the resident optimizer service (lib/server): newline-delimited
   requests on stdin/stdout by default, or a Unix-socket listener with
   --socket. All progress goes through the shared stderr helper so stdout
   stays a clean protocol stream; likewise the event log sinks to a file
   or stderr, never the protocol stream. *)
let serve_cmd socket capacity max_variants sessions plan client slow_ms
    flight_dir events_path slo env =
  if client then (
    match socket with
    | Some path -> serve_client ~path
    | None ->
        prerr_endline "serve: --client requires --socket PATH";
        exit 2)
  else begin
    (match slow_ms with
    | Some v -> Telemetry.Recorder.configure ~slow_ms:(Some v) ()
    | None -> ());
    (match flight_dir with
    | Some d ->
        if not (Sys.file_exists d) then Sys.mkdir d 0o755;
        Telemetry.Recorder.configure ~dump_dir:(Some d) ()
    | None -> ());
    let env = Lazy.force env in
    let config = base_config env in
    let source = Catalog.Source.create env.provider in
    let server = Server.create ~config ?capacity ?max_variants source in
    let events_chan =
      match events_path with
      | None -> None
      | Some "stderr" ->
          Sre.Events.set_sink (Server.events server) (Some stderr);
          None (* not ours to close *)
      | Some path ->
          let ch = open_out path in
          Sre.Events.set_sink (Server.events server) (Some ch);
          Some ch
    in
    let log = Progress.say "serve: %s" in
    Fun.protect
      ~finally:(fun () ->
        if slo then
          prerr_endline
            (Sre.Slo.to_json (Sre.Slo.report (Server.slo server)));
        match events_chan with
        | Some ch ->
            Sre.Events.set_sink (Server.events server) None;
            close_out ch
        | None -> ())
      (fun () ->
        match socket with
        | Some path ->
            Server.serve_unix ~log ~include_plan:plan
              ?max_sessions:sessions server ~path ()
        | None ->
            Server.serve_channels ~log ~include_plan:plan server stdin stdout)
  end

let queries_cmd () =
  List.iter
    (fun (q : Tpcds.Queries.def) ->
      Printf.printf "q%-4d %-18s %s\n" q.Tpcds.Queries.qid
        q.Tpcds.Queries.family
        (String.concat ","
           (List.map Tpcds.Features.to_string q.Tpcds.Queries.features)))
    (Lazy.force Tpcds.Queries.all)

(* --- the rule-soundness analyzer (lib/rulecheck) --- *)

(* Neither rule command touches the warehouse: they run against lib/rulecheck's
   own small-model world, so no env is built. *)

(* Sorted by name, not registration order: the output is diffable across
   refactorings that reorder rule registration. *)
let rules_cmd () =
  Printf.printf "%-26s %-15s %7s  %-18s %s\n" "name" "kind" "promise" "shapes"
    "produces";
  List.iter
    (fun (r : Xform.Rule.t) ->
      let kind =
        match r.Xform.Rule.kind with
        | Xform.Rule.Exploration -> "exploration"
        | Xform.Rule.Implementation -> "implementation"
      in
      let shapes =
        if r.Xform.Rule.mask = Ir.Logical_ops.all_shapes_mask then "(all)"
        else Ir.Logical_ops.mask_to_string r.Xform.Rule.mask
      in
      let produces =
        match r.Xform.Rule.produces with
        | None -> "(undeclared)"
        | Some m -> Ir.Logical_ops.mask_to_string m
      in
      Printf.printf "%-26s %-15s %7d  %-18s %s\n" r.Xform.Rule.name kind
        r.Xform.Rule.promise shapes produces)
    (List.sort
       (fun (a : Xform.Rule.t) (b : Xform.Rule.t) ->
         compare a.Xform.Rule.name b.Xform.Rule.name)
       (Xform.Ruleset.rules Xform.Ruleset.default))

let rulecheck_cmd rule seeds json suite =
  let rule = if suite then None else rule in
  (match rule with
  | Some name when Xform.Ruleset.find_by_name Xform.Ruleset.default name = None
    ->
      Printf.eprintf "rulecheck: unknown rule %s (see `orca_cli rules`)\n" name;
      exit 2
  | _ -> ());
  let report = Rulecheck.run ~seeds ?rule () in
  let nerr = Rulecheck.error_count report in
  if json then print_string (Rulecheck.to_json report)
  else begin
    Printf.printf
      "rulecheck: %d rule(s), %d seed(s), %d case(s): %d applications, %d \
       alternatives checked — %d error(s), %d warning(s)\n"
      report.Rulecheck.rules_checked report.Rulecheck.seeds
      report.Rulecheck.cases report.Rulecheck.applications
      report.Rulecheck.alternatives nerr
      (Rulecheck.warning_count report);
    if report.Rulecheck.diags <> [] then
      print_string (Verify.Diagnostic.report_to_string report.Rulecheck.diags)
  end;
  if nerr > 0 then exit 1

(* --- the rule-interaction analyzer (lib/interact) --- *)

(* The static analysis itself needs no warehouse; only --suite builds the
   env, to compare real Memos against the growth bound and to check that
   strata scheduling reproduces every plan byte-for-byte. *)
let interact_cmd dot json suite seeds (env : env Lazy.t) =
  let report = Interact.run ~seeds () in
  let nerr = Interact.error_count report in
  if dot then print_string report.Interact.dot
  else if json then print_string (Interact.to_json report)
  else print_string (Interact.to_string report);
  let suite_failures = ref 0 in
  if suite then begin
    let env = Lazy.force env in
    let strata = Interact.strata report in
    let checked = ref 0 in
    let skipped =
      for_each_query (fun label sql ->
          let config = base_config env in
          let _, rdef = optimize_with env config sql in
          let growth =
            Interact.check_memo_growth report ~case:label
              rdef.Orca.Optimizer.memo
          in
          let _, rstrat =
            optimize_with env (Orca.Orca_config.with_strata config strata) sql
          in
          incr checked;
          let pd = Dxl.Dxl_plan.to_string rdef.Orca.Optimizer.plan in
          let ps = Dxl.Dxl_plan.to_string rstrat.Orca.Optimizer.plan in
          if pd <> ps then begin
            incr suite_failures;
            Printf.printf "%-6s strata plan DIVERGES from promise order\n"
              label
          end;
          if growth <> [] then begin
            suite_failures := !suite_failures + List.length growth;
            Printf.printf "%-6s growth bound violated:\n" label;
            print_string (Verify.Diagnostic.report_to_string growth)
          end)
    in
    Printf.printf
      "\ninteract suite: %d queries checked (%d unsupported), %d failure(s)\n"
      !checked skipped !suite_failures
  end;
  if nerr > 0 || !suite_failures > 0 then exit 1

(* --- cmdliner wiring --- *)

let sf_arg =
  Arg.(value & opt float 0.1 & info [ "sf" ] ~docv:"SF" ~doc:"Scale factor.")

let segs_arg =
  Arg.(value & opt int 8 & info [ "segs" ] ~docv:"N" ~doc:"Cluster segments.")

let workers_arg =
  Arg.(
    value & opt int 1
    & info [ "workers" ] ~docv:"N"
        ~doc:"Optimization worker domains (paper \\u{00a7}4.2).")

let sql_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SQL")

let with_env f =
  Term.(
    const (fun sf segs workers sql -> f (make_env sf segs workers) sql)
    $ sf_arg $ segs_arg $ workers_arg $ sql_arg)

let cmd name doc f = Cmd.v (Cmd.info name ~doc) (with_env f)

let () =
  let info =
    Cmd.info "orca_cli" ~version:"1.0"
      ~doc:"Query the simulated MPP warehouse through the Orca optimizer"
  in
  let cmds =
    [
      cmd "run" "Optimize and execute a query; print results." run_cmd;
      (let analyze_arg =
         Arg.(
           value & flag
           & info [ "analyze" ]
               ~doc:
                 "Execute the plan and print actual vs estimated rows (the \
                  cardinality error, with its direction) per operator, \
                  per-operator simulated time, and the Q-error summary by \
                  operator class.")
       in
       let why_arg =
         Arg.(
           value & flag
           & info [ "why" ]
               ~doc:
                 "Optimize with provenance and print, per plan node, the \
                  rule lineage that produced it, the losing alternatives \
                  with cost deltas, and the reason each enforcer was added.")
       in
       Cmd.v
         (Cmd.info "explain"
            ~doc:"Print the optimized plan and search statistics.")
         Term.(
           const (fun analyze why sf segs workers sql ->
               explain_cmd ~analyze ~why (make_env sf segs workers) sql)
           $ analyze_arg $ why_arg $ sf_arg $ segs_arg $ workers_arg $ sql_arg));
      cmd "compare" "Orca vs the legacy Planner: plans and simulated times."
        compare_cmd;
      (let dot_arg =
         Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz instead of text.")
       in
       Cmd.v
         (Cmd.info "memo" ~doc:"Dump the Memo after optimization.")
         Term.(
           const (fun dot sf segs sql -> memo_cmd dot (make_env sf segs 1) sql)
           $ dot_arg $ sf_arg $ segs_arg $ sql_arg));
      cmd "dxl" "Print the DXL query and plan messages." dxl_cmd;
      (let suite_arg =
         Arg.(
           value & flag
           & info [ "suite" ]
               ~doc:
                 "Measure every bundled TPC-DS query instead of one SQL \
                  string and merge the per-class Q-error tables.")
       in
       let json_arg =
         Arg.(
           value
           & opt (some string) None
           & info [ "json" ] ~docv:"PATH"
               ~doc:
                 "Write the per-class Q-error summary as JSON (the \
                  accuracy-gate baseline shape, BENCH_accuracy.json).")
       in
       let sql_opt_arg =
         Arg.(value & pos 0 (some string) None & info [] ~docv:"SQL")
       in
       Cmd.v
         (Cmd.info "accuracy"
            ~doc:
              "Execute optimized plans and measure cardinality estimation \
               accuracy: per-node and per-operator-class Q-error \
               (max(est/act, act/est)), joined on stable plan-node ids. \
               Optimizes with provenance on and fails if the annotation \
               does not cover every plan node.")
         Term.(
           const (fun suite json sf segs workers sql ->
               accuracy_cmd suite json ~sf (make_env sf segs workers) sql)
           $ suite_arg $ json_arg $ sf_arg $ segs_arg $ workers_arg
           $ sql_opt_arg));
      (let off_flags_arg names doc =
         Arg.(value & opt string "" & info names ~docv:"FLAGS" ~doc)
       in
       let off_a_arg =
         off_flags_arg [ "off-a" ]
           "Comma-separated speedup flags to disable for run A (interning, \
            stats_memo, rule_prefilter, winner_reuse, all)."
       in
       let off_b_arg =
         off_flags_arg [ "off-b" ] "Speedup flags to disable for run B."
       in
       let dump_arg names doc =
         Arg.(value & opt (some string) None & info names ~docv:"PATH" ~doc)
       in
       let dump_a_arg =
         dump_arg [ "dump-a" ]
           "AMPERe dump for side A (diff two dumps instead of \
            re-optimizing; uses the embedded plan, or replays)."
       in
       let dump_b_arg = dump_arg [ "dump-b" ] "AMPERe dump for side B." in
       let strata_a_arg =
         Arg.(
           value & flag
           & info [ "strata-a" ]
               ~doc:
                 "Schedule run A's rules by interaction-graph stratum \
                  (lib/interact) instead of promise order.")
       in
       let strata_b_arg =
         Arg.(
           value & flag
           & info [ "strata-b" ] ~doc:"Strata scheduling for run B.")
       in
       let sql_opt_arg =
         Arg.(value & pos 0 (some string) None & info [] ~docv:"SQL")
       in
       Cmd.v
         (Cmd.info "diff"
            ~doc:
              "Structural diff of two optimizations of the same query under \
               different configurations, or of two AMPERe dumps: \
               matched/changed/moved subtrees, cost and cardinality deltas, \
               and the rule lineage behind each divergent subtree. Exits \
               nonzero when the plans diverge.")
         Term.(
           const (fun off_a off_b strata_a strata_b dump_a dump_b sf segs
                      workers sql ->
               diff_cmd off_a off_b strata_a strata_b dump_a dump_b
                 (lazy (make_env sf segs workers))
                 sql)
           $ off_a_arg $ off_b_arg $ strata_a_arg $ strata_b_arg $ dump_a_arg
           $ dump_b_arg $ sf_arg $ segs_arg $ workers_arg $ sql_opt_arg));
      (let suite_arg =
         Arg.(
           value & flag
           & info [ "suite" ]
               ~doc:"Lint every bundled TPC-DS query instead of one SQL string.")
       in
       let verbose_arg =
         Arg.(
           value & flag
           & info [ "verbose"; "v" ]
               ~doc:"Also print the plan with derived properties per node.")
       in
       let sql_opt_arg =
         Arg.(value & pos 0 (some string) None & info [] ~docv:"SQL")
       in
       Cmd.v
         (Cmd.info "lint"
            ~doc:
              "Run the static plan/Memo/DXL analyzers; exit nonzero on \
               error-severity diagnostics.")
         Term.(
           const (fun suite verbose sf segs sql ->
               lint_cmd suite verbose (make_env sf segs 1) sql)
           $ suite_arg $ verbose_arg $ sf_arg $ segs_arg $ sql_opt_arg));
      (let suite_arg =
         Arg.(
           value & flag
           & info [ "suite" ]
               ~doc:
                 "Sanitize every bundled TPC-DS query instead of one SQL \
                  string.")
       in
       let seeds_arg =
         Arg.(
           value & opt int 0
           & info [ "seeds" ] ~docv:"K"
               ~doc:
                 "Also run K deterministic schedule permutations and require \
                  the sequential plan and cost to be reproduced exactly.")
       in
       let sql_opt_arg =
         Arg.(value & pos 0 (some string) None & info [] ~docv:"SQL")
       in
       Cmd.v
         (Cmd.info "sanitize"
            ~doc:
              "Run the concurrency sanitizer: record a scheduler/Memo trace, \
               detect data races and goal-queue deadlocks, and check that \
               parallel and fuzzed schedules reproduce the sequential plan. \
               Exits nonzero on error-severity diagnostics.")
         Term.(
           const (fun suite seeds sf segs workers sql ->
               sanitize_cmd suite seeds (make_env sf segs workers) sql)
           $ suite_arg $ seeds_arg $ sf_arg $ segs_arg $ workers_arg
           $ sql_opt_arg));
      (let suite_arg =
         Arg.(
           value & flag
           & info [ "suite" ]
               ~doc:
                 "Profile every bundled TPC-DS query instead of one SQL \
                  string.")
       in
       let trace_arg =
         Arg.(
           value
           & opt (some string) None
           & info [ "trace" ] ~docv:"PATH"
               ~doc:
                 "Write the span trace as Chrome trace_event JSON (load in \
                  Perfetto or chrome://tracing).")
       in
       let top_arg =
         Arg.(
           value & opt int 10
           & info [ "top" ] ~docv:"N"
               ~doc:"Show the N most expensive rules in the profile.")
       in
       let check_arg =
         Arg.(
           value & flag
           & info [ "check" ]
               ~doc:
                 "Verify span accounting (children must not sum past their \
                  parent); exit nonzero on violations.")
       in
       let sql_opt_arg =
         Arg.(value & pos 0 (some string) None & info [] ~docv:"SQL")
       in
       Cmd.v
         (Cmd.info "profile"
            ~doc:
              "Optimize and execute with full observability: per-rule and \
               per-stage profiles, Memo growth, scheduler utilization, \
               execution metrics, and an exportable span trace.")
         Term.(
           const (fun suite trace top check sf segs workers sql ->
               profile_cmd suite trace top check (make_env sf segs workers) sql)
           $ suite_arg $ trace_arg $ top_arg $ check_arg $ sf_arg $ segs_arg
           $ workers_arg $ sql_opt_arg));
      (let suite_arg =
         Arg.(
           value & flag
           & info [ "suite" ]
               ~doc:
                 "Optimize every bundled TPC-DS query through the flight \
                  recorder before exposing the registry.")
       in
       let prom_arg =
         Arg.(
           value & flag
           & info [ "prom" ]
               ~doc:"Emit Prometheus text format (the default).")
       in
       let json_arg =
         Arg.(
           value & flag
           & info [ "json" ]
               ~doc:
                 "Emit the JSON snapshot (metrics with quantiles, plus the \
                  flight-recorder ring) instead of Prometheus text.")
       in
       let lint_arg =
         Arg.(
           value & flag
           & info [ "lint" ]
               ~doc:
                 "Lint the Prometheus exposition (structure, TYPE lines, \
                  bucket cumulativeness); exit nonzero on problems.")
       in
       let out_arg =
         Arg.(
           value
           & opt (some string) None
           & info [ "out" ] ~docv:"PATH"
               ~doc:"Write the exposition to a file instead of stdout.")
       in
       let baseline_arg =
         Arg.(
           value
           & opt (some string) None
           & info [ "baseline" ] ~docv:"PATH"
               ~doc:
                 "Diff the fresh JSON snapshot against a baseline snapshot \
                  (the regression sentinel); prints the failed checks and \
                  exits nonzero on regression.")
       in
       let tolerance_arg =
         Arg.(
           value & opt float 0.25
           & info [ "tolerance" ] ~docv:"T"
               ~doc:
                 "Relative tolerance for the baseline diff (wall-time \
                  metrics always get at least 4.0).")
       in
       let slow_arg =
         Arg.(
           value
           & opt (some float) None
           & info [ "slow-ms" ] ~docv:"MS"
               ~doc:
                 "Arm the flight recorder: queries at or over this \
                  optimization time are re-run with full observability and \
                  dumped (needs --flight-dir to emit files).")
       in
       let flight_dir_arg =
         Arg.(
           value
           & opt (some string) None
           & info [ "flight-dir" ] ~docv:"DIR"
               ~doc:
                 "Directory for AMPERe dumps of slow/failed queries \
                  (created if missing).")
       in
       let sql_opt_arg =
         Arg.(value & pos 0 (some string) None & info [] ~docv:"SQL")
       in
       Cmd.v
         (Cmd.info "metrics"
            ~doc:
              "Expose the always-on telemetry registry: optimize a query or \
               the whole suite through the flight recorder, then emit \
               Prometheus text or a JSON snapshot (p50/p95/p99 per \
               histogram), lint the exposition, or diff two snapshots as a \
               regression sentinel.")
         Term.(
           const (fun suite prom json lint out baseline tolerance slow
                      flight_dir sf segs workers sql ->
               ignore (prom : bool);
               metrics_cmd suite json lint out baseline tolerance slow
                 flight_dir
                 (lazy (make_env sf segs workers))
                 sql)
           $ suite_arg $ prom_arg $ json_arg $ lint_arg $ out_arg
           $ baseline_arg $ tolerance_arg $ slow_arg $ flight_dir_arg $ sf_arg
           $ segs_arg $ workers_arg $ sql_opt_arg));
      (let socket_arg =
         Arg.(
           value
           & opt (some string) None
           & info [ "socket" ] ~docv:"PATH"
               ~doc:
                 "Listen on a Unix-domain socket (one thread per \
                  connection) instead of serving stdin/stdout.")
       in
       let capacity_arg =
         Arg.(
           value
           & opt (some int) None
           & info [ "capacity" ] ~docv:"N"
               ~doc:"Plan-cache capacity in entries (LRU beyond it).")
       in
       let variants_arg =
         Arg.(
           value
           & opt (some int) None
           & info [ "max-variants" ] ~docv:"N"
               ~doc:"Binding variants kept per cache entry.")
       in
       let sessions_arg =
         Arg.(
           value
           & opt (some int) None
           & info [ "sessions" ] ~docv:"N"
               ~doc:
                 "With --socket: exit after serving N connections (for \
                  scripted runs; default: listen forever).")
       in
       let plan_arg =
         Arg.(
           value & flag
           & info [ "plan" ]
               ~doc:
                 "Include the DXL plan in every response (sessions can \
                  toggle this with the !plan control line).")
       in
       let client_arg =
         Arg.(
           value & flag
           & info [ "client" ]
               ~doc:
                 "Connect to --socket as a client instead of serving: \
                  forward stdin lines, print each reply line (for scripted \
                  probes of a live listener).")
       in
       let slow_ms_arg =
         Arg.(
           value
           & opt (some float) None
           & info [ "slow-ms" ] ~docv:"MS"
               ~doc:
                 "Arm the flight recorder: requests optimizing slower than \
                  MS are recaptured as AMPERe dumps (with --flight-dir).")
       in
       let flight_dir_arg =
         Arg.(
           value
           & opt (some string) None
           & info [ "flight-dir" ] ~docv:"DIR"
               ~doc:
                 "Directory for flight-recorder AMPERe dumps (created if \
                  missing).")
       in
       let events_arg =
         Arg.(
           value
           & opt (some string) None
           & info [ "events" ] ~docv:"PATH"
               ~doc:
                 "Sink the structured event log to PATH as JSON lines \
                  ('stderr' to interleave with progress; never stdout).")
       in
       let slo_arg =
         Arg.(
           value & flag
           & info [ "slo" ]
               ~doc:
                 "Print the final rolling-window SLO report to stderr when \
                  the listener exits.")
       in
       Cmd.v
         (Cmd.info "serve"
            ~doc:
              "Run the resident optimizer service: newline-delimited SQL \
               requests in, single-line JSON responses out, with the \
               parameterized plan cache in front of optimization. A plain \
               line is SQL; !ping, !plan on|off, !invalidate catalog|stats, \
               !stats, !metrics, !health, !slo and !quit are control lines. \
               Progress goes to stderr; stdout is protocol-only.")
         Term.(
           const
             (fun socket capacity variants sessions plan client slow_ms
                  flight_dir events slo sf segs workers ->
               serve_cmd socket capacity variants sessions plan client slow_ms
                 flight_dir events slo
                 (lazy (make_env sf segs workers)))
           $ socket_arg $ capacity_arg $ variants_arg $ sessions_arg $ plan_arg
           $ client_arg $ slow_ms_arg $ flight_dir_arg $ events_arg $ slo_arg
           $ sf_arg $ segs_arg $ workers_arg));
      Cmd.v
        (Cmd.info "queries" ~doc:"List the 111-query workload with features.")
        Term.(const queries_cmd $ const ());
      Cmd.v
        (Cmd.info "rules"
           ~doc:
             "List every registered transformation rule: id, name, kind, \
              promise and declared root shapes (the prefilter mask).")
        Term.(const rules_cmd $ const ());
      (let rule_arg =
         Arg.(
           value
           & opt (some string) None
           & info [ "rule" ] ~docv:"NAME"
               ~doc:"Audit a single rule by name instead of the full set.")
       in
       let seeds_arg =
         Arg.(
           value & opt int Rulecheck.default_seeds
           & info [ "seeds" ] ~docv:"K"
               ~doc:
                 "Generator worlds to sweep (data and selection constants \
                  are deterministic in the seed).")
       in
       let json_arg =
         Arg.(
           value & flag
           & info [ "json" ]
               ~doc:"Emit the report as JSON (the nightly CI artifact shape).")
       in
       let suite_arg =
         Arg.(
           value & flag
           & info [ "suite" ]
               ~doc:
                 "Audit every registered rule plus the default cost model \
                  (the default; overrides --rule).")
       in
       Cmd.v
         (Cmd.info "rulecheck"
            ~doc:
              "Audit the transformation rules without running the optimizer: \
               semantic equivalence of every alternative against the naive \
               oracle on seed-driven small models, shape-mask soundness \
               (prefilter contract), Memo purity, output-column \
               preservation, property reachability, and cost-model \
               monotonicity lints. Exits nonzero on error-severity \
               diagnostics.")
         Term.(
           const rulecheck_cmd $ rule_arg $ seeds_arg $ json_arg $ suite_arg));
      (let dot_arg =
         Arg.(
           value & flag
           & info [ "dot" ]
               ~doc:
                 "Emit the rule-interaction graph as Graphviz (one cluster \
                  per stratum; unreachable rules dashed).")
       in
       let json_arg =
         Arg.(
           value & flag
           & info [ "json" ]
               ~doc:"Emit the report as JSON (the nightly CI artifact shape).")
       in
       let suite_arg =
         Arg.(
           value & flag
           & info [ "suite" ]
               ~doc:
                 "Also optimize every bundled TPC-DS query twice — promise \
                  order and strata order — requiring byte-identical plans, \
                  and check every real Memo group against the static growth \
                  bound.")
       in
       let seeds_arg =
         Arg.(
           value & opt int Interact.default_seeds
           & info [ "seeds" ] ~docv:"K"
               ~doc:"Generator worlds for producer inference.")
       in
       Cmd.v
         (Cmd.info "interact"
            ~doc:
              "Analyze the rule set as a system: infer each rule's produced \
               shapes, build the rule-interaction graph, find unbounded \
               derivation cycles, shadowed rules and promise inversions, \
               compute the stratification, and bound search-space growth. \
               Exits nonzero on error-severity diagnostics or suite \
               failures.")
         Term.(
           const (fun dot json suite seeds sf segs workers ->
               interact_cmd dot json suite seeds
                 (lazy (make_env sf segs workers)))
           $ dot_arg $ json_arg $ suite_arg $ seeds_arg $ sf_arg $ segs_arg
           $ workers_arg));
    ]
  in
  try exit (Cmd.eval ~catch:false (Cmd.group info cmds)) with
  | Gpos.Gpos_error.Error (_, msg) ->
      prerr_endline ("error: " ^ msg);
      exit 1
  | Orca.Optimizer.Unsupported_query msg ->
      prerr_endline ("unsupported query: " ^ msg);
      exit 1

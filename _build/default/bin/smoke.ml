(* Scratch driver: end-to-end SQL -> Orca -> distributed execution, checked
   against the naive reference evaluator. *)

open Ir

let nsegs = 8

let () =
  let rng = Gpos.Prng.create 42 in
  (* generate data *)
  let t1_rows =
    List.init 2000 (fun i ->
        [| Datum.Int (i mod 400); Datum.Int (Gpos.Prng.int rng 1000) |])
  in
  let t2_rows =
    List.init 5000 (fun _ ->
        [| Datum.Int (Gpos.Prng.int rng 1000); Datum.Int (Gpos.Prng.int rng 400) |])
  in
  let hist_of rows pos =
    Stats.Histogram.build (List.map (fun r -> r.(pos)) rows)
  in
  let rel name oid =
    Catalog.Metadata.rel_make
      ~dist:(Catalog.Metadata.Hash_cols [ 0 ])
      ~mdid:(Catalog.Md_id.make oid) ~name
      [
        { Catalog.Metadata.col_name = "a"; col_type = Dtype.Int };
        { Catalog.Metadata.col_name = "b"; col_type = Dtype.Int };
      ]
  in
  let stats oid rows =
    {
      Catalog.Metadata.st_mdid = Catalog.Md_id.make oid;
      st_rows = float_of_int (List.length rows);
      st_col_hists = [ (0, hist_of rows 0); (1, hist_of rows 1) ];
    }
  in
  let provider =
    Catalog.Provider.of_objects ~name:"test"
      [
        Catalog.Metadata.Rel (rel "t1" 100);
        Catalog.Metadata.Rel (rel "t2" 200);
        Catalog.Metadata.Rel_stats (stats 100 t1_rows);
        Catalog.Metadata.Rel_stats (stats 200 t2_rows);
      ]
  in
  let cache = Catalog.Md_cache.create () in
  let cluster = Exec.Cluster.create ~nsegs () in
  Exec.Cluster.load_table cluster ~name:"t1" ~dist:(Exec.Cluster.By_hash [ 0 ]) t1_rows;
  Exec.Cluster.load_table cluster ~name:"t2" ~dist:(Exec.Cluster.By_hash [ 0 ]) t2_rows;

  let run_sql sql =
    Printf.printf "=== %s\n" sql;
    let accessor = Catalog.Accessor.create ~provider ~cache () in
    let query = Sqlfront.Binder.bind_sql accessor sql in
    let config = Orca.Orca_config.with_segments Orca.Orca_config.default nsegs in
    let report = Orca.Optimizer.optimize ~config accessor query in
    Printf.printf "%s" (Plan_ops.to_string report.Orca.Optimizer.plan);
    ignore (Plan_ops.validate report.Orca.Optimizer.plan);
    let rows, metrics = Exec.Executor.run cluster report.Orca.Optimizer.plan in
    let expected = Exec.Naive.run cluster query in
    let norm rows =
      List.map
        (fun r -> String.concat "," (List.map Datum.to_string (Array.to_list r)))
        rows
    in
    let got = norm rows and want = norm expected in
    let sorted_eq = List.sort compare got = List.sort compare want in
    Printf.printf "rows=%d expected=%d match=%b  %s\n\n" (List.length got)
      (List.length want) sorted_eq
      (Exec.Metrics.to_string metrics);
    if not sorted_eq then begin
      let show l = String.concat "\n  " l in
      Printf.printf "GOT:\n  %s\nWANT:\n  %s\n"
        (show (List.filteri (fun i _ -> i < 10) got))
        (show (List.filteri (fun i _ -> i < 10) want));
      exit 1
    end;
    (* legacy Planner path: same results expected, different plan/speed *)
    let accessor2 = Catalog.Accessor.create ~provider ~cache () in
    let query2 = Sqlfront.Binder.bind_sql accessor2 sql in
    let pplan =
      Planner.Legacy_planner.plan_sql
        ~config:{ Planner.Legacy_planner.segments = nsegs; dp_limit = 5; broadcast_inner = false }
        accessor2 query2
    in
    ignore (Plan_ops.validate pplan);
    let prows, pmetrics = Exec.Executor.run cluster pplan in
    let pexpected = Exec.Naive.run cluster query2 in
    let pg = List.sort compare (norm prows)
    and pw = List.sort compare (norm pexpected) in
    Printf.printf "planner: rows=%d match=%b sim=%.4fs subplans=%d+%d\n\n"
      (List.length prows) (pg = pw) pmetrics.Exec.Metrics.sim_seconds
      pmetrics.Exec.Metrics.subplan_executions
      pmetrics.Exec.Metrics.subplan_cache_hits;
    if pg <> pw then begin
      Printf.printf "PLANNER MISMATCH\n%s" (Plan_ops.to_string pplan);
      let show l = String.concat "\n  " l in
      Printf.printf "GOT:\n  %s\nWANT:\n  %s\n"
        (show (List.filteri (fun i _ -> i < 10) pg))
        (show (List.filteri (fun i _ -> i < 10) pw));
      exit 1
    end
  in
  run_sql "SELECT t1.a FROM t1, t2 WHERE t1.a = t2.b ORDER BY t1.a LIMIT 5";
  run_sql
    "SELECT t1.a, count(*) AS cnt, sum(t2.a) AS s FROM t1, t2 WHERE t1.a = \
     t2.b AND t2.a < 500 GROUP BY t1.a ORDER BY t1.a DESC LIMIT 10";
  run_sql
    "SELECT a, b FROM t1 WHERE a > 350 AND b BETWEEN 10 AND 700 ORDER BY b, a";
  run_sql
    "SELECT t1.a, (SELECT max(t2.a) FROM t2 WHERE t2.b = t1.a) AS m FROM t1 \
     WHERE t1.b < 50 ORDER BY t1.a LIMIT 20";
  run_sql
    "SELECT a FROM t1 WHERE EXISTS (SELECT 1 FROM t2 WHERE t2.b = t1.a AND \
     t2.a > 900) ORDER BY a LIMIT 10";
  run_sql
    "WITH big AS (SELECT a, count(*) AS c FROM t2 GROUP BY a) SELECT b1.a, \
     b1.c FROM big b1, big b2 WHERE b1.a = b2.a AND b1.c > 3 ORDER BY b1.a \
     LIMIT 10";
  run_sql
    "SELECT a FROM t1 WHERE a < 50 UNION SELECT b FROM t2 WHERE b < 50 ORDER \
     BY a LIMIT 30";
  run_sql
    "SELECT avg(b) AS ab, min(a) AS mn, max(a) AS mx, count(distinct a) AS cd \
     FROM t1 WHERE b < 900";
  print_endline "ALL SMOKE TESTS PASSED"

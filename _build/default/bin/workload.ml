(* Workload shakeout driver: run all 111 queries through Orca and the legacy
   Planner, execute both plans, and differential-test results against the
   naive reference evaluator. *)

open Ir

let () =
  let sf = try float_of_string Sys.argv.(1) with _ -> 0.2 in
  let upto = try int_of_string Sys.argv.(2) with _ -> max_int in
  let nsegs = 8 in
  Printf.printf "generating data (sf=%.2f)...\n%!" sf;
  let db = Tpcds.Datagen.generate ~sf () in
  let env = Engines.Engine.create_env ~nsegs db in
  let cluster =
    Engines.Engine.cluster_for env ~mem_per_seg:(64.0 *. 1024.0 *. 1024.0)
  in
  let provider = env.Engines.Engine.provider in
  let cache = env.Engines.Engine.cache in
  let failures = ref 0 in
  let norm rows =
    List.sort compare
      (List.map
         (fun r ->
           String.concat ","
             (List.map
                (fun d ->
                  (* normalize float noise for comparison *)
                  match d with
                  | Datum.Float f -> Printf.sprintf "%.4f" f
                  | d -> Datum.to_string d)
                (Array.to_list r)))
         rows)
  in
  let t_start = Gpos.Clock.now () in
  List.iter
    (fun (q : Tpcds.Queries.def) ->
      if q.Tpcds.Queries.qid <= upto then begin
        let qid = q.Tpcds.Queries.qid in
        try
          let accessor = Catalog.Accessor.create ~provider ~cache () in
          let query = Sqlfront.Binder.bind_sql accessor q.Tpcds.Queries.sql in
          let expected = norm (Exec.Naive.run cluster query) in
          (* Orca *)
          let config =
            Orca.Orca_config.with_segments Orca.Orca_config.default nsegs
          in
          let t0 = Gpos.Clock.now () in
          let report = Orca.Optimizer.optimize ~config accessor query in
          let opt_ms = Gpos.Clock.ms_since t0 in
          ignore (Plan_ops.validate report.Orca.Optimizer.plan);
          let orows, ometrics =
            Exec.Executor.run cluster report.Orca.Optimizer.plan
          in
          let ores = norm orows in
          (* Planner *)
          let accessor2 = Catalog.Accessor.create ~provider ~cache () in
          let query2 = Sqlfront.Binder.bind_sql accessor2 q.Tpcds.Queries.sql in
          let pplan =
            Planner.Legacy_planner.plan_sql
              ~config:{ Planner.Legacy_planner.segments = nsegs; dp_limit = 5; broadcast_inner = false }
              accessor2 query2
          in
          ignore (Plan_ops.validate pplan);
          let prows, pmetrics = Exec.Executor.run cluster pplan in
          let pres = norm prows in
          let ok_o = ores = expected and ok_p = pres = expected in
          if ok_o && ok_p then
            Printf.printf
              "q%-3d %-16s OK   orca=%.4fs planner=%.4fs speedup=%6.1fx opt=%.0fms groups=%d\n%!"
              qid q.Tpcds.Queries.family
              ometrics.Exec.Metrics.sim_seconds
              pmetrics.Exec.Metrics.sim_seconds
              (pmetrics.Exec.Metrics.sim_seconds
              /. Float.max 1e-9 ometrics.Exec.Metrics.sim_seconds)
              opt_ms report.Orca.Optimizer.groups
          else begin
            incr failures;
            Printf.printf "q%-3d %-16s MISMATCH orca=%b planner=%b (%d/%d/%d rows)\n%!"
              qid q.Tpcds.Queries.family ok_o ok_p (List.length ores)
              (List.length pres) (List.length expected);
            if not ok_o then begin
              Printf.printf "%s\n" (Plan_ops.to_string report.Orca.Optimizer.plan);
              List.iteri
                (fun i (g, w) -> if i < 5 then Printf.printf "  got %s | want %s\n" g w)
                (List.combine
                   (List.filteri (fun i _ -> i < 5) (ores @ [ "-"; "-"; "-"; "-"; "-" ]))
                   (List.filteri (fun i _ -> i < 5) (expected @ [ "-"; "-"; "-"; "-"; "-" ])))
            end
          end
        with e ->
          incr failures;
          Printf.printf "q%-3d %-16s EXCEPTION %s\n%!" q.Tpcds.Queries.qid
            q.Tpcds.Queries.family (Gpos.Gpos_error.to_string e)
      end)
    (Lazy.force Tpcds.Queries.all);
  Printf.printf "done in %.1fs: %d failures\n" (Gpos.Clock.now () -. t_start) !failures;
  if !failures > 0 then exit 1

(** Exception infrastructure mirroring GPOS's CException: every error carries
    a stable code (used by AMPERe dumps and the engine feature matrices) and
    a human-readable message. *)

type code =
  | Internal
  | Unsupported of string  (** unsupported SQL feature; payload names it *)
  | Out_of_memory          (** operator state exceeded the memory budget *)
  | Timeout
  | Md_not_found of string (** metadata object id *)
  | Parse_error
  | Bind_error
  | Dxl_error
  | Exec_error

exception Error of code * string

val code_name : code -> string

val raise_error : code -> ('a, unit, string, 'b) format4 -> 'a
(** [raise_error code fmt ...] raises {!Error} with a formatted message. *)

val internal : ('a, unit, string, 'b) format4 -> 'a
val unsupported : string -> 'a

val to_string : exn -> string
(** Render any exception, with codes for {!Error}. *)

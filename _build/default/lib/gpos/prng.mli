(** Deterministic pseudo-random number generator (SplitMix64).

    All randomized components — data generation, plan sampling, query
    parameter instantiation — draw from explicit generator values, so every
    experiment in the repository reproduces bit-for-bit. *)

type t

val create : int -> t
val copy : t -> t
val next_int64 : t -> int64

val int : t -> int -> int
(** Uniform in [0, bound). Raises on non-positive bounds. *)

val int_range : t -> int -> int -> int
(** Uniform in [lo, hi], inclusive. *)

val float : t -> float
(** Uniform in [0, 1). *)

val float_range : t -> float -> float -> float
val bool : t -> bool
val pick : t -> 'a array -> 'a
val pick_list : t -> 'a list -> 'a
val shuffle_in_place : t -> 'a array -> unit

val zipf : t -> n:int -> theta:float -> int
(** Zipf-like skewed choice over [0, n): rank r has weight 1/(r+1)^theta.
    Used by the data generator for realistic value skew. *)

val split : t -> string -> t
(** Derive an independent stream for a named sub-component. *)

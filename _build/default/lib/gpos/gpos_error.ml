(* Exception infrastructure mirroring GPOS's CException: every error carries a
   stable code (used by AMPERe dumps and the engine feature matrices) and a
   human-readable message. *)

type code =
  | Internal
  | Unsupported of string  (* unsupported SQL feature; payload names it *)
  | Out_of_memory          (* operator state exceeded the memory budget *)
  | Timeout
  | Md_not_found of string (* metadata object id *)
  | Parse_error
  | Bind_error
  | Dxl_error
  | Exec_error

exception Error of code * string

let code_name = function
  | Internal -> "Internal"
  | Unsupported f -> "Unsupported(" ^ f ^ ")"
  | Out_of_memory -> "OutOfMemory"
  | Timeout -> "Timeout"
  | Md_not_found id -> "MdNotFound(" ^ id ^ ")"
  | Parse_error -> "ParseError"
  | Bind_error -> "BindError"
  | Dxl_error -> "DxlError"
  | Exec_error -> "ExecError"

let raise_error code fmt =
  Printf.ksprintf (fun msg -> raise (Error (code, msg))) fmt

let internal fmt = raise_error Internal fmt
let unsupported feature = raise (Error (Unsupported feature, feature))

let to_string = function
  | Error (code, msg) -> Printf.sprintf "%s: %s" (code_name code) msg
  | e -> Printexc.to_string e

(* Deterministic pseudo-random number generator (SplitMix64).

   All randomized components (data generation, plan sampling, query parameter
   instantiation) draw from explicit generator values so that every experiment
   in the repository is reproducible bit-for-bit. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

(* Uniform int in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

(* Uniform int in [lo, hi] inclusive. *)
let int_range t lo hi =
  if hi < lo then invalid_arg "Prng.int_range: empty range";
  lo + int t (hi - lo + 1)

(* Uniform float in [0, 1). *)
let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0

let float_range t lo hi = lo +. (float t *. (hi -. lo))

let bool t = Int64.logand (next_int64 t) 1L = 1L

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Prng.pick: empty array";
  arr.(int t (Array.length arr))

let pick_list t xs =
  match xs with
  | [] -> invalid_arg "Prng.pick_list: empty list"
  | _ -> List.nth xs (int t (List.length xs))

let shuffle_in_place t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(* Zipf-like skewed choice over [0, n): rank r has weight 1/(r+1)^theta.
   Used by the data generator to create realistic value skew. *)
let zipf t ~n ~theta =
  if n <= 0 then invalid_arg "Prng.zipf: n must be positive";
  let total = ref 0.0 in
  for r = 0 to n - 1 do
    total := !total +. (1.0 /. (Float.of_int (r + 1) ** theta))
  done;
  let target = float t *. !total in
  let rec find r acc =
    if r >= n - 1 then r
    else
      let acc = acc +. (1.0 /. (Float.of_int (r + 1) ** theta)) in
      if acc >= target then r else find (r + 1) acc
  in
  find 0 0.0

(* Derive an independent stream for a named sub-component. *)
let split t label =
  let h = Hashtbl.hash label in
  { state = Int64.add (mix t.state) (Int64.of_int h) }

(* Job scheduler (paper §4.2).

   Optimization is broken into small re-entrant jobs. A job is a closure over
   its own mutable state; running it either finishes or spawns child jobs and
   suspends. When every child has completed, the suspended job is re-run and —
   because its captured state advanced — proceeds to its next phase.

   Jobs may carry a goal key (e.g. "exp:g3"): while a job with some goal is
   running, other incoming jobs with the same goal are parked on the goal's
   queue instead of duplicating work, and are released when it completes
   (paper: group job queues).

   The scheduler runs jobs on [workers] domains. With [workers = 1] execution
   is sequential and deterministic, which is the default used by tests. *)

type outcome =
  | Finished
  | Wait_for of child list

and child = { run : unit -> outcome; goal : string option }

type job = {
  jid : int;
  body : unit -> outcome;
  jgoal : string option;
  mutable pending : int; (* children not yet completed *)
  mutable parent : job option;
}

type goal_state =
  | Goal_running of job list ref (* parents waiting for this goal *)
  | Goal_finished

type t = {
  mutex : Mutex.t;
  cond : Condition.t;
  queue : job Queue.t;
  goals : (string, goal_state) Hashtbl.t;
  mutable live : int; (* jobs created and not yet completed *)
  mutable next_id : int;
  mutable failure : exn option;
  mutable jobs_run : int; (* statistics: number of job (re-)executions *)
  mutable jobs_created : int;
  mutable goal_hits : int; (* children absorbed by an in-flight/finished goal *)
  workers : int;
}

let create ?(workers = 1) () =
  if workers < 1 then invalid_arg "Scheduler.create: workers must be >= 1";
  {
    mutex = Mutex.create ();
    cond = Condition.create ();
    queue = Queue.create ();
    goals = Hashtbl.create 64;
    live = 0;
    next_id = 0;
    failure = None;
    jobs_run = 0;
    jobs_created = 0;
    goal_hits = 0;
    workers;
  }

let stats t = (t.jobs_created, t.jobs_run, t.goal_hits)

(* All bookkeeping below runs with [t.mutex] held. *)

let new_job t ?parent ?goal body =
  let j = { jid = t.next_id; body; jgoal = goal; pending = 0; parent } in
  t.next_id <- t.next_id + 1;
  t.jobs_created <- t.jobs_created + 1;
  t.live <- t.live + 1;
  j

let enqueue t j =
  Queue.add j t.queue;
  Condition.signal t.cond

(* A child of [parent] became (or was already) complete. *)
let rec child_completed t parent =
  parent.pending <- parent.pending - 1;
  if parent.pending = 0 then enqueue t parent

(* Job [j] finished for good: release its goal and resume its parent. *)
and complete t j =
  t.live <- t.live - 1;
  (match j.jgoal with
  | None -> ()
  | Some g -> (
      match Hashtbl.find_opt t.goals g with
      | Some (Goal_running waiters) ->
          Hashtbl.replace t.goals g Goal_finished;
          List.iter (fun p -> child_completed t p) !waiters
      | Some Goal_finished | None -> ()));
  (match j.parent with None -> () | Some p -> child_completed t p);
  if t.live = 0 then Condition.broadcast t.cond

(* Register a spawned child under its goal queue. Returns [true] when the
   child must actually run, [false] when an equivalent job is in flight or
   done (the parent will be resumed through the goal queue instead). *)
let admit_child t parent (j : job) =
  match j.jgoal with
  | None -> true
  | Some g -> (
      match Hashtbl.find_opt t.goals g with
      | None ->
          Hashtbl.replace t.goals g (Goal_running (ref []));
          true
      | Some (Goal_running waiters) ->
          t.goal_hits <- t.goal_hits + 1;
          t.live <- t.live - 1;
          waiters := parent :: !waiters;
          false
      | Some Goal_finished ->
          t.goal_hits <- t.goal_hits + 1;
          t.live <- t.live - 1;
          child_completed t parent;
          false)

let spawn_children t parent children =
  parent.pending <- List.length children;
  let to_run =
    List.filter_map
      (fun { run; goal } ->
        let j = new_job t ~parent ?goal run in
        if admit_child t parent j then Some j else None)
      children
  in
  (* Children absorbed by goal queues already decremented [pending]; if all
     were absorbed and resolved, the parent is re-enqueued by
     [child_completed]. Otherwise enqueue the remaining real jobs. *)
  List.iter (fun j -> enqueue t j) to_run

let run_one t j =
  t.jobs_run <- t.jobs_run + 1;
  Mutex.unlock t.mutex;
  let result = try Ok (j.body ()) with e -> Error e in
  Mutex.lock t.mutex;
  match result with
  | Ok Finished -> complete t j
  | Ok (Wait_for []) -> enqueue t j (* nothing to wait for: re-run *)
  | Ok (Wait_for children) -> spawn_children t j children
  | Error e ->
      if t.failure = None then t.failure <- Some e;
      complete t j

let worker_loop t =
  Mutex.lock t.mutex;
  let rec loop () =
    if t.live = 0 || t.failure <> None then ()
    else
      match Queue.take_opt t.queue with
      | Some j ->
          run_one t j;
          loop ()
      | None ->
          Condition.wait t.cond t.mutex;
          loop ()
  in
  loop ();
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex

(* Run [root] (and everything it spawns) to completion. Raises the first
   failure encountered by any job. *)
let run t root =
  Mutex.lock t.mutex;
  t.failure <- None;
  let j = new_job t root in
  enqueue t j;
  Mutex.unlock t.mutex;
  if t.workers = 1 then worker_loop t
  else begin
    let domains =
      List.init (t.workers - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t))
    in
    worker_loop t;
    List.iter Domain.join domains
  end;
  match t.failure with
  | Some e ->
      t.failure <- None;
      (* Residual suspended jobs are abandoned on failure. *)
      Mutex.lock t.mutex;
      Queue.clear t.queue;
      t.live <- 0;
      Mutex.unlock t.mutex;
      raise e
  | None -> ()

(* Convenience: run a one-shot computation structured as jobs and return its
   result through a ref cell. *)
let run_root t f =
  let result = ref None in
  run t (fun () ->
      f (fun v -> result := Some v);
      Finished);
  !result

lib/gpos/gpos_error.mli:

lib/gpos/clock.ml: Unix

lib/gpos/clock.mli:

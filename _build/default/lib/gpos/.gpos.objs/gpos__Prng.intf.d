lib/gpos/prng.mli:

lib/gpos/scheduler.mli:

lib/gpos/prng.ml: Array Float Hashtbl Int64 List

lib/gpos/gpos_error.ml: Printexc Printf

lib/gpos/scheduler.ml: Condition Domain Hashtbl List Mutex Queue

(** Wall-clock helpers (GPOS timer abstraction, paper §3). *)

val now : unit -> float
(** Seconds since the epoch, as a float. *)

val ms_since : float -> float
(** Milliseconds elapsed since a [now ()] reading. *)

val time : (unit -> 'a) -> 'a * float
(** Run a thunk; return its result and the elapsed milliseconds. *)

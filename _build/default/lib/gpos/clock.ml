(* Wall-clock helpers (GPOS timer abstraction). *)

let now () = Unix.gettimeofday ()

let ms_since t0 = (now () -. t0) *. 1000.0

(* Time a thunk; returns (result, elapsed milliseconds). *)
let time f =
  let t0 = now () in
  let r = f () in
  (r, ms_since t0)

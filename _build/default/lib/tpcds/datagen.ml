open Ir

(* Deterministic mini-TPC-DS data generator. Foreign keys are consistent,
   item popularity and seasonal dates are skewed (Zipf / holiday boost), and
   the catalog statistics are histograms computed from the actual generated
   data — the optimizer sees truthful metadata, as after ANALYZE. *)

type db = {
  sf : float;
  rows : (string, Datum.t array list) Hashtbl.t;
}

let categories =
  [| "Books"; "Electronics"; "Home"; "Jewelry"; "Music"; "Shoes"; "Sports";
     "Children"; "Men"; "Women" |]

let brands = Array.init 40 (fun i -> Printf.sprintf "brand#%02d" i)
let classes = Array.init 16 (fun i -> Printf.sprintf "class%02d" i)

let states =
  [| "AL"; "CA"; "CO"; "FL"; "GA"; "IL"; "IN"; "MI"; "MN"; "MO"; "NC"; "NY";
     "OH"; "PA"; "TN"; "TX"; "VA"; "WA"; "WI"; "SD" |]

let cities = Array.init 60 (fun i -> Printf.sprintf "city%02d" i)
let countries = [| "United States" |]
let genders = [| "M"; "F" |]
let marital = [| "M"; "S"; "D"; "W"; "U" |]

let education =
  [| "Primary"; "Secondary"; "College"; "2 yr Degree"; "4 yr Degree";
     "Advanced Degree"; "Unknown" |]

let buy_potential = [| "0-500"; "501-1000"; "1001-5000"; ">10000"; "Unknown" |]
let day_names = [| "Sunday"; "Monday"; "Tuesday"; "Wednesday"; "Thursday"; "Friday"; "Saturday" |]

let scaled sf base = max 1 (int_of_float (float_of_int base *. sf))

(* table cardinalities at sf = 1.0 *)
let base_rows sf = function
  | "date_dim" -> Schema.ndates
  | "time_dim" -> 288
  | "item" -> scaled sf 500
  | "customer" -> scaled sf 2000
  | "customer_address" -> scaled sf 1000
  | "customer_demographics" -> 400
  | "household_demographics" -> 144
  | "income_band" -> 20
  | "store" -> 30
  | "call_center" -> 8
  | "catalog_page" -> 40
  | "web_site" -> 10
  | "web_page" -> 30
  | "warehouse" -> 10
  | "promotion" -> 50
  | "reason" -> 20
  | "ship_mode" -> 10
  | "household" -> 100
  | "store_sales" -> scaled sf 20000
  | "store_returns" -> scaled sf 2000
  | "catalog_sales" -> scaled sf 10000
  | "catalog_returns" -> scaled sf 1000
  | "web_sales" -> scaled sf 6000
  | "web_returns" -> scaled sf 600
  | "inventory" -> scaled sf 8000
  | name -> Gpos.Gpos_error.internal "datagen: unknown table %s" name

let iv n = Datum.Int n
let fv x = Datum.Float x
let sv s = Datum.String s

(* seasonal date pick: November/December get ~2.5x weight *)
let pick_date rng =
  let sk = Gpos.Prng.int rng Schema.ndates in
  let moy = sk mod Schema.days_per_year / 30 + 1 in
  if (moy = 11 || moy = 12) || Gpos.Prng.float rng < 0.28 then sk
  else Gpos.Prng.int rng Schema.ndates

let pick_item rng nitems = Gpos.Prng.zipf rng ~n:nitems ~theta:0.6

let generate ?(seed = 20140622) ~sf () : db =
  let rng = Gpos.Prng.create seed in
  let rows : (string, Datum.t array list) Hashtbl.t = Hashtbl.create 32 in
  let n name = base_rows sf name in
  let nitems = n "item" and ncust = n "customer" and naddr = n "customer_address" in
  let put name build =
    let count = n name in
    let data = List.init count (fun k -> build k) in
    Hashtbl.replace rows name data
  in
  put "date_dim" (fun k ->
      let year = Schema.first_year + (k / Schema.days_per_year) in
      let doy = k mod Schema.days_per_year in
      let moy = (doy / 30) + 1 in
      let dom = (doy mod 30) + 1 in
      [|
        iv k;
        Datum.Date (((year - 1900) * 365) + ((moy - 1) * 31) + (dom - 1));
        iv year; iv moy; iv dom; iv (((moy - 1) / 3) + 1);
        sv day_names.(k mod 7);
      |]);
  put "time_dim" (fun k -> [| iv k; iv (k / 12); iv (k mod 12 * 5) |]);
  put "item" (fun k ->
      [|
        iv k;
        sv (Printf.sprintf "ITEM%06d" k);
        sv categories.(k mod Array.length categories);
        sv (Gpos.Prng.pick rng brands);
        sv (Gpos.Prng.pick rng classes);
        fv (Gpos.Prng.float_range rng 0.5 300.0);
        iv (Gpos.Prng.int rng 100);
      |]);
  put "customer" (fun k ->
      [|
        iv k;
        sv (Printf.sprintf "CUST%08d" k);
        sv (Printf.sprintf "first%03d" (Gpos.Prng.int rng 500));
        sv (Printf.sprintf "last%03d" (Gpos.Prng.int rng 500));
        iv (Gpos.Prng.int_range rng 1930 2000);
        iv (Gpos.Prng.int rng naddr);
        iv (Gpos.Prng.int rng 400);
      |]);
  put "customer_address" (fun k ->
      [|
        iv k;
        sv (Gpos.Prng.pick rng states);
        sv (Gpos.Prng.pick rng cities);
        sv (Gpos.Prng.pick rng countries);
        sv (Printf.sprintf "%05d" (Gpos.Prng.int rng 99999));
      |]);
  put "customer_demographics" (fun k ->
      [|
        iv k;
        sv genders.(k mod 2);
        sv marital.(k / 2 mod Array.length marital);
        sv education.(k / 10 mod Array.length education);
      |]);
  put "household_demographics" (fun k ->
      [|
        iv k; iv (k mod 20); sv buy_potential.(k mod Array.length buy_potential);
        iv (k mod 10);
      |]);
  put "income_band" (fun k -> [| iv k; iv (k * 10000); iv (((k + 1) * 10000) - 1) |]);
  put "store" (fun k ->
      [|
        iv k;
        sv (Printf.sprintf "S%04d" k);
        sv (Printf.sprintf "Store %d" k);
        sv states.(k mod Array.length states);
        sv (Gpos.Prng.pick rng cities);
        iv (Gpos.Prng.int_range rng 50 300);
      |]);
  put "call_center" (fun k ->
      [| iv k; sv (Printf.sprintf "CC %d" k); sv states.(k mod Array.length states) |]);
  put "catalog_page" (fun k ->
      [| iv k; sv categories.(k mod Array.length categories) |]);
  put "web_site" (fun k -> [| iv k; sv (Printf.sprintf "site%02d" k) |]);
  put "web_page" (fun k -> [| iv k; iv (Gpos.Prng.int_range rng 100 8000) |]);
  put "warehouse" (fun k ->
      [| iv k; sv (Printf.sprintf "Warehouse %d" k); sv states.(k mod Array.length states) |]);
  put "promotion" (fun k ->
      [| iv k; sv (if k mod 3 = 0 then "Y" else "N"); sv (if k mod 4 = 0 then "Y" else "N") |]);
  put "reason" (fun k -> [| iv k; sv (Printf.sprintf "reason %d" k) |]);
  put "ship_mode" (fun k ->
      [|
        iv k;
        sv [| "EXPRESS"; "OVERNIGHT"; "REGULAR"; "TWO DAY"; "LIBRARY" |].(k mod 5);
        sv (Printf.sprintf "carrier%d" (k mod 7));
      |]);
  put "household" (fun k -> [| iv k; iv (k mod 5) |]);
  put "store_sales" (fun k ->
      let price = Gpos.Prng.float_range rng 1.0 300.0 in
      let qty = Gpos.Prng.int_range rng 1 100 in
      let ext = price *. float_of_int qty in
      [|
        iv (pick_date rng);
        iv (pick_item rng nitems);
        iv (Gpos.Prng.int rng ncust);
        iv (Gpos.Prng.int rng (n "store"));
        iv (Gpos.Prng.int rng (n "promotion"));
        iv k;
        iv qty;
        fv price;
        fv ext;
        fv (ext *. (Gpos.Prng.float rng -. 0.35));
        fv (price *. 0.6);
      |]);
  put "store_returns" (fun k ->
      [|
        iv (pick_date rng);
        iv (pick_item rng nitems);
        iv (Gpos.Prng.int rng ncust);
        iv k;
        iv (Gpos.Prng.int_range rng 1 20);
        fv (Gpos.Prng.float_range rng 1.0 500.0);
      |]);
  put "catalog_sales" (fun _ ->
      let price = Gpos.Prng.float_range rng 1.0 300.0 in
      let qty = Gpos.Prng.int_range rng 1 100 in
      let ext = price *. float_of_int qty in
      [|
        iv (pick_date rng);
        iv (pick_item rng nitems);
        iv (Gpos.Prng.int rng ncust);
        iv (Gpos.Prng.int rng (n "call_center"));
        iv (Gpos.Prng.int rng (n "catalog_page"));
        iv (Gpos.Prng.int rng (n "ship_mode"));
        iv (Gpos.Prng.int rng (n "warehouse"));
        iv qty;
        fv price;
        fv ext;
        fv (ext *. (Gpos.Prng.float rng -. 0.35));
      |]);
  put "catalog_returns" (fun _ ->
      [|
        iv (pick_date rng);
        iv (pick_item rng nitems);
        iv (Gpos.Prng.int rng ncust);
        iv (Gpos.Prng.int_range rng 1 20);
        fv (Gpos.Prng.float_range rng 1.0 500.0);
      |]);
  put "web_sales" (fun _ ->
      let price = Gpos.Prng.float_range rng 1.0 300.0 in
      let qty = Gpos.Prng.int_range rng 1 100 in
      let ext = price *. float_of_int qty in
      [|
        iv (pick_date rng);
        iv (pick_item rng nitems);
        iv (Gpos.Prng.int rng ncust);
        iv (Gpos.Prng.int rng (n "web_site"));
        iv (Gpos.Prng.int rng (n "web_page"));
        iv (Gpos.Prng.int rng (n "promotion"));
        iv qty;
        fv price;
        fv ext;
        fv (ext *. (Gpos.Prng.float rng -. 0.35));
      |]);
  put "web_returns" (fun _ ->
      [|
        iv (pick_date rng);
        iv (pick_item rng nitems);
        iv (Gpos.Prng.int rng ncust);
        iv (Gpos.Prng.int_range rng 1 20);
        fv (Gpos.Prng.float_range rng 1.0 500.0);
      |]);
  put "inventory" (fun _ ->
      [|
        iv (Gpos.Prng.int rng Schema.ndates);
        iv (pick_item rng nitems);
        iv (Gpos.Prng.int rng (n "warehouse"));
        iv (Gpos.Prng.int_range rng 0 1000);
      |]);
  { sf; rows }

let table_rows (db : db) name =
  match Hashtbl.find_opt db.rows name with
  | Some rows -> rows
  | None -> Gpos.Gpos_error.internal "datagen: table %s not generated" name

(* --- catalog metadata + truthful statistics --- *)

let yearly_parts () =
  List.init Schema.nyears (fun y ->
      {
        Catalog.Metadata.pm_id = y;
        pm_lo = Datum.Int (y * Schema.days_per_year);
        pm_hi = Datum.Int ((y + 1) * Schema.days_per_year);
      })

let rel_md_of (spec : Schema.table_spec) : Catalog.Metadata.rel_md =
  let dist =
    match spec.Schema.dist with
    | Schema.Hash cols ->
        Catalog.Metadata.Hash_cols (List.map (Schema.col_position spec) cols)
    | Schema.Replicated -> Catalog.Metadata.Replicated_dist
    | Schema.Random -> Catalog.Metadata.Random_dist
  in
  Catalog.Metadata.rel_make ~dist
    ?part_col:(Option.map (Schema.col_position spec) spec.Schema.part_col)
    ~parts:(if spec.Schema.part_col = None then [] else yearly_parts ())
    ~indexes:
      (List.map
         (fun c ->
           {
             Catalog.Metadata.im_name = spec.Schema.tname ^ "_" ^ c ^ "_idx";
             im_col = Schema.col_position spec c;
           })
         spec.Schema.indexed)
    ~mdid:(Catalog.Md_id.make spec.Schema.oid)
    ~name:spec.Schema.tname
    (List.map
       (fun (cname, cty) -> { Catalog.Metadata.col_name = cname; col_type = cty })
       spec.Schema.cols)

let stats_md_of (db : db) (spec : Schema.table_spec) :
    Catalog.Metadata.rel_stats_md =
  let rows = table_rows db spec.Schema.tname in
  let nrows = List.length rows in
  (* sample large tables for histogram construction *)
  let sample =
    if nrows <= 4000 then rows
    else List.filteri (fun i _ -> i mod (nrows / 4000) = 0) rows
  in
  let scale = float_of_int nrows /. float_of_int (max 1 (List.length sample)) in
  let hists =
    List.mapi
      (fun pos _ ->
        let values = List.map (fun r -> r.(pos)) sample in
        (pos, Stats.Histogram.scale (Stats.Histogram.build values) scale))
      spec.Schema.cols
  in
  {
    Catalog.Metadata.st_mdid = Catalog.Md_id.make spec.Schema.oid;
    st_rows = float_of_int nrows;
    st_col_hists = hists;
  }

let metadata_objects (db : db) : Catalog.Metadata.obj list =
  List.concat_map
    (fun spec ->
      [ Catalog.Metadata.Rel (rel_md_of spec);
        Catalog.Metadata.Rel_stats (stats_md_of db spec) ])
    Schema.tables

let provider (db : db) : Catalog.Provider.t =
  Catalog.Provider.of_objects ~name:"tpcds" (metadata_objects db)

let load_cluster (db : db) (cluster : Exec.Cluster.t) : unit =
  List.iter
    (fun (spec : Schema.table_spec) ->
      let dist =
        match spec.Schema.dist with
        | Schema.Hash cols ->
            Exec.Cluster.By_hash (List.map (Schema.col_position spec) cols)
        | Schema.Replicated -> Exec.Cluster.By_replication
        | Schema.Random -> Exec.Cluster.By_random
      in
      Exec.Cluster.load_table cluster ~name:spec.Schema.tname ~dist
        (table_rows db spec.Schema.tname))
    Schema.tables

(* The query workload: 111 queries generated from parameterized templates
   (paper §7.1: 111 queries from the 99 TPC-DS templates). Each family
   mirrors a TPC-DS query class — reporting star joins, ad-hoc exploration,
   correlated subqueries, common expressions, set operations, channel
   comparisons — and each query carries mechanically derived SQL-feature
   tags used by the engine support matrices (Fig. 15). *)

type def = {
  qid : int;
  family : string;
  sql : string;
  features : Features.t list;
  correlated : bool;
  dialect : string list;
      (* constructs the family's real TPC-DS analog needs beyond our dialect
         (e.g. "window", "rollup"); used by engine support matrices *)
}

let categories = [ "Books"; "Electronics"; "Home"; "Sports"; "Music" ]
let states = [ "CA"; "TX"; "NY"; "FL"; "WA" ]
let years = [ 1998; 1999; 2000; 2001; 2002 ]

let year n = List.nth years (n mod List.length years)
let cat n = List.nth categories (n mod List.length categories)
let state n = List.nth states (n mod List.length states)

(* date_sk range of a year (matches Datagen's calendar) *)
let year_lo y = (y - Schema.first_year) * Schema.days_per_year
let year_hi y = (y - Schema.first_year + 1) * Schema.days_per_year

(* --- template families; each takes a variant number --- *)

let star_agg v =
  Printf.sprintf
    "SELECT i_brand, sum(ss_ext_sales_price) AS revenue FROM store_sales, \
     date_dim, item WHERE ss_sold_date_sk = d_date_sk AND ss_item_sk = \
     i_item_sk AND d_year = %d AND i_category = '%s' GROUP BY i_brand ORDER \
     BY revenue DESC, i_brand LIMIT 10"
    (year v) (cat v)

let reporting v =
  Printf.sprintf
    "SELECT i_category, avg(ss_quantity) AS qty, avg(ss_ext_sales_price) AS \
     amt FROM store_sales, customer, customer_demographics, date_dim, item \
     WHERE ss_customer_sk = c_customer_sk AND c_current_cdemo_sk = cd_demo_sk \
     AND ss_sold_date_sk = d_date_sk AND ss_item_sk = i_item_sk AND cd_gender \
     = '%s' AND cd_marital_status = '%s' AND d_year = %d GROUP BY ROLLUP \
     (i_category) ORDER BY i_category LIMIT 100"
    (if v mod 2 = 0 then "M" else "F")
    (List.nth [ "M"; "S"; "D" ] (v mod 3))
    (year v)

let channel_union v =
  Printf.sprintf
    "SELECT i_brand, sum(price) AS total FROM (SELECT ss_item_sk AS item_sk, \
     ss_ext_sales_price AS price FROM store_sales, date_dim WHERE \
     ss_sold_date_sk = d_date_sk AND d_year = %d UNION ALL SELECT ws_item_sk \
     AS item_sk, ws_ext_sales_price AS price FROM web_sales, date_dim WHERE \
     ws_sold_date_sk = d_date_sk AND d_year = %d UNION ALL SELECT cs_item_sk \
     AS item_sk, cs_ext_sales_price AS price FROM catalog_sales, date_dim \
     WHERE cs_sold_date_sk = d_date_sk AND d_year = %d) AS sales, item WHERE \
     item_sk = i_item_sk AND i_category = '%s' GROUP BY i_brand ORDER BY \
     total DESC LIMIT 20"
    (year v) (year v) (year v) (cat v)

let correlated_avg v =
  Printf.sprintf
    "SELECT c_customer_id, sr_return_amt FROM store_returns sr1, customer \
     WHERE sr1.sr_customer_sk = c_customer_sk AND sr1.sr_return_amt > \
     (SELECT avg(sr2.sr_return_amt) * 1.2 FROM store_returns sr2 WHERE \
     sr2.sr_item_sk = sr1.sr_item_sk) AND sr1.sr_returned_date_sk >= %d \
     ORDER BY sr_return_amt DESC, c_customer_id LIMIT 50"
    (year_lo (year v))

let correlated_max v =
  Printf.sprintf
    "SELECT i_item_id, i_current_price FROM item WHERE i_category = '%s' AND \
     i_current_price > (SELECT avg(ws_sales_price) FROM web_sales WHERE \
     ws_item_sk = i_item_sk) ORDER BY i_current_price DESC, i_item_id LIMIT \
     30"
    (cat v)

let exists_q v =
  Printf.sprintf
    "SELECT c_customer_id, c_last_name FROM customer WHERE EXISTS (SELECT 1 \
     FROM store_sales, date_dim WHERE ss_customer_sk = c_customer_sk AND \
     ss_sold_date_sk = d_date_sk AND d_year = %d AND ss_quantity > %d) ORDER \
     BY c_customer_id LIMIT 100"
    (year v)
    (80 + (v mod 3 * 5))

let not_exists_q v =
  Printf.sprintf
    "SELECT i_item_id FROM item WHERE i_category = '%s' AND NOT EXISTS \
     (SELECT 1 FROM store_returns WHERE sr_item_sk = i_item_sk AND \
     sr_return_quantity > %d) ORDER BY i_item_id LIMIT 100"
    (cat v)
    (10 + (v mod 3))

let in_subquery_q v =
  Printf.sprintf
    "SELECT i_item_id, i_current_price FROM item WHERE i_item_sk IN (SELECT \
     inv_item_sk FROM inventory WHERE inv_quantity_on_hand > %d) AND \
     i_current_price > %d ORDER BY i_current_price DESC, i_item_id LIMIT 50"
    (850 + (10 * (v mod 4)))
    (50 + (20 * (v mod 3)))

let cte_reuse v =
  Printf.sprintf
    "WITH ssales AS (SELECT ss_item_sk AS item_sk, sum(ss_ext_sales_price) \
     AS total FROM store_sales, date_dim WHERE ss_sold_date_sk = d_date_sk \
     AND d_year = %d GROUP BY ss_item_sk) SELECT s1.item_sk, s1.total FROM \
     ssales s1, ssales s2 WHERE s1.item_sk = s2.item_sk AND s1.total > %d \
     ORDER BY s1.total DESC LIMIT 25"
    (year v)
    (1000 * (1 + (v mod 3)))

let cte_two v =
  Printf.sprintf
    "WITH ss AS (SELECT ss_item_sk AS item_sk, count(*) AS cnt FROM \
     store_sales GROUP BY ss_item_sk), ws AS (SELECT ws_item_sk AS item_sk, \
     count(*) AS cnt FROM web_sales GROUP BY ws_item_sk) SELECT ss.item_sk, \
     ss.cnt AS store_cnt, ws.cnt AS web_cnt FROM ss, ws WHERE ss.item_sk = \
     ws.item_sk AND ss.cnt > ws.cnt + %d ORDER BY ss.cnt DESC, ss.item_sk \
     LIMIT 40"
    (v mod 4 * 5)

let intersect_q v =
  Printf.sprintf
    "SELECT ss_customer_sk FROM store_sales, date_dim WHERE ss_sold_date_sk \
     = d_date_sk AND d_year = %d INTERSECT SELECT ws_bill_customer_sk FROM \
     web_sales, date_dim WHERE ws_sold_date_sk = d_date_sk AND d_year = %d \
     ORDER BY 1 LIMIT 100"
    (year v) (year v)

let except_q v =
  Printf.sprintf
    "SELECT ss_customer_sk FROM store_sales WHERE ss_quantity > %d EXCEPT \
     SELECT wr_returning_customer_sk FROM web_returns ORDER BY 1 LIMIT 100"
    (60 + (10 * (v mod 3)))

let outer_join_q v =
  Printf.sprintf
    "SELECT s_store_name, sum(ss_net_profit) AS profit, \
     sum(sr_return_amt) AS returns FROM store_sales JOIN store ON ss_store_sk \
     = s_store_sk LEFT JOIN store_returns ON ss_item_sk = sr_item_sk AND \
     ss_ticket_number = sr_ticket_number WHERE ss_sold_date_sk BETWEEN %d \
     AND %d GROUP BY s_store_name ORDER BY profit DESC, s_store_name LIMIT \
     20"
    (year_lo (year v))
    (year_hi (year v) - 1)

let full_outer_q v =
  Printf.sprintf
    "SELECT store_part.customer_sk AS sc, web_part.customer_sk AS wc FROM \
     (SELECT ss_customer_sk AS customer_sk, count(*) AS cnt FROM store_sales \
     WHERE ss_quantity > %d GROUP BY ss_customer_sk) AS store_part FULL JOIN \
     (SELECT ws_bill_customer_sk AS customer_sk, count(*) AS cnt FROM \
     web_sales WHERE ws_quantity > %d GROUP BY ws_bill_customer_sk) AS \
     web_part ON store_part.customer_sk = web_part.customer_sk ORDER BY 1, 2 \
     LIMIT 100"
    (90 + (v mod 3))
    (90 + (v mod 3))

let case_agg v =
  Printf.sprintf
    "SELECT s_state, sum(CASE WHEN ss_quantity BETWEEN 1 AND 20 THEN 1 ELSE \
     0 END) AS low, sum(CASE WHEN ss_quantity BETWEEN 21 AND 60 THEN 1 ELSE \
     0 END) AS mid, sum(CASE WHEN ss_quantity > 60 THEN 1 ELSE 0 END) AS \
     high FROM store_sales, store, date_dim WHERE ss_store_sk = s_store_sk \
     AND ss_sold_date_sk = d_date_sk AND d_year = %d GROUP BY s_state ORDER \
     BY s_state LIMIT 30"
    (year v)

let having_q v =
  Printf.sprintf
    "SELECT ss_customer_sk, count(*) AS cnt, sum(ss_ext_sales_price) AS amt \
     FROM store_sales, date_dim WHERE ss_sold_date_sk = d_date_sk AND d_moy \
     = %d GROUP BY ss_customer_sk HAVING count(*) > %d ORDER BY cnt DESC, \
     ss_customer_sk LIMIT 50"
    (1 + (v mod 12))
    (2 + (v mod 3))

let distinct_q v =
  Printf.sprintf
    "SELECT i_category, count(DISTINCT ss_customer_sk) AS customers FROM \
     store_sales, item, date_dim WHERE ss_item_sk = i_item_sk AND \
     ss_sold_date_sk = d_date_sk AND d_year = %d GROUP BY i_category ORDER \
     BY customers DESC, i_category LIMIT 20"
    (year v)

let big_sort v =
  Printf.sprintf
    "SELECT ss_ticket_number, ss_item_sk, ss_ext_sales_price FROM \
     store_sales WHERE ss_quantity > %d ORDER BY ss_ext_sales_price DESC, \
     ss_ticket_number, ss_item_sk"
    (40 + (v mod 4 * 10))

let big_agg v =
  Printf.sprintf
    "SELECT ss_customer_sk, ss_item_sk, count(*) AS cnt, \
     sum(ss_ext_sales_price) AS amt, max(ss_net_profit) AS best FROM \
     store_sales WHERE ss_quantity > %d GROUP BY ss_customer_sk, ss_item_sk \
     ORDER BY amt DESC, ss_customer_sk, ss_item_sk LIMIT 100"
    (v mod 3 * 10)

let inventory_q v =
  Printf.sprintf
    "SELECT w_warehouse_name, i_item_id, avg(inv_quantity_on_hand) AS qoh \
     FROM inventory, warehouse, item, date_dim WHERE inv_warehouse_sk = \
     w_warehouse_sk AND inv_item_sk = i_item_sk AND inv_date_sk = d_date_sk \
     AND d_year = %d AND i_category = '%s' GROUP BY ROLLUP \
     (w_warehouse_name, i_item_id) ORDER BY qoh, w_warehouse_name, i_item_id \
     LIMIT 100"
    (year v) (cat v)

let multi_channel v =
  Printf.sprintf
    "SELECT i_item_id, sum(ss_net_profit) AS store_profit, \
     sum(cs_net_profit) AS catalog_profit FROM item, store_sales, \
     catalog_sales, date_dim d1, date_dim d2 WHERE ss_item_sk = i_item_sk \
     AND cs_item_sk = i_item_sk AND ss_sold_date_sk = d1.d_date_sk AND \
     cs_sold_date_sk = d2.d_date_sk AND d1.d_year = %d AND d2.d_year = %d \
     AND i_category = '%s' GROUP BY i_item_id ORDER BY store_profit DESC, \
     i_item_id LIMIT 30"
    (year v) (year v) (cat v)

let cross_state v =
  Printf.sprintf
    "SELECT ca_state, i_category, grouping(ca_state) + grouping(i_category) \
     AS lochierarchy, count(*) AS cnt FROM store_sales, customer, \
     customer_address, item, date_dim WHERE ss_customer_sk = c_customer_sk \
     AND c_current_addr_sk = ca_address_sk AND ss_item_sk = i_item_sk AND \
     ss_sold_date_sk = d_date_sk AND d_year = %d AND ca_state = '%s' GROUP \
     BY ROLLUP (ca_state, i_category) ORDER BY lochierarchy DESC, cnt DESC, \
     i_category LIMIT 20"
    (year v) (state v)

let promo_effect v =
  Printf.sprintf
    "SELECT i_category, sum(CASE WHEN p_channel_email = 'Y' THEN \
     ss_ext_sales_price ELSE 0 END) AS promo_sales, \
     sum(ss_ext_sales_price) AS total_sales FROM store_sales, promotion, \
     item, date_dim WHERE ss_promo_sk = p_promo_sk AND ss_item_sk = \
     i_item_sk AND ss_sold_date_sk = d_date_sk AND d_year = %d GROUP BY \
     i_category ORDER BY i_category"
    (year v)

let top_brands v =
  Printf.sprintf
    "SELECT i_brand, count(*) AS cnt FROM store_sales, item WHERE ss_item_sk \
     = i_item_sk AND ss_sales_price > %d GROUP BY i_brand ORDER BY cnt DESC, \
     i_brand LIMIT 15"
    (100 + (50 * (v mod 4)))

let returns_ratio v =
  Printf.sprintf
    "SELECT sales.item_sk, returns.ret_cnt, sales.sale_cnt FROM (SELECT \
     ss_item_sk AS item_sk, count(*) AS sale_cnt FROM store_sales GROUP BY \
     ss_item_sk) AS sales, (SELECT sr_item_sk AS item_sk, count(*) AS \
     ret_cnt FROM store_returns GROUP BY sr_item_sk) AS returns WHERE \
     sales.item_sk = returns.item_sk AND returns.ret_cnt * %d > \
     sales.sale_cnt ORDER BY returns.ret_cnt DESC, sales.item_sk LIMIT 50"
    (8 + (v mod 3))

let scalar_global v =
  Printf.sprintf
    "SELECT i_item_id, i_current_price FROM item WHERE i_current_price > \
     (SELECT avg(i_current_price) * %d FROM item) AND i_category = '%s' \
     ORDER BY i_current_price DESC, i_item_id LIMIT 20"
    (1 + (v mod 2))
    (cat v)

let semi_anti_combo v =
  Printf.sprintf
    "SELECT c_customer_id FROM customer WHERE c_customer_sk IN (SELECT \
     ss_customer_sk FROM store_sales WHERE ss_quantity > %d) AND NOT EXISTS \
     (SELECT 1 FROM web_sales WHERE ws_bill_customer_sk = c_customer_sk) \
     ORDER BY c_customer_id LIMIT 100"
    (85 + (v mod 3 * 5))

let date_range v =
  Printf.sprintf
    "SELECT s_store_name, sum(ss_ext_sales_price) AS revenue FROM \
     store_sales, store WHERE ss_store_sk = s_store_sk AND ss_sold_date_sk \
     BETWEEN %d AND %d GROUP BY s_store_name ORDER BY revenue DESC, \
     s_store_name LIMIT 10"
    (year_lo (year v))
    (year_lo (year v) + 89)

let non_equi v =
  Printf.sprintf
    "SELECT ib_income_band_sk, count(*) AS cnt FROM household_demographics \
     JOIN income_band ON hd_income_band_sk >= ib_income_band_sk - %d AND \
     hd_income_band_sk <= ib_income_band_sk GROUP BY ib_income_band_sk \
     ORDER BY ib_income_band_sk"
    (1 + (v mod 2))

let cte_union v =
  Printf.sprintf
    "WITH all_returns AS (SELECT sr_item_sk AS item_sk, sr_return_amt AS \
     amt FROM store_returns UNION ALL SELECT wr_item_sk AS item_sk, \
     wr_return_amt AS amt FROM web_returns) SELECT i_category, sum(amt) AS \
     total FROM all_returns, item WHERE item_sk = i_item_sk GROUP BY \
     i_category HAVING sum(amt) > %d ORDER BY total DESC LIMIT 10"
    (1000 * (1 + (v mod 3)))

let minmax_group v =
  (* top-k sales per item class: the classic RANK() OVER pattern; odd
     variants use DENSE_RANK, as real q44/q49/q98 mix the two *)
  Printf.sprintf
    "SELECT ranked.class, ranked.price, ranked.ticket, ranked.r FROM (SELECT \
     i_class AS class, ss_sales_price AS price, ss_ticket_number AS ticket, \
     %s OVER (PARTITION BY i_class ORDER BY ss_sales_price DESC) AS r \
     FROM store_sales, item WHERE ss_item_sk = i_item_sk AND ss_quantity > \
     %d) AS ranked WHERE ranked.r <= 2 ORDER BY ranked.class, ranked.r, \
     ranked.price, ranked.ticket LIMIT 40"
    (if v mod 2 = 1 then "dense_rank()" else "rank()")
    (90 + (v mod 3))

let web_page_q v =
  (* running revenue per page: SUM() OVER with the default running frame *)
  Printf.sprintf
    "SELECT ws_web_page_sk, ws_quantity, sum(ws_quantity) OVER (PARTITION BY \
     ws_web_page_sk ORDER BY ws_quantity) AS running FROM web_sales JOIN \
     web_page ON ws_web_page_sk = wp_web_page_sk WHERE ws_quantity BETWEEN \
     %d AND %d ORDER BY ws_web_page_sk, ws_quantity, running LIMIT 60"
    (v mod 3 * 10)
    (20 + (v mod 3 * 10))

let customer_profile v =
  Printf.sprintf
    "SELECT cd_education_status, count(*) AS cnt FROM customer, \
     customer_demographics, customer_address WHERE c_current_cdemo_sk = \
     cd_demo_sk AND c_current_addr_sk = ca_address_sk AND ca_state = '%s' \
     AND cd_gender = '%s' GROUP BY cd_education_status ORDER BY cnt DESC, \
     cd_education_status"
    (state v)
    (if v mod 2 = 0 then "F" else "M")

(* --- assembly: 111 queries --- *)

let families :
    (string * (int -> string) * bool * int * string list) list =
  (* (name, builder, correlated?, variants, dialect of the real analog) *)
  [
    ("star_agg", star_agg, false, 4, []);
    ("reporting", reporting, false, 4, []);
    ("channel_union", channel_union, false, 4, []);
    ("correlated_avg", correlated_avg, true, 4, []);
    ("correlated_max", correlated_max, true, 4, []);
    ("exists", exists_q, true, 3, []);
    ("not_exists", not_exists_q, true, 3, []);
    ("in_subquery", in_subquery_q, false, 4, []);
    ("cte_reuse", cte_reuse, false, 4, []);
    ("cte_two", cte_two, false, 4, []);
    ("intersect", intersect_q, false, 3, []);
    ("except", except_q, false, 3, []);
    ("outer_join", outer_join_q, false, 3, []);
    ("full_outer", full_outer_q, false, 3, []);
    ("case_agg", case_agg, false, 4, []);
    ("having", having_q, false, 3, [ "window" ]);
    ("distinct", distinct_q, false, 3, [ "window" ]);
    ("big_sort", big_sort, false, 3, []);
    ("big_agg", big_agg, false, 3, []);
    ("inventory", inventory_q, false, 4, []);
    ("multi_channel", multi_channel, false, 4, []);
    ("cross_state", cross_state, false, 4, []);
    ("promo_effect", promo_effect, false, 3, []);
    ("top_brands", top_brands, false, 4, []);
    ("returns_ratio", returns_ratio, false, 3, [ "window" ]);
    ("scalar_global", scalar_global, false, 3, []);
    ("semi_anti", semi_anti_combo, true, 3, []);
    ("date_range", date_range, false, 3, []);
    ("non_equi", non_equi, false, 2, []);
    ("cte_union", cte_union, false, 3, []);
    ("minmax_group", minmax_group, false, 3, []);
    ("web_page", web_page_q, false, 3, []);
    ("customer_profile", customer_profile, false, 3, [ "window" ]);
  ]

let all : def list Lazy.t =
  lazy
    (let qid = ref 0 in
     List.concat_map
       (fun (family, build, correlated, variants, dialect) ->
         List.init variants (fun v ->
             incr qid;
             let sql = build v in
             {
               qid = !qid;
               family;
               sql;
               features = Features.of_sql ~correlated sql;
               correlated;
               dialect;
             }))
       families)

let count () = List.length (Lazy.force all)

let get qid = List.find (fun d -> d.qid = qid) (Lazy.force all)

let has_feature d f = List.mem f d.features

(** Deterministic mini-TPC-DS data generator.

    Foreign keys are consistent, item popularity is Zipf-skewed, sale dates
    have a holiday boost, and the catalog statistics are histograms computed
    from the actual generated data (the optimizer sees truthful metadata, as
    after ANALYZE). *)

open Ir

type db = { sf : float; rows : (string, Datum.t array list) Hashtbl.t }

val generate : ?seed:int -> sf:float -> unit -> db
(** Generate all 25 tables at scale factor [sf] (facts scale linearly;
    date/time and small dimensions are fixed-size). Deterministic in
    [(seed, sf)]. *)

val base_rows : float -> string -> int
(** Cardinality of a table at the given scale factor. *)

val table_rows : db -> string -> Datum.t array list

val metadata_objects : db -> Catalog.Metadata.obj list
(** Relation metadata plus truthful statistics for every table. *)

val provider : db -> Catalog.Provider.t

val load_cluster : db -> Exec.Cluster.t -> unit
(** Load every table onto the cluster under its schema's distribution
    policy. *)

(** SQL-feature analysis of workload queries. Features are derived
    mechanically from the parsed AST (except correlation, a binding-time
    property declared by the template) and drive the per-engine support
    matrices of paper Fig. 15. *)

type t =
  | F_with
  | F_case
  | F_any_subquery           (** any subquery in an expression *)
  | F_correlated_subquery
  | F_exists
  | F_in_subquery
  | F_intersect
  | F_except
  | F_union_distinct
  | F_outer_join
  | F_full_outer_join
  | F_implicit_cross         (** comma-separated FROM with several entries *)
  | F_non_equi_join          (** ON condition with no equality conjunct *)
  | F_order_no_limit
  | F_distinct
  | F_having
  | F_from_subquery
  | F_window
  | F_rollup

val to_string : t -> string

val of_sql : ?correlated:bool -> string -> t list
(** Parse and analyse; the result is sorted and duplicate-free. *)

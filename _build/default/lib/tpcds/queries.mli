(** The benchmark workload: 111 queries generated from parameterized
    templates (paper §7.1: 111 queries from the 99 TPC-DS templates). Each
    family mirrors a TPC-DS query class; feature tags are derived
    mechanically from the SQL and drive the engine support matrices
    (Fig. 15). *)

type def = {
  qid : int;               (** 1..111 *)
  family : string;         (** template family name *)
  sql : string;
  features : Features.t list;
  correlated : bool;       (** contains a correlated subquery *)
  dialect : string list;
      (** constructs the family's real TPC-DS analog needs beyond our dialect
          (e.g. "window", "rollup"); used by engine support matrices *)
}

val all : def list Lazy.t
(** All 111 queries, in qid order. Deterministic. *)

val count : unit -> int

val get : int -> def
(** Raises [Not_found] for ids outside 1..111. *)

val has_feature : def -> Features.t -> bool

(** Mini-TPC-DS schema (paper §7.1: "TPC-DS with its 25 tables, 429 columns
    and 99 query templates"): 25 tables covering the benchmark's structure —
    three sales channels with returns, inventory, and the shared dimensions.
    Fact tables are hash-distributed on their item key and range-partitioned
    yearly on their sold-date; small dimensions are replicated. *)

open Ir

type dist_spec = Hash of string list | Replicated | Random

type table_spec = {
  tname : string;
  oid : int;
  cols : (string * Dtype.t) list;
  dist : dist_spec;
  part_col : string option;  (** yearly range partitions on this column *)
  indexed : string list;
  is_fact : bool;
}

val tables : table_spec list

val find : string -> table_spec
(** Raises [Not_found] for unknown tables. *)

val col_position : table_spec -> string -> int
val ncols : table_spec -> int

(** The simplified calendar backing the date dimension. *)

val first_year : int
val nyears : int
val days_per_year : int
val ndates : int
val date_sk_of_year : int -> int

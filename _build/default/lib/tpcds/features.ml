(* SQL-feature analysis of workload queries. Features are derived
   mechanically from the parsed AST (except correlation, which templates tag)
   and drive the per-engine support matrices of paper Fig. 15. *)

type t =
  | F_with
  | F_case
  | F_any_subquery              (* any subquery in an expression *)
  | F_correlated_subquery
  | F_exists
  | F_in_subquery
  | F_intersect
  | F_except
  | F_union_distinct
  | F_outer_join
  | F_full_outer_join
  | F_implicit_cross        (* comma-separated FROM with several entries *)
  | F_non_equi_join         (* ON condition with a non-equality conjunct *)
  | F_order_no_limit
  | F_distinct
  | F_having
  | F_from_subquery
  | F_window
  | F_rollup

let to_string = function
  | F_with -> "WITH"
  | F_case -> "CASE"
  | F_any_subquery -> "subquery"
  | F_correlated_subquery -> "correlated-subquery"
  | F_exists -> "EXISTS"
  | F_in_subquery -> "IN-subquery"
  | F_intersect -> "INTERSECT"
  | F_except -> "EXCEPT"
  | F_union_distinct -> "UNION"
  | F_outer_join -> "outer-join"
  | F_full_outer_join -> "full-outer-join"
  | F_implicit_cross -> "implicit-cross-join"
  | F_non_equi_join -> "non-equi-join"
  | F_order_no_limit -> "ORDER-BY-without-LIMIT"
  | F_distinct -> "DISTINCT"
  | F_having -> "HAVING"
  | F_from_subquery -> "FROM-subquery"
  | F_window -> "window-function"
  | F_rollup -> "ROLLUP/CUBE"

let rec expr_features (e : Sqlfront.Ast.expr) : t list =
  let open Sqlfront.Ast in
  match e with
  | E_case (whens, els) ->
      F_case
      :: (List.concat_map
            (fun (c, v) -> expr_features c @ expr_features v)
            whens
         @ match els with None -> [] | Some v -> expr_features v)
  | E_exists (q, _) -> (F_any_subquery :: F_exists :: query_features q)
  | E_in_query (x, q, _) ->
      (F_any_subquery :: F_in_subquery :: expr_features x) @ query_features q
  | E_scalar_subquery q -> F_any_subquery :: query_features q
  | E_cmp (_, a, b) | E_and (a, b) | E_or (a, b) | E_arith (_, a, b) ->
      expr_features a @ expr_features b
  | E_not a | E_neg a | E_is_null (a, _) | E_cast (a, _) | E_like (a, _) ->
      expr_features a
  | E_between (a, b, c) -> expr_features a @ expr_features b @ expr_features c
  | E_in_list (a, _) -> expr_features a
  | E_func (_, args) -> List.concat_map expr_features args
  | E_agg { agg_expr = Some a; agg_dist; _ } ->
      (if agg_dist then [ F_distinct ] else []) @ expr_features a
  | E_window w ->
      F_window
      :: ((match w.Sqlfront.Ast.win_expr with
          | Some a -> expr_features a
          | None -> [])
         @ List.concat_map expr_features w.Sqlfront.Ast.win_partition
         @ List.concat_map (fun (e, _) -> expr_features e) w.Sqlfront.Ast.win_order)
  | _ -> []

and has_equality (e : Sqlfront.Ast.expr) : bool =
  let open Sqlfront.Ast in
  match e with
  | E_cmp (Ir.Expr.Eq, _, _) -> true
  | E_and (a, b) -> has_equality a || has_equality b
  | _ -> false

and from_features (f : Sqlfront.Ast.from_item) : t list =
  let open Sqlfront.Ast in
  match f with
  | F_table _ -> []
  | F_subquery (q, _) -> F_from_subquery :: query_features q
  | F_join (l, jt, r, cond) ->
      let jt_f =
        match jt with
        | J_left | J_right -> [ F_outer_join ]
        | J_full -> [ F_outer_join; F_full_outer_join ]
        | J_inner | J_cross -> []
      in
      let cond_f =
        match cond with
        | None -> []
        | Some c ->
            (if has_equality c then [] else [ F_non_equi_join ])
            @ expr_features c
      in
      jt_f @ cond_f @ from_features l @ from_features r

and body_features (b : Sqlfront.Ast.body) : t list =
  let open Sqlfront.Ast in
  match b with
  | Select core ->
      (if core.distinct then [ F_distinct ] else [])
      @ (if core.group_mode <> Sqlfront.Ast.G_plain then [ F_rollup ] else [])
      @ (if core.having <> None then [ F_having ] else [])
      @ (if List.length core.from > 1 then [ F_implicit_cross ] else [])
      @ List.concat_map (fun it -> expr_features it.item_expr) core.items
      @ (match core.where with None -> [] | Some w -> expr_features w)
      @ (match core.having with None -> [] | Some h -> expr_features h)
      @ List.concat_map from_features core.from
  | Setop (kind, l, r) ->
      (match kind with
      | Ir.Expr.Intersect -> [ F_intersect ]
      | Ir.Expr.Except -> [ F_except ]
      | Ir.Expr.Union_distinct -> [ F_union_distinct ]
      | Ir.Expr.Union_all -> [])
      @ body_features l @ body_features r

and query_features (q : Sqlfront.Ast.query) : t list =
  (if q.Sqlfront.Ast.ctes <> [] then [ F_with ] else [])
  @ List.concat_map (fun (_, cq) -> query_features cq) q.Sqlfront.Ast.ctes
  @ body_features q.Sqlfront.Ast.body
  @
  if q.Sqlfront.Ast.order_by <> [] && q.Sqlfront.Ast.limit = None then
    [ F_order_no_limit ]
  else []

(* Analyse SQL text; [correlated] is declared by the template (correlation
   is a binding-time property). *)
let of_sql ?(correlated = false) (sql : string) : t list =
  let ast = Sqlfront.Parser.parse sql in
  let fs = query_features ast in
  let fs = if correlated then F_correlated_subquery :: fs else fs in
  List.sort_uniq compare fs

open Ir

(* Mini-TPC-DS schema (paper §7.1): 25 tables covering the benchmark's
   structure — three sales channels with returns, inventory, and the shared
   dimensions. Fact tables are hash-distributed on their item key and
   range-partitioned by sold-date (yearly); small dimensions are replicated,
   larger ones hash-distributed on their surrogate key, matching common GPDB
   deployments. *)

type dist_spec = Hash of string list | Replicated | Random

type table_spec = {
  tname : string;
  oid : int;
  cols : (string * Dtype.t) list;
  dist : dist_spec;
  part_col : string option; (* yearly range partitions on this column *)
  indexed : string list;
  is_fact : bool;
}

let i = Dtype.Int
let f = Dtype.Float
let s = Dtype.String
let d = Dtype.Date

let t tname oid ?(dist = Random) ?part_col ?(indexed = []) ?(fact = false) cols
    =
  { tname; oid; cols; dist; part_col; indexed; is_fact = fact }

let tables : table_spec list =
  [
    t "date_dim" 1001 ~dist:Replicated ~indexed:[ "d_date_sk" ]
      [
        ("d_date_sk", i); ("d_date", d); ("d_year", i); ("d_moy", i);
        ("d_dom", i); ("d_qoy", i); ("d_day_name", s);
      ];
    t "time_dim" 1002 ~dist:Replicated
      [ ("t_time_sk", i); ("t_hour", i); ("t_minute", i) ];
    t "item" 1003 ~dist:(Hash [ "i_item_sk" ]) ~indexed:[ "i_item_sk" ]
      [
        ("i_item_sk", i); ("i_item_id", s); ("i_category", s); ("i_brand", s);
        ("i_class", s); ("i_current_price", f); ("i_manufact_id", i);
      ];
    t "customer" 1004 ~dist:(Hash [ "c_customer_sk" ])
      [
        ("c_customer_sk", i); ("c_customer_id", s); ("c_first_name", s);
        ("c_last_name", s); ("c_birth_year", i); ("c_current_addr_sk", i);
        ("c_current_cdemo_sk", i);
      ];
    t "customer_address" 1005 ~dist:(Hash [ "ca_address_sk" ])
      [
        ("ca_address_sk", i); ("ca_state", s); ("ca_city", s);
        ("ca_country", s); ("ca_zip", s);
      ];
    t "customer_demographics" 1006 ~dist:(Hash [ "cd_demo_sk" ])
      [
        ("cd_demo_sk", i); ("cd_gender", s); ("cd_marital_status", s);
        ("cd_education_status", s);
      ];
    t "household_demographics" 1007 ~dist:Replicated
      [
        ("hd_demo_sk", i); ("hd_income_band_sk", i); ("hd_buy_potential", s);
        ("hd_dep_count", i);
      ];
    t "income_band" 1008 ~dist:Replicated
      [ ("ib_income_band_sk", i); ("ib_lower_bound", i); ("ib_upper_bound", i) ];
    t "store" 1009 ~dist:Replicated
      [
        ("s_store_sk", i); ("s_store_id", s); ("s_store_name", s);
        ("s_state", s); ("s_city", s); ("s_number_employees", i);
      ];
    t "call_center" 1010 ~dist:Replicated
      [ ("cc_call_center_sk", i); ("cc_name", s); ("cc_state", s) ];
    t "catalog_page" 1011 ~dist:Replicated
      [ ("cp_catalog_page_sk", i); ("cp_department", s) ];
    t "web_site" 1012 ~dist:Replicated
      [ ("web_site_sk", i); ("web_name", s) ];
    t "web_page" 1013 ~dist:Replicated
      [ ("wp_web_page_sk", i); ("wp_char_count", i) ];
    t "warehouse" 1014 ~dist:Replicated
      [ ("w_warehouse_sk", i); ("w_warehouse_name", s); ("w_state", s) ];
    t "promotion" 1015 ~dist:Replicated
      [ ("p_promo_sk", i); ("p_channel_email", s); ("p_channel_tv", s) ];
    t "reason" 1016 ~dist:Replicated
      [ ("r_reason_sk", i); ("r_reason_desc", s) ];
    t "ship_mode" 1017 ~dist:Replicated
      [ ("sm_ship_mode_sk", i); ("sm_type", s); ("sm_carrier", s) ];
    t "household" 1018 ~dist:Replicated
      [ ("h_household_sk", i); ("h_vehicle_count", i) ];
    t "store_sales" 2001
      ~dist:(Hash [ "ss_item_sk" ])
      ~part_col:"ss_sold_date_sk" ~fact:true
      [
        ("ss_sold_date_sk", i); ("ss_item_sk", i); ("ss_customer_sk", i);
        ("ss_store_sk", i); ("ss_promo_sk", i); ("ss_ticket_number", i);
        ("ss_quantity", i); ("ss_sales_price", f); ("ss_ext_sales_price", f);
        ("ss_net_profit", f); ("ss_wholesale_cost", f);
      ];
    t "store_returns" 2002
      ~dist:(Hash [ "sr_item_sk" ])
      ~part_col:"sr_returned_date_sk" ~fact:true
      [
        ("sr_returned_date_sk", i); ("sr_item_sk", i); ("sr_customer_sk", i);
        ("sr_ticket_number", i); ("sr_return_quantity", i);
        ("sr_return_amt", f);
      ];
    t "catalog_sales" 2003
      ~dist:(Hash [ "cs_item_sk" ])
      ~part_col:"cs_sold_date_sk" ~fact:true
      [
        ("cs_sold_date_sk", i); ("cs_item_sk", i); ("cs_bill_customer_sk", i);
        ("cs_call_center_sk", i); ("cs_catalog_page_sk", i);
        ("cs_ship_mode_sk", i); ("cs_warehouse_sk", i); ("cs_quantity", i);
        ("cs_sales_price", f); ("cs_ext_sales_price", f); ("cs_net_profit", f);
      ];
    t "catalog_returns" 2004
      ~dist:(Hash [ "cr_item_sk" ])
      ~part_col:"cr_returned_date_sk" ~fact:true
      [
        ("cr_returned_date_sk", i); ("cr_item_sk", i);
        ("cr_returning_customer_sk", i); ("cr_return_quantity", i);
        ("cr_return_amount", f);
      ];
    t "web_sales" 2005
      ~dist:(Hash [ "ws_item_sk" ])
      ~part_col:"ws_sold_date_sk" ~fact:true
      [
        ("ws_sold_date_sk", i); ("ws_item_sk", i); ("ws_bill_customer_sk", i);
        ("ws_web_site_sk", i); ("ws_web_page_sk", i); ("ws_promo_sk", i);
        ("ws_quantity", i); ("ws_sales_price", f); ("ws_ext_sales_price", f);
        ("ws_net_profit", f);
      ];
    t "web_returns" 2006
      ~dist:(Hash [ "wr_item_sk" ])
      ~part_col:"wr_returned_date_sk" ~fact:true
      [
        ("wr_returned_date_sk", i); ("wr_item_sk", i);
        ("wr_returning_customer_sk", i); ("wr_return_quantity", i);
        ("wr_return_amt", f);
      ];
    t "inventory" 2007
      ~dist:(Hash [ "inv_item_sk" ])
      ~part_col:"inv_date_sk" ~fact:true
      [
        ("inv_date_sk", i); ("inv_item_sk", i); ("inv_warehouse_sk", i);
        ("inv_quantity_on_hand", i);
      ];
  ]

let find name = List.find (fun spec -> spec.tname = name) tables

let col_position spec cname =
  let rec go idx = function
    | [] -> Gpos.Gpos_error.internal "schema: column %s.%s" spec.tname cname
    | (c, _) :: rest -> if c = cname then idx else go (idx + 1) rest
  in
  go 0 spec.cols

let ncols spec = List.length spec.cols

(* Date dimension covers five years, 360 simplified days each. *)
let first_year = 1998
let nyears = 5
let days_per_year = 360
let ndates = nyears * days_per_year

let date_sk_of_year year = (year - first_year) * days_per_year

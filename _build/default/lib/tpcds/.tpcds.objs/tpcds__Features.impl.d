lib/tpcds/features.ml: Ir List Sqlfront

lib/tpcds/datagen.mli: Catalog Datum Exec Hashtbl Ir

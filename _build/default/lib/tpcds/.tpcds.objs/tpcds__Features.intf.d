lib/tpcds/features.mli:

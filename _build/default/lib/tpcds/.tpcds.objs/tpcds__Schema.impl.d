lib/tpcds/schema.ml: Dtype Gpos Ir List

lib/tpcds/datagen.ml: Array Catalog Datum Exec Gpos Hashtbl Ir List Option Printf Schema Stats

lib/tpcds/queries.ml: Features Lazy List Printf Schema

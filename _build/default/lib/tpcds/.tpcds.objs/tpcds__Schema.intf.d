lib/tpcds/schema.mli: Dtype Ir

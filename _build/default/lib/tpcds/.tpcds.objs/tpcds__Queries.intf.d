lib/tpcds/queries.mli: Features Lazy

open Ir

(* Column pruning: narrow each join input to the columns actually needed
   above it, by inserting pass-through projections. Narrower rows mean fewer
   bytes through motions and smaller hash-join build states — a standard
   optimizer preprocessing step (GPORCA prunes unused columns the same way).

   Runs after decorrelation (no Apply operators remain). Set-operation
   children are never narrowed (their columns map positionally), and CTE
   producers keep their full output (consumers choose their own columns). *)

let narrow (child : Ltree.t) (needed : Colref.Set.t) : Ltree.t =
  let out = Ltree.output_cols child in
  let kept = List.filter (fun c -> Colref.Set.mem c needed) out in
  let is_join =
    match child.Ltree.op with Expr.L_join _ -> true | _ -> false
  in
  (* never narrow to zero columns, skip no-op projections, and never wrap a
     join: a projection between two joins would hide the inner join from the
     associativity rule's pattern and freeze the join order *)
  if kept = [] || List.length kept = List.length out || is_join then child
  else
    Ltree.make
      (Expr.L_project
         (List.map (fun c -> { Expr.proj_expr = Expr.Col c; proj_out = c }) kept))
      [ child ]

(* [required] is what the parent consumes from this node's output. *)
let rec prune (t : Ltree.t) ~(required : Colref.Set.t) : Ltree.t =
  match (t.Ltree.op, t.Ltree.children) with
  | Expr.L_join (kind, cond), [ l; r ] ->
      let needed = Colref.Set.union required (Scalar_ops.free_cols cond) in
      let l' = narrow (prune l ~required:needed) needed in
      let r' = narrow (prune r ~required:needed) needed in
      Ltree.make (Expr.L_join (kind, cond)) [ l'; r' ]
  | Expr.L_select pred, [ c ] ->
      let needed = Colref.Set.union required (Scalar_ops.free_cols pred) in
      Ltree.make (Expr.L_select pred) [ prune c ~required:needed ]
  | Expr.L_project projs, [ c ] ->
      (* keep only projections the parent needs (all of them for the root
         projection, whose outputs are the query's outputs) *)
      let kept =
        List.filter (fun p -> Colref.Set.mem p.Expr.proj_out required) projs
      in
      let kept = if kept = [] then projs else kept in
      let needed =
        Scalar_ops.free_cols_of_list (List.map (fun p -> p.Expr.proj_expr) kept)
      in
      Ltree.make (Expr.L_project kept) [ prune c ~required:needed ]
  | Expr.L_gb_agg (phase, keys, aggs), [ c ] ->
      let needed =
        Colref.Set.union
          (Colref.Set.of_list keys)
          (Scalar_ops.free_cols_of_list (List.filter_map (fun a -> a.Expr.agg_arg) aggs))
      in
      Ltree.make (Expr.L_gb_agg (phase, keys, aggs)) [ prune c ~required:needed ]
  | Expr.L_limit (sort, offset, count), [ c ] ->
      let needed =
        Colref.Set.union required (Colref.Set.of_list (Sortspec.cols sort))
      in
      Ltree.make (Expr.L_limit (sort, offset, count)) [ prune c ~required:needed ]
  | Expr.L_cte_anchor id, [ producer; body ] ->
      (* the producer's output is shared by all consumers: keep it intact *)
      let producer' =
        match (producer.Ltree.op, producer.Ltree.children) with
        | Expr.L_cte_producer pid, [ pc ] ->
            let full = Colref.Set.of_list (Ltree.output_cols pc) in
            Ltree.make (Expr.L_cte_producer pid) [ prune pc ~required:full ]
        | _ -> producer
      in
      Ltree.make (Expr.L_cte_anchor id) [ producer'; prune body ~required ]
  | Expr.L_set (kind, cols), children ->
      (* positional columns: children keep their full output *)
      Ltree.make (Expr.L_set (kind, cols))
        (List.map
           (fun c ->
             prune c ~required:(Colref.Set.of_list (Ltree.output_cols c)))
           children)
  | _, children ->
      (* leaves and anything else: recurse with full child outputs *)
      {
        t with
        Ltree.children =
          List.map
            (fun c ->
              prune c ~required:(Colref.Set.of_list (Ltree.output_cols c)))
            children;
      }

let run (t : Ltree.t) ~(output : Colref.t list) : Ltree.t =
  prune t ~required:(Colref.Set.of_list output)

(** Subquery decorrelation (paper §7.2.2 "Correlated Subqueries": Orca
    detects deeply correlated predicates and pulls them up into joins to
    avoid repeated execution).

    Runs on the binder's logical tree before Memo copy-in and rewrites:
    - [Apply_exists]/[Apply_not_exists] into semi/anti-semi joins on the
      pulled-up correlated predicates;
    - [Apply_in]/[Apply_not_in] into semi/anti-semi joins on membership plus
      pulled predicates (simplified NOT IN semantics, see DESIGN.md);
    - correlated scalar aggregates into a left outer join against the
      aggregate grouped by the correlation keys (Kim's method), with COUNT
      results wrapped in COALESCE(.., 0) and computed projections (e.g. the
      AVG = SUM/COUNT decomposition, or "agg * 1.2") carried across;
    - uncorrelated scalar subqueries into plain joins.

    Applies whose correlation cannot be pulled up (e.g. non-equality
    correlation under an aggregate) are left in place and counted in
    [remaining]; the optimizer reports them as unsupported. *)

type result = {
  tree : Ir.Ltree.t;
  rewritten : int;  (** Apply operators successfully unnested *)
  remaining : int;  (** Apply operators left in the tree *)
}

val run : Ir.Colref.Factory.t -> Ir.Ltree.t -> result

(** Exploration rules (paper §4.1 step 1): logical-to-logical
    transformations that grow the Memo with algebraically equivalent
    expressions. Each rule is a {!Rule.t} whose [apply] pattern-matches a
    group expression and returns new logical group expressions. *)

val join_commutativity : Rule.t
(** [A ⋈ B → B ⋈ A] for inner joins (the paper's Fig. 4 example). *)

val join_associativity : Rule.t
(** [(A ⋈ B) ⋈ C → A ⋈ (B ⋈ C)] for inner joins, recombining the
    conjuncts so each join keeps the predicates it can evaluate. *)

val select_merge_join : Rule.t
(** Merge a select over an inner join into the join's predicate, enabling
    further reordering under it. *)

val select_pushdown_outer_join : Rule.t
(** Push a select below the outer-preserving side of a left outer join when
    its predicate references only that side's columns. *)

val select_pushdown_gb_agg : Rule.t
(** Push a select below a group-by aggregate when the predicate only uses
    grouping columns. *)

val split_gb_agg : Rule.t
(** Two-stage aggregation (§7.2.2 "multi-stage aggregates"): split a
    one-phase aggregate into a Partial aggregate below a Final aggregate so
    the partial stage can run pre-motion on each segment. *)

val all : Rule.t list
(** Every exploration rule, in application order. *)

(** Static partition elimination (paper §7.2.2, simplified from its
    reference [2]): given a predicate over a range-partitioned table's
    partitioning column, compute the partitions that can contain qualifying
    rows. Conservative: only equality, range and IN-list conjuncts on the
    partitioning column prune. *)

val prune : Ir.Table_desc.t -> Ir.Expr.scalar -> int list option
(** [None] when no conjunct constrains the partitioning column (no pruning
    possible); [Some ids] otherwise — possibly all partitions, possibly
    none. *)

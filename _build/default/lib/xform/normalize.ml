open Ir

(* Logical-tree normalization run before Memo copy-in: constant folding,
   trivial select elimination, adjacent select merging, and pushing filters
   toward the tables they constrain. The Memo's exploration rules can derive
   the push-downs too; normalizing first keeps the initial plan space small,
   exactly like GPORCA's preprocessing step. *)

let fold_tree_constants (t : Ltree.t) : Ltree.t =
  Ltree.map_bottom_up
    (fun node ->
      let fold_op (op : Expr.logical) : Expr.logical =
        match op with
        | Expr.L_select pred -> Expr.L_select (Scalar_eval.fold_constants pred)
        | Expr.L_join (k, cond) ->
            Expr.L_join (k, Scalar_eval.fold_constants cond)
        | Expr.L_project projs ->
            Expr.L_project
              (List.map
                 (fun p ->
                   {
                     p with
                     Expr.proj_expr = Scalar_eval.fold_constants p.Expr.proj_expr;
                   })
                 projs)
        | op -> op
      in
      { node with Ltree.op = fold_op node.Ltree.op })
    t

let merge_selects (t : Ltree.t) : Ltree.t =
  Ltree.map_bottom_up
    (fun node ->
      match (node.Ltree.op, node.Ltree.children) with
      | Expr.L_select p1, [ { Ltree.op = Expr.L_select p2; children = [ c ] } ]
        ->
          Ltree.make
            (Expr.L_select
               (Scalar_ops.conjoin
                  (Scalar_ops.conjuncts p1 @ Scalar_ops.conjuncts p2)))
            [ c ]
      | Expr.L_select (Expr.Const (Datum.Bool true)), [ c ] -> c
      | _ -> node)
    t

(* Push select conjuncts below inner joins when they reference one side only,
   and merge join-key conjuncts into inner-join conditions. *)
let rec push_selects (t : Ltree.t) : Ltree.t =
  let children = List.map push_selects t.Ltree.children in
  let t = { t with Ltree.children } in
  match (t.Ltree.op, t.Ltree.children) with
  | Expr.L_select pred, [ ({ Ltree.op = Expr.L_join (Expr.Inner, cond); children = [ l; r ] } as _join) ] ->
      let lcols = Colref.Set.of_list (Ltree.output_cols l) in
      let rcols = Colref.Set.of_list (Ltree.output_cols r) in
      let conjuncts = Scalar_ops.conjuncts pred in
      let to_l, rest =
        List.partition
          (fun c -> Colref.Set.subset (Scalar_ops.free_cols c) lcols)
          conjuncts
      in
      let to_r, to_join =
        List.partition
          (fun c -> Colref.Set.subset (Scalar_ops.free_cols c) rcols)
          rest
      in
      let wrap side = function
        | [] -> side
        | cs -> Ltree.make (Expr.L_select (Scalar_ops.conjoin cs)) [ side ]
      in
      let l' = push_selects (wrap l to_l) in
      let r' = push_selects (wrap r to_r) in
      let cond' =
        Scalar_ops.conjoin (Scalar_ops.conjuncts cond @ to_join)
      in
      Ltree.make (Expr.L_join (Expr.Inner, cond')) [ l'; r' ]
  | _ -> t

let run (t : Ltree.t) : Ltree.t =
  t |> fold_tree_constants |> merge_selects |> push_selects |> merge_selects

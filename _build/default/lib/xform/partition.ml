open Ir

(* Static partition elimination (paper §7.2.2 "Partition Elimination",
   simplified from [2]): given a predicate over a range-partitioned table's
   partitioning column, compute the partitions that can contain qualifying
   rows. Returns [None] when no pruning is possible. *)

let prune (td : Table_desc.t) (pred : Expr.scalar) : int list option =
  match td.Table_desc.part_col with
  | None -> None
  | Some pc ->
      let all_ids = List.map (fun p -> p.Table_desc.part_id) td.Table_desc.parts in
      let constrain_conjunct ids c =
        let keep_ids parts =
          List.filter
            (fun id ->
              List.exists (fun p -> p.Table_desc.part_id = id) parts)
            ids
        in
        match c with
        | Expr.Cmp (op, Expr.Col col, Expr.Const v)
          when Colref.equal col pc && not (Datum.is_null v) -> (
            match op with
            | Expr.Eq -> Some (keep_ids (Table_desc.parts_matching_value td v))
            | Expr.Lt | Expr.Le ->
                Some
                  (keep_ids
                     (Table_desc.parts_matching_range td ~lo:None ~hi:(Some v)))
            | Expr.Gt | Expr.Ge ->
                Some
                  (keep_ids
                     (Table_desc.parts_matching_range td ~lo:(Some v) ~hi:None))
            | Expr.Neq -> None)
        | Expr.Cmp (op, Expr.Const v, Expr.Col col)
          when Colref.equal col pc && not (Datum.is_null v) -> (
            match Expr.flip_cmp op with
            | Expr.Eq -> Some (keep_ids (Table_desc.parts_matching_value td v))
            | Expr.Lt | Expr.Le ->
                Some
                  (keep_ids
                     (Table_desc.parts_matching_range td ~lo:None ~hi:(Some v)))
            | Expr.Gt | Expr.Ge ->
                Some
                  (keep_ids
                     (Table_desc.parts_matching_range td ~lo:(Some v) ~hi:None))
            | Expr.Neq -> None)
        | Expr.In_list (Expr.Col col, vs) when Colref.equal col pc ->
            let parts =
              List.concat_map (Table_desc.parts_matching_value td) vs
            in
            Some (keep_ids parts)
        | _ -> None
      in
      let pruned, any =
        List.fold_left
          (fun (ids, any) c ->
            match constrain_conjunct ids c with
            | Some ids' -> (ids', true)
            | None -> (ids, any))
          (all_ids, false)
          (Scalar_ops.conjuncts pred)
      in
      if any then Some (List.sort_uniq Int.compare pruned) else None

(** Implementation rules (paper §4.1 step 3): logical-to-physical
    transformations. Each produces physical group expressions in the same
    group; costing and property enforcement happen later, during
    optimization. *)

val get2scan : Rule.t
(** Logical Get → sequential table scan. *)

val select2filter : Rule.t
(** Logical Select → physical Filter over its child. *)

val select2scan : Rule.t
(** Select over a Get → predicated scan; performs static partition
    elimination when the predicate constrains the partitioning column
    (§7.2.2 "partition elimination"). *)

val select2index_scan : Rule.t
(** Select over a Get → index scan when an index covers an equality or
    range conjunct. *)

val project_impl : Rule.t

val join2hashjoin : Rule.t
(** Inner/outer/semi/anti joins with equi-conjuncts → hash join. *)

val join2nljoin : Rule.t
(** Any join → nested-loop join (also the only implementation for
    correlated Apply-style joins). *)

val join2mergejoin : Rule.t
(** Equi-joins → sort-merge join; delivers the join keys' sort order. *)

val gbagg2hashagg : Rule.t
val gbagg2streamagg : Rule.t

val window_impl : Rule.t
(** Logical Window → physical Window (requests partition co-location and
    (partition, order) sorting; see {!Search.Requests}). *)

val limit_impl : Rule.t

val cte_anchor2sequence : Rule.t
(** CTE anchor → Sequence(producer, consumer-side plan), the paper's §B
    CTE execution shape. *)

val cte_producer_impl : Rule.t
val cte_consumer_impl : Rule.t

val set_impl : Rule.t
(** UNION / UNION ALL / INTERSECT / EXCEPT implementations. *)

val const_table_impl : Rule.t

val all : Rule.t list
(** Every implementation rule, in application order. *)

(** Logical-tree normalization run before Memo copy-in (GPORCA-style
    preprocessing): constant folding, trivial-select elimination, adjacent
    select merging, and pushing filters toward the tables they constrain.
    The Memo's exploration rules can derive the same push-downs; normalizing
    first keeps the initial plan space small. Semantics-preserving. *)

val fold_tree_constants : Ir.Ltree.t -> Ir.Ltree.t
val merge_selects : Ir.Ltree.t -> Ir.Ltree.t
val push_selects : Ir.Ltree.t -> Ir.Ltree.t

val run : Ir.Ltree.t -> Ir.Ltree.t
(** All passes, in order. *)

lib/xform/normalize.ml: Colref Datum Expr Ir List Ltree Scalar_eval Scalar_ops

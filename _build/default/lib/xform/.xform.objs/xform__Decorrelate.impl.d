lib/xform/decorrelate.ml: Colref Datum Expr Ir List Logical_ops Ltree Scalar_ops

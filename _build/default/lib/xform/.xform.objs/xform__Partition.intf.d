lib/xform/partition.mli: Ir

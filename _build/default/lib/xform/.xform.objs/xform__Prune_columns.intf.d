lib/xform/prune_columns.mli: Ir

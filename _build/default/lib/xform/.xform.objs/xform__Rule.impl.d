lib/xform/rule.ml: Colref Expr Ir Memolib

lib/xform/rule.mli: Colref Expr Ir Memolib

lib/xform/normalize.mli: Ir

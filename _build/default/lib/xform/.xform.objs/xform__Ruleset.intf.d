lib/xform/ruleset.mli: Rule

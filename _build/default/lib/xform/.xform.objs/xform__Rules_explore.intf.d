lib/xform/rules_explore.mli: Rule

lib/xform/prune_columns.ml: Colref Expr Ir List Ltree Scalar_ops Sortspec

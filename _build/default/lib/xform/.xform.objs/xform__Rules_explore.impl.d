lib/xform/rules_explore.ml: Colref Dtype Expr Ir List Memolib Rule Scalar_ops

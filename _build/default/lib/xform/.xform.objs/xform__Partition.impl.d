lib/xform/partition.ml: Colref Datum Expr Int Ir List Scalar_ops Table_desc

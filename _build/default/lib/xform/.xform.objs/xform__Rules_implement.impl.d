lib/xform/rules_implement.ml: Colref Expr Ir List Memolib Partition Rule Scalar_ops Table_desc

lib/xform/decorrelate.mli: Ir

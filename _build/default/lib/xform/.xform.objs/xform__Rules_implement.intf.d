lib/xform/rules_implement.mli: Rule

lib/xform/ruleset.ml: List Rule Rules_explore Rules_implement

open Ir

(* Subquery decorrelation (paper §7.2.2 "Correlated Subqueries": Orca adopts
   a unified subquery representation, detects deeply correlated predicates
   and pulls them up into joins to avoid repeated execution).

   The binder represents every subquery as an Apply operator. This pass runs
   on the logical tree before Memo copy-in and rewrites:

     Apply[Exists]     => Semi join on the pulled-up correlated predicates
     Apply[NotExists]  => Anti-semi join
     Apply[In e]       => Semi join on (e = inner_col) AND pulled predicates
     Apply[NotIn e]    => Anti-semi join (simplified NOT IN semantics:
                          correct when the inner column is non-null,
                          see DESIGN.md)
     Apply[Scalar]     => for a correlated scalar aggregate
                          (SELECT agg(..) FROM .. WHERE inner_c = outer_c):
                          left outer join with the aggregate grouped by the
                          correlation keys (Kim's method); COUNT results are
                          wrapped in COALESCE(.., 0)
                        => for an uncorrelated subquery: a plain join

   Applies whose correlation cannot be pulled up (e.g. non-equality
   correlation under an aggregate) are left in place; the optimizer reports
   them as unsupported. The legacy Planner never decorrelates — it executes
   such subqueries as repeated SubPlans, which is precisely the performance
   gap Figure 12 attributes to this feature. *)

type result = { tree : Ltree.t; rewritten : int; remaining : int }

(* Pull conjuncts referencing [corr] out of a tree spine of
   Select/Inner-Join/Project nodes. Returns the cleaned tree and the pulled
   conjuncts. Pulled predicates referencing columns hidden by a projection
   force those columns to be added as pass-through projections. *)
let rec pull_correlated ~(corr : Colref.Set.t) (t : Ltree.t) :
    Ltree.t * Expr.scalar list =
  let is_correlated c =
    not (Colref.Set.is_empty (Colref.Set.inter (Scalar_ops.free_cols c) corr))
  in
  match t.Ltree.op, t.Ltree.children with
  | Expr.L_select pred, [ child ] ->
      let child', pulled_below = pull_correlated ~corr child in
      let correlated, clean =
        List.partition is_correlated (Scalar_ops.conjuncts pred)
      in
      let t' =
        if clean = [] then child'
        else Ltree.make (Expr.L_select (Scalar_ops.conjoin clean)) [ child' ]
      in
      (t', correlated @ pulled_below)
  | Expr.L_join (Expr.Inner, cond), [ l; r ] ->
      let l', pl = pull_correlated ~corr l in
      let r', pr = pull_correlated ~corr r in
      let correlated, clean =
        List.partition is_correlated (Scalar_ops.conjuncts cond)
      in
      ( Ltree.make (Expr.L_join (Expr.Inner, Scalar_ops.conjoin clean)) [ l'; r' ],
        correlated @ pl @ pr )
  | Expr.L_project projs, [ child ] ->
      let child', pulled = pull_correlated ~corr child in
      if pulled = [] then
        (Ltree.make (Expr.L_project projs) [ child' ], [])
      else begin
        (* make columns used by pulled predicates survive the projection *)
        let needed =
          Colref.Set.diff
            (Scalar_ops.free_cols_of_list pulled)
            corr
        in
        let already =
          Colref.Set.of_list (List.map (fun p -> p.Expr.proj_out) projs)
        in
        let missing = Colref.Set.diff needed already in
        let extra =
          List.map
            (fun c -> { Expr.proj_expr = Expr.Col c; proj_out = c })
            (Colref.Set.elements missing)
        in
        (Ltree.make (Expr.L_project (projs @ extra)) [ child' ], pulled)
      end
  | _ -> (t, [])

let tree_references ~(corr : Colref.Set.t) (t : Ltree.t) =
  Ltree.fold
    (fun acc node ->
      acc
      || not
           (Colref.Set.is_empty
              (Colref.Set.inter (Logical_ops.used_cols node.Ltree.op) corr)))
    false t

(* Split pulled predicates into equality pairs (inner column = outer column)
   and the rest. *)
let equi_pairs ~(corr : Colref.Set.t) pulled =
  List.partition_map
    (fun c ->
      match c with
      | Expr.Cmp (Expr.Eq, Expr.Col a, Expr.Col b) ->
          if Colref.Set.mem a corr && not (Colref.Set.mem b corr) then
            Left (b, a) (* (inner, outer) *)
          else if Colref.Set.mem b corr && not (Colref.Set.mem a corr) then
            Left (a, b)
          else Right c
      | c -> Right c)
    pulled

(* Peel pure pass-through projections (the binder adds one atop every SELECT)
   so the scalar-aggregate pattern below is recognized. *)
let rec strip_passthrough (t : Ltree.t) : Ltree.t =
  match (t.Ltree.op, t.Ltree.children) with
  | Expr.L_project projs, [ child ]
    when List.for_all
           (fun (p : Expr.proj) ->
             match p.Expr.proj_expr with
             | Expr.Col c -> Colref.equal c p.Expr.proj_out
             | _ -> false)
           projs
         && List.length projs = List.length (Ltree.output_cols child)
         && List.for_all2 Colref.equal
              (List.map (fun p -> p.Expr.proj_out) projs)
              (Ltree.output_cols child) ->
      strip_passthrough child
  | _ -> t

let semi_join_kind = function
  | Expr.Apply_exists | Expr.Apply_in _ -> Expr.Semi
  | Expr.Apply_not_exists | Expr.Apply_not_in _ -> Expr.Anti_semi
  | Expr.Apply_scalar _ -> assert false

(* Rewrite one Apply node; children already processed. Returns None when the
   apply cannot be decorrelated. *)
let rewrite_apply (factory : Colref.Factory.t) (kind : Expr.apply_kind)
    (corr_cols : Colref.t list) (outer : Ltree.t) (inner : Ltree.t) :
    Ltree.t option =
  let corr = Colref.Set.of_list corr_cols in
  match kind with
  | Expr.Apply_exists | Expr.Apply_not_exists | Expr.Apply_in _
  | Expr.Apply_not_in _ ->
      let inner', pulled = pull_correlated ~corr inner in
      if tree_references ~corr inner' then None
      else
        let membership =
          match kind with
          | Expr.Apply_in (e, inner_col) | Expr.Apply_not_in (e, inner_col) ->
              [ Expr.Cmp (Expr.Eq, e, Expr.Col inner_col) ]
          | _ -> []
        in
        let cond = Scalar_ops.conjoin (membership @ pulled) in
        Some (Ltree.make (Expr.L_join (semi_join_kind kind, cond)) [ outer; inner' ])
  | Expr.Apply_scalar out_col -> (
      let inner = strip_passthrough inner in
      (* optionally a computed projection sits on top of the aggregate
         (e.g. avg decomposed into sum/count, or "agg * 1.2") *)
      let projection, inner =
        match (inner.Ltree.op, inner.Ltree.children) with
        | Expr.L_project projs, [ child ] ->
            (Some projs, strip_passthrough child)
        | _ -> (None, inner)
      in
      match (inner.Ltree.op, inner.Ltree.children) with
      | Expr.L_gb_agg (Expr.One_phase, [], aggs), [ agg_child ] -> (
          let agg_child', pulled = pull_correlated ~corr agg_child in
          if tree_references ~corr agg_child' then None
          else
            let pairs, residual_corr = equi_pairs ~corr pulled in
            if residual_corr <> [] then None
            else
              (* The subquery's value expression over the aggregate outputs.
                 COUNT aggregates are 0 (not NULL) on an empty group, so
                 references to them are wrapped in COALESCE(.., 0). *)
              let value_expr =
                let base =
                  match projection with
                  | Some [ p ] -> p.Expr.proj_expr
                  | Some _ -> Expr.Const Datum.Null (* guarded below *)
                  | None -> (
                      match aggs with
                      | [ a ] -> Expr.Col a.Expr.agg_out
                      | _ -> Expr.Const Datum.Null)
                in
                let count_outs =
                  List.filter_map
                    (fun (a : Expr.agg) ->
                      match a.Expr.agg_kind with
                      | Expr.Count | Expr.Count_star -> Some a.Expr.agg_out
                      | _ -> None)
                    aggs
                in
                Scalar_ops.map
                  (function
                    | Expr.Col c when List.exists (Colref.equal c) count_outs ->
                        Some
                          (Expr.Coalesce
                             [ Expr.Col c; Expr.Const (Datum.Int 0) ])
                    | _ -> None)
                  base
              in
              let projection_ok =
                match projection with Some ps -> List.length ps = 1 | None -> true
              in
              if (not projection_ok) || aggs = [] then None
              else
                let keys = List.map fst pairs in
                let agg_node child =
                  Ltree.make (Expr.L_gb_agg (Expr.One_phase, keys, aggs)) [ child ]
                in
                let join =
                  match pairs with
                  | [] ->
                      (* uncorrelated scalar aggregate: single row *)
                      Ltree.make
                        (Expr.L_join (Expr.Inner, Expr.Const (Datum.Bool true)))
                        [ outer; agg_node agg_child' ]
                  | _ ->
                      let cond =
                        Scalar_ops.conjoin
                          (List.map
                             (fun (i, o) ->
                               Expr.Cmp (Expr.Eq, Expr.Col o, Expr.Col i))
                             pairs)
                      in
                      Ltree.make
                        (Expr.L_join (Expr.Left_outer, cond))
                        [ outer; agg_node agg_child' ]
                in
                (* project the outer columns plus the computed scalar value *)
                let pass =
                  List.map
                    (fun c -> { Expr.proj_expr = Expr.Col c; proj_out = c })
                    (Ltree.output_cols outer)
                in
                ignore factory;
                Some
                  (Ltree.make
                     (Expr.L_project
                        (pass @ [ { Expr.proj_expr = value_expr; proj_out = out_col } ]))
                     [ join ]))
      | _ ->
          if Colref.Set.is_empty corr && not (tree_references ~corr inner) then
            (* uncorrelated single-column subquery used as a scalar: join and
               rename its column to the declared output *)
            match Ltree.output_cols inner with
            | [ c ] when Colref.equal c out_col ->
                Some
                  (Ltree.make
                     (Expr.L_join (Expr.Inner, Expr.Const (Datum.Bool true)))
                     [ outer; inner ])
            | _ -> None
          else None)

(* Decorrelate every Apply in the tree, bottom-up. *)
let run (factory : Colref.Factory.t) (tree : Ltree.t) : result =
  let rewritten = ref 0 and remaining = ref 0 in
  let rec go (t : Ltree.t) : Ltree.t =
    let children = List.map go t.Ltree.children in
    let t = { t with Ltree.children } in
    match (t.Ltree.op, children) with
    | Expr.L_apply (kind, corr_cols), [ outer; inner ] -> (
        match rewrite_apply factory kind corr_cols outer inner with
        | Some t' ->
            incr rewritten;
            t'
        | None ->
            incr remaining;
            t)
    | _ -> t
  in
  let tree = go tree in
  { tree; rewritten = !rewritten; remaining = !remaining }

(** Column pruning: narrow each join input to the columns the plan actually
    needs above it, by inserting pass-through projections — fewer bytes
    through motions, smaller hash-join states. Runs after decorrelation.
    Set-operation children and CTE producers are never narrowed. *)

val run : Ir.Ltree.t -> output:Ir.Colref.t list -> Ir.Ltree.t
(** [output] is the query's required output column list. *)

lib/memo/extract.ml: Expr Gpos Hashtbl Ir List Logical_ops Memo Plan_ops Props Stats

lib/memo/memo_stats.ml: Gpos Ir List Memo Option Stats

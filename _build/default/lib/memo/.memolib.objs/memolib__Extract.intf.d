lib/memo/extract.mli: Expr Gpos Ir Memo Props

lib/memo/mexpr.mli: Expr Ir

lib/memo/memo_stats.mli: Ir Memo Stats

lib/memo/memo.ml: Array Buffer Colref Expr Fun Hashtbl Ir List Logical_ops Mexpr Mutex Option Physical_ops Printf Props Stats String

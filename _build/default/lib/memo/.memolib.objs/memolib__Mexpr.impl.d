lib/memo/mexpr.ml: Expr Ir List Logical_ops Physical_ops Printf String

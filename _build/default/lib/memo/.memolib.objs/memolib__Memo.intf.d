lib/memo/memo.mli: Colref Expr Hashtbl Ir Mexpr Mutex Props Stats

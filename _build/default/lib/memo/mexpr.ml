open Ir

(* Mixed expression trees: operator trees whose leaves may reference existing
   Memo groups. Transformation rules produce these; [Memo.insert] copies them
   in (paper §3: "results of applying transformation rules are copied-in to
   the Memo"). *)

type t = { op : Expr.op; children : child list }

and child = Node of t | Group of int

let node op children = { op; children = List.map (fun n -> Node n) children }

let logical op children = node (Expr.Logical op) children

let of_groups op groups = { op; children = List.map (fun g -> Group g) groups }

let logical_of_groups op groups = of_groups (Expr.Logical op) groups

let physical_of_groups op groups = of_groups (Expr.Physical op) groups

let rec to_string (t : t) =
  let op_str =
    match t.op with
    | Expr.Logical l -> Logical_ops.to_string l
    | Expr.Physical p -> Physical_ops.to_string p
  in
  let children =
    List.map
      (function Node n -> to_string n | Group g -> Printf.sprintf "G%d" g)
      t.children
  in
  match children with
  | [] -> op_str
  | cs -> op_str ^ "(" ^ String.concat ", " cs ^ ")"

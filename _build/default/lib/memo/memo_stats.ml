(* Statistics derivation on the Memo (paper §4.1 step 2, Fig. 5).

   Derivation happens on the compact Memo structure: for each group we pick
   the logical group expression with the highest promise of delivering
   reliable statistics (fewer join conditions propagate less error), derive
   the children recursively, and combine child statistics objects bottom-up.
   Derived statistics are attached to groups and reused. *)

let rec derive_group (memo : Memo.t) ~(base : Ir.Table_desc.t -> Stats.Relstats.t)
    (gid : int) : Stats.Relstats.t =
  let gid = Memo.find memo gid in
  match Memo.stats memo gid with
  | Some s -> s
  | None ->
      let g = Memo.group memo gid in
      let logicals = Memo.logical_exprs g in
      (match logicals with
      | [] ->
          Gpos.Gpos_error.internal "stats derivation: group %d has no logical expression" gid
      | _ -> ());
      (* pick the most promising expression *)
      let _, best_ge, best_op =
        List.fold_left
          (fun (best_p, best_ge, best_op) (ge, op) ->
            let p = Stats.Derive.promise op in
            if p > best_p then (p, Some ge, Some op)
            else (best_p, best_ge, best_op))
          (min_int, None, None) logicals
      in
      let ge = Option.get best_ge and op = Option.get best_op in
      let children =
        List.map (fun c -> derive_group memo ~base c) ge.Memo.ge_children
      in
      let child_schemas =
        List.map (fun c -> Memo.output_cols memo c) ge.Memo.ge_children
      in
      let cte cte_id =
        match Memo.cte_producer_group memo cte_id with
        | Some pg -> Some (derive_group memo ~base pg)
        | None -> None
      in
      let s = Stats.Derive.derive ~base ~cte op ~children ~child_schemas in
      Memo.set_stats memo gid s;
      s

(* Derive statistics for every group reachable from the root. *)
let derive_all (memo : Memo.t) ~base =
  ignore (derive_group memo ~base (Memo.root memo));
  (* groups not reachable through the promise-selected expressions still get
     stats on demand during costing; derive the remainder here so costing
     never misses *)
  List.iter
    (fun gid ->
      match Memo.stats memo gid with
      | Some _ -> ()
      | None -> (
          match Memo.logical_exprs (Memo.group memo gid) with
          | [] -> ()
          | _ -> ignore (derive_group memo ~base gid)))
    (Memo.group_ids memo)

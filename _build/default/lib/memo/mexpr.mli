(** Mixed expression trees: operator trees whose leaves may reference
    existing Memo groups. Transformation rules produce these and
    [Memo.insert] copies them in (paper §3: rule results are "copied-in to
    the Memo"). *)

open Ir

type t = { op : Expr.op; children : child list }

and child = Node of t | Group of int

val node : Expr.op -> t list -> t
val logical : Expr.logical -> t list -> t
val of_groups : Expr.op -> int list -> t
val logical_of_groups : Expr.logical -> int list -> t
val physical_of_groups : Expr.physical -> int list -> t
val to_string : t -> string

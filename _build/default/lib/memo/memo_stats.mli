(** Statistics derivation on the Memo (paper §4.1 step 2, Fig. 5).

    Derivation happens on the compact Memo structure: each group picks the
    logical group expression with the highest statistics promise, derives its
    children recursively, and combines the child statistics bottom-up.
    Derived statistics are attached to groups and reused. *)

val derive_group :
  Memo.t -> base:(Ir.Table_desc.t -> Stats.Relstats.t) -> int -> Stats.Relstats.t
(** Derive (or return memoized) statistics for one group. *)

val derive_all : Memo.t -> base:(Ir.Table_desc.t -> Stats.Relstats.t) -> unit
(** Derive statistics for every group with a logical expression. *)

lib/engines/engine.ml: Catalog Exec Expr Gpos Hashtbl Ir List Orca Plan_ops Planner Sqlfront Stdlib String Tpcds

lib/engines/engine.mli: Catalog Exec Expr Hashtbl Ir Stdlib Tpcds

open Ir

(* SQL-engine simulations for the paper's §7.3 comparison.

   HAWQ runs Orca plans with spill-to-disk execution. The Hadoop engines are
   modeled by the two properties the paper credits for the performance gap:

   - a restricted SQL surface (per-engine unsupported-feature lists derived
     from §7.3.1: no correlated subqueries anywhere, no INTERSECT/EXCEPT, no
     ORDER BY without LIMIT on Impala, no WITH/CASE on Stinger, almost no
     subqueries on Presto, ...);
   - rule-based optimization that keeps joins in literal syntactic order
     (legacy planner with the join-ordering DP disabled) and, for Impala and
     Presto, execution that cannot spill: operators whose state exceeds the
     per-node memory budget abort with an out-of-memory error (the starred
     bars of Fig. 13);
   - Stinger executes through MapReduce-style stages: each plan operator
     pays a job-startup latency and materializes its output to HDFS between
     stages, modeled as a fixed per-operator charge plus a per-byte
     materialization charge. *)

type name = HAWQ | Impala | Presto | Stinger

let name_to_string = function
  | HAWQ -> "HAWQ"
  | Impala -> "Impala"
  | Presto -> "Presto"
  | Stinger -> "Stinger"

type spec = {
  ename : name;
  unsupported : Tpcds.Features.t list;
  unsupported_dialect : string list; (* e.g. window functions, ROLLUP *)
  mem_per_seg : float;
  mode : Exec.Executor.mode;
  cost_based : bool; (* cost-based join ordering? *)
  stage_startup : float; (* seconds charged per blocking operator *)
  materialize_byte : float; (* per output byte between stages *)
}

let hawq ~mem_per_seg =
  {
    ename = HAWQ;
    unsupported = [];
    unsupported_dialect = [ "window"; "rollup" ];
    mem_per_seg;
    mode = Exec.Executor.Spill_to_disk;
    cost_based = true;
    stage_startup = 0.0;
    materialize_byte = 0.0;
  }

let impala ~mem_per_seg =
  {
    ename = Impala;
    unsupported =
      [
        Tpcds.Features.F_correlated_subquery;
        Tpcds.Features.F_exists;
        Tpcds.Features.F_intersect;
        Tpcds.Features.F_except;
        Tpcds.Features.F_order_no_limit;
        Tpcds.Features.F_full_outer_join;
        Tpcds.Features.F_with;
        Tpcds.Features.F_any_subquery;
        Tpcds.Features.F_window;
        Tpcds.Features.F_rollup;
      ];
    unsupported_dialect = [ "window"; "rollup" ];
    mem_per_seg;
    mode = Exec.Executor.Fail_on_oom;
    cost_based = false;
    stage_startup = 0.0;
    materialize_byte = 0.0;
  }

let presto ~mem_per_seg =
  {
    ename = Presto;
    unsupported =
      [
        Tpcds.Features.F_any_subquery;
        Tpcds.Features.F_correlated_subquery;
        Tpcds.Features.F_exists;
        Tpcds.Features.F_in_subquery;
        Tpcds.Features.F_intersect;
        Tpcds.Features.F_except;
        Tpcds.Features.F_non_equi_join;
        Tpcds.Features.F_full_outer_join;
        Tpcds.Features.F_with;
        Tpcds.Features.F_union_distinct;
        Tpcds.Features.F_order_no_limit;
        Tpcds.Features.F_distinct;
        Tpcds.Features.F_case;
        Tpcds.Features.F_outer_join;
        Tpcds.Features.F_having;
        Tpcds.Features.F_from_subquery;
        Tpcds.Features.F_window;
        Tpcds.Features.F_rollup;
      ];
    unsupported_dialect = [ "window"; "rollup" ];
    mem_per_seg;
    mode = Exec.Executor.Fail_on_oom;
    cost_based = false;
    stage_startup = 0.0;
    materialize_byte = 0.0;
  }

let stinger ~mem_per_seg =
  {
    ename = Stinger;
    unsupported =
      [
        Tpcds.Features.F_with;
        Tpcds.Features.F_case;
        Tpcds.Features.F_correlated_subquery;
        Tpcds.Features.F_exists;
        Tpcds.Features.F_in_subquery;
        Tpcds.Features.F_intersect;
        Tpcds.Features.F_except;
        Tpcds.Features.F_full_outer_join;
        Tpcds.Features.F_non_equi_join;
        Tpcds.Features.F_window;
        Tpcds.Features.F_rollup;
      ];
    unsupported_dialect = [ "window"; "rollup" ];
    mem_per_seg;
    mode = Exec.Executor.Spill_to_disk; (* Hive spills; it is just slow *)
    cost_based = false;
    stage_startup = 0.00015;
    materialize_byte = 1.5e-8;
  }

(* --- running queries --- *)

type status =
  | S_unsupported of Tpcds.Features.t list (* failed the SQL surface check *)
  | S_opt_failed of string
  | S_oom
  | S_exec_failed of string
  | S_ok

type result = {
  engine : name;
  qid : int;
  status : status;
  sim_seconds : float option;
  rows : int option;
  plan_ops : int option;
}

let status_to_string = function
  | S_unsupported fs ->
      "unsupported: "
      ^ String.concat "," (List.map Tpcds.Features.to_string fs)
  | S_opt_failed m -> "optimization failed: " ^ m
  | S_oom -> "out of memory"
  | S_exec_failed m -> "execution failed: " ^ m
  | S_ok -> "ok"

(* environment shared by all engines: data + catalog *)
type env = {
  db : Tpcds.Datagen.db;
  provider : Catalog.Provider.t;
  cache : Catalog.Md_cache.t;
  nsegs : int;
  segments_loaded : (float, Exec.Cluster.t) Hashtbl.t;
      (* clusters keyed by memory budget *)
}

let create_env ?(nsegs = 8) (db : Tpcds.Datagen.db) : env =
  {
    db;
    provider = Tpcds.Datagen.provider db;
    cache = Catalog.Md_cache.create ();
    nsegs;
    segments_loaded = Hashtbl.create 4;
  }

let cluster_for (env : env) ~mem_per_seg : Exec.Cluster.t =
  match Hashtbl.find_opt env.segments_loaded mem_per_seg with
  | Some c -> c
  | None ->
      let c = Exec.Cluster.create ~nsegs:env.nsegs ~mem_per_seg () in
      Tpcds.Datagen.load_cluster env.db c;
      Hashtbl.replace env.segments_loaded mem_per_seg c;
      c

(* HAWQ's dialect check is vacuous: Orca supports everything our queries use
   and the mini-queries stand in for their real templates, so HAWQ treats the
   dialect tags as supported (the paper: "both Orca and Planner support all
   the queries in their original form"). *)
let supported (spec : spec) (q : Tpcds.Queries.def) : Tpcds.Features.t list =
  List.filter (fun f -> List.mem f q.Tpcds.Queries.features) spec.unsupported

let dialect_missing (spec : spec) (q : Tpcds.Queries.def) : string list =
  if spec.ename = HAWQ then []
  else
    List.filter
      (fun d -> List.mem d spec.unsupported_dialect)
      q.Tpcds.Queries.dialect

(* Optimize under the engine's optimizer. *)
let optimize (spec : spec) (env : env) (q : Tpcds.Queries.def) :
    (Expr.plan, status) Stdlib.result =
  match (supported spec q, dialect_missing spec q) with
  | (_ :: _ as missing), _ -> Error (S_unsupported missing)
  | [], _ :: _ -> Error (S_opt_failed "dialect: window/rollup")
  | [], [] -> (
      try
        let accessor =
          Catalog.Accessor.create ~provider:env.provider ~cache:env.cache ()
        in
        let query = Sqlfront.Binder.bind_sql accessor q.Tpcds.Queries.sql in
        if spec.cost_based then begin
          let config =
            Orca.Orca_config.with_segments Orca.Orca_config.default env.nsegs
          in
          let report = Orca.Optimizer.optimize ~config accessor query in
          Ok report.Orca.Optimizer.plan
        end
        else begin
          (* rule-based: literal join order, no partition elimination *)
          let config =
            {
              Planner.Legacy_planner.segments = env.nsegs;
              dp_limit = 0;
              broadcast_inner = true;
            }
          in
          Ok (Planner.Legacy_planner.plan_sql ~config accessor query)
        end
      with
      | Gpos.Gpos_error.Error (_, msg) -> Error (S_opt_failed msg)
      | Orca.Optimizer.Unsupported_query msg -> Error (S_opt_failed msg))

(* Stinger-style MapReduce overhead: blocking operators start a stage. *)
let stage_overhead (spec : spec) (plan : Expr.plan)
    (metrics : Exec.Metrics.t) : float =
  if spec.stage_startup = 0.0 && spec.materialize_byte = 0.0 then 0.0
  else begin
    let stages =
      Plan_ops.fold
        (fun n node ->
          match node.Expr.pop with
          | Expr.P_hash_join _ | Expr.P_merge_join _ | Expr.P_nl_join _
          | Expr.P_hash_agg _ | Expr.P_stream_agg _ | Expr.P_sort _
          | Expr.P_motion _ | Expr.P_set _ ->
              n + 1
          | _ -> n)
        1 plan
    in
    (float_of_int stages *. spec.stage_startup)
    +. (metrics.Exec.Metrics.net_bytes *. spec.materialize_byte *. 10.0)
  end

let run (spec : spec) (env : env) (q : Tpcds.Queries.def) : result =
  match optimize spec env q with
  | Error status ->
      { engine = spec.ename; qid = q.Tpcds.Queries.qid; status;
        sim_seconds = None; rows = None; plan_ops = None }
  | Ok plan -> (
      let cluster = cluster_for env ~mem_per_seg:spec.mem_per_seg in
      try
        let rows, metrics = Exec.Executor.run ~mode:spec.mode cluster plan in
        let sim =
          metrics.Exec.Metrics.sim_seconds +. stage_overhead spec plan metrics
        in
        {
          engine = spec.ename;
          qid = q.Tpcds.Queries.qid;
          status = S_ok;
          sim_seconds = Some sim;
          rows = Some (List.length rows);
          plan_ops = Some (Plan_ops.node_count plan);
        }
      with
      | Gpos.Gpos_error.Error (Gpos.Gpos_error.Out_of_memory, _) ->
          { engine = spec.ename; qid = q.Tpcds.Queries.qid; status = S_oom;
            sim_seconds = None; rows = None; plan_ops = None }
      | Gpos.Gpos_error.Error (_, msg) ->
          { engine = spec.ename; qid = q.Tpcds.Queries.qid;
            status = S_exec_failed msg; sim_seconds = None; rows = None;
            plan_ops = None })

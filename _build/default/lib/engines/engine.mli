(** SQL-engine simulations for the paper's §7.3 comparison.

    HAWQ runs Orca plans with spill-to-disk execution. The Hadoop engines are
    modeled by the properties the paper credits for the performance gap: a
    restricted SQL surface, rule-based optimization with literal syntactic
    join order (and Impala-style broadcast-inner motions), no-spill execution
    that aborts when an operator's state exceeds the per-node memory budget,
    and (for Stinger) MapReduce-style per-stage startup and materialization
    overheads. *)

open Ir

type name = HAWQ | Impala | Presto | Stinger

val name_to_string : name -> string

type spec = {
  ename : name;
  unsupported : Tpcds.Features.t list;  (** SQL features the engine rejects *)
  unsupported_dialect : string list;    (** e.g. window functions, ROLLUP *)
  mem_per_seg : float;
  mode : Exec.Executor.mode;
  cost_based : bool;                    (** cost-based join ordering? *)
  stage_startup : float;                (** seconds per blocking operator *)
  materialize_byte : float;             (** per byte materialized between stages *)
}

val hawq : mem_per_seg:float -> spec
val impala : mem_per_seg:float -> spec
val presto : mem_per_seg:float -> spec
val stinger : mem_per_seg:float -> spec

type status =
  | S_unsupported of Tpcds.Features.t list  (** failed the SQL-surface check *)
  | S_opt_failed of string
  | S_oom
  | S_exec_failed of string
  | S_ok

type result = {
  engine : name;
  qid : int;
  status : status;
  sim_seconds : float option;
  rows : int option;
  plan_ops : int option;
}

val status_to_string : status -> string

(** Shared environment: generated data, catalog, and one loaded cluster per
    distinct memory budget. *)
type env = {
  db : Tpcds.Datagen.db;
  provider : Catalog.Provider.t;
  cache : Catalog.Md_cache.t;
  nsegs : int;
  segments_loaded : (float, Exec.Cluster.t) Hashtbl.t;
}

val create_env : ?nsegs:int -> Tpcds.Datagen.db -> env
val cluster_for : env -> mem_per_seg:float -> Exec.Cluster.t

val supported : spec -> Tpcds.Queries.def -> Tpcds.Features.t list
(** The query's features this engine lacks (empty = supported). *)

val dialect_missing : spec -> Tpcds.Queries.def -> string list

val optimize : spec -> env -> Tpcds.Queries.def -> (Expr.plan, status) Stdlib.result
(** Run the engine's optimizer (Orca for HAWQ, the rule-based legacy planner
    otherwise) after the SQL-surface check. *)

val run : spec -> env -> Tpcds.Queries.def -> result
(** Optimize and execute, catching OOM under [Fail_on_oom] and adding the
    engine's stage overheads to the simulated time. *)

(** Reference evaluator: executes *logical* trees directly, single-node, with
    textbook semantics (correlated Apply by literal re-evaluation). The
    oracle for differential testing — every optimized distributed plan must
    produce the same bag of rows as this evaluator on the same data. *)

open Ir

val eval :
  Cluster.t ->
  params:Datum.t Colref.Map.t ->
  cte:(int, Datum.t array list) Hashtbl.t ->
  Ltree.t ->
  Datum.t array list

val run : Cluster.t -> Dxl.Dxl_query.t -> Datum.t array list
(** Evaluate a full DXL query: the (normalized) tree is executed, the result
    projected to the requested output columns and sorted by the root order. *)

(** The simulated MPP cluster (paper §2.1): an array of segments, each
    holding a horizontal slice of every table, with GPDB's three distribution
    policies. *)

open Ir

type dist_policy =
  | By_hash of int list  (** hash on these column positions *)
  | By_random            (** round-robin *)
  | By_replication       (** full copy on every segment *)

type table_data = {
  schema_width : int;
  segments : Datum.t array list array;  (** rows held by each segment *)
  total_rows : int;
}

type t = {
  nsegs : int;
  tables : (string, table_data) Hashtbl.t;
  machine : Machine.t;      (** simulated-time constants *)
  mem_per_seg : float;      (** operator working memory per segment, bytes *)
}

val create : ?machine:Machine.t -> ?mem_per_seg:float -> nsegs:int -> unit -> t
(** A cluster with [nsegs] segments (default memory budget 64 MiB/segment). *)

val hash_datums : Datum.t list -> int
(** The one placement hash used for both table loading and Redistribute
    motions — they must agree or co-located joins silently lose rows. *)

val hash_row : int list -> Datum.t array -> int

val load_table : t -> name:string -> dist:dist_policy -> Datum.t array list -> unit
(** Distribute the rows across segments under the chosen policy. *)

val table : t -> string -> table_data
(** Raises [Gpos_error.Error Exec_error] for unknown tables. *)

val table_rows : t -> string -> int
val row_bytes : Datum.t array -> int

lib/exec/metrics.mli:

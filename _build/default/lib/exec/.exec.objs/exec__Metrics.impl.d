lib/exec/metrics.ml: Array Float Printf

lib/exec/cluster.mli: Datum Hashtbl Ir Machine

lib/exec/naive.ml: Array Cluster Colref Datum Dxl Expr Gpos Hashtbl Ir List Ltree Scalar_eval Sortspec String Table_desc Xform

lib/exec/naive.mli: Cluster Colref Datum Dxl Hashtbl Ir Ltree

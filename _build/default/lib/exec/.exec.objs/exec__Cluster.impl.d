lib/exec/cluster.ml: Array Datum Gpos Hashtbl Ir List Machine

lib/exec/machine.mli:

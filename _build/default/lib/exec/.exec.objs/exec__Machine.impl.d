lib/exec/machine.ml:

lib/exec/executor.ml: Array Cluster Colref Datum Expr Float Gpos Hashtbl Ir List Machine Metrics Physical_ops Printf Props Scalar_eval Scalar_ops Sortspec String Table_desc

lib/exec/executor.mli: Cluster Colref Datum Expr Hashtbl Ir Metrics

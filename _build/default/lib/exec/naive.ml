open Ir

(* Reference evaluator: executes *logical* trees directly, single-node, with
   textbook semantics (correlated Apply by literal re-evaluation). It is the
   oracle for differential testing — every optimized, distributed plan must
   produce the same bag of rows as this evaluator on the same data. *)

let table_rows (cluster : Cluster.t) (td : Table_desc.t) : Datum.t array list =
  let data = Cluster.table cluster td.Table_desc.name in
  match
    Hashtbl.length cluster.Cluster.tables >= 0 (* data loaded *)
  with
  | _ -> (
      (* replicated tables store a full copy per segment: take one *)
      match td.Table_desc.dist with
      | Table_desc.Dist_replicated -> data.Cluster.segments.(0)
      | _ -> List.concat (Array.to_list data.Cluster.segments))

let env_of ~(params : Datum.t Colref.Map.t) (schema : Colref.t list)
    (row : Datum.t array) : Scalar_eval.env =
  let arr = Array.of_list schema in
  fun col ->
    let rec find i =
      if i >= Array.length arr then
        match Colref.Map.find_opt col params with
        | Some d -> d
        | None ->
            Gpos.Gpos_error.raise_error Gpos.Gpos_error.Exec_error
              "naive: unbound column %s" (Colref.to_string col)
      else if Colref.equal arr.(i) col then row.(i)
      else find (i + 1)
    in
    find 0

let rec eval (cluster : Cluster.t) ~(params : Datum.t Colref.Map.t)
    ~(cte : (int, Datum.t array list) Hashtbl.t) (t : Ltree.t) :
    Datum.t array list =
  let child n = List.nth t.Ltree.children n in
  let schema_of n = Ltree.output_cols (child n) in
  let scalar schema row s =
    Scalar_eval.eval (env_of ~params schema row) s
  in
  let pred schema row s =
    match scalar schema row s with Datum.Bool true -> true | _ -> false
  in
  match t.Ltree.op with
  | Expr.L_get td -> table_rows cluster td
  | Expr.L_select p ->
      let rows = eval cluster ~params ~cte (child 0) in
      let schema = schema_of 0 in
      List.filter (fun r -> pred schema r p) rows
  | Expr.L_project projs ->
      let rows = eval cluster ~params ~cte (child 0) in
      let schema = schema_of 0 in
      List.map
        (fun r ->
          Array.of_list
            (List.map (fun pr -> scalar schema r pr.Expr.proj_expr) projs))
        rows
  | Expr.L_join (kind, cond) -> (
      let l = eval cluster ~params ~cte (child 0) in
      let r = eval cluster ~params ~cte (child 1) in
      let ls = schema_of 0 and rs = schema_of 1 in
      let combined = ls @ rs in
      let matches orow =
        List.filter (fun irow -> pred combined (Array.append orow irow) cond) r
      in
      match kind with
      | Expr.Inner ->
          List.concat_map
            (fun orow -> List.map (fun irow -> Array.append orow irow) (matches orow))
            l
      | Expr.Left_outer ->
          let width = List.length rs in
          List.concat_map
            (fun orow ->
              match matches orow with
              | [] -> [ Array.append orow (Array.make width Datum.Null) ]
              | ms -> List.map (fun irow -> Array.append orow irow) ms)
            l
      | Expr.Full_outer ->
          let width_r = List.length rs and width_l = List.length ls in
          let matched_inner = Hashtbl.create 16 in
          let from_outer =
            List.concat_map
              (fun orow ->
                match matches orow with
                | [] -> [ Array.append orow (Array.make width_r Datum.Null) ]
                | ms ->
                    List.map
                      (fun irow ->
                        Hashtbl.replace matched_inner irow ();
                        Array.append orow irow)
                      ms)
              l
          in
          let from_inner =
            List.filter_map
              (fun irow ->
                if Hashtbl.mem matched_inner irow then None
                else Some (Array.append (Array.make width_l Datum.Null) irow))
              r
          in
          from_outer @ from_inner
      | Expr.Semi -> List.filter (fun orow -> matches orow <> []) l
      | Expr.Anti_semi -> List.filter (fun orow -> matches orow = []) l)
  | Expr.L_gb_agg (_, keys, aggs) ->
      let rows = eval cluster ~params ~cte (child 0) in
      let schema = schema_of 0 in
      naive_agg ~params schema keys aggs rows
  | Expr.L_window (partition, worder, wfuncs) ->
      let rows = eval cluster ~params ~cte (child 0) in
      let schema = schema_of 0 in
      naive_window ~params schema partition worder wfuncs rows
  | Expr.L_limit (sort, offset, count) ->
      let rows = eval cluster ~params ~cte (child 0) in
      let schema = schema_of 0 in
      let rows =
        if Sortspec.is_empty sort then rows
        else List.stable_sort (Sortspec.row_compare sort ~schema) rows
      in
      let rec drop n = function
        | rows when n <= 0 -> rows
        | [] -> []
        | _ :: rest -> drop (n - 1) rest
      in
      let rec keep n = function
        | [] -> []
        | _ when n = 0 -> []
        | r :: rest -> r :: keep (n - 1) rest
      in
      let rows = drop offset rows in
      (match count with None -> rows | Some c -> keep c rows)
  | Expr.L_apply (kind, _corr) -> (
      let outer = eval cluster ~params ~cte (child 0) in
      let oschema = schema_of 0 in
      let inner_for orow =
        (* re-evaluate the inner side with the outer row's bindings *)
        let params' =
          List.fold_left2
            (fun acc col v -> Colref.Map.add col v acc)
            params oschema (Array.to_list orow)
        in
        eval cluster ~params:params' ~cte (child 1)
      in
      match kind with
      | Expr.Apply_scalar _ ->
          List.map
            (fun orow ->
              let inner = inner_for orow in
              let v =
                match inner with
                | [] -> Datum.Null
                | row :: _ when Array.length row >= 1 -> row.(0)
                | _ -> Datum.Null
              in
              Array.append orow [| v |])
            outer
      | Expr.Apply_exists -> List.filter (fun o -> inner_for o <> []) outer
      | Expr.Apply_not_exists -> List.filter (fun o -> inner_for o = []) outer
      | Expr.Apply_in (e, _) ->
          List.filter
            (fun orow ->
              let v = scalar oschema orow e in
              (not (Datum.is_null v))
              && List.exists
                   (fun irow -> Array.length irow >= 1 && Datum.equal irow.(0) v)
                   (inner_for orow))
            outer
      | Expr.Apply_not_in (e, _) ->
          List.filter
            (fun orow ->
              let v = scalar oschema orow e in
              let inner = inner_for orow in
              (not (Datum.is_null v))
              && (not
                    (List.exists
                       (fun irow ->
                         Array.length irow >= 1
                         && (Datum.equal irow.(0) v || Datum.is_null irow.(0)))
                       inner)))
            outer)
  | Expr.L_cte_producer id ->
      let rows = eval cluster ~params ~cte (child 0) in
      Hashtbl.replace cte id rows;
      rows
  | Expr.L_cte_anchor _ ->
      let _ = eval cluster ~params ~cte (child 0) in
      eval cluster ~params ~cte (child 1)
  | Expr.L_cte_consumer (id, _) -> (
      match Hashtbl.find_opt cte id with
      | Some rows -> rows
      | None ->
          Gpos.Gpos_error.raise_error Gpos.Gpos_error.Exec_error
            "naive: CTE %d not materialized" id)
  | Expr.L_set (kind, _) -> (
      let children = List.map (eval cluster ~params ~cte) t.Ltree.children in
      let key row = String.concat "\x00" (List.map Datum.serialize (Array.to_list row)) in
      let distinct rows =
        let seen = Hashtbl.create 64 in
        List.filter
          (fun r ->
            let k = key r in
            if Hashtbl.mem seen k then false
            else begin
              Hashtbl.replace seen k ();
              true
            end)
          rows
      in
      match (kind, children) with
      | Expr.Union_all, cs -> List.concat cs
      | Expr.Union_distinct, cs -> distinct (List.concat cs)
      | Expr.Intersect, [ a; b ] ->
          let right = Hashtbl.create 64 in
          List.iter (fun r -> Hashtbl.replace right (key r) ()) b;
          distinct (List.filter (fun r -> Hashtbl.mem right (key r)) a)
      | Expr.Except, [ a; b ] ->
          let right = Hashtbl.create 64 in
          List.iter (fun r -> Hashtbl.replace right (key r) ()) b;
          distinct (List.filter (fun r -> not (Hashtbl.mem right (key r))) a)
      | _ ->
          Gpos.Gpos_error.raise_error Gpos.Gpos_error.Exec_error
            "naive: set op arity")
  | Expr.L_const_table (_, rows) -> List.map Array.of_list rows

and naive_agg ~params schema keys aggs rows =
  let kpos = List.map (Colref.position_exn schema) keys in
  let scalar row s = Scalar_eval.eval (env_of ~params schema row) s in
  let groups : (string, Datum.t list * Datum.t list list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  let order = ref [] in
  List.iter
    (fun row ->
      let kvs = List.map (fun p -> row.(p)) kpos in
      let k = String.concat "\x00" (List.map Datum.serialize kvs) in
      match Hashtbl.find_opt groups k with
      | Some (_, args) ->
          args :=
            List.map
              (fun (a : Expr.agg) ->
                match a.Expr.agg_arg with
                | None -> Datum.Bool true
                | Some e -> scalar row e)
              aggs
            :: !args
      | None ->
          order := k :: !order;
          Hashtbl.replace groups k
            ( kvs,
              ref
                [
                  List.map
                    (fun (a : Expr.agg) ->
                      match a.Expr.agg_arg with
                      | None -> Datum.Bool true
                      | Some e -> scalar row e)
                    aggs;
                ] ))
    rows;
  let finish (a : Expr.agg) (vals : Datum.t list) : Datum.t =
    let non_null = List.filter (fun v -> not (Datum.is_null v)) vals in
    let non_null =
      if a.Expr.agg_distinct then
        List.sort_uniq Datum.compare non_null
      else non_null
    in
    match a.Expr.agg_kind with
    | Expr.Count_star -> Datum.Int (List.length vals)
    | Expr.Count -> Datum.Int (List.length non_null)
    | Expr.Sum ->
        List.fold_left
          (fun acc v -> if Datum.is_null acc then v else Datum.arith `Add acc v)
          Datum.Null non_null
    | Expr.Min ->
        List.fold_left
          (fun acc v ->
            if Datum.is_null acc || Datum.compare v acc < 0 then v else acc)
          Datum.Null non_null
    | Expr.Max ->
        List.fold_left
          (fun acc v ->
            if Datum.is_null acc || Datum.compare v acc > 0 then v else acc)
          Datum.Null non_null
  in
  if keys = [] && Hashtbl.length groups = 0 then
    [ Array.of_list (List.map (fun a -> finish a []) aggs) ]
  else
    List.rev_map
      (fun k ->
        let kvs, arg_rows = Hashtbl.find groups k in
        let per_agg =
          List.mapi (fun i a -> finish a (List.map (fun r -> List.nth r i) !arg_rows)) aggs
        in
        Array.of_list (kvs @ per_agg))
      !order

(* Textbook window computation: partition, order, then per function either
   whole-partition aggregation (no ORDER BY) or the SQL default running frame
   with peers included. *)
and naive_window ~params schema partition worder (wfuncs : Expr.wfunc list)
    rows =
  let scalar row s = Scalar_eval.eval (env_of ~params schema row) s in
  let ppos = List.map (Colref.position_exn schema) partition in
  let sort_spec = List.map Sortspec.asc partition @ worder in
  let sorted =
    if sort_spec = [] then rows
    else List.stable_sort (Sortspec.row_compare sort_spec ~schema) rows
  in
  let order_cmp =
    if Sortspec.is_empty worder then fun _ _ -> 0
    else Sortspec.row_compare worder ~schema
  in
  let part_key row = List.map (fun p -> row.(p)) ppos in
  let rec split acc current current_key = function
    | [] -> List.rev (List.rev current :: acc)
    | row :: rest ->
        let k = part_key row in
        if current = [] || k = current_key then split acc (row :: current) k rest
        else split (List.rev current :: acc) [ row ] k rest
  in
  let partitions = match sorted with [] -> [] | _ -> split [] [] [] sorted in
  let agg_value kind arg_values =
    let non_null = List.filter (fun v -> not (Datum.is_null v)) arg_values in
    match kind with
    | Expr.Count_star -> Datum.Int (List.length arg_values)
    | Expr.Count -> Datum.Int (List.length non_null)
    | Expr.Sum ->
        List.fold_left
          (fun acc v -> if Datum.is_null acc then v else Datum.arith `Add acc v)
          Datum.Null non_null
    | Expr.Min ->
        List.fold_left
          (fun acc v ->
            if Datum.is_null acc || Datum.compare v acc < 0 then v else acc)
          Datum.Null non_null
    | Expr.Max ->
        List.fold_left
          (fun acc v ->
            if Datum.is_null acc || Datum.compare v acc > 0 then v else acc)
          Datum.Null non_null
  in
  List.concat_map
    (fun prows ->
      let arr = Array.of_list prows in
      let n = Array.length arr in
      let value_of (w : Expr.wfunc) i =
        match w.Expr.wf_kind with
        | Expr.W_row_number -> Datum.Int (i + 1)
        | Expr.W_rank ->
            (* first peer's index + 1 *)
            let rec first j =
              if j > 0 && order_cmp arr.(j - 1) arr.(i) = 0 then first (j - 1)
              else j
            in
            Datum.Int (first i + 1)
        | Expr.W_dense_rank ->
            (* one per distinct order value in the prefix *)
            let r = ref 1 in
            for j = 1 to i do
              if order_cmp arr.(j - 1) arr.(j) <> 0 then incr r
            done;
            Datum.Int !r
        | Expr.W_agg kind ->
            let framed = not (Sortspec.is_empty worder) in
            let included j =
              if not framed then true
              else
                order_cmp arr.(j) arr.(i) < 0 || order_cmp arr.(j) arr.(i) = 0
            in
            let args =
              List.filteri (fun j _ -> included j) (Array.to_list arr)
              |> List.map (fun row ->
                     match w.Expr.wf_arg with
                     | None -> Datum.Bool true
                     | Some e -> scalar row e)
            in
            agg_value kind args
      in
      List.init n (fun i ->
          Array.append arr.(i)
            (Array.of_list (List.map (fun w -> value_of w i) wfuncs))))
    partitions

(* Evaluate a full DXL query naively. The tree is normalized first (filters
   pushed toward tables) so cross products are never materialized; the
   normalizer is itself covered by dedicated tests. *)
let run (cluster : Cluster.t) (q : Dxl.Dxl_query.t) : Datum.t array list =
  let tree = Xform.Normalize.run q.Dxl.Dxl_query.tree in
  let rows =
    eval cluster ~params:Colref.Map.empty ~cte:(Hashtbl.create 8) tree
  in
  let schema = Ltree.output_cols tree in
  (* project to the requested output columns, apply the root ordering *)
  let positions =
    List.map (fun c -> Colref.position_exn schema c) q.Dxl.Dxl_query.output
  in
  let rows =
    if Sortspec.is_empty q.Dxl.Dxl_query.order then rows
    else
      List.stable_sort
        (Sortspec.row_compare q.Dxl.Dxl_query.order ~schema)
        rows
  in
  List.map (fun r -> Array.of_list (List.map (fun p -> r.(p)) positions)) rows

open Ir

(* The simulated MPP cluster (paper §2.1): an array of segments, each owning
   a horizontal slice of every table. Tables are distributed by hashing on
   the distribution key, round-robin, or full replication — the same three
   policies GPDB supports. *)

type dist_policy =
  | By_hash of int list (* column positions *)
  | By_random
  | By_replication

type table_data = {
  schema_width : int;
  segments : Datum.t array list array; (* rows held by each segment *)
  total_rows : int;
}

type t = {
  nsegs : int;
  tables : (string, table_data) Hashtbl.t;
  machine : Machine.t;
  mem_per_seg : float; (* bytes of operator working memory per segment *)
}

let create ?(machine = Machine.default) ?(mem_per_seg = 64.0 *. 1024.0 *. 1024.0)
    ~nsegs () =
  if nsegs < 1 then invalid_arg "Cluster.create: nsegs must be >= 1";
  { nsegs; tables = Hashtbl.create 32; machine; mem_per_seg }

(* The one hash function used for data placement everywhere: table loading
   and Redistribute motions must agree or co-located joins silently break. *)
let hash_datums (ds : Datum.t list) =
  abs (List.fold_left (fun acc d -> (acc * 1000003) + Datum.hash d) 17 ds)

let hash_row (positions : int list) (row : Datum.t array) =
  hash_datums (List.map (fun p -> row.(p)) positions)

let load_table t ~name ~(dist : dist_policy) (rows : Datum.t array list) =
  let segments = Array.make t.nsegs [] in
  (match dist with
  | By_hash positions ->
      List.iter
        (fun row ->
          let seg = abs (hash_row positions row) mod t.nsegs in
          segments.(seg) <- row :: segments.(seg))
        rows
  | By_random ->
      List.iteri
        (fun i row ->
          let seg = i mod t.nsegs in
          segments.(seg) <- row :: segments.(seg))
        rows
  | By_replication ->
      Array.iteri (fun i _ -> segments.(i) <- rows) segments);
  let width = match rows with r :: _ -> Array.length r | [] -> 0 in
  (* keep insertion order within each segment *)
  let segments =
    match dist with
    | By_replication -> segments
    | _ -> Array.map List.rev segments
  in
  Hashtbl.replace t.tables name
    { schema_width = width; segments; total_rows = List.length rows }

let table t name =
  match Hashtbl.find_opt t.tables name with
  | Some data -> data
  | None ->
      Gpos.Gpos_error.raise_error Gpos.Gpos_error.Exec_error
        "table %S not loaded in cluster" name

let table_rows t name = (table t name).total_rows

let row_bytes (row : Datum.t array) =
  Array.fold_left (fun acc d -> acc + Datum.byte_width d) 0 row

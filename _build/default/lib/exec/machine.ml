(* Machine model for simulated elapsed time.

   The simulator executes plans for real (row by row) and converts the
   measured work — per-segment CPU operations, bytes crossing the
   interconnect, bytes spilled — into simulated seconds using the constants
   below. These are deliberately *different* numbers from the cost model's
   parameters: TAQO (paper §6.2) quantifies how well the cost model's
   ordering predicts these simulated runtimes. *)

type t = {
  cpu_tuple : float;      (* touch one tuple *)
  cpu_op : float;         (* evaluate one scalar operator *)
  hash_build : float;     (* insert into a hash table *)
  hash_probe : float;
  sort_cmp : float;       (* one comparison during sorting *)
  net_tuple : float;      (* per tuple crossing the interconnect *)
  net_byte : float;
  spill_byte : float;     (* write + read back one spilled byte *)
  nl_pair : float;        (* evaluate one (outer,inner) pair in an NL join *)
  scan_byte : float;      (* read one byte from local storage *)
  subplan_start : float;  (* fixed overhead of re-executing a SubPlan *)
}

let default =
  {
    cpu_tuple = 2.0e-7;
    cpu_op = 6.0e-8;
    hash_build = 3.5e-7;
    hash_probe = 1.8e-7;
    sort_cmp = 9.0e-8;
    net_tuple = 6.0e-7;
    net_byte = 1.2e-9;
    spill_byte = 4.0e-9;
    nl_pair = 6.0e-8;
    scan_byte = 4.0e-10;
    subplan_start = 2.0e-5;
  }

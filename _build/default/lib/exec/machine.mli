(** Machine model for simulated elapsed time.

    The simulator executes plans for real and converts the measured work —
    per-segment CPU operations, interconnect bytes, spilled bytes — into
    simulated seconds with these constants. They are deliberately different
    numbers from the cost model's parameters: TAQO (paper §6.2) quantifies
    how well the cost model's ordering predicts these runtimes. *)

type t = {
  cpu_tuple : float;      (** touch one tuple *)
  cpu_op : float;         (** evaluate one scalar operator *)
  hash_build : float;
  hash_probe : float;
  sort_cmp : float;       (** one comparison while sorting *)
  net_tuple : float;      (** per tuple crossing the interconnect *)
  net_byte : float;
  spill_byte : float;     (** write + read back one spilled byte *)
  nl_pair : float;        (** one (outer, inner) pair in an NL join *)
  scan_byte : float;
  subplan_start : float;  (** fixed overhead of re-executing a SubPlan *)
}

val default : t

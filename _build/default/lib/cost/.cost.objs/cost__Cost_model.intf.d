lib/cost/cost_model.mli: Expr Ir Props

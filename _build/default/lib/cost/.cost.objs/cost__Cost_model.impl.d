lib/cost/cost_model.ml: Expr Float Ir List Physical_ops Props Scalar_ops Table_desc

open Ir

(* The MPP cost model (paper §4.1 step 4).

   Costs approximate elapsed time: per-operator work is charged per segment
   (max over segments approximated as mean x skew), so a plan that keeps work
   distributed is cheaper than one that funnels data through the master.
   The model's parameters are deliberately exposed — TAQO (§6.2) measures how
   well the resulting cost ordering predicts actual simulated runtimes. *)

type t = {
  segments : int;
  cpu_tuple_cost : float;       (* touch one tuple *)
  cpu_operator_cost : float;    (* evaluate one scalar operator on one tuple *)
  seq_io_cost : float;          (* read one byte sequentially *)
  random_io_cost : float;       (* read one byte via an index *)
  hash_build_cost : float;      (* insert one tuple into a hash table *)
  hash_probe_cost : float;      (* probe one tuple *)
  sort_factor : float;          (* multiplier on n log n comparisons *)
  net_tuple_cost : float;       (* per tuple crossing the interconnect *)
  net_byte_cost : float;        (* per byte crossing the interconnect *)
  broadcast_factor : float;     (* penalty factor for broadcast fan-out *)
  materialize_cost : float;     (* write one byte to a spool/CTE buffer *)
  nl_tuple_cost : float;        (* per (outer x inner) pair in an NL join *)
  mem_per_segment : float;      (* working memory per segment, bytes *)
  spill_io_cost : float;        (* per byte spilled and re-read *)
}

let default =
  {
    segments = 16;
    cpu_tuple_cost = 1.0;
    cpu_operator_cost = 0.15;
    seq_io_cost = 0.01;
    random_io_cost = 0.1;
    hash_build_cost = 1.6;
    hash_probe_cost = 1.1;
    sort_factor = 0.35;
    net_tuple_cost = 2.0;
    net_byte_cost = 0.04;
    broadcast_factor = 1.3;
    materialize_cost = 0.01;
    nl_tuple_cost = 0.25;
    mem_per_segment = 64.0 *. 1024.0 *. 1024.0;
    spill_io_cost = 0.03;
  }

let with_segments t segments = { t with segments }

(* Rows processed by one segment for a stream with the given distribution. *)
let rows_per_segment t (dist : Props.dist) rows =
  match dist with
  | Props.D_singleton -> rows
  | Props.D_replicated -> rows (* each segment holds a full copy *)
  | Props.D_hashed _ | Props.D_random ->
      rows /. float_of_int (max 1 t.segments)

(* Extra memory-pressure cost: operators whose state exceeds the per-segment
   working memory spill to disk (GPDB-style). The SQL-on-Hadoop simulations
   instead *fail* in this situation; here it just costs. *)
let spill_cost t ~state_bytes ~stream_bytes =
  if state_bytes <= t.mem_per_segment then 0.0
  else (state_bytes +. stream_bytes) *. t.spill_io_cost

(* Description of one child input to a costed operator. *)
type input = { rows : float; width : float; dist : Props.dist; skew : float }

let input ?(skew = 1.0) ~rows ~width ~dist () = { rows; width; dist; skew }

let per_seg t (i : input) = rows_per_segment t i.dist i.rows *. i.skew

let nlog2n n =
  let n = Float.max n 2.0 in
  n *. (Float.log n /. Float.log 2.0)

(* Incremental cost of a physical operator (children costs excluded).
   [rows_out]/[width_out] describe the operator's output; [inputs] its
   children's outputs; [scan_rows] the pre-filter base cardinality for scans;
   [out_dist] the operator's delivered distribution. *)
let op_cost (t : t) (op : Expr.physical) ~(rows_out : float)
    ~(width_out : float) ~(inputs : input list) ~(scan_rows : float)
    ~(out_dist : Props.dist) : float =
  let in0 () =
    match inputs with
    | i :: _ -> i
    | [] -> { rows = 0.0; width = 0.0; dist = Props.D_random; skew = 1.0 }
  in
  let in1 () =
    match inputs with
    | _ :: i :: _ -> i
    | _ -> { rows = 0.0; width = 0.0; dist = Props.D_random; skew = 1.0 }
  in
  let out_per_seg = rows_per_segment t out_dist rows_out in
  match op with
  | Expr.P_table_scan (td, parts, filter) ->
      let frac =
        match parts with
        | None -> 1.0
        | Some kept ->
            let total = max 1 (Table_desc.npartitions td) in
            float_of_int (List.length kept) /. float_of_int total
      in
      let base = rows_per_segment t (Physical_ops.table_dist td) scan_rows *. frac in
      let filter_ops =
        match filter with
        | None -> 0.0
        | Some f -> float_of_int (List.length (Scalar_ops.conjuncts f))
      in
      base *. (t.cpu_tuple_cost +. (width_out *. t.seq_io_cost))
      +. (base *. filter_ops *. t.cpu_operator_cost)
  | Expr.P_index_scan (td, _, _, _, _) ->
      let base = rows_per_segment t (Physical_ops.table_dist td) scan_rows in
      (* btree descent + selective fetch *)
      (Float.log (Float.max 2.0 base) *. t.random_io_cost *. 100.0)
      +. (out_per_seg *. (t.cpu_tuple_cost +. (width_out *. t.random_io_cost)))
  | Expr.P_filter pred ->
      let i = in0 () in
      per_seg t i
      *. float_of_int (List.length (Scalar_ops.conjuncts pred))
      *. t.cpu_operator_cost
  | Expr.P_project projs ->
      (* pass-through columns are nearly free (slot projection); only
         computed expressions pay per-operator cost *)
      let computed =
        List.length
          (List.filter
             (fun p -> match p.Expr.proj_expr with Expr.Col _ -> false | _ -> true)
             projs)
      in
      let i = in0 () in
      per_seg t i
      *. ((float_of_int computed *. t.cpu_operator_cost)
         +. (0.05 *. t.cpu_tuple_cost))
  | Expr.P_hash_join (_, keys, _) ->
      let o = in0 () and i = in1 () in
      let build_rows = per_seg t i and probe_rows = per_seg t o in
      let key_ops = float_of_int (max 1 (List.length keys)) in
      let state = build_rows *. i.width in
      build_rows *. t.hash_build_cost
      +. (probe_rows *. t.hash_probe_cost *. key_ops)
      +. (out_per_seg *. t.cpu_tuple_cost)
      +. spill_cost t ~state_bytes:state ~stream_bytes:(probe_rows *. o.width)
  | Expr.P_merge_join (_, _, _) ->
      let o = in0 () and i = in1 () in
      ((per_seg t o +. per_seg t i) *. t.cpu_tuple_cost *. 1.15)
      +. (out_per_seg *. t.cpu_tuple_cost)
  | Expr.P_nl_join (_, cond) ->
      let o = in0 () and i = in1 () in
      let inner_local = per_seg t i in
      let cond_ops =
        float_of_int (max 1 (List.length (Scalar_ops.conjuncts cond)))
      in
      (per_seg t o *. Float.max 1.0 inner_local *. t.nl_tuple_cost *. cond_ops)
      +. (inner_local *. i.width *. t.materialize_cost)
      +. (out_per_seg *. t.cpu_tuple_cost)
  | Expr.P_hash_agg (_, keys, aggs) ->
      let i = in0 () in
      let input_rows = per_seg t i in
      let groups = out_per_seg in
      let state = groups *. width_out in
      input_rows *. t.hash_build_cost
      +. (input_rows
          *. float_of_int (max 1 (List.length keys + List.length aggs))
          *. t.cpu_operator_cost)
      +. spill_cost t ~state_bytes:state ~stream_bytes:(input_rows *. i.width)
  | Expr.P_stream_agg (_, keys, aggs) ->
      let i = in0 () in
      per_seg t i
      *. float_of_int (max 1 (List.length keys + List.length aggs))
      *. t.cpu_operator_cost
      +. (per_seg t i *. t.cpu_tuple_cost *. 0.5)
  | Expr.P_window (_, _, wfuncs) ->
      let i = in0 () in
      per_seg t i
      *. float_of_int (max 1 (List.length wfuncs))
      *. t.cpu_operator_cost
      +. (per_seg t i *. t.cpu_tuple_cost *. 0.3)
  | Expr.P_sort _ ->
      let i = in0 () in
      let n = per_seg t i in
      let bytes = n *. i.width in
      nlog2n n *. t.sort_factor *. t.cpu_tuple_cost
      +. spill_cost t ~state_bytes:bytes ~stream_bytes:bytes
  | Expr.P_limit (_, _, _) -> out_per_seg *. t.cpu_tuple_cost *. 0.1
  | Expr.P_motion m -> (
      let i = in0 () in
      let tuple_net w = t.net_tuple_cost +. (w *. t.net_byte_cost) in
      match m with
      | Expr.Gather | Expr.Gather_merge _ ->
          (* every row lands on the master: serial receive *)
          let merge =
            match m with
            | Expr.Gather_merge _ -> i.rows *. t.cpu_tuple_cost *. 0.3
            | _ -> 0.0
          in
          (i.rows *. tuple_net i.width) +. merge
      | Expr.Redistribute _ ->
          (* parallel exchange; destination skew concentrates receive work *)
          per_seg t i *. tuple_net i.width
          *. Float.max 1.0 (match out_dist with
             | Props.D_hashed _ -> 1.0
             | _ -> 1.0)
          *. i.skew
      | Expr.Broadcast ->
          (* every segment receives the full input *)
          i.rows *. tuple_net i.width *. t.broadcast_factor)
  | Expr.P_cte_producer _ ->
      let i = in0 () in
      per_seg t i *. (t.cpu_tuple_cost +. (i.width *. t.materialize_cost))
  | Expr.P_cte_consumer _ -> out_per_seg *. t.cpu_tuple_cost *. 0.5
  | Expr.P_sequence _ -> 0.0
  | Expr.P_set (kind, _) -> (
      let total_in = List.fold_left (fun a i -> a +. per_seg t i) 0.0 inputs in
      match kind with
      | Expr.Union_all -> total_in *. t.cpu_tuple_cost *. 0.2
      | Expr.Union_distinct | Expr.Intersect | Expr.Except ->
          total_in *. t.hash_build_cost)
  | Expr.P_const_table (_, rows) ->
      float_of_int (List.length rows) *. t.cpu_tuple_cost
  | Expr.P_partition_selector _ -> t.cpu_tuple_cost

(* Cost of an enforcer applied on a stream with the given properties. *)
let enforcer_cost (t : t) (enf : Props.enforcer) ~(rows : float)
    ~(width : float) ~(dist : Props.dist) ~(skew : float) : float =
  let i = { rows; width; dist; skew } in
  match enf with
  | Props.E_sort spec ->
      let out_dist = dist in
      op_cost t (Expr.P_sort spec) ~rows_out:rows ~width_out:width
        ~inputs:[ i ] ~scan_rows:0.0 ~out_dist
  | Props.E_motion m ->
      let out_dist = (Props.apply_enforcer { Props.ddist = dist; dorder = [] } enf).Props.ddist in
      op_cost t (Expr.P_motion m) ~rows_out:rows ~width_out:width ~inputs:[ i ]
        ~scan_rows:0.0 ~out_dist

(** The MPP cost model (paper §4.1 step 4).

    Costs approximate elapsed time: per-operator work is charged per segment
    (mean x skew), so plans that keep work distributed beat plans that funnel
    data through the master. Every parameter is exposed; TAQO (§6.2) measures
    how well the resulting cost ordering predicts actual simulated runtimes. *)

open Ir

type t = {
  segments : int;            (** cluster size the plan is costed for *)
  cpu_tuple_cost : float;    (** touch one tuple *)
  cpu_operator_cost : float; (** evaluate one scalar operator on one tuple *)
  seq_io_cost : float;       (** read one byte sequentially *)
  random_io_cost : float;    (** read one byte through an index *)
  hash_build_cost : float;   (** insert one tuple into a hash table *)
  hash_probe_cost : float;
  sort_factor : float;       (** multiplier on n·log n comparisons *)
  net_tuple_cost : float;    (** per tuple crossing the interconnect *)
  net_byte_cost : float;
  broadcast_factor : float;  (** penalty factor for broadcast fan-out *)
  materialize_cost : float;  (** write one byte to a spool/CTE buffer *)
  nl_tuple_cost : float;     (** per (outer x inner) pair in an NL join *)
  mem_per_segment : float;   (** working memory per segment, bytes *)
  spill_io_cost : float;     (** per byte spilled and re-read *)
}

val default : t

val with_segments : t -> int -> t

val rows_per_segment : t -> Props.dist -> float -> float
(** Rows one segment processes for a stream with the given distribution
    (full rows for Singleton and Replicated, rows/segments otherwise). *)

(** Description of one child input to a costed operator. *)
type input = { rows : float; width : float; dist : Props.dist; skew : float }

val input : ?skew:float -> rows:float -> width:float -> dist:Props.dist -> unit -> input

val op_cost :
  t ->
  Expr.physical ->
  rows_out:float ->
  width_out:float ->
  inputs:input list ->
  scan_rows:float ->
  out_dist:Props.dist ->
  float
(** Incremental cost of a physical operator, children excluded. [scan_rows]
    is the pre-filter base-table cardinality (scans only); [out_dist] the
    operator's delivered distribution. Includes spill charges when an
    operator's state exceeds [mem_per_segment]. *)

val enforcer_cost :
  t ->
  Props.enforcer ->
  rows:float ->
  width:float ->
  dist:Props.dist ->
  skew:float ->
  float
(** Cost of one enforcer (sort or motion) applied to a stream with the given
    properties. *)

(** SQL data types supported by the system. *)

type t = Int | Float | Bool | String | Date

val to_string : t -> string

val of_string : string -> t
(** Raises [Gpos_error.Error Dxl_error] on unknown names. *)

val is_numeric : t -> bool

val width : t -> int
(** Nominal byte width used by the cost model. *)

val equal : t -> t -> bool

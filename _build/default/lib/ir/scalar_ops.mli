(** Operations on scalar expressions. *)

open Expr

val to_string : scalar -> string
val iter_children : (scalar -> unit) -> scalar -> unit

val map : (scalar -> scalar option) -> scalar -> scalar
(** Top-down rewriting: [f] returning [Some] replaces the node (children not
    revisited); [None] recurses. *)

val free_cols : scalar -> Colref.Set.t
(** Columns referenced, SubPlan correlation parameters counted as outer
    references. *)

val free_cols_of_list : scalar list -> Colref.Set.t
val substitute : Colref.t Colref.Map.t -> scalar -> scalar

val conjuncts : scalar -> scalar list
(** Top-level conjuncts, nested ANDs flattened, trivial [true] dropped. *)

val conjoin : scalar list -> scalar
(** Inverse of {!conjuncts}; the empty list becomes [true]. *)

val extract_equi_keys :
  outer_cols:Colref.Set.t ->
  inner_cols:Colref.Set.t ->
  scalar ->
  (scalar * scalar) list * scalar list
(** Split a join condition into equi-key pairs (outer side first) and
    residual conjuncts. Each key side must reference at least one column of
    exactly one input — constant-only expressions are never keys. *)

val type_of : scalar -> Dtype.t
val contains_subplan : scalar -> bool

val fingerprint : scalar -> int
(** Structural hash for Memo duplicate detection. *)

val equal : scalar -> scalar -> bool

val like_match : pattern:string -> string -> bool
(** SQL LIKE with [%] and [_]; shared by the executor and selectivity
    estimation. *)

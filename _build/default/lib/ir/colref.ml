(* Column references. Every column *instance* in a query gets a unique id at
   bind time (self-joins bind the same table twice with distinct ids), exactly
   like Orca's ColId. *)

type t = { id : int; name : string; ty : Dtype.t }

let make ~id ~name ~ty = { id; name; ty }
let id t = t.id
let name t = t.name
let ty t = t.ty

let compare a b = Int.compare a.id b.id
let equal a b = a.id = b.id
let hash t = t.id

let to_string t = Printf.sprintf "%s#%d" t.name t.id

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = struct
  include Stdlib.Set.Make (Ord)

  let to_string s =
    "{" ^ String.concat ", " (List.map to_string (elements s)) ^ "}"
end

module Map = Stdlib.Map.Make (Ord)

(* Factory producing fresh column ids; one per optimization session. *)
module Factory = struct
  type nonrec t = { mutable next : int }

  let create ?(start = 0) () = { next = start }

  let fresh t ~name ~ty =
    let id = t.next in
    t.next <- t.next + 1;
    make ~id ~name ~ty

  let next_id t = t.next

  let bump t id = if id >= t.next then t.next <- id + 1
end

(* Positional lookup of a column id within a schema (list of colrefs). *)
let position_in schema col =
  let rec find i = function
    | [] -> None
    | c :: rest -> if equal c col then Some i else find (i + 1) rest
  in
  find 0 schema

let position_exn schema col =
  match position_in schema col with
  | Some i -> i
  | None ->
      Gpos.Gpos_error.internal "column %s not found in schema [%s]"
        (to_string col)
        (String.concat "; " (List.map to_string schema))

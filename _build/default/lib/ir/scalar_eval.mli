(** Scalar expression evaluation with SQL three-valued logic.

    Parameterized by an environment resolving column references and by a
    SubPlan executor callback (used by the legacy Planner's correlated
    SubPlan scalars; the Orca path never needs it). *)

open Expr

type env = Colref.t -> Datum.t

exception No_subplan_executor

type subplan_exec = subplan -> env -> Datum.t array list
(** Receives the subplan and the current row's environment (for correlation
    parameters); returns the inner plan's result rows. *)

val no_subplan : subplan_exec
(** Raises {!No_subplan_executor} — the default for plans with no SubPlans. *)

val eval : ?subplan:subplan_exec -> env -> scalar -> Datum.t
(** Three-valued evaluation: NULL propagates through comparisons and
    arithmetic; AND/OR/NOT follow Kleene logic; IN handles NULL elements. *)

val eval_pred : ?subplan:subplan_exec -> env -> scalar -> bool
(** Predicate semantics: NULL counts as not passing. *)

val fold_constants : scalar -> scalar
(** Evaluate column-free, SubPlan-free subexpressions to constants. *)

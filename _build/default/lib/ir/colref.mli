(** Column references. Every column *instance* in a query gets a unique id at
    bind time — self-joins bind the same table twice with distinct ids —
    exactly like Orca's ColId. Identity is the id; names are for humans. *)

type t

val make : id:int -> name:string -> ty:Dtype.t -> t
val id : t -> int
val name : t -> string
val ty : t -> Dtype.t
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val to_string : t -> string

module Set : sig
  include Set.S with type elt = t

  val to_string : t -> string
end

module Map : Map.S with type key = t

(** Factory producing fresh column ids; one per optimization session. *)
module Factory : sig
  type colref := t
  type t

  val create : ?start:int -> unit -> t
  val fresh : t -> name:string -> ty:Dtype.t -> colref
  val next_id : t -> int

  val bump : t -> int -> unit
  (** Ensure future ids exceed the given id (used after parsing DXL queries
      that carry explicit column ids). *)
end

val position_in : t list -> t -> int option
(** Position of a column id within a schema. *)

val position_exn : t list -> t -> int

(* Runtime values. Dates are stored as days since epoch. *)

type t =
  | Null
  | Int of int
  | Float of float
  | Bool of bool
  | String of string
  | Date of int

let type_of = function
  | Null -> None
  | Int _ -> Some Dtype.Int
  | Float _ -> Some Dtype.Float
  | Bool _ -> Some Dtype.Bool
  | String _ -> Some Dtype.String
  | Date _ -> Some Dtype.Date

let is_null = function Null -> true | _ -> false

(* Total order used by sorting and histograms: Null sorts first; numeric types
   compare by value across Int/Float. *)
let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Null, _ -> -1
  | _, Null -> 1
  | Int x, Int y -> Stdlib.compare x y
  | Float x, Float y -> Stdlib.compare x y
  | Int x, Float y -> Stdlib.compare (float_of_int x) y
  | Float x, Int y -> Stdlib.compare x (float_of_int y)
  | Bool x, Bool y -> Stdlib.compare x y
  | String x, String y -> Stdlib.compare x y
  | Date x, Date y -> Stdlib.compare x y
  | Int _, _ -> -1
  | _, Int _ -> 1
  | Float _, _ -> -1
  | _, Float _ -> 1
  | Bool _, _ -> -1
  | _, Bool _ -> 1
  | String _, _ -> -1
  | _, String _ -> 1

let equal a b = compare a b = 0

let hash = function
  | Null -> 0
  | Int x -> Hashtbl.hash (1, x)
  | Float x -> if Float.is_integer x then Hashtbl.hash (1, int_of_float x) else Hashtbl.hash (2, x)
  | Bool x -> Hashtbl.hash (3, x)
  | String x -> Hashtbl.hash (4, x)
  | Date x -> Hashtbl.hash (5, x)

(* SQL three-valued comparison: None when either side is Null. *)
let sql_compare a b =
  match (a, b) with Null, _ | _, Null -> None | _ -> Some (compare a b)

let to_float = function
  | Null -> nan
  | Int x -> float_of_int x
  | Float x -> x
  | Bool b -> if b then 1.0 else 0.0
  | Date d -> float_of_int d
  | String s ->
      (* Monotone-ish embedding of strings for histogram interpolation. *)
      let v = ref 0.0 in
      for i = 0 to min 7 (String.length s - 1) do
        v := (!v *. 256.0) +. float_of_int (Char.code s.[i])
      done;
      !v

let date_to_string d =
  (* Days since 1900-01-01, rendered with a simplified proleptic calendar
     (fixed 365.2425-day years) sufficient for display purposes. *)
  let year = 1900 + (d / 365) in
  let day_of_year = d mod 365 in
  let month = (day_of_year / 31) + 1 in
  let day = (day_of_year mod 31) + 1 in
  Printf.sprintf "%04d-%02d-%02d" year month day

(* Inverse of [date_to_string]'s simplified calendar. *)
let date_of_string s =
  match String.split_on_char '-' s with
  | [ y; m; d ] -> (
      try
        let y = int_of_string y and m = int_of_string m and d = int_of_string d in
        Date (((y - 1900) * 365) + ((m - 1) * 31) + (d - 1))
      with Failure _ ->
        Gpos.Gpos_error.raise_error Gpos.Gpos_error.Parse_error
          "bad date literal %S" s)
  | _ ->
      Gpos.Gpos_error.raise_error Gpos.Gpos_error.Parse_error
        "bad date literal %S" s

let to_string = function
  | Null -> "NULL"
  | Int x -> string_of_int x
  | Float x -> Printf.sprintf "%g" x
  | Bool b -> if b then "true" else "false"
  | String s -> "'" ^ s ^ "'"
  | Date d -> date_to_string d

(* Serialization used by DXL: tagged, unambiguous, round-trippable. *)
let serialize = function
  | Null -> "null:"
  | Int x -> "int:" ^ string_of_int x
  | Float x -> Printf.sprintf "float:%h" x (* hex: exact round-trip *)
  | Bool b -> "bool:" ^ string_of_bool b
  | String s -> "string:" ^ s
  | Date d -> "date:" ^ string_of_int d

let deserialize s =
  match String.index_opt s ':' with
  | None -> Gpos.Gpos_error.raise_error Gpos.Gpos_error.Dxl_error "bad datum %S" s
  | Some i -> (
      let tag = String.sub s 0 i in
      let payload = String.sub s (i + 1) (String.length s - i - 1) in
      match tag with
      | "null" -> Null
      | "int" -> Int (int_of_string payload)
      | "float" -> Float (float_of_string payload)
      | "bool" -> Bool (bool_of_string payload)
      | "string" -> String payload
      | "date" -> Date (int_of_string payload)
      | _ ->
          Gpos.Gpos_error.raise_error Gpos.Gpos_error.Dxl_error "bad datum tag %S" tag)

(* Arithmetic with SQL null propagation. *)
let arith op a b =
  match (a, b) with
  | Null, _ | _, Null -> Null
  | Int x, Int y -> (
      match op with
      | `Add -> Int (x + y)
      | `Sub -> Int (x - y)
      | `Mul -> Int (x * y)
      | `Div -> if y = 0 then Null else Float (float_of_int x /. float_of_int y)
      | `Mod -> if y = 0 then Null else Int (x mod y))
  | _ -> (
      let x = to_float a and y = to_float b in
      match op with
      | `Add -> Float (x +. y)
      | `Sub -> Float (x -. y)
      | `Mul -> Float (x *. y)
      | `Div -> if y = 0.0 then Null else Float (x /. y)
      | `Mod -> if y = 0.0 then Null else Float (Float.rem x y))

let cast d ty =
  match (d, ty) with
  | Null, _ -> Null
  | d, t when type_of d = Some t -> d
  | Int x, Dtype.Float -> Float (float_of_int x)
  | Float x, Dtype.Int -> Int (int_of_float x)
  | Int x, Dtype.Date -> Date x
  | Date x, Dtype.Int -> Int x
  | Int x, Dtype.String -> String (string_of_int x)
  | Float x, Dtype.String -> String (Printf.sprintf "%g" x)
  | Bool b, Dtype.Int -> Int (if b then 1 else 0)
  | Bool b, Dtype.String -> String (if b then "true" else "false")
  | String s, Dtype.Int -> (
      match int_of_string_opt (String.trim s) with Some i -> Int i | None -> Null)
  | String s, Dtype.Float -> (
      match float_of_string_opt (String.trim s) with Some f -> Float f | None -> Null)
  | Date d, Dtype.String -> String (date_to_string d)
  | _ -> Null

(* Width in bytes of a concrete value (memory accounting in the executor). *)
let byte_width = function
  | Null -> 1
  | Int _ -> 8
  | Float _ -> 8
  | Bool _ -> 1
  | String s -> 16 + String.length s
  | Date _ -> 4

(* Sort order specifications: an ordered list of (column, direction). *)

type dir = Asc | Desc

type item = { col : Colref.t; dir : dir }

type t = item list

let empty : t = []
let is_empty (t : t) = t = []

let asc col = { col; dir = Asc }
let desc col = { col; dir = Desc }

let dir_to_string = function Asc -> "asc" | Desc -> "desc"

let item_to_string i =
  Printf.sprintf "%s %s" (Colref.to_string i.col) (dir_to_string i.dir)

let to_string (t : t) =
  "<" ^ String.concat ", " (List.map item_to_string t) ^ ">"

let equal_item a b = Colref.equal a.col b.col && a.dir = b.dir

let equal (a : t) (b : t) =
  List.length a = List.length b && List.for_all2 equal_item a b

(* [satisfies delivered required]: a delivered order satisfies a required one
   when the required order is a prefix of the delivered order. *)
let satisfies ~delivered ~required =
  let rec prefix req del =
    match (req, del) with
    | [], _ -> true
    | _, [] -> false
    | r :: rs, d :: ds -> equal_item r d && prefix rs ds
  in
  prefix required delivered

let cols (t : t) = List.map (fun i -> i.col) t

(* Comparator over rows given column positions resolved against a schema. *)
let row_compare (t : t) ~schema =
  let keyed =
    List.map (fun i -> (Colref.position_exn schema i.col, i.dir)) t
  in
  fun (a : Datum.t array) (b : Datum.t array) ->
    let rec go = function
      | [] -> 0
      | (pos, dir) :: rest ->
          let c = Datum.compare a.(pos) b.(pos) in
          let c = match dir with Asc -> c | Desc -> -c in
          if c <> 0 then c else go rest
    in
    go keyed

(* Scalar expression evaluation with SQL three-valued logic.

   The evaluator is parameterized by an environment resolving column
   references and by a subplan executor callback (used by the legacy
   Planner's correlated SubPlan nodes; the Orca path never needs it). *)

open Expr

type env = Colref.t -> Datum.t

exception No_subplan_executor

(* [subplan] receives the subplan and the current environment (for
   correlation parameters) and returns the inner plan's result rows. *)
type subplan_exec = subplan -> env -> Datum.t array list

let no_subplan : subplan_exec = fun _ _ -> raise No_subplan_executor

let bool_of = function
  | Datum.Bool b -> Some b
  | Datum.Null -> None
  | d ->
      Gpos.Gpos_error.raise_error Gpos.Gpos_error.Exec_error
        "expected boolean, got %s" (Datum.to_string d)

let of_bool3 = function
  | Some true -> Datum.Bool true
  | Some false -> Datum.Bool false
  | None -> Datum.Null

let cmp_eval op a b =
  match Datum.sql_compare a b with
  | None -> Datum.Null
  | Some c ->
      let r =
        match op with
        | Eq -> c = 0
        | Neq -> c <> 0
        | Lt -> c < 0
        | Le -> c <= 0
        | Gt -> c > 0
        | Ge -> c >= 0
      in
      Datum.Bool r

let arith_tag = function
  | Add -> `Add
  | Sub -> `Sub
  | Mul -> `Mul
  | Div -> `Div
  | Mod -> `Mod

let rec eval ?(subplan = no_subplan) (env : env) (s : scalar) : Datum.t =
  let e x = eval ~subplan env x in
  match s with
  | Col c -> env c
  | Const d -> d
  | Cmp (op, a, b) -> cmp_eval op (e a) (e b)
  | And cs ->
      (* three-valued AND: false dominates, then null *)
      let rec go saw_null = function
        | [] -> if saw_null then Datum.Null else Datum.Bool true
        | c :: rest -> (
            match bool_of (e c) with
            | Some false -> Datum.Bool false
            | Some true -> go saw_null rest
            | None -> go true rest)
      in
      go false cs
  | Or cs ->
      let rec go saw_null = function
        | [] -> if saw_null then Datum.Null else Datum.Bool false
        | c :: rest -> (
            match bool_of (e c) with
            | Some true -> Datum.Bool true
            | Some false -> go saw_null rest
            | None -> go true rest)
      in
      go false cs
  | Not c -> of_bool3 (Option.map not (bool_of (e c)))
  | Arith (op, a, b) -> Datum.arith (arith_tag op) (e a) (e b)
  | Is_null c -> Datum.Bool (Datum.is_null (e c))
  | Case (whens, els) ->
      let rec go = function
        | [] -> ( match els with Some v -> e v | None -> Datum.Null)
        | (cond, v) :: rest -> (
            match bool_of (e cond) with Some true -> e v | _ -> go rest)
      in
      go whens
  | In_list (x, ds) -> (
      let v = e x in
      if Datum.is_null v then Datum.Null
      else
        let found = List.exists (fun d -> Datum.equal d v) ds in
        if found then Datum.Bool true
        else if List.exists Datum.is_null ds then Datum.Null
        else Datum.Bool false)
  | Like (x, pat) -> (
      match e x with
      | Datum.Null -> Datum.Null
      | Datum.String s -> Datum.Bool (Scalar_ops.like_match ~pattern:pat s)
      | d -> Datum.Bool (Scalar_ops.like_match ~pattern:pat (Datum.to_string d)))
  | Coalesce cs ->
      let rec go = function
        | [] -> Datum.Null
        | c :: rest ->
            let v = e c in
            if Datum.is_null v then go rest else v
      in
      go cs
  | Cast (c, ty) -> Datum.cast (e c) ty
  | Subplan sp -> eval_subplan ~subplan env sp

and eval_subplan ~subplan env (sp : subplan) : Datum.t =
  let rows = subplan sp env in
  match sp.sp_kind with
  | Sp_scalar -> (
      match rows with
      | [] -> Datum.Null
      | [ row ] when Array.length row >= 1 -> row.(0)
      | row :: _ when Array.length row >= 1 ->
          (* multiple rows from a scalar subquery: SQL would error; we take
             the first row, as PostgreSQL's pre-9 planner did for SubLinks *)
          row.(0)
      | _ -> Datum.Null)
  | Sp_exists -> Datum.Bool (rows <> [])
  | Sp_not_exists -> Datum.Bool (rows = [])
  | Sp_in tested | Sp_not_in tested -> (
      let v = eval ~subplan env tested in
      let inner_vals =
        List.filter_map
          (fun r -> if Array.length r >= 1 then Some r.(0) else None)
          rows
      in
      let membership =
        if Datum.is_null v then Datum.Null
        else if List.exists (fun d -> Datum.equal d v) inner_vals then
          Datum.Bool true
        else if List.exists Datum.is_null inner_vals then Datum.Null
        else Datum.Bool false
      in
      match sp.sp_kind with
      | Sp_not_in _ -> of_bool3 (Option.map not (bool_of membership))
      | _ -> membership)

(* Predicate evaluation: NULL counts as not passing. *)
let eval_pred ?subplan env s =
  match eval ?subplan env s with Datum.Bool true -> true | _ -> false

(* Constant folding: evaluate subexpressions with no column references. *)
let fold_constants (s : scalar) : scalar =
  Scalar_ops.map
    (fun sub ->
      match sub with
      | Const _ | Col _ -> None
      | Subplan _ -> None
      | _ ->
          if
            Colref.Set.is_empty (Scalar_ops.free_cols sub)
            && not (Scalar_ops.contains_subplan sub)
          then
            Some (Const (eval (fun _ -> Datum.Null) sub))
          else None)
    s

(** Operations on logical operators. Output-column derivation is
    parameterized by the children's output columns (supplied by the Memo's
    group properties or recomputed from trees). *)

open Expr

val arity : logical -> int
(** Set operations report 2 but accept two-or-more children. *)

val output_cols : logical -> Colref.t list list -> Colref.t list
(** The operator's output columns, in order, given each child's outputs. *)

val used_cols : logical -> Colref.Set.t
(** Columns the operator's own payload references. *)

val agg_to_string : agg -> string
val wfunc_to_string : wfunc -> string
val window_to_string : Colref.t list -> Sortspec.t -> wfunc list -> string
val proj_to_string : proj -> string
val apply_kind_to_string : apply_kind -> string
val to_string : logical -> string

val fingerprint : logical -> int
(** Payload hash for Memo duplicate detection (children handled by the
    Memo's topology key). *)

val equal : logical -> logical -> bool

(** Runtime values. Dates are stored as days since the simplified calendar's
    epoch (1900-01-01). *)

type t =
  | Null
  | Int of int
  | Float of float
  | Bool of bool
  | String of string
  | Date of int

val type_of : t -> Dtype.t option
(** [None] for [Null]. *)

val is_null : t -> bool

val compare : t -> t -> int
(** Total order for sorting and histograms: Null sorts first; Int and Float
    compare by numeric value; unrelated types order by a fixed type rank. *)

val equal : t -> t -> bool

val hash : t -> int
(** Consistent with [equal] (integral floats hash like ints). *)

val sql_compare : t -> t -> int option
(** SQL three-valued comparison: [None] when either side is Null. *)

val to_float : t -> float
(** Numeric embedding used for histogram interpolation (strings use a
    monotone-ish prefix embedding). *)

val date_to_string : int -> string
val date_of_string : string -> t
val to_string : t -> string

val serialize : t -> string
(** Tagged, unambiguous, exactly round-trippable (floats in hex). *)

val deserialize : string -> t

val arith : [ `Add | `Sub | `Mul | `Div | `Mod ] -> t -> t -> t
(** SQL semantics: Null propagates; Int/Int division is exact (Float);
    division or modulo by zero is Null. *)

val cast : t -> Dtype.t -> t
(** Best-effort conversion; failures produce Null. *)

val byte_width : t -> int
(** Bytes of a concrete value, for memory accounting in the executor. *)

(* Table descriptors: the optimizer-side view of a base table, bound to the
   fresh column references of one query (paper §3, metadata exchange §5). *)

type distribution =
  | Dist_hash of Colref.t list  (* hashed on these columns across segments *)
  | Dist_random                 (* round-robin *)
  | Dist_replicated             (* full copy on every segment *)

(* Range partition on [part_col]: value v belongs to part p iff lo <= v < hi. *)
type part = { part_id : int; lo : Datum.t; hi : Datum.t }

type index = {
  idx_name : string;
  idx_col : Colref.t;  (* single-column btree index *)
}

type t = {
  mdid : string;  (* metadata id: "<sysid>.<oid>.<major>.<minor>" *)
  name : string;
  cols : Colref.t list;
  dist : distribution;
  part_col : Colref.t option;
  parts : part list;
  indexes : index list;
}

let make ?(dist = Dist_random) ?part_col ?(parts = []) ?(indexes = []) ~mdid
    ~name cols =
  { mdid; name; cols; dist; part_col; parts; indexes }

let is_partitioned t = t.parts <> []

let npartitions t = List.length t.parts

let distribution_to_string = function
  | Dist_hash cols ->
      "Hashed(" ^ String.concat "," (List.map Colref.to_string cols) ^ ")"
  | Dist_random -> "Random"
  | Dist_replicated -> "Replicated"

let to_string t =
  Printf.sprintf "%s[%s] %s%s" t.name
    (String.concat ", " (List.map Colref.to_string t.cols))
    (distribution_to_string t.dist)
    (if is_partitioned t then Printf.sprintf " parts=%d" (npartitions t) else "")

(* Which partitions can contain rows satisfying [lo_bound <= part_col op v]?
   Conservative static pruning over the range bounds. *)
let parts_matching_range t ~lo ~hi =
  (* keep part if [lo, hi] (inclusive, None = unbounded) intersects [p.lo, p.hi) *)
  List.filter
    (fun p ->
      let above_lo =
        match lo with
        | None -> true
        | Some v -> Datum.compare p.hi v > 0 (* part upper bound exceeds lo *)
      in
      let below_hi =
        match hi with
        | None -> true
        | Some v -> Datum.compare p.lo v <= 0 (* part lower bound not above hi *)
      in
      above_lo && below_hi)
    t.parts

let parts_matching_value t v =
  List.filter
    (fun p -> Datum.compare p.lo v <= 0 && Datum.compare v p.hi < 0)
    t.parts

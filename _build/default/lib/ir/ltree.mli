(** Pure logical operator trees: the binder's output and the input to the
    preprocessing passes that run before Memo copy-in. *)

type t = { op : Expr.logical; children : t list }

val make : Expr.logical -> t list -> t
(** Arity-checked construction (set operations accept two or more children).
    Raises on arity mismatch. *)

val leaf : Expr.logical -> t
val output_cols : t -> Colref.t list
val to_string : ?indent:int -> t -> string
val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
val node_count : t -> int
val map_bottom_up : (t -> t) -> t -> t

val validate : t -> unit
(** Column-visibility validation: every column an operator's payload uses
    must be produced by its children; correlated Apply inners are checked
    with the outer side's columns visible. Raises on violations. *)

lib/ir/props.mli: Colref Expr Sortspec

lib/ir/logical_ops.ml: Colref Expr Gpos Hashtbl List Printf Scalar_ops Sortspec Stdlib String Table_desc

lib/ir/ltree.mli: Colref Expr

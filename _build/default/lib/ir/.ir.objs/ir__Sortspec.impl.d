lib/ir/sortspec.ml: Array Colref Datum List Printf String

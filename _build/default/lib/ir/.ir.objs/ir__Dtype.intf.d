lib/ir/dtype.mli:

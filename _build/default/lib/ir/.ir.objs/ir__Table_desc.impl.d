lib/ir/table_desc.ml: Colref Datum List Printf String

lib/ir/table_desc.mli: Colref Datum

lib/ir/logical_ops.mli: Colref Expr Sortspec

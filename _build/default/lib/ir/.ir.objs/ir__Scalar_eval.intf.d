lib/ir/scalar_eval.mli: Colref Datum Expr

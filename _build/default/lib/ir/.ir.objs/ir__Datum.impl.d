lib/ir/datum.ml: Char Dtype Float Gpos Hashtbl Printf Stdlib String

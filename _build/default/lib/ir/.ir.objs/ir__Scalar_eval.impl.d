lib/ir/scalar_eval.ml: Array Colref Datum Expr Gpos List Option Scalar_ops

lib/ir/colref.mli: Dtype Map Set

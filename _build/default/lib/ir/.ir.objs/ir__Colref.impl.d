lib/ir/colref.ml: Dtype Gpos Int List Printf Stdlib String

lib/ir/dtype.ml: Gpos

lib/ir/physical_ops.mli: Colref Expr Props Sortspec Table_desc

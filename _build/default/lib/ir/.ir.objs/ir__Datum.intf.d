lib/ir/datum.mli: Dtype

lib/ir/sortspec.mli: Colref Datum

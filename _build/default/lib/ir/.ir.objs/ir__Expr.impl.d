lib/ir/expr.ml: Colref Datum Dtype Sortspec Table_desc

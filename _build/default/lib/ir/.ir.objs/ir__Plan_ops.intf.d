lib/ir/plan_ops.mli: Colref Expr

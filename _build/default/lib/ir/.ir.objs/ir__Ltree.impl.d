lib/ir/ltree.ml: Colref Expr Gpos List Logical_ops String

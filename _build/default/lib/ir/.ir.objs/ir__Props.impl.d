lib/ir/props.ml: Colref Expr Hashtbl List Printf Scalar_ops Sortspec String

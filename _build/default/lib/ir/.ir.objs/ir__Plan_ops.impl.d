lib/ir/plan_ops.ml: Buffer Colref Expr Gpos List Option Physical_ops Printf Scalar_ops String Table_desc

lib/ir/scalar_ops.ml: Array Colref Datum Dtype Expr Hashtbl List Option Printf Stdlib String

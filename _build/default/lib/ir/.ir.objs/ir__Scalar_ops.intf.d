lib/ir/scalar_ops.mli: Colref Dtype Expr

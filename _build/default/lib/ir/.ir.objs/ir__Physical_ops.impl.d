lib/ir/physical_ops.ml: Colref Expr Gpos Hashtbl List Logical_ops Printf Props Scalar_ops Sortspec Stdlib String Table_desc

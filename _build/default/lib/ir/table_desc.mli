(** Table descriptors: the optimizer-side view of a base table, bound to the
    fresh column references of one query (paper §3, §5). *)

type distribution =
  | Dist_hash of Colref.t list  (** hashed on these columns across segments *)
  | Dist_random                 (** round-robin *)
  | Dist_replicated             (** full copy on every segment *)

type part = { part_id : int; lo : Datum.t; hi : Datum.t }
(** Range partition on the partitioning column: lo <= v < hi. *)

type index = { idx_name : string; idx_col : Colref.t }
(** Single-column btree index. *)

type t = {
  mdid : string;  (** metadata id: "<sysid>.<oid>.<major>.<minor>" *)
  name : string;
  cols : Colref.t list;
  dist : distribution;
  part_col : Colref.t option;
  parts : part list;
  indexes : index list;
}

val make :
  ?dist:distribution ->
  ?part_col:Colref.t ->
  ?parts:part list ->
  ?indexes:index list ->
  mdid:string ->
  name:string ->
  Colref.t list ->
  t

val is_partitioned : t -> bool
val npartitions : t -> int
val distribution_to_string : distribution -> string
val to_string : t -> string

val parts_matching_range :
  t -> lo:Datum.t option -> hi:Datum.t option -> part list
(** Partitions intersecting the inclusive range ([None] = unbounded). *)

val parts_matching_value : t -> Datum.t -> part list

(* SQL data types supported by the system. *)

type t = Int | Float | Bool | String | Date

let to_string = function
  | Int -> "int"
  | Float -> "float"
  | Bool -> "bool"
  | String -> "string"
  | Date -> "date"

let of_string = function
  | "int" -> Int
  | "float" -> Float
  | "bool" -> Bool
  | "string" -> String
  | "date" -> Date
  | s -> Gpos.Gpos_error.raise_error Gpos.Gpos_error.Dxl_error "unknown type %s" s

let is_numeric = function Int | Float -> true | Bool | String | Date -> false

(* Byte width used by the cost model and memory accounting. *)
let width = function
  | Int -> 8
  | Float -> 8
  | Bool -> 1
  | String -> 24
  | Date -> 4

let equal (a : t) (b : t) = a = b

(* The operator and expression algebra (paper §3 "Operators").

   Logical operators describe *what* to compute, physical operators *how*.
   Both are first-class Memo citizens of equal footing. Scalar expressions are
   kept as operator payload (see DESIGN.md). [plan] is a concrete physical
   operator tree extracted from the Memo, consumed by DXL serialization and by
   the execution simulator; the legacy Planner also produces [plan] values
   directly (its correlated subqueries appear as [Subplan] scalars, exactly
   like PostgreSQL SubPlan nodes). *)

type cmp = Eq | Neq | Lt | Le | Gt | Ge

type arith = Add | Sub | Mul | Div | Mod

type agg_kind = Count_star | Count | Sum | Min | Max

type join_kind = Inner | Left_outer | Full_outer | Semi | Anti_semi

type set_kind = Union_all | Union_distinct | Intersect | Except

(* Aggregation phases for multi-stage (local/global) MPP aggregation. *)
type agg_phase = One_phase | Partial | Final

type motion =
  | Gather                         (* all segments -> master *)
  | Gather_merge of Sortspec.t     (* order-preserving gather *)
  | Redistribute of scalar list    (* hash-distribute on expressions *)
  | Broadcast                      (* replicate input to every segment *)

and scalar =
  | Col of Colref.t
  | Const of Datum.t
  | Cmp of cmp * scalar * scalar
  | And of scalar list
  | Or of scalar list
  | Not of scalar
  | Arith of arith * scalar * scalar
  | Is_null of scalar
  | Case of (scalar * scalar) list * scalar option
  | In_list of scalar * Datum.t list
  | Like of scalar * string        (* SQL LIKE with % and _ *)
  | Coalesce of scalar list
  | Cast of scalar * Dtype.t
  | Subplan of subplan

and subplan_kind =
  | Sp_scalar                      (* value of single-row single-col subplan *)
  | Sp_exists
  | Sp_not_exists
  | Sp_in of scalar                (* expr IN (subplan column) *)
  | Sp_not_in of scalar

and subplan = {
  sp_kind : subplan_kind;
  sp_plan : plan;
  (* Correlation parameters: (outer column feeding it, parameter column the
     inner plan reads). Empty for uncorrelated subplans. *)
  sp_params : (Colref.t * Colref.t) list;
}

and agg = {
  agg_kind : agg_kind;
  agg_arg : scalar option;         (* None only for Count_star *)
  agg_distinct : bool;
  agg_out : Colref.t;
}

and proj = { proj_expr : scalar; proj_out : Colref.t }

(* Window functions. With an ORDER BY, aggregate windows use the SQL default
   frame (RANGE UNBOUNDED PRECEDING .. CURRENT ROW, peers included); without
   one they cover the whole partition. *)
and wkind = W_row_number | W_rank | W_dense_rank | W_agg of agg_kind

and wfunc = { wf_kind : wkind; wf_arg : scalar option; wf_out : Colref.t }

(* Correlated-subquery operators produced by the binder, removed (when
   possible) by decorrelation rules (paper §7.2.2 "Correlated Subqueries"). *)
and apply_kind =
  | Apply_scalar of Colref.t       (* inner single column exposed under this id *)
  | Apply_exists
  | Apply_not_exists
  | Apply_in of scalar * Colref.t      (* expr IN inner column *)
  | Apply_not_in of scalar * Colref.t

and logical =
  | L_get of Table_desc.t                      (* 0 children *)
  | L_select of scalar                         (* 1 child *)
  | L_project of proj list                     (* 1 child *)
  | L_join of join_kind * scalar               (* 2 children: outer, inner *)
  | L_gb_agg of agg_phase * Colref.t list * agg list (* 1 child *)
  | L_window of Colref.t list * Sortspec.t * wfunc list
      (* 1 child: partition columns, intra-partition order, functions *)
  | L_limit of Sortspec.t * int * int option   (* 1 child: order, offset, count *)
  | L_apply of apply_kind * Colref.t list      (* 2 children; correlated outer cols *)
  | L_cte_producer of int                      (* 1 child: materialized CTE body *)
  | L_cte_anchor of int                        (* 2 children: producer, main body *)
  | L_cte_consumer of int * Colref.t list      (* 0 children *)
  | L_set of set_kind * Colref.t list          (* >= 2 children; output columns *)
  | L_const_table of Colref.t list * Datum.t list list (* 0 children *)

and physical =
  | P_table_scan of Table_desc.t * int list option * scalar option
      (* partitions kept (None = all), residual filter *)
  | P_index_scan of Table_desc.t * Table_desc.index * cmp * scalar * scalar option
      (* index condition [idx_col cmp expr], residual filter; delivers order *)
  | P_filter of scalar
  | P_project of proj list
  | P_hash_join of join_kind * (scalar * scalar) list * scalar option
      (* equi-key pairs (outer side, inner side), residual predicate *)
  | P_merge_join of join_kind * (Colref.t * Colref.t) list * scalar option
  | P_nl_join of join_kind * scalar
  | P_window of Colref.t list * Sortspec.t * wfunc list
      (* requires child hashed on the partition and sorted appropriately *)
  | P_hash_agg of agg_phase * Colref.t list * agg list
  | P_stream_agg of agg_phase * Colref.t list * agg list
  | P_sort of Sortspec.t
  | P_limit of Sortspec.t * int * int option   (* order, offset, count *)
  | P_motion of motion
  | P_cte_producer of int
  | P_cte_consumer of int * Colref.t list
  | P_sequence of int                          (* CTE anchor: run producer, then body *)
  | P_set of set_kind * Colref.t list
  | P_const_table of Colref.t list * Datum.t list list
  | P_partition_selector of int list
      (* dynamic partition elimination: restricts sibling scans at run time *)

and plan = {
  pop : physical;
  pchildren : plan list;
  pschema : Colref.t list;
  pest_rows : float;
  pcost : float;
}

(* An operator as stored in the Memo. *)
type op = Logical of logical | Physical of physical

let agg_kind_to_string = function
  | Count_star -> "count(*)"
  | Count -> "count"
  | Sum -> "sum"
  | Min -> "min"
  | Max -> "max"

let cmp_to_string = function
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let arith_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"

let join_kind_to_string = function
  | Inner -> "Inner"
  | Left_outer -> "LeftOuter"
  | Full_outer -> "FullOuter"
  | Semi -> "Semi"
  | Anti_semi -> "AntiSemi"

let set_kind_to_string = function
  | Union_all -> "UnionAll"
  | Union_distinct -> "Union"
  | Intersect -> "Intersect"
  | Except -> "Except"

let agg_phase_to_string = function
  | One_phase -> ""
  | Partial -> "Partial"
  | Final -> "Final"

let wkind_to_string = function
  | W_row_number -> "row_number"
  | W_rank -> "rank"
  | W_dense_rank -> "dense_rank"
  | W_agg k -> agg_kind_to_string k

let flip_cmp = function
  | Eq -> Eq
  | Neq -> Neq
  | Lt -> Gt
  | Le -> Ge
  | Gt -> Lt
  | Ge -> Le

let negate_cmp = function
  | Eq -> Neq
  | Neq -> Eq
  | Lt -> Ge
  | Le -> Gt
  | Gt -> Le
  | Ge -> Lt

(* Operations on scalar expressions. *)

open Expr

let rec to_string (s : scalar) =
  match s with
  | Col c -> Colref.to_string c
  | Const d -> Datum.to_string d
  | Cmp (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (to_string a) (cmp_to_string op) (to_string b)
  | And cs -> "(" ^ String.concat " AND " (List.map to_string cs) ^ ")"
  | Or cs -> "(" ^ String.concat " OR " (List.map to_string cs) ^ ")"
  | Not c -> "NOT " ^ to_string c
  | Arith (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (to_string a) (arith_to_string op)
        (to_string b)
  | Is_null c -> to_string c ^ " IS NULL"
  | Case (whens, els) ->
      let ws =
        List.map
          (fun (c, v) -> "WHEN " ^ to_string c ^ " THEN " ^ to_string v)
          whens
      in
      let e = match els with None -> "" | Some v -> " ELSE " ^ to_string v in
      "CASE " ^ String.concat " " ws ^ e ^ " END"
  | In_list (e, ds) ->
      to_string e ^ " IN ("
      ^ String.concat ", " (List.map Datum.to_string ds)
      ^ ")"
  | Like (e, pat) -> to_string e ^ " LIKE '" ^ pat ^ "'"
  | Coalesce cs ->
      "COALESCE(" ^ String.concat ", " (List.map to_string cs) ^ ")"
  | Cast (e, ty) -> "CAST(" ^ to_string e ^ " AS " ^ Dtype.to_string ty ^ ")"
  | Subplan sp ->
      let kind =
        match sp.sp_kind with
        | Sp_scalar -> "SubPlan"
        | Sp_exists -> "Exists-SubPlan"
        | Sp_not_exists -> "NotExists-SubPlan"
        | Sp_in e -> to_string e ^ " IN SubPlan"
        | Sp_not_in e -> to_string e ^ " NOT IN SubPlan"
      in
      Printf.sprintf "%s(params=%d)" kind (List.length sp.sp_params)

(* Iterate over immediate sub-expressions. *)
let iter_children f (s : scalar) =
  match s with
  | Col _ | Const _ -> ()
  | Cmp (_, a, b) | Arith (_, a, b) ->
      f a;
      f b
  | And cs | Or cs | Coalesce cs -> List.iter f cs
  | Not c | Is_null c | Cast (c, _) | Like (c, _) | In_list (c, _) -> f c
  | Case (whens, els) ->
      List.iter
        (fun (c, v) ->
          f c;
          f v)
        whens;
      Option.iter f els
  | Subplan sp -> (
      match sp.sp_kind with Sp_in e | Sp_not_in e -> f e | _ -> ())

let rec map (f : scalar -> scalar option) (s : scalar) : scalar =
  match f s with
  | Some replaced -> replaced
  | None -> (
      let r = map f in
      match s with
      | Col _ | Const _ -> s
      | Cmp (op, a, b) -> Cmp (op, r a, r b)
      | Arith (op, a, b) -> Arith (op, r a, r b)
      | And cs -> And (List.map r cs)
      | Or cs -> Or (List.map r cs)
      | Coalesce cs -> Coalesce (List.map r cs)
      | Not c -> Not (r c)
      | Is_null c -> Is_null (r c)
      | Cast (c, ty) -> Cast (r c, ty)
      | Like (c, p) -> Like (r c, p)
      | In_list (c, ds) -> In_list (r c, ds)
      | Case (whens, els) ->
          Case (List.map (fun (c, v) -> (r c, r v)) whens, Option.map r els)
      | Subplan sp -> (
          match sp.sp_kind with
          | Sp_in e -> Subplan { sp with sp_kind = Sp_in (r e) }
          | Sp_not_in e -> Subplan { sp with sp_kind = Sp_not_in (r e) }
          | Sp_scalar | Sp_exists | Sp_not_exists -> s))

(* Columns referenced by an expression. Subplan correlation parameters count
   as outer references (the executor feeds them from the outer row). *)
let free_cols (s : scalar) : Colref.Set.t =
  let acc = ref Colref.Set.empty in
  let rec go s =
    (match s with
    | Col c -> acc := Colref.Set.add c !acc
    | Subplan sp ->
        List.iter
          (fun (outer, _param) -> acc := Colref.Set.add outer !acc)
          sp.sp_params
    | _ -> ());
    iter_children go s
  in
  go s;
  !acc

let free_cols_of_list ss =
  List.fold_left
    (fun acc s -> Colref.Set.union acc (free_cols s))
    Colref.Set.empty ss

(* Replace column references according to [mapping]. *)
let substitute (mapping : Colref.t Colref.Map.t) (s : scalar) : scalar =
  map
    (function
      | Col c -> (
          match Colref.Map.find_opt c mapping with
          | Some c' -> Some (Col c')
          | None -> None)
      | _ -> None)
    s

(* Split a predicate into its top-level conjuncts. *)
let rec conjuncts (s : scalar) : scalar list =
  match s with
  | And cs -> List.concat_map conjuncts cs
  | Const (Datum.Bool true) -> []
  | s -> [ s ]

let conjoin = function
  | [] -> Const (Datum.Bool true)
  | [ s ] -> s
  | cs -> And cs

(* Extract equi-join key pairs from a condition given the output column sets
   of the two children. Returns (pairs, residual conjuncts). *)
let extract_equi_keys ~outer_cols ~inner_cols (cond : scalar) =
  (* each side must reference at least one column of exactly one input;
     constant-only expressions are residual predicates, never keys *)
  let belongs cols e =
    let f = free_cols e in
    (not (Colref.Set.is_empty f)) && Colref.Set.subset f cols
  in
  let classify c =
    match c with
    | Cmp (Eq, a, b) ->
        if belongs outer_cols a && belongs inner_cols b then `Key (a, b)
        else if belongs inner_cols a && belongs outer_cols b then `Key (b, a)
        else `Residual c
    | c -> `Residual c
  in
  List.fold_left
    (fun (keys, residual) c ->
      match classify c with
      | `Key (a, b) -> ((a, b) :: keys, residual)
      | `Residual c -> (keys, c :: residual))
    ([], [])
    (conjuncts cond)
  |> fun (keys, residual) -> (List.rev keys, List.rev residual)

(* Static type of an expression. *)
let rec type_of (s : scalar) : Dtype.t =
  match s with
  | Col c -> Colref.ty c
  | Const d -> ( match Datum.type_of d with Some t -> t | None -> Dtype.Int)
  | Cmp _ | And _ | Or _ | Not _ | Is_null _ | Like _ | In_list _ -> Dtype.Bool
  | Arith (Div, _, _) -> Dtype.Float
  | Arith (_, a, b) ->
      if type_of a = Dtype.Float || type_of b = Dtype.Float then Dtype.Float
      else type_of a
  | Case (whens, els) -> (
      match (whens, els) with
      | (_, v) :: _, _ -> type_of v
      | [], Some v -> type_of v
      | [], None -> Dtype.Int)
  | Coalesce (c :: _) -> type_of c
  | Coalesce [] -> Dtype.Int
  | Cast (_, ty) -> ty
  | Subplan sp -> (
      match sp.sp_kind with
      | Sp_scalar -> (
          match sp.sp_plan.pschema with
          | [ c ] -> Colref.ty c
          | _ -> Dtype.Int)
      | Sp_exists | Sp_not_exists | Sp_in _ | Sp_not_in _ -> Dtype.Bool)

let contains_subplan (s : scalar) =
  let found = ref false in
  let rec go s =
    (match s with Subplan _ -> found := true | _ -> ());
    iter_children go s
  in
  go s;
  !found

(* Structural fingerprint used by the Memo's duplicate detection. *)
let rec fingerprint (s : scalar) : int =
  let h xs = Hashtbl.hash xs in
  match s with
  | Col c -> h (0, Colref.id c)
  | Const d -> h (1, Datum.hash d)
  | Cmp (op, a, b) -> h (2, op, fingerprint a, fingerprint b)
  | And cs -> h (3, List.map fingerprint cs)
  | Or cs -> h (4, List.map fingerprint cs)
  | Not c -> h (5, fingerprint c)
  | Arith (op, a, b) -> h (6, op, fingerprint a, fingerprint b)
  | Is_null c -> h (7, fingerprint c)
  | Case (whens, els) ->
      h
        ( 8,
          List.map (fun (c, v) -> (fingerprint c, fingerprint v)) whens,
          Option.map fingerprint els )
  | In_list (c, ds) -> h (9, fingerprint c, List.map Datum.hash ds)
  | Like (c, p) -> h (10, fingerprint c, p)
  | Coalesce cs -> h (11, List.map fingerprint cs)
  | Cast (c, ty) -> h (12, fingerprint c, ty)
  | Subplan sp -> h (13, Hashtbl.hash sp)

let equal (a : scalar) (b : scalar) = Stdlib.compare a b = 0

(* LIKE pattern matcher shared by the executor and selectivity estimation. *)
let like_match ~pattern text =
  let np = String.length pattern and nt = String.length text in
  (* dp.(i) = pattern[0..i) matches text[0..j) for current j *)
  let prev = Array.make (np + 1) false in
  let cur = Array.make (np + 1) false in
  prev.(0) <- true;
  for i = 1 to np do
    prev.(i) <- prev.(i - 1) && pattern.[i - 1] = '%'
  done;
  for j = 1 to nt do
    cur.(0) <- false;
    for i = 1 to np do
      cur.(i) <-
        (match pattern.[i - 1] with
        | '%' -> cur.(i - 1) || prev.(i)
        | '_' -> prev.(i - 1)
        | c -> prev.(i - 1) && c = text.[j - 1])
    done;
    Array.blit cur 0 prev 0 (np + 1)
  done;
  prev.(np)

(* Pure logical operator trees: the binder's output and the input to the
   preprocessing passes (normalization, subquery decorrelation) that run
   before Memo copy-in. *)

type t = { op : Expr.logical; children : t list }

let make op children =
  let expected = Logical_ops.arity op in
  let actual = List.length children in
  (* set operations accept two-or-more children *)
  let ok =
    match op with Expr.L_set _ -> actual >= 2 | _ -> actual = expected
  in
  if not ok then
    Gpos.Gpos_error.internal "Ltree.make: %s expects %d children, got %d"
      (Logical_ops.to_string op) expected actual;
  { op; children }

let leaf op = make op []

let rec output_cols (t : t) : Colref.t list =
  Logical_ops.output_cols t.op (List.map output_cols t.children)

let rec to_string ?(indent = 0) (t : t) =
  let pad = String.make (indent * 2) ' ' in
  pad ^ Logical_ops.to_string t.op ^ "\n"
  ^ String.concat "" (List.map (to_string ~indent:(indent + 1)) t.children)

let rec fold f acc t = List.fold_left (fold f) (f acc t) t.children

let node_count t = fold (fun n _ -> n + 1) 0 t

(* Map a transformation bottom-up over the tree. *)
let rec map_bottom_up (f : t -> t) (t : t) : t =
  let children = List.map (map_bottom_up f) t.children in
  f { t with children }

(* Validate column visibility: every column used by an operator's payload
   must be produced by its children (correlated apply inners are checked with
   the outer columns visible). *)
let validate (t : t) =
  let rec go ~outer t =
    let child_cols = List.map output_cols t.children in
    let visible =
      List.fold_left
        (fun acc cols -> Colref.Set.union acc (Colref.Set.of_list cols))
        outer child_cols
    in
    let used = Logical_ops.used_cols t.op in
    if not (Colref.Set.subset used visible) then
      Gpos.Gpos_error.internal "Ltree.validate: %s uses unbound columns %s"
        (Logical_ops.to_string t.op)
        (Colref.Set.to_string (Colref.Set.diff used visible));
    match (t.op, t.children) with
    | Expr.L_apply (_, _), [ outer_child; inner_child ] ->
        go ~outer outer_child;
        (* inner side may reference the outer child's columns (correlation) *)
        let outer' =
          Colref.Set.union outer
            (Colref.Set.of_list (output_cols outer_child))
        in
        go ~outer:outer' inner_child
    | _ -> List.iter (go ~outer) t.children
  in
  go ~outer:Colref.Set.empty t

(** Sort order specifications: an ordered list of (column, direction). *)

type dir = Asc | Desc

type item = { col : Colref.t; dir : dir }

type t = item list
(** The empty list means "no particular order". *)

val empty : t
val is_empty : t -> bool
val asc : Colref.t -> item
val desc : Colref.t -> item
val dir_to_string : dir -> string
val item_to_string : item -> string
val to_string : t -> string
val equal_item : item -> item -> bool
val equal : t -> t -> bool

val satisfies : delivered:t -> required:t -> bool
(** A delivered order satisfies a required one when the required order is a
    prefix of the delivered order (directions included). *)

val cols : t -> Colref.t list

val row_compare : t -> schema:Colref.t list -> Datum.t array -> Datum.t array -> int
(** Row comparator with column positions resolved against [schema] once. *)

lib/core/taqo.mli: Ir Optimizer

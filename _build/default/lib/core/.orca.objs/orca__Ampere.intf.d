lib/core/ampere.mli: Catalog Dxl Ir Optimizer Orca_config Stdlib

lib/core/taqo.ml: Array Float Gpos Hashtbl Ir List Memolib Optimizer

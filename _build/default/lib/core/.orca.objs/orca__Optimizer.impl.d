lib/core/optimizer.ml: Catalog Colref Dxl Expr Gc Gpos Ir List Ltree Memolib Orca_config Plan_ops Printf Props Search Stats Table_desc Xform

lib/core/ampere.ml: Catalog Dxl Gpos Ir List Optimizer Option Orca_config Printexc Printf Stdlib

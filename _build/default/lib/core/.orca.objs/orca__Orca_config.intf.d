lib/core/orca_config.mli: Cost Xform

lib/core/optimizer.mli: Catalog Colref Dxl Expr Ir Memolib Orca_config Props

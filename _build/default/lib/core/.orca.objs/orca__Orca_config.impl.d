lib/core/orca_config.ml: Cost List Xform
